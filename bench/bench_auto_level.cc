// Cost-based strategy selection (OptLevel::kAuto): the auto planner pays a
// plan-search overhead (≈20 candidate compilations + costings) and should
// buy back a near-best execution.
//
// Expected shape:
//  - auto's measured total_work tracks the best fixed level (the regret
//    the acceptance test bounds at 1.25x);
//  - the search overhead is flat in data size, so auto's wall-clock
//    converges to the best level's as n grows;
//  - `chosen_level` exposes the decision for the record.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace pascalr {
namespace {

using bench_util::ExportStats;
using bench_util::MakeScaledDb;
using bench_util::MustRun;
using bench_util::MustRunOptions;

void BM_Auto_Example21(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto db = MakeScaledDb(n);
  if (!db->AnalyzeAll().ok()) std::abort();
  PlannerOptions options;
  options.level = OptLevel::kAuto;
  QueryRun last;
  for (auto _ : state) {
    last = MustRunOptions(*db, Example21QuerySource(), options);
    benchmark::DoNotOptimize(last.tuples);
  }
  ExportStats(state, last.stats, last.tuples.size());
  state.counters["chosen_level"] =
      static_cast<double>(static_cast<int>(last.planned.plan.level));
  state.counters["estimated_work"] =
      static_cast<double>(last.planned.estimate.predicted.TotalWork());
}

void BM_Fixed_Example21(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto level = static_cast<OptLevel>(state.range(1));
  auto db = MakeScaledDb(n);
  QueryRun last;
  for (auto _ : state) {
    last = MustRun(*db, Example21QuerySource(), level);
    benchmark::DoNotOptimize(last.tuples);
  }
  ExportStats(state, last.stats, last.tuples.size());
  state.counters["chosen_level"] = static_cast<double>(state.range(1));
}

// Auto vs every fixed level at small scale, vs the feasible levels as the
// database grows (O0/O1 blow up combinatorially).
BENCHMARK(BM_Auto_Example21)
    ->Arg(16)
    ->Arg(48)
    ->Arg(200)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fixed_Example21)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 3})
    ->Args({16, 4})
    ->Args({48, 3})
    ->Args({48, 4})
    ->Args({200, 4})
    ->Args({1000, 4})
    ->Unit(benchmark::kMillisecond);

// ANALYZE itself: one scan per relation; the price of fresh statistics.
void BM_Analyze(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto db = MakeScaledDb(n);
  // Touch a relation each iteration so ANALYZE cannot shortcut on a
  // fresh cache.
  Relation* employees = db->FindRelation("employees");
  int64_t next = static_cast<int64_t>(n) + 1000000;
  for (auto _ : state) {
    (void)employees->Insert(Tuple{Value::MakeInt(next++),
                                  Value::MakeString("X"),
                                  Value::MakeEnum(0)});
    if (!db->AnalyzeAll().ok()) std::abort();
    benchmark::DoNotOptimize(db->FindFreshStats("employees"));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(6 * n + 2));
}

BENCHMARK(BM_Analyze)->Arg(100)->Arg(1000)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pascalr
