// Experiment D (DESIGN.md): relational division — the combination-phase
// operator behind universal quantification (§3.3) — hash vs sort
// algorithm, swept over table size and divisor size.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"  // shared main(): BENCH_*.json reporter

#include "refstruct/division.h"
#include "refstruct/ref_relation.h"

namespace pascalr {
namespace {

/// Builds a (group, member) table where every group contains `hit_rate` of
/// the divisor plus noise, and group 0 contains the full divisor.
RefRelation MakeTable(size_t groups, size_t divisor_size, double hit_rate) {
  RefRelation table({"g", "v"});
  for (uint32_t g = 0; g < groups; ++g) {
    size_t members =
        g == 0 ? divisor_size
               : static_cast<size_t>(static_cast<double>(divisor_size) * hit_rate);
    for (uint32_t m = 0; m < members; ++m) {
      table.Add({Ref{1, g, 1}, Ref{2, m, 1}});
    }
  }
  return table;
}

std::vector<Ref> MakeDivisor(size_t n) {
  std::vector<Ref> out;
  out.reserve(n);
  for (uint32_t m = 0; m < n; ++m) out.push_back(Ref{2, m, 1});
  return out;
}

void BM_DivisionHash(benchmark::State& state) {
  size_t groups = static_cast<size_t>(state.range(0));
  size_t divisor_size = static_cast<size_t>(state.range(1));
  RefRelation table = MakeTable(groups, divisor_size, 0.5);
  std::vector<Ref> divisor = MakeDivisor(divisor_size);
  for (auto _ : state) {
    ExecStats stats;
    auto result =
        Divide(table, "v", divisor, &stats, DivisionAlgorithm::kHash);
    benchmark::DoNotOptimize(result);
  }
  state.counters["table_rows"] = static_cast<double>(table.size());
}

void BM_DivisionSort(benchmark::State& state) {
  size_t groups = static_cast<size_t>(state.range(0));
  size_t divisor_size = static_cast<size_t>(state.range(1));
  RefRelation table = MakeTable(groups, divisor_size, 0.5);
  std::vector<Ref> divisor = MakeDivisor(divisor_size);
  for (auto _ : state) {
    ExecStats stats;
    auto result =
        Divide(table, "v", divisor, &stats, DivisionAlgorithm::kSort);
    benchmark::DoNotOptimize(result);
  }
  state.counters["table_rows"] = static_cast<double>(table.size());
}

BENCHMARK(BM_DivisionHash)
    ->Args({16, 64})
    ->Args({64, 64})
    ->Args({256, 64})
    ->Args({64, 256})
    ->Args({64, 1024});
BENCHMARK(BM_DivisionSort)
    ->Args({16, 64})
    ->Args({64, 64})
    ->Args({256, 64})
    ->Args({64, 256})
    ->Args({64, 1024});

}  // namespace
}  // namespace pascalr
