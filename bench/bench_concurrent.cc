// Concurrent-serving benchmarks (src/concurrency/): prepared-execute
// throughput as reader threads scale (snapshot reads share one Database
// and never block), session churn against the shared plan cache (a fresh
// session per iteration must adopt the cached plan — hit rate, not
// compile rate, dominates), and snapshot reads racing a writer thread.
// Exports BENCH_bench_concurrent.json via the shared bench_util main.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "bench_util.h"
#include "concurrency/session_manager.h"
#include "pascalr/session.h"

namespace pascalr {
namespace {

using bench_util::MakeScaledDb;

constexpr size_t kScale = 200;

std::string ParamQuerySource() {
  return "[<e.ename> OF EACH e IN employees:"
         " (e.enr <= $top) AND SOME t IN timetable (e.enr = t.tenr)]";
}

std::string ChurnQuerySource() {
  return "[<e.ename> OF EACH e IN employees:"
         " SOME t IN timetable (e.enr = t.tenr)]";
}

/// One serving database shared by every thread of the read-only
/// benchmarks (magic-static init makes first-caller-builds race-free).
/// Read-only workloads leave it untouched between runs, so reusing it
/// across ->Threads(N) variants is sound.
struct ServingDb {
  std::unique_ptr<Database> db;
  std::unique_ptr<SessionManager> manager;
};

ServingDb& SharedReadOnlyDb() {
  static ServingDb* shared = [] {
    auto* s = new ServingDb();
    s->db = MakeScaledDb(kScale);
    if (!s->db->AnalyzeAll().ok()) std::abort();
    s->manager = std::make_unique<SessionManager>(s->db.get());
    return s;
  }();
  return *shared;
}

ServingDb& SharedMixedDb() {
  static ServingDb* shared = [] {
    auto* s = new ServingDb();
    s->db = MakeScaledDb(kScale);
    if (!s->db->AnalyzeAll().ok()) std::abort();
    s->manager = std::make_unique<SessionManager>(s->db.get());
    return s;
  }();
  return *shared;
}

/// Prepared-execute throughput over one shared serving database.
/// items_per_second (real time) is the aggregate read throughput; the
/// acceptance claim is that it grows as threads are added — snapshot
/// capture is the only cross-thread touch point on this path.
void BM_PreparedExecuteThroughput(benchmark::State& state) {
  ServingDb& shared = SharedReadOnlyDb();
  auto session = shared.manager->CreateSession();
  auto prepared = session->Prepare(ParamQuerySource());
  if (!prepared.ok()) std::abort();
  if (!prepared->Execute({{"top", Value::MakeInt(1)}}).ok()) std::abort();

  int64_t top = state.thread_index();
  size_t results = 0;
  for (auto _ : state) {
    top = 1 + (top + 7) % static_cast<int64_t>(kScale);
    auto exec = prepared->Execute({{"top", Value::MakeInt(top)}});
    if (!exec.ok()) std::abort();
    results = exec->tuples.size();
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PreparedExecuteThroughput)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/// Session churn: every iteration is a brand-new Session running one
/// one-shot query — parse, bind, plan, execute. With the shared plan
/// cache the plan step adopts the process-wide entry; shared_hit_rate
/// must stay above 0.9 after warmup (the acceptance bar) because only
/// the very first query ever compiles.
void BM_SessionChurnSharedPlanCache(benchmark::State& state) {
  ServingDb& shared = SharedReadOnlyDb();
  // Warm the cache (idempotent across threads and repetitions).
  {
    auto warm = shared.manager->CreateSession();
    if (!warm->Query(ChurnQuerySource()).ok()) std::abort();
  }
  auto before = shared.manager->counters();
  for (auto _ : state) {
    auto session = shared.manager->CreateSession();
    auto run = session->Query(ChurnQuerySource());
    if (!run.ok()) std::abort();
    benchmark::DoNotOptimize(run->tuples);
  }
  auto after = shared.manager->counters();
  // Process-wide counters: the window overlaps other threads of the same
  // run, which are performing the identical workload, so the rate is
  // representative either way.
  double hits =
      static_cast<double>(after.shared_plan_hits - before.shared_plan_hits);
  double misses = static_cast<double>(after.shared_plan_misses -
                                      before.shared_plan_misses);
  double rate = hits + misses == 0.0 ? 0.0 : hits / (hits + misses);
  state.counters["shared_hit_rate"] =
      benchmark::Counter(rate, benchmark::Counter::kAvgThreads);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SessionChurnSharedPlanCache)
    ->Threads(1)
    ->Threads(4)
    ->UseRealTime();

/// Snapshot reads racing a writer: thread 0 commits an insert+delete pair
/// per iteration while every other thread executes the prepared query.
/// Readers never block on the writer (they capture a snapshot and go);
/// what this measures is the end-to-end cost of reading under constant
/// invalidation pressure — every mod-count bump stales the plan caches.
void BM_SnapshotReadsUnderWrites(benchmark::State& state) {
  ServingDb& shared = SharedMixedDb();
  auto session = shared.manager->CreateSession();
  if (state.threads() > 1 && state.thread_index() == 0) {
    // Writer role. Keys are beyond every reader predicate and are removed
    // within the iteration, so the database is net-unchanged between runs.
    int64_t key = 900000;
    for (auto _ : state) {
      std::string k = std::to_string(key++);
      if (!session
               ->ExecuteScript("employees :+ [<" + k + ", 'w', student>];")
               .ok()) {
        std::abort();
      }
      if (!session->ExecuteScript("employees :- [<" + k + ">];").ok()) {
        std::abort();
      }
    }
    return;
  }
  auto prepared = session->Prepare(ParamQuerySource());
  if (!prepared.ok()) std::abort();
  int64_t top = state.thread_index();
  for (auto _ : state) {
    top = 1 + (top + 7) % static_cast<int64_t>(kScale);
    auto exec = prepared->Execute({{"top", Value::MakeInt(top)}});
    if (!exec.ok()) std::abort();
    benchmark::DoNotOptimize(exec->tuples);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotReadsUnderWrites)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

}  // namespace
}  // namespace pascalr
