// Prepared queries: cold Query() (parse + bind + plan search + execute,
// every call) vs. prepared re-execution (patch the cached plan's
// parameter slots and run). The difference is the per-execution planning
// overhead the Prepare/Execute split exists to amortise — the acceptance
// bar is >=10x less of it per execution on the cached path.
//
// Expected shape:
//  - BM_ColdQuery carries the full kAuto plan search per iteration
//    (`plan_searches_per_iter` ≈ 1, `parses_per_iter` ≈ 1);
//  - BM_PreparedReexecute pays it once, outside the loop
//    (both counters 0 per iteration, `cache_hit` = 1);
//  - BM_PreparedCursorFirstTuple additionally skips construction work for
//    tuples nobody fetches.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>

#include "base/counters.h"
#include "bench/bench_util.h"

namespace pascalr {
namespace {

using bench_util::ExportStats;
using bench_util::MakeScaledDb;

// The parameterized workload: a join whose restriction changes per
// iteration, the host-program loop of the paper's §2.
std::string ParamQuerySource() {
  return "[<e.ename> OF EACH e IN employees:"
         " (e.enr <= $top) AND SOME t IN timetable (e.enr = t.tenr)]";
}

std::string LiteralQuerySource(int64_t top) {
  return "[<e.ename> OF EACH e IN employees:"
         " (e.enr <= " +
         std::to_string(top) +
         ") AND SOME t IN timetable (e.enr = t.tenr)]";
}

void BM_ColdQuery(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto db = MakeScaledDb(n);
  if (!db->AnalyzeAll().ok()) std::abort();
  Session session(db.get());
  session.options().level = OptLevel::kAuto;
  CompileCounters before = GlobalCompileCounters();
  int64_t top = 0;
  size_t results = 0;
  ExecStats last;
  for (auto _ : state) {
    top = 1 + (top + 7) % static_cast<int64_t>(n);
    auto run = session.Query(LiteralQuerySource(top));
    if (!run.ok()) std::abort();
    results = run->tuples.size();
    last = run->stats;
    benchmark::DoNotOptimize(run->tuples);
  }
  ExportStats(state, last, results);
  const CompileCounters& now = GlobalCompileCounters();
  double iters = static_cast<double>(std::max<int64_t>(1, state.iterations()));
  state.counters["parses_per_iter"] =
      static_cast<double>(now.parses - before.parses) / iters;
  state.counters["plan_searches_per_iter"] =
      static_cast<double>(now.plan_searches - before.plan_searches) / iters;
}

void BM_PreparedReexecute(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto db = MakeScaledDb(n);
  if (!db->AnalyzeAll().ok()) std::abort();
  Session session(db.get());
  session.options().level = OptLevel::kAuto;
  auto prepared = session.Prepare(ParamQuerySource());
  if (!prepared.ok()) std::abort();
  // Pay for planning once, before the measured loop.
  if (!prepared->Execute({{"top", Value::MakeInt(1)}}).ok()) std::abort();

  CompileCounters before = GlobalCompileCounters();
  int64_t top = 0;
  size_t results = 0;
  bool all_hits = true;
  ExecStats last;
  for (auto _ : state) {
    top = 1 + (top + 7) % static_cast<int64_t>(n);
    auto exec = prepared->Execute({{"top", Value::MakeInt(top)}});
    if (!exec.ok()) std::abort();
    all_hits = all_hits && exec->plan_cache_hit;
    results = exec->tuples.size();
    last = exec->stats;
    benchmark::DoNotOptimize(exec->tuples);
  }
  ExportStats(state, last, results);
  const CompileCounters& now = GlobalCompileCounters();
  double iters = static_cast<double>(std::max<int64_t>(1, state.iterations()));
  state.counters["parses_per_iter"] =
      static_cast<double>(now.parses - before.parses) / iters;
  state.counters["plan_searches_per_iter"] =
      static_cast<double>(now.plan_searches - before.plan_searches) / iters;
  state.counters["cache_hit"] = all_hits ? 1.0 : 0.0;
}

void BM_PreparedCursorFirstTuple(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto db = MakeScaledDb(n);
  if (!db->AnalyzeAll().ok()) std::abort();
  Session session(db.get());
  session.options().level = OptLevel::kAuto;
  auto prepared = session.Prepare(ParamQuerySource());
  if (!prepared.ok()) std::abort();
  if (!prepared->Execute({{"top", Value::MakeInt(1)}}).ok()) std::abort();

  int64_t top = 0;
  uint64_t fetched = 0;
  for (auto _ : state) {
    top = 1 + (top + 7) % static_cast<int64_t>(n);
    auto cursor = prepared->OpenCursor({{"top", Value::MakeInt(top)}});
    if (!cursor.ok()) std::abort();
    Tuple t;
    auto more = cursor->Next(&t);
    if (!more.ok()) std::abort();
    if (*more) ++fetched;
    cursor->Close();
    benchmark::DoNotOptimize(t);
  }
  state.counters["fetched"] = static_cast<double>(fetched);
}

BENCHMARK(BM_ColdQuery)->Arg(16)->Arg(200)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PreparedReexecute)
    ->Arg(16)
    ->Arg(200)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PreparedCursorFirstTuple)
    ->Arg(200)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pascalr
