// Experiment E4.4/E4.5 (DESIGN.md): strategy 3 — extended range
// expressions. The claims (paper §4.3):
//  - the cardinality of range relations has a very strong impact: moving
//    monadic terms into the range shrinks every downstream structure;
//  - the largest profit arises for a *universally quantified* variable:
//    one conjunction less to evaluate and a much smaller division.
//
// Expected shape: O3 beats O2 increasingly as the range restrictions get
// more selective (smaller professor / 1977 / sophomore fractions), and
// the division input shrinks by roughly the 1977-fraction.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace pascalr {
namespace {

using bench_util::ExportStats;
using bench_util::MustRun;

std::unique_ptr<Database> DbWithFractions(size_t n, double selective) {
  auto db = std::make_unique<Database>();
  if (!CreateUniversitySchema(db.get()).ok()) std::abort();
  UniversityScale scale;
  scale.employees = n;
  scale.papers = 2 * n;
  scale.courses = n / 2 + 1;
  scale.timetable = 3 * n;
  scale.professor_fraction = selective;
  scale.papers_1977_fraction = selective;
  scale.sophomore_fraction = selective;
  if (!PopulateSynthetic(db.get(), scale).ok()) std::abort();
  return db;
}

void RunAtSelectivity(benchmark::State& state, OptLevel level) {
  size_t n = static_cast<size_t>(state.range(0));
  double selective = static_cast<double>(state.range(1)) / 100.0;
  auto db = DbWithFractions(n, selective);
  QueryRun last;
  for (auto _ : state) {
    last = MustRun(*db, Example21QuerySource(), level);
    benchmark::DoNotOptimize(last.tuples);
  }
  ExportStats(state, last.stats, last.tuples.size());
  state.counters["selectivity_pct"] = static_cast<double>(state.range(1));
  state.counters["conjunctions"] =
      static_cast<double>(last.planned.plan.sf.matrix.disjuncts.size());
}

void BM_S3_UnextendedRanges(benchmark::State& state) {
  RunAtSelectivity(state, OptLevel::kOneStep);
}
void BM_S3_ExtendedRanges(benchmark::State& state) {
  RunAtSelectivity(state, OptLevel::kRangeExt);
}

// Example 2.1 contains a universal quantifier, so the combination phase
// still divides at both levels; scales stay moderate.
BENCHMARK(BM_S3_UnextendedRanges)
    ->Args({12, 20})
    ->Args({12, 40})
    ->Args({12, 80})
    ->Args({24, 40})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_S3_ExtendedRanges)
    ->Args({12, 20})
    ->Args({12, 40})
    ->Args({12, 80})
    ->Args({24, 40})
    ->Args({48, 40})
    ->Unit(benchmark::kMillisecond);

// Strategy 2 vs strategy 3 on Example 4.4's sub-expression: the paper
// notes both achieve the same reduction there; the difference appears in
// whole-query handling (above), not in this isolated conjunction.
const char* kExample44 =
    "[<c.ctitle> OF EACH c IN courses: (c.clevel <= sophomore) AND "
    "SOME t IN timetable ((c.cnr = t.tcnr))]";

void BM_S3_Example44_Strategy2(benchmark::State& state) {
  auto db = bench_util::MakeScaledDb(static_cast<size_t>(state.range(0)));
  QueryRun last;
  for (auto _ : state) {
    last = MustRun(*db, kExample44, OptLevel::kOneStep);
    benchmark::DoNotOptimize(last.tuples);
  }
  ExportStats(state, last.stats, last.tuples.size());
}

void BM_S3_Example44_Strategy3(benchmark::State& state) {
  auto db = bench_util::MakeScaledDb(static_cast<size_t>(state.range(0)));
  QueryRun last;
  for (auto _ : state) {
    last = MustRun(*db, kExample44, OptLevel::kRangeExt);
    benchmark::DoNotOptimize(last.tuples);
  }
  ExportStats(state, last.stats, last.tuples.size());
}

BENCHMARK(BM_S3_Example44_Strategy2)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_S3_Example44_Strategy3)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pascalr
