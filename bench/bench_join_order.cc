// Join-order optimizer (src/joinorder/): DP-chosen join trees vs the
// executor's greedy smallest-first heuristic on generated multi-relation
// conjunctive queries, measured by ExecStats::TotalWork().
//
// Expected shape:
//  - `dp_total_work` <= `greedy_total_work` on every query of the batch
//    (the joinorder_test acceptance bar), with the gap widening as the
//    database grows and misordered intermediates get more expensive;
//  - the DP's own planning overhead stays flat in data size (the table is
//    2^inputs, independent of cardinalities);
//  - `trees_attached` records how often the DP actually overrode greedy.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "calculus/printer.h"
#include "tests/query_gen.h"

namespace pascalr {
namespace {

using bench_util::ExportStats;
using bench_util::MakeScaledDb;
using bench_util::MustRunOptions;
using testing_util::QueryGenerator;

/// The generated chain-query batch both configurations run.
std::vector<std::string> ChainBatch(size_t count) {
  std::vector<std::string> sources;
  for (uint64_t seed = 1; sources.size() < count; ++seed) {
    QueryGenerator gen(seed);
    SelectionExpr sel =
        gen.RandomChainSelection(/*joins=*/3 + seed % 3, /*filter_prob=*/0.6);
    sources.push_back(FormatSelection(sel));
  }
  return sources;
}

void BM_JoinOrder_ChainBatch(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bool dp = state.range(1) != 0;
  auto db = MakeScaledDb(n);
  if (!db->AnalyzeAll().ok()) std::abort();
  std::vector<std::string> batch = ChainBatch(16);

  PlannerOptions options;
  options.level = OptLevel::kOneStep;
  options.join_order_dp = dp;

  uint64_t total_work = 0;
  uint64_t trees = 0;
  ExecStats last_stats;
  size_t last_result = 0;
  for (auto _ : state) {
    total_work = 0;
    trees = 0;
    for (const std::string& source : batch) {
      QueryRun run = MustRunOptions(*db, source, options);
      total_work += run.stats.TotalWork();
      for (const JoinTree& tree : run.planned.plan.join_trees) {
        trees += tree.empty() ? 0 : 1;
      }
      last_stats = run.stats;
      last_result = run.tuples.size();
    }
    benchmark::DoNotOptimize(total_work);
  }
  ExportStats(state, last_stats, last_result);
  state.counters[dp ? "dp_total_work" : "greedy_total_work"] =
      static_cast<double>(total_work);
  state.counters["trees_attached"] = static_cast<double>(trees);
}

BENCHMARK(BM_JoinOrder_ChainBatch)
    ->Args({32, 1})
    ->Args({32, 0})
    ->Args({96, 1})
    ->Args({96, 0})
    ->Args({256, 1})
    ->Args({256, 0})
    ->Unit(benchmark::kMillisecond);

// The optimizer's own cost: planning (not executing) a wide conjunction
// with the DP on vs off. Bushy enumeration is the stress case.
void BM_JoinOrder_PlanOnly(benchmark::State& state) {
  bool bushy = state.range(0) != 0;
  auto db = MakeScaledDb(64);
  if (!db->AnalyzeAll().ok()) std::abort();
  QueryGenerator gen(11);
  SelectionExpr sel = gen.RandomChainSelection(/*joins=*/6, 0.5);
  std::string source = FormatSelection(sel);

  Parser parser(source);
  Result<SelectionExpr> parsed = parser.ParseSelectionOnly();
  if (!parsed.ok()) std::abort();
  Binder binder(db.get());
  Result<BoundQuery> bound = binder.Bind(std::move(parsed).value());
  if (!bound.ok()) std::abort();

  PlannerOptions options;
  options.level = OptLevel::kOneStep;
  options.join_dp_bushy = bushy;
  for (auto _ : state) {
    Result<PlannedQuery> planned =
        PlanQuery(*db, CloneBoundQuery(*bound), options);
    if (!planned.ok()) std::abort();
    benchmark::DoNotOptimize(planned->plan.join_trees);
  }
}

BENCHMARK(BM_JoinOrder_PlanOnly)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pascalr
