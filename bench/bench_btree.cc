// Index micro-benchmarks: B+tree vs hash index build and probe, including
// the ordered range probes only the tree supports efficiently.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"  // shared main(): BENCH_*.json reporter

#include <random>

#include "index/btree_index.h"
#include "index/hash_index.h"

namespace pascalr {
namespace {

Ref R(uint32_t slot) { return Ref{1, slot, 1}; }

template <typename IndexT>
void BuildIndex(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::mt19937 rng(7);
  std::vector<int64_t> values(n);
  for (auto& v : values) v = static_cast<int64_t>(rng() % (n * 2));
  for (auto _ : state) {
    IndexT idx;
    for (uint32_t i = 0; i < n; ++i) {
      idx.Add(Value::MakeInt(values[i]), R(i));
    }
    benchmark::DoNotOptimize(idx.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void BM_BTreeBuild(benchmark::State& state) { BuildIndex<BTreeIndex>(state); }
void BM_HashBuild(benchmark::State& state) { BuildIndex<HashIndex>(state); }
BENCHMARK(BM_BTreeBuild)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_HashBuild)->Arg(1000)->Arg(10000)->Arg(100000);

template <typename IndexT>
void EqProbe(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  IndexT idx;
  std::mt19937 rng(7);
  for (uint32_t i = 0; i < n; ++i) {
    idx.Add(Value::MakeInt(static_cast<int64_t>(rng() % (n * 2))), R(i));
  }
  int64_t probe = 0;
  for (auto _ : state) {
    size_t hits = 0;
    idx.Probe(CompareOp::kEq, Value::MakeInt(probe++ % (static_cast<int64_t>(n) * 2)),
              [&](const Ref&) {
                ++hits;
                return true;
              });
    benchmark::DoNotOptimize(hits);
  }
}

void BM_BTreeEqProbe(benchmark::State& state) { EqProbe<BTreeIndex>(state); }
void BM_HashEqProbe(benchmark::State& state) { EqProbe<HashIndex>(state); }
BENCHMARK(BM_BTreeEqProbe)->Arg(10000)->Arg(100000);
BENCHMARK(BM_HashEqProbe)->Arg(10000)->Arg(100000);

// Range probes: the tree visits only the qualifying leaves; the hash index
// must scan every entry.
template <typename IndexT>
void RangeProbe(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  IndexT idx;
  for (uint32_t i = 0; i < n; ++i) {
    idx.Add(Value::MakeInt(static_cast<int64_t>(i)), R(i));
  }
  for (auto _ : state) {
    size_t hits = 0;
    // v < n/100: a 1% range.
    idx.Probe(CompareOp::kLt, Value::MakeInt(static_cast<int64_t>(n / 100)),
              [&](const Ref&) {
                ++hits;
                return true;
              });
    benchmark::DoNotOptimize(hits);
  }
}

void BM_BTreeRangeProbe(benchmark::State& state) {
  RangeProbe<BTreeIndex>(state);
}
void BM_HashRangeProbe(benchmark::State& state) {
  RangeProbe<HashIndex>(state);
}
BENCHMARK(BM_BTreeRangeProbe)->Arg(10000)->Arg(100000);
BENCHMARK(BM_HashRangeProbe)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace pascalr
