// Experiment E4.6/E4.7 (DESIGN.md): strategy 4 — quantifier evaluation in
// the collection phase. The claims (paper §4.4):
//  - moving the quantifier into the matrix replaces the combination-phase
//    blow-up (build n-tuples, then divide/project them away) by one value
//    list plus per-element probes;
//  - for < / <= only a max (SOME) or min (ALL) need be stored; for = with
//    ALL or <> with SOME at most one value suffices.
//
// Expected shape: O4 eliminates division entirely (division_rows = 0) and
// wins by a growing factor as the quantified relation grows; summary value
// lists store O(1) values where the full list stores O(n).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "refstruct/value_list.h"

namespace pascalr {
namespace {

using bench_util::ExportStats;
using bench_util::MakeScaledDb;
using bench_util::MustRun;

void RunExample21(benchmark::State& state, OptLevel level) {
  size_t n = static_cast<size_t>(state.range(0));
  auto db = MakeScaledDb(n);
  QueryRun last;
  for (auto _ : state) {
    last = MustRun(*db, Example21QuerySource(), level);
    benchmark::DoNotOptimize(last.tuples);
  }
  ExportStats(state, last.stats, last.tuples.size());
  state.counters["eliminated"] =
      static_cast<double>(last.planned.plan.eliminated_vars.size());
}

void BM_S4_DivisionBased(benchmark::State& state) {
  RunExample21(state, OptLevel::kRangeExt);
}
void BM_S4_CollectionPhaseQuantifiers(benchmark::State& state) {
  RunExample21(state, OptLevel::kQuantPush);
}

BENCHMARK(BM_S4_DivisionBased)
    ->Arg(16)
    ->Arg(32)
    ->Arg(48)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_S4_CollectionPhaseQuantifiers)
    ->Arg(16)
    ->Arg(32)
    ->Arg(48)
    ->Arg(2000)  // O4 keeps scaling where division-based plans cannot
    ->Unit(benchmark::kMillisecond);

// The ordering special case: SOME with '<' needs only the maximum.
const char* kOrderingQuery =
    "[<e.ename> OF EACH e IN employees: SOME p IN papers "
    "((e.enr < p.penr))]";

void BM_S4_OrderingProbe(benchmark::State& state) {
  auto db = MakeScaledDb(static_cast<size_t>(state.range(0)));
  QueryRun last;
  for (auto _ : state) {
    last = MustRun(*db, kOrderingQuery, OptLevel::kQuantPush);
    benchmark::DoNotOptimize(last.tuples);
  }
  ExportStats(state, last.stats, last.tuples.size());
  // The value list must be a summary: at most 1 stored value.
  double stored = 0;
  for (const ValueList& vl : last.collection.value_lists) {
    stored += static_cast<double>(vl.stored_values());
  }
  state.counters["stored_values"] = stored;
}

BENCHMARK(BM_S4_OrderingProbe)
    ->Arg(500)
    ->Arg(5000)
    ->Unit(benchmark::kMillisecond);

// Micro-benchmark of the value-list modes themselves: building and probing
// a list of n values.
void BM_S4_ValueListMode(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto mode = static_cast<ValueList::Mode>(state.range(1));
  for (auto _ : state) {
    ValueList vl(mode);
    for (size_t i = 0; i < n; ++i) {
      vl.Add(Value::MakeInt(static_cast<int64_t>(i % 97)));
    }
    bool acc = false;
    for (size_t i = 0; i < 100; ++i) {
      CompareOp op =
          mode == ValueList::Mode::kMaxOnly ? CompareOp::kLt : CompareOp::kEq;
      Result<bool> r = mode == ValueList::Mode::kMaxOnly
                           ? vl.SatisfiesSome(op, Value::MakeInt(50))
                           : vl.SatisfiesSome(CompareOp::kEq,
                                              Value::MakeInt(50));
      if (r.ok()) acc ^= *r;
    }
    benchmark::DoNotOptimize(acc);
    benchmark::DoNotOptimize(vl.stored_values());
  }
  state.counters["mode"] = static_cast<double>(state.range(1));
}

BENCHMARK(BM_S4_ValueListMode)
    ->Args({10000, static_cast<int>(ValueList::Mode::kFull)})
    ->Args({10000, static_cast<int>(ValueList::Mode::kMaxOnly)})
    ->Args({100000, static_cast<int>(ValueList::Mode::kFull)})
    ->Args({100000, static_cast<int>(ValueList::Mode::kMaxOnly)});

}  // namespace
}  // namespace pascalr
