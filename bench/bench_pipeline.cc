// Experiment Q (DESIGN.md): the headline series — the full Example 2.1
// query at every optimization level O0..O4 over growing scale factors.
//
// Expected shape (paper §4, overall claim): the naive combination phase
// grows with the *product* of the range cardinalities while O1..O4 stay
// near-linear; each added strategy reduces total work, with the largest
// single step from O3/O4's treatment of the universal quantifier.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace pascalr {
namespace {

using bench_util::ExportStats;
using bench_util::MakeScaledDb;
using bench_util::MustRun;

void RunPipeline(benchmark::State& state) {
  OptLevel level = static_cast<OptLevel>(state.range(0));
  size_t n = static_cast<size_t>(state.range(1));
  auto db = MakeScaledDb(n);
  QueryRun last;
  for (auto _ : state) {
    last = MustRun(*db, Example21QuerySource(), level);
    benchmark::DoNotOptimize(last.tuples);
  }
  ExportStats(state, last.stats, last.tuples.size());
  state.SetLabel(std::string(OptLevelToString(level)));
}

BENCHMARK(RunPipeline)
    // O0: the full n-tuple products cap the feasible scale.
    ->Args({0, 8})
    ->Args({0, 16})
    ->Args({0, 24})
    ->Args({1, 8})
    ->Args({1, 16})
    ->Args({1, 24})
    ->Args({2, 8})
    ->Args({2, 16})
    ->Args({2, 24})
    ->Args({2, 32})
    ->Args({3, 8})
    ->Args({3, 16})
    ->Args({3, 24})
    ->Args({3, 48})
    ->Args({3, 64})
    ->Args({4, 8})
    ->Args({4, 16})
    ->Args({4, 24})
    ->Args({4, 48})
    ->Args({4, 96})
    ->Args({4, 1000})
    ->Args({4, 4000})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pascalr
