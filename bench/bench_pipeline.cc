// Experiment Q (DESIGN.md): the headline series — the full Example 2.1
// query at every optimization level O0..O4 over growing scale factors —
// plus the streamed-vs-materialized combination comparison
// (RunCombination): total drain time, time-to-first-tuple, and
// peak_intermediate_rows for the join-iterator pipeline (src/pipeline/)
// against the materializing combination path over the same plan.
//
// Expected shape (paper §4, overall claim): the naive combination phase
// grows with the *product* of the range cardinalities while O1..O4 stay
// near-linear; each added strategy reduces total work, with the largest
// single step from O3/O4's treatment of the universal quantifier. For
// RunCombination: the pipelined first tuple arrives in near-constant time
// past the collection phase, and the pipelined peak stays flat while the
// materialized peak grows with the joined result.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"
#include "exec/collection.h"
#include "exec/cursor.h"
#include "obs/stmt_stats.h"
#include "pipeline/chunk.h"
#include "pipeline/compile.h"
#include "pipeline/iterators.h"

namespace pascalr {
namespace {

using bench_util::ExportLatencyPercentiles;
using bench_util::ExportStats;
using bench_util::MakeScaledDb;
using bench_util::MustRun;

void RunPipeline(benchmark::State& state) {
  OptLevel level = static_cast<OptLevel>(state.range(0));
  size_t n = static_cast<size_t>(state.range(1));
  auto db = MakeScaledDb(n);
  QueryRun last;
  for (auto _ : state) {
    last = MustRun(*db, Example21QuerySource(), level);
    benchmark::DoNotOptimize(last.tuples);
  }
  ExportStats(state, last.stats, last.tuples.size());
  state.SetLabel(std::string(OptLevelToString(level)));
}

BENCHMARK(RunPipeline)
    // O0: the full n-tuple products cap the feasible scale.
    ->Args({0, 8})
    ->Args({0, 16})
    ->Args({0, 24})
    ->Args({1, 8})
    ->Args({1, 16})
    ->Args({1, 24})
    ->Args({2, 8})
    ->Args({2, 16})
    ->Args({2, 24})
    ->Args({2, 32})
    ->Args({3, 8})
    ->Args({3, 16})
    ->Args({3, 24})
    ->Args({3, 48})
    ->Args({3, 64})
    ->Args({4, 8})
    ->Args({4, 16})
    ->Args({4, 24})
    ->Args({4, 48})
    ->Args({4, 96})
    ->Args({4, 1000})
    ->Args({4, 4000})
    ->Unit(benchmark::kMillisecond);

// Streamed vs materialized combination over one compiled plan: the
// two-free-variable join (Example 2.1's shape without the quantifier
// tail), whose result grows with the matching (e, c) pairs.
//   mode 0: materialized combination, full drain
//   mode 1: pipelined combination, full drain
//   mode 2: pipelined combination, first tuple only (time-to-first-tuple)
void RunCombination(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  int mode = static_cast<int>(state.range(1));
  auto db = MakeScaledDb(n);
  const std::string query =
      "[<e.ename, c.ctitle> OF EACH e IN employees, EACH c IN courses:"
      " SOME t IN timetable ((e.enr = t.tenr) AND (c.cnr = t.tcnr))]";
  Parser parser(query);
  Result<SelectionExpr> sel = parser.ParseSelectionOnly();
  if (!sel.ok()) std::abort();
  Binder binder(db.get());
  Result<BoundQuery> bound = binder.Bind(std::move(sel).value());
  if (!bound.ok()) std::abort();
  PlannerOptions options;
  options.level = OptLevel::kOneStep;
  options.pipeline = mode != 0;
  Result<PlannedQuery> planned =
      PlanQuery(*db, std::move(bound).value(), options);
  if (!planned.ok()) std::abort();
  auto plan = std::make_shared<const QueryPlan>(std::move(planned->plan));

  ExecStats last;
  size_t results = 0;
  for (auto _ : state) {
    Result<Cursor> cursor = Cursor::Open(plan, *db, nullptr);
    if (!cursor.ok()) std::abort();
    Tuple t;
    results = 0;
    while (true) {
      Result<bool> more = cursor->Next(&t);
      if (!more.ok()) std::abort();
      if (!*more) break;
      ++results;
      if (mode == 2) break;  // time-to-first-tuple
    }
    last = cursor->stats();
    cursor->Close();
    benchmark::DoNotOptimize(results);
  }
  ExportStats(state, last, results);
  state.SetLabel(mode == 0   ? "materialized"
                 : mode == 1 ? "pipelined"
                             : "pipelined-first-tuple");
}

BENCHMARK(RunCombination)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Unit(benchmark::kMicrosecond);

// Demand-driven collection over one compiled pipelined plan: eager vs
// lazy population policy, full drain vs time-to-first-tuple, on the
// >=3-input-conjunction acceptance query (sl(c) x ij(c,t) x ij(e,t) at
// O2). Expected shape: lazy time-to-first-tuple beats eager (the cursor
// builds only what the first row demands; `structures_built` /
// `structure_elements` record the skipped work), while eager can win the
// full drain on small relations (lazy pays repeat scans / per-key
// probes — the documented trade).
//   mode 0: eager policy, full drain
//   mode 1: lazy policy, full drain
//   mode 2: eager policy, first tuple only
//   mode 3: lazy policy, first tuple only
void RunCollection(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  int mode = static_cast<int>(state.range(1));
  auto db = MakeScaledDb(n);
  const std::string query =
      "[<e.ename> OF EACH e IN employees:"
      " SOME c IN courses SOME t IN timetable"
      " ((c.clevel <= sophomore) AND (c.cnr = t.tcnr) AND"
      "  (e.enr = t.tenr))]";
  Parser parser(query);
  Result<SelectionExpr> sel = parser.ParseSelectionOnly();
  if (!sel.ok()) std::abort();
  Binder binder(db.get());
  Result<BoundQuery> bound = binder.Bind(std::move(sel).value());
  if (!bound.ok()) std::abort();
  PlannerOptions options;
  options.level = OptLevel::kOneStep;
  options.collection =
      mode % 2 == 1 ? CollectionPolicy::kLazy : CollectionPolicy::kEager;
  Result<PlannedQuery> planned =
      PlanQuery(*db, std::move(bound).value(), options);
  if (!planned.ok()) std::abort();
  auto plan = std::make_shared<const QueryPlan>(std::move(planned->plan));

  ExecStats last;
  size_t results = 0;
  for (auto _ : state) {
    Result<Cursor> cursor = Cursor::Open(plan, *db, nullptr);
    if (!cursor.ok()) std::abort();
    Tuple t;
    results = 0;
    while (true) {
      Result<bool> more = cursor->Next(&t);
      if (!more.ok()) std::abort();
      if (!*more) break;
      ++results;
      if (mode >= 2) break;  // time-to-first-tuple
    }
    last = cursor->stats();
    cursor->Close();
    benchmark::DoNotOptimize(results);
  }
  ExportStats(state, last, results);
  state.SetLabel(mode == 0   ? "eager"
                 : mode == 1 ? "lazy"
                 : mode == 2 ? "eager-first-tuple"
                             : "lazy-first-tuple");
}

BENCHMARK(RunCollection)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 3})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 3})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 3})
    ->Unit(benchmark::kMicrosecond);

// Vectorized drain sweep: the compiled pipeline root drained directly —
// no per-tuple construction, so the timing isolates exactly what
// batching changes (virtual dispatch + per-row bookkeeping per pull).
// The collection phase is hoisted out of the timing loop: every mode
// drains the same prebuilt structures.
//   batch 0: row-at-a-time oracle (one Next per row)
//   batch k: NextBatch with k-row chunks
// Expected shape: throughput climbs steeply from batch 1 to ~64 and
// flattens by 1024 (the default) — the ISSUE's >=2x single-thread win.
void RunBatchSweep(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t batch = static_cast<size_t>(state.range(1));
  auto db = MakeScaledDb(n);
  const std::string query =
      "[<e.ename, c.ctitle> OF EACH e IN employees, EACH c IN courses:"
      " SOME t IN timetable ((e.enr = t.tenr) AND (c.cnr = t.tcnr))]";
  Parser parser(query);
  Result<SelectionExpr> sel = parser.ParseSelectionOnly();
  if (!sel.ok()) std::abort();
  Binder binder(db.get());
  Result<BoundQuery> bound = binder.Bind(std::move(sel).value());
  if (!bound.ok()) std::abort();
  PlannerOptions options;
  options.level = OptLevel::kOneStep;
  options.batch_size = batch == 0 ? Chunk::kDefaultRows : batch;
  Result<PlannedQuery> planned =
      PlanQuery(*db, std::move(bound).value(), options);
  if (!planned.ok()) std::abort();
  const QueryPlan plan = std::move(planned->plan);

  ExecStats coll_stats;
  CollectionBuilders builders(plan, *db, &coll_stats);
  if (!builders.EnsureAll().ok()) std::abort();

  ExecStats last;
  size_t results = 0;
  for (auto _ : state) {
    ExecStats stats;
    PeakTracker tracker(&stats);
    Result<CompiledPipeline> compiled =
        CompilePipeline(plan, &builders, &stats, &tracker);
    if (!compiled.ok()) std::abort();
    results = 0;
    if (batch == 0) {
      RefRow row;
      while (true) {
        Result<bool> more = compiled->root->Next(&row);
        if (!more.ok()) std::abort();
        if (!*more) break;
        ++results;
      }
    } else {
      Chunk chunk;
      chunk.capacity = batch;
      while (true) {
        Result<bool> more = compiled->root->NextBatch(&chunk);
        if (!more.ok()) std::abort();
        if (!*more) break;
        results += chunk.rows;
      }
    }
    last = stats;
    benchmark::DoNotOptimize(results);
  }
  ExportStats(state, last, results);
  state.SetLabel(batch == 0 ? "row-at-a-time"
                            : "batch=" + std::to_string(batch));
}

BENCHMARK(RunBatchSweep)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({256, 64})
    ->Args({256, 256})
    ->Args({256, 1024})
    ->Args({256, 4096})
    ->Args({1000, 0})
    ->Args({1000, 1024})
    ->Unit(benchmark::kMicrosecond);

// The vectorized-kernel win in isolation: the same operator drained
// row-at-a-time (one virtual Next per row) against its native NextBatch
// over 1024-row chunks, paired inside one benchmark so the ratio is
// taken under identical conditions. The full-query sweep above dilutes
// the win with per-row sink work (dedup hashing, construction) that
// batching cannot amortize; this is the number the chunk layer itself
// is responsible for. batch_speedup_rate = row_ns / batch_ns.
void RunOperatorBatchWin(benchmark::State& state) {
  const bool filter_kind = state.range(0) != 0;
  const size_t rows = static_cast<size_t>(state.range(1));
  RefRelation scan_rel = RefRelation::SingleList("a");
  RefRelation stream = RefRelation::IndirectJoin("a", "b");
  RefRelation member = RefRelation::IndirectJoin("a", "b");
  if (filter_kind) {
    for (uint32_t i = 0; i < rows; ++i) {
      stream.Add({Ref{1, i, 1}, Ref{2, i, 1}});
      if (i % 2 == 0) member.Add({Ref{1, i, 1}, Ref{2, i, 1}});
    }
  } else {
    for (uint32_t i = 0; i < rows; ++i) scan_rel.Add({Ref{1, i, 1}});
  }
  ExecStats stats;
  auto make = [&]() -> RefIteratorPtr {
    if (filter_kind) {
      return std::make_unique<FilterIter>(std::make_unique<ScanIter>(&stream),
                                          &member, std::vector<int>{0, 1},
                                          &stats);
    }
    return std::make_unique<ScanIter>(&scan_rel);
  };
  auto drain = [&](bool batched) -> uint64_t {
    RefIteratorPtr it = make();
    const auto t0 = std::chrono::steady_clock::now();
    size_t drained = 0;
    if (batched) {
      Chunk chunk;
      while (true) {
        chunk.capacity = Chunk::kDefaultRows;
        Result<bool> more = it->NextBatch(&chunk);
        if (!more.ok()) std::abort();
        if (!*more) break;
        drained += chunk.rows;
      }
    } else {
      RefRow row;
      while (true) {
        Result<bool> more = it->Next(&row);
        if (!more.ok()) std::abort();
        if (!*more) break;
        ++drained;
      }
    }
    benchmark::DoNotOptimize(drained);
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  };

  uint64_t ns_row = 0;
  uint64_t ns_batch = 0;
  bool row_first = true;
  for (auto _ : state) {
    if (row_first) {
      ns_row += drain(false);
      ns_batch += drain(true);
    } else {
      ns_batch += drain(true);
      ns_row += drain(false);
    }
    row_first = !row_first;
  }
  state.counters["batch_speedup_rate"] =
      ns_batch == 0 ? 0.0
                    : static_cast<double>(ns_row) /
                          static_cast<double>(ns_batch);
  state.SetLabel(filter_kind ? "membership filter, 1024-row chunks"
                             : "single-list scan, 1024-row chunks");
}

BENCHMARK(RunOperatorBatchWin)
    ->Args({0, 200000})
    ->Args({1, 50000})
    ->Unit(benchmark::kMicrosecond);

// Morsel-driven parallel drain scaling: the same two-free-variable join
// compiled with SET PARALLEL <w>, drained through the order-preserving
// morsel merge. Workers=1 runs the serial chain (no pool). Scaling is
// bounded by the host's core count — on a single-core container all
// worker counts serialize and the exported numbers record the
// order-preserving merge's overhead, not a speedup; read the
// morsels_dispatched counter to confirm the parallel path actually ran.
void RunParallelScaling(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t workers = static_cast<size_t>(state.range(1));
  auto db = MakeScaledDb(n);
  const std::string query =
      "[<e.ename, c.ctitle> OF EACH e IN employees, EACH c IN courses:"
      " SOME t IN timetable ((e.enr = t.tenr) AND (c.cnr = t.tcnr))]";
  Parser parser(query);
  Result<SelectionExpr> sel = parser.ParseSelectionOnly();
  if (!sel.ok()) std::abort();
  Binder binder(db.get());
  Result<BoundQuery> bound = binder.Bind(std::move(sel).value());
  if (!bound.ok()) std::abort();
  PlannerOptions options;
  options.level = OptLevel::kOneStep;
  options.parallel = workers;
  Result<PlannedQuery> planned =
      PlanQuery(*db, std::move(bound).value(), options);
  if (!planned.ok()) std::abort();
  const QueryPlan plan = std::move(planned->plan);

  ExecStats coll_stats;
  CollectionBuilders builders(plan, *db, &coll_stats);
  if (!builders.EnsureAll().ok()) std::abort();

  ExecStats last;
  size_t results = 0;
  for (auto _ : state) {
    ExecStats stats;
    PeakTracker tracker(&stats);
    Result<CompiledPipeline> compiled =
        CompilePipeline(plan, &builders, &stats, &tracker);
    if (!compiled.ok()) std::abort();
    results = 0;
    Chunk chunk;
    chunk.capacity = plan.batch_size;
    while (true) {
      Result<bool> more = compiled->root->NextBatch(&chunk);
      if (!more.ok()) std::abort();
      if (!*more) break;
      results += chunk.rows;
    }
    last = stats;
    benchmark::DoNotOptimize(results);
  }
  ExportStats(state, last, results);
  state.SetLabel("workers=" + std::to_string(workers));
}

BENCHMARK(RunParallelScaling)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Unit(benchmark::kMicrosecond);

// Tail-latency exhibit: per-iteration drain latency of the streamed
// combination recorded into the obs/ latency histogram, exported as
// p50/p95/p99/max into BENCH_*.json. Mean-only timing hides the replans
// and cold builds; the percentiles record them.
void RunDrainLatency(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto db = MakeScaledDb(n);
  const std::string query =
      "[<e.ename, c.ctitle> OF EACH e IN employees, EACH c IN courses:"
      " SOME t IN timetable ((e.enr = t.tenr) AND (c.cnr = t.tcnr))]";
  Parser parser(query);
  Result<SelectionExpr> sel = parser.ParseSelectionOnly();
  if (!sel.ok()) std::abort();
  Binder binder(db.get());
  Result<BoundQuery> bound = binder.Bind(std::move(sel).value());
  if (!bound.ok()) std::abort();
  PlannerOptions options;
  options.level = OptLevel::kOneStep;
  Result<PlannedQuery> planned =
      PlanQuery(*db, std::move(bound).value(), options);
  if (!planned.ok()) std::abort();
  auto plan = std::make_shared<const QueryPlan>(std::move(planned->plan));

  LatencyHistogram latency;
  ExecStats last;
  size_t results = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    Result<Cursor> cursor = Cursor::Open(plan, *db, nullptr);
    if (!cursor.ok()) std::abort();
    Tuple t;
    results = 0;
    while (true) {
      Result<bool> more = cursor->Next(&t);
      if (!more.ok()) std::abort();
      if (!*more) break;
      ++results;
    }
    last = cursor->stats();
    cursor->Close();
    latency.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    benchmark::DoNotOptimize(results);
  }
  ExportStats(state, last, results);
  ExportLatencyPercentiles(state, latency, "latency_us");
  state.SetLabel("pipelined-drain");
}

BENCHMARK(RunDrainLatency)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

// Overhead gate for the always-on statement statistics (PR invariant:
// collection stays off the hot row path — ONE fold per statement, at
// drain end). Pairs of drains run back to back, one bare and one
// followed by the StmtStatsStore fold every statement pays, with the
// order alternating to cancel cache-warmth drift; the exported
// fold_overhead_pct is the relative cost of the folded half and CI
// fails the smoke run when it exceeds 5%.
void RunStmtStatsFoldOverhead(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto db = MakeScaledDb(n);
  const std::string query =
      "[<e.ename, c.ctitle> OF EACH e IN employees, EACH c IN courses:"
      " SOME t IN timetable ((e.enr = t.tenr) AND (c.cnr = t.tcnr))]";
  Parser parser(query);
  Result<SelectionExpr> sel = parser.ParseSelectionOnly();
  if (!sel.ok()) std::abort();
  Binder binder(db.get());
  Result<BoundQuery> bound = binder.Bind(std::move(sel).value());
  if (!bound.ok()) std::abort();
  PlannerOptions options;
  options.level = OptLevel::kOneStep;
  Result<PlannedQuery> planned =
      PlanQuery(*db, std::move(bound).value(), options);
  if (!planned.ok()) std::abort();
  auto plan = std::make_shared<const QueryPlan>(std::move(planned->plan));

  StmtStatsStore store;
  auto drain = [&](bool fold) -> uint64_t {
    const auto t0 = std::chrono::steady_clock::now();
    Result<Cursor> cursor = Cursor::Open(plan, *db, nullptr);
    if (!cursor.ok()) std::abort();
    Tuple t;
    uint64_t rows = 0;
    while (true) {
      Result<bool> more = cursor->Next(&t);
      if (!more.ok()) std::abort();
      if (!*more) break;
      ++rows;
    }
    const ExecStats stats = cursor->stats();
    cursor->Close();
    if (fold) {
      StmtObservation obs;
      obs.latency_us = 1;
      obs.rows = rows;
      obs.stats = &stats;
      store.Fold(query, obs);
    }
    benchmark::DoNotOptimize(rows);
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  };

  uint64_t ns_bare = 0;
  uint64_t ns_folded = 0;
  bool bare_first = true;
  for (auto _ : state) {
    if (bare_first) {
      ns_bare += drain(false);
      ns_folded += drain(true);
    } else {
      ns_folded += drain(true);
      ns_bare += drain(false);
    }
    bare_first = !bare_first;
  }
  const double overhead_pct =
      ns_bare == 0 ? 0.0
                   : (static_cast<double>(ns_folded) -
                      static_cast<double>(ns_bare)) *
                         100.0 / static_cast<double>(ns_bare);
  state.counters["fold_overhead_pct"] = overhead_pct;
  state.SetLabel("one fold per drained statement");
}

BENCHMARK(RunStmtStatsFoldOverhead)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pascalr
