// Experiment E4.2 (DESIGN.md): strategy 2 — one-step evaluation of nested
// subexpressions. The claim (paper §4.2): monadic terms gate indirect-join
// emission during the scan, so intermediate reference structures shrink
// with the monadic selectivity; single lists need not be materialised.
//
// Expected shape: O2's ij_refs ≈ selectivity × O1's ij_refs; the win grows
// as the monadic predicate gets more selective.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace pascalr {
namespace {

using bench_util::ExportStats;
using bench_util::MustRun;

std::unique_ptr<Database> DbWithProfessorFraction(size_t n, double fraction) {
  auto db = std::make_unique<Database>();
  if (!CreateUniversitySchema(db.get()).ok()) std::abort();
  UniversityScale scale;
  scale.employees = n;
  scale.papers = 2 * n;
  scale.courses = n / 2 + 1;
  scale.timetable = 3 * n;
  scale.professor_fraction = fraction;
  if (!PopulateSynthetic(db.get(), scale).ok()) std::abort();
  return db;
}

// Monadic term over e gates the dyadic probe into timetable.
const char* kGatedQuery =
    "[<e.ename> OF EACH e IN employees: (e.estatus = professor) AND "
    "SOME t IN timetable ((t.tenr = e.enr))]";

void RunGated(benchmark::State& state, OptLevel level) {
  size_t n = static_cast<size_t>(state.range(0));
  double fraction = static_cast<double>(state.range(1)) / 100.0;
  auto db = DbWithProfessorFraction(n, fraction);
  QueryRun last;
  for (auto _ : state) {
    last = MustRun(*db, kGatedQuery, level);
    benchmark::DoNotOptimize(last.tuples);
  }
  ExportStats(state, last.stats, last.tuples.size());
  state.counters["professor_pct"] = static_cast<double>(state.range(1));
}

void BM_S2_SeparateLists(benchmark::State& state) {
  RunGated(state, OptLevel::kParallel);
}
void BM_S2_OneStepGating(benchmark::State& state) {
  RunGated(state, OptLevel::kOneStep);
}

BENCHMARK(BM_S2_SeparateLists)
    ->Args({500, 5})
    ->Args({500, 30})
    ->Args({500, 90})
    ->Args({2000, 30})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_S2_OneStepGating)
    ->Args({500, 5})
    ->Args({500, 30})
    ->Args({500, 90})
    ->Args({2000, 30})
    ->Unit(benchmark::kMillisecond);

// Mutual restriction: two dyadic terms over e; each probe only emits when
// the other side also matches (semi-join reduction).
const char* kMutualQuery =
    "[<e.ename> OF EACH e IN employees: "
    "SOME t IN timetable ((t.tenr = e.enr)) AND "
    "SOME p IN papers ((p.penr = e.enr) AND (p.pyear = 1977))]";

void RunMutual(benchmark::State& state, OptLevel level) {
  size_t n = static_cast<size_t>(state.range(0));
  auto db = bench_util::MakeScaledDb(n);
  QueryRun last;
  for (auto _ : state) {
    last = MustRun(*db, kMutualQuery, level);
    benchmark::DoNotOptimize(last.tuples);
  }
  ExportStats(state, last.stats, last.tuples.size());
}

void BM_S2_NoMutualRestriction(benchmark::State& state) {
  RunMutual(state, OptLevel::kParallel);
}
void BM_S2_MutualRestriction(benchmark::State& state) {
  RunMutual(state, OptLevel::kOneStep);
}

BENCHMARK(BM_S2_NoMutualRestriction)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_S2_MutualRestriction)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pascalr
