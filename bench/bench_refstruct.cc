// Reference-relation algebra micro-benchmarks: the combination-phase
// operators of §3.3 (natural join, product extension, union, projection).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"  // shared main(): BENCH_*.json reporter

#include "refstruct/ops.h"

namespace pascalr {
namespace {

Ref R(RelationId rel, uint32_t slot) { return Ref{rel, slot, 1}; }

void BM_NaturalJoin(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  RefRelation left({"x", "y"});
  RefRelation right({"y", "z"});
  for (uint32_t i = 0; i < rows; ++i) {
    left.Add({R(1, i % 64), R(2, i)});
    right.Add({R(2, i), R(3, i % 32)});
  }
  for (auto _ : state) {
    ExecStats stats;
    RefRelation joined = NaturalJoin(left, right, &stats);
    benchmark::DoNotOptimize(joined.size());
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_NaturalJoin)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CartesianExtension(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  size_t range = static_cast<size_t>(state.range(1));
  RefRelation base({"x"});
  for (uint32_t i = 0; i < rows; ++i) base.Add({R(1, i)});
  std::vector<Ref> refs;
  for (uint32_t i = 0; i < range; ++i) refs.push_back(R(2, i));
  for (auto _ : state) {
    ExecStats stats;
    RefRelation extended = ProductWithRefs(base, "y", refs, &stats);
    benchmark::DoNotOptimize(extended.size());
  }
}
BENCHMARK(BM_CartesianExtension)->Args({100, 100})->Args({100, 1000})->Args({1000, 100});

void BM_UnionRows(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  RefRelation a({"x", "y"});
  RefRelation b({"x", "y"});
  for (uint32_t i = 0; i < rows; ++i) {
    a.Add({R(1, i), R(2, i)});
    b.Add({R(1, i + static_cast<uint32_t>(rows) / 2), R(2, i)});  // 50% overlap
  }
  for (auto _ : state) {
    ExecStats stats;
    auto u = UnionRows(a, b, &stats);
    benchmark::DoNotOptimize(u->size());
  }
}
BENCHMARK(BM_UnionRows)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Project(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  RefRelation a({"x", "y", "z"});
  for (uint32_t i = 0; i < rows; ++i) {
    a.Add({R(1, i % 64), R(2, i), R(3, i % 16)});
  }
  for (auto _ : state) {
    ExecStats stats;
    auto p = Project(a, {"x", "z"}, &stats);
    benchmark::DoNotOptimize(p->size());
  }
}
BENCHMARK(BM_Project)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace pascalr
