// Shared benchmark helpers: scaled university databases, query running
// with counter extraction, and machine-readable BENCH_*.json emission so
// the perf trajectory of the repo is recorded run over run.

#ifndef PASCALR_BENCH_BENCH_UTIL_H_
#define PASCALR_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "pascalr/pascalr.h"

#if defined(__GLIBC__)
#include <errno.h>  // program_invocation_short_name
#endif

namespace pascalr {
namespace bench_util {

/// A university database scaled by `n` employees (papers 2n, courses n/2,
/// timetable 3n — the proportions of the paper's running example).
inline std::unique_ptr<Database> MakeScaledDb(size_t n, uint64_t seed = 42) {
  auto db = std::make_unique<Database>();
  Status st = CreateUniversitySchema(db.get());
  if (!st.ok()) std::abort();
  UniversityScale scale;
  scale.employees = n;
  scale.papers = 2 * n;
  scale.courses = n / 2 + 1;
  scale.timetable = 3 * n;
  scale.seed = seed;
  st = PopulateSynthetic(db.get(), scale);
  if (!st.ok()) std::abort();
  return db;
}

/// Binds and runs `query` under explicit planner options, aborting on
/// error (benchmarks assume correct plumbing; correctness is the test
/// suite's job).
inline QueryRun MustRunOptions(const Database& db, const std::string& query,
                               const PlannerOptions& options) {
  Parser parser(query);
  Result<SelectionExpr> sel = parser.ParseSelectionOnly();
  if (!sel.ok()) std::abort();
  Binder binder(&db);
  Result<BoundQuery> bound = binder.Bind(std::move(sel).value());
  if (!bound.ok()) std::abort();
  Result<QueryRun> run = RunQuery(db, std::move(bound).value(), options);
  if (!run.ok()) std::abort();
  return std::move(run).value();
}

/// Binds and runs `query` at `level`.
inline QueryRun MustRun(const Database& db, const std::string& query,
                        OptLevel level,
                        DivisionAlgorithm division = DivisionAlgorithm::kHash) {
  PlannerOptions options;
  options.level = level;
  options.division = division;
  return MustRunOptions(db, query, options);
}

/// Publishes the paper-relevant counters on a benchmark state; the
/// counters land in the BENCH_*.json exhibit via the JSON file reporter
/// the shared main() below configures.
inline void ExportStats(benchmark::State& state, const ExecStats& stats,
                        size_t result_size) {
  state.counters["relations_read"] =
      static_cast<double>(stats.relations_read);
  state.counters["elements_scanned"] =
      static_cast<double>(stats.elements_scanned);
  state.counters["index_probes"] = static_cast<double>(stats.index_probes);
  state.counters["sl_refs"] = static_cast<double>(stats.single_list_refs);
  state.counters["ij_refs"] = static_cast<double>(stats.indirect_join_refs);
  state.counters["combination_rows"] =
      static_cast<double>(stats.combination_rows);
  state.counters["division_rows"] =
      static_cast<double>(stats.division_input_rows);
  state.counters["quant_probes"] =
      static_cast<double>(stats.quantifier_probes);
  state.counters["comparisons"] = static_cast<double>(stats.comparisons);
  state.counters["dereferences"] = static_cast<double>(stats.dereferences);
  state.counters["replans"] = static_cast<double>(stats.replans);
  state.counters["perm_index_hits"] =
      static_cast<double>(stats.permanent_index_hits);
  state.counters["peak_rows"] =
      static_cast<double>(stats.peak_intermediate_rows);
  state.counters["structures_built"] =
      static_cast<double>(stats.structures_built);
  state.counters["structure_elements"] =
      static_cast<double>(stats.structure_elements_built);
  state.counters["batches_emitted"] =
      static_cast<double>(stats.batches_emitted);
  state.counters["morsels_dispatched"] =
      static_cast<double>(stats.morsels_dispatched);
  state.counters["total_work"] = static_cast<double>(stats.TotalWork());
  state.counters["result"] = static_cast<double>(result_size);
}

/// Publishes a latency histogram's percentile summary on a benchmark
/// state under `prefix` (e.g. "latency_us"); the percentiles land in the
/// BENCH_*.json exhibit next to the work counters, giving the perf
/// trajectory tail latencies rather than only means.
inline void ExportLatencyPercentiles(benchmark::State& state,
                                     const LatencyHistogram& histogram,
                                     const std::string& prefix) {
  if (histogram.count() == 0) return;
  state.counters[prefix + "_p50"] =
      static_cast<double>(histogram.Percentile(0.50));
  state.counters[prefix + "_p95"] =
      static_cast<double>(histogram.Percentile(0.95));
  state.counters[prefix + "_p99"] =
      static_cast<double>(histogram.Percentile(0.99));
  state.counters[prefix + "_max"] = static_cast<double>(histogram.max());
  state.counters[prefix + "_mean"] = static_cast<double>(histogram.Mean());
}

}  // namespace bench_util
}  // namespace pascalr

/// Shared benchmark main: like BENCHMARK_MAIN(), but defaults the file
/// reporter to machine-readable JSON at
/// $PASCALR_BENCH_JSON_DIR/BENCH_<binary>.json (cwd when unset) so every
/// bench run leaves a record the perf trajectory can be read from.
/// Explicit --benchmark_out= flags still win. Each bench target is one
/// translation unit including this header, so defining main here is safe
/// (CMake links the plain benchmark library, not benchmark_main).
int main(int argc, char** argv) {
  std::string binary = "bench";
#if defined(__GLIBC__)
  binary = program_invocation_short_name;
#endif
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  std::vector<std::string> extra;
  if (!has_out) {
    std::string dir;
    if (const char* env = std::getenv("PASCALR_BENCH_JSON_DIR")) {
      dir = std::string(env) + "/";
    }
    extra.push_back("--benchmark_out=" + dir + "BENCH_" + binary + ".json");
    extra.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> args(argv, argv + argc);
  for (std::string& flag : extra) args.push_back(flag.data());
  int args_count = static_cast<int>(args.size());
  ::benchmark::Initialize(&args_count, args.data());
  if (::benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

#endif  // PASCALR_BENCH_BENCH_UTIL_H_
