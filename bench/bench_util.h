// Shared benchmark helpers: scaled university databases and query running
// with counter extraction.

#ifndef PASCALR_BENCH_BENCH_UTIL_H_
#define PASCALR_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <memory>

#include "pascalr/pascalr.h"

namespace pascalr {
namespace bench_util {

/// A university database scaled by `n` employees (papers 2n, courses n/2,
/// timetable 3n — the proportions of the paper's running example).
inline std::unique_ptr<Database> MakeScaledDb(size_t n, uint64_t seed = 42) {
  auto db = std::make_unique<Database>();
  Status st = CreateUniversitySchema(db.get());
  if (!st.ok()) std::abort();
  UniversityScale scale;
  scale.employees = n;
  scale.papers = 2 * n;
  scale.courses = n / 2 + 1;
  scale.timetable = 3 * n;
  scale.seed = seed;
  st = PopulateSynthetic(db.get(), scale);
  if (!st.ok()) std::abort();
  return db;
}

/// Binds and runs `query` at `level`, aborting on error (benchmarks assume
/// correct plumbing; correctness is the test suite's job).
inline QueryRun MustRun(const Database& db, const std::string& query,
                        OptLevel level,
                        DivisionAlgorithm division = DivisionAlgorithm::kHash) {
  Parser parser(query);
  Result<SelectionExpr> sel = parser.ParseSelectionOnly();
  if (!sel.ok()) std::abort();
  Binder binder(&db);
  Result<BoundQuery> bound = binder.Bind(std::move(sel).value());
  if (!bound.ok()) std::abort();
  PlannerOptions options;
  options.level = level;
  options.division = division;
  Result<QueryRun> run = RunQuery(db, std::move(bound).value(), options);
  if (!run.ok()) std::abort();
  return std::move(run).value();
}

/// Publishes the paper-relevant counters on a benchmark state.
inline void ExportStats(benchmark::State& state, const ExecStats& stats,
                        size_t result_size) {
  state.counters["relations_read"] =
      static_cast<double>(stats.relations_read);
  state.counters["elements_scanned"] =
      static_cast<double>(stats.elements_scanned);
  state.counters["sl_refs"] = static_cast<double>(stats.single_list_refs);
  state.counters["ij_refs"] = static_cast<double>(stats.indirect_join_refs);
  state.counters["combination_rows"] =
      static_cast<double>(stats.combination_rows);
  state.counters["division_rows"] =
      static_cast<double>(stats.division_input_rows);
  state.counters["quant_probes"] =
      static_cast<double>(stats.quantifier_probes);
  state.counters["total_work"] = static_cast<double>(stats.TotalWork());
  state.counters["result"] = static_cast<double>(result_size);
}

}  // namespace bench_util
}  // namespace pascalr

#endif  // PASCALR_BENCH_BENCH_UTIL_H_
