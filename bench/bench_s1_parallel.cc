// Experiment E4.1/E4.3 (DESIGN.md): strategy 1 — parallel evaluation of
// subexpressions. The claim (paper §4.1): grouping all join terms over a
// relation into one scan reads each database relation at most once, where
// the naive plan reads it once per term.
//
// Expected shape: O1's relations_read is exactly 4 (the number of
// relations) at every scale; O0's is larger and term-count-dependent.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace pascalr {
namespace {

using bench_util::ExportStats;
using bench_util::MakeScaledDb;
using bench_util::MustRun;

void RunExample21(benchmark::State& state, OptLevel level) {
  size_t n = static_cast<size_t>(state.range(0));
  auto db = MakeScaledDb(n);
  QueryRun last;
  for (auto _ : state) {
    last = MustRun(*db, Example21QuerySource(), level);
    benchmark::DoNotOptimize(last.tuples);
  }
  ExportStats(state, last.stats, last.tuples.size());
}

void BM_S1_NaiveScans(benchmark::State& state) {
  RunExample21(state, OptLevel::kNaive);
}

void BM_S1_OneScanPerRelation(benchmark::State& state) {
  RunExample21(state, OptLevel::kParallel);
}

// The naive level's combination phase materialises full n-tuple products;
// keep its scales small. O1 shares that combination strategy, so the same
// scales are used for a like-for-like collection-phase comparison.
BENCHMARK(BM_S1_NaiveScans)->Arg(8)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_S1_OneScanPerRelation)
    ->Arg(8)
    ->Arg(16)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond);

// Collection-phase-only comparison at larger scales: a query with no
// universal quantifier and a selective matrix keeps combination small, so
// the scan-count difference dominates.
void RunScanHeavy(benchmark::State& state, OptLevel level) {
  size_t n = static_cast<size_t>(state.range(0));
  auto db = MakeScaledDb(n);
  // Four terms over employees + two over timetable: the naive plan scans
  // employees four times and timetable three times.
  const std::string query =
      "[<e.ename> OF EACH e IN employees: "
      "(e.estatus = professor) AND (e.enr >= 1) AND (e.ename <> 'E0') AND "
      "SOME t IN timetable ((t.tenr = e.enr) AND (t.ttime >= 9000000))]";
  QueryRun last;
  for (auto _ : state) {
    last = MustRun(*db, query, level);
    benchmark::DoNotOptimize(last.tuples);
  }
  ExportStats(state, last.stats, last.tuples.size());
}

void BM_S1_ScanHeavy_Naive(benchmark::State& state) {
  RunScanHeavy(state, OptLevel::kNaive);
}
void BM_S1_ScanHeavy_Parallel(benchmark::State& state) {
  RunScanHeavy(state, OptLevel::kParallel);
}

BENCHMARK(BM_S1_ScanHeavy_Naive)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_S1_ScanHeavy_Parallel)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pascalr
