# Empty compiler generated dependencies file for bench_s3_range_ext.
# This may be replaced when dependencies are built.
