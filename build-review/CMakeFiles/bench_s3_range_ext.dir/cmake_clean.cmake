file(REMOVE_RECURSE
  "CMakeFiles/bench_s3_range_ext.dir/bench/bench_s3_range_ext.cc.o"
  "CMakeFiles/bench_s3_range_ext.dir/bench/bench_s3_range_ext.cc.o.d"
  "bench_s3_range_ext"
  "bench_s3_range_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s3_range_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
