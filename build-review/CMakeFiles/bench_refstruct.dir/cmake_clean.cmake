file(REMOVE_RECURSE
  "CMakeFiles/bench_refstruct.dir/bench/bench_refstruct.cc.o"
  "CMakeFiles/bench_refstruct.dir/bench/bench_refstruct.cc.o.d"
  "bench_refstruct"
  "bench_refstruct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refstruct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
