# Empty dependencies file for bench_refstruct.
# This may be replaced when dependencies are built.
