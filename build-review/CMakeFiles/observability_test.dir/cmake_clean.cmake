file(REMOVE_RECURSE
  "CMakeFiles/observability_test.dir/tests/observability_test.cc.o"
  "CMakeFiles/observability_test.dir/tests/observability_test.cc.o.d"
  "observability_test"
  "observability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/observability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
