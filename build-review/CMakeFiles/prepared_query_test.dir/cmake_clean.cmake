file(REMOVE_RECURSE
  "CMakeFiles/prepared_query_test.dir/tests/prepared_query_test.cc.o"
  "CMakeFiles/prepared_query_test.dir/tests/prepared_query_test.cc.o.d"
  "prepared_query_test"
  "prepared_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prepared_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
