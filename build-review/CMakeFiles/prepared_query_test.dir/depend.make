# Empty dependencies file for prepared_query_test.
# This may be replaced when dependencies are built.
