file(REMOVE_RECURSE
  "CMakeFiles/ref_relation_test.dir/tests/ref_relation_test.cc.o"
  "CMakeFiles/ref_relation_test.dir/tests/ref_relation_test.cc.o.d"
  "ref_relation_test"
  "ref_relation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
