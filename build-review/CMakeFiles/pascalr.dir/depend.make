# Empty dependencies file for pascalr.
# This may be replaced when dependencies are built.
