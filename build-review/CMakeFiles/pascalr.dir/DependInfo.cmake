
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/logging.cc" "CMakeFiles/pascalr.dir/src/base/logging.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/base/logging.cc.o.d"
  "/root/repo/src/base/status.cc" "CMakeFiles/pascalr.dir/src/base/status.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/base/status.cc.o.d"
  "/root/repo/src/base/str_util.cc" "CMakeFiles/pascalr.dir/src/base/str_util.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/base/str_util.cc.o.d"
  "/root/repo/src/calculus/ast.cc" "CMakeFiles/pascalr.dir/src/calculus/ast.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/calculus/ast.cc.o.d"
  "/root/repo/src/calculus/printer.cc" "CMakeFiles/pascalr.dir/src/calculus/printer.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/calculus/printer.cc.o.d"
  "/root/repo/src/catalog/database.cc" "CMakeFiles/pascalr.dir/src/catalog/database.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/catalog/database.cc.o.d"
  "/root/repo/src/catalog/relation_stats.cc" "CMakeFiles/pascalr.dir/src/catalog/relation_stats.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/catalog/relation_stats.cc.o.d"
  "/root/repo/src/concurrency/plan_cache.cc" "CMakeFiles/pascalr.dir/src/concurrency/plan_cache.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/concurrency/plan_cache.cc.o.d"
  "/root/repo/src/concurrency/snapshot.cc" "CMakeFiles/pascalr.dir/src/concurrency/snapshot.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/concurrency/snapshot.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "CMakeFiles/pascalr.dir/src/cost/cost_model.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/cost/cost_model.cc.o.d"
  "/root/repo/src/cost/plan_search.cc" "CMakeFiles/pascalr.dir/src/cost/plan_search.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/cost/plan_search.cc.o.d"
  "/root/repo/src/cost/selectivity.cc" "CMakeFiles/pascalr.dir/src/cost/selectivity.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/cost/selectivity.cc.o.d"
  "/root/repo/src/exec/collection.cc" "CMakeFiles/pascalr.dir/src/exec/collection.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/exec/collection.cc.o.d"
  "/root/repo/src/exec/combination.cc" "CMakeFiles/pascalr.dir/src/exec/combination.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/exec/combination.cc.o.d"
  "/root/repo/src/exec/construction.cc" "CMakeFiles/pascalr.dir/src/exec/construction.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/exec/construction.cc.o.d"
  "/root/repo/src/exec/cursor.cc" "CMakeFiles/pascalr.dir/src/exec/cursor.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/exec/cursor.cc.o.d"
  "/root/repo/src/exec/evaluator.cc" "CMakeFiles/pascalr.dir/src/exec/evaluator.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/exec/evaluator.cc.o.d"
  "/root/repo/src/exec/naive.cc" "CMakeFiles/pascalr.dir/src/exec/naive.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/exec/naive.cc.o.d"
  "/root/repo/src/exec/stats.cc" "CMakeFiles/pascalr.dir/src/exec/stats.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/exec/stats.cc.o.d"
  "/root/repo/src/index/btree_index.cc" "CMakeFiles/pascalr.dir/src/index/btree_index.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/index/btree_index.cc.o.d"
  "/root/repo/src/index/hash_index.cc" "CMakeFiles/pascalr.dir/src/index/hash_index.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/index/hash_index.cc.o.d"
  "/root/repo/src/joinorder/attach.cc" "CMakeFiles/pascalr.dir/src/joinorder/attach.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/joinorder/attach.cc.o.d"
  "/root/repo/src/joinorder/dp.cc" "CMakeFiles/pascalr.dir/src/joinorder/dp.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/joinorder/dp.cc.o.d"
  "/root/repo/src/joinorder/heuristics.cc" "CMakeFiles/pascalr.dir/src/joinorder/heuristics.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/joinorder/heuristics.cc.o.d"
  "/root/repo/src/joinorder/join_graph.cc" "CMakeFiles/pascalr.dir/src/joinorder/join_graph.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/joinorder/join_graph.cc.o.d"
  "/root/repo/src/normalize/dnf.cc" "CMakeFiles/pascalr.dir/src/normalize/dnf.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/normalize/dnf.cc.o.d"
  "/root/repo/src/normalize/fold_empty.cc" "CMakeFiles/pascalr.dir/src/normalize/fold_empty.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/normalize/fold_empty.cc.o.d"
  "/root/repo/src/normalize/nnf.cc" "CMakeFiles/pascalr.dir/src/normalize/nnf.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/normalize/nnf.cc.o.d"
  "/root/repo/src/normalize/one_sorted.cc" "CMakeFiles/pascalr.dir/src/normalize/one_sorted.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/normalize/one_sorted.cc.o.d"
  "/root/repo/src/normalize/prenex.cc" "CMakeFiles/pascalr.dir/src/normalize/prenex.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/normalize/prenex.cc.o.d"
  "/root/repo/src/normalize/rename.cc" "CMakeFiles/pascalr.dir/src/normalize/rename.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/normalize/rename.cc.o.d"
  "/root/repo/src/normalize/standard_form.cc" "CMakeFiles/pascalr.dir/src/normalize/standard_form.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/normalize/standard_form.cc.o.d"
  "/root/repo/src/obs/metrics.cc" "CMakeFiles/pascalr.dir/src/obs/metrics.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/obs/metrics.cc.o.d"
  "/root/repo/src/obs/profile.cc" "CMakeFiles/pascalr.dir/src/obs/profile.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/obs/profile.cc.o.d"
  "/root/repo/src/obs/trace.cc" "CMakeFiles/pascalr.dir/src/obs/trace.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/obs/trace.cc.o.d"
  "/root/repo/src/obs/trace_export.cc" "CMakeFiles/pascalr.dir/src/obs/trace_export.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/obs/trace_export.cc.o.d"
  "/root/repo/src/opt/explain.cc" "CMakeFiles/pascalr.dir/src/opt/explain.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/opt/explain.cc.o.d"
  "/root/repo/src/opt/params.cc" "CMakeFiles/pascalr.dir/src/opt/params.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/opt/params.cc.o.d"
  "/root/repo/src/opt/planner.cc" "CMakeFiles/pascalr.dir/src/opt/planner.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/opt/planner.cc.o.d"
  "/root/repo/src/opt/quant_pushdown.cc" "CMakeFiles/pascalr.dir/src/opt/quant_pushdown.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/opt/quant_pushdown.cc.o.d"
  "/root/repo/src/opt/range_extension.cc" "CMakeFiles/pascalr.dir/src/opt/range_extension.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/opt/range_extension.cc.o.d"
  "/root/repo/src/opt/scan_plan.cc" "CMakeFiles/pascalr.dir/src/opt/scan_plan.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/opt/scan_plan.cc.o.d"
  "/root/repo/src/parser/lexer.cc" "CMakeFiles/pascalr.dir/src/parser/lexer.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/parser/lexer.cc.o.d"
  "/root/repo/src/parser/parser.cc" "CMakeFiles/pascalr.dir/src/parser/parser.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/parser/parser.cc.o.d"
  "/root/repo/src/pascalr/dsl.cc" "CMakeFiles/pascalr.dir/src/pascalr/dsl.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/pascalr/dsl.cc.o.d"
  "/root/repo/src/pascalr/export.cc" "CMakeFiles/pascalr.dir/src/pascalr/export.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/pascalr/export.cc.o.d"
  "/root/repo/src/pascalr/prepared.cc" "CMakeFiles/pascalr.dir/src/pascalr/prepared.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/pascalr/prepared.cc.o.d"
  "/root/repo/src/pascalr/sample_db.cc" "CMakeFiles/pascalr.dir/src/pascalr/sample_db.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/pascalr/sample_db.cc.o.d"
  "/root/repo/src/pascalr/session.cc" "CMakeFiles/pascalr.dir/src/pascalr/session.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/pascalr/session.cc.o.d"
  "/root/repo/src/pipeline/compile.cc" "CMakeFiles/pascalr.dir/src/pipeline/compile.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/pipeline/compile.cc.o.d"
  "/root/repo/src/pipeline/iterators.cc" "CMakeFiles/pascalr.dir/src/pipeline/iterators.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/pipeline/iterators.cc.o.d"
  "/root/repo/src/pipeline/shape.cc" "CMakeFiles/pascalr.dir/src/pipeline/shape.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/pipeline/shape.cc.o.d"
  "/root/repo/src/refstruct/division.cc" "CMakeFiles/pascalr.dir/src/refstruct/division.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/refstruct/division.cc.o.d"
  "/root/repo/src/refstruct/ops.cc" "CMakeFiles/pascalr.dir/src/refstruct/ops.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/refstruct/ops.cc.o.d"
  "/root/repo/src/refstruct/ref_relation.cc" "CMakeFiles/pascalr.dir/src/refstruct/ref_relation.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/refstruct/ref_relation.cc.o.d"
  "/root/repo/src/refstruct/value_list.cc" "CMakeFiles/pascalr.dir/src/refstruct/value_list.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/refstruct/value_list.cc.o.d"
  "/root/repo/src/semantics/binder.cc" "CMakeFiles/pascalr.dir/src/semantics/binder.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/semantics/binder.cc.o.d"
  "/root/repo/src/storage/relation.cc" "CMakeFiles/pascalr.dir/src/storage/relation.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/storage/relation.cc.o.d"
  "/root/repo/src/value/schema.cc" "CMakeFiles/pascalr.dir/src/value/schema.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/value/schema.cc.o.d"
  "/root/repo/src/value/tuple.cc" "CMakeFiles/pascalr.dir/src/value/tuple.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/value/tuple.cc.o.d"
  "/root/repo/src/value/type.cc" "CMakeFiles/pascalr.dir/src/value/type.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/value/type.cc.o.d"
  "/root/repo/src/value/value.cc" "CMakeFiles/pascalr.dir/src/value/value.cc.o" "gcc" "CMakeFiles/pascalr.dir/src/value/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
