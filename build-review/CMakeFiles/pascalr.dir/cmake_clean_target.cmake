file(REMOVE_RECURSE
  "libpascalr.a"
)
