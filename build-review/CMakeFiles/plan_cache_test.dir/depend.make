# Empty dependencies file for plan_cache_test.
# This may be replaced when dependencies are built.
