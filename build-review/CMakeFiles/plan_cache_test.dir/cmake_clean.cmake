file(REMOVE_RECURSE
  "CMakeFiles/plan_cache_test.dir/tests/plan_cache_test.cc.o"
  "CMakeFiles/plan_cache_test.dir/tests/plan_cache_test.cc.o.d"
  "plan_cache_test"
  "plan_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
