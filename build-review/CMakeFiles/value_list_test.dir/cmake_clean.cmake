file(REMOVE_RECURSE
  "CMakeFiles/value_list_test.dir/tests/value_list_test.cc.o"
  "CMakeFiles/value_list_test.dir/tests/value_list_test.cc.o.d"
  "value_list_test"
  "value_list_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
