# Empty dependencies file for value_list_test.
# This may be replaced when dependencies are built.
