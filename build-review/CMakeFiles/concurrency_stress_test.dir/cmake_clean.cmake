file(REMOVE_RECURSE
  "CMakeFiles/concurrency_stress_test.dir/tests/concurrency_stress_test.cc.o"
  "CMakeFiles/concurrency_stress_test.dir/tests/concurrency_stress_test.cc.o.d"
  "concurrency_stress_test"
  "concurrency_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrency_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
