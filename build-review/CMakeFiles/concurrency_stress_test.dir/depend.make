# Empty dependencies file for concurrency_stress_test.
# This may be replaced when dependencies are built.
