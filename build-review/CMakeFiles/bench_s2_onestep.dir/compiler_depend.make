# Empty compiler generated dependencies file for bench_s2_onestep.
# This may be replaced when dependencies are built.
