file(REMOVE_RECURSE
  "CMakeFiles/bench_s2_onestep.dir/bench/bench_s2_onestep.cc.o"
  "CMakeFiles/bench_s2_onestep.dir/bench/bench_s2_onestep.cc.o.d"
  "bench_s2_onestep"
  "bench_s2_onestep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s2_onestep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
