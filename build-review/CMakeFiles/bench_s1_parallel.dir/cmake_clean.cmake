file(REMOVE_RECURSE
  "CMakeFiles/bench_s1_parallel.dir/bench/bench_s1_parallel.cc.o"
  "CMakeFiles/bench_s1_parallel.dir/bench/bench_s1_parallel.cc.o.d"
  "bench_s1_parallel"
  "bench_s1_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s1_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
