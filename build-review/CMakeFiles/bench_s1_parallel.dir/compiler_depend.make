# Empty compiler generated dependencies file for bench_s1_parallel.
# This may be replaced when dependencies are built.
