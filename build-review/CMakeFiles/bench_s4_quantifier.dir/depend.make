# Empty dependencies file for bench_s4_quantifier.
# This may be replaced when dependencies are built.
