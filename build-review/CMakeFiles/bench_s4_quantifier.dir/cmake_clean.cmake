file(REMOVE_RECURSE
  "CMakeFiles/bench_s4_quantifier.dir/bench/bench_s4_quantifier.cc.o"
  "CMakeFiles/bench_s4_quantifier.dir/bench/bench_s4_quantifier.cc.o.d"
  "bench_s4_quantifier"
  "bench_s4_quantifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s4_quantifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
