# Empty dependencies file for plan_equivalence_property_test.
# This may be replaced when dependencies are built.
