# Empty compiler generated dependencies file for plan_equivalence_property_test.
# This may be replaced when dependencies are built.
