file(REMOVE_RECURSE
  "CMakeFiles/plan_equivalence_property_test.dir/tests/plan_equivalence_property_test.cc.o"
  "CMakeFiles/plan_equivalence_property_test.dir/tests/plan_equivalence_property_test.cc.o.d"
  "plan_equivalence_property_test"
  "plan_equivalence_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_equivalence_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
