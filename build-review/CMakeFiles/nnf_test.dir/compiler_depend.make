# Empty compiler generated dependencies file for nnf_test.
# This may be replaced when dependencies are built.
