file(REMOVE_RECURSE
  "CMakeFiles/nnf_test.dir/tests/nnf_test.cc.o"
  "CMakeFiles/nnf_test.dir/tests/nnf_test.cc.o.d"
  "nnf_test"
  "nnf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nnf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
