file(REMOVE_RECURSE
  "CMakeFiles/lemma1_property_test.dir/tests/lemma1_property_test.cc.o"
  "CMakeFiles/lemma1_property_test.dir/tests/lemma1_property_test.cc.o.d"
  "lemma1_property_test"
  "lemma1_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma1_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
