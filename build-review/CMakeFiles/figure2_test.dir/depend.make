# Empty dependencies file for figure2_test.
# This may be replaced when dependencies are built.
