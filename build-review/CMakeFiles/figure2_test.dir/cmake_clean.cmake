file(REMOVE_RECURSE
  "CMakeFiles/figure2_test.dir/tests/figure2_test.cc.o"
  "CMakeFiles/figure2_test.dir/tests/figure2_test.cc.o.d"
  "figure2_test"
  "figure2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
