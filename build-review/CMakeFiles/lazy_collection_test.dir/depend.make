# Empty dependencies file for lazy_collection_test.
# This may be replaced when dependencies are built.
