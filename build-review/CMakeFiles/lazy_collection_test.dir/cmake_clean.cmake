file(REMOVE_RECURSE
  "CMakeFiles/lazy_collection_test.dir/tests/lazy_collection_test.cc.o"
  "CMakeFiles/lazy_collection_test.dir/tests/lazy_collection_test.cc.o.d"
  "lazy_collection_test"
  "lazy_collection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazy_collection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
