file(REMOVE_RECURSE
  "CMakeFiles/combination_test.dir/tests/combination_test.cc.o"
  "CMakeFiles/combination_test.dir/tests/combination_test.cc.o.d"
  "combination_test"
  "combination_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combination_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
