# Empty compiler generated dependencies file for combination_test.
# This may be replaced when dependencies are built.
