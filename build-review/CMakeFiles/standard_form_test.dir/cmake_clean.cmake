file(REMOVE_RECURSE
  "CMakeFiles/standard_form_test.dir/tests/standard_form_test.cc.o"
  "CMakeFiles/standard_form_test.dir/tests/standard_form_test.cc.o.d"
  "standard_form_test"
  "standard_form_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/standard_form_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
