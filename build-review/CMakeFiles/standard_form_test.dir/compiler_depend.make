# Empty compiler generated dependencies file for standard_form_test.
# This may be replaced when dependencies are built.
