file(REMOVE_RECURSE
  "CMakeFiles/catalog_stats_test.dir/tests/catalog_stats_test.cc.o"
  "CMakeFiles/catalog_stats_test.dir/tests/catalog_stats_test.cc.o.d"
  "catalog_stats_test"
  "catalog_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
