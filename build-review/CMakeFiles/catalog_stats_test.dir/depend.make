# Empty dependencies file for catalog_stats_test.
# This may be replaced when dependencies are built.
