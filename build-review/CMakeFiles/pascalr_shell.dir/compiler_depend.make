# Empty compiler generated dependencies file for pascalr_shell.
# This may be replaced when dependencies are built.
