file(REMOVE_RECURSE
  "CMakeFiles/pascalr_shell.dir/examples/pascalr_shell.cpp.o"
  "CMakeFiles/pascalr_shell.dir/examples/pascalr_shell.cpp.o.d"
  "pascalr_shell"
  "pascalr_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pascalr_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
