file(REMOVE_RECURSE
  "CMakeFiles/quant_pushdown_test.dir/tests/quant_pushdown_test.cc.o"
  "CMakeFiles/quant_pushdown_test.dir/tests/quant_pushdown_test.cc.o.d"
  "quant_pushdown_test"
  "quant_pushdown_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quant_pushdown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
