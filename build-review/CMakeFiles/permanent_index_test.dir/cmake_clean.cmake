file(REMOVE_RECURSE
  "CMakeFiles/permanent_index_test.dir/tests/permanent_index_test.cc.o"
  "CMakeFiles/permanent_index_test.dir/tests/permanent_index_test.cc.o.d"
  "permanent_index_test"
  "permanent_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/permanent_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
