# Empty compiler generated dependencies file for permanent_index_test.
# This may be replaced when dependencies are built.
