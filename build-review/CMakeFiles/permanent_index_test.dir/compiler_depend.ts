# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for permanent_index_test.
