file(REMOVE_RECURSE
  "CMakeFiles/bench_division.dir/bench/bench_division.cc.o"
  "CMakeFiles/bench_division.dir/bench/bench_division.cc.o.d"
  "bench_division"
  "bench_division.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_division.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
