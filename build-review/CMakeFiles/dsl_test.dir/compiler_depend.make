# Empty compiler generated dependencies file for dsl_test.
# This may be replaced when dependencies are built.
