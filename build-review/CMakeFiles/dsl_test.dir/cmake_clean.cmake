file(REMOVE_RECURSE
  "CMakeFiles/dsl_test.dir/tests/dsl_test.cc.o"
  "CMakeFiles/dsl_test.dir/tests/dsl_test.cc.o.d"
  "dsl_test"
  "dsl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
