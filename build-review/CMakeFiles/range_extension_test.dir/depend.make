# Empty dependencies file for range_extension_test.
# This may be replaced when dependencies are built.
