file(REMOVE_RECURSE
  "CMakeFiles/range_extension_test.dir/tests/range_extension_test.cc.o"
  "CMakeFiles/range_extension_test.dir/tests/range_extension_test.cc.o.d"
  "range_extension_test"
  "range_extension_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_extension_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
