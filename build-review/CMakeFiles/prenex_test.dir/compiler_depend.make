# Empty compiler generated dependencies file for prenex_test.
# This may be replaced when dependencies are built.
