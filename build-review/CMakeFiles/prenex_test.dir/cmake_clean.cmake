file(REMOVE_RECURSE
  "CMakeFiles/prenex_test.dir/tests/prenex_test.cc.o"
  "CMakeFiles/prenex_test.dir/tests/prenex_test.cc.o.d"
  "prenex_test"
  "prenex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prenex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
