file(REMOVE_RECURSE
  "CMakeFiles/auto_planner_test.dir/tests/auto_planner_test.cc.o"
  "CMakeFiles/auto_planner_test.dir/tests/auto_planner_test.cc.o.d"
  "auto_planner_test"
  "auto_planner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
