# Empty compiler generated dependencies file for auto_planner_test.
# This may be replaced when dependencies are built.
