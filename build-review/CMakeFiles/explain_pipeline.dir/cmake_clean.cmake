file(REMOVE_RECURSE
  "CMakeFiles/explain_pipeline.dir/examples/explain_pipeline.cpp.o"
  "CMakeFiles/explain_pipeline.dir/examples/explain_pipeline.cpp.o.d"
  "explain_pipeline"
  "explain_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
