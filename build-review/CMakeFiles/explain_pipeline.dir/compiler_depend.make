# Empty compiler generated dependencies file for explain_pipeline.
# This may be replaced when dependencies are built.
