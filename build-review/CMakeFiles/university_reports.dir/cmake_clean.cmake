file(REMOVE_RECURSE
  "CMakeFiles/university_reports.dir/examples/university_reports.cpp.o"
  "CMakeFiles/university_reports.dir/examples/university_reports.cpp.o.d"
  "university_reports"
  "university_reports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/university_reports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
