# Empty dependencies file for university_reports.
# This may be replaced when dependencies are built.
