file(REMOVE_RECURSE
  "CMakeFiles/bench_auto_level.dir/bench/bench_auto_level.cc.o"
  "CMakeFiles/bench_auto_level.dir/bench/bench_auto_level.cc.o.d"
  "bench_auto_level"
  "bench_auto_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_auto_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
