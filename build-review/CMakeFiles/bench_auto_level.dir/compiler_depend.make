# Empty compiler generated dependencies file for bench_auto_level.
# This may be replaced when dependencies are built.
