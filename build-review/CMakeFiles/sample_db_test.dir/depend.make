# Empty dependencies file for sample_db_test.
# This may be replaced when dependencies are built.
