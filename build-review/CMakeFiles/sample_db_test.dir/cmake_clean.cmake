file(REMOVE_RECURSE
  "CMakeFiles/sample_db_test.dir/tests/sample_db_test.cc.o"
  "CMakeFiles/sample_db_test.dir/tests/sample_db_test.cc.o.d"
  "sample_db_test"
  "sample_db_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
