# Empty dependencies file for division_test.
# This may be replaced when dependencies are built.
