file(REMOVE_RECURSE
  "CMakeFiles/division_test.dir/tests/division_test.cc.o"
  "CMakeFiles/division_test.dir/tests/division_test.cc.o.d"
  "division_test"
  "division_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/division_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
