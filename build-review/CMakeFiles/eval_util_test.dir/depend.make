# Empty dependencies file for eval_util_test.
# This may be replaced when dependencies are built.
