file(REMOVE_RECURSE
  "CMakeFiles/eval_util_test.dir/tests/eval_util_test.cc.o"
  "CMakeFiles/eval_util_test.dir/tests/eval_util_test.cc.o.d"
  "eval_util_test"
  "eval_util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
