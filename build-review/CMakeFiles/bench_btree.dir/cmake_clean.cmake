file(REMOVE_RECURSE
  "CMakeFiles/bench_btree.dir/bench/bench_btree.cc.o"
  "CMakeFiles/bench_btree.dir/bench/bench_btree.cc.o.d"
  "bench_btree"
  "bench_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
