# Empty dependencies file for bench_btree.
# This may be replaced when dependencies are built.
