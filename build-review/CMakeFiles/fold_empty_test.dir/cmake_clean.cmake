file(REMOVE_RECURSE
  "CMakeFiles/fold_empty_test.dir/tests/fold_empty_test.cc.o"
  "CMakeFiles/fold_empty_test.dir/tests/fold_empty_test.cc.o.d"
  "fold_empty_test"
  "fold_empty_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fold_empty_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
