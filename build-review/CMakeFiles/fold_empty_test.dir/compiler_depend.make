# Empty compiler generated dependencies file for fold_empty_test.
# This may be replaced when dependencies are built.
