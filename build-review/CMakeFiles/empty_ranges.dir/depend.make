# Empty dependencies file for empty_ranges.
# This may be replaced when dependencies are built.
