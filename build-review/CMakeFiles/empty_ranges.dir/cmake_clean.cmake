file(REMOVE_RECURSE
  "CMakeFiles/empty_ranges.dir/examples/empty_ranges.cpp.o"
  "CMakeFiles/empty_ranges.dir/examples/empty_ranges.cpp.o.d"
  "empty_ranges"
  "empty_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/empty_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
