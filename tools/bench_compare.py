#!/usr/bin/env python3
"""Compare BENCH_*.json runs against a baseline and flag counter
regressions.

The engine's benchmarks export deterministic work counters (ExecStats via
bench_util::ExportStats — total_work, comparisons, elements_scanned, …)
next to the noisy wall-clock numbers. Wall time cannot be gated in shared
CI, but the counters can: same code + same seed = same counters, so a
counter that grew is a real plan/executor change, not machine noise.

For every benchmark present in both the baseline and the current run,
every comparable counter is checked; growth beyond --threshold (default
10%) is a regression and exits 1. Shrinkage beyond the threshold is
reported as an improvement — refresh the baseline to lock it in.

Skipped as noisy (never compared): real_time, cpu_time, iterations, and
any counter whose name mentions time/rate/latency/pct/per_second — those
are timing-derived.

Usage:
  bench_compare.py --baseline <dir> --current <dir> [--threshold 0.10]

Directories hold BENCH_<binary>.json files (google-benchmark JSON, the
format bench_util.h's shared main emits). Baseline files with no current
counterpart are skipped with a note; a benchmark present in the baseline
but missing from the current run fails only under --strict (CI filters
legitimately narrow the run). Stdlib only.
"""

import argparse
import glob
import json
import os
import re
import sys

NOISY_NAME_RE = re.compile(r"time|rate|latency|pct|per_second", re.I)
STANDARD_KEYS = {
    "name", "run_name", "run_type", "family_index", "per_family_instance_index",
    "repetitions", "repetition_index", "threads", "iterations", "real_time",
    "cpu_time", "time_unit", "label", "aggregate_name", "aggregate_unit",
}


def comparable_counters(bench):
    out = {}
    for key, value in bench.items():
        if key in STANDARD_KEYS or NOISY_NAME_RE.search(key):
            continue
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        out[key] = float(value)
    return out


def load_benchmarks(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    return {b["name"]: b for b in doc.get("benchmarks", [])
            if b.get("run_type", "iteration") == "iteration"}


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", required=True,
                    help="directory of baseline BENCH_*.json files")
    ap.add_argument("--current", required=True,
                    help="directory of current BENCH_*.json files")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative growth that counts as a regression")
    ap.add_argument("--strict", action="store_true",
                    help="a baseline benchmark missing from the current "
                         "run is a failure, not a note")
    args = ap.parse_args()

    baseline_files = sorted(
        glob.glob(os.path.join(args.baseline, "BENCH_*.json")))
    if not baseline_files:
        print("no BENCH_*.json under %s — nothing to compare" % args.baseline)
        return 0

    regressions = 0
    improvements = 0
    compared = 0
    for base_path in baseline_files:
        name = os.path.basename(base_path)
        cur_path = os.path.join(args.current, name)
        if not os.path.exists(cur_path):
            print("note: %s has no current run, skipped" % name)
            continue
        base_benches = load_benchmarks(base_path)
        cur_benches = load_benchmarks(cur_path)
        for bench_name in sorted(base_benches):
            if bench_name not in cur_benches:
                if args.strict:
                    print("MISSING %s: %s not in current run"
                          % (name, bench_name))
                    regressions += 1
                else:
                    print("note: %s skipped (not in current run)"
                          % bench_name)
                continue
            base = comparable_counters(base_benches[bench_name])
            cur = comparable_counters(cur_benches[bench_name])
            for counter in sorted(base):
                if counter not in cur:
                    continue
                want, got = base[counter], cur[counter]
                compared += 1
                if want == 0:
                    if got != 0:
                        print("REGRESSION %s %s: %g, baseline 0"
                              % (bench_name, counter, got))
                        regressions += 1
                    continue
                delta = (got - want) / want
                if delta > args.threshold:
                    print("REGRESSION %s %s: %g -> %g (+%.1f%%)"
                          % (bench_name, counter, want, got, delta * 100))
                    regressions += 1
                elif delta < -args.threshold:
                    print("improved %s %s: %g -> %g (%.1f%%) — refresh "
                          "the baseline to lock it in"
                          % (bench_name, counter, want, got, delta * 100))
                    improvements += 1

    print("%d counter(s) compared, %d regression(s), %d improvement(s)"
          % (compared, regressions, improvements))
    if compared == 0:
        print("warning: nothing overlapped — check the filters")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
