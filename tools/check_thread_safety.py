#!/usr/bin/env python3
"""Thread-safety gate check: proves -Werror=thread-safety has teeth.

Compiles each fixture under tests/tsa_fixtures/ with clang's thread-safety
analysis as errors:

  good_*.cc  must compile — the annotated-wrapper vocabulary
             (base/mutex.h) really lets correct code through;
  bad_*.cc   must FAIL to compile — dropping a lock acquisition or an
             annotation around guarded state is a build error, not a
             landmine.

Without the bad_* half, the annotations could silently rot: a header
change that turned the whole analysis off (say, a macro gate typo) would
still build everything "clean". This script is registered as a ctest only
when the compiler is Clang; gcc ignores the annotations by design.

Usage: check_thread_safety.py --compiler <clang++> --src <repo>/src
"""

import argparse
import glob
import os
import subprocess
import sys

FLAGS = [
    "-std=c++17",
    "-fsyntax-only",
    "-Wthread-safety",
    "-Werror=thread-safety",
]


def compile_ok(compiler, src_dir, path):
    proc = subprocess.run(
        [compiler] + FLAGS + ["-I", src_dir, path],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    return proc.returncode == 0, proc.stderr


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--compiler", required=True)
    ap.add_argument("--src", required=True,
                    help="repository src/ include directory")
    ap.add_argument("--fixtures", default=None,
                    help="fixture directory (default: tests/tsa_fixtures "
                    "next to src)")
    args = ap.parse_args()

    fixtures = args.fixtures or os.path.join(
        os.path.dirname(os.path.abspath(args.src)), "tests", "tsa_fixtures")
    cases = sorted(glob.glob(os.path.join(fixtures, "*.cc")))
    if not cases:
        print("no fixtures under %s" % fixtures)
        return 1

    failures = 0
    for path in cases:
        name = os.path.basename(path)
        ok, stderr = compile_ok(args.compiler, args.src, path)
        want_ok = name.startswith("good_")
        if ok == want_ok:
            print("PASS %s (%s)" % (
                name, "compiles" if ok else "rejected as expected"))
        else:
            failures += 1
            if want_ok:
                print("FAIL %s: expected to compile under "
                      "-Werror=thread-safety but did not:\n%s"
                      % (name, stderr))
            else:
                print("FAIL %s: expected a thread-safety error but it "
                      "compiled — the analysis gate is not engaged"
                      % name)
    print("%d/%d thread-safety fixtures behaved"
          % (len(cases) - failures, len(cases)))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
