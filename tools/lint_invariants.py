#!/usr/bin/env python3
"""Engine-invariant linter for the pascalr repository.

Enforces cross-file conventions that the compiler cannot see and that have
each been broken (or nearly broken) by ordinary drift:

  execstats-merge       every ExecStats counter is accumulated in
                        ExecStats::Merge (src/exec/stats.cc)
  execstats-export      every ExecStats counter is exported as a
                        bench_util::ExportStats column (bench/bench_util.h)
  execstats-totalwork   every ExecStats counter is either summed in
                        TotalWork() or documented out of it (the field's
                        doc comment, or TotalWork's, must say why)
  execstats-sysstatements
                        every ExecStats counter is exposed as a
                        sys$statements column (the FillStatements body in
                        src/obs/system_relations.cc must read it) — the
                        queryable telemetry surface must not silently lag
                        the counter set
  span-name-literal     trace span names at call sites come from the
                        registered constants in src/obs/span_names.h,
                        never from string literals
  span-unregistered     every span constant declared in
                        src/obs/span_names.h appears in kAllSpanNames —
                        iteration-based validation and dashboards see the
                        whole vocabulary
  raw-mutex-member      no std::mutex / std::shared_mutex /
                        std::condition_variable members outside
                        src/base/mutex.h — the annotated wrappers are what
                        make -Werror=thread-safety meaningful
  mutex-unannotated     every Mutex/SharedMutex member is referenced by a
                        GUARDED_BY / REQUIRES / ACQUIRE annotation in its
                        file, or carries a `lint: mutex-protocol(...)`
                        justification comment (protocol locks guard a
                        discipline, not data)
  concurrency-unguarded no non-atomic mutable shared state in
                        src/concurrency/ headers: every data member is
                        atomic, GUARDED_BY a lock, a self-synchronised
                        type, const, or covered by a
                        `lint: thread-compatible(...)` class marker /
                        `lint: unguarded(...)` member marker
  hot-path-log          no PASCALR_LOG_INFO/WARNING/ERROR inside
                        ::Next() bodies of the row-at-a-time hot paths
                        (logging in a per-row loop is an accidental
                        O(rows) slowdown); PASCALR_LOG_FATAL stays legal
  memory-order-relaxed  the bare token is banned outside src/base/ and
                        src/obs/ — relaxed operations go through the named
                        helpers in base/atomic_util.h

Usage:
  lint_invariants.py --root <repo-root>          lint the tree
  lint_invariants.py --self-test <fixtures-dir>  run the fixture suite

Exit status 0 when clean / all fixtures behave, 1 otherwise. Stdlib only.
"""

import argparse
import os
import re
import sys

# Types that synchronise themselves (or are immutable-after-construction
# handles) and therefore need no GUARDED_BY when embedded as members.
SELF_SYNCHRONISED_TYPES = {
    "Mutex",
    "SharedMutex",
    "CondVar",
    "SnapshotRegistry",
    "ConcurrencyCounters",
    "DeltaLayer",
    "SharedPlanCache",
    "MetricsRegistry",
}

# Hot row-at-a-time files whose Next() bodies must not log.
HOT_PATH_FILES = ("src/exec/cursor.cc", "src/pipeline/iterators.cc")

SPAN_GUARD_CALLS = (
    "TraceSpanGuard",
    "QueryTraceGuard",
    "AddCompleteSpan",
    "BeginQuery",
    "OpenSpan",
)


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


def strip_comments(text):
    """Replaces // and /* */ comment bodies (and string/char literals)
    with spaces, preserving line structure so line numbers survive."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state == "str":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
            out.append(c if c in ('"', "\n") else " ")
        elif state == "chr":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
            out.append(c if c in ("'", "\n") else " ")
        i += 1
    return "".join(out)


def iter_source_files(root, subdir, exts=(".h", ".cc")):
    base = os.path.join(root, subdir)
    for dirpath, _, filenames in os.walk(base):
        for name in sorted(filenames):
            if name.endswith(exts):
                yield os.path.join(dirpath, name)


def rel(root, path):
    return os.path.relpath(path, root).replace(os.sep, "/")


def read(path):
    with open(path, encoding="utf-8") as f:
        return f.read()


def extract_body(text, open_brace_index):
    """Returns text[open_brace_index+1 : matching_close]."""
    depth = 0
    for i in range(open_brace_index, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[open_brace_index + 1:i]
    return text[open_brace_index + 1:]


def find_function_body(text, pattern):
    """Body of the first function whose header matches `pattern` (which
    must end at or before the opening brace)."""
    m = re.search(pattern, text)
    if not m:
        return None
    brace = text.find("{", m.end() - 1)
    if brace < 0:
        return None
    return extract_body(text, brace)


# ---- execstats-* ------------------------------------------------------


def check_execstats(root, findings):
    stats_h_path = os.path.join(root, "src/exec/stats.h")
    if not os.path.exists(stats_h_path):
        return  # fixture tree without the ExecStats surface
    stats_h = read(stats_h_path)
    struct_m = re.search(r"struct\s+ExecStats\s*\{", stats_h)
    if not struct_m:
        return
    body_start = stats_h.find("{", struct_m.start())
    body = extract_body(stats_h, body_start)
    body_line0 = stats_h[:body_start].count("\n") + 1

    # Field declarations with their line numbers and attached doc text
    # (the ///-comments directly above plus any trailing comment).
    fields = []
    lines = body.split("\n")
    for i, line in enumerate(lines):
        m = re.match(r"\s*uint64_t\s+(\w+)\s*=\s*0\s*;(.*)$", line)
        if not m:
            continue
        name = m.group(1)
        doc = [m.group(2)]
        j = i - 1
        while j >= 0 and re.match(r"\s*///", lines[j]):
            doc.append(lines[j])
            j -= 1
        fields.append((name, body_line0 + i, " ".join(doc)))
    if not fields:
        return

    total_doc = []
    for i, line in enumerate(lines):
        if "TotalWork() const" in line:
            j = i - 1
            while j >= 0 and re.match(r"\s*///", lines[j]):
                total_doc.append(lines[j])
                j -= 1
            break
    total_doc = " ".join(total_doc)
    total_body = find_function_body(stats_h, r"TotalWork\(\)\s*const\s*\{")
    if total_body is None:
        total_body = ""

    merge_body = ""
    stats_cc_path = os.path.join(root, "src/exec/stats.cc")
    if os.path.exists(stats_cc_path):
        merge_body = find_function_body(
            read(stats_cc_path),
            r"void\s+ExecStats::Merge\s*\(") or ""

    export_body = ""
    bench_path = os.path.join(root, "bench/bench_util.h")
    if os.path.exists(bench_path):
        export_body = find_function_body(
            read(bench_path), r"void\s+ExportStats\s*\(") or ""

    # None (skip) in fixture trees without the system-relations surface.
    sys_text = None
    sys_path = os.path.join(root, "src/obs/system_relations.cc")
    if os.path.exists(sys_path):
        sys_text = read(sys_path)

    stats_h_rel = rel(root, stats_h_path)
    for name, line, doc in fields:
        word = re.compile(r"\b%s\b" % re.escape(name))
        if not word.search(merge_body):
            findings.append(Finding(
                "execstats-merge", "src/exec/stats.cc", 1,
                "ExecStats::%s is not accumulated in Merge(); "
                "runs that aggregate stats silently drop it" % name))
        if not re.search(r"stats\.%s\b" % re.escape(name), export_body):
            findings.append(Finding(
                "execstats-export", "bench/bench_util.h", 1,
                "ExecStats::%s has no ExportStats column; the BENCH_*.json "
                "perf trajectory cannot see it" % name))
        in_total = bool(word.search(total_body))
        documented_out = ("TotalWork" in doc) or bool(word.search(total_doc))
        if not in_total and not documented_out:
            findings.append(Finding(
                "execstats-totalwork", stats_h_rel, line,
                "ExecStats::%s is neither summed in TotalWork() nor "
                "documented out of it (mention TotalWork in the field's "
                "doc comment or list the field in TotalWork's)" % name))
        if sys_text is not None and not re.search(
                r"counters\.%s\b" % re.escape(name), sys_text):
            findings.append(Finding(
                "execstats-sysstatements", "src/obs/system_relations.cc", 1,
                "ExecStats::%s has no sys$statements column — add it to "
                "StatementsSchema() and FillStatements in "
                "src/obs/system_relations.cc so the queryable telemetry "
                "surface keeps up with the counter set" % name))


# ---- span-name-literal ------------------------------------------------


def check_span_literals(root, findings):
    for path in iter_source_files(root, "src", exts=(".cc",)):
        rp = rel(root, path)
        if rp.startswith("src/obs/"):
            continue  # the tracer/registry implementation itself
        text = read(path)
        for i, line in enumerate(text.split("\n"), start=1):
            for call in SPAN_GUARD_CALLS:
                for m in re.finditer(
                        r"\b%s\b\s*(?:\w+\s*)?\(\s*\"([^\"]*)\"" % call,
                        line):
                    findings.append(Finding(
                        "span-name-literal", rp, i,
                        "span name \"%s\" passed as a string literal to "
                        "%s — use a spans:: constant from "
                        "src/obs/span_names.h" % (m.group(1), call)))


# ---- span-unregistered ------------------------------------------------


def check_span_registry(root, findings):
    path = os.path.join(root, "src/obs/span_names.h")
    if not os.path.exists(path):
        return  # fixture tree without the span vocabulary
    text = read(path)
    rp = rel(root, path)
    constants = []
    for i, line in enumerate(text.split("\n"), start=1):
        m = re.search(r"inline\s+constexpr\s+char\s+(k\w+)\s*\[\]", line)
        if m:
            constants.append((m.group(1), i))
    if not constants:
        return
    array_m = re.search(r"kAllSpanNames\s*\[\]\s*=\s*\{", text)
    if not array_m:
        findings.append(Finding(
            "span-unregistered", rp, 1,
            "span_names.h declares span constants but no kAllSpanNames "
            "registry array — iteration-based validation sees nothing"))
        return
    array_body = extract_body(text, text.find("{", array_m.start()))
    for name, line in constants:
        if not re.search(r"\b%s\b" % re.escape(name), array_body):
            findings.append(Finding(
                "span-unregistered", rp, line,
                "span constant %s is not listed in kAllSpanNames — "
                "register it so validation code and dashboards iterate "
                "the full vocabulary" % name))


# ---- raw-mutex-member / mutex-unannotated -----------------------------

RAW_LOCK_RE = re.compile(
    r"^\s*(?:mutable\s+)?std::(mutex|shared_mutex|condition_variable)"
    r"\s+\w+\s*;")
WRAPPED_LOCK_RE = re.compile(
    r"^\s*(?:mutable\s+)?(Mutex|SharedMutex)\s+(\w+)\s*;")


def check_mutex_members(root, findings):
    for path in iter_source_files(root, "src"):
        rp = rel(root, path)
        if rp == "src/base/mutex.h":
            continue  # the wrappers themselves own the raw primitives
        raw_text = read(path)
        text = strip_comments(raw_text)
        code_lines = text.split("\n")
        raw_lines = raw_text.split("\n")
        for i, line in enumerate(code_lines, start=1):
            m = RAW_LOCK_RE.match(line)
            if m:
                findings.append(Finding(
                    "raw-mutex-member", rp, i,
                    "raw std::%s member — use the annotated wrappers in "
                    "base/mutex.h so -Werror=thread-safety can see the "
                    "acquisitions" % m.group(1)))
                continue
            m = WRAPPED_LOCK_RE.match(line)
            if not m:
                continue
            name = m.group(2)
            referenced = re.search(
                r"\b(GUARDED_BY|PT_GUARDED_BY|REQUIRES|REQUIRES_SHARED|"
                r"ACQUIRE|ACQUIRE_SHARED|EXCLUDES)\s*\(\s*%s\s*\)"
                % re.escape(name), text)
            # `lint: mutex-protocol(...)` in the comment block above the
            # declaration justifies a lock that guards a discipline
            # rather than members.
            protocol = False
            j = i - 2
            while j >= 0 and re.match(r"\s*(///|//)", raw_lines[j]):
                if "lint: mutex-protocol(" in raw_lines[j]:
                    protocol = True
                j -= 1
            if not referenced and not protocol:
                findings.append(Finding(
                    "mutex-unannotated", rp, i,
                    "%s member '%s' is never named by a GUARDED_BY/"
                    "REQUIRES annotation and carries no `lint: "
                    "mutex-protocol(...)` justification — the analysis "
                    "cannot check anything about it" % (m.group(1), name)))


# ---- concurrency-unguarded --------------------------------------------

MEMBER_SKIP_RE = re.compile(
    r"\s*(public|private|protected|using|typedef|friend|static|enum|"
    r"return|if|for|while|template|namespace|#)\b|\s*[}{]|^\s*$")
CLASS_RE = re.compile(r"^\s*(?:class|struct)\s+(?:\w+\s+)*(\w+)\s*(.*)$")


def check_concurrency_members(root, findings):
    base = os.path.join(root, "src/concurrency")
    if not os.path.isdir(base):
        return
    for path in iter_source_files(root, "src/concurrency", exts=(".h",)):
        rp = rel(root, path)
        raw_text = read(path)
        text = strip_comments(raw_text)
        raw_lines = raw_text.split("\n")
        lines = text.split("\n")

        # (body_depth, exempt) for each open class/struct.
        class_stack = []
        depth = 0
        pending_class = None  # class seen, waiting for its '{'
        i = 0
        while i < len(lines):
            line = lines[i]
            stmt = line
            stmt_line = i + 1
            # Join continuation lines of member declarations so a
            # GUARDED_BY on the next line is seen.
            if (class_stack and depth == class_stack[-1][0]
                    and pending_class is None
                    and not MEMBER_SKIP_RE.match(line)):
                k = i
                while (";" not in stmt and "{" not in stmt
                       and k + 1 < len(lines)):
                    k += 1
                    stmt = stmt + " " + lines[k].strip()
                if ";" in stmt and "(" not in stmt.split(";")[0]:
                    decl = stmt.split(";")[0].strip()
                    if decl and not _member_is_safe(decl):
                        exempt = class_stack[-1][1]
                        marker = "lint: unguarded(" in "\n".join(
                            raw_lines[max(0, stmt_line - 4):stmt_line + 1])
                        if not exempt and not marker:
                            findings.append(Finding(
                                "concurrency-unguarded", rp, stmt_line,
                                "member '%s' in src/concurrency/ is "
                                "neither atomic, GUARDED_BY a lock, a "
                                "self-synchronised type, nor const — "
                                "mark the class `lint: thread-compatible"
                                "(...)` or the member `lint: unguarded"
                                "(...)` if it is safe by design" % decl))
                    i = k
            cm = CLASS_RE.match(line)
            if cm and ";" not in line.split("{")[0]:
                # Exemption marker in the comment block above the header.
                exempt = False
                j = stmt_line - 2
                while j >= 0 and re.match(r"\s*(///|//)", raw_lines[j]):
                    if "lint: thread-compatible(" in raw_lines[j]:
                        exempt = True
                    j -= 1
                pending_class = (depth, exempt)
            for c in lines[i]:
                if c == "{":
                    depth += 1
                    if pending_class is not None:
                        class_stack.append((depth, pending_class[1]))
                        pending_class = None
                elif c == "}":
                    if class_stack and class_stack[-1][0] == depth:
                        class_stack.pop()
                    depth -= 1
            i += 1


def _member_is_safe(decl):
    if "std::atomic" in decl or "GUARDED_BY" in decl:
        return True
    if re.search(r"\bconst\b", decl):
        return True
    if re.search(r"\bconstexpr\b", decl):
        return True
    first = re.sub(r"^(mutable|inline)\s+", "", decl)
    type_token = first.split()[0] if first.split() else ""
    return type_token.lstrip("*&") in SELF_SYNCHRONISED_TYPES


# ---- hot-path-log -----------------------------------------------------


def check_hot_path_logs(root, findings):
    for hot in HOT_PATH_FILES:
        path = os.path.join(root, hot)
        if not os.path.exists(path):
            continue
        text = read(path)
        for m in re.finditer(r"[\w>]+::Next\s*\([^)]*\)[^;{]*\{", text):
            brace = text.find("{", m.start())
            body = extract_body(text, brace)
            body_line0 = text[:brace].count("\n") + 1
            for lm in re.finditer(
                    r"PASCALR_LOG_(INFO|WARNING|ERROR)\b", body):
                line = body_line0 + body[:lm.start()].count("\n")
                findings.append(Finding(
                    "hot-path-log", hot, line,
                    "PASCALR_LOG_%s inside a ::Next() body — this runs "
                    "once per row; log at Open/Close or use "
                    "PASCALR_LOG_FATAL for invariant failures"
                    % lm.group(1)))


# ---- memory-order-relaxed ---------------------------------------------


def check_relaxed_tokens(root, findings):
    for path in iter_source_files(root, "src"):
        rp = rel(root, path)
        if rp.startswith(("src/base/", "src/obs/")):
            continue
        text = strip_comments(read(path))
        for i, line in enumerate(text.split("\n"), start=1):
            if "memory_order_relaxed" in line:
                findings.append(Finding(
                    "memory-order-relaxed", rp, i,
                    "bare memory_order_relaxed outside src/base/ and "
                    "src/obs/ — use RelaxedLoad/RelaxedStore/"
                    "RelaxedFetchAdd from base/atomic_util.h (acquire/"
                    "release stay allowed everywhere)"))


# ---- driver -----------------------------------------------------------

ALL_CHECKS = (
    check_execstats,
    check_span_literals,
    check_span_registry,
    check_mutex_members,
    check_concurrency_members,
    check_hot_path_logs,
    check_relaxed_tokens,
)


def lint_tree(root):
    findings = []
    for check in ALL_CHECKS:
        check(root, findings)
    return findings


def run_self_test(fixtures_dir):
    failures = 0
    cases = sorted(
        d for d in os.listdir(fixtures_dir)
        if os.path.isdir(os.path.join(fixtures_dir, d)))
    if not cases:
        print("no fixture cases under %s" % fixtures_dir)
        return 1
    for case in cases:
        case_dir = os.path.join(fixtures_dir, case)
        expect_path = os.path.join(case_dir, "expect.txt")
        expected = set()
        if os.path.exists(expect_path):
            expected = {
                line.strip() for line in read(expect_path).splitlines()
                if line.strip() and not line.startswith("#")
            }
        findings = lint_tree(case_dir)
        fired = {f.rule for f in findings}
        if fired == expected:
            print("PASS %s (%s)" % (
                case, ", ".join(sorted(fired)) if fired else "clean"))
        else:
            failures += 1
            print("FAIL %s: expected {%s} got {%s}" % (
                case, ", ".join(sorted(expected)),
                ", ".join(sorted(fired))))
            for f in findings:
                print("    " + str(f))
    print("%d/%d fixture cases behaved" % (len(cases) - failures,
                                           len(cases)))
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", help="repository root to lint")
    ap.add_argument("--self-test",
                    help="fixtures directory: run pass/fail cases")
    args = ap.parse_args()
    if bool(args.root) == bool(args.self_test):
        ap.error("exactly one of --root / --self-test is required")
    if args.self_test:
        return run_self_test(args.self_test)
    findings = lint_tree(args.root)
    for f in findings:
        print(f)
    if findings:
        print("%d invariant violation(s)" % len(findings))
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
