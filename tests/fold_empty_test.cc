#include "normalize/fold_empty.h"

#include <gtest/gtest.h>

#include "calculus/printer.h"
#include "pascalr/dsl.h"

namespace pascalr {
namespace {

using dsl::C;
using dsl::Eq;
using dsl::Lit;

FormulaPtr T(const char* var, int64_t v) { return Eq(C(var, "x"), Lit(v)); }

RangeEmptyFn EmptyIf(std::string relation) {
  return [relation](const RangeExpr& range) {
    return range.relation == relation;
  };
}

TEST(SimplifyConstantsTest, AndOrAbsorption) {
  EXPECT_TRUE(
      SimplifyConstants(Formula::And(T("a", 1), Formula::True()))->kind() ==
      FormulaKind::kCompare);
  EXPECT_FALSE(SimplifyConstants(Formula::And(T("a", 1), Formula::False()))
                   ->const_value());
  EXPECT_TRUE(SimplifyConstants(Formula::Or(T("a", 1), Formula::True()))
                  ->const_value());
  EXPECT_EQ(SimplifyConstants(Formula::Or(T("a", 1), Formula::False()))
                ->kind(),
            FormulaKind::kCompare);
}

TEST(SimplifyConstantsTest, NotFolds) {
  EXPECT_FALSE(
      SimplifyConstants(Formula::Not(Formula::True()))->const_value());
  EXPECT_EQ(SimplifyConstants(Formula::Not(T("a", 1)))->kind(),
            FormulaKind::kNot);
}

TEST(SimplifyConstantsTest, QuantifierBodyConstants) {
  // SOME v (FALSE) folds to FALSE and ALL v (TRUE) to TRUE — range-free
  // facts. The duals depend on range emptiness and must NOT fold here.
  EXPECT_FALSE(
      SimplifyConstants(dsl::Some("v", "r", Formula::False()))->const_value());
  EXPECT_TRUE(
      SimplifyConstants(dsl::All("v", "r", Formula::True()))->const_value());
  EXPECT_EQ(SimplifyConstants(dsl::Some("v", "r", Formula::True()))->kind(),
            FormulaKind::kQuant);
  EXPECT_EQ(SimplifyConstants(dsl::All("v", "r", Formula::False()))->kind(),
            FormulaKind::kQuant);
}

TEST(FoldEmptyTest, SomeOverEmptyIsFalse) {
  FormulaPtr f = dsl::Some("p", "papers", T("p", 1));
  FormulaPtr folded = FoldEmptyRanges(std::move(f), EmptyIf("papers"));
  ASSERT_EQ(folded->kind(), FormulaKind::kConst);
  EXPECT_FALSE(folded->const_value());
}

TEST(FoldEmptyTest, AllOverEmptyIsTrue) {
  FormulaPtr f = dsl::All("p", "papers", T("p", 1));
  FormulaPtr folded = FoldEmptyRanges(std::move(f), EmptyIf("papers"));
  ASSERT_EQ(folded->kind(), FormulaKind::kConst);
  EXPECT_TRUE(folded->const_value());
}

TEST(FoldEmptyTest, NonEmptyRangesUntouched) {
  FormulaPtr f = dsl::Some("p", "papers", T("p", 1));
  FormulaPtr copy = f->Clone();
  FormulaPtr folded = FoldEmptyRanges(std::move(f), EmptyIf("other"));
  EXPECT_TRUE(folded->Equals(*copy));
}

TEST(FoldEmptyTest, Example22Adaptation) {
  // prof AND (ALL p IN papers (...) OR SOME c IN courses (...)) with
  // papers = [] reduces to prof (the whole disjunction becomes TRUE).
  FormulaPtr f =
      Eq(C("e", "estatus"), Lit(int64_t{3})) &&
      (dsl::All("p", "papers", T("p", 1977)) ||
       dsl::Some("c", "courses", T("c", 1)));
  FormulaPtr folded = FoldEmptyRanges(std::move(f), EmptyIf("papers"));
  ASSERT_EQ(folded->kind(), FormulaKind::kCompare);
  EXPECT_EQ(folded->term().lhs.component, "estatus");
}

TEST(FoldEmptyTest, EmptyCoursesKillsOnlyItsDisjunct) {
  FormulaPtr f =
      dsl::All("p", "papers", T("p", 1977)) ||
      dsl::Some("c", "courses", T("c", 1));
  FormulaPtr folded = FoldEmptyRanges(std::move(f), EmptyIf("courses"));
  ASSERT_EQ(folded->kind(), FormulaKind::kQuant);
  EXPECT_EQ(folded->quantifier(), Quantifier::kAll);
}

TEST(FoldEmptyTest, NestedQuantifierFoldPropagates) {
  // SOME c (ALL t IN timetable (...)) with timetable = [] -> SOME c (TRUE),
  // which stays (SOME over a possibly empty range is not foldable without
  // knowing c's range).
  FormulaPtr f = dsl::Some("c", "courses",
                           dsl::All("t", "timetable", T("t", 1)));
  FormulaPtr folded = FoldEmptyRanges(std::move(f), EmptyIf("timetable"));
  ASSERT_EQ(folded->kind(), FormulaKind::kQuant);
  EXPECT_EQ(folded->child().kind(), FormulaKind::kConst);
  EXPECT_TRUE(folded->child().const_value());
}

TEST(FoldEmptyTest, ExtendedRangePredicateReceivesWholeRange) {
  // The predicate sees the RangeExpr, so extended ranges can be judged by
  // their restriction too.
  FormulaPtr f = dsl::SomeIn("p", "papers", T("p", 1977), T("p", 5));
  bool saw_extended = false;
  FormulaPtr folded = FoldEmptyRanges(
      std::move(f), [&](const RangeExpr& range) {
        saw_extended = range.IsExtended();
        return true;  // pretend the extension is empty
      });
  EXPECT_TRUE(saw_extended);
  ASSERT_EQ(folded->kind(), FormulaKind::kConst);
  EXPECT_FALSE(folded->const_value());
}

}  // namespace
}  // namespace pascalr
