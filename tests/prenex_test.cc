#include "normalize/prenex.h"

#include <gtest/gtest.h>

#include "calculus/printer.h"
#include "normalize/rename.h"
#include "pascalr/dsl.h"

namespace pascalr {
namespace {

using dsl::C;
using dsl::Eq;
using dsl::Lit;

FormulaPtr Term(const char* var, const char* comp, int64_t v) {
  return Eq(C(var, comp), Lit(v));
}

TEST(PrenexTest, AlreadyPrenex) {
  FormulaPtr f = dsl::All(
      "p", "papers",
      dsl::Some("c", "courses", Term("p", "pyear", 1977) &&
                                    Term("c", "clevel", 1)));
  PrenexForm pf = ToPrenex(std::move(f));
  ASSERT_EQ(pf.prefix.size(), 2u);
  EXPECT_EQ(pf.prefix[0].quantifier, Quantifier::kAll);
  EXPECT_EQ(pf.prefix[0].var, "p");
  EXPECT_EQ(pf.prefix[1].quantifier, Quantifier::kSome);
  EXPECT_EQ(pf.prefix[1].var, "c");
  EXPECT_EQ(pf.matrix->kind(), FormulaKind::kAnd);
}

TEST(PrenexTest, PullsQuantifiersOutOfConnectives) {
  // (SOME a (...)) OR (ALL b (...)) AND (x = 1)
  FormulaPtr f =
      dsl::Some("a", "r", Term("a", "x", 1)) ||
      (dsl::All("b", "s", Term("b", "y", 2)) && Term("e", "z", 3));
  PrenexForm pf = ToPrenex(std::move(f));
  ASSERT_EQ(pf.prefix.size(), 2u);
  // Depth-first order: a before b (the order they appear in the formula).
  EXPECT_EQ(pf.prefix[0].var, "a");
  EXPECT_EQ(pf.prefix[1].var, "b");
  // The matrix keeps the propositional skeleton.
  EXPECT_EQ(FormatFormula(*pf.matrix),
            "(a.x = 1) OR (b.y = 2) AND (e.z = 3)");
}

TEST(PrenexTest, ExtendedRangesTravelWithTheQuantifier) {
  FormulaPtr f = Term("e", "w", 0) &&
                 dsl::AllIn("p", "papers", Term("p", "pyear", 1977),
                            Term("p", "x", 1));
  PrenexForm pf = ToPrenex(std::move(f));
  ASSERT_EQ(pf.prefix.size(), 1u);
  EXPECT_TRUE(pf.prefix[0].range.IsExtended());
  EXPECT_EQ(pf.prefix[0].range.relation, "papers");
}

TEST(PrenexTest, MatrixIsQuantifierFree) {
  FormulaPtr f = dsl::Some(
      "a", "r",
      dsl::Some("b", "s", dsl::All("c", "t", Term("c", "x", 1))) ||
          Term("a", "y", 2));
  PrenexForm pf = ToPrenex(std::move(f));
  EXPECT_EQ(pf.prefix.size(), 3u);
  EXPECT_TRUE(pf.matrix->CollectQuantifiedVars().empty());
}

TEST(PrenexTest, RenamePassMakesCollidingNamesUnique) {
  // Two sibling SOME x quantifiers collide; MakeVariableNamesUnique must
  // rename the second before prenexing merges their scopes.
  FormulaPtr f = dsl::Some("x", "r", Term("x", "a", 1)) ||
                 dsl::Some("x", "s", Term("x", "b", 2));
  std::set<std::string> used =
      MakeVariableNamesUnique(f.get(), {"e"});
  EXPECT_EQ(used.count("x"), 1u);
  EXPECT_EQ(used.count("x_1"), 1u);
  PrenexForm pf = ToPrenex(std::move(f));
  ASSERT_EQ(pf.prefix.size(), 2u);
  EXPECT_NE(pf.prefix[0].var, pf.prefix[1].var);
  // Each matrix atom references its own variable.
  EXPECT_EQ(FormatFormula(*pf.matrix), "(x.a = 1) OR (x_1.b = 2)");
}

TEST(PrenexTest, RenameAvoidsReservedNames) {
  FormulaPtr f = dsl::Some("e", "r", Term("e", "a", 1));
  MakeVariableNamesUnique(f.get(), {"e"});  // "e" reserved by a free var
  ASSERT_EQ(f->kind(), FormulaKind::kQuant);
  EXPECT_EQ(f->var(), "e_1");
  EXPECT_EQ(f->child().term().lhs.var, "e_1");
}

TEST(PrenexTest, FreshNameGeneratesSuffixes) {
  std::set<std::string> used{"v", "v_1"};
  EXPECT_EQ(FreshName("v", &used), "v_2");
  EXPECT_EQ(FreshName("w", &used), "w");
  EXPECT_EQ(used.size(), 4u);
}

}  // namespace
}  // namespace pascalr
