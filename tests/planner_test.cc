// Planner orchestration: strategy levels, runtime adaptation for empty
// ranges, plan shape, fallbacks.

#include "opt/planner.h"

#include <gtest/gtest.h>

#include "pascalr/sample_db.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::FirstStrings;
using testing_util::MakeUniversityDb;
using testing_util::MustBind;

TEST(PlannerTest, LevelsProduceDifferentPlans) {
  auto db = MakeUniversityDb();
  BoundQuery bound = MustBind(*db, Example21QuerySource());
  for (int level = 0; level <= 4; ++level) {
    PlannerOptions options;
    options.level = static_cast<OptLevel>(level);
    Result<PlannedQuery> planned =
        PlanQuery(*db, CloneBoundQuery(bound), options);
    ASSERT_TRUE(planned.ok()) << planned.status().ToString();
    EXPECT_EQ(planned->plan.level, options.level);
    if (level >= 3) {
      EXPECT_FALSE(planned->range_extension.extensions.empty());
    } else {
      EXPECT_TRUE(planned->range_extension.extensions.empty());
    }
    if (level >= 4) {
      EXPECT_FALSE(planned->plan.eliminated_vars.empty());
    } else {
      EXPECT_TRUE(planned->plan.eliminated_vars.empty());
    }
  }
}

TEST(PlannerTest, ConjInputsCoverMatrix) {
  auto db = MakeUniversityDb();
  PlannerOptions options;
  options.level = OptLevel::kOneStep;
  Result<PlannedQuery> planned =
      PlanQuery(*db, MustBind(*db, Example21QuerySource()), options);
  ASSERT_TRUE(planned.ok());
  const QueryPlan& plan = planned->plan;
  ASSERT_EQ(plan.conj_inputs.size(), plan.sf.matrix.disjuncts.size());
  for (size_t c = 0; c < plan.conj_inputs.size(); ++c) {
    EXPECT_FALSE(plan.conj_inputs[c].empty()) << "conjunction " << c;
    for (size_t id : plan.conj_inputs[c]) {
      ASSERT_LT(id, plan.structures.size());
    }
  }
}

TEST(PlannerTest, EmptyBaseRangeTriggersLemma1Fold) {
  auto db = MakeUniversityDb();
  db->FindRelation("papers")->Clear();
  PlannerOptions options;
  options.level = OptLevel::kOneStep;
  Result<PlannedQuery> planned =
      PlanQuery(*db, MustBind(*db, Example21QuerySource()), options);
  ASSERT_TRUE(planned.ok());
  EXPECT_GE(planned->replans, 1u);
  EXPECT_NE(planned->adaptation_notes.find("range of p is empty"),
            std::string::npos);
  // After folding, p is gone from the prefix.
  EXPECT_EQ(planned->plan.sf.FindVar("p"), nullptr);
}

TEST(PlannerTest, EmptyExtendedRangeAbandonsStrategy3) {
  auto db = MakeUniversityDb();
  // Erase the 1977 papers so the [pyear = 1977] extension denotes the
  // empty set while papers itself is non-empty.
  Relation* papers = db->FindRelation("papers");
  papers->Clear();
  ASSERT_TRUE(papers
                  ->Insert(Tuple{Value::MakeInt(2), Value::MakeInt(1976),
                                 Value::MakeString("Q1")})
                  .ok());
  PlannerOptions options;
  options.level = OptLevel::kQuantPush;
  Result<PlannedQuery> planned =
      PlanQuery(*db, MustBind(*db, Example21QuerySource()), options);
  ASSERT_TRUE(planned.ok());
  EXPECT_NE(planned->adaptation_notes.find("strategies 3/4 abandoned"),
            std::string::npos);
  EXPECT_EQ(planned->plan.level, OptLevel::kOneStep);
  // And the fallback still answers correctly: every professor qualifies
  // (no 1977 papers at all).
  Result<QueryRun> run =
      RunQuery(*db, MustBind(*db, Example21QuerySource()), options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(FirstStrings(run->tuples),
            (std::set<std::string>{"Alice", "Bob", "Carol", "Frank"}));
}

TEST(PlannerTest, RangeIsEmptyEvaluatesExtensions) {
  auto db = MakeUniversityDb();
  RangeExpr plain("papers");
  EXPECT_FALSE(RangeIsEmpty(*db, plain));

  RangeExpr missing("nothing");
  EXPECT_TRUE(RangeIsEmpty(*db, missing));

  RangeExpr extended("papers");
  JoinTerm term;
  term.lhs = Operand::Component("p", "pyear");
  term.lhs.component_pos = 1;
  term.op = CompareOp::kEq;
  term.rhs = Operand::Literal(Value::MakeInt(1901));
  extended.restriction = Formula::Compare(term);
  EXPECT_TRUE(RangeIsEmpty(*db, extended));

  term.rhs = Operand::Literal(Value::MakeInt(1977));
  extended.restriction = Formula::Compare(term);
  EXPECT_FALSE(RangeIsEmpty(*db, extended));
}

TEST(PlannerTest, FreeVariableOverEmptyRelationYieldsEmptyResult) {
  auto db = MakeUniversityDb();
  db->FindRelation("employees")->Clear();
  for (int level = 0; level <= 4; ++level) {
    PlannerOptions options;
    options.level = static_cast<OptLevel>(level);
    Result<QueryRun> run =
        RunQuery(*db, MustBind(*db, Example21QuerySource()), options);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_TRUE(run->tuples.empty()) << "level " << level;
  }
}

TEST(PlannerTest, ScanOrderPutsValueListsBeforeProbes) {
  auto db = MakeUniversityDb();
  PlannerOptions options;
  options.level = OptLevel::kQuantPush;
  Result<PlannedQuery> planned =
      PlanQuery(*db, MustBind(*db, Example21QuerySource()), options);
  ASSERT_TRUE(planned.ok());
  const QueryPlan& plan = planned->plan;
  // For every quantifier probe on a scan, the value list it reads must be
  // built by a strictly earlier scan.
  std::map<size_t, size_t> vlist_scan;  // value list id -> scan position
  for (size_t s = 0; s < plan.scans.size(); ++s) {
    for (const ScanAction& a : plan.scans[s].actions) {
      for (size_t id : a.value_list_builds) vlist_scan[id] = s;
    }
  }
  for (size_t s = 0; s < plan.scans.size(); ++s) {
    for (const ScanAction& a : plan.scans[s].actions) {
      for (const QuantProbeEmit& e : a.quant_probes) {
        ASSERT_EQ(vlist_scan.count(e.probe.value_list_id), 1u);
        EXPECT_LT(vlist_scan[e.probe.value_list_id], s);
      }
    }
  }
}

TEST(PlannerTest, IndexesOrderedForOrderingOperators) {
  auto db = MakeUniversityDb();
  PlannerOptions options;
  options.level = OptLevel::kOneStep;
  Result<PlannedQuery> planned = PlanQuery(
      *db,
      MustBind(*db,
               "[<e.ename> OF EACH e IN employees: SOME p IN papers "
               "((e.enr < p.penr))]"),
      options);
  ASSERT_TRUE(planned.ok());
  ASSERT_EQ(planned->plan.indexes.size(), 1u);
  EXPECT_TRUE(planned->plan.indexes[0].ordered);
}

TEST(PlannerTest, StatsAccumulateReplans) {
  auto db = MakeUniversityDb();
  db->FindRelation("courses")->Clear();
  PlannerOptions options;
  options.level = OptLevel::kQuantPush;
  Result<QueryRun> run =
      RunQuery(*db, MustBind(*db, Example21QuerySource()), options);
  ASSERT_TRUE(run.ok());
  EXPECT_GE(run->stats.replans, 1u);
}

}  // namespace
}  // namespace pascalr
