#include "index/hash_index.h"

#include <gtest/gtest.h>

namespace pascalr {
namespace {

Ref R(uint32_t slot) { return Ref{1, slot, 1}; }

TEST(HashIndexTest, AddProbeEq) {
  HashIndex idx("test");
  idx.Add(Value::MakeInt(5), R(0));
  idx.Add(Value::MakeInt(5), R(1));
  idx.Add(Value::MakeInt(7), R(2));
  EXPECT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx.num_distinct_values(), 2u);

  std::vector<uint32_t> hits;
  idx.Probe(CompareOp::kEq, Value::MakeInt(5), [&](const Ref& r) {
    hits.push_back(r.slot);
    return true;
  });
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<uint32_t>{0, 1}));
}

TEST(HashIndexTest, DuplicateEntryCollapses) {
  HashIndex idx;
  idx.Add(Value::MakeInt(5), R(0));
  idx.Add(Value::MakeInt(5), R(0));
  EXPECT_EQ(idx.size(), 1u);
}

TEST(HashIndexTest, Remove) {
  HashIndex idx;
  idx.Add(Value::MakeInt(5), R(0));
  idx.Add(Value::MakeInt(5), R(1));
  EXPECT_TRUE(idx.Remove(Value::MakeInt(5), R(0)));
  EXPECT_FALSE(idx.Remove(Value::MakeInt(5), R(0)));
  EXPECT_FALSE(idx.Remove(Value::MakeInt(9), R(0)));
  EXPECT_EQ(idx.size(), 1u);
  EXPECT_FALSE(idx.ProbeAny(CompareOp::kEq, Value::MakeInt(9)));
  EXPECT_TRUE(idx.ProbeAny(CompareOp::kEq, Value::MakeInt(5)));
}

TEST(HashIndexTest, OrderingProbesFallBackToScan) {
  HashIndex idx;
  for (int i = 0; i < 10; ++i) {
    idx.Add(Value::MakeInt(i), R(static_cast<uint32_t>(i)));
  }
  // Stored v satisfies `v < 3` -> slots 0,1,2.
  std::vector<uint32_t> hits;
  idx.Probe(CompareOp::kLt, Value::MakeInt(3), [&](const Ref& r) {
    hits.push_back(r.slot);
    return true;
  });
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<uint32_t>{0, 1, 2}));

  hits.clear();
  idx.Probe(CompareOp::kNe, Value::MakeInt(4), [&](const Ref& r) {
    hits.push_back(r.slot);
    return true;
  });
  EXPECT_EQ(hits.size(), 9u);
}

TEST(HashIndexTest, ProbeEarlyStop) {
  HashIndex idx;
  for (int i = 0; i < 10; ++i) idx.Add(Value::MakeInt(1), R(static_cast<uint32_t>(i)));
  int count = 0;
  idx.Probe(CompareOp::kEq, Value::MakeInt(1), [&](const Ref&) {
    return ++count < 3;
  });
  EXPECT_EQ(count, 3);
}

TEST(HashIndexTest, ForEachEntryVisitsAll) {
  HashIndex idx;
  idx.Add(Value::MakeString("a"), R(0));
  idx.Add(Value::MakeString("b"), R(1));
  size_t count = 0;
  idx.ForEachEntry([&](const Value&, const Ref&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 2u);
}

TEST(HashIndexTest, StringKeys) {
  HashIndex idx;
  idx.Add(Value::MakeString("alpha"), R(0));
  idx.Add(Value::MakeString("beta"), R(1));
  EXPECT_TRUE(idx.ProbeAny(CompareOp::kEq, Value::MakeString("alpha")));
  EXPECT_FALSE(idx.ProbeAny(CompareOp::kEq, Value::MakeString("gamma")));
}

}  // namespace
}  // namespace pascalr
