// The join-order optimizer: DP-table unit tests on hand-built join
// graphs (known-optimal orders, cross-product penalty, bushy trees,
// fallback thresholds), the greedy tree's fidelity to the executor's
// heuristic, and the subsystem-level acceptance bar — on the paper
// examples plus a corpus of generated multi-relation queries with fresh
// statistics, DP-ordered execution never does more measured work than
// greedy execution and does strictly less on at least one conjunction
// with four or more inputs.

#include <gtest/gtest.h>

#include "calculus/printer.h"
#include "exec/naive.h"
#include "joinorder/attach.h"
#include "joinorder/dp.h"
#include "joinorder/heuristics.h"
#include "joinorder/join_graph.h"
#include "opt/explain.h"
#include "opt/planner.h"
#include "pascalr/sample_db.h"
#include "tests/query_gen.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::MakeUniversityDb;
using testing_util::QueryGenerator;
using testing_util::TupleStrings;

EstRel MakeRel(double rows,
               std::vector<std::pair<std::string, double>> distinct) {
  EstRel rel;
  rel.rows = rows;
  for (auto& [col, dc] : distinct) rel.distinct[col] = dc;
  return rel;
}

/// Leaf input positions of a left-deep tree, in join order.
std::vector<size_t> LeafOrder(const JoinTree& tree) {
  std::vector<size_t> order;
  for (const JoinTreeNode& node : tree.nodes) {
    if (node.leaf) order.push_back(node.input);
  }
  return order;
}

TEST(JoinGraphTest, JoinEstimateUsesContainmentAndCapsDistincts) {
  EstRel a = MakeRel(100, {{"x", 10}, {"y", 50}});
  EstRel b = MakeRel(40, {{"y", 20}, {"z", 40}});
  EstRel j = JoinEstimate(a, b);
  // 100 * 40 / max(50, 20) shared-column containment.
  EXPECT_DOUBLE_EQ(j.rows, 80.0);
  EXPECT_DOUBLE_EQ(j.distinct.at("y"), 20.0);  // min of the two sides
  EXPECT_DOUBLE_EQ(j.distinct.at("x"), 10.0);
  EXPECT_DOUBLE_EQ(j.distinct.at("z"), 40.0);
  EXPECT_EQ(SharedColumns(a, b), std::vector<std::string>{"y"});
}

TEST(JoinGraphTest, ConnectivityOverSharedColumns) {
  std::vector<EstRel> inputs = {
      MakeRel(10, {{"a", 10}}),
      MakeRel(20, {{"a", 10}, {"b", 5}}),
      MakeRel(30, {{"c", 30}}),
  };
  JoinGraph graph(inputs);
  EXPECT_TRUE(graph.Connects(0b001, 1));
  EXPECT_FALSE(graph.Connects(0b011, 2));
  EXPECT_FALSE(graph.IsConnected(0b111));
  EXPECT_TRUE(graph.IsConnected(0b011));
}

TEST(JoinOrderDpTest, FindsKnownOptimalOrderGreedyMisses) {
  // Greedy takes R then the smaller S1 (fan-out to 100 rows) before S2;
  // the DP knows S2 filters R down to 10 rows and goes there first.
  std::vector<EstRel> inputs = {
      MakeRel(10, {{"a", 10}}),                  // 0: R
      MakeRel(100, {{"a", 10}, {"b", 2}}),       // 1: S1
      MakeRel(120, {{"a", 120}, {"c", 4}}),      // 2: S2
  };
  JoinOrderOptions options;
  JoinOrderDecision decision = ChooseJoinOrder(inputs, options);
  EXPECT_DOUBLE_EQ(decision.greedy_cost, 200.0);  // 100 + 100
  EXPECT_DOUBLE_EQ(decision.dp_cost, 110.0);      // 10 + 100
  ASSERT_FALSE(decision.tree.empty());
  EXPECT_EQ(decision.tree.source, JoinOrderSource::kDp);
  EXPECT_EQ(LeafOrder(decision.tree), (std::vector<size_t>{0, 2, 1}));
  EXPECT_EQ(decision.tree.LeafCount(), 3u);

  // And the greedy tree really is the order the executor would pick.
  JoinTree greedy = GreedyJoinOrder(inputs);
  EXPECT_EQ(LeafOrder(greedy), (std::vector<size_t>{0, 1, 2}));
}

TEST(JoinOrderDpTest, NoTreeWhenGreedyAlreadyOptimal) {
  // A selective chain greedy gets right: deviating buys nothing, so the
  // DP declines and execution keeps the actual-size heuristic.
  std::vector<EstRel> inputs = {
      MakeRel(5, {{"a", 5}}),
      MakeRel(50, {{"a", 50}, {"b", 10}}),
      MakeRel(80, {{"b", 10}, {"c", 80}}),
  };
  JoinOrderDecision decision = ChooseJoinOrder(inputs, JoinOrderOptions());
  EXPECT_DOUBLE_EQ(decision.dp_cost, decision.greedy_cost);
  EXPECT_TRUE(decision.tree.empty());
}

TEST(JoinOrderDpTest, CrossProductPenaltyDefersProducts) {
  // Joining tiny A x B first is cheapest by raw rows, but the default
  // penalty makes the DP keep greedy's connected order; dropping the
  // penalty lets the product plan through.
  std::vector<EstRel> inputs = {
      MakeRel(2, {{"a", 2}}),                    // 0: A
      MakeRel(3, {{"b", 3}}),                    // 1: B
      MakeRel(1000, {{"a", 100}, {"b", 100}}),   // 2: C
  };
  JoinOrderOptions penalized;
  JoinOrderDecision with_penalty = ChooseJoinOrder(inputs, penalized);
  EXPECT_TRUE(with_penalty.tree.empty()) << "penalty should keep greedy";

  JoinOrderOptions free_products;
  free_products.cross_penalty = 1.0;
  JoinOrderDecision without = ChooseJoinOrder(inputs, free_products);
  ASSERT_FALSE(without.tree.empty());
  // The winning tree starts with the Cartesian pair A x B.
  const JoinTreeNode* first_join = nullptr;
  for (const JoinTreeNode& node : without.tree.nodes) {
    if (!node.leaf) {
      first_join = &node;
      break;
    }
  }
  ASSERT_NE(first_join, nullptr);
  EXPECT_TRUE(first_join->join_columns.empty());
  EXPECT_DOUBLE_EQ(first_join->est_rows, 6.0);
  EXPECT_LT(without.dp_cost, without.greedy_cost);
}

TEST(JoinOrderDpTest, BushyTreesBeatLeftDeepWhenTwoPairsReduceFirst) {
  std::vector<EstRel> inputs = {
      MakeRel(10, {{"a", 10}}),
      MakeRel(1000, {{"a", 1000}, {"b", 10}}),
      MakeRel(10, {{"c", 10}}),
      MakeRel(1000, {{"c", 1000}, {"b", 10}}),
  };
  JoinOrderOptions left_deep;
  JoinOrderOptions bushy;
  bushy.bushy = true;
  JoinOrderDecision ld = ChooseJoinOrder(inputs, left_deep);
  JoinOrderDecision bs = ChooseJoinOrder(inputs, bushy);
  EXPECT_LT(bs.dp_cost, ld.dp_cost);
  ASSERT_FALSE(bs.tree.empty());
  EXPECT_EQ(bs.tree.source, JoinOrderSource::kDpBushy);
  // The bushy root joins two internal (pair) nodes.
  const JoinTreeNode& root = bs.tree.nodes.back();
  ASSERT_FALSE(root.leaf);
  EXPECT_FALSE(bs.tree.nodes[static_cast<size_t>(root.left)].leaf);
  EXPECT_FALSE(bs.tree.nodes[static_cast<size_t>(root.right)].leaf);
}

TEST(JoinOrderDpTest, FallbackThresholdsSkipTheDp) {
  std::vector<EstRel> two = {
      MakeRel(10, {{"a", 10}}),
      MakeRel(20, {{"a", 10}}),
  };
  JoinOrderDecision small = ChooseJoinOrder(two, JoinOrderOptions());
  EXPECT_TRUE(small.tree.empty());
  EXPECT_EQ(small.subsets_explored, 0u);

  std::vector<EstRel> four;
  for (int i = 0; i < 4; ++i) {
    four.push_back(MakeRel(10.0 + i, {{"x", 10.0}}));
  }
  JoinOrderOptions budget;
  budget.dp_max_inputs = 3;
  JoinOrderDecision over = ChooseJoinOrder(four, budget);
  EXPECT_TRUE(over.tree.empty());
  EXPECT_EQ(over.subsets_explored, 0u);
  EXPECT_GT(over.greedy_cost, 0.0);
}

TEST(GreedyJoinOrderTest, MirrorsExecutorTieBreaks) {
  // All inputs share a column; sizes 5,3,3,4 — first minimum starts, then
  // smallest-remaining with first-wins ties: 1, 2, 3, 0.
  std::vector<EstRel> inputs = {
      MakeRel(5, {{"x", 5}}),
      MakeRel(3, {{"x", 3}}),
      MakeRel(3, {{"x", 3}}),
      MakeRel(4, {{"x", 4}}),
  };
  JoinTree tree = GreedyJoinOrder(inputs);
  EXPECT_EQ(LeafOrder(tree), (std::vector<size_t>{1, 2, 3, 0}));
  EXPECT_EQ(tree.nodes.size(), 7u);
}

TEST(JoinTreeTest, MatchesRejectsMalformedNodeGraphs) {
  // A valid 3-leaf left-deep tree.
  JoinTree tree;
  auto leaf = [](size_t input) {
    JoinTreeNode n;
    n.leaf = true;
    n.input = input;
    return n;
  };
  auto join = [](int l, int r) {
    JoinTreeNode n;
    n.left = l;
    n.right = r;
    return n;
  };
  tree.nodes = {leaf(0), leaf(1), join(0, 1), leaf(2), join(2, 3)};
  EXPECT_TRUE(tree.Matches(3));
  EXPECT_FALSE(tree.Matches(2));
  EXPECT_FALSE(tree.Matches(4));

  // Right node count and leaf cover, but node 2 is consumed twice and
  // leaf 3 never — executing it would drop leaf 3's constraint.
  JoinTree bogus;
  bogus.nodes = {leaf(0), leaf(1), join(0, 1), leaf(2), join(2, 2)};
  EXPECT_FALSE(bogus.Matches(3));

  JoinTree dup;  // same input on two leaves
  dup.nodes = {leaf(0), leaf(0), join(0, 1), leaf(2), join(2, 3)};
  EXPECT_FALSE(dup.Matches(3));

  JoinTree self_ref;  // child id not before the parent
  self_ref.nodes = {leaf(0), leaf(1), join(0, 2)};
  EXPECT_FALSE(self_ref.Matches(2));

  EXPECT_FALSE(JoinTree().Matches(0));
}

// ---------------------------------------------------------------------------
// Subsystem acceptance: measured work, DP vs greedy.

struct WorkComparison {
  uint64_t dp_work = 0;
  uint64_t greedy_work = 0;
  bool attached = false;          ///< some conjunction got a DP tree
  size_t max_conj_inputs = 0;
  std::string explain;
};

Result<WorkComparison> CompareDpToGreedy(const Database& db,
                                         const SelectionExpr& sel,
                                         OptLevel level) {
  WorkComparison out;
  Binder binder(&db);
  for (bool dp : {true, false}) {
    PASCALR_ASSIGN_OR_RETURN(BoundQuery bound, binder.Bind(sel.Clone()));
    PlannerOptions options;
    options.level = level;
    options.join_order_dp = dp;
    PASCALR_ASSIGN_OR_RETURN(QueryRun run,
                             RunQuery(db, std::move(bound), options));
    if (dp) {
      out.dp_work = run.stats.TotalWork();
      out.attached = !run.planned.plan.join_trees.empty();
      for (const auto& ids : run.planned.plan.conj_inputs) {
        out.max_conj_inputs = std::max(out.max_conj_inputs, ids.size());
      }
      out.explain = ExplainPlan(run.planned);
    } else {
      out.greedy_work = run.stats.TotalWork();
    }
  }
  return out;
}

std::unique_ptr<Database> MakeAnalyzedSyntheticDb(size_t employees = 48) {
  auto db = MakeUniversityDb(/*populate=*/false);
  UniversityScale scale;
  scale.employees = employees;
  scale.papers = 2 * employees;
  scale.courses = employees / 2 + 1;
  scale.timetable = 3 * employees;
  EXPECT_TRUE(PopulateSynthetic(db.get(), scale).ok());
  EXPECT_TRUE(db->AnalyzeAll().ok());
  return db;
}

SelectionExpr ParseSelection(const std::string& source) {
  Parser parser(source);
  Result<SelectionExpr> sel = parser.ParseSelectionOnly();
  EXPECT_TRUE(sel.ok()) << sel.status().ToString();
  return std::move(sel).value();
}

TEST(JoinOrderAcceptanceTest, PaperExamplesNeverWorseThanGreedy) {
  // Kept small: example 2.1's disjunction is near-Cartesian at O1 (each
  // disjunct is product-extended to all four variables).
  auto db = MakeAnalyzedSyntheticDb(/*employees=*/16);
  for (const std::string& source :
       {Example21QuerySource(), Example45QuerySource()}) {
    for (OptLevel level : {OptLevel::kParallel, OptLevel::kOneStep,
                           OptLevel::kQuantPush}) {
      Result<WorkComparison> cmp =
          CompareDpToGreedy(*db, ParseSelection(source), level);
      ASSERT_TRUE(cmp.ok()) << cmp.status().ToString();
      EXPECT_LE(cmp->dp_work, cmp->greedy_work)
          << source << " at " << OptLevelToString(level);
    }
  }
}

TEST(JoinOrderAcceptanceTest, GeneratedCorpusNeverWorseAndSometimesBetter) {
  auto db = MakeAnalyzedSyntheticDb();
  size_t checked = 0;
  size_t strict_wins_on_wide_conjunctions = 0;
  for (uint64_t seed = 1; checked < 32 && seed <= 120; ++seed) {
    QueryGenerator gen(seed);
    SelectionExpr sel =
        gen.RandomChainSelection(/*joins=*/3 + seed % 3, /*filter_prob=*/0.6);
    std::string rendered = FormatSelection(sel);
    for (OptLevel level : {OptLevel::kParallel, OptLevel::kOneStep}) {
      Result<WorkComparison> cmp = CompareDpToGreedy(*db, sel, level);
      ASSERT_TRUE(cmp.ok()) << rendered << ": " << cmp.status().ToString();
      EXPECT_LE(cmp->dp_work, cmp->greedy_work)
          << "seed " << seed << " at " << OptLevelToString(level) << "\n"
          << rendered << "\n"
          << cmp->explain;
      if (cmp->max_conj_inputs >= 4 && cmp->dp_work < cmp->greedy_work) {
        ++strict_wins_on_wide_conjunctions;
      }
    }
    ++checked;
  }
  EXPECT_GE(checked, 32u);
  EXPECT_GE(strict_wins_on_wide_conjunctions, 1u)
      << "the DP never beat greedy on any >=4-input conjunction";
  std::cout << "[          ] " << strict_wins_on_wide_conjunctions
            << " strict DP win(s) on >=4-input conjunctions over " << checked
            << " queries\n";
}

TEST(JoinOrderAcceptanceTest, DpResultsMatchGreedyResults) {
  // Tuple-level equivalence on the synthetic scale (small-database
  // equivalence against the naive oracle lives in the plan-equivalence
  // property suite; the nested-loop oracle is infeasible at this size).
  auto db = MakeAnalyzedSyntheticDb();
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    QueryGenerator gen(seed);
    SelectionExpr sel = gen.RandomChainSelection(4, 0.5);
    Binder binder(db.get());
    for (OptLevel level : {OptLevel::kParallel, OptLevel::kOneStep,
                           OptLevel::kQuantPush}) {
      std::multiset<std::string> results[2];
      bool unsupported = false;
      for (bool dp : {true, false}) {
        Result<BoundQuery> bound = binder.Bind(sel.Clone());
        ASSERT_TRUE(bound.ok());
        PlannerOptions options;
        options.level = level;
        options.join_order_dp = dp;
        Result<QueryRun> run =
            RunQuery(*db, std::move(bound).value(), options);
        if (!run.ok() && run.status().code() == StatusCode::kUnsupported) {
          unsupported = true;  // pre-existing S4 limitation, both configs
          break;
        }
        ASSERT_TRUE(run.ok()) << run.status().ToString();
        results[dp ? 0 : 1] = TupleStrings(run->tuples);
      }
      if (unsupported) continue;
      EXPECT_EQ(results[0], results[1])
          << "seed " << seed << " level " << OptLevelToString(level);
    }
  }
}

TEST(JoinOrderAcceptanceTest, ExplainShowsTheTreeWithCardinalities) {
  auto db = MakeAnalyzedSyntheticDb();
  bool found = false;
  for (uint64_t seed = 1; seed <= 60 && !found; ++seed) {
    QueryGenerator gen(seed);
    SelectionExpr sel = gen.RandomChainSelection(4, 0.6);
    Binder binder(db.get());
    Result<BoundQuery> bound = binder.Bind(sel.Clone());
    ASSERT_TRUE(bound.ok());
    PlannerOptions options;
    options.level = OptLevel::kOneStep;
    Result<PlannedQuery> planned =
        PlanQuery(*db, std::move(bound).value(), options);
    ASSERT_TRUE(planned.ok());
    if (planned->plan.join_trees.empty()) continue;
    found = true;
    // Pipelined mode (the default) renders the tree as the iterator
    // chain; the materialized fallback keeps the join-order rendering.
    std::string text = ExplainPlan(*planned);
    EXPECT_NE(text.find("iterator tree (dp)"), std::string::npos) << text;
    EXPECT_NE(text.find("probe-join on ["), std::string::npos) << text;
    EXPECT_NE(text.find(" rows"), std::string::npos) << text;
    PlannerOptions materialized = options;
    materialized.pipeline = false;
    Result<BoundQuery> rebound = binder.Bind(sel.Clone());
    ASSERT_TRUE(rebound.ok());
    Result<PlannedQuery> planned_mat =
        PlanQuery(*db, std::move(rebound).value(), materialized);
    ASSERT_TRUE(planned_mat.ok());
    std::string text_mat = ExplainPlan(*planned_mat);
    EXPECT_NE(text_mat.find("join order (dp)"), std::string::npos)
        << text_mat;
    EXPECT_NE(text_mat.find("join on ["), std::string::npos) << text_mat;
  }
  EXPECT_TRUE(found)
      << "no generated query attached a DP tree within 60 seeds";
}

TEST(JoinOrderAttachTest, NoTreesWithoutFreshStats) {
  auto db = MakeUniversityDb(/*populate=*/false);
  UniversityScale scale;
  EXPECT_TRUE(PopulateSynthetic(db.get(), scale).ok());
  // No ANALYZE: estimates would come from live cardinalities only, so the
  // planner must keep the executor's greedy fallback everywhere.
  QueryGenerator gen(7);
  SelectionExpr sel = gen.RandomChainSelection(4, 0.5);
  Binder binder(db.get());
  Result<BoundQuery> bound = binder.Bind(sel.Clone());
  ASSERT_TRUE(bound.ok());
  PlannerOptions options;
  options.level = OptLevel::kOneStep;
  Result<PlannedQuery> planned =
      PlanQuery(*db, std::move(bound).value(), options);
  ASSERT_TRUE(planned.ok());
  EXPECT_TRUE(planned->plan.join_trees.empty());
}

}  // namespace
}  // namespace pascalr
