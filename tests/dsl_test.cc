// The embedded C++ DSL: building the paper's queries without the parser.

#include "pascalr/dsl.h"

#include <gtest/gtest.h>

#include "exec/naive.h"
#include "opt/planner.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using namespace dsl;  // NOLINT: the DSL is designed for blanket import
using testing_util::FirstStrings;
using testing_util::MakeUniversityDb;

SelectionExpr Example21ViaDsl() {
  // Example 2.1 written with the DSL.
  return Select({{"e", "ename"}})
      .Each("e", "employees")
      .Where(Eq(C("e", "estatus"), Label("professor")) &&
             (All("p", "papers",
                  Ne(C("p", "pyear"), Lit(int64_t{1977})) ||
                      Ne(C("e", "enr"), C("p", "penr"))) ||
              Some("c", "courses",
                   Le(C("c", "clevel"), Label("sophomore")) &&
                       Some("t", "timetable",
                            Eq(C("c", "cnr"), C("t", "tcnr")) &&
                                Eq(C("e", "enr"), C("t", "tenr"))))))
      .Build();
}

TEST(DslTest, Example21MatchesParserResults) {
  auto db = MakeUniversityDb();
  Binder binder(db.get());
  Result<BoundQuery> bound = binder.Bind(Example21ViaDsl());
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();

  NaiveEvaluator naive(db.get());
  Result<std::vector<Tuple>> result = naive.Evaluate(*bound);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(FirstStrings(*result),
            (std::set<std::string>{"Alice", "Bob", "Frank"}));

  // And through the optimizer at the top level.
  PlannerOptions options;
  options.level = OptLevel::kQuantPush;
  Result<QueryRun> run = RunQuery(*db, std::move(*bound), options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(FirstStrings(run->tuples),
            (std::set<std::string>{"Alice", "Bob", "Frank"}));
}

TEST(DslTest, ComparisonHelpers) {
  EXPECT_EQ(Eq(C("a", "x"), Lit(int64_t{1}))->term().op, CompareOp::kEq);
  EXPECT_EQ(Ne(C("a", "x"), Lit(int64_t{1}))->term().op, CompareOp::kNe);
  EXPECT_EQ(Lt(C("a", "x"), Lit(int64_t{1}))->term().op, CompareOp::kLt);
  EXPECT_EQ(Le(C("a", "x"), Lit(int64_t{1}))->term().op, CompareOp::kLe);
  EXPECT_EQ(Gt(C("a", "x"), Lit(int64_t{1}))->term().op, CompareOp::kGt);
  EXPECT_EQ(Ge(C("a", "x"), Lit(int64_t{1}))->term().op, CompareOp::kGe);
}

TEST(DslTest, LiteralHelpers) {
  EXPECT_TRUE(Lit(int64_t{7}).literal.is_int());
  EXPECT_TRUE(Lit(std::string("s")).literal.is_string());
  EXPECT_TRUE(Lit(true).literal.is_bool());
  EXPECT_EQ(Label("professor").enum_label, "professor");
}

TEST(DslTest, OperatorSugarBuildsConnectives) {
  FormulaPtr f = Eq(C("a", "x"), Lit(int64_t{1})) &&
                 Eq(C("a", "y"), Lit(int64_t{2})) &&
                 Eq(C("a", "z"), Lit(int64_t{3}));
  ASSERT_EQ(f->kind(), FormulaKind::kAnd);
  EXPECT_EQ(f->children().size(), 3u);  // flattened

  FormulaPtr g = Eq(C("a", "x"), Lit(int64_t{1})) ||
                 Eq(C("a", "y"), Lit(int64_t{2}));
  EXPECT_EQ(g->kind(), FormulaKind::kOr);

  FormulaPtr n = NotF(Eq(C("a", "x"), Lit(int64_t{1})));
  EXPECT_EQ(n->kind(), FormulaKind::kNot);
}

TEST(DslTest, ExtendedRangeBuilders) {
  FormulaPtr f = SomeIn("c", "courses",
                        Le(C("c", "clevel"), Label("sophomore")),
                        Formula::True());
  ASSERT_TRUE(f->range().IsExtended());
  EXPECT_EQ(f->quantifier(), Quantifier::kSome);

  SelectionExpr sel = Select({{"e", "ename"}})
                          .EachIn("e", "employees",
                                  Eq(C("e", "estatus"), Label("professor")))
                          .Build();
  ASSERT_TRUE(sel.free_vars[0].range.IsExtended());
}

TEST(DslTest, DefaultWffIsTrue) {
  SelectionExpr sel = Select({{"e", "ename"}}).Each("e", "employees").Build();
  ASSERT_NE(sel.wff, nullptr);
  EXPECT_TRUE(sel.wff->const_value());
}

}  // namespace
}  // namespace pascalr
