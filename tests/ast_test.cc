#include "calculus/ast.h"

#include <gtest/gtest.h>

#include "calculus/printer.h"
#include "pascalr/dsl.h"

namespace pascalr {
namespace {

using dsl::C;
using dsl::Eq;
using dsl::Label;
using dsl::Le;
using dsl::Lit;
using dsl::Ne;

TEST(JoinTermTest, VariablesAndClassification) {
  JoinTerm monadic;
  monadic.lhs = Operand::Component("e", "estatus");
  monadic.op = CompareOp::kEq;
  monadic.rhs = Operand::Literal(Value::MakeEnum(3));
  EXPECT_TRUE(monadic.IsMonadic());
  EXPECT_FALSE(monadic.IsDyadic());
  EXPECT_EQ(monadic.Variables(), (std::vector<std::string>{"e"}));

  JoinTerm dyadic;
  dyadic.lhs = Operand::Component("e", "enr");
  dyadic.op = CompareOp::kEq;
  dyadic.rhs = Operand::Component("t", "tenr");
  EXPECT_TRUE(dyadic.IsDyadic());
  EXPECT_EQ(dyadic.Variables(), (std::vector<std::string>{"e", "t"}));
  EXPECT_TRUE(dyadic.References("t"));
  EXPECT_FALSE(dyadic.References("x"));

  // Same-variable component comparison is monadic (one variable).
  JoinTerm same_var;
  same_var.lhs = Operand::Component("t", "tenr");
  same_var.op = CompareOp::kEq;
  same_var.rhs = Operand::Component("t", "tcnr");
  EXPECT_TRUE(same_var.IsMonadic());
}

TEST(JoinTermTest, NegatedAndMirrored) {
  JoinTerm t;
  t.lhs = Operand::Component("a", "x");
  t.op = CompareOp::kLt;
  t.rhs = Operand::Component("b", "y");

  JoinTerm neg = t.Negated();
  EXPECT_EQ(neg.op, CompareOp::kGe);
  EXPECT_EQ(neg.lhs, t.lhs);

  JoinTerm mir = t.Mirrored();
  EXPECT_EQ(mir.op, CompareOp::kGt);
  EXPECT_EQ(mir.lhs, t.rhs);
  EXPECT_EQ(mir.rhs, t.lhs);
  // Mirroring twice is the identity.
  EXPECT_EQ(mir.Mirrored(), t);
}

TEST(FormulaTest, AndOrFlattenAndSimplify) {
  FormulaPtr a = Eq(C("e", "enr"), Lit(int64_t{1}));
  FormulaPtr b = Eq(C("e", "enr"), Lit(int64_t{2}));
  FormulaPtr c = Eq(C("e", "enr"), Lit(int64_t{3}));

  FormulaPtr nested =
      Formula::And(Formula::And(a->Clone(), b->Clone()), c->Clone());
  EXPECT_EQ(nested->kind(), FormulaKind::kAnd);
  EXPECT_EQ(nested->children().size(), 3u);  // flattened

  EXPECT_EQ(Formula::And({})->kind(), FormulaKind::kConst);
  EXPECT_TRUE(Formula::And({})->const_value());
  EXPECT_FALSE(Formula::Or({})->const_value());

  std::vector<FormulaPtr> single;
  single.push_back(a->Clone());
  FormulaPtr collapsed = Formula::Or(std::move(single));
  EXPECT_EQ(collapsed->kind(), FormulaKind::kCompare);  // single child
}

TEST(FormulaTest, CloneAndEquals) {
  FormulaPtr f = dsl::All(
      "p", "papers",
      Ne(C("p", "pyear"), Lit(int64_t{1977})) ||
          dsl::Some("t", "timetable", Eq(C("t", "tenr"), C("e", "enr"))));
  FormulaPtr g = f->Clone();
  EXPECT_TRUE(f->Equals(*g));

  // A structural difference breaks equality.
  FormulaPtr h = dsl::All(
      "p", "papers",
      Ne(C("p", "pyear"), Lit(int64_t{1978})) ||
          dsl::Some("t", "timetable", Eq(C("t", "tenr"), C("e", "enr"))));
  EXPECT_FALSE(f->Equals(*h));
}

TEST(FormulaTest, ExtendedRangeEquality) {
  FormulaPtr f = dsl::AllIn("p", "papers",
                            Eq(C("p", "pyear"), Lit(int64_t{1977})),
                            Ne(C("p", "penr"), C("e", "enr")));
  EXPECT_TRUE(f->Equals(*f->Clone()));
  FormulaPtr unextended =
      dsl::All("p", "papers", Ne(C("p", "penr"), C("e", "enr")));
  EXPECT_FALSE(f->Equals(*unextended));
}

TEST(FormulaTest, CollectTermVariables) {
  FormulaPtr f =
      Eq(C("e", "estatus"), Label("professor")) &&
      dsl::Some("c", "courses",
                Le(C("c", "clevel"), Label("sophomore")) &&
                    dsl::Some("t", "timetable",
                              Eq(C("c", "cnr"), C("t", "tcnr")) &&
                                  Eq(C("e", "enr"), C("t", "tenr"))));
  EXPECT_EQ(f->CollectTermVariables(),
            (std::vector<std::string>{"e", "c", "t"}));
  EXPECT_EQ(f->CollectQuantifiedVars(), (std::vector<std::string>{"c", "t"}));
  EXPECT_TRUE(f->ReferencesVar("t"));
  EXPECT_FALSE(f->ReferencesVar("p"));
}

TEST(FormulaTest, RenameVariableRespectsShadowing) {
  // x is quantified inside; renaming outer x must not touch the inner
  // occurrences bound by the quantifier.
  FormulaPtr f =
      Eq(C("x", "a"), Lit(int64_t{1})) &&
      dsl::Some("x", "r", Eq(C("x", "a"), Lit(int64_t{2})));
  RenameVariable(f.get(), "x", "y");
  // First conjunct renamed.
  EXPECT_EQ(f->children()[0]->term().lhs.var, "y");
  // Quantified occurrence untouched.
  const Formula& quant = *f->children()[1];
  EXPECT_EQ(quant.var(), "x");
  EXPECT_EQ(quant.child().term().lhs.var, "x");
}

TEST(FormulaTest, RenameVariableInExtendedRange) {
  FormulaPtr f = dsl::SomeIn("c", "courses",
                             Le(C("c", "clevel"), Label("sophomore")),
                             Eq(C("c", "cnr"), C("t", "tcnr")));
  RenameVariable(f.get(), "t", "u");
  EXPECT_EQ(f->child().term().rhs.var, "u");
  // The restriction's own variable is never renamed through its binder.
  RenameVariable(f.get(), "c", "z");
  EXPECT_EQ(f->range().restriction->term().lhs.var, "c");
}

TEST(PrinterTest, PrecedenceParenthesisation) {
  // OR of ANDs needs no parens; AND of ORs does.
  FormulaPtr or_of_ands =
      (Eq(C("a", "x"), Lit(int64_t{1})) && Eq(C("a", "y"), Lit(int64_t{2}))) ||
      Eq(C("a", "z"), Lit(int64_t{3}));
  EXPECT_EQ(FormatFormula(*or_of_ands),
            "(a.x = 1) AND (a.y = 2) OR (a.z = 3)");

  FormulaPtr and_of_ors =
      (Eq(C("a", "x"), Lit(int64_t{1})) || Eq(C("a", "y"), Lit(int64_t{2}))) &&
      Eq(C("a", "z"), Lit(int64_t{3}));
  EXPECT_EQ(FormatFormula(*and_of_ors),
            "((a.x = 1) OR (a.y = 2)) AND (a.z = 3)");
}

TEST(PrinterTest, QuantifierRendering) {
  FormulaPtr f = dsl::All("p", "papers",
                          Ne(C("p", "pyear"), Lit(int64_t{1977})));
  EXPECT_EQ(FormatFormula(*f), "ALL p IN papers ((p.pyear <> 1977))");

  FormulaPtr ext = dsl::SomeIn("c", "courses",
                               Le(C("c", "clevel"), Label("sophomore")),
                               Formula::True());
  EXPECT_EQ(FormatFormula(*ext),
            "SOME c IN [EACH c IN courses: (c.clevel <= sophomore)] (TRUE)");
}

TEST(PrinterTest, SelectionRendering) {
  SelectionExpr sel =
      dsl::Select({{"e", "ename"}})
          .Each("e", "employees")
          .Where(Eq(C("e", "estatus"), Label("professor")))
          .Build();
  EXPECT_EQ(FormatSelection(sel),
            "[<e.ename> OF EACH e IN employees: (e.estatus = professor)]");
}

TEST(PrinterTest, IndentedRendering) {
  FormulaPtr f = Eq(C("a", "x"), Lit(int64_t{1})) &&
                 dsl::Some("b", "r", Eq(C("b", "y"), Lit(int64_t{2})));
  std::string out = FormatFormulaIndented(*f);
  EXPECT_NE(out.find("AND\n"), std::string::npos);
  EXPECT_NE(out.find("  SOME b IN r\n"), std::string::npos);
}

}  // namespace
}  // namespace pascalr
