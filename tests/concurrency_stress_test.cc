// Multi-session stress test with a serial oracle: N writer threads commit
// single-statement inserts/deletes while M reader threads execute a
// prepared query in a loop. Every reader result must be BIT-IDENTICAL to
// replaying the committed-statement log — keyed by commit version — up to
// that execution's snapshot version into a fresh database. That property
// is exactly snapshot isolation: a reader sees all statements committed
// at or before its snapshot and none after, never a torn statement.
//
// Writers use DML statements only (insert / delete): each commits as ONE
// db_version bump, so commit versions enumerate the serial write history
// densely and a log prefix is a well-defined database state. (Assignment
// `:=` is drop+create+inserts and commits several versions per statement
// — it is deliberately not part of this workload; see catalog/database.h.)
//
// Run under ThreadSanitizer in CI (the sanitizers job) — the assertions
// prove isolation, TSan proves the absence of data races.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "concurrency/session_manager.h"
#include "obs/stmt_stats.h"
#include "pascalr/session.h"
#include "test_util.h"

namespace pascalr {
namespace {

using testing_util::MakeUniversityDb;
using testing_util::TupleStrings;

constexpr int kWriters = 2;
constexpr int kStatementsPerWriter = 50;
constexpr int kReaders = 4;

const char kQuery[] = "[<e.ename> OF EACH e IN employees: e.enr >= 1]";

struct ReaderObservation {
  uint64_t snapshot_version = 0;
  std::multiset<std::string> tuples;
};

TEST(ConcurrencyStressTest, ReadersMatchSerialOracleAtTheirSnapshot) {
  auto db = MakeUniversityDb();
  SessionManager manager(db.get());

  // The committed write history: commit version -> the statement that
  // committed as it. Writers append under a mutex *after* their statement
  // returns; versions are unique because write statements serialise on
  // the database write mutex and each DML statement bumps db_version
  // exactly once.
  std::mutex log_mu;
  std::map<uint64_t, std::string> commit_log;

  // Phase coordination makes the interleaving deterministic, not just
  // likely: every reader records one observation BEFORE any writer runs
  // and one AFTER the last writer committed, so each reader provably
  // spans at least two database versions. In between, readers free-run
  // against the live writers — that window is what TSan inspects.
  std::atomic<int> readers_ready{0};
  std::atomic<bool> writers_go{false};
  std::atomic<bool> writers_done{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      while (!writers_go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      auto session = manager.CreateSession();
      // Disjoint key ranges per writer: every statement succeeds, so the
      // log needs no failure bookkeeping.
      const int base = 1000 + w * 1000;
      for (int i = 0; i < kStatementsPerWriter; ++i) {
        std::string stmt;
        if (i % 3 == 2) {
          // Delete a key this writer inserted two statements ago.
          stmt = "employees :- [<" + std::to_string(base + i - 2) + ">];";
        } else {
          stmt = "employees :+ [<" + std::to_string(base + i) + ", 'W" +
                 std::to_string(w) + "x" + std::to_string(i) +
                 "', student>];";
        }
        Status status = session->ExecuteScript(stmt);
        ASSERT_TRUE(status.ok()) << stmt << ": " << status.ToString();
        uint64_t version = session->last_commit_version();
        std::lock_guard<std::mutex> lock(log_mu);
        auto inserted = commit_log.emplace(version, stmt);
        ASSERT_TRUE(inserted.second)
            << "two statements committed as version " << version;
      }
    });
  }

  std::vector<std::vector<ReaderObservation>> observations(kReaders);
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      auto session = manager.CreateSession();
      auto prepared = session->Prepare(kQuery);
      ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
      auto observe = [&] {
        auto exec = prepared->Execute({});
        ASSERT_TRUE(exec.ok()) << exec.status().ToString();
        ReaderObservation obs;
        obs.snapshot_version = exec->snapshot_version;
        obs.tuples = TupleStrings(exec->tuples);
        observations[r].push_back(std::move(obs));
      };
      observe();  // Pre-write observation (writers are still gated).
      readers_ready.fetch_add(1, std::memory_order_acq_rel);
      while (!writers_done.load(std::memory_order_acquire)) {
        observe();
      }
      observe();  // Post-write observation (all statements committed).
    });
  }

  while (readers_ready.load(std::memory_order_acquire) < kReaders) {
    std::this_thread::yield();
  }
  writers_go.store(true, std::memory_order_release);
  for (std::thread& t : writers) t.join();
  writers_done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  ASSERT_EQ(commit_log.size(),
            static_cast<size_t>(kWriters * kStatementsPerWriter));

  // Serial oracle: replay the log prefix `<= version` into a fresh
  // database and run the same query single-threaded. Memoised per
  // version — many observations share a snapshot.
  std::map<uint64_t, std::multiset<std::string>> oracle;
  auto oracle_at = [&](uint64_t version) -> const std::multiset<std::string>& {
    auto found = oracle.find(version);
    if (found != oracle.end()) return found->second;
    auto fresh = MakeUniversityDb();
    Session replay(fresh.get());
    for (const auto& [v, stmt] : commit_log) {
      if (v > version) break;
      Status status = replay.ExecuteScript(stmt);
      EXPECT_TRUE(status.ok()) << stmt << ": " << status.ToString();
    }
    auto run = replay.Query(kQuery);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return oracle.emplace(version, TupleStrings(run->tuples)).first->second;
  };

  const uint64_t final_version = commit_log.rbegin()->first;
  size_t total = 0;
  for (int r = 0; r < kReaders; ++r) {
    // At minimum the gated pre-write and post-write observations.
    ASSERT_GE(observations[r].size(), 2u);
    uint64_t prev_version = 0;
    for (size_t i = 0; i < observations[r].size(); ++i) {
      const ReaderObservation& obs = observations[r][i];
      // Snapshots move forward within one session.
      EXPECT_GE(obs.snapshot_version, prev_version) << "reader " << r;
      prev_version = obs.snapshot_version;
      EXPECT_EQ(obs.tuples, oracle_at(obs.snapshot_version))
          << "reader " << r << " execute " << i << " at snapshot version "
          << obs.snapshot_version;
      ++total;
    }
    // The phase gates force every reader across at least two states:
    // one from before the first commit, one at the final version.
    EXPECT_LT(observations[r].front().snapshot_version, final_version)
        << "reader " << r;
    EXPECT_EQ(observations[r].back().snapshot_version, final_version)
        << "reader " << r;
  }
  EXPECT_GE(total, static_cast<size_t>(kReaders) * 2);
  EXPECT_GE(oracle.size(), 2u) << "no interleaving happened";

  // The final state equals replaying the whole log.
  auto final_run = manager.CreateSession()->Query(kQuery);
  ASSERT_TRUE(final_run.ok()) << final_run.status().ToString();
  EXPECT_EQ(TupleStrings(final_run->tuples),
            oracle_at(commit_log.rbegin()->first));
}

TEST(ConcurrencyStressTest, StmtStatsFoldingMatchesSerialOracleExactly) {
  auto db = MakeUniversityDb();
  SessionManager manager(db.get());

  // N sessions hammer the SAME prepared statement concurrently; the
  // statement-stats row must afterwards equal what a serial tally of the
  // very same executions produces — folds are statement-granular and
  // lossless, no double counts, no drops, under contention.
  constexpr int kThreads = 6;
  constexpr int kExecsPerThread = 25;

  struct Tally {
    uint64_t rows = 0;
    uint64_t plan_hits = 0;
    ExecStats counters;
  };
  std::vector<Tally> tallies(kThreads);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto session = manager.CreateSession();
      auto prepared = session->Prepare(kQuery);
      ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kExecsPerThread; ++i) {
        auto exec = prepared->Execute({});
        ASSERT_TRUE(exec.ok()) << exec.status().ToString();
        tallies[t].rows += exec->tuples.size();
        if (exec->plan_cache_hit) ++tallies[t].plan_hits;
        tallies[t].counters.Merge(exec->stats);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  Tally expected;
  for (const Tally& tally : tallies) {
    expected.rows += tally.rows;
    expected.plan_hits += tally.plan_hits;
    expected.counters.Merge(tally.counters);
  }
  const uint64_t calls = static_cast<uint64_t>(kThreads) * kExecsPerThread;

  // FormatSelection normalization of kQuery — the store's key.
  const std::string fingerprint =
      "[<e.ename> OF EACH e IN employees: (e.enr >= 1)]";
  StmtStatsSnapshot row = db->stmt_stats().SnapshotOne(fingerprint);
  EXPECT_EQ(row.calls, calls);
  EXPECT_EQ(row.rows, expected.rows);
  EXPECT_EQ(row.plan_hits, expected.plan_hits);
  EXPECT_EQ(row.plan_misses, calls - expected.plan_hits);
  EXPECT_EQ(row.counters.elements_scanned, expected.counters.elements_scanned);
  EXPECT_EQ(row.counters.comparisons, expected.counters.comparisons);
  EXPECT_EQ(row.counters.dereferences, expected.counters.dereferences);
  EXPECT_EQ(row.counters.peak_intermediate_rows,
            expected.counters.peak_intermediate_rows);
  EXPECT_EQ(row.counters.TotalWork(), expected.counters.TotalWork());
  // Latency quantiles cannot be predicted, but they must be ordered and
  // total_us must cover the per-call mean exactly.
  EXPECT_LE(row.p50_us, row.p95_us);
  EXPECT_LE(row.p95_us, row.p99_us);
  EXPECT_LE(row.p99_us, row.max_us);
  EXPECT_EQ(row.mean_us, row.total_us / calls);
}

TEST(ConcurrencyStressTest, SharedPlanCacheStaysHotAcrossSessionChurn) {
  auto db = MakeUniversityDb();
  SessionManager manager(db.get());

  // Warm the cache once, then hammer it from short-lived sessions on
  // several threads — the workload bench_concurrent measures. With no
  // interleaved writes every adoption must validate and hit.
  ASSERT_TRUE(manager.CreateSession()->Query(kQuery).ok());
  auto warm = manager.counters();

  constexpr int kThreads = 4;
  constexpr int kSessionsPerThread = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kSessionsPerThread; ++i) {
        auto session = manager.CreateSession();
        auto run = session->Query(kQuery);
        ASSERT_TRUE(run.ok()) << run.status().ToString();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  auto after = manager.counters();
  EXPECT_EQ(after.shared_plan_hits - warm.shared_plan_hits,
            static_cast<uint64_t>(kThreads * kSessionsPerThread))
      << "every post-warmup session must adopt the shared plan";
  EXPECT_EQ(after.shared_plan_misses, warm.shared_plan_misses);
}

}  // namespace
}  // namespace pascalr
