#include "exec/eval_util.h"

#include <gtest/gtest.h>

#include "pascalr/dsl.h"

namespace pascalr {
namespace {

using dsl::C;
using dsl::Lit;

JoinTerm BoundTerm(int lhs_pos, CompareOp op, Value rhs) {
  JoinTerm t;
  t.lhs = Operand::Component("v", "x");
  t.lhs.component_pos = lhs_pos;
  t.op = op;
  t.rhs = Operand::Literal(std::move(rhs));
  return t;
}

TEST(EvalUtilTest, MonadicTermAgainstLiteral) {
  Tuple tuple{Value::MakeInt(5), Value::MakeString("abc")};
  ExecStats stats;
  EXPECT_TRUE(EvalMonadicTerm(BoundTerm(0, CompareOp::kEq, Value::MakeInt(5)),
                              tuple, &stats));
  EXPECT_FALSE(EvalMonadicTerm(BoundTerm(0, CompareOp::kLt, Value::MakeInt(5)),
                               tuple, &stats));
  EXPECT_TRUE(EvalMonadicTerm(
      BoundTerm(1, CompareOp::kGe, Value::MakeString("abc")), tuple, &stats));
  EXPECT_EQ(stats.comparisons, 3u);
}

TEST(EvalUtilTest, SameTupleComponentComparison) {
  // t.tenr = t.tcnr style: both operands from the same tuple.
  JoinTerm t;
  t.lhs = Operand::Component("v", "a");
  t.lhs.component_pos = 0;
  t.op = CompareOp::kEq;
  t.rhs = Operand::Component("v", "b");
  t.rhs.component_pos = 1;
  EXPECT_TRUE(EvalMonadicTerm(
      t, Tuple{Value::MakeInt(3), Value::MakeInt(3)}, nullptr));
  EXPECT_FALSE(EvalMonadicTerm(
      t, Tuple{Value::MakeInt(3), Value::MakeInt(4)}, nullptr));
}

TEST(EvalUtilTest, GatesAreConjunctive) {
  Tuple tuple{Value::MakeInt(5), Value::MakeString("abc")};
  std::vector<JoinTerm> gates{
      BoundTerm(0, CompareOp::kGe, Value::MakeInt(1)),
      BoundTerm(0, CompareOp::kLe, Value::MakeInt(9))};
  EXPECT_TRUE(EvalGates(gates, tuple, nullptr));
  gates.push_back(BoundTerm(0, CompareOp::kGt, Value::MakeInt(5)));
  EXPECT_FALSE(EvalGates(gates, tuple, nullptr));
  EXPECT_TRUE(EvalGates({}, tuple, nullptr));  // empty gate set passes
}

TEST(EvalUtilTest, RestrictionFormulaConnectives) {
  Tuple tuple{Value::MakeInt(5)};
  auto term = [](CompareOp op, int64_t v) {
    FormulaPtr f = dsl::Cmp(C("v", "x"), op, Lit(v));
    f->term().lhs.component_pos = 0;
    return f;
  };
  EXPECT_TRUE(EvalRestriction(*Formula::True(), tuple, nullptr));
  EXPECT_FALSE(EvalRestriction(*Formula::False(), tuple, nullptr));
  EXPECT_TRUE(EvalRestriction(
      *Formula::And(term(CompareOp::kGt, 1), term(CompareOp::kLt, 9)), tuple,
      nullptr));
  EXPECT_TRUE(EvalRestriction(
      *Formula::Or(term(CompareOp::kGt, 9), term(CompareOp::kLt, 9)), tuple,
      nullptr));
  EXPECT_FALSE(EvalRestriction(*Formula::Not(term(CompareOp::kEq, 5)), tuple,
                               nullptr));
}

TEST(EvalUtilTest, ShortCircuitCountsOnlyEvaluatedComparisons) {
  Tuple tuple{Value::MakeInt(5)};
  auto term = [](CompareOp op, int64_t v) {
    FormulaPtr f = dsl::Cmp(C("v", "x"), op, Lit(v));
    f->term().lhs.component_pos = 0;
    return f;
  };
  ExecStats stats;
  // AND short-circuits on the first false conjunct.
  std::vector<FormulaPtr> kids;
  kids.push_back(term(CompareOp::kEq, 0));  // false
  kids.push_back(term(CompareOp::kEq, 5));  // not evaluated
  EvalRestriction(*Formula::And(std::move(kids)), tuple, &stats);
  EXPECT_EQ(stats.comparisons, 1u);
}

}  // namespace
}  // namespace pascalr
