// Demand-driven collection (CollectionPolicy::kLazy): builders-level
// equivalence against the eager oracle, keyed-partial probes, cursor
// behaviour (Open does no collection work; early Close skips never-
// demanded structures, counter-asserted), the ≥3-input-conjunction
// acceptance bound, and the SET COLLECTION / EXPLAIN / plan-cache
// surface.

#include "exec/collection.h"

#include <sstream>

#include <gtest/gtest.h>

#include "exec/cursor.h"
#include "opt/explain.h"
#include "pipeline/compile.h"
#include "opt/planner.h"
#include "pascalr/prepared.h"
#include "pascalr/sample_db.h"
#include "pascalr/session.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::MakeUniversityDb;
using testing_util::MustBind;
using testing_util::TupleStrings;

// One structure per disjunct, no division: the streamed union finds the
// first tuple inside disjunct 0, so disjuncts 1 and 2 stay untouched.
const char* const kThreeDisjunctQuery =
    "[<e.ename> OF EACH e IN employees:"
    " (e.estatus = professor)"
    " OR SOME t IN timetable (e.enr = t.tenr)"
    " OR SOME p IN papers (e.enr = p.penr)]";

// One conjunction joining >=3 structures at levels 1/2 (the acceptance
// query shape: sl(c), ij(c,t), ij(e,t)).
const char* const kThreeInputConjunction =
    "[<e.ename> OF EACH e IN employees:"
    " SOME c IN courses SOME t IN timetable"
    " ((c.clevel <= sophomore) AND (c.cnr = t.tcnr) AND (e.enr = t.tenr))]";

PlannedQuery MustPlan(const Database& db, const std::string& query,
                      PlannerOptions options) {
  Result<PlannedQuery> planned = PlanQuery(db, MustBind(db, query), options);
  EXPECT_TRUE(planned.ok()) << planned.status().ToString();
  return std::move(planned).value();
}

// ----------------------------------------------------------- builder units

TEST(CollectionBuildersTest, LazyEnsureStructureMatchesEagerOracle) {
  auto db = MakeUniversityDb();
  for (int level = 0; level <= 4; ++level) {
    PlannerOptions options;
    options.level = static_cast<OptLevel>(level);
    PlannedQuery planned = MustPlan(*db, kThreeInputConjunction, options);

    ExecStats eager_stats;
    Result<CollectionResult> eager =
        ExecuteCollection(planned.plan, *db, &eager_stats);
    ASSERT_TRUE(eager.ok()) << eager.status().ToString();
    EXPECT_EQ(eager_stats.structures_built, planned.plan.structures.size());

    ExecStats lazy_stats;
    CollectionBuilders builders(planned.plan, *db, &lazy_stats);
    // Demand the structures one by one, in reverse order for spice: each
    // must come out row-identical to the eager oracle's.
    for (size_t i = planned.plan.structures.size(); i-- > 0;) {
      ASSERT_TRUE(builders.EnsureStructure(i).ok());
      const RefRelation& got = builders.result().structures[i];
      const RefRelation& want = eager->structures[i];
      ASSERT_EQ(got.size(), want.size()) << "structure " << i;
      for (const RefRow& row : want.rows()) {
        EXPECT_TRUE(got.Contains(row)) << "structure " << i;
      }
    }
    EXPECT_EQ(lazy_stats.structures_built, planned.plan.structures.size());
  }
}

TEST(CollectionBuildersTest, KeyedMatchesAgreeWithEagerRows) {
  auto db = MakeUniversityDb();
  PlannerOptions options;
  options.level = OptLevel::kOneStep;
  PlannedQuery planned = MustPlan(*db, kThreeInputConjunction, options);

  ExecStats eager_stats;
  Result<CollectionResult> eager =
      ExecuteCollection(planned.plan, *db, &eager_stats);
  ASSERT_TRUE(eager.ok());

  ExecStats lazy_stats;
  CollectionBuilders builders(planned.plan, *db, &lazy_stats);
  size_t keyed_structures = 0;
  for (size_t i = 0; i < planned.plan.structures.size(); ++i) {
    int keyed = StructureKeyedColumn(planned.plan, i);
    ASSERT_EQ(keyed, builders.KeyedColumn(i));
    if (keyed < 0) continue;
    ++keyed_structures;
    // Probe every key the eager structure holds: the keyed rows must be
    // exactly the eager rows carrying that key.
    const RefRelation& want = eager->structures[i];
    for (const RefRow& row : want.rows()) {
      const Ref& key = row[static_cast<size_t>(keyed)];
      Result<const std::vector<RefRow>*> got = builders.KeyedMatches(i, key);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      size_t want_count = 0;
      for (const RefRow& w : want.rows()) {
        if (w[static_cast<size_t>(keyed)] == key) ++want_count;
      }
      EXPECT_EQ((*got)->size(), want_count) << "structure " << i;
      for (const RefRow& g : **got) {
        EXPECT_TRUE(want.Contains(g)) << "structure " << i;
      }
    }
    // Keyed population never marks the structure built.
    EXPECT_FALSE(builders.structure_built(i));
  }
  ASSERT_GE(keyed_structures, 2u) << "query should exercise keyed probes";
  EXPECT_EQ(lazy_stats.structures_built, 0u);
  // Probing every key rebuilds at most what eager built (here exactly,
  // since every key matches); the strict saving is the cursor-level
  // early-close property, asserted below.
  EXPECT_LE(lazy_stats.structure_elements_built,
            eager_stats.structure_elements_built);
}

TEST(CollectionBuildersTest, LeafModeAnalysisMatchesExecutedBuilds) {
  // LazyConjunctionLeafModes mirrors the lowering: when it reports no
  // deferred leaf for the only conjunction, a full lazy drain must
  // materialise no structure at all (streamed + keyed only).
  auto db = MakeUniversityDb();
  PlannerOptions options;
  options.level = OptLevel::kOneStep;
  options.collection = CollectionPolicy::kLazy;
  PlannedQuery planned = MustPlan(*db, kThreeInputConjunction, options);
  ASSERT_EQ(planned.plan.conj_inputs.size(), 1u);
  std::vector<LazyLeafMode> modes = LazyConjunctionLeafModes(
      planned.plan, 0, AnalyzePipelineShape(planned.plan));
  ASSERT_EQ(modes.size(), planned.plan.conj_inputs[0].size());
  for (LazyLeafMode mode : modes) {
    EXPECT_NE(mode, LazyLeafMode::kDeferred);
  }

  Session session(db.get());
  session.options() = options;
  auto prepared = session.Prepare(kThreeInputConjunction);
  ASSERT_TRUE(prepared.ok());
  auto cursor = prepared->OpenCursor();
  ASSERT_TRUE(cursor.ok());
  Tuple t;
  while (true) {
    auto more = cursor->Next(&t);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
  }
  EXPECT_EQ(cursor->stats().structures_built, 0u);
  cursor->Close();
}

// ------------------------------------------------------- cursor behaviour

TEST(LazyCollectionTest, OpenDoesNoCollectionWork) {
  auto db = MakeUniversityDb();
  Session session(db.get());
  session.options().collection = CollectionPolicy::kLazy;
  auto prepared = session.Prepare(kThreeInputConjunction);
  ASSERT_TRUE(prepared.ok());
  auto cursor = prepared->OpenCursor();
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  ASSERT_TRUE(cursor->pipelined());
  const ExecStats& at_open = cursor->stats();
  EXPECT_EQ(at_open.elements_scanned, 0u);
  EXPECT_EQ(at_open.structures_built, 0u);
  EXPECT_EQ(at_open.structure_elements_built, 0u);
  EXPECT_EQ(at_open.combination_rows, 0u);
  // The first Next pays for what it demands — and only that.
  Tuple t;
  auto more = cursor->Next(&t);
  ASSERT_TRUE(more.ok()) << more.status().ToString();
  EXPECT_TRUE(*more);
  EXPECT_GT(cursor->stats().elements_scanned, 0u);
  cursor->Close();
}

TEST(LazyCollectionTest, FullDrainIsTupleIdenticalToEagerAcrossLevels) {
  for (int level = 0; level <= 5; ++level) {
    auto db = MakeUniversityDb();
    ASSERT_TRUE(db->AnalyzeAll().ok());
    for (const char* src : {kThreeDisjunctQuery, kThreeInputConjunction}) {
      Session eager(db.get());
      eager.options().level = static_cast<OptLevel>(level);
      eager.options().collection = CollectionPolicy::kEager;
      Session lazy(db.get());
      lazy.options().level = static_cast<OptLevel>(level);
      lazy.options().collection = CollectionPolicy::kLazy;
      auto run_eager = eager.Query(src);
      auto run_lazy = lazy.Query(src);
      ASSERT_TRUE(run_eager.ok()) << run_eager.status().ToString();
      ASSERT_TRUE(run_lazy.ok()) << run_lazy.status().ToString();
      EXPECT_EQ(TupleStrings(run_lazy->tuples), TupleStrings(run_eager->tuples))
          << "level " << level << "\n" << src;
    }
  }
}

TEST(LazyCollectionTest, EarlyCloseSkipsNeverDemandedStructures) {
  auto db = MakeUniversityDb();
  Session session(db.get());
  session.options().collection = CollectionPolicy::kLazy;
  auto prepared = session.Prepare(kThreeDisjunctQuery);
  ASSERT_TRUE(prepared.ok());
  size_t structure_count = 0;
  {
    auto cursor = prepared->OpenCursor();
    ASSERT_TRUE(cursor.ok());
    ASSERT_TRUE(cursor->pipelined());
    const PlannedQuery* planned = prepared->planned();
    ASSERT_NE(planned, nullptr);
    structure_count = planned->plan.structures.size();
    ASSERT_GE(structure_count, 3u);
    Tuple t;
    auto more = cursor->Next(&t);
    ASSERT_TRUE(more.ok() && *more);
    ExecStats early = cursor->stats();
    cursor->Close();
    // The first tuple came out of disjunct 0's stream: the later
    // disjuncts' structures were never materialised.
    EXPECT_LT(early.structures_built, structure_count);
  }
  // The eager policy on the same query builds every structure at Open.
  session.options().collection = CollectionPolicy::kEager;
  auto eager_cursor = prepared->OpenCursor();
  ASSERT_TRUE(eager_cursor.ok());
  EXPECT_EQ(eager_cursor->stats().structures_built, structure_count);
  eager_cursor->Close();
}

TEST(LazyCollectionTest, AcceptanceThreeInputConjunctionOneTupleBound) {
  // The acceptance criterion: on a >=3-input-conjunction paper-style
  // query drained for one tuple and closed, lazy collection builds
  // strictly fewer structure elements than eager.
  UniversityScale scale;
  scale.employees = 48;
  scale.papers = 80;
  scale.courses = 25;
  scale.timetable = 144;
  scale.seed = 3;
  for (OptLevel level : {OptLevel::kParallel, OptLevel::kOneStep}) {
    auto db = MakeUniversityDb(/*populate=*/false);
    ASSERT_TRUE(PopulateSynthetic(db.get(), scale).ok());
    auto one_tuple_elements = [&](CollectionPolicy policy) -> uint64_t {
      Session session(db.get());
      session.options().level = level;
      session.options().collection = policy;
      auto prepared = session.Prepare(kThreeInputConjunction);
      EXPECT_TRUE(prepared.ok());
      auto cursor = prepared->OpenCursor();
      EXPECT_TRUE(cursor.ok());
      EXPECT_TRUE(cursor->pipelined());
      Tuple t;
      auto more = cursor->Next(&t);
      EXPECT_TRUE(more.ok() && *more);
      uint64_t built = cursor->stats().structure_elements_built;
      cursor->Close();
      return built;
    };
    uint64_t eager = one_tuple_elements(CollectionPolicy::kEager);
    uint64_t lazy = one_tuple_elements(CollectionPolicy::kLazy);
    EXPECT_GT(eager, 0u) << OptLevelToString(level);
    EXPECT_LT(lazy, eager) << OptLevelToString(level);
  }
}

TEST(LazyCollectionTest, MaterializingFallbackForcesFullBuild) {
  // Pipeline off: the materializing combination needs every structure at
  // Open, so the lazy policy degrades to eager — and stays correct.
  auto db = MakeUniversityDb();
  Session session(db.get());
  session.options().pipeline = false;
  session.options().collection = CollectionPolicy::kLazy;
  auto prepared = session.Prepare(kThreeDisjunctQuery);
  ASSERT_TRUE(prepared.ok());
  auto cursor = prepared->OpenCursor();
  ASSERT_TRUE(cursor.ok());
  EXPECT_FALSE(cursor->pipelined());
  const PlannedQuery* planned = prepared->planned();
  ASSERT_NE(planned, nullptr);
  EXPECT_EQ(cursor->stats().structures_built,
            planned->plan.structures.size());
  std::vector<Tuple> streamed;
  Tuple t;
  while (true) {
    auto more = cursor->Next(&t);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    streamed.push_back(std::move(t));
  }
  cursor->Close();

  Session eager(db.get());
  auto reference = eager.Query(kThreeDisjunctQuery);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(TupleStrings(streamed), TupleStrings(reference->tuples));
}

// ------------------------------------------------------------ SQL surface

TEST(LazyCollectionSurfaceTest, SetCollectionStatementAndExplain) {
  auto db = MakeUniversityDb();
  std::ostringstream out;
  Session session(db.get(), &out);
  EXPECT_EQ(session.options().collection, CollectionPolicy::kEager);

  ASSERT_TRUE(session.ExecuteScript("SET COLLECTION LAZY;").ok());
  EXPECT_EQ(session.options().collection, CollectionPolicy::kLazy);
  auto text_lazy = session.Explain(kThreeInputConjunction);
  ASSERT_TRUE(text_lazy.ok());
  EXPECT_NE(text_lazy->find("policy: lazy"), std::string::npos) << *text_lazy;
  EXPECT_NE(text_lazy->find("on demand"), std::string::npos) << *text_lazy;

  ASSERT_TRUE(session.ExecuteScript("SET COLLECTION EAGER;").ok());
  EXPECT_EQ(session.options().collection, CollectionPolicy::kEager);
  auto text_eager = session.Explain(kThreeInputConjunction);
  ASSERT_TRUE(text_eager.ok());
  EXPECT_NE(text_eager->find("policy: eager"), std::string::npos)
      << *text_eager;
  EXPECT_EQ(text_eager->find("on demand"), std::string::npos) << *text_eager;

  EXPECT_FALSE(session.ExecuteScript("SET COLLECTION MAYBE;").ok());
}

TEST(LazyCollectionSurfaceTest, TogglingPolicyInvalidatesCachedPlans) {
  auto db = MakeUniversityDb();
  Session session(db.get());
  auto prepared = session.Prepare(kThreeDisjunctQuery);
  ASSERT_TRUE(prepared.ok());
  auto first = prepared->Execute();
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->plan_cache_hit);
  auto second = prepared->Execute();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->plan_cache_hit);

  session.options().collection = CollectionPolicy::kLazy;  // -> replan
  auto third = prepared->Execute();
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->plan_cache_hit);
  EXPECT_EQ(TupleStrings(third->tuples), TupleStrings(first->tuples));
}

}  // namespace
}  // namespace pascalr
