#include "value/value.h"

#include <gtest/gtest.h>

#include "value/type.h"

namespace pascalr {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::MakeInt(3).is_int());
  EXPECT_EQ(Value::MakeInt(3).AsInt(), 3);
  EXPECT_TRUE(Value::MakeString("x").is_string());
  EXPECT_EQ(Value::MakeString("x").AsString(), "x");
  EXPECT_TRUE(Value::MakeBool(true).is_bool());
  EXPECT_TRUE(Value::MakeBool(true).AsBool());
  EXPECT_TRUE(Value::MakeEnum(2).is_enum());
  EXPECT_EQ(Value::MakeEnum(2).AsEnumOrdinal(), 2);
}

TEST(ValueTest, IntOrdering) {
  EXPECT_LT(Value::MakeInt(1).Compare(Value::MakeInt(2)), 0);
  EXPECT_GT(Value::MakeInt(5).Compare(Value::MakeInt(-5)), 0);
  EXPECT_EQ(Value::MakeInt(7).Compare(Value::MakeInt(7)), 0);
}

TEST(ValueTest, StringOrderingIsLexicographic) {
  EXPECT_LT(Value::MakeString("abc").Compare(Value::MakeString("abd")), 0);
  EXPECT_LT(Value::MakeString("ab").Compare(Value::MakeString("abc")), 0);
  EXPECT_EQ(Value::MakeString("").Compare(Value::MakeString("")), 0);
}

TEST(ValueTest, EnumOrderingFollowsDeclarationOrder) {
  // freshman(0) < sophomore(1) < junior(2) < senior(3): the paper compares
  // `c.clevel <= sophomore`.
  EXPECT_TRUE(
      Value::MakeEnum(0).Satisfies(CompareOp::kLe, Value::MakeEnum(1)));
  EXPECT_TRUE(
      Value::MakeEnum(1).Satisfies(CompareOp::kLe, Value::MakeEnum(1)));
  EXPECT_FALSE(
      Value::MakeEnum(2).Satisfies(CompareOp::kLe, Value::MakeEnum(1)));
}

struct OpCase {
  CompareOp op;
  int lhs;
  int rhs;
  bool expected;
};

class CompareOpTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(CompareOpTest, IntSemantics) {
  const OpCase& c = GetParam();
  EXPECT_EQ(Value::MakeInt(c.lhs).Satisfies(c.op, Value::MakeInt(c.rhs)),
            c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, CompareOpTest,
    ::testing::Values(
        OpCase{CompareOp::kEq, 3, 3, true}, OpCase{CompareOp::kEq, 3, 4, false},
        OpCase{CompareOp::kNe, 3, 4, true}, OpCase{CompareOp::kNe, 3, 3, false},
        OpCase{CompareOp::kLt, 3, 4, true}, OpCase{CompareOp::kLt, 4, 4, false},
        OpCase{CompareOp::kLe, 4, 4, true}, OpCase{CompareOp::kLe, 5, 4, false},
        OpCase{CompareOp::kGt, 5, 4, true}, OpCase{CompareOp::kGt, 4, 4, false},
        OpCase{CompareOp::kGe, 4, 4, true},
        OpCase{CompareOp::kGe, 3, 4, false}));

class OpAlgebraTest : public ::testing::TestWithParam<CompareOp> {};

TEST_P(OpAlgebraTest, NegateIsComplement) {
  CompareOp op = GetParam();
  for (int a = -2; a <= 2; ++a) {
    for (int b = -2; b <= 2; ++b) {
      Value va = Value::MakeInt(a), vb = Value::MakeInt(b);
      EXPECT_NE(va.Satisfies(op, vb), va.Satisfies(NegateOp(op), vb))
          << a << " " << b;
    }
  }
}

TEST_P(OpAlgebraTest, MirrorSwapsSides) {
  CompareOp op = GetParam();
  for (int a = -2; a <= 2; ++a) {
    for (int b = -2; b <= 2; ++b) {
      Value va = Value::MakeInt(a), vb = Value::MakeInt(b);
      EXPECT_EQ(va.Satisfies(op, vb), vb.Satisfies(MirrorOp(op), va))
          << a << " " << b;
    }
  }
}

TEST_P(OpAlgebraTest, NegateAndMirrorAreInvolutions) {
  CompareOp op = GetParam();
  EXPECT_EQ(NegateOp(NegateOp(op)), op);
  EXPECT_EQ(MirrorOp(MirrorOp(op)), op);
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpAlgebraTest,
                         ::testing::Values(CompareOp::kEq, CompareOp::kNe,
                                           CompareOp::kLt, CompareOp::kLe,
                                           CompareOp::kGt, CompareOp::kGe));

TEST(ValueTest, HashEqualValuesAgree) {
  EXPECT_EQ(Value::MakeInt(42).Hash(), Value::MakeInt(42).Hash());
  EXPECT_EQ(Value::MakeString("ab").Hash(), Value::MakeString("ab").Hash());
  // Different kinds holding the "same" bits must not collide by identity.
  EXPECT_NE(Value::MakeInt(1).Hash(), Value::MakeBool(true).Hash());
  EXPECT_NE(Value::MakeInt(0).Hash(), Value::MakeEnum(0).Hash());
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::MakeInt(-3).ToString(), "-3");
  EXPECT_EQ(Value::MakeString("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::MakeBool(false).ToString(), "false");
  EXPECT_EQ(Value::MakeEnum(2).ToString(), "#2");
}

TEST(ValueTest, ToStringTypedUsesEnumLabels) {
  auto info = MakeEnum("statustype",
                       {"student", "technician", "assistant", "professor"});
  Type t = Type::Enum(info);
  EXPECT_EQ(Value::MakeEnum(3).ToStringTyped(t), "professor");
  EXPECT_EQ(Value::MakeEnum(0).ToStringTyped(t), "student");
  // Out-of-range ordinals fall back to raw rendering.
  EXPECT_EQ(Value::MakeEnum(9).ToStringTyped(t), "#9");
  // Non-enum values ignore the type hint.
  EXPECT_EQ(Value::MakeInt(5).ToStringTyped(t), "5");
}

TEST(TypeTest, ToStringAndCompatibility) {
  EXPECT_EQ(Type::Int().ToString(), "integer");
  EXPECT_EQ(Type::IntRange(1900, 1999).ToString(), "1900..1999");
  EXPECT_EQ(Type::String(10).ToString(), "string[10]");
  EXPECT_EQ(Type::Bool().ToString(), "boolean");

  auto a = MakeEnum("a", {"x", "y"});
  auto b = MakeEnum("b", {"x", "y"});
  auto c = MakeEnum("c", {"x", "z"});
  EXPECT_TRUE(Type::Enum(a).CompatibleWith(Type::Enum(a)));
  // Structurally identical labels are comparable even across names.
  EXPECT_TRUE(Type::Enum(a).CompatibleWith(Type::Enum(b)));
  EXPECT_FALSE(Type::Enum(a).CompatibleWith(Type::Enum(c)));
  EXPECT_FALSE(Type::Int().CompatibleWith(Type::String()));
  // Subranges of the same kind stay comparable.
  EXPECT_TRUE(Type::IntRange(1, 9).CompatibleWith(Type::Int()));
}

TEST(TypeTest, EnumOrdinalLookup) {
  auto info = MakeEnum("day", {"mon", "tue", "wed"});
  EXPECT_EQ(info->OrdinalOf("mon"), 0);
  EXPECT_EQ(info->OrdinalOf("wed"), 2);
  EXPECT_EQ(info->OrdinalOf("sun"), -1);
}

}  // namespace
}  // namespace pascalr
