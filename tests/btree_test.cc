#include "index/btree_index.h"

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

namespace pascalr {
namespace {

Ref R(uint32_t slot) { return Ref{1, slot, 1}; }

/// Reference probe over a plain vector, for comparison with the tree.
std::vector<uint32_t> ReferenceProbe(const std::vector<int64_t>& values,
                                     CompareOp op, int64_t probe) {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (Value::MakeInt(values[i]).Satisfies(op, Value::MakeInt(probe))) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint32_t> TreeProbe(const BTreeIndex& tree, CompareOp op,
                                int64_t probe) {
  std::vector<uint32_t> out;
  tree.Probe(op, Value::MakeInt(probe), [&](const Ref& r) {
    out.push_back(r.slot);
    return true;
  });
  std::sort(out.begin(), out.end());
  return out;
}

class BTreeFanoutTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BTreeFanoutTest, BulkInsertKeepsInvariantsAndOrder) {
  BTreeIndex tree("t", GetParam());
  std::mt19937 rng(99);
  std::vector<int64_t> values;
  for (uint32_t i = 0; i < 500; ++i) {
    int64_t v = static_cast<int64_t>(rng() % 200);
    values.push_back(v);
    tree.Add(Value::MakeInt(v), R(i));
  }
  EXPECT_EQ(tree.size(), 500u);
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  EXPECT_GT(tree.height(), 1u);

  // In-order traversal must be sorted.
  std::vector<int64_t> seen;
  tree.ForEachEntry([&](const Value& v, const Ref&) {
    seen.push_back(v.AsInt());
    return true;
  });
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.size(), 500u);
}

TEST_P(BTreeFanoutTest, ProbesMatchReferenceForAllOperators) {
  BTreeIndex tree("t", GetParam());
  std::mt19937 rng(7);
  std::vector<int64_t> values;
  for (uint32_t i = 0; i < 300; ++i) {
    int64_t v = static_cast<int64_t>(rng() % 60);
    values.push_back(v);
    tree.Add(Value::MakeInt(v), R(i));
  }
  const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                           CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
  for (CompareOp op : ops) {
    for (int64_t probe : {-1, 0, 13, 30, 59, 60, 100}) {
      EXPECT_EQ(TreeProbe(tree, op, probe), ReferenceProbe(values, op, probe))
          << "op=" << CompareOpToString(op) << " probe=" << probe;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BTreeFanoutTest,
                         ::testing::Values(4, 8, 32, 128));

TEST(BTreeTest, MinMaxValues) {
  BTreeIndex tree;
  Value v = Value::MakeInt(0);
  EXPECT_FALSE(tree.MinValue(&v));
  EXPECT_FALSE(tree.MaxValue(&v));
  tree.Add(Value::MakeInt(10), R(0));
  tree.Add(Value::MakeInt(-3), R(1));
  tree.Add(Value::MakeInt(42), R(2));
  ASSERT_TRUE(tree.MinValue(&v));
  EXPECT_EQ(v.AsInt(), -3);
  ASSERT_TRUE(tree.MaxValue(&v));
  EXPECT_EQ(v.AsInt(), 42);
}

TEST(BTreeTest, RemoveLeavesTombstonesSkippedByProbes) {
  BTreeIndex tree("t", 4);
  for (uint32_t i = 0; i < 20; ++i) {
    tree.Add(Value::MakeInt(i), R(i));
  }
  EXPECT_TRUE(tree.Remove(Value::MakeInt(5), R(5)));
  EXPECT_FALSE(tree.Remove(Value::MakeInt(5), R(5)));
  EXPECT_EQ(tree.size(), 19u);
  EXPECT_EQ(tree.num_distinct_values(), 19u);
  EXPECT_FALSE(tree.ProbeAny(CompareOp::kEq, Value::MakeInt(5)));

  // Min/Max skip tombstones.
  EXPECT_TRUE(tree.Remove(Value::MakeInt(0), R(0)));
  Value v = Value::MakeInt(0);
  ASSERT_TRUE(tree.MinValue(&v));
  EXPECT_EQ(v.AsInt(), 1);
}

TEST(BTreeTest, TombstoneResurrection) {
  BTreeIndex tree("t", 4);
  tree.Add(Value::MakeInt(5), R(0));
  EXPECT_TRUE(tree.Remove(Value::MakeInt(5), R(0)));
  tree.Add(Value::MakeInt(5), R(1));
  EXPECT_EQ(tree.num_distinct_values(), 1u);
  EXPECT_TRUE(tree.ProbeAny(CompareOp::kEq, Value::MakeInt(5)));
}

TEST(BTreeTest, CompactDropsTombstones) {
  BTreeIndex tree("t", 4);
  for (uint32_t i = 0; i < 50; ++i) tree.Add(Value::MakeInt(i), R(i));
  for (uint32_t i = 0; i < 50; i += 2) {
    ASSERT_TRUE(tree.Remove(Value::MakeInt(i), R(i)));
  }
  tree.Compact();
  EXPECT_EQ(tree.size(), 25u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  std::vector<uint32_t> odd = TreeProbe(tree, CompareOp::kGe, 0);
  EXPECT_EQ(odd.size(), 25u);
}

TEST(BTreeTest, DuplicateValuesShareKey) {
  BTreeIndex tree("t", 4);
  for (uint32_t i = 0; i < 10; ++i) tree.Add(Value::MakeInt(1), R(i));
  EXPECT_EQ(tree.size(), 10u);
  EXPECT_EQ(tree.num_distinct_values(), 1u);
  EXPECT_EQ(TreeProbe(tree, CompareOp::kEq, 1).size(), 10u);
}

TEST(BTreeTest, StringValuesOrderLexicographically) {
  BTreeIndex tree("t", 4);
  const char* words[] = {"pear", "apple", "fig", "banana", "cherry"};
  for (uint32_t i = 0; i < 5; ++i) {
    tree.Add(Value::MakeString(words[i]), R(i));
  }
  std::vector<std::string> seen;
  tree.ForEachEntry([&](const Value& v, const Ref&) {
    seen.push_back(v.AsString());
    return true;
  });
  EXPECT_EQ(seen, (std::vector<std::string>{"apple", "banana", "cherry", "fig",
                                            "pear"}));
  // v < "cherry" -> apple, banana.
  std::vector<uint32_t> hits;
  tree.Probe(CompareOp::kLt, Value::MakeString("cherry"), [&](const Ref& r) {
    hits.push_back(r.slot);
    return true;
  });
  EXPECT_EQ(hits.size(), 2u);
}

TEST(BTreeTest, EarlyTerminationOnBoundedProbe) {
  BTreeIndex tree("t", 4);
  for (uint32_t i = 0; i < 100; ++i) tree.Add(Value::MakeInt(i), R(i));
  int visited = 0;
  tree.Probe(CompareOp::kEq, Value::MakeInt(3), [&](const Ref&) {
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 1);
}

}  // namespace
}  // namespace pascalr
