// Strategy 4: Example 4.6/4.7 — quantifier evaluation in the collection
// phase, with swapping, cascades, and the value-list special cases.

#include "opt/quant_pushdown.h"

#include <gtest/gtest.h>

#include "opt/range_extension.h"
#include "pascalr/sample_db.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::MakeUniversityDb;
using testing_util::MustStandardForm;

TEST(QuantPushdownTest, Example47CascadeEliminatesAllThree) {
  auto db = MakeUniversityDb(false);
  StandardForm sf = MustStandardForm(*db, Example21QuerySource());
  ApplyRangeExtension(&sf);  // Example 4.6: extension enables the pushdown
  QuantPushdownResult result = ApplyQuantPushdown(&sf);

  // c, then t (cascade), then p (single-disjunct universal).
  EXPECT_EQ(result.eliminated, (std::vector<std::string>{"c", "t", "p"}));
  ASSERT_EQ(result.value_lists.size(), 3u);

  // c's list is built first, t's list is gated by a probe of c's list.
  const ValueListSpec& c_list = result.value_lists[0];
  EXPECT_EQ(c_list.var, "c");
  EXPECT_TRUE(c_list.probe_gates.empty());
  const ValueListSpec& t_list = result.value_lists[1];
  EXPECT_EQ(t_list.var, "t");
  ASSERT_EQ(t_list.probe_gates.size(), 1u);
  EXPECT_EQ(t_list.probe_gates[0].value_list_id, c_list.id);
  const ValueListSpec& p_list = result.value_lists[2];
  EXPECT_EQ(p_list.var, "p");

  // Surviving derived predicates both target the free variable e.
  ASSERT_EQ(result.derived.size(), 2u);
  for (const DerivedPredicate& d : result.derived) {
    EXPECT_EQ(d.vm, "e");
  }

  // The matrix no longer mentions any quantified variable.
  for (const Conjunction& conj : sf.matrix.disjuncts) {
    EXPECT_FALSE(conj.References("p"));
    EXPECT_FALSE(conj.References("c"));
    EXPECT_FALSE(conj.References("t"));
  }
}

TEST(QuantPushdownTest, Example46UniversalInTwoConjunctionsBlocks) {
  auto db = MakeUniversityDb(false);
  // WITHOUT range extension, p occurs in two conjunctions of the standard
  // form (Example 4.6: "no immediate quantifier evaluation seems
  // possible") — and c/t cannot move past the unequal ALL p.
  StandardForm sf = MustStandardForm(*db, Example21QuerySource());
  QuantPushdownResult result = ApplyQuantPushdown(&sf);
  EXPECT_FALSE(std::count(result.eliminated.begin(), result.eliminated.end(),
                          "p"));
}

TEST(QuantPushdownTest, EqualQuantifierSwapEnablesInnerElimination) {
  auto db = MakeUniversityDb(false);
  // SOME c SOME t with c's term depending on t: c must bubble inward
  // past t (equal quantifiers — always legal).
  StandardForm sf = MustStandardForm(
      *db,
      "[<e.ename> OF EACH e IN employees: "
      "SOME c IN courses SOME t IN timetable "
      "((c.cnr = t.tcnr) AND (t.tenr = e.enr))]");
  QuantPushdownResult result = ApplyQuantPushdown(&sf);
  EXPECT_EQ(result.eliminated, (std::vector<std::string>{"c", "t"}));
}

TEST(QuantPushdownTest, UnequalQuantifiersDoNotSwap) {
  auto db = MakeUniversityDb(false);
  // ALL c ... SOME t ...: t is innermost and eliminable, but c's term
  // links to t... after t's elimination c links only to e via derived
  // predicate? No — c's dyadic term goes to t, so after t is eliminated
  // c's conjunction holds only a derived predicate and no dyadic term:
  // c cannot be eliminated (and must not bubble past the unequal SOME).
  StandardForm sf = MustStandardForm(
      *db,
      "[<e.ename> OF EACH e IN employees: "
      "ALL c IN courses SOME t IN timetable "
      "((c.cnr = t.tcnr) AND (t.tenr = e.enr))]");
  QuantPushdownResult result = ApplyQuantPushdown(&sf);
  // t cannot be eliminated first (it links to both c and e: two dyadic
  // terms), and c cannot bubble inward past SOME t. Nothing moves.
  EXPECT_TRUE(result.eliminated.empty());
}

TEST(QuantPushdownTest, ValueListModesFollowThePaper) {
  auto db = MakeUniversityDb(false);
  // SOME with < : only the maximum of the list matters.
  StandardForm sf = MustStandardForm(
      *db,
      "[<e.ename> OF EACH e IN employees: SOME p IN papers "
      "((e.enr < p.penr))]");
  QuantPushdownResult result = ApplyQuantPushdown(&sf);
  ASSERT_EQ(result.eliminated.size(), 1u);
  ASSERT_EQ(result.value_lists.size(), 1u);
  EXPECT_EQ(result.value_lists[0].mode, ValueList::Mode::kMaxOnly);

  // ALL with = : at most one distinct value matters.
  StandardForm sf2 = MustStandardForm(
      *db,
      "[<e.ename> OF EACH e IN employees: ALL p IN papers "
      "((e.enr = p.penr))]");
  QuantPushdownResult result2 = ApplyQuantPushdown(&sf2);
  ASSERT_EQ(result2.value_lists.size(), 1u);
  EXPECT_EQ(result2.value_lists[0].mode, ValueList::Mode::kAtMostOne);
}

TEST(QuantPushdownTest, MonadicTermsBecomeValueListGates) {
  auto db = MakeUniversityDb(false);
  StandardForm sf = MustStandardForm(
      *db,
      "[<e.ename> OF EACH e IN employees: SOME p IN papers "
      "((p.pyear = 1977) AND (p.penr = e.enr))]");
  QuantPushdownResult result = ApplyQuantPushdown(&sf);
  ASSERT_EQ(result.value_lists.size(), 1u);
  ASSERT_EQ(result.value_lists[0].gates.size(), 1u);
  EXPECT_NE(result.value_lists[0].gates[0].ToString().find("1977"),
            std::string::npos);
}

TEST(QuantPushdownTest, TwoDyadicLinksBlockElimination) {
  auto db = MakeUniversityDb(false);
  // t links to both e and c in the same conjunction: "only one additional
  // variable" fails.
  StandardForm sf = MustStandardForm(
      *db,
      "[<e.ename> OF EACH e IN employees: SOME t IN timetable "
      "((t.tenr = e.enr) AND (t.tcnr = 11))]");
  // Here t has one dyadic link (to e) and one monadic term: eliminable.
  QuantPushdownResult ok = ApplyQuantPushdown(&sf);
  EXPECT_EQ(ok.eliminated.size(), 1u);

  StandardForm sf2 = MustStandardForm(
      *db,
      "[<e.ename, c.ctitle> OF EACH e IN employees, EACH c IN courses: "
      "SOME t IN timetable ((t.tenr = e.enr) AND (t.tcnr = c.cnr))]");
  QuantPushdownResult blocked = ApplyQuantPushdown(&sf2);
  EXPECT_TRUE(blocked.eliminated.empty());
}

TEST(QuantPushdownTest, SameRelationBlocksElimination) {
  auto db = MakeUniversityDb(false);
  // Both variables range over employees: the value list would have to be
  // built by the same scan that probes it.
  StandardForm sf = MustStandardForm(
      *db,
      "[<a.ename> OF EACH a IN employees: SOME b IN employees "
      "((b.enr <> a.enr))]");
  QuantPushdownResult result = ApplyQuantPushdown(&sf);
  EXPECT_TRUE(result.eliminated.empty());
}

TEST(QuantPushdownTest, ExistentialAcrossMultipleDisjuncts) {
  auto db = MakeUniversityDb(false);
  // SOME distributes over OR: p in two disjuncts still eliminates, with
  // one value list per disjunct.
  StandardForm sf = MustStandardForm(
      *db,
      "[<e.ename> OF EACH e IN employees: SOME p IN papers "
      "((p.penr = e.enr) OR (p.pyear = 1977) AND (p.penr <> e.enr))]");
  QuantPushdownResult result = ApplyQuantPushdown(&sf);
  ASSERT_EQ(result.eliminated, (std::vector<std::string>{"p"}));
  EXPECT_EQ(result.value_lists.size(), 2u);
  EXPECT_EQ(result.derived.size(), 2u);
}

TEST(QuantPushdownTest, VariableAbsentFromMatrixIsTriviallyEliminated) {
  auto db = MakeUniversityDb(false);
  StandardForm sf = MustStandardForm(
      *db,
      "[<e.ename> OF EACH e IN employees: SOME p IN papers "
      "((e.estatus = professor))]");
  QuantPushdownResult result = ApplyQuantPushdown(&sf);
  EXPECT_EQ(result.eliminated, (std::vector<std::string>{"p"}));
  EXPECT_TRUE(result.value_lists.empty());
  EXPECT_TRUE(result.derived.empty());
}

TEST(QuantPushdownTest, SummaryRendering) {
  auto db = MakeUniversityDb(false);
  StandardForm sf = MustStandardForm(*db, Example45QuerySource());
  QuantPushdownResult result = ApplyQuantPushdown(&sf);
  std::string text = result.ToString();
  EXPECT_NE(text.find("evaluated in the collection phase"), std::string::npos);
  EXPECT_NE(text.find("derived single list"), std::string::npos);
}

}  // namespace
}  // namespace pascalr
