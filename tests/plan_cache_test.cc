// Plan-cache invalidation: mutations (mod_count), ANALYZE (stats epoch),
// option changes, relation re-creation, and parameter-dependent range
// emptiness all force a replan — and a stale cache never returns wrong
// tuples.

#include <gtest/gtest.h>

#include "base/counters.h"
#include "concurrency/session_manager.h"
#include "pascalr/prepared.h"
#include "pascalr/session.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::MakeUniversityDb;
using testing_util::TupleStrings;

TEST(PlanCacheTest, MutationBumpsModCountAndForcesReplan) {
  auto db = MakeUniversityDb();
  Session session(db.get());
  auto prepared = session.Prepare(
      "[<e.ename> OF EACH e IN employees: e.enr >= $lo]");
  ASSERT_TRUE(prepared.ok());

  ASSERT_TRUE(prepared->Execute({{"lo", Value::MakeInt(1)}}).ok());
  EXPECT_EQ(prepared->stats().plan_compiles, 1u);

  // Mutating a referenced relation invalidates the cached plan...
  ASSERT_TRUE(session
                  .ExecuteScript("employees :+ [<42, 'Zara', professor>];")
                  .ok());
  auto after = prepared->Execute({{"lo", Value::MakeInt(1)}});
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->plan_cache_hit);
  EXPECT_EQ(prepared->stats().plan_compiles, 2u);
  // ...and the new tuple is visible.
  bool found = false;
  for (const Tuple& t : after->tuples) {
    if (t.at(0).AsString() == "Zara") found = true;
  }
  EXPECT_TRUE(found);

  // Mutating an *unreferenced* relation does not.
  ASSERT_TRUE(session
                  .ExecuteScript("courses :+ [<77, senior, 'Opt'>];")
                  .ok());
  auto unrelated = prepared->Execute({{"lo", Value::MakeInt(1)}});
  ASSERT_TRUE(unrelated.ok());
  EXPECT_TRUE(unrelated->plan_cache_hit);
}

TEST(PlanCacheTest, HitAndMissCountersFeedTheSessionMetrics) {
  auto db = MakeUniversityDb();
  Session session(db.get());
  auto prepared = session.Prepare(
      "[<e.ename> OF EACH e IN employees: e.enr >= $lo]");
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(session.metrics().FindCounter("plan_cache.misses"), nullptr);

  // First execute compiles: one miss, no hit yet.
  ASSERT_TRUE(prepared->Execute({{"lo", Value::MakeInt(1)}}).ok());
  ASSERT_NE(session.metrics().FindCounter("plan_cache.misses"), nullptr);
  EXPECT_EQ(session.metrics().FindCounter("plan_cache.misses")->value(), 1u);
  EXPECT_EQ(session.metrics().FindCounter("plan_cache.hits"), nullptr);

  // Cached re-executes count hits without moving the miss counter.
  ASSERT_TRUE(prepared->Execute({{"lo", Value::MakeInt(2)}}).ok());
  ASSERT_TRUE(prepared->Execute({{"lo", Value::MakeInt(3)}}).ok());
  ASSERT_NE(session.metrics().FindCounter("plan_cache.hits"), nullptr);
  EXPECT_EQ(session.metrics().FindCounter("plan_cache.hits")->value(), 2u);
  EXPECT_EQ(session.metrics().FindCounter("plan_cache.misses")->value(), 1u);

  // Invalidation turns the next execute back into a miss.
  ASSERT_TRUE(session
                  .ExecuteScript("employees :+ [<43, 'Yuri', student>];")
                  .ok());
  ASSERT_TRUE(prepared->Execute({{"lo", Value::MakeInt(1)}}).ok());
  EXPECT_EQ(session.metrics().FindCounter("plan_cache.misses")->value(), 2u);
  EXPECT_EQ(session.metrics().FindCounter("plan_cache.hits")->value(), 2u);
}

TEST(PlanCacheTest, AnalyzeAfterSkewShiftDropsTheCachedAutoPlan) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  Session session(db.get());
  session.options().level = OptLevel::kAuto;

  auto prepared = session.Prepare(
      "[<e.ename> OF EACH e IN employees:"
      " (e.enr <= $top) AND SOME t IN timetable (e.enr = t.tenr)]");
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->Execute({{"top", Value::MakeInt(9)}}).ok());
  ASSERT_TRUE(prepared->Execute({{"top", Value::MakeInt(9)}})->plan_cache_hit);

  // Shift the data, then ANALYZE: the epoch moves even though the
  // relations' mod_counts were already going to force a replan — and the
  // re-search runs against the *new* statistics.
  CompileCounters before = GlobalCompileCounters();
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(session
                    .ExecuteScript("timetable :+ [<1, " +
                                   std::to_string(30 + i) +
                                   ", monday, 9001000, 'R9'>];")
                    .ok());
  }
  ASSERT_TRUE(db->AnalyzeAll().ok());
  auto re = prepared->Execute({{"top", Value::MakeInt(9)}});
  ASSERT_TRUE(re.ok());
  EXPECT_FALSE(re->plan_cache_hit);
  EXPECT_GT(GlobalCompileCounters().plan_searches, before.plan_searches);

  // A delete + ANALYZE moves both the mod_count and the stats epoch; the
  // next execute replans against the refreshed statistics.
  ASSERT_TRUE(prepared->Execute({{"top", Value::MakeInt(9)}})->plan_cache_hit);
  ASSERT_TRUE(session.ExecuteScript("timetable :- [<1, 30, monday>];").ok());
  ASSERT_TRUE(db->AnalyzeAll().ok());
  auto re2 = prepared->Execute({{"top", Value::MakeInt(9)}});
  ASSERT_TRUE(re2.ok());
  EXPECT_FALSE(re2->plan_cache_hit);
  // ANALYZE over an unchanged catalog recomputes nothing, keeps the
  // epoch, and the cache stays warm.
  ASSERT_TRUE(db->AnalyzeAll().ok());
  ASSERT_TRUE(prepared->Execute({{"top", Value::MakeInt(9)}})->plan_cache_hit);
}

TEST(PlanCacheTest, NewPermanentIndexInvalidates) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  Session session(db.get());
  session.options().use_permanent_indexes = true;
  auto prepared = session.Prepare(
      "[<e.ename> OF EACH e IN employees:"
      " SOME t IN timetable (e.enr = t.tenr)]");
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->Execute().ok());
  ASSERT_TRUE(prepared->Execute()->plan_cache_hit);

  // Declaring a permanent index moves the stats epoch: the cached plan
  // replans and can now borrow it instead of building a transient one.
  ASSERT_TRUE(session.ExecuteScript("INDEX timetable tenr;").ok());
  auto exec = prepared->Execute();
  ASSERT_TRUE(exec.ok());
  EXPECT_FALSE(exec->plan_cache_hit);
}

TEST(PlanCacheTest, OptionChangeInvalidates) {
  auto db = MakeUniversityDb();
  Session session(db.get());
  auto prepared = session.Prepare(
      "[<e.ename> OF EACH e IN employees: e.enr >= $lo]");
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->Execute({{"lo", Value::MakeInt(1)}}).ok());
  session.options().level = OptLevel::kNaive;
  auto exec = prepared->Execute({{"lo", Value::MakeInt(1)}});
  ASSERT_TRUE(exec.ok());
  EXPECT_FALSE(exec->plan_cache_hit);
  EXPECT_EQ(prepared->planned()->plan.level, OptLevel::kNaive);
}

TEST(PlanCacheTest, RelationRecreationForcesRebind) {
  Database db;
  Session session(&db);
  ASSERT_TRUE(session
                  .ExecuteScript(
                      "VAR r : RELATION <a> OF RECORD a : 1..99 END;"
                      "r :+ [<1>]; r :+ [<2>]; r :+ [<3>];")
                  .ok());
  auto prepared =
      session.Prepare("[<x.a> OF EACH x IN r: x.a >= $lo]");
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->Execute({{"lo", Value::MakeInt(1)}}).ok());

  // Drop + re-create r with the same shape but different contents: the
  // prepared query rebinds against the new relation object.
  ASSERT_TRUE(db.DropRelation("r").ok());
  ASSERT_TRUE(session
                  .ExecuteScript(
                      "VAR r : RELATION <a> OF RECORD a : 1..99 END;"
                      "r :+ [<7>];")
                  .ok());
  auto exec = prepared->Execute({{"lo", Value::MakeInt(1)}});
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_FALSE(exec->plan_cache_hit);
  EXPECT_GE(prepared->stats().rebinds, 1u);
  ASSERT_EQ(exec->tuples.size(), 1u);
  EXPECT_EQ(exec->tuples[0].at(0).AsInt(), 7);
}

TEST(PlanCacheTest, ParamEmptinessFlipInExtendedRangeStaysCorrect) {
  auto db = MakeUniversityDb();
  Session session(db.get());
  // ALL over a user-written extended range whose contents depend on $y:
  // when no paper has pyear = $y the range is empty and Lemma-1 folding
  // makes the ALL vacuously true — a plan compiled for a non-empty
  // binding is *wrong* for an empty one, so the cache must replan.
  const std::string src =
      "[<e.ename> OF EACH e IN employees:"
      " ALL p IN [EACH p IN papers: p.pyear = $y] (e.enr <> p.penr)]";
  auto prepared = session.Prepare(src);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  auto reference = [&](int64_t y) {
    std::string lit = src;
    std::string::size_type at = lit.find("$y");
    lit.replace(at, 2, std::to_string(y));
    auto run = session.Query(lit);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return TupleStrings(run->tuples);
  };

  for (int64_t y : {1977, 1399, 1975, 1399, 1977, 1976}) {
    auto exec = prepared->Execute({{"y", Value::MakeInt(y)}});
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    EXPECT_EQ(TupleStrings(exec->tuples), reference(y)) << "y=" << y;
  }
}

TEST(PlanCacheTest, StaleCacheNeverReturnsWrongTuplesUnderChurn) {
  auto db = MakeUniversityDb();
  Session session(db.get());
  auto prepared = session.Prepare(
      "[<e.ename> OF EACH e IN employees:"
      " (e.enr >= $lo) AND SOME t IN timetable (e.enr = t.tenr)]");
  ASSERT_TRUE(prepared.ok());

  // Interleave mutations, ANALYZE, option flips, and executes; after
  // every step the prepared result must equal a freshly planned Query.
  const char* mutations[] = {
      "employees :+ [<50, 'New1', student>];",
      "timetable :+ [<50, 12, friday, 9001000, 'R7'>];",
      "ANALYZE;",
      "timetable :- [<50, 12, friday>];",
      "employees :+ [<51, 'New2', professor>];",
      "ANALYZE employees;",
      "timetable :+ [<51, 11, friday, 9001000, 'R8'>];",
  };
  int64_t lo = 0;
  for (const char* mutation : mutations) {
    ASSERT_TRUE(session.ExecuteScript(mutation).ok()) << mutation;
    lo = (lo + 3) % 7;
    auto exec = prepared->Execute({{"lo", Value::MakeInt(lo)}});
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    auto fresh = session.Query(
        "[<e.ename> OF EACH e IN employees:"
        " (e.enr >= " +
        std::to_string(lo) +
        ") AND SOME t IN timetable (e.enr = t.tenr)]");
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(TupleStrings(exec->tuples), TupleStrings(fresh->tuples))
        << mutation << " lo=" << lo;
    // And an immediate re-execute hits the (now fresh) cache, still
    // agreeing.
    auto again = prepared->Execute({{"lo", Value::MakeInt(lo)}});
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again->plan_cache_hit);
    EXPECT_EQ(TupleStrings(again->tuples), TupleStrings(fresh->tuples));
  }
}

TEST(PlanCacheTest, SharedCollectionWalkPerAutoCandidate) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  Session session(db.get());
  session.options().level = OptLevel::kAuto;

  // A 3-input conjunction: the join-order DP needs structure estimates,
  // so each kAuto candidate walks the collection phase — the walk must be
  // shared with EstimatePlanCost (one walk per candidate, not two).
  const std::string src =
      "[<e.ename> OF EACH e IN employees:"
      " SOME t IN timetable SOME c IN courses"
      " ((e.enr = t.tenr) AND (t.tcnr = c.cnr) AND (c.clevel <= junior))]";
  CompileCounters before = GlobalCompileCounters();
  auto run = session.Query(src);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const CompileCounters& now = GlobalCompileCounters();
  uint64_t candidates = now.plans - before.plans;
  uint64_t walks = now.collection_walks - before.collection_walks;
  ASSERT_GT(candidates, 0u);
  EXPECT_LE(walks, candidates) << "each candidate should walk the "
                                  "collection phase at most once";

  // Sharing must not change the estimate: costing with a saved walk
  // equals costing from scratch, on a deterministic fixed-level plan.
  PlannerOptions fixed = session.options();
  fixed.level = OptLevel::kOneStep;
  fixed.cost_based = false;
  auto bound = session.Bind(src);
  ASSERT_TRUE(bound.ok());
  auto planned = PlanQuery(*db, std::move(bound).value(), fixed);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  CollectionCost saved;
  EstimateStructureSizes(planned->plan, *db, &saved);
  ASSERT_TRUE(saved.valid);
  CostEstimate with_reuse = EstimatePlanCost(planned->plan, *db, &saved);
  CostEstimate from_scratch = EstimatePlanCost(planned->plan, *db);
  EXPECT_EQ(with_reuse.weighted_cost, from_scratch.weighted_cost);
  EXPECT_EQ(with_reuse.predicted.TotalWork(),
            from_scratch.predicted.TotalWork());
}

TEST(PlanCacheTest, InterleavedWritesFromAnotherSessionInvalidate) {
  // Concurrent serving: session A's cached plan must go stale when
  // session B — a different session, write guard and all — mutates a
  // referenced relation between A's executes, and every re-execute must
  // see exactly the rows committed before its snapshot.
  auto db = MakeUniversityDb();
  SessionManager manager(db.get());
  auto a = manager.CreateSession();
  auto b = manager.CreateSession();

  auto prepared = a->Prepare(
      "[<e.ename> OF EACH e IN employees: e.enr >= $lo]");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto first = prepared->Execute({{"lo", Value::MakeInt(1)}});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(prepared->stats().plan_compiles, 1u);
  size_t baseline_rows = first->tuples.size();

  // B's committed write lands between A's executes: A must replan (its
  // stamps are stale) and the adopted-or-recompiled plan must produce
  // the new row.
  ASSERT_TRUE(
      b->ExecuteScript("employees :+ [<81, 'Ivy', professor>];").ok());
  auto second = prepared->Execute({{"lo", Value::MakeInt(1)}});
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->plan_cache_hit);
  EXPECT_EQ(second->tuples.size(), baseline_rows + 1);

  // Steady state resumes: no interleaved write, the replanned entry hits.
  auto third = prepared->Execute({{"lo", Value::MakeInt(1)}});
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->plan_cache_hit);
  EXPECT_EQ(TupleStrings(third->tuples), TupleStrings(second->tuples));

  // A delete from B invalidates again and shrinks the visible set.
  ASSERT_TRUE(b->ExecuteScript("employees :- [<81>];").ok());
  auto fourth = prepared->Execute({{"lo", Value::MakeInt(1)}});
  ASSERT_TRUE(fourth.ok());
  EXPECT_FALSE(fourth->plan_cache_hit);
  EXPECT_EQ(fourth->tuples.size(), baseline_rows);
}

}  // namespace
}  // namespace pascalr
