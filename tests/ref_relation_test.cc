#include "refstruct/ref_relation.h"

#include <gtest/gtest.h>

namespace pascalr {
namespace {

Ref R(RelationId rel, uint32_t slot) { return Ref{rel, slot, 1}; }

TEST(RefTest, EqualityOrderingHash) {
  Ref a{1, 2, 3}, b{1, 2, 3}, c{1, 3, 3}, d{2, 2, 3};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_LT(a, d);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_EQ(a.ToString(), "@1[2]");
}

TEST(RefRelationTest, FactoriesAndColumns) {
  RefRelation sl = RefRelation::SingleList("e");
  EXPECT_EQ(sl.arity(), 1u);
  EXPECT_EQ(sl.ColumnIndex("e"), 0);
  EXPECT_EQ(sl.ColumnIndex("x"), -1);

  RefRelation ij = RefRelation::IndirectJoin("c", "t");
  EXPECT_EQ(ij.arity(), 2u);
  EXPECT_EQ(ij.columns(), (std::vector<std::string>{"c", "t"}));
}

TEST(RefRelationTest, AddDeduplicates) {
  RefRelation ij = RefRelation::IndirectJoin("a", "b");
  EXPECT_TRUE(ij.Add({R(1, 0), R(2, 0)}));
  EXPECT_TRUE(ij.Add({R(1, 0), R(2, 1)}));
  EXPECT_FALSE(ij.Add({R(1, 0), R(2, 0)}));  // duplicate row
  EXPECT_EQ(ij.size(), 2u);
  EXPECT_EQ(ij.RefCount(), 4u);
}

TEST(RefRelationTest, Contains) {
  RefRelation sl = RefRelation::SingleList("e");
  sl.Add({R(1, 5)});
  EXPECT_TRUE(sl.Contains({R(1, 5)}));
  EXPECT_FALSE(sl.Contains({R(1, 6)}));
}

TEST(RefRelationTest, GenerationDistinguishesRows) {
  RefRelation sl = RefRelation::SingleList("e");
  EXPECT_TRUE(sl.Add({Ref{1, 0, 1}}));
  EXPECT_TRUE(sl.Add({Ref{1, 0, 2}}));  // same slot, newer generation
  EXPECT_EQ(sl.size(), 2u);
}

TEST(RefRelationTest, ZeroArityUnitRelation) {
  // The unit relation (one empty row) is the join identity used for
  // conjunctions whose structures were all absorbed.
  RefRelation unit{std::vector<std::string>{}};
  EXPECT_TRUE(unit.Add({}));
  EXPECT_FALSE(unit.Add({}));
  EXPECT_EQ(unit.size(), 1u);
}

TEST(RefRelationTest, ClearResets) {
  RefRelation sl = RefRelation::SingleList("e");
  sl.Add({R(1, 0)});
  sl.Clear();
  EXPECT_TRUE(sl.empty());
  EXPECT_TRUE(sl.Add({R(1, 0)}));  // re-add works after clear
}

TEST(RefRelationTest, ManyRowsWithCollidingHashes) {
  RefRelation sl = RefRelation::SingleList("e");
  for (uint32_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(sl.Add({R(1, i)}));
  }
  for (uint32_t i = 0; i < 1000; ++i) {
    EXPECT_FALSE(sl.Add({R(1, i)}));
  }
  EXPECT_EQ(sl.size(), 1000u);
}

TEST(RefRelationTest, DebugStringTruncates) {
  RefRelation sl = RefRelation::SingleList("e");
  for (uint32_t i = 0; i < 20; ++i) sl.Add({R(1, i)});
  std::string s = sl.DebugString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("20 rows"), std::string::npos);
}

}  // namespace
}  // namespace pascalr
