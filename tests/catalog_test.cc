#include "catalog/database.h"

#include <gtest/gtest.h>

namespace pascalr {
namespace {

Schema SimpleSchema() {
  return *Schema::Make({{"id", Type::Int()}, {"v", Type::Int()}}, {"id"});
}

TEST(DatabaseTest, CreateAndFindRelation) {
  Database db;
  auto rel = db.CreateRelation("r", SimpleSchema());
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(db.FindRelation("r"), *rel);
  EXPECT_EQ(db.FindRelation((*rel)->id()), *rel);
  EXPECT_EQ(db.FindRelation("missing"), nullptr);
  EXPECT_EQ(db.FindRelation(RelationId{99}), nullptr);
}

TEST(DatabaseTest, DuplicateRelationRejected) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("r", SimpleSchema()).ok());
  EXPECT_EQ(db.CreateRelation("r", SimpleSchema()).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, DropRelation) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("r", SimpleSchema()).ok());
  ASSERT_TRUE(db.DropRelation("r").ok());
  EXPECT_EQ(db.FindRelation("r"), nullptr);
  EXPECT_EQ(db.DropRelation("r").code(), StatusCode::kNotFound);
  // The name can be redeclared.
  ASSERT_TRUE(db.CreateRelation("r", SimpleSchema()).ok());
}

TEST(DatabaseTest, EnumRegistry) {
  Database db;
  ASSERT_TRUE(db.RegisterEnum(MakeEnum("color", {"red", "green"})).ok());
  EXPECT_EQ(db.RegisterEnum(MakeEnum("color", {"x"})).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db.RegisterEnum(MakeEnum("", {"x"})).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.RegisterEnum(MakeEnum("empty", {})).code(),
            StatusCode::kInvalidArgument);
  auto found = db.FindEnum("color");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->labels.size(), 2u);
  EXPECT_EQ(db.FindEnum("missing"), nullptr);
}

TEST(DatabaseTest, DerefRoutesToOwningRelation) {
  Database db;
  Relation* a = *db.CreateRelation("a", SimpleSchema());
  Relation* b = *db.CreateRelation("b", SimpleSchema());
  Ref ra = *a->Insert(Tuple{Value::MakeInt(1), Value::MakeInt(10)});
  Ref rb = *b->Insert(Tuple{Value::MakeInt(1), Value::MakeInt(20)});
  EXPECT_EQ((*db.Deref(ra))->at(1).AsInt(), 10);
  EXPECT_EQ((*db.Deref(rb))->at(1).AsInt(), 20);
  Ref bogus{RelationId{42}, 0, 1};
  EXPECT_EQ(db.Deref(bogus).status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, EnsureIndexBuildsAndReuses) {
  Database db;
  Relation* r = *db.CreateRelation("r", SimpleSchema());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        r->Insert(Tuple{Value::MakeInt(i), Value::MakeInt(i % 2)}).ok());
  }
  auto idx = db.EnsureIndex("r", "v", /*ordered=*/false);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ((*idx)->size(), 5u);
  // Fresh: same pointer returned, no rebuild.
  auto again = db.EnsureIndex("r", "v", /*ordered=*/false);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*idx, *again);
  EXPECT_EQ(db.FindFreshIndex("r", "v"), *idx);
}

TEST(DatabaseTest, IndexStalenessAfterMutation) {
  Database db;
  Relation* r = *db.CreateRelation("r", SimpleSchema());
  ASSERT_TRUE(r->Insert(Tuple{Value::MakeInt(1), Value::MakeInt(1)}).ok());
  ASSERT_TRUE(db.EnsureIndex("r", "v", false).ok());
  ASSERT_NE(db.FindFreshIndex("r", "v"), nullptr);

  ASSERT_TRUE(r->Insert(Tuple{Value::MakeInt(2), Value::MakeInt(2)}).ok());
  // Stale now: FindFreshIndex refuses, EnsureIndex rebuilds.
  EXPECT_EQ(db.FindFreshIndex("r", "v"), nullptr);
  auto rebuilt = db.EnsureIndex("r", "v", false);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ((*rebuilt)->size(), 2u);
}

TEST(DatabaseTest, OrderedIndexSupportsRangeProbes) {
  Database db;
  Relation* r = *db.CreateRelation("r", SimpleSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(r->Insert(Tuple{Value::MakeInt(i), Value::MakeInt(i)}).ok());
  }
  auto idx = db.EnsureIndex("r", "v", /*ordered=*/true);
  ASSERT_TRUE(idx.ok());
  size_t hits = 0;
  (*idx)->Probe(CompareOp::kLt, Value::MakeInt(4), [&](const Ref&) {
    ++hits;
    return true;
  });
  EXPECT_EQ(hits, 4u);
}

TEST(DatabaseTest, EnsureIndexErrors) {
  Database db;
  EXPECT_EQ(db.EnsureIndex("nope", "v", false).status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(db.CreateRelation("r", SimpleSchema()).ok());
  EXPECT_EQ(db.EnsureIndex("r", "nope", false).status().code(),
            StatusCode::kNotFound);
}

TEST(DatabaseTest, DropRelationDropsItsIndexes) {
  Database db;
  Relation* r = *db.CreateRelation("r", SimpleSchema());
  ASSERT_TRUE(r->Insert(Tuple{Value::MakeInt(1), Value::MakeInt(1)}).ok());
  ASSERT_TRUE(db.EnsureIndex("r", "v", false).ok());
  ASSERT_TRUE(db.DropRelation("r").ok());
  EXPECT_EQ(db.FindFreshIndex("r", "v"), nullptr);
}

TEST(DatabaseTest, RelationNamesSorted) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("zeta", SimpleSchema()).ok());
  ASSERT_TRUE(db.CreateRelation("alpha", SimpleSchema()).ok());
  EXPECT_EQ(db.RelationNames(),
            (std::vector<std::string>{"alpha", "zeta"}));
}

}  // namespace
}  // namespace pascalr
