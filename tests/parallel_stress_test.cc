// Morsel-driven parallel drains under concurrent-session writers. Run
// under ThreadSanitizer in CI (the sanitizers job): reader sessions
// execute SET PARALLEL 4 join queries — worker pools probing shared
// structures — while writer sessions commit DML against the same
// relations. The assertions prove the drains stay well-formed and that
// a quiesced database yields bit-identical parallel and serial results;
// TSan proves the worker pool honors the snapshot/epoch rules (workers
// only ever read their drain's Open-time state, never a torn write).

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "concurrency/session_manager.h"
#include "pascalr/session.h"
#include "test_util.h"

namespace pascalr {
namespace {

using testing_util::MakeUniversityDb;
using testing_util::TupleStrings;

constexpr int kWriters = 2;
constexpr int kStatementsPerWriter = 40;
constexpr int kReaders = 3;

// A two-structure chain plus an extension: compiles to the morsel
// drain's eligible shape (scan -> probe-join) under eager collection.
const char kParallelQuery[] =
    "[<e.ename, p.ptitle> OF EACH e IN employees, EACH p IN papers: "
    "(e.enr = p.penr) AND (SOME t IN timetable (e.enr = t.tenr))]";

TEST(ParallelStressTest, ParallelDrainsSurviveConcurrentWriters) {
  auto db = MakeUniversityDb();
  SessionManager manager(db.get());

  std::atomic<int> readers_ready{0};
  std::atomic<bool> writers_go{false};
  std::atomic<bool> writers_done{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      while (!writers_go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      auto session = manager.CreateSession();
      const int base = 2000 + w * 1000;
      for (int i = 0; i < kStatementsPerWriter; ++i) {
        std::string stmt;
        if (i % 3 == 2) {
          stmt = "employees :- [<" + std::to_string(base + i - 2) + ">];";
        } else {
          stmt = "employees :+ [<" + std::to_string(base + i) + ", 'S" +
                 std::to_string(w) + "x" + std::to_string(i) +
                 "', student>];";
        }
        Status status = session->ExecuteScript(stmt);
        ASSERT_TRUE(status.ok()) << stmt << ": " << status.ToString();
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      auto session = manager.CreateSession();
      ASSERT_TRUE(session->ExecuteScript("SET PARALLEL 4;").ok());
      auto observe = [&] {
        auto run = session->Query(kParallelQuery);
        ASSERT_TRUE(run.ok()) << run.status().ToString();
        // Structural sanity on every drain: the merge emits whole,
        // well-formed tuples (a torn read or mis-ordered merge would
        // surface as short/duplicated tuples long before TSan fires).
        for (const Tuple& t : run->tuples) {
          EXPECT_EQ(t.size(), 2u);
        }
      };
      observe();
      readers_ready.fetch_add(1, std::memory_order_acq_rel);
      while (!writers_done.load(std::memory_order_acquire)) {
        observe();
      }
      observe();
    });
  }

  while (readers_ready.load(std::memory_order_acquire) < kReaders) {
    std::this_thread::yield();
  }
  writers_go.store(true, std::memory_order_release);
  for (std::thread& t : writers) t.join();
  writers_done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  // Quiesced: a parallel drain and the serial chain must agree exactly.
  auto serial_session = manager.CreateSession();
  auto parallel_session = manager.CreateSession();
  ASSERT_TRUE(parallel_session->ExecuteScript("SET PARALLEL 4;").ok());
  auto serial = serial_session->Query(kParallelQuery);
  auto parallel = parallel_session->Query(kParallelQuery);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(parallel->tuples.size(), serial->tuples.size());
  for (size_t i = 0; i < serial->tuples.size(); ++i) {
    EXPECT_EQ(parallel->tuples[i].ToString(), serial->tuples[i].ToString())
        << "row " << i;
  }
}

}  // namespace
}  // namespace pascalr
