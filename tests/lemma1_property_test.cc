// Executable Lemma 1: the paper's four many-sorted transformation rules,
// plus a randomized equivalence check between many-sorted evaluation and
// one-sorted evaluation of the Schmidt conversion — over databases that
// include empty relations.

#include <gtest/gtest.h>

#include "calculus/printer.h"
#include "exec/naive.h"
#include "normalize/one_sorted.h"
#include "pascalr/dsl.h"
#include "semantics/binder.h"
#include "tests/query_gen.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using dsl::C;
using dsl::Eq;
using dsl::Lit;
using testing_util::MakeUniversityDb;
using testing_util::QueryGenerator;

/// Binds a hand-built selection; fails the test on error.
BoundQuery BindSelection(const Database& db, SelectionExpr sel) {
  Binder binder(&db);
  Result<BoundQuery> bound = binder.Bind(std::move(sel));
  EXPECT_TRUE(bound.ok()) << bound.status().ToString();
  return std::move(bound).value();
}

SelectionExpr Wrap(FormulaPtr wff) {
  return dsl::Select({{"e", "ename"}})
      .Each("e", "employees")
      .Where(std::move(wff))
      .Build();
}

// A = (e.estatus = professor)    -- does not mention rec
// B = (p.penr = e.enr)           -- mentions the quantified rec (p)
FormulaPtr A() { return Eq(C("e", "estatus"), dsl::Label("professor")); }
FormulaPtr B() { return Eq(C("p", "penr"), C("e", "enr")); }

class Lemma1Test : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    db_ = MakeUniversityDb();
    if (papers_empty()) db_->FindRelation("papers")->Clear();
  }
  bool papers_empty() const { return GetParam(); }

  std::set<std::string> Eval(FormulaPtr wff) {
    BoundQuery bound = BindSelection(*db_, Wrap(std::move(wff)));
    NaiveEvaluator naive(db_.get());
    Result<std::vector<Tuple>> result = naive.Evaluate(bound);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return testing_util::FirstStrings(*result);
  }

  std::unique_ptr<Database> db_;
};

TEST_P(Lemma1Test, Rule1_AndSome_HoldsAlways) {
  // A AND SOME rec IN rel (B) = SOME rec IN rel (A AND B), empty or not.
  auto lhs = Eval(A() && dsl::Some("p", "papers", B()));
  auto rhs = Eval(dsl::Some("p", "papers", A() && B()));
  EXPECT_EQ(lhs, rhs);
}

TEST_P(Lemma1Test, Rule2_OrSome_NeedsNonEmpty) {
  auto lhs = Eval(A() || dsl::Some("p", "papers", B()));
  auto rhs = Eval(dsl::Some("p", "papers", A() || B()));
  auto just_a = Eval(A());
  if (papers_empty()) {
    // Lemma 1: LHS equals A; the pushed-in form loses A.
    EXPECT_EQ(lhs, just_a);
    EXPECT_NE(lhs, rhs);
    EXPECT_TRUE(rhs.empty());
  } else {
    EXPECT_EQ(lhs, rhs);
  }
}

TEST_P(Lemma1Test, Rule3_AndAll_NeedsNonEmpty) {
  auto lhs = Eval(A() && dsl::All("p", "papers", B()));
  auto rhs = Eval(dsl::All("p", "papers", A() && B()));
  auto just_a = Eval(A());
  if (papers_empty()) {
    // Lemma 1: LHS equals A; the pushed-in form is vacuously true for all.
    EXPECT_EQ(lhs, just_a);
    std::set<std::string> everyone{"Alice", "Bob",  "Carol",
                                   "Dave",  "Erin", "Frank"};
    EXPECT_EQ(rhs, everyone);
  } else {
    EXPECT_EQ(lhs, rhs);
  }
}

TEST_P(Lemma1Test, Rule4_OrAll_HoldsAlways) {
  auto lhs = Eval(A() || dsl::All("p", "papers", B()));
  auto rhs = Eval(dsl::All("p", "papers", A() || B()));
  EXPECT_EQ(lhs, rhs);
}

INSTANTIATE_TEST_SUITE_P(EmptyAndNonEmpty, Lemma1Test,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& param_info) {
                           return param_info.param ? "PapersEmpty"
                                             : "PapersNonEmpty";
                         });

TEST(OneSortedEquivalenceTest, RandomFormulasAgreeWithManySorted) {
  // For each random database (possibly with empty relations) and each
  // random formula, the many-sorted naive evaluation and the one-sorted
  // evaluation of the Schmidt conversion must agree on every binding of
  // the free variable.
  for (uint64_t seed = 0; seed < 60; ++seed) {
    auto db = MakeUniversityDb(false);
    QueryGenerator gen(seed);
    gen.RandomDatabase(db.get(), /*empty_prob=*/0.25);
    SelectionExpr sel = gen.RandomSelection(/*max_depth=*/3);

    Binder binder(db.get());
    Result<BoundQuery> bound = binder.Bind(std::move(sel));
    ASSERT_TRUE(bound.ok()) << "seed " << seed << ": "
                            << bound.status().ToString();

    OneSortedPtr converted = ToOneSorted(*bound->selection.wff);
    NaiveEvaluator naive(db.get());

    const Relation* employees = db->FindRelation("employees");
    employees->Scan([&](const Ref& ref, const Tuple& tuple) {
      std::map<std::string, const Tuple*> ms_bindings{{"e", &tuple}};
      Result<bool> many =
          naive.EvalFormula(*bound->selection.wff, &ms_bindings);
      EXPECT_TRUE(many.ok()) << many.status().ToString();

      std::map<std::string, Ref> os_bindings{{"e", ref}};
      Result<bool> one = EvaluateOneSorted(*converted, *db, &os_bindings);
      EXPECT_TRUE(one.ok()) << one.status().ToString();
      if (many.ok() && one.ok()) {
        EXPECT_EQ(*many, *one)
            << "seed " << seed << " element " << tuple.ToString() << "\n"
            << FormatFormula(*bound->selection.wff);
      }
      return true;
    });
  }
}

TEST(OneSortedTest, ConversionShape) {
  // SOME rec IN rel (W) -> SOME rec ((rec IN rel) AND W').
  FormulaPtr f = dsl::Some("p", "papers", Eq(C("p", "penr"), Lit(int64_t{1})));
  OneSortedPtr converted = ToOneSorted(*f);
  EXPECT_EQ(converted->ToString(),
            "SOME p ((p IN papers) AND (p.penr = 1))");

  FormulaPtr g = dsl::All("p", "papers", Eq(C("p", "penr"), Lit(int64_t{1})));
  EXPECT_EQ(ToOneSorted(*g)->ToString(),
            "ALL p (NOT (p IN papers) OR (p.penr = 1))");
}

TEST(OneSortedTest, ExtendedRangeJoinsTheGuard) {
  FormulaPtr f = dsl::SomeIn("p", "papers",
                             Eq(C("p", "pyear"), Lit(int64_t{1977})),
                             Eq(C("p", "penr"), Lit(int64_t{1})));
  EXPECT_EQ(ToOneSorted(*f)->ToString(),
            "SOME p (((p IN papers) AND (p.pyear = 1977)) AND (p.penr = 1))");
}

}  // namespace
}  // namespace pascalr
