
#include "base/mutex.h"
class Cache {
 private:
  mutable Mutex mu_;
  int entries_ GUARDED_BY(mu_) = 0;
};
