
#include <atomic>
#include "base/mutex.h"
class Gate {
 private:
  mutable Mutex mu_;
  bool closed_ GUARDED_BY(mu_) = false;
  std::atomic<uint64_t> waits_{0};
  /// lint: unguarded(set once before concurrent use)
  int* sink_ = nullptr;
};

/// lint: thread-compatible(immutable once built)
struct GateSnapshot {
  uint64_t version = 0;
};
