
namespace spans {

inline constexpr char kQuery[] = "query";
inline constexpr char kParse[] = "parse";

inline constexpr const char* kAllSpanNames[] = {
    kQuery,
    kParse,
};

}  // namespace spans
