
void FillStatements(Relation* rel) {
  for (const auto& s : snapshots) {
    t.Append(V(s.counters.rows_read));
    // replans column forgotten: the telemetry surface lags the counters.
  }
}
