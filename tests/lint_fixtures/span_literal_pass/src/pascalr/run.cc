
#include "obs/span_names.h"
void Run() {
  QueryTraceGuard query_guard(spans::kQuery, "");
  TraceSpanGuard span(spans::kParse);
}
