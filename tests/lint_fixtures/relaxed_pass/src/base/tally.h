
#include <atomic>
inline void Bump(std::atomic<int>& a) {
  a.fetch_add(1, std::memory_order_relaxed);
}
