
namespace spans {

inline constexpr char kQuery[] = "query";
inline constexpr char kParse[] = "parse";
inline constexpr char kOrphan[] = "orphan";  // forgot to register below

inline constexpr const char* kAllSpanNames[] = {
    kQuery,
    kParse,
};

}  // namespace spans
