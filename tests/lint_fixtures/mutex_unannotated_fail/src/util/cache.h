
#include "base/mutex.h"
class Cache {
 private:
  mutable Mutex mu_;
  int entries_ = 0;
};
