
#include <mutex>
class Cache {
 private:
  mutable std::mutex mu_;
  int entries_ = 0;
};
