
#include "base/mutex.h"
class Gate {
 private:
  mutable Mutex mu_;
  bool closed_ GUARDED_BY(mu_) = false;
  int racy_count_ = 0;
};
