
#include "base/logging.h"
bool ScanIterator::Next(Row* out) {
  PASCALR_LOG_INFO << "row";
  return false;
}
