
#include "base/logging.h"
bool ScanIterator::Open() {
  PASCALR_LOG_WARNING << "slow open";
  return true;
}
bool ScanIterator::Next(Row* out) {
  PASCALR_LOG_FATAL << "invariant";
  return false;
}
