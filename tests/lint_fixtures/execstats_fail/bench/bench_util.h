
inline void ExportStats(benchmark::State& state, const ExecStats& stats,
                        size_t result_size) {
  state.counters["rows_read"] = static_cast<double>(stats.rows_read);
  state.counters["not_merged"] = static_cast<double>(stats.not_merged);
  state.counters["not_in_totalwork"] =
      static_cast<double>(stats.not_in_totalwork);
}
