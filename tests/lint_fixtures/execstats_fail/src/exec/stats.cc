
void ExecStats::Merge(const ExecStats& o) {
  rows_read += o.rows_read;
  not_exported += o.not_exported;
  not_in_totalwork += o.not_in_totalwork;
}
