
struct ExecStats {
  uint64_t rows_read = 0;        ///< fine everywhere
  uint64_t not_merged = 0;       ///< missing from Merge; out of TotalWork()
  uint64_t not_exported = 0;     ///< missing export column; out of TotalWork()
  uint64_t not_in_totalwork = 0; ///< undocumented and unsummed

  void Merge(const ExecStats& o);

  uint64_t TotalWork() const {
    return rows_read;
  }
};
