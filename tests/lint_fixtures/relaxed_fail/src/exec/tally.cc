
#include <atomic>
// a comment saying memory_order_relaxed must not fire the rule
void Bump(std::atomic<int>& a) {
  a.fetch_add(1, std::memory_order_relaxed);
}
