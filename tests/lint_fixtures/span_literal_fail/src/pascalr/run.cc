
void Run() {
  QueryTraceGuard query_guard("query", "");
  TraceSpanGuard span("parse");
  tracer->AddCompleteSpan("drain", "", 0, 1);
}
