
inline void ExportStats(benchmark::State& state, const ExecStats& stats,
                        size_t result_size) {
  state.counters["rows_read"] = static_cast<double>(stats.rows_read);
  state.counters["replans"] = static_cast<double>(stats.replans);
}
