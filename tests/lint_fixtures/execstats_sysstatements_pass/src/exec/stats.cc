
void ExecStats::Merge(const ExecStats& o) {
  rows_read += o.rows_read;
  replans += o.replans;
}
