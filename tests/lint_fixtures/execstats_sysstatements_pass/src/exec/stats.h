
struct ExecStats {
  uint64_t rows_read = 0;      ///< rows visited
  /// Event count, not work: stays out of TotalWork().
  uint64_t replans = 0;

  void Merge(const ExecStats& o);

  uint64_t TotalWork() const {
    return rows_read;
  }
};
