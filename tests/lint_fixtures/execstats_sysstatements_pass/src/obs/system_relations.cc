
void FillStatements(Relation* rel) {
  for (const auto& s : snapshots) {
    t.Append(V(s.counters.rows_read));
    t.Append(V(s.counters.replans));
  }
}
