// Vectorized batch-at-a-time execution and the morsel-driven parallel
// drain (src/pipeline/chunk.h, parallel.{h,cc}):
//
//  - NextBatch contract units (row bridge, scan morsel form, the
//    vectorized FilterIter reference shape, MorselParallelIter merge
//    order) over hand-built structures;
//  - a property sweep — collection policy x batch size x parallel
//    degree x optimization level on random queries — set-equal to the
//    naive evaluator oracle;
//  - the determinism contract: SET BATCH 1024 / PARALLEL 1 drains emit
//    the bit-identical tuple sequence AND work counters of the
//    row-at-a-time serial oracle (SET BATCH 1), and parallel > 1 keeps
//    the same sequence with only morsels_dispatched differing;
//  - the covered-leaf residual-predicate lowering (FilterIter
//    membership) and its EXPLAIN rendering;
//  - EXPLAIN ANALYZE batch attribution (batches= / rows/batch=).

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/cursor.h"
#include "exec/naive.h"
#include "obs/profile.h"
#include "opt/explain.h"
#include "opt/planner.h"
#include "pascalr/sample_db.h"
#include "pascalr/session.h"
#include "pipeline/chunk.h"
#include "pipeline/iterators.h"
#include "pipeline/parallel.h"
#include "tests/query_gen.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::MakeUniversityDb;
using testing_util::MustBind;
using testing_util::QueryGenerator;
using testing_util::TupleStrings;

Ref R(RelationId rel, uint32_t slot) { return Ref{rel, slot, 1}; }

// ------------------------------------------------------------ chunk units

TEST(ChunkTest, AppendRowFixesArityAndRoundTrips) {
  Chunk chunk;
  chunk.capacity = 4;
  chunk.AppendRow({R(1, 0), R(2, 0)});
  chunk.AppendRow({R(1, 1), R(2, 1)});
  EXPECT_EQ(chunk.arity(), 2u);
  EXPECT_EQ(chunk.rows, 2u);
  EXPECT_FALSE(chunk.full());
  RefRow row;
  chunk.RowAt(1, &row);
  EXPECT_EQ(row, (RefRow{R(1, 1), R(2, 1)}));
  chunk.AppendRow({R(1, 2), R(2, 2)});
  chunk.AppendRow({R(1, 3), R(2, 3)});
  EXPECT_TRUE(chunk.full());
}

TEST(ChunkTest, RowBridgeBatchesMatchRowPulls) {
  // The default NextBatch (RefIterator row bridge) must deliver exactly
  // the Next() row sequence, split at capacity boundaries, and signal
  // exhaustion only on an empty batch.
  RefRelation sl = RefRelation::SingleList("a");
  for (uint32_t i = 0; i < 10; ++i) sl.Add({R(1, i)});
  ScanIter scan(&sl);
  Chunk chunk;
  std::vector<RefRow> batched;
  size_t batches = 0;
  while (true) {
    chunk.capacity = 3;
    auto more = scan.NextBatch(&chunk);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ASSERT_GT(chunk.rows, 0u);
    ++batches;
    RefRow row;
    for (size_t r = 0; r < chunk.rows; ++r) {
      chunk.RowAt(r, &row);
      batched.push_back(row);
    }
  }
  EXPECT_EQ(batches, 4u);  // 3 + 3 + 3 + 1
  ASSERT_EQ(batched.size(), 10u);
  ScanIter rescan(&sl);
  RefRow row;
  for (size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(*rescan.Next(&row));
    EXPECT_EQ(row, batched[i]) << "row " << i;
  }
}

TEST(ScanIterTest, MorselFormScansExactlyTheRange) {
  RefRelation sl = RefRelation::SingleList("a");
  for (uint32_t i = 0; i < 20; ++i) sl.Add({R(1, i)});
  ScanIter morsel(&sl, 5, 12);
  RefRow row;
  std::vector<RefRow> rows;
  while (*morsel.Next(&row)) rows.push_back(row);
  ASSERT_EQ(rows.size(), 7u);
  EXPECT_EQ(rows.front(), (RefRow{R(1, 5)}));
  EXPECT_EQ(rows.back(), (RefRow{R(1, 11)}));
  // End past the relation clamps.
  ScanIter tail(&sl, 18, 1000);
  size_t n = 0;
  while (*tail.Next(&row)) ++n;
  EXPECT_EQ(n, 2u);
}

TEST(FilterIterTest, MembershipModeKeepsExactlyContainedRows) {
  // The vectorized reference filter: child rows whose key columns form a
  // row of `member` survive; comparisons count every input row, and
  // kept rows count as combination output (the semi probe-join totals).
  RefRelation stream = RefRelation::IndirectJoin("a", "b");
  for (uint32_t i = 0; i < 8; ++i) stream.Add({R(1, i), R(2, i)});
  RefRelation member = RefRelation::IndirectJoin("a", "b");
  member.Add({R(1, 2), R(2, 2)});
  member.Add({R(1, 5), R(2, 5)});
  member.Add({R(1, 7), R(2, 6)});  // wrong pair: must not match slot 7

  ExecStats stats;
  FilterIter filter(std::make_unique<ScanIter>(&stream), &member,
                    std::vector<int>{0, 1}, &stats);
  Chunk chunk;
  std::vector<RefRow> rows;
  while (true) {
    chunk.capacity = 4;
    auto more = filter.NextBatch(&chunk);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    RefRow row;
    for (size_t r = 0; r < chunk.rows; ++r) {
      chunk.RowAt(r, &row);
      rows.push_back(row);
    }
  }
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (RefRow{R(1, 2), R(2, 2)}));
  EXPECT_EQ(rows[1], (RefRow{R(1, 5), R(2, 5)}));
  EXPECT_EQ(stats.comparisons, 8u);
  EXPECT_EQ(stats.combination_rows, 2u);
}

// ------------------------------------------------- morsel merge ordering

TEST(MorselParallelIterTest, MergePreservesSerialScanOrder) {
  // A parallel drain over a bare scan must emit the structure's rows in
  // exactly slot order, regardless of which worker finished first.
  RefRelation sl = RefRelation::SingleList("a");
  constexpr uint32_t kRows = 5000;
  for (uint32_t i = 0; i < kRows; ++i) sl.Add({R(1, i)});
  ExecStats stats;
  ParallelChainSpec spec;
  spec.driving = &sl;
  spec.batch_size = 128;
  spec.workers = 4;
  MorselParallelIter par(std::move(spec), &stats);
  RefRow row;
  for (uint32_t i = 0; i < kRows; ++i) {
    auto more = par.Next(&row);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    ASSERT_TRUE(*more) << "exhausted early at " << i;
    ASSERT_EQ(row, (RefRow{R(1, i)})) << "row " << i;
  }
  EXPECT_FALSE(*par.Next(&row));
  EXPECT_GT(stats.morsels_dispatched, 1u);
}

TEST(MorselParallelIterTest, EarlyCloseStillMergesWorkerCounters) {
  RefRelation sl = RefRelation::SingleList("a");
  for (uint32_t i = 0; i < 4096; ++i) sl.Add({R(1, i)});
  ExecStats stats;
  {
    ParallelChainSpec spec;
    spec.driving = &sl;
    spec.batch_size = 64;
    spec.workers = 3;
    MorselParallelIter par(std::move(spec), &stats);
    RefRow row;
    ASSERT_TRUE(*par.Next(&row));  // pull once, then abandon the drain
  }
  EXPECT_GT(stats.morsels_dispatched, 0u);
}

// ------------------------------------------------------- property sweep

// Plans with `options` and drains through Cursor — the pipelined path,
// which is the only one that honors batch_size/parallel. (RunQuery uses
// the materializing evaluator and would bypass the vectorized code.)
std::vector<Tuple> MustRunWith(const Database& db, const BoundQuery& bound,
                               PlannerOptions options, ExecStats* stats) {
  Result<PlannedQuery> planned =
      PlanQuery(db, CloneBoundQuery(bound), options);
  EXPECT_TRUE(planned.ok()) << planned.status().ToString();
  if (!planned.ok()) return {};
  ExecStats sink;
  std::vector<Tuple> tuples;
  {
    Result<Cursor> cursor = Cursor::Open(
        std::make_shared<const QueryPlan>(std::move(planned->plan)), db,
        &sink);
    EXPECT_TRUE(cursor.ok()) << cursor.status().ToString();
    if (!cursor.ok()) return {};
    Tuple tuple;
    while (true) {
      Result<bool> more = cursor->Next(&tuple);
      EXPECT_TRUE(more.ok()) << more.status().ToString();
      if (!more.ok() || !*more) break;
      tuples.push_back(std::move(tuple));
    }
  }  // close flushes the run's stats into `sink`
  if (stats != nullptr) *stats = sink;
  return tuples;
}

TEST(VectorizedParallelPropertyTest, AllConfigurationsMatchNaiveOracle) {
  auto db = MakeUniversityDb();
  int checked = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    QueryGenerator gen(seed);
    SelectionExpr sel = gen.RandomSelection(3);
    Binder binder(db.get());
    Result<BoundQuery> bound = binder.Bind(sel.Clone());
    ASSERT_TRUE(bound.ok());
    NaiveEvaluator naive(db.get());
    Result<std::vector<Tuple>> expected = naive.Evaluate(*bound);
    ASSERT_TRUE(expected.ok());
    auto want = TupleStrings(*expected);
    for (int level = 0; level <= 4; ++level) {
      for (CollectionPolicy policy :
           {CollectionPolicy::kEager, CollectionPolicy::kLazy}) {
        for (size_t batch : {size_t{1}, size_t{3}, size_t{1024}}) {
          for (size_t parallel : {size_t{1}, size_t{3}}) {
            PlannerOptions options;
            options.level = static_cast<OptLevel>(level);
            options.collection = policy;
            options.batch_size = batch;
            options.parallel = parallel;
            std::vector<Tuple> got =
                MustRunWith(*db, *bound, options, nullptr);
            EXPECT_EQ(TupleStrings(got), want)
                << "seed=" << seed << " level=" << level
                << " policy=" << (policy == CollectionPolicy::kLazy)
                << " batch=" << batch << " parallel=" << parallel;
            ++checked;
          }
        }
      }
    }
  }
  EXPECT_GT(checked, 0);
}

// ------------------------------------------------- determinism contract

TEST(VectorizedParallelDeterminismTest, BatchedAndParallelDrainsAreBitIdentical) {
  auto db = MakeUniversityDb();
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    QueryGenerator gen(seed * 31);
    SelectionExpr sel = gen.RandomSelection(3);
    Binder binder(db.get());
    Result<BoundQuery> bound = binder.Bind(sel.Clone());
    ASSERT_TRUE(bound.ok());

    PlannerOptions oracle;
    oracle.batch_size = 1;  // exact row-at-a-time serial oracle
    ExecStats oracle_stats;
    std::vector<Tuple> oracle_rows =
        MustRunWith(*db, *bound, oracle, &oracle_stats);

    for (size_t parallel : {size_t{1}, size_t{4}}) {
      PlannerOptions options;
      options.batch_size = 1024;
      options.parallel = parallel;
      ExecStats stats;
      std::vector<Tuple> rows = MustRunWith(*db, *bound, options, &stats);

      // Bit-identical sequence: same tuples in the same order.
      ASSERT_EQ(rows.size(), oracle_rows.size()) << "seed=" << seed;
      for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].ToString(), oracle_rows[i].ToString())
            << "seed=" << seed << " parallel=" << parallel << " row " << i;
      }
      // Deterministic counters: everything except the two that describe
      // the drain shape rather than the work done — batches_emitted
      // (zero for a row-at-a-time drain, the chunk count otherwise) and
      // morsels_dispatched (zero serially, the morsel count in parallel).
      ExecStats normalized = stats;
      normalized.batches_emitted = 0;
      normalized.morsels_dispatched = 0;
      ExecStats oracle_normalized = oracle_stats;
      oracle_normalized.batches_emitted = 0;
      EXPECT_EQ(normalized.ToString(), oracle_normalized.ToString())
          << "seed=" << seed << " parallel=" << parallel;
      if (parallel == 1) {
        EXPECT_EQ(stats.morsels_dispatched, 0u);
      }
    }
  }
}

// --------------------------------------- covered-leaf residual predicate

// Two dyadic terms between the same variable pair plus a third input so
// the join-order DP attaches a tree: the second indirect join binds no
// new columns, so the eager lowering runs it as a FilterIter membership
// probe (and EXPLAIN says so). Level 1 keeps the two e/t terms as two
// separate structures (no mutual-restriction folding), and the DP needs
// fresh statistics over a skewed database to beat the greedy fallback.
const char kResidualQuery[] =
    "[<e.ename> OF EACH e IN employees: SOME t IN timetable "
    "(((e.enr = t.tenr) AND (e.enr <> t.tcnr)) AND "
    "SOME p IN papers (e.enr = p.penr))]";

TEST(ResidualFilterTest, CoveredLeafLowersToMembershipFilter) {
  auto db = MakeUniversityDb();
  UniversityScale scale;
  scale.employees = 60;
  scale.papers = 400;
  scale.courses = 30;
  scale.timetable = 800;
  scale.seed = 7;
  ASSERT_TRUE(PopulateSynthetic(db.get(), scale).ok());
  ASSERT_TRUE(db->AnalyzeAll().ok());
  BoundQuery bound = MustBind(*db, kResidualQuery);
  NaiveEvaluator naive(db.get());
  Result<std::vector<Tuple>> expected = naive.Evaluate(bound);
  ASSERT_TRUE(expected.ok());
  EXPECT_FALSE(expected->empty());

  PlannerOptions options;
  options.level = OptLevel::kParallel;
  Result<PlannedQuery> planned = PlanQuery(*db, CloneBoundQuery(bound), options);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  std::string text = ExplainPlan(*planned);
  EXPECT_NE(text.find("filter on ["), std::string::npos) << text;
  EXPECT_NE(text.find("(membership)"), std::string::npos) << text;
  EXPECT_NE(text.find("membership-probe"), std::string::npos) << text;

  // The pipelined drain matches the oracle, and the membership filter
  // counts a comparison per input row.
  ExecStats stats;
  std::vector<Tuple> got = MustRunWith(*db, bound, options, &stats);
  EXPECT_EQ(TupleStrings(got), TupleStrings(*expected));
  EXPECT_GT(stats.comparisons, 0u);

  // Lazy keeps the probe-join lowering (demand builds stay possible):
  // same rows either way.
  PlannerOptions lazy = options;
  lazy.collection = CollectionPolicy::kLazy;
  Result<PlannedQuery> lazy_planned =
      PlanQuery(*db, CloneBoundQuery(bound), lazy);
  ASSERT_TRUE(lazy_planned.ok());
  std::string lazy_text = ExplainPlan(*lazy_planned);
  EXPECT_EQ(lazy_text.find("(membership)"), std::string::npos) << lazy_text;
  std::vector<Tuple> lazy_got = MustRunWith(*db, bound, lazy, nullptr);
  EXPECT_EQ(TupleStrings(lazy_got), TupleStrings(*expected));
}

// --------------------------------------------------- session + profiling

TEST(SessionBatchParallelTest, SetBatchAndParallelAreValidatedAndApplied) {
  auto db = MakeUniversityDb();
  std::ostringstream out;
  Session session(db.get(), &out);
  ASSERT_TRUE(session.ExecuteScript("SET BATCH 64;").ok());
  ASSERT_TRUE(session.ExecuteScript("SET PARALLEL 4;").ok());
  EXPECT_FALSE(session.ExecuteScript("SET BATCH 0;").ok());
  EXPECT_FALSE(session.ExecuteScript("SET BATCH 65537;").ok());
  EXPECT_FALSE(session.ExecuteScript("SET PARALLEL 0;").ok());
  EXPECT_FALSE(session.ExecuteScript("SET PARALLEL 65;").ok());
  auto run = session.Query("[<e.ename> OF EACH e IN employees: e.enr >= 1]");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // EXPLAIN surfaces the knobs.
  ASSERT_TRUE(session
                  .ExecuteScript("EXPLAIN [<e.ename> OF EACH e IN employees: "
                                 "e.enr >= 1];")
                  .ok());
  std::string text = out.str();
  EXPECT_NE(text.find("vectorized: 64-row chunks"), std::string::npos) << text;
  EXPECT_NE(text.find("parallel drain: up to 4 workers"), std::string::npos)
      << text;
}

TEST(ExplainAnalyzeBatchTest, ProfiledDrainsReportBatchesWithoutDoubleCount) {
  auto db = MakeUniversityDb();
  std::ostringstream out;
  Session session(db.get(), &out);
  ASSERT_TRUE(session
                  .ExecuteScript(
                      "EXPLAIN ANALYZE [<e.ename, p.ptitle> OF EACH e IN "
                      "employees, EACH p IN papers: e.enr = p.penr];")
                  .ok());
  std::string text = out.str();
  // Batch pulls are attributed: the profiled operators report how many
  // chunks they emitted and the average fill.
  EXPECT_NE(text.find("batches="), std::string::npos) << text;
  EXPECT_NE(text.find("rows/batch="), std::string::npos) << text;
}

}  // namespace
}  // namespace pascalr
