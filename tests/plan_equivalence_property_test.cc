// The central correctness property: for random databases (including empty
// relations) and random queries (nested SOME/ALL, every comparison
// operator, monadic and dyadic terms), every optimization level O0..O4
// returns exactly the set the naive nested-loop oracle returns.

#include <gtest/gtest.h>

#include "calculus/printer.h"
#include "exec/naive.h"
#include "opt/planner.h"
#include "parser/parser.h"
#include "pascalr/session.h"
#include "tests/query_gen.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::MakeUniversityDb;
using testing_util::QueryGenerator;
using testing_util::TupleStrings;

class PlanEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanEquivalenceTest, RandomQueriesMatchOracleAtEveryLevel) {
  const int base_seed = GetParam();
  for (int i = 0; i < 12; ++i) {
    uint64_t seed = static_cast<uint64_t>(base_seed * 1000 + i);
    auto db = MakeUniversityDb(false);
    QueryGenerator gen(seed);
    gen.RandomDatabase(db.get(), /*empty_prob=*/0.2);
    SelectionExpr sel = gen.RandomSelection(/*max_depth=*/3);
    std::string rendered = FormatSelection(sel);

    Binder binder(db.get());
    Result<BoundQuery> bound = binder.Bind(std::move(sel));
    ASSERT_TRUE(bound.ok()) << "seed " << seed << ": "
                            << bound.status().ToString();

    NaiveEvaluator naive(db.get());
    Result<std::vector<Tuple>> oracle = naive.Evaluate(*bound);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    auto expected = TupleStrings(*oracle);

    for (int level = 0; level <= 4; ++level) {
      PlannerOptions options;
      options.level = static_cast<OptLevel>(level);
      Result<QueryRun> run =
          RunQuery(*db, CloneBoundQuery(*bound), options);
      ASSERT_TRUE(run.ok()) << "seed " << seed << " level " << level << ": "
                            << run.status().ToString() << "\n"
                            << rendered;
      EXPECT_EQ(TupleStrings(run->tuples), expected)
          << "seed " << seed << " level " << level << "\n"
          << rendered;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanEquivalenceTest,
                         ::testing::Range(0, 8));

class TwoFreeVarTest : public ::testing::TestWithParam<int> {};

TEST_P(TwoFreeVarTest, RandomQueriesMatchOracleAtEveryLevel) {
  const int base_seed = GetParam();
  for (int i = 0; i < 8; ++i) {
    uint64_t seed = static_cast<uint64_t>(7000 + base_seed * 100 + i);
    auto db = MakeUniversityDb(false);
    QueryGenerator gen(seed);
    gen.RandomDatabase(db.get(), /*empty_prob=*/0.15);
    SelectionExpr sel = gen.RandomSelectionTwoFree(/*max_depth=*/2);
    std::string rendered = FormatSelection(sel);

    Binder binder(db.get());
    Result<BoundQuery> bound = binder.Bind(std::move(sel));
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();

    NaiveEvaluator naive(db.get());
    Result<std::vector<Tuple>> oracle = naive.Evaluate(*bound);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    auto expected = TupleStrings(*oracle);

    for (int level = 0; level <= 4; ++level) {
      PlannerOptions options;
      options.level = static_cast<OptLevel>(level);
      Result<QueryRun> run = RunQuery(*db, CloneBoundQuery(*bound), options);
      ASSERT_TRUE(run.ok()) << "seed " << seed << " level " << level << ": "
                            << run.status().ToString() << "\n"
                            << rendered;
      EXPECT_EQ(TupleStrings(run->tuples), expected)
          << "seed " << seed << " level " << level << "\n"
          << rendered;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoFreeVarTest, ::testing::Range(0, 4));

TEST(PlanEquivalenceTest, PermanentIndexesPreserveResults) {
  for (uint64_t seed = 300; seed < 310; ++seed) {
    auto db = MakeUniversityDb(false);
    QueryGenerator gen(seed);
    gen.RandomDatabase(db.get(), /*empty_prob=*/0.1);
    // Register every plausible equality index up front.
    for (const auto& [rel, comp] :
         std::vector<std::pair<const char*, const char*>>{
             {"employees", "enr"},
             {"papers", "penr"},
             {"timetable", "tenr"},
             {"timetable", "tcnr"},
             {"courses", "cnr"}}) {
      ASSERT_TRUE(db->EnsureIndex(rel, comp, false).ok());
    }
    SelectionExpr sel = gen.RandomSelection(3);

    Binder binder(db.get());
    Result<BoundQuery> bound = binder.Bind(std::move(sel));
    ASSERT_TRUE(bound.ok());

    NaiveEvaluator naive(db.get());
    Result<std::vector<Tuple>> oracle = naive.Evaluate(*bound);
    ASSERT_TRUE(oracle.ok());
    auto expected = TupleStrings(*oracle);

    for (int level = 1; level <= 4; ++level) {
      PlannerOptions options;
      options.level = static_cast<OptLevel>(level);
      options.use_permanent_indexes = true;
      Result<QueryRun> run = RunQuery(*db, CloneBoundQuery(*bound), options);
      ASSERT_TRUE(run.ok()) << "seed " << seed << " level " << level;
      EXPECT_EQ(TupleStrings(run->tuples), expected)
          << "seed " << seed << " level " << level;
    }
  }
}

TEST(PlanEquivalenceTest, BothDivisionAlgorithmsAgree) {
  for (uint64_t seed = 100; seed < 112; ++seed) {
    auto db = MakeUniversityDb(false);
    QueryGenerator gen(seed);
    gen.RandomDatabase(db.get(), /*empty_prob=*/0.1);
    SelectionExpr sel = gen.RandomSelection(3);

    Binder binder(db.get());
    Result<BoundQuery> bound = binder.Bind(std::move(sel));
    ASSERT_TRUE(bound.ok());

    PlannerOptions hash_options;
    hash_options.level = OptLevel::kOneStep;  // keep ALL in combination
    hash_options.division = DivisionAlgorithm::kHash;
    PlannerOptions sort_options = hash_options;
    sort_options.division = DivisionAlgorithm::kSort;

    Result<QueryRun> h = RunQuery(*db, CloneBoundQuery(*bound), hash_options);
    Result<QueryRun> s = RunQuery(*db, CloneBoundQuery(*bound), sort_options);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    EXPECT_EQ(TupleStrings(h->tuples), TupleStrings(s->tuples))
        << "seed " << seed;
  }
}

TEST(PlanEquivalenceTest, DpJoinOrdersMatchGreedyResults) {
  // With fresh statistics the planner may attach DP join trees; the
  // result set must be identical to greedy execution (and the oracle)
  // for every level, across random databases and queries.
  for (uint64_t seed = 500; seed < 520; ++seed) {
    auto db = MakeUniversityDb(false);
    QueryGenerator gen(seed);
    gen.RandomDatabase(db.get(), /*empty_prob=*/0.1);
    ASSERT_TRUE(db->AnalyzeAll().ok());
    SelectionExpr sel = seed % 2 == 0
                            ? gen.RandomSelection(3)
                            : gen.RandomChainSelection(3 + seed % 3, 0.5);

    Binder binder(db.get());
    Result<BoundQuery> bound = binder.Bind(std::move(sel));
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();

    NaiveEvaluator naive(db.get());
    Result<std::vector<Tuple>> oracle = naive.Evaluate(*bound);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    auto expected = TupleStrings(*oracle);

    for (int level = 1; level <= 4; ++level) {
      for (bool dp : {true, false}) {
        PlannerOptions options;
        options.level = static_cast<OptLevel>(level);
        options.join_order_dp = dp;
        Result<QueryRun> run =
            RunQuery(*db, CloneBoundQuery(*bound), options);
        ASSERT_TRUE(run.ok()) << "seed " << seed << " level " << level
                              << (dp ? " dp" : " greedy") << ": "
                              << run.status().ToString();
        EXPECT_EQ(TupleStrings(run->tuples), expected)
            << "seed " << seed << " level " << level
            << (dp ? " dp" : " greedy");
      }
    }
  }
}

TEST(PlanEquivalenceTest, BushyDpJoinOrdersMatchGreedyResults) {
  for (uint64_t seed = 600; seed < 610; ++seed) {
    auto db = MakeUniversityDb(false);
    QueryGenerator gen(seed);
    gen.RandomDatabase(db.get(), /*empty_prob=*/0.05);
    ASSERT_TRUE(db->AnalyzeAll().ok());
    SelectionExpr sel = gen.RandomChainSelection(4, 0.5);

    Binder binder(db.get());
    Result<BoundQuery> bound = binder.Bind(std::move(sel));
    ASSERT_TRUE(bound.ok());

    NaiveEvaluator naive(db.get());
    Result<std::vector<Tuple>> oracle = naive.Evaluate(*bound);
    ASSERT_TRUE(oracle.ok());
    auto expected = TupleStrings(*oracle);

    PlannerOptions options;
    options.level = OptLevel::kOneStep;
    options.join_dp_bushy = true;
    Result<QueryRun> run = RunQuery(*db, CloneBoundQuery(*bound), options);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(TupleStrings(run->tuples), expected) << "seed " << seed;
  }
}

TEST(PlanEquivalenceTest, MutationsBetweenRunsAreObserved) {
  // Plans are built against live relations: a mutation between two runs
  // must be reflected (indexes are transient / rebuilt).
  auto db = MakeUniversityDb();
  const std::string query =
      "[<e.ename> OF EACH e IN employees: SOME t IN timetable "
      "((t.tenr = e.enr))]";
  for (int level = 0; level <= 4; ++level) {
    PlannerOptions options;
    options.level = static_cast<OptLevel>(level);

    Parser p1(query);
    auto sel1 = p1.ParseSelectionOnly();
    ASSERT_TRUE(sel1.ok());
    Binder b1(db.get());
    auto bound1 = b1.Bind(std::move(sel1).value());
    ASSERT_TRUE(bound1.ok());
    auto run1 = RunQuery(*db, std::move(*bound1), options);
    ASSERT_TRUE(run1.ok());
    size_t before = run1->tuples.size();

    // Add a timetable entry for Erin (enr 5) and re-run.
    Relation* timetable = db->FindRelation("timetable");
    ASSERT_TRUE(timetable
                    ->Insert(Tuple{Value::MakeInt(5), Value::MakeInt(10),
                                   Value::MakeEnum(4), Value::MakeInt(9005000),
                                   Value::MakeString("R9")})
                    .ok());

    Parser p2(query);
    auto sel2 = p2.ParseSelectionOnly();
    ASSERT_TRUE(sel2.ok());
    Binder b2(db.get());
    auto bound2 = b2.Bind(std::move(sel2).value());
    ASSERT_TRUE(bound2.ok());
    auto run2 = RunQuery(*db, std::move(*bound2), options);
    ASSERT_TRUE(run2.ok());
    EXPECT_EQ(run2->tuples.size(), before + 1) << "level " << level;

    ASSERT_TRUE(timetable
                    ->EraseByKey(Tuple{Value::MakeInt(5), Value::MakeInt(10),
                                       Value::MakeEnum(4)})
                    .ok());
  }
}

// The pipelined-combination acceptance property: sweeping pipeline on/off
// across every planner level, the streamed cursor (src/pipeline/) returns
// exactly the oracle's multiset — on random databases (including empty
// relations) and random queries. The pipelined side runs through the
// prepared-cursor path (the only streaming entry point); the materialized
// side through RunQuery.
class PipelineSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(PipelineSweepTest, PipelineOnOffMatchesOracleAtEveryLevel) {
  const int base_seed = GetParam();
  for (int i = 0; i < 10; ++i) {
    uint64_t seed = static_cast<uint64_t>(40000 + base_seed * 1000 + i);
    auto db = MakeUniversityDb(false);
    QueryGenerator gen(seed);
    gen.RandomDatabase(db.get(), /*empty_prob=*/0.2);
    SelectionExpr sel = gen.RandomSelection(/*max_depth=*/3);
    std::string rendered = FormatSelection(sel);

    Binder binder(db.get());
    Result<BoundQuery> bound = binder.Bind(sel.Clone());
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    NaiveEvaluator naive(db.get());
    Result<std::vector<Tuple>> oracle = naive.Evaluate(*bound);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    auto expected = TupleStrings(*oracle);

    for (int level = 0; level <= 4; ++level) {
      for (bool pipeline : {true, false}) {
        Session session(db.get());
        session.options().level = static_cast<OptLevel>(level);
        session.options().pipeline = pipeline;
        auto prepared = session.PrepareSelection(sel.Clone());
        ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
        auto exec = prepared->Execute();
        ASSERT_TRUE(exec.ok())
            << "seed " << seed << " level " << level << " pipeline "
            << pipeline << ": " << exec.status().ToString() << "\n"
            << rendered;
        EXPECT_EQ(TupleStrings(exec->tuples), expected)
            << "seed " << seed << " level " << level << " pipeline "
            << pipeline << "\n"
            << rendered;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSweepTest, ::testing::Range(0, 6));

// The demand-driven collection acceptance property: the lazy policy —
// structures materialising fully on demand, per join key, or streaming
// off the base relation — returns exactly the oracle's multiset across
// collection policy x pipeline on/off x every planner level, on random
// databases (including empty relations) and random queries. pipeline=off
// exercises the degradation path (the materializing combination forces a
// full build regardless of policy).
class LazyCollectionSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(LazyCollectionSweepTest, LazyMatchesOracleAtEveryLevelAndMode) {
  const int base_seed = GetParam();
  for (int i = 0; i < 8; ++i) {
    uint64_t seed = static_cast<uint64_t>(70000 + base_seed * 1000 + i);
    auto db = MakeUniversityDb(false);
    QueryGenerator gen(seed);
    gen.RandomDatabase(db.get(), /*empty_prob=*/0.2);
    SelectionExpr sel = gen.RandomSelection(/*max_depth=*/3);
    std::string rendered = FormatSelection(sel);

    Binder binder(db.get());
    Result<BoundQuery> bound = binder.Bind(sel.Clone());
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    NaiveEvaluator naive(db.get());
    Result<std::vector<Tuple>> oracle = naive.Evaluate(*bound);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    auto expected = TupleStrings(*oracle);

    for (int level = 0; level <= 4; ++level) {
      for (bool pipeline : {true, false}) {
        Session session(db.get());
        session.options().level = static_cast<OptLevel>(level);
        session.options().pipeline = pipeline;
        session.options().collection = CollectionPolicy::kLazy;
        auto prepared = session.PrepareSelection(sel.Clone());
        ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
        auto exec = prepared->Execute();
        ASSERT_TRUE(exec.ok())
            << "seed " << seed << " level " << level << " pipeline "
            << pipeline << " lazy: " << exec.status().ToString() << "\n"
            << rendered;
        EXPECT_EQ(TupleStrings(exec->tuples), expected)
            << "seed " << seed << " level " << level << " pipeline "
            << pipeline << " lazy\n"
            << rendered;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazyCollectionSweepTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace pascalr
