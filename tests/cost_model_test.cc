// The cost model: selectivity estimates, q-error accuracy of predicted
// ExecStats against measured ExecStats across every strategy level, and
// the cost annotations in explain output.

#include "cost/cost_model.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "cost/selectivity.h"
#include "normalize/standard_form.h"
#include "opt/explain.h"
#include "opt/planner.h"
#include "pascalr/sample_db.h"
#include "pascalr/session.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::MakeUniversityDb;
using testing_util::MustBind;

/// Estimates deemed accurate when max(est/actual, actual/est) stays below
/// this bound — comfortably inside what plan ranking needs.
constexpr double kQErrorBound = 1.5;

StandardForm FormOf(const Database& db, const std::string& source) {
  Result<StandardForm> sf = BuildStandardForm(MustBind(db, source));
  EXPECT_TRUE(sf.ok()) << sf.status().ToString();
  return std::move(sf).value();
}

double QError(double actual, double estimated) {
  double lo = std::max(1.0, std::min(actual, estimated));
  double hi = std::max(actual, estimated);
  return hi / lo;
}

TEST(SelectivityTest, DistinctAfterSelection) {
  EXPECT_NEAR(DistinctAfterSelection(10, 100, 100), 10.0, 1e-9);
  EXPECT_NEAR(DistinctAfterSelection(10, 100, 0), 0.0, 1e-9);
  // Keeping half the rows keeps almost every distinct value of a column
  // with many duplicates.
  double d = DistinctAfterSelection(10, 1000, 500);
  EXPECT_GT(d, 9.9);
  EXPECT_LE(d, 10.0);
}

TEST(SelectivityTest, MonadicUsesHistograms) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  StandardForm sf = FormOf(
      *db, "[<e.ename> OF EACH e IN employees: e.estatus = professor]");
  SelectivityEstimator est(*db, sf);
  ASSERT_EQ(sf.matrix.disjuncts.size(), 1u);
  ASSERT_EQ(sf.matrix.disjuncts[0].terms.size(), 1u);
  EXPECT_NEAR(est.Monadic(sf.matrix.disjuncts[0].terms[0]), 4.0 / 6.0, 1e-9);
}

TEST(SelectivityTest, DisjointStringDomainsGiveZeroJoinSelectivity) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  // Employee names (Alice..Frank) and room labels (R0..) never collide;
  // min/max bounds prove it without a histogram.
  StandardForm sf = FormOf(
      *db,
      "[<e.ename> OF EACH e IN employees: "
      "SOME t IN timetable (e.ename = t.troom)]");
  const JoinTerm* term = nullptr;
  for (const Conjunction& c : sf.matrix.disjuncts) {
    for (const JoinTerm& t : c.terms) {
      if (t.IsDyadic()) term = &t;
    }
  }
  ASSERT_NE(term, nullptr);
  SelectivityEstimator est(*db, sf);
  EXPECT_NEAR(est.DyadicPair(*term), 0.0, 1e-9);
}

TEST(SelectivityTest, EquiJoinUsesContainment) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  StandardForm sf = FormOf(
      *db,
      "[<e.ename> OF EACH e IN employees: "
      "SOME p IN papers (e.enr = p.penr)]");
  const JoinTerm* term = nullptr;
  for (const Conjunction& c : sf.matrix.disjuncts) {
    for (const JoinTerm& t : c.terms) {
      if (t.IsDyadic()) term = &t;
    }
  }
  ASSERT_NE(term, nullptr);
  SelectivityEstimator est(*db, sf);
  // 1/max(distinct(enr)=6, distinct(penr)=4).
  EXPECT_NEAR(est.DyadicPair(*term), 1.0 / 6.0, 1e-9);
}

TEST(SelectivityTest, ExtendedRangeSize) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  StandardForm sf = FormOf(*db, Example45QuerySource());
  SelectivityEstimator est(*db, sf);
  // Range of e: employees restricted to professors = 4 of 6.
  EXPECT_NEAR(est.RangeSize("e"), 4.0, 0.5);
}

void CheckQErrorAllLevels(const Database& db, const std::string& source,
                          const std::string& what) {
  for (int level = 0; level <= 4; ++level) {
    PlannerOptions options;
    options.level = static_cast<OptLevel>(level);
    Result<PlannedQuery> planned =
        PlanQuery(db, MustBind(db, source), options);
    ASSERT_TRUE(planned.ok()) << what << ": " << planned.status().ToString();
    CostEstimate estimate = EstimatePlanCost(planned->plan, db);

    Result<QueryRun> run = RunQuery(db, MustBind(db, source), options);
    ASSERT_TRUE(run.ok()) << what << ": " << run.status().ToString();

    double q = QError(static_cast<double>(run->stats.TotalWork()),
                      static_cast<double>(estimate.predicted.TotalWork()));
    EXPECT_LE(q, kQErrorBound)
        << what << " at level " << level << ": measured "
        << run->stats.TotalWork() << " vs estimated "
        << estimate.predicted.TotalWork() << "\n  measured:  "
        << run->stats.ToString() << "\n  estimated: "
        << estimate.predicted.ToString();
  }
}

TEST(CostModelTest, QErrorWithinBoundOnSmallSampleDb) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  CheckQErrorAllLevels(*db, Example21QuerySource(), "example 2.1");
  CheckQErrorAllLevels(*db, Example45QuerySource(), "example 4.5");
}

TEST(CostModelTest, QErrorWithinBoundOnSyntheticDb) {
  auto db = MakeUniversityDb(/*populate=*/false);
  UniversityScale scale;
  scale.employees = 16;
  scale.papers = 32;
  scale.courses = 9;
  scale.timetable = 48;
  ASSERT_TRUE(PopulateSynthetic(db.get(), scale).ok());
  ASSERT_TRUE(db->AnalyzeAll().ok());
  CheckQErrorAllLevels(*db, Example21QuerySource(), "example 2.1 synthetic");
  CheckQErrorAllLevels(*db, Example45QuerySource(), "example 4.5 synthetic");
}

TEST(CostModelTest, PredictsPermanentIndexReuse) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  // Whichever side the planner indexes, a fresh permanent index exists.
  ASSERT_TRUE(db->EnsureIndex("timetable", "tenr", /*ordered=*/false).ok());
  ASSERT_TRUE(db->EnsureIndex("employees", "enr", /*ordered=*/false).ok());
  PlannerOptions options;
  options.level = OptLevel::kOneStep;
  options.use_permanent_indexes = true;
  Result<PlannedQuery> planned = PlanQuery(
      *db,
      MustBind(*db,
               "[<e.ename> OF EACH e IN employees: "
               "SOME t IN timetable (e.enr = t.tenr)]"),
      options);
  ASSERT_TRUE(planned.ok());
  CostEstimate estimate = EstimatePlanCost(planned->plan, *db);
  EXPECT_GE(estimate.predicted.permanent_index_hits, 1u);
}

// ------------------------------------------------------------ explain

TEST(ExplainCostTest, AutoPlanPrintsCandidateTableAndEstimates) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  PlannerOptions options;
  options.level = OptLevel::kAuto;
  Result<PlannedQuery> planned =
      PlanQuery(*db, MustBind(*db, Example21QuerySource()), options);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  std::string text = ExplainPlan(*planned);
  EXPECT_NE(text.find("cost-based selection:"), std::string::npos);
  EXPECT_NE(text.find("estimated work"), std::string::npos);
  EXPECT_NE(text.find("chosen: O"), std::string::npos);
  // All five strategy levels were considered.
  for (int level = 0; level <= 4; ++level) {
    EXPECT_NE(text.find("O" + std::to_string(level) + "/"),
              std::string::npos)
        << "candidate table lacks level " << level << "\n" << text;
  }
}

TEST(ExplainCostTest, EstimatedVsActualCountersRender) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  PlannerOptions options;
  options.level = OptLevel::kAuto;
  Result<PlannedQuery> planned =
      PlanQuery(*db, MustBind(*db, Example21QuerySource()), options);
  ASSERT_TRUE(planned.ok());
  ExecStats stats;
  Result<ExecOutcome> outcome = ExecutePlan(planned->plan, *db, &stats);
  ASSERT_TRUE(outcome.ok());
  std::string text = ExplainEstimatedVsActual(*planned, stats);
  EXPECT_NE(text.find("estimated vs actual"), std::string::npos);
  for (const char* counter :
       {"elements_scanned", "index_probes", "single_list_refs",
        "indirect_join_refs", "combination_rows", "division_input_rows",
        "quantifier_probes", "comparisons", "dereferences", "total_work"}) {
    EXPECT_NE(text.find(counter), std::string::npos) << counter;
  }
}

TEST(ExplainCostTest, SessionExplainUnderAutoReportsActuals) {
  auto db = MakeUniversityDb();
  std::ostringstream out;
  Session session(db.get(), &out);
  ASSERT_TRUE(session
                  .ExecuteScript("ANALYZE;\nSET OPTLEVEL AUTO;\nEXPLAIN " +
                                 Example21QuerySource() + ";")
                  .ok());
  EXPECT_NE(out.str().find("cost-based selection:"), std::string::npos);
  EXPECT_NE(out.str().find("estimated vs actual"), std::string::npos);
  EXPECT_NE(out.str().find("total_work"), std::string::npos);
}

}  // namespace
}  // namespace pascalr
