// End-to-end reproduction of the paper's running example: Example 2.1 on
// the Figure 1 database, evaluated by the naive oracle and by every
// optimization level O0..O4 — all must agree, and the strategy claims
// (fewer relation reads, smaller intermediates) must hold on the counters.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "pascalr/pascalr.h"

namespace pascalr {
namespace {

std::set<std::string> NamesOf(const std::vector<Tuple>& tuples) {
  std::set<std::string> out;
  for (const Tuple& t : tuples) out.insert(t.at(0).AsString());
  return out;
}

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(CreateUniversitySchema(&db_).ok());
    ASSERT_TRUE(PopulateSmallExample(&db_).ok());
  }

  Result<QueryRun> RunAtLevel(const std::string& source, OptLevel level) {
    Session session(&db_);
    session.options().level = level;
    return session.Query(source);
  }

  Database db_;
};

TEST_F(IntegrationTest, Example21NaiveOracle) {
  Session session(&db_);
  Result<BoundQuery> bound = session.Bind(Example21QuerySource());
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  NaiveEvaluator naive(&db_);
  Result<std::vector<Tuple>> result = naive.Evaluate(*bound);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(NamesOf(*result),
            (std::set<std::string>{"Alice", "Bob", "Frank"}));
}

TEST_F(IntegrationTest, Example21AllLevelsAgree) {
  const std::set<std::string> expected{"Alice", "Bob", "Frank"};
  for (int level = 0; level <= 4; ++level) {
    Result<QueryRun> run =
        RunAtLevel(Example21QuerySource(), static_cast<OptLevel>(level));
    ASSERT_TRUE(run.ok()) << "level " << level << ": "
                          << run.status().ToString();
    EXPECT_EQ(NamesOf(run->tuples), expected) << "level " << level;
  }
}

TEST_F(IntegrationTest, Example45TransformedFormAgrees) {
  // The paper's hand-transformed Example 4.5 must return the same names.
  for (int level = 0; level <= 4; ++level) {
    Result<QueryRun> run =
        RunAtLevel(Example45QuerySource(), static_cast<OptLevel>(level));
    ASSERT_TRUE(run.ok()) << "level " << level << ": "
                          << run.status().ToString();
    EXPECT_EQ(NamesOf(run->tuples),
              (std::set<std::string>{"Alice", "Bob", "Frank"}))
        << "level " << level;
  }
}

TEST_F(IntegrationTest, Strategy1ReadsEachRelationOnce) {
  Result<QueryRun> naive = RunAtLevel(Example21QuerySource(), OptLevel::kNaive);
  Result<QueryRun> s1 = RunAtLevel(Example21QuerySource(), OptLevel::kParallel);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(s1.ok());
  // 4 relations -> exactly 4 scans under S1; strictly more in the naive plan.
  EXPECT_EQ(s1->stats.relations_read, 4u);
  EXPECT_GT(naive->stats.relations_read, s1->stats.relations_read);
}

TEST_F(IntegrationTest, Strategy4EliminatesAllQuantifiers) {
  Result<QueryRun> run =
      RunAtLevel(Example21QuerySource(), OptLevel::kQuantPush);
  ASSERT_TRUE(run.ok());
  // p, c, t all leave the combination phase (Example 4.7's cascade).
  EXPECT_EQ(run->planned.plan.eliminated_vars.size(), 3u);
  EXPECT_EQ(run->stats.division_input_rows, 0u);
}

TEST_F(IntegrationTest, HigherLevelsDoLessCombinationWork) {
  Result<QueryRun> o0 = RunAtLevel(Example21QuerySource(), OptLevel::kNaive);
  Result<QueryRun> o4 =
      RunAtLevel(Example21QuerySource(), OptLevel::kQuantPush);
  ASSERT_TRUE(o0.ok());
  ASSERT_TRUE(o4.ok());
  EXPECT_GT(o0->stats.combination_rows, o4->stats.combination_rows);
}

TEST_F(IntegrationTest, Example22EmptyPapersAdaptation) {
  // Example 2.2: with papers = [], the query must reduce to "all
  // professors" — prenexing alone would return the wrong answer.
  ASSERT_TRUE(db_.FindRelation("papers")->cardinality() > 0);
  db_.FindRelation("papers")->Clear();
  for (int level = 0; level <= 4; ++level) {
    Result<QueryRun> run =
        RunAtLevel(Example21QuerySource(), static_cast<OptLevel>(level));
    ASSERT_TRUE(run.ok()) << "level " << level << ": "
                          << run.status().ToString();
    EXPECT_EQ(NamesOf(run->tuples),
              (std::set<std::string>{"Alice", "Bob", "Carol", "Frank"}))
        << "level " << level;
    EXPECT_GE(run->stats.replans, 1u) << "level " << level;
  }
}

TEST_F(IntegrationTest, EmptyCoursesAdaptation) {
  // With courses = [], SOME c ... is false: only professors with no 1977
  // papers qualify.
  db_.FindRelation("courses")->Clear();
  db_.FindRelation("timetable")->Clear();
  for (int level = 0; level <= 4; ++level) {
    Result<QueryRun> run =
        RunAtLevel(Example21QuerySource(), static_cast<OptLevel>(level));
    ASSERT_TRUE(run.ok()) << "level " << level << ": "
                          << run.status().ToString();
    EXPECT_EQ(NamesOf(run->tuples), (std::set<std::string>{"Bob", "Frank"}))
        << "level " << level;
  }
}

TEST_F(IntegrationTest, SyntheticDataAllLevelsAgreeWithOracle) {
  // Kept small: the O0 baseline materialises full n-tuple products, whose
  // size is the *product* of the four cardinalities (that blow-up is the
  // paper's point; bench_pipeline quantifies it).
  UniversityScale scale;
  scale.employees = 12;
  scale.papers = 20;
  scale.courses = 8;
  scale.timetable = 25;
  scale.seed = 7;
  ASSERT_TRUE(PopulateSynthetic(&db_, scale).ok());

  Session session(&db_);
  Result<BoundQuery> bound = session.Bind(Example21QuerySource());
  ASSERT_TRUE(bound.ok());
  NaiveEvaluator naive(&db_);
  Result<std::vector<Tuple>> oracle = naive.Evaluate(*bound);
  ASSERT_TRUE(oracle.ok());
  const std::set<std::string> expected = NamesOf(*oracle);

  for (int level = 0; level <= 4; ++level) {
    Result<QueryRun> run =
        RunAtLevel(Example21QuerySource(), static_cast<OptLevel>(level));
    ASSERT_TRUE(run.ok()) << "level " << level << ": "
                          << run.status().ToString();
    EXPECT_EQ(NamesOf(run->tuples), expected) << "level " << level;
  }
}

}  // namespace
}  // namespace pascalr
