#include "refstruct/ops.h"

#include <gtest/gtest.h>

namespace pascalr {
namespace {

Ref R(RelationId rel, uint32_t slot) { return Ref{rel, slot, 1}; }

TEST(OpsTest, NaturalJoinOnSharedColumn) {
  RefRelation left = RefRelation::IndirectJoin("e", "t");
  left.Add({R(1, 0), R(4, 0)});
  left.Add({R(1, 1), R(4, 1)});
  RefRelation right = RefRelation::IndirectJoin("t", "c");
  right.Add({R(4, 0), R(3, 7)});
  right.Add({R(4, 0), R(3, 8)});
  right.Add({R(4, 2), R(3, 9)});

  ExecStats stats;
  RefRelation joined = NaturalJoin(left, right, &stats);
  EXPECT_EQ(joined.columns(), (std::vector<std::string>{"e", "t", "c"}));
  EXPECT_EQ(joined.size(), 2u);  // t=R(4,0) matches twice, t=R(4,1) none
  EXPECT_TRUE(joined.Contains({R(1, 0), R(4, 0), R(3, 7)}));
  EXPECT_TRUE(joined.Contains({R(1, 0), R(4, 0), R(3, 8)}));
  EXPECT_EQ(stats.combination_rows, 2u);
}

TEST(OpsTest, NaturalJoinOnTwoSharedColumns) {
  RefRelation left({"a", "b"});
  left.Add({R(1, 0), R(2, 0)});
  left.Add({R(1, 0), R(2, 1)});
  RefRelation right({"b", "a"});  // shared in both positions, swapped order
  right.Add({R(2, 0), R(1, 0)});
  ExecStats stats;
  RefRelation joined = NaturalJoin(left, right, &stats);
  EXPECT_EQ(joined.arity(), 2u);
  EXPECT_EQ(joined.size(), 1u);
  EXPECT_TRUE(joined.Contains({R(1, 0), R(2, 0)}));
}

TEST(OpsTest, NaturalJoinDegeneratesToProduct) {
  RefRelation a = RefRelation::SingleList("x");
  a.Add({R(1, 0)});
  a.Add({R(1, 1)});
  RefRelation b = RefRelation::SingleList("y");
  b.Add({R(2, 0)});
  b.Add({R(2, 1)});
  b.Add({R(2, 2)});
  ExecStats stats;
  RefRelation product = NaturalJoin(a, b, &stats);
  EXPECT_EQ(product.size(), 6u);
  EXPECT_EQ(product.columns(), (std::vector<std::string>{"x", "y"}));
}

TEST(OpsTest, NaturalJoinWithEmptyInput) {
  RefRelation a = RefRelation::SingleList("x");
  RefRelation b = RefRelation::SingleList("y");
  b.Add({R(2, 0)});
  ExecStats stats;
  EXPECT_TRUE(NaturalJoin(a, b, &stats).empty());
  EXPECT_TRUE(NaturalJoin(b, a, &stats).empty());
}

TEST(OpsTest, ProductWithRefs) {
  RefRelation a = RefRelation::SingleList("x");
  a.Add({R(1, 0)});
  ExecStats stats;
  RefRelation extended =
      ProductWithRefs(a, "y", {R(2, 0), R(2, 1)}, &stats);
  EXPECT_EQ(extended.columns(), (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(extended.size(), 2u);
  // Empty ref list annihilates.
  RefRelation none = ProductWithRefs(a, "z", {}, &stats);
  EXPECT_TRUE(none.empty());
}

TEST(OpsTest, UnionRealignsColumns) {
  RefRelation a({"x", "y"});
  a.Add({R(1, 0), R(2, 0)});
  RefRelation b({"y", "x"});
  b.Add({R(2, 0), R(1, 0)});  // same logical row, swapped layout
  b.Add({R(2, 9), R(1, 9)});
  ExecStats stats;
  auto u = UnionRows(a, b, &stats);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), 2u);  // the realigned duplicate collapses
  EXPECT_TRUE(u->Contains({R(1, 9), R(2, 9)}));
}

TEST(OpsTest, UnionErrors) {
  RefRelation a({"x", "y"});
  RefRelation arity({"x"});
  ExecStats stats;
  EXPECT_EQ(UnionRows(a, arity, &stats).status().code(),
            StatusCode::kInvalidArgument);
  RefRelation other({"x", "z"});
  EXPECT_EQ(UnionRows(a, other, &stats).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(OpsTest, ProjectDeduplicates) {
  RefRelation a({"x", "y"});
  a.Add({R(1, 0), R(2, 0)});
  a.Add({R(1, 0), R(2, 1)});
  a.Add({R(1, 1), R(2, 0)});
  ExecStats stats;
  auto p = Project(a, {"x"}, &stats);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 2u);  // x collapses to {0, 1}
}

TEST(OpsTest, ProjectReordersColumns) {
  RefRelation a({"x", "y"});
  a.Add({R(1, 0), R(2, 5)});
  ExecStats stats;
  auto p = Project(a, {"y", "x"}, &stats);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->columns(), (std::vector<std::string>{"y", "x"}));
  EXPECT_TRUE(p->Contains({R(2, 5), R(1, 0)}));
}

TEST(OpsTest, ProjectUnknownColumn) {
  RefRelation a({"x"});
  ExecStats stats;
  EXPECT_EQ(Project(a, {"zz"}, &stats).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pascalr
