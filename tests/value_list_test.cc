#include "refstruct/value_list.h"

#include <gtest/gtest.h>

namespace pascalr {
namespace {

Value V(int64_t x) { return Value::MakeInt(x); }

TEST(ValueListModeTest, ModeForMatchesPaperTable) {
  // Paper §4.4: < / <= keep only the max for SOME, the min for ALL;
  // mirrored for > / >=; = with ALL and <> with SOME keep at most one
  // value; the remaining combinations need the full list.
  EXPECT_EQ(ValueList::ModeFor(CompareOp::kLt, Quantifier::kSome),
            ValueList::Mode::kMaxOnly);
  EXPECT_EQ(ValueList::ModeFor(CompareOp::kLe, Quantifier::kSome),
            ValueList::Mode::kMaxOnly);
  EXPECT_EQ(ValueList::ModeFor(CompareOp::kLt, Quantifier::kAll),
            ValueList::Mode::kMinOnly);
  EXPECT_EQ(ValueList::ModeFor(CompareOp::kGt, Quantifier::kSome),
            ValueList::Mode::kMinOnly);
  EXPECT_EQ(ValueList::ModeFor(CompareOp::kGe, Quantifier::kAll),
            ValueList::Mode::kMaxOnly);
  EXPECT_EQ(ValueList::ModeFor(CompareOp::kEq, Quantifier::kAll),
            ValueList::Mode::kAtMostOne);
  EXPECT_EQ(ValueList::ModeFor(CompareOp::kNe, Quantifier::kSome),
            ValueList::Mode::kAtMostOne);
  EXPECT_EQ(ValueList::ModeFor(CompareOp::kEq, Quantifier::kSome),
            ValueList::Mode::kFull);
  EXPECT_EQ(ValueList::ModeFor(CompareOp::kNe, Quantifier::kAll),
            ValueList::Mode::kFull);
}

/// For every op, brute-force SOME/ALL truth over a list of ints.
bool BruteSome(const std::vector<int64_t>& list, CompareOp op, int64_t x) {
  for (int64_t w : list) {
    if (V(x).Satisfies(op, V(w))) return true;
  }
  return false;
}
bool BruteAll(const std::vector<int64_t>& list, CompareOp op, int64_t x) {
  for (int64_t w : list) {
    if (!V(x).Satisfies(op, V(w))) return false;
  }
  return true;
}

class ValueListOpTest : public ::testing::TestWithParam<CompareOp> {};

TEST_P(ValueListOpTest, SomeMatchesBruteForceInSufficientMode) {
  CompareOp op = GetParam();
  const std::vector<int64_t> lists[] = {
      {}, {5}, {1, 9}, {3, 3, 3}, {2, 4, 6, 8}};
  for (const auto& list : lists) {
    ValueList vl(ValueList::ModeFor(op, Quantifier::kSome));
    for (int64_t w : list) vl.Add(V(w));
    for (int64_t x = 0; x <= 10; ++x) {
      Result<bool> got = vl.SatisfiesSome(op, V(x));
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, BruteSome(list, op, x))
          << "op=" << CompareOpToString(op) << " x=" << x;
    }
  }
}

TEST_P(ValueListOpTest, AllMatchesBruteForceInSufficientMode) {
  CompareOp op = GetParam();
  const std::vector<int64_t> lists[] = {
      {}, {5}, {1, 9}, {3, 3, 3}, {2, 4, 6, 8}};
  for (const auto& list : lists) {
    ValueList vl(ValueList::ModeFor(op, Quantifier::kAll));
    for (int64_t w : list) vl.Add(V(w));
    for (int64_t x = 0; x <= 10; ++x) {
      Result<bool> got = vl.SatisfiesAll(op, V(x));
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, BruteAll(list, op, x))
          << "op=" << CompareOpToString(op) << " x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, ValueListOpTest,
                         ::testing::Values(CompareOp::kEq, CompareOp::kNe,
                                           CompareOp::kLt, CompareOp::kLe,
                                           CompareOp::kGt, CompareOp::kGe));

TEST(ValueListTest, SummaryModesStoreO1Values) {
  ValueList max_only(ValueList::Mode::kMaxOnly);
  for (int i = 0; i < 100; ++i) max_only.Add(V(i));
  EXPECT_EQ(max_only.stored_values(), 1u);
  EXPECT_EQ(max_only.count(), 100u);

  ValueList at_most_one(ValueList::Mode::kAtMostOne);
  for (int i = 0; i < 100; ++i) at_most_one.Add(V(i % 2));
  EXPECT_EQ(at_most_one.stored_values(), 2u);  // value + overflow marker

  ValueList full(ValueList::Mode::kFull);
  for (int i = 0; i < 100; ++i) full.Add(V(i));
  EXPECT_EQ(full.stored_values(), 100u);
}

TEST(ValueListTest, InsufficientModeIsAnInternalError) {
  ValueList min_only(ValueList::Mode::kMinOnly);
  min_only.Add(V(1));
  // kMinOnly cannot answer "exists w: x < w" (needs the max).
  Result<bool> bad = min_only.SatisfiesSome(CompareOp::kLt, V(0));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInternal);
  // kEq with SOME needs the full set.
  Result<bool> eq = min_only.SatisfiesSome(CompareOp::kEq, V(1));
  EXPECT_FALSE(eq.ok());
}

TEST(ValueListTest, EmptyListSemantics) {
  ValueList vl(ValueList::Mode::kFull);
  EXPECT_TRUE(vl.empty());
  // SOME over empty = false, ALL over empty = true for every operator.
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    EXPECT_FALSE(*vl.SatisfiesSome(op, V(3)));
    EXPECT_TRUE(*vl.SatisfiesAll(op, V(3)));
  }
}

TEST(ValueListTest, AtMostOneSemantics) {
  // = with ALL: true iff exactly one distinct value equal to x.
  ValueList single(ValueList::Mode::kAtMostOne);
  single.Add(V(7));
  single.Add(V(7));
  EXPECT_TRUE(*single.SatisfiesAll(CompareOp::kEq, V(7)));
  EXPECT_FALSE(*single.SatisfiesAll(CompareOp::kEq, V(8)));

  ValueList many(ValueList::Mode::kAtMostOne);
  many.Add(V(7));
  many.Add(V(8));
  // Two distinct values: ALL-equal is false for every x...
  EXPECT_FALSE(*many.SatisfiesAll(CompareOp::kEq, V(7)));
  // ...and SOME-different is true for every x.
  EXPECT_TRUE(*many.SatisfiesSome(CompareOp::kNe, V(7)));
}

TEST(ValueListTest, StringValues) {
  ValueList vl(ValueList::Mode::kFull);
  vl.Add(Value::MakeString("b"));
  vl.Add(Value::MakeString("d"));
  EXPECT_TRUE(*vl.SatisfiesSome(CompareOp::kLt, Value::MakeString("c")));
  EXPECT_FALSE(*vl.SatisfiesAll(CompareOp::kLt, Value::MakeString("c")));
  EXPECT_TRUE(*vl.SatisfiesAll(CompareOp::kLe, Value::MakeString("a")));
}

TEST(ValueListTest, DebugString) {
  ValueList vl(ValueList::Mode::kMaxOnly);
  vl.Add(V(1));
  std::string s = vl.DebugString();
  EXPECT_NE(s.find("mode=max"), std::string::npos);
  EXPECT_NE(s.find("added=1"), std::string::npos);
}

}  // namespace
}  // namespace pascalr
