// MUST NOT COMPILE under -Werror=thread-safety: acquires a capability
// and returns without releasing it on one path — the classic early-return
// leak the RAII guards exist to prevent.
#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace {

class Gate {
 public:
  bool Enter(bool fast) {
    mu_.Lock();
    if (fast) return true;  // leaks mu_: thread-safety error
    open_ = true;
    mu_.Unlock();
    return false;
  }

 private:
  pascalr::Mutex mu_;
  bool open_ GUARDED_BY(mu_) = false;
};

}  // namespace

int main() {
  Gate gate;
  return gate.Enter(false) ? 1 : 0;
}
