// Correctly disciplined code must pass the analysis: every access to a
// GUARDED_BY member happens under its lock, via the annotated wrappers.
#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    pascalr::MutexLock lock(mu_);
    balance_ += amount;
  }
  int balance() const {
    pascalr::MutexLock lock(mu_);
    return balance_;
  }
  void Drain() {
    mu_.Lock();
    balance_ = 0;
    mu_.Unlock();
  }

 private:
  mutable pascalr::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

class Ledger {
 public:
  void Append(int entry) {
    pascalr::WriterMutexLock lock(mu_);
    entries_[count_++ % 8] = entry;
  }
  int Read(int i) const {
    pascalr::ReaderMutexLock lock(mu_);
    return entries_[i % 8];
  }

 private:
  mutable pascalr::SharedMutex mu_;
  int entries_[8] GUARDED_BY(mu_) = {};
  int count_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  account.Drain();
  Ledger ledger;
  ledger.Append(account.balance());
  return ledger.Read(0);
}
