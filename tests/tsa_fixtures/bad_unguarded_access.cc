// MUST NOT COMPILE under -Werror=thread-safety: reads and writes a
// GUARDED_BY member without holding its mutex. If this fixture ever
// compiles, the analysis gate is off (macro misconfiguration, missing
// flags) and the CI job must fail.
#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    balance_ += amount;  // no lock held: thread-safety error
  }
  int balance() const { return balance_; }  // ditto

 private:
  mutable pascalr::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return account.balance();
}
