// MUST NOT COMPILE under -Werror=thread-safety: calls a REQUIRES(mu)
// function without holding mu — dropping a lock acquisition at a call
// site is a build error.
#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace {

class Registry {
 public:
  void Bump() { CountLocked(); }  // missing MutexLock: error

 private:
  void CountLocked() REQUIRES(mu_) { ++count_; }

  pascalr::Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Registry registry;
  registry.Bump();
  return 0;
}
