// Random query and database generation over the Figure 1 schema, used by
// the property suites (Lemma 1 equivalence, plan equivalence).
//
// Generated selections always project <e.ename> from a free variable e
// over employees; the wff is a random formula over e plus randomly
// quantified variables, built from type-compatible join terms.

#ifndef PASCALR_TESTS_QUERY_GEN_H_
#define PASCALR_TESTS_QUERY_GEN_H_

#include <random>
#include <string>
#include <vector>

#include "calculus/ast.h"
#include "catalog/database.h"
#include "pascalr/sample_db.h"

namespace pascalr {
namespace testing_util {

/// Kind tags used to pair comparable components across relations.
enum class CompTag { kSmallInt, kYear, kString, kStatus, kLevel, kDay };

struct CompInfo {
  const char* relation;
  const char* component;
  CompTag tag;
};

inline const std::vector<CompInfo>& AllComponents() {
  static const std::vector<CompInfo> kComponents = {
      {"employees", "enr", CompTag::kSmallInt},
      {"employees", "ename", CompTag::kString},
      {"employees", "estatus", CompTag::kStatus},
      {"papers", "penr", CompTag::kSmallInt},
      {"papers", "pyear", CompTag::kYear},
      {"papers", "ptitle", CompTag::kString},
      {"courses", "cnr", CompTag::kSmallInt},
      {"courses", "clevel", CompTag::kLevel},
      {"courses", "ctitle", CompTag::kString},
      {"timetable", "tenr", CompTag::kSmallInt},
      {"timetable", "tcnr", CompTag::kSmallInt},
      {"timetable", "tday", CompTag::kDay},
      {"timetable", "troom", CompTag::kString},
  };
  return kComponents;
}

struct GenVar {
  std::string name;
  std::string relation;
};

class QueryGenerator {
 public:
  explicit QueryGenerator(uint64_t seed) : rng_(seed) {}

  /// Selection `[<e.ename> OF EACH e IN employees: random-wff]`.
  SelectionExpr RandomSelection(int max_depth = 4) {
    SelectionExpr sel;
    OutputComponent oc;
    oc.var = "e";
    oc.component = "ename";
    sel.projection.push_back(oc);
    sel.free_vars.emplace_back("e", RangeExpr("employees"));
    scope_ = {{"e", "employees"}};
    quant_counter_ = 0;
    sel.wff = RandomFormula(max_depth);
    return sel;
  }

  /// Two free variables over different relations with a two-component
  /// projection — exercises the combination phase's multi-free handling.
  SelectionExpr RandomSelectionTwoFree(int max_depth = 3) {
    SelectionExpr sel;
    OutputComponent oc1;
    oc1.var = "e";
    oc1.component = "ename";
    sel.projection.push_back(oc1);
    OutputComponent oc2;
    oc2.var = "g";
    oc2.component = "ctitle";
    sel.projection.push_back(oc2);
    sel.free_vars.emplace_back("e", RangeExpr("employees"));
    sel.free_vars.emplace_back("g", RangeExpr("courses"));
    scope_ = {{"e", "employees"}, {"g", "courses"}};
    quant_counter_ = 0;
    sel.wff = RandomFormula(max_depth);
    return sel;
  }

  /// Conjunctive multi-join query: free variable e over employees plus
  /// `joins` SOME-quantified variables, each tied by an equality join term
  /// to a randomly chosen earlier variable (a random chain/star over the
  /// schema's comparable integer components), plus occasional monadic
  /// filters. At strategy levels >= 1 the single conjunction compiles to
  /// one multi-input combination join — the join-order optimizer's
  /// workload.
  SelectionExpr RandomChainSelection(size_t joins, double filter_prob = 0.5) {
    SelectionExpr sel;
    OutputComponent oc;
    oc.var = "e";
    oc.component = "ename";
    sel.projection.push_back(oc);
    sel.free_vars.emplace_back("e", RangeExpr("employees"));
    scope_ = {{"e", "employees"}};
    quant_counter_ = 0;

    static const char* kRelations[] = {"employees", "papers", "courses",
                                       "timetable"};
    std::vector<FormulaPtr> terms;
    for (size_t i = 0; i < joins; ++i) {
      std::string relation = kRelations[rng_() % 4];
      std::string name = "j" + std::to_string(quant_counter_++);
      const GenVar& partner = scope_[rng_() % scope_.size()];
      const CompInfo& lhs = RandomSmallIntComponentOf(relation);
      const CompInfo& rhs = RandomSmallIntComponentOf(partner.relation);
      terms.push_back(Formula::Compare(
          Operand::Component(name, lhs.component), CompareOp::kEq,
          Operand::Component(partner.name, rhs.component)));
      if (Coin(filter_prob)) {
        const CompInfo& f = RandomComponentOf(relation);
        terms.push_back(Formula::Compare(
            Operand::Component(name, f.component), RandomOp(),
            LiteralFor(f.tag)));
      }
      scope_.push_back({name, relation});
    }
    FormulaPtr body = std::move(terms.back());
    terms.pop_back();
    while (!terms.empty()) {
      body = Formula::And(std::move(terms.back()), std::move(body));
      terms.pop_back();
    }
    // Quantifiers wrap innermost-last: SOME j0 (SOME j1 (... body)).
    for (size_t i = scope_.size(); i-- > 1;) {
      body = Formula::Quant(Quantifier::kSome, scope_[i].name,
                            RangeExpr(scope_[i].relation), std::move(body));
    }
    scope_.resize(1);
    sel.wff = std::move(body);
    return sel;
  }

  /// Fills the four relations with random small contents; each relation is
  /// empty with probability `empty_prob` (exercising Lemma 1 paths).
  void RandomDatabase(Database* db, double empty_prob = 0.2) {
    FillEmployees(db, MaybeEmpty(6, empty_prob));
    FillPapers(db, MaybeEmpty(6, empty_prob));
    FillCourses(db, MaybeEmpty(5, empty_prob));
    FillTimetable(db, MaybeEmpty(8, empty_prob));
  }

  std::mt19937_64& rng() { return rng_; }

 private:
  size_t MaybeEmpty(size_t max, double empty_prob) {
    if (Coin(empty_prob)) return 0;
    return 1 + rng_() % max;
  }

  bool Coin(double p) {
    return std::uniform_real_distribution<double>(0, 1)(rng_) < p;
  }

  const CompInfo& RandomComponentOf(const std::string& relation) {
    std::vector<const CompInfo*> pool;
    for (const CompInfo& c : AllComponents()) {
      if (relation == c.relation) pool.push_back(&c);
    }
    return *pool[rng_() % pool.size()];
  }

  const CompInfo& RandomSmallIntComponentOf(const std::string& relation) {
    std::vector<const CompInfo*> pool;
    for (const CompInfo& c : AllComponents()) {
      if (relation == c.relation && c.tag == CompTag::kSmallInt) {
        pool.push_back(&c);
      }
    }
    return *pool[rng_() % pool.size()];
  }

  CompareOp RandomOp() {
    static const CompareOp kOps[] = {CompareOp::kEq, CompareOp::kNe,
                                     CompareOp::kLt, CompareOp::kLe,
                                     CompareOp::kGt, CompareOp::kGe};
    return kOps[rng_() % 6];
  }

  Operand LiteralFor(CompTag tag) {
    switch (tag) {
      case CompTag::kSmallInt: {
        Operand o = Operand::Literal(Value::MakeInt(1 + rng_() % 5));
        o.type = Type::Int();
        return o;
      }
      case CompTag::kYear: {
        Operand o =
            Operand::Literal(Value::MakeInt(1975 + rng_() % 5));
        o.type = Type::Int();
        return o;
      }
      case CompTag::kString: {
        static const char* kStrings[] = {"A", "B", "C"};
        Operand o =
            Operand::Literal(Value::MakeString(kStrings[rng_() % 3]));
        o.type = Type::String();
        return o;
      }
      case CompTag::kStatus: {
        static const char* kLabels[] = {"student", "technician", "assistant",
                                        "professor"};
        Operand o;
        o.kind = Operand::Kind::kLiteral;
        o.enum_label = kLabels[rng_() % 4];
        o.literal = Value::MakeEnum(-1);
        return o;
      }
      case CompTag::kLevel: {
        static const char* kLabels[] = {"freshman", "sophomore", "junior",
                                        "senior"};
        Operand o;
        o.kind = Operand::Kind::kLiteral;
        o.enum_label = kLabels[rng_() % 4];
        o.literal = Value::MakeEnum(-1);
        return o;
      }
      case CompTag::kDay: {
        static const char* kLabels[] = {"monday", "tuesday", "wednesday"};
        Operand o;
        o.kind = Operand::Kind::kLiteral;
        o.enum_label = kLabels[rng_() % 3];
        o.literal = Value::MakeEnum(-1);
        return o;
      }
    }
    Operand o = Operand::Literal(Value::MakeInt(0));
    return o;
  }

  FormulaPtr RandomAtom() {
    // Pick a variable in scope and one of its components.
    const GenVar& var = scope_[rng_() % scope_.size()];
    const CompInfo& lhs_comp = RandomComponentOf(var.relation);
    Operand lhs = Operand::Component(var.name, lhs_comp.component);
    // Dyadic against a compatible component of another in-scope variable?
    if (Coin(0.5)) {
      std::vector<std::pair<const GenVar*, const CompInfo*>> partners;
      for (const GenVar& other : scope_) {
        for (const CompInfo& c : AllComponents()) {
          if (other.relation == c.relation && c.tag == lhs_comp.tag &&
              !(other.name == var.name &&
                std::string(c.component) == lhs_comp.component)) {
            partners.push_back({&other, &c});
          }
        }
      }
      if (!partners.empty()) {
        auto [other, comp] = partners[rng_() % partners.size()];
        return Formula::Compare(
            std::move(lhs), RandomOp(),
            Operand::Component(other->name, comp->component));
      }
    }
    return Formula::Compare(std::move(lhs), RandomOp(),
                            LiteralFor(lhs_comp.tag));
  }

  FormulaPtr RandomFormula(int depth) {
    if (depth <= 0 || Coin(0.35)) return RandomAtom();
    switch (rng_() % 5) {
      case 0:
        return Formula::And(RandomFormula(depth - 1),
                            RandomFormula(depth - 1));
      case 1:
        return Formula::Or(RandomFormula(depth - 1), RandomFormula(depth - 1));
      case 2:
        return Formula::Not(RandomFormula(depth - 1));
      default: {
        static const char* kRelations[] = {"employees", "papers", "courses",
                                           "timetable"};
        std::string relation = kRelations[rng_() % 4];
        std::string name = "q" + std::to_string(quant_counter_++);
        Quantifier q = Coin(0.5) ? Quantifier::kSome : Quantifier::kAll;
        scope_.push_back({name, relation});
        FormulaPtr body = RandomFormula(depth - 1);
        scope_.pop_back();
        return Formula::Quant(q, name, RangeExpr(relation), std::move(body));
      }
    }
  }

  void FillEmployees(Database* db, size_t n) {
    Relation* rel = db->FindRelation("employees");
    rel->Clear();
    for (size_t i = 1; i <= n; ++i) {
      (void)rel->Insert(Tuple{
          Value::MakeInt(static_cast<int64_t>(i)),
          Value::MakeString(std::string(1, static_cast<char>('A' + i % 3))),
          Value::MakeEnum(static_cast<int32_t>(rng_() % 4))});
    }
  }

  void FillPapers(Database* db, size_t n) {
    Relation* rel = db->FindRelation("papers");
    rel->Clear();
    for (size_t i = 1; i <= n; ++i) {
      (void)rel->Insert(Tuple{Value::MakeInt(1 + static_cast<int64_t>(rng_() % 5)),
                              Value::MakeInt(1975 + static_cast<int64_t>(rng_() % 5)),
                              Value::MakeString("P" + std::to_string(i))});
    }
  }

  void FillCourses(Database* db, size_t n) {
    Relation* rel = db->FindRelation("courses");
    rel->Clear();
    for (size_t i = 1; i <= n; ++i) {
      (void)rel->Insert(Tuple{Value::MakeInt(static_cast<int64_t>(i)),
                              Value::MakeEnum(static_cast<int32_t>(rng_() % 4)),
                              Value::MakeString("C" + std::to_string(i))});
    }
  }

  void FillTimetable(Database* db, size_t n) {
    Relation* rel = db->FindRelation("timetable");
    rel->Clear();
    for (size_t i = 0; i < n; ++i) {
      (void)rel->Insert(
          Tuple{Value::MakeInt(1 + static_cast<int64_t>(rng_() % 5)),
                Value::MakeInt(1 + static_cast<int64_t>(rng_() % 5)),
                Value::MakeEnum(static_cast<int32_t>(rng_() % 5)),
                Value::MakeInt(9000000 + static_cast<int64_t>(rng_() % 100)),
                Value::MakeString("R" + std::to_string(rng_() % 3))});
    }
  }

  std::mt19937_64 rng_;
  std::vector<GenVar> scope_;
  int quant_counter_ = 0;
};

}  // namespace testing_util
}  // namespace pascalr

#endif  // PASCALR_TESTS_QUERY_GEN_H_
