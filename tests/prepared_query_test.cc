// Prepared queries: Prepare / Bind / Execute lifecycle, host-variable
// parameters, cursor streaming, and — the acceptance bar — zero
// parse / normalize / plan-search work on cached re-execution, asserted
// via the global compile counters.

#include "pascalr/prepared.h"

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "base/counters.h"
#include "pascalr/session.h"
#include "tests/query_gen.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::FirstStrings;
using testing_util::MakeUniversityDb;
using testing_util::QueryGenerator;
using testing_util::TupleStrings;

// The paper's running examples (Example 2.1 plus smaller shapes), all
// parameter-free — used for Query()-vs-prepared identity sweeps.
const char* const kPaperExamples[] = {
    "[<e.ename> OF EACH e IN employees: e.estatus = professor]",
    "[<e.ename> OF EACH e IN employees:"
    " SOME t IN timetable (e.enr = t.tenr)]",
    "[<e.ename> OF EACH e IN employees:"
    " (e.estatus = professor) AND"
    " (ALL p IN papers ((p.pyear <> 1977) OR (e.enr <> p.penr))"
    "  OR SOME c IN courses ((c.clevel <= sophomore)"
    "     AND SOME t IN timetable ((c.cnr = t.tcnr) AND"
    "                              (e.enr = t.tenr))))]",
    "[<e.ename, c.ctitle> OF EACH e IN employees, EACH c IN courses:"
    " SOME t IN timetable ((e.enr = t.tenr) AND (c.cnr = t.tcnr))]",
};

CompileCounters Snapshot() { return GlobalCompileCounters(); }

uint64_t CompileWorkSince(const CompileCounters& before) {
  const CompileCounters& now = GlobalCompileCounters();
  return (now.parses - before.parses) + (now.binds - before.binds) +
         (now.standard_forms - before.standard_forms) +
         (now.plans - before.plans) +
         (now.plan_searches - before.plan_searches);
}

TEST(PreparedQueryTest, ParameterizedExecuteMatchesLiteralQuery) {
  auto db = MakeUniversityDb();
  Session session(db.get());
  auto prepared = session.Prepare(
      "[<e.ename> OF EACH e IN employees: e.enr <= $top]");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared->param_names(), std::vector<std::string>{"top"});

  for (int64_t top : {0, 2, 5, 99}) {
    auto exec = prepared->Execute({{"top", Value::MakeInt(top)}});
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    auto literal = session.Query(
        "[<e.ename> OF EACH e IN employees: e.enr <= " +
        std::to_string(top) + "]");
    ASSERT_TRUE(literal.ok()) << literal.status().ToString();
    EXPECT_EQ(TupleStrings(exec->tuples), TupleStrings(literal->tuples))
        << "top=" << top;
  }
  EXPECT_EQ(prepared->stats().executes, 4u);
  EXPECT_EQ(prepared->stats().plan_compiles, 1u);
  EXPECT_EQ(prepared->stats().plan_cache_hits, 3u);
}

TEST(PreparedQueryTest, CachedReexecutionDoesZeroCompileWork) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  Session session(db.get());
  session.options().level = OptLevel::kAuto;

  auto prepared = session.Prepare(
      "[<e.ename> OF EACH e IN employees: (e.enr <= $top) AND"
      " SOME t IN timetable (e.enr = t.tenr)]");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  // First execute pays for planning (including the kAuto plan search).
  auto first = prepared->Execute({{"top", Value::MakeInt(3)}});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->plan_cache_hit);

  // Re-executions — same or different values — move none of the compile
  // counters: no parse, no bind, no normalization, no plan search.
  CompileCounters before = Snapshot();
  for (int64_t top : {3, 1, 5, 2, 4}) {
    auto exec = prepared->Execute({{"top", Value::MakeInt(top)}});
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    EXPECT_TRUE(exec->plan_cache_hit) << "top=" << top;
  }
  EXPECT_EQ(CompileWorkSince(before), 0u);
  EXPECT_EQ(prepared->stats().plan_cache_hits, 5u);
}

TEST(PreparedQueryTest, CursorStreamsIdenticalTuplesAndStopsEarly) {
  auto db = MakeUniversityDb();
  Session session(db.get());
  const std::string src =
      "[<e.ename> OF EACH e IN employees:"
      " SOME t IN timetable (e.enr = t.tenr)]";

  auto run = session.Query(src);
  ASSERT_TRUE(run.ok());

  auto prepared = session.Prepare(src);
  ASSERT_TRUE(prepared.ok());
  auto cursor = prepared->OpenCursor();
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();

  // Full drain is tuple-identical, including order.
  std::vector<Tuple> streamed;
  Tuple t;
  while (true) {
    auto more = cursor->Next(&t);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    streamed.push_back(t);
  }
  ASSERT_EQ(streamed.size(), run->tuples.size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i], run->tuples[i]) << i;
  }
  cursor->Close();

  // Early termination: one tuple costs one row's dereferences, not the
  // whole result's.
  auto partial = prepared->OpenCursor();
  ASSERT_TRUE(partial.ok());
  uint64_t before_next = partial->stats().dereferences;
  auto more = partial->Next(&t);
  ASSERT_TRUE(more.ok());
  if (*more) {
    EXPECT_LT(partial->stats().dereferences - before_next,
              std::max<uint64_t>(2, run->stats.dereferences));
  }
  partial->Close();
}

TEST(PreparedQueryTest, QueryWrapperMatchesPreparedAcrossPaperExamples) {
  auto db = MakeUniversityDb();
  Session session(db.get());
  for (const char* src : kPaperExamples) {
    auto via_query = session.Query(src);
    ASSERT_TRUE(via_query.ok()) << via_query.status().ToString() << "\n"
                                << src;
    auto prepared = session.Prepare(src);
    ASSERT_TRUE(prepared.ok());
    auto exec = prepared->Execute();
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    EXPECT_EQ(TupleStrings(exec->tuples), TupleStrings(via_query->tuples))
        << src;
    // And cursor-streamed, once more.
    auto cursor = prepared->OpenCursor();
    ASSERT_TRUE(cursor.ok());
    std::vector<Tuple> streamed;
    Tuple t;
    while (true) {
      auto more = cursor->Next(&t);
      ASSERT_TRUE(more.ok());
      if (!*more) break;
      streamed.push_back(std::move(t));
    }
    EXPECT_EQ(TupleStrings(streamed), TupleStrings(via_query->tuples)) << src;
  }
}

TEST(PreparedQueryTest, GeneratedCorpusCursorIdentity) {
  QueryGenerator gen(20260728);
  for (int i = 0; i < 40; ++i) {
    auto db = MakeUniversityDb(/*populate=*/false);
    gen.RandomDatabase(db.get());
    Session session(db.get());
    SelectionExpr sel = gen.RandomSelection();

    Binder binder(db.get());
    auto bound = binder.Bind(sel.Clone());
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    auto reference = RunQuery(*db, std::move(bound).value(), session.options());
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();

    auto prepared = session.PrepareSelection(std::move(sel));
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    auto exec = prepared->Execute();
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    EXPECT_EQ(TupleStrings(exec->tuples), TupleStrings(reference->tuples))
        << "seeded query " << i;

    // Cached re-execution agrees too (no catalog change in between).
    auto again = prepared->Execute();
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again->plan_cache_hit);
    EXPECT_EQ(TupleStrings(again->tuples), TupleStrings(reference->tuples));
  }
}

TEST(PreparedQueryTest, ParameterTypingAndBindingErrors) {
  auto db = MakeUniversityDb();
  Session session(db.get());

  // Params type against the compared component; enum labels work.
  auto by_status = session.Prepare(
      "[<e.ename> OF EACH e IN employees: e.estatus = $status]");
  ASSERT_TRUE(by_status.ok()) << by_status.status().ToString();
  auto professors =
      by_status->Execute({{"status", Value::MakeString("professor")}});
  ASSERT_TRUE(professors.ok()) << professors.status().ToString();
  auto expected = session.Query(
      "[<e.ename> OF EACH e IN employees: e.estatus = professor]");
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(TupleStrings(professors->tuples),
            TupleStrings(expected->tuples));

  // Missing binding, unknown parameter, wrong kind, bad label.
  EXPECT_EQ(by_status->Execute().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(by_status
                ->Execute({{"status", Value::MakeString("professor")},
                           {"nope", Value::MakeInt(1)}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(by_status->Execute({{"status", Value::MakeInt(1)}})
                .status()
                .code(),
            StatusCode::kTypeMismatch);
  EXPECT_EQ(by_status->Execute({{"status", Value::MakeString("janitor")}})
                .status()
                .code(),
            StatusCode::kNotFound);

  // A parameter compared with anything but a component is rejected at
  // Prepare (it cannot be typed and produces a variable-free term).
  EXPECT_FALSE(
      session.Prepare("[<e.ename> OF EACH e IN employees: $a = $b]").ok());
  EXPECT_FALSE(
      session.Prepare("[<e.ename> OF EACH e IN employees: $a = 3]").ok());
  // One parameter, two incompatible uses.
  EXPECT_EQ(session
                .Prepare("[<e.ename> OF EACH e IN employees:"
                         " (e.enr = $x) AND (e.ename = $x)]")
                .status()
                .code(),
            StatusCode::kTypeMismatch);

  // Running a parameterized selection through the un-prepared API fails
  // with a pointer to Prepare, instead of planning garbage.
  auto direct = session.Query(
      "[<e.ename> OF EACH e IN employees: e.enr = $top]");
  EXPECT_EQ(direct.status().code(), StatusCode::kInvalidArgument);
}

TEST(PreparedQueryTest, AutoPlannerSeesBoundSelectivity) {
  auto db = MakeUniversityDb(/*populate=*/false);
  // A skewed timetable: almost every row has tenr = 1. Keys are
  // <tenr, tcnr, tday>; tcnr cycles 1..95 with tday advancing per cycle,
  // keeping keys unique and tcnr within its 1..99 subrange.
  Relation* timetable = db->FindRelation("timetable");
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(timetable
                    ->Insert(Tuple{Value::MakeInt(i < 190 ? 1 : 2 + i % 5),
                                   Value::MakeInt(1 + i % 95),
                                   Value::MakeEnum((i / 95) % 5),
                                   Value::MakeInt(9000000 + i),
                                   Value::MakeString("R")})
                    .ok());
  }
  Relation* employees = db->FindRelation("employees");
  for (int i = 1; i <= 40; ++i) {
    ASSERT_TRUE(employees
                    ->Insert(Tuple{Value::MakeInt(i),
                                   Value::MakeString("E" + std::to_string(i)),
                                   Value::MakeEnum(i % 4)})
                    .ok());
  }
  ASSERT_TRUE(db->AnalyzeAll().ok());

  Session session(db.get());
  session.options().level = OptLevel::kAuto;
  const std::string src =
      "[<e.ename> OF EACH e IN employees:"
      " SOME t IN timetable ((t.tenr = $who) AND (e.enr = t.tenr))]";

  // Two separately prepared queries, first executed under a selective
  // vs. a non-selective binding: the plan search costs each against its
  // own bound value, so the estimates must differ — parameterized
  // selectivity is really coming from the values.
  auto selective = session.Prepare(src);
  ASSERT_TRUE(selective.ok());
  ASSERT_TRUE(selective->Execute({{"who", Value::MakeInt(6)}}).ok());
  auto popular = session.Prepare(src);
  ASSERT_TRUE(popular.ok());
  ASSERT_TRUE(popular->Execute({{"who", Value::MakeInt(1)}}).ok());

  ASSERT_NE(selective->planned(), nullptr);
  ASSERT_NE(popular->planned(), nullptr);
  EXPECT_TRUE(selective->planned()->cost_based);
  EXPECT_LT(selective->planned()->estimate.weighted_cost,
            popular->planned()->estimate.weighted_cost);
}

TEST(PreparedQueryTest, PrepareExecuteStatements) {
  auto db = MakeUniversityDb();
  std::ostringstream out;
  Session session(db.get(), &out);
  ASSERT_TRUE(session
                  .ExecuteScript(
                      "PREPARE who AS [<e.ename> OF EACH e IN employees:"
                      " e.enr <= $top];")
                  .ok())
      << out.str();
  EXPECT_NE(out.str().find("prepared who ($top)"), std::string::npos);

  Status st = session.ExecuteScript("EXECUTE who WITH $top = 2;");
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(out.str().find("who: "), std::string::npos);

  // Second run reports the cached plan.
  st = session.ExecuteScript("EXECUTE who WITH $top = 3;");
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(out.str().find("(cached plan)"), std::string::npos);

  EXPECT_EQ(session.ExecuteScript("EXECUTE nope;").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      session.ExecuteScript("EXECUTE who WITH $wrong = 1;").code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      session.ExecuteScript("EXECUTE who WITH $top = 3, $top = 1;").code(),
      StatusCode::kInvalidArgument);
}

TEST(PreparedQueryTest, ExplainCachedPlanNeedsNoBindings) {
  auto db = MakeUniversityDb();
  Session session(db.get());
  auto prepared = session.Prepare(
      "[<e.ename> OF EACH e IN employees: e.enr <= $top]");
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->Execute({{"top", Value::MakeInt(3)}}).ok());
  // With a plan cached, EXPLAIN works without (re)supplying values...
  auto text = prepared->Explain();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("$top"), std::string::npos) << *text;
  // ...but with no plan yet, it needs them.
  auto fresh = session.Prepare(
      "[<e.ename> OF EACH e IN employees: e.enr <= $top]");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->Explain().status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(fresh->Explain({{"top", Value::MakeInt(1)}}).ok());
}

}  // namespace
}  // namespace pascalr
