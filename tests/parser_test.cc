#include "parser/parser.h"

#include <gtest/gtest.h>

#include "calculus/printer.h"
#include "parser/lexer.h"

namespace pascalr {
namespace {

TEST(LexerTest, TokenizesPunctuationAndOperators) {
  Lexer lexer("[]()<><=>=:=:+:-..,;.=<>");
  auto tokens = lexer.Tokenize();
  ASSERT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<TokenType> types;
  for (const Token& t : *tokens) types.push_back(t.type);
  EXPECT_EQ(types, (std::vector<TokenType>{
                       TokenType::kLBracket, TokenType::kRBracket,
                       TokenType::kLParen, TokenType::kRParen, TokenType::kNe,
                       TokenType::kLe, TokenType::kGe, TokenType::kAssign,
                       TokenType::kInsertOp, TokenType::kDeleteOp,
                       TokenType::kDotDot, TokenType::kComma,
                       TokenType::kSemicolon, TokenType::kDot, TokenType::kEq,
                       TokenType::kNe, TokenType::kEnd}));
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  Lexer lexer("SOME some SoMe each ALL");
  auto tokens = lexer.Tokenize();
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kKwSome);
  EXPECT_EQ((*tokens)[1].type, TokenType::kKwSome);
  EXPECT_EQ((*tokens)[2].type, TokenType::kKwSome);
  EXPECT_EQ((*tokens)[3].type, TokenType::kKwEach);
  EXPECT_EQ((*tokens)[4].type, TokenType::kKwAll);
}

TEST(LexerTest, NumbersAndRanges) {
  Lexer lexer("1900..1999 42");
  auto tokens = lexer.Tokenize();
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].int_value, 1900);
  EXPECT_EQ((*tokens)[1].type, TokenType::kDotDot);
  EXPECT_EQ((*tokens)[2].int_value, 1999);
  EXPECT_EQ((*tokens)[3].int_value, 42);
}

TEST(LexerTest, StringsWithEscapedQuotes) {
  Lexer lexer("'Highman' 'it''s'");
  auto tokens = lexer.Tokenize();
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "Highman");
  EXPECT_EQ((*tokens)[1].text, "it's");
}

TEST(LexerTest, Comments) {
  Lexer lexer("a (* pascal comment *) b { brace comment } c");
  auto tokens = lexer.Tokenize();
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);  // a b c + end
  EXPECT_EQ((*tokens)[0].text, "a");
  EXPECT_EQ((*tokens)[2].text, "c");
}

TEST(LexerTest, ErrorsCarryPosition) {
  Lexer lexer("abc\n  ?");
  auto tokens = lexer.Tokenize();
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("2:3"), std::string::npos);
}

TEST(LexerTest, UnterminatedStringAndComment) {
  EXPECT_FALSE(Lexer("'open").Tokenize().ok());
  EXPECT_FALSE(Lexer("(* open").Tokenize().ok());
  EXPECT_FALSE(Lexer("{ open").Tokenize().ok());
}

TEST(ParserTest, SimpleSelection) {
  Parser parser("[<e.ename> OF EACH e IN employees: e.estatus = professor]");
  auto sel = parser.ParseSelectionOnly();
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  ASSERT_EQ(sel->projection.size(), 1u);
  EXPECT_EQ(sel->projection[0].var, "e");
  EXPECT_EQ(sel->projection[0].component, "ename");
  ASSERT_EQ(sel->free_vars.size(), 1u);
  EXPECT_EQ(sel->free_vars[0].range.relation, "employees");
  EXPECT_EQ(sel->wff->kind(), FormulaKind::kCompare);
}

TEST(ParserTest, QuantifierJuxtaposition) {
  // The paper writes `ALL p IN papers SOME c IN courses (wff)`.
  Parser parser(
      "[<e.ename> OF EACH e IN employees: "
      "ALL p IN papers SOME c IN courses (p.penr = c.cnr)]");
  auto sel = parser.ParseSelectionOnly();
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  const Formula& all = *sel->wff;
  ASSERT_EQ(all.kind(), FormulaKind::kQuant);
  EXPECT_EQ(all.quantifier(), Quantifier::kAll);
  ASSERT_EQ(all.child().kind(), FormulaKind::kQuant);
  EXPECT_EQ(all.child().quantifier(), Quantifier::kSome);
}

TEST(ParserTest, QuantifierBodyStopsAtParenGroup) {
  // `ALL p IN papers (A) OR B`: B belongs to the OUTER disjunction.
  Parser parser(
      "[<e.ename> OF EACH e IN employees: "
      "ALL p IN papers (p.pyear <> 1977) OR e.enr = 1]");
  auto sel = parser.ParseSelectionOnly();
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  ASSERT_EQ(sel->wff->kind(), FormulaKind::kOr);
  EXPECT_EQ(sel->wff->children()[0]->kind(), FormulaKind::kQuant);
  EXPECT_EQ(sel->wff->children()[1]->kind(), FormulaKind::kCompare);
}

TEST(ParserTest, ExtendedRangeWithRenaming) {
  // The inner variable (r) is renamed to the quantified variable (c).
  Parser parser(
      "[<e.ename> OF EACH e IN employees: "
      "SOME c IN [EACH r IN courses: r.clevel <= sophomore] "
      "(c.cnr = e.enr)]");
  auto sel = parser.ParseSelectionOnly();
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  const Formula& quant = *sel->wff;
  ASSERT_TRUE(quant.range().IsExtended());
  EXPECT_EQ(quant.range().restriction->term().lhs.var, "c");
}

TEST(ParserTest, OperatorPrecedenceAndNot) {
  Parser parser(
      "[<a.x> OF EACH a IN r: "
      "NOT a.x = 1 AND a.y = 2 OR a.z = 3]");
  auto sel = parser.ParseSelectionOnly();
  ASSERT_TRUE(sel.ok());
  // ((NOT (a.x=1)) AND (a.y=2)) OR (a.z=3)
  ASSERT_EQ(sel->wff->kind(), FormulaKind::kOr);
  const Formula& left = *sel->wff->children()[0];
  ASSERT_EQ(left.kind(), FormulaKind::kAnd);
  EXPECT_EQ(left.children()[0]->kind(), FormulaKind::kNot);
}

TEST(ParserTest, AllComparisonOperators) {
  Parser parser(
      "[<a.x> OF EACH a IN r: a.x = 1 AND a.x <> 2 AND a.x < 3 AND "
      "a.x <= 4 AND a.x > 5 AND a.x >= 6]");
  auto sel = parser.ParseSelectionOnly();
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->wff->children().size(), 6u);
  const CompareOp expected[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                                CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(sel->wff->children()[i]->term().op, expected[i]);
  }
}

TEST(ParserTest, LiteralKinds) {
  Parser parser(
      "[<a.x> OF EACH a IN r: a.s = 'str' AND a.b = TRUE AND a.e = label]");
  auto sel = parser.ParseSelectionOnly();
  ASSERT_TRUE(sel.ok());
  const auto& kids = sel->wff->children();
  EXPECT_TRUE(kids[0]->term().rhs.literal.is_string());
  EXPECT_TRUE(kids[1]->term().rhs.literal.is_bool());
  EXPECT_EQ(kids[2]->term().rhs.enum_label, "label");
}

TEST(ParserTest, Figure1ScriptParses) {
  Parser parser(R"(
    TYPE statustype = (student, technician, assistant, professor);
    VAR employees : RELATION <enr> OF RECORD
          enr : 1..99; ename : STRING(10); estatus : statustype END;
    VAR timetable : RELATION <tenr, tcnr, tday> OF RECORD
          tenr : 1..99; tcnr : 1..99; tday : (monday, tuesday);
          ttime : 8000900..18002000; troom : STRING(5) END;
    employees :+ [<20, 'Highman', technician>];
    employees :- [<20>];
    PRINT employees;
  )");
  auto script = parser.ParseScript();
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script->statements.size(), 6u);
  EXPECT_TRUE(std::holds_alternative<TypeDeclStmt>(script->statements[0]));
  EXPECT_TRUE(std::holds_alternative<RelationDeclStmt>(script->statements[1]));
  const auto& rel = std::get<RelationDeclStmt>(script->statements[2]);
  EXPECT_EQ(rel.key_components,
            (std::vector<std::string>{"tenr", "tcnr", "tday"}));
  ASSERT_EQ(rel.components.size(), 5u);
  EXPECT_EQ(rel.components[2].second.kind, RawType::Kind::kInlineEnum);
  EXPECT_TRUE(std::holds_alternative<InsertStmt>(script->statements[3]));
  EXPECT_TRUE(std::holds_alternative<DeleteStmt>(script->statements[4]));
  EXPECT_TRUE(std::holds_alternative<PrintStmt>(script->statements[5]));
}

TEST(ParserTest, AssignmentAndExplain) {
  Parser parser(R"(
    enames := [<e.ename> OF EACH e IN employees: TRUE];
    EXPLAIN [<e.ename> OF EACH e IN employees: TRUE];
  )");
  auto script = parser.ParseScript();
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_TRUE(std::holds_alternative<AssignStmt>(script->statements[0]));
  EXPECT_TRUE(std::holds_alternative<ExplainStmt>(script->statements[1]));
}

TEST(ParserTest, ErrorsArePositioned) {
  Parser parser("[<e.ename> OF EACH e IN employees e.enr = 1]");
  auto sel = parser.ParseSelectionOnly();
  ASSERT_FALSE(sel.ok());
  EXPECT_EQ(sel.status().code(), StatusCode::kParseError);
  // Expected ':' before the wff.
  EXPECT_NE(sel.status().message().find("':'"), std::string::npos);
}

TEST(ParserTest, RejectsTrailingInput) {
  Parser parser("[<e.x> OF EACH e IN r: TRUE] garbage");
  EXPECT_FALSE(parser.ParseSelectionOnly().ok());
}

TEST(ParserTest, RejectsEmptySubrange) {
  Parser parser("VAR r : RELATION <a> OF RECORD a : 9..1 END;");
  EXPECT_FALSE(parser.ParseScript().ok());
}

TEST(ParserTest, PrintParseRoundTrip) {
  const char* sources[] = {
      "[<e.ename> OF EACH e IN employees: (e.estatus = professor)]",
      "[<e.ename, t.tcnr> OF EACH e IN employees, EACH t IN timetable: "
      "(e.enr = t.tenr) AND SOME c IN courses ((c.cnr = t.tcnr))]",
      "[<e.ename> OF EACH e IN employees: ALL p IN papers ((p.pyear <> 1977) "
      "OR (e.enr <> p.penr))]",
  };
  for (const char* src : sources) {
    Parser p1(src);
    auto sel1 = p1.ParseSelectionOnly();
    ASSERT_TRUE(sel1.ok()) << sel1.status().ToString();
    std::string printed = FormatSelection(*sel1);
    Parser p2(printed);
    auto sel2 = p2.ParseSelectionOnly();
    ASSERT_TRUE(sel2.ok()) << "re-parse of: " << printed;
    EXPECT_TRUE(sel1->wff->Equals(*sel2->wff)) << printed;
  }
}

}  // namespace
}  // namespace pascalr
