#include "semantics/binder.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::MakeUniversityDb;

Result<BoundQuery> BindSource(const Database& db, const std::string& source) {
  Parser parser(source);
  PASCALR_ASSIGN_OR_RETURN(SelectionExpr sel, parser.ParseSelectionOnly());
  Binder binder(&db);
  return binder.Bind(std::move(sel));
}

TEST(BinderTest, ResolvesComponentsAndTypes) {
  auto db = MakeUniversityDb(false);
  auto bound = BindSource(
      *db, "[<e.ename> OF EACH e IN employees: e.enr = 7]");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  const JoinTerm& term = bound->selection.wff->term();
  EXPECT_EQ(term.lhs.component_pos, 0);
  EXPECT_EQ(term.lhs.type.kind(), TypeKind::kInt);
  EXPECT_EQ(bound->selection.projection[0].component_pos, 1);
  ASSERT_EQ(bound->vars.count("e"), 1u);
  EXPECT_EQ(bound->vars["e"].relation_name, "employees");
}

TEST(BinderTest, ResolvesEnumLabels) {
  auto db = MakeUniversityDb(false);
  auto bound = BindSource(
      *db, "[<e.ename> OF EACH e IN employees: e.estatus = professor]");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  const JoinTerm& term = bound->selection.wff->term();
  EXPECT_TRUE(term.rhs.literal.is_enum());
  EXPECT_EQ(term.rhs.literal.AsEnumOrdinal(), 3);  // professor
  EXPECT_TRUE(term.rhs.enum_label.empty());
  // Label order carries over: `<= sophomore` works.
  auto le = BindSource(
      *db, "[<c.ctitle> OF EACH c IN courses: c.clevel <= sophomore]");
  ASSERT_TRUE(le.ok());
  EXPECT_EQ(le->selection.wff->term().rhs.literal.AsEnumOrdinal(), 1);
}

TEST(BinderTest, RejectsUnknownLabel) {
  auto db = MakeUniversityDb(false);
  auto bound = BindSource(
      *db, "[<e.ename> OF EACH e IN employees: e.estatus = king]");
  EXPECT_EQ(bound.status().code(), StatusCode::kNotFound);
}

TEST(BinderTest, RejectsLabelAgainstNonEnum) {
  auto db = MakeUniversityDb(false);
  auto bound =
      BindSource(*db, "[<e.ename> OF EACH e IN employees: e.enr = seven]");
  EXPECT_EQ(bound.status().code(), StatusCode::kTypeMismatch);
}

TEST(BinderTest, RejectsUnknownRelationVariableComponent) {
  auto db = MakeUniversityDb(false);
  EXPECT_EQ(BindSource(*db, "[<e.ename> OF EACH e IN nowhere: TRUE]")
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(BindSource(*db,
                       "[<e.ename> OF EACH e IN employees: x.enr = 1]")
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(BindSource(*db,
                       "[<e.ename> OF EACH e IN employees: e.salary = 1]")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(BinderTest, RejectsIncompatibleComponentTypes) {
  auto db = MakeUniversityDb(false);
  auto bound = BindSource(
      *db,
      "[<e.ename> OF EACH e IN employees: SOME c IN courses "
      "(e.ename = c.clevel)]");
  EXPECT_EQ(bound.status().code(), StatusCode::kTypeMismatch);
}

TEST(BinderTest, FoldsLiteralOnlyTerms) {
  auto db = MakeUniversityDb(false);
  auto bound =
      BindSource(*db, "[<e.ename> OF EACH e IN employees: 1 < 2]");
  ASSERT_TRUE(bound.ok());
  ASSERT_EQ(bound->selection.wff->kind(), FormulaKind::kConst);
  EXPECT_TRUE(bound->selection.wff->const_value());

  auto folded_false =
      BindSource(*db, "[<e.ename> OF EACH e IN employees: 'a' = 'b']");
  ASSERT_TRUE(folded_false.ok());
  EXPECT_FALSE(folded_false->selection.wff->const_value());
}

TEST(BinderTest, AlphaRenamesShadowedQuantifiers) {
  auto db = MakeUniversityDb(false);
  // The inner `SOME p` shadows the outer `ALL p`.
  auto bound = BindSource(
      *db,
      "[<e.ename> OF EACH e IN employees: "
      "ALL p IN papers (SOME p IN papers ((p.pyear = 1977)) "
      "OR (p.penr = e.enr))]");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  // Two distinct bindings for the two p's.
  EXPECT_EQ(bound->vars.size(), 3u);  // e, p, p_1
  EXPECT_EQ(bound->vars.count("p"), 1u);
  EXPECT_EQ(bound->vars.count("p_1"), 1u);
  // The outer ALL keeps the name, the inner SOME was renamed — and the
  // second disjunct's p.penr refers to the OUTER p.
  const Formula& all = *bound->selection.wff;
  ASSERT_EQ(all.kind(), FormulaKind::kQuant);
  EXPECT_EQ(all.var(), "p");
  const Formula& body = all.child();
  ASSERT_EQ(body.kind(), FormulaKind::kOr);
  EXPECT_EQ(body.children()[0]->var(), "p_1");
  EXPECT_EQ(body.children()[0]->child().term().lhs.var, "p_1");
  EXPECT_EQ(body.children()[1]->term().lhs.var, "p");
}

TEST(BinderTest, RejectsDuplicateFreeVariables) {
  auto db = MakeUniversityDb(false);
  auto bound = BindSource(
      *db,
      "[<e.ename> OF EACH e IN employees, EACH e IN employees: TRUE]");
  EXPECT_EQ(bound.status().code(), StatusCode::kInvalidArgument);
}

TEST(BinderTest, RejectsProjectionOfQuantifiedVariable) {
  auto db = MakeUniversityDb(false);
  auto bound = BindSource(
      *db,
      "[<p.ptitle> OF EACH e IN employees: SOME p IN papers "
      "((p.penr = e.enr))]");
  EXPECT_EQ(bound.status().code(), StatusCode::kNotFound);
}

TEST(BinderTest, OutputSchemaDerivedFromProjection) {
  auto db = MakeUniversityDb(false);
  auto bound = BindSource(
      *db,
      "[<e.ename, e.estatus> OF EACH e IN employees: TRUE]");
  ASSERT_TRUE(bound.ok());
  ASSERT_EQ(bound->output_schema.num_components(), 2u);
  EXPECT_EQ(bound->output_schema.component(0).name, "ename");
  EXPECT_EQ(bound->output_schema.component(0).type.kind(), TypeKind::kString);
  EXPECT_EQ(bound->output_schema.component(1).type.kind(), TypeKind::kEnum);
}

TEST(BinderTest, QualifiesDuplicateOutputNames) {
  auto db = MakeUniversityDb(false);
  auto bound = BindSource(
      *db,
      "[<e.enr, t.tenr, x.enr> OF EACH e IN employees, "
      "EACH t IN timetable, EACH x IN employees: TRUE]");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->output_schema.component(0).name, "e_enr");
  EXPECT_EQ(bound->output_schema.component(2).name, "x_enr");
}

TEST(BinderTest, BindsUserWrittenExtendedRanges) {
  auto db = MakeUniversityDb(false);
  auto bound = BindSource(
      *db,
      "[<e.ename> OF EACH e IN [EACH e IN employees: "
      "e.estatus = professor]: SOME c IN [EACH c IN courses: "
      "c.clevel <= sophomore] ((c.cnr = e.enr))]");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  const RangeDecl& decl = bound->selection.free_vars[0];
  ASSERT_TRUE(decl.range.IsExtended());
  // The restriction is bound: enum label resolved, position set.
  const JoinTerm& restr = decl.range.restriction->term();
  EXPECT_EQ(restr.rhs.literal.AsEnumOrdinal(), 3);
  EXPECT_EQ(restr.lhs.component_pos, 2);
}

TEST(BinderTest, MissingWffDefaultsToTrue) {
  auto db = MakeUniversityDb(false);
  Binder binder(db.get());
  SelectionExpr sel;
  OutputComponent oc;
  oc.var = "e";
  oc.component = "ename";
  sel.projection.push_back(oc);
  sel.free_vars.emplace_back("e", RangeExpr("employees"));
  sel.wff = nullptr;
  auto bound = binder.Bind(std::move(sel));
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->selection.wff->kind(), FormulaKind::kConst);
}

}  // namespace
}  // namespace pascalr
