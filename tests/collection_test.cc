// Collection-phase behaviour, centred on the paper's Example 3.2 / Figure 2
// structures for the running query.

#include "exec/collection.h"

#include <gtest/gtest.h>

#include "opt/planner.h"
#include "pascalr/sample_db.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::MakeUniversityDb;
using testing_util::MustBind;

PlannedQuery MustPlan(const Database& db, const std::string& query,
                      OptLevel level) {
  PlannerOptions options;
  options.level = level;
  Result<PlannedQuery> planned =
      PlanQuery(db, MustBind(db, query), options);
  EXPECT_TRUE(planned.ok()) << planned.status().ToString();
  return std::move(planned).value();
}

TEST(CollectionTest, Example32SingleListAndIndirectJoin) {
  auto db = MakeUniversityDb();
  // The sub-expression of Example 3.2:
  //   (c.clevel <= sophomore) AND (c.cnr = t.tcnr)
  PlannedQuery planned = MustPlan(
      *db,
      "[<c.ctitle> OF EACH c IN courses: (c.clevel <= sophomore) AND "
      "SOME t IN timetable ((c.cnr = t.tcnr))]",
      OptLevel::kParallel);
  ExecStats stats;
  Result<CollectionResult> coll =
      ExecuteCollection(planned.plan, *db, &stats);
  ASSERT_TRUE(coll.ok()) << coll.status().ToString();

  // Example 3.2 (no gating): sl_csoph has C10, C11 -> 2 refs; the
  // indirect join holds EVERY (c, t) pair with c.cnr = t.tcnr -> 6 rows
  // (each timetable entry matches its course).
  size_t single_list_rows = 0, indirect_join_rows = 0;
  for (size_t i = 0; i < planned.plan.structures.size(); ++i) {
    if (coll->structures[i].arity() == 1) {
      single_list_rows += coll->structures[i].size();
    } else {
      indirect_join_rows += coll->structures[i].size();
    }
  }
  EXPECT_EQ(single_list_rows, 2u);
  EXPECT_EQ(indirect_join_rows, 6u);
  EXPECT_EQ(stats.single_list_refs, 2u);
  EXPECT_EQ(stats.indirect_join_refs, 12u);  // 6 rows x 2 refs
}

TEST(CollectionTest, Example42OneStepGatingShrinksTheIndirectJoin) {
  auto db = MakeUniversityDb();
  // Example 4.2: at strategy 2 the monadic term gates the indirect join
  // while courses is read; only timetable entries on sophomore-or-lower
  // courses survive (tcnr 11 twice) and no single list is materialised.
  PlannedQuery planned = MustPlan(
      *db,
      "[<c.ctitle> OF EACH c IN courses: (c.clevel <= sophomore) AND "
      "SOME t IN timetable ((c.cnr = t.tcnr))]",
      OptLevel::kOneStep);
  ExecStats stats;
  Result<CollectionResult> coll =
      ExecuteCollection(planned.plan, *db, &stats);
  ASSERT_TRUE(coll.ok()) << coll.status().ToString();
  size_t single_list_rows = 0, indirect_join_rows = 0;
  for (size_t i = 0; i < planned.plan.structures.size(); ++i) {
    if (coll->structures[i].arity() == 1) {
      single_list_rows += coll->structures[i].size();
    } else {
      indirect_join_rows += coll->structures[i].size();
    }
  }
  EXPECT_EQ(single_list_rows, 0u);  // absorbed into the gated emission
  EXPECT_EQ(indirect_join_rows, 2u);
  EXPECT_EQ(stats.indirect_join_refs, 4u);
}

TEST(CollectionTest, RangesMaterialisedForEveryVariable) {
  auto db = MakeUniversityDb();
  PlannedQuery planned =
      MustPlan(*db, Example21QuerySource(), OptLevel::kParallel);
  ExecStats stats;
  Result<CollectionResult> coll =
      ExecuteCollection(planned.plan, *db, &stats);
  ASSERT_TRUE(coll.ok());
  EXPECT_EQ(coll->range_refs.at("e").size(), 6u);
  EXPECT_EQ(coll->range_refs.at("p").size(), 5u);
  EXPECT_EQ(coll->range_refs.at("c").size(), 4u);
  EXPECT_EQ(coll->range_refs.at("t").size(), 6u);
}

TEST(CollectionTest, ExtendedRangesRestrictMaterialisation) {
  auto db = MakeUniversityDb();
  PlannedQuery planned =
      MustPlan(*db, Example21QuerySource(), OptLevel::kRangeExt);
  ExecStats stats;
  Result<CollectionResult> coll =
      ExecuteCollection(planned.plan, *db, &stats);
  ASSERT_TRUE(coll.ok());
  // Example 4.5: e over professors (4), p over 1977 papers (3),
  // c over sophomore-or-lower courses (2).
  EXPECT_EQ(coll->range_refs.at("e").size(), 4u);
  EXPECT_EQ(coll->range_refs.at("p").size(), 3u);
  EXPECT_EQ(coll->range_refs.at("c").size(), 2u);
}

TEST(CollectionTest, NaiveLevelScansPerTerm) {
  auto db = MakeUniversityDb();
  PlannedQuery naive_plan =
      MustPlan(*db, Example21QuerySource(), OptLevel::kNaive);
  PlannedQuery grouped_plan =
      MustPlan(*db, Example21QuerySource(), OptLevel::kParallel);
  EXPECT_GT(naive_plan.plan.scans.size(), grouped_plan.plan.scans.size());
  EXPECT_EQ(grouped_plan.plan.scans.size(), 4u);  // one per relation
}

TEST(CollectionTest, SelfJoinUsesPostScanProbe) {
  auto db = MakeUniversityDb();
  // Two variables over employees joined dyadically: index and probe hit
  // the same relation, forcing a post-scan probe.
  PlannedQuery planned = MustPlan(
      *db,
      "[<a.ename> OF EACH a IN employees: SOME b IN employees "
      "((a.enr <> b.enr) AND (a.estatus = b.estatus))]",
      OptLevel::kOneStep);
  EXPECT_FALSE(planned.plan.post_probes.empty());
  ExecStats stats;
  Result<CollectionResult> coll =
      ExecuteCollection(planned.plan, *db, &stats);
  ASSERT_TRUE(coll.ok()) << coll.status().ToString();
  // Professors pair with other professors; the ij must be non-empty.
  size_t ij_rows = 0;
  for (const RefRelation& s : coll->structures) {
    if (s.arity() == 2) ij_rows += s.size();
  }
  EXPECT_GT(ij_rows, 0u);
}

TEST(CollectionTest, Strategy2GatesReduceIndirectJoins) {
  auto db = MakeUniversityDb();
  const std::string query =
      "[<e.ename> OF EACH e IN employees: (e.estatus = professor) AND "
      "SOME t IN timetable ((t.tenr = e.enr))]";
  PlannedQuery without = MustPlan(*db, query, OptLevel::kParallel);
  PlannedQuery with = MustPlan(*db, query, OptLevel::kOneStep);

  ExecStats s1, s2;
  auto coll1 = ExecuteCollection(without.plan, *db, &s1);
  auto coll2 = ExecuteCollection(with.plan, *db, &s2);
  ASSERT_TRUE(coll1.ok());
  ASSERT_TRUE(coll2.ok());
  // Gating keeps non-professor employees out of the indirect join:
  // ungated has 6 rows (all timetable pairs), gated drops Dave's entry.
  EXPECT_LT(s2.indirect_join_refs, s1.indirect_join_refs);
}

}  // namespace
}  // namespace pascalr
