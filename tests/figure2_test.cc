// Figure 2 fidelity: the auxiliary-structure inventory the paper declares
// for Example 2.2 — three single lists (sl_prof, sl_p77, sl_csoph), three
// indirect joins (ij_c_t, ij_e_t, ij_e_p), three indexes (ind_t_enr,
// ind_t_cnr, ind_p_enr) — and how strategies 2-4 transform it.

#include <gtest/gtest.h>

#include "opt/planner.h"
#include "pascalr/sample_db.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::MakeUniversityDb;
using testing_util::MustBind;

struct Inventory {
  size_t single_lists = 0;
  size_t indirect_joins = 0;
  size_t indexes = 0;
  size_t value_lists = 0;
  size_t gated_emissions = 0;
};

Inventory PlanInventory(const Database& db, OptLevel level) {
  PlannerOptions options;
  options.level = level;
  Result<PlannedQuery> planned =
      PlanQuery(db, MustBind(db, Example21QuerySource()), options);
  EXPECT_TRUE(planned.ok()) << planned.status().ToString();
  Inventory inv;
  for (const StructureDef& def : planned->plan.structures) {
    if (def.columns.size() == 1) {
      ++inv.single_lists;
    } else {
      ++inv.indirect_joins;
    }
  }
  inv.indexes = planned->plan.indexes.size();
  inv.value_lists = planned->plan.value_lists.size();
  // Gating is a strategy-2 phenomenon on *indirect-join* emissions (a
  // single list's own term is technically carried as a gate at any level).
  for (const RelationScan& scan : planned->plan.scans) {
    for (const ScanAction& action : scan.actions) {
      for (const IndirectJoinEmit& e : action.ij_emits) {
        inv.gated_emissions += e.gates.empty() ? 0 : 1;
      }
    }
  }
  return inv;
}

TEST(Figure2Test, Strategy1MatchesThePapersInventory) {
  auto db = MakeUniversityDb();
  Inventory inv = PlanInventory(*db, OptLevel::kParallel);
  // Figure 2: sl_prof, sl_p77, sl_csoph / ij_c_t, ij_e_t, ij_e_p /
  // ind_t_enr, ind_t_cnr, ind_p_enr.
  EXPECT_EQ(inv.single_lists, 3u);
  EXPECT_EQ(inv.indirect_joins, 3u);
  EXPECT_EQ(inv.indexes, 3u);
  EXPECT_EQ(inv.value_lists, 0u);
  EXPECT_EQ(inv.gated_emissions, 0u);  // no S2 gating yet
}

TEST(Figure2Test, Strategy2AbsorbsMonadicTermsIntoGates) {
  auto db = MakeUniversityDb();
  Inventory inv = PlanInventory(*db, OptLevel::kOneStep);
  // prof(e) is absorbed wherever e has a dyadic term (conjunctions 2-3);
  // sl_prof remains only for conjunction 1's monadic-only use of e, and
  // sl_p77 likewise. csoph gates the c-side index.
  EXPECT_EQ(inv.single_lists, 2u);   // sl_e{prof}, sl_p{p77}
  EXPECT_EQ(inv.indirect_joins, 3u);
  EXPECT_GE(inv.gated_emissions, 1u);
}

TEST(Figure2Test, Strategy3RangesReplaceSingleLists) {
  auto db = MakeUniversityDb();
  Inventory inv = PlanInventory(*db, OptLevel::kRangeExt);
  // Example 4.5: all monadic restrictions became range extensions; one
  // conjunction disappeared, and with it one indirect join (only e-p and
  // the e-t / c-t pair remain).
  EXPECT_EQ(inv.single_lists, 0u);
  EXPECT_EQ(inv.indirect_joins, 3u);
}

TEST(Figure2Test, Strategy4ReplacesJoinsWithValueLists) {
  auto db = MakeUniversityDb();
  Inventory inv = PlanInventory(*db, OptLevel::kQuantPush);
  // Example 4.7: cset/tset/pset become value lists; the matrix is served
  // by derived single lists on e; no indirect joins, no transient indexes.
  EXPECT_EQ(inv.indirect_joins, 0u);
  EXPECT_EQ(inv.indexes, 0u);
  EXPECT_EQ(inv.value_lists, 3u);
  EXPECT_EQ(inv.single_lists, 2u);  // the two derived lists on e
}

TEST(Figure2Test, MaterialisedSizesOnTheSmallExample) {
  auto db = MakeUniversityDb();
  PlannerOptions options;
  options.level = OptLevel::kParallel;
  Result<QueryRun> run =
      RunQuery(*db, MustBind(*db, Example21QuerySource()), options);
  ASSERT_TRUE(run.ok());
  // sl_prof = 4 professors, sl_p77 = 2 non-1977 papers... sl_p77 holds
  // papers with pyear <> 1977: P2 (1975), P3 (1976) -> 2 refs.
  // sl_csoph = C10, C11 -> 2 refs.
  std::multiset<size_t> single_list_sizes;
  for (size_t i = 0; i < run->planned.plan.structures.size(); ++i) {
    if (run->planned.plan.structures[i].columns.size() == 1) {
      single_list_sizes.insert(run->collection.structures[i].size());
    }
  }
  EXPECT_EQ(single_list_sizes, (std::multiset<size_t>{2, 2, 4}));
}

}  // namespace
}  // namespace pascalr
