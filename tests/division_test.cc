#include "refstruct/division.h"

#include <random>

#include <gtest/gtest.h>

namespace pascalr {
namespace {

Ref R(RelationId rel, uint32_t slot) { return Ref{rel, slot, 1}; }

class DivisionAlgorithmTest
    : public ::testing::TestWithParam<DivisionAlgorithm> {};

TEST_P(DivisionAlgorithmTest, BasicDivision) {
  // Group g0 covers the divisor {v0, v1}; g1 covers only v0.
  RefRelation table({"g", "v"});
  table.Add({R(1, 0), R(2, 0)});
  table.Add({R(1, 0), R(2, 1)});
  table.Add({R(1, 1), R(2, 0)});
  ExecStats stats;
  auto result =
      Divide(table, "v", {R(2, 0), R(2, 1)}, &stats, GetParam());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->columns(), (std::vector<std::string>{"g"}));
  EXPECT_EQ(result->size(), 1u);
  EXPECT_TRUE(result->Contains({R(1, 0)}));
}

TEST_P(DivisionAlgorithmTest, RowsOutsideDivisorAreIgnored) {
  RefRelation table({"g", "v"});
  table.Add({R(1, 0), R(2, 0)});
  table.Add({R(1, 0), R(2, 9)});  // not in divisor: contributes nothing
  ExecStats stats;
  auto result = Divide(table, "v", {R(2, 0)}, &stats, GetParam());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST_P(DivisionAlgorithmTest, EmptyDivisorIsVacuousTruth) {
  RefRelation table({"g", "v"});
  table.Add({R(1, 0), R(2, 0)});
  table.Add({R(1, 1), R(2, 1)});
  ExecStats stats;
  auto result = Divide(table, "v", {}, &stats, GetParam());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST_P(DivisionAlgorithmTest, EmptyTable) {
  RefRelation table({"g", "v"});
  ExecStats stats;
  auto result = Divide(table, "v", {R(2, 0)}, &stats, GetParam());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST_P(DivisionAlgorithmTest, MultiColumnGroups) {
  // Remaining columns (a, b) form composite groups.
  RefRelation table({"a", "v", "b"});
  for (uint32_t v = 0; v < 3; ++v) {
    table.Add({R(1, 0), R(9, v), R(2, 0)});  // (a0,b0) covers all
  }
  table.Add({R(1, 0), R(9, 0), R(2, 1)});  // (a0,b1) covers only v0
  ExecStats stats;
  auto result = Divide(table, "v", {R(9, 0), R(9, 1), R(9, 2)}, &stats,
                       GetParam());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->columns(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(result->size(), 1u);
  EXPECT_TRUE(result->Contains({R(1, 0), R(2, 0)}));
}

TEST_P(DivisionAlgorithmTest, DuplicateDivisorEntriesCollapse) {
  RefRelation table({"g", "v"});
  table.Add({R(1, 0), R(2, 0)});
  ExecStats stats;
  auto result =
      Divide(table, "v", {R(2, 0), R(2, 0), R(2, 0)}, &stats, GetParam());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST_P(DivisionAlgorithmTest, UnknownColumnError) {
  RefRelation table({"g", "v"});
  ExecStats stats;
  EXPECT_EQ(Divide(table, "zz", {}, &stats, GetParam()).status().code(),
            StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, DivisionAlgorithmTest,
                         ::testing::Values(DivisionAlgorithm::kHash,
                                           DivisionAlgorithm::kSort),
                         [](const auto& param_info) {
                           return param_info.param == DivisionAlgorithm::kHash
                                      ? "Hash"
                                      : "Sort";
                         });

TEST(DivisionTest, HashAndSortAgreeOnRandomTables) {
  std::mt19937 rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    RefRelation table({"g", "v", "h"});
    size_t rows = rng() % 60;
    for (size_t i = 0; i < rows; ++i) {
      table.Add({R(1, rng() % 5), R(2, rng() % 6), R(3, rng() % 3)});
    }
    std::vector<Ref> divisor;
    size_t dn = rng() % 6;
    for (size_t i = 0; i < dn; ++i) divisor.push_back(R(2, rng() % 6));

    ExecStats s1, s2;
    auto hash = Divide(table, "v", divisor, &s1, DivisionAlgorithm::kHash);
    auto sort = Divide(table, "v", divisor, &s2, DivisionAlgorithm::kSort);
    ASSERT_TRUE(hash.ok());
    ASSERT_TRUE(sort.ok());
    ASSERT_EQ(hash->size(), sort->size()) << "trial " << trial;
    for (const RefRow& row : hash->rows()) {
      EXPECT_TRUE(sort->Contains(row)) << "trial " << trial;
    }
  }
}

TEST(DivisionTest, StatsCountInputRows) {
  RefRelation table({"g", "v"});
  for (uint32_t i = 0; i < 10; ++i) table.Add({R(1, i % 2), R(2, i)});
  ExecStats stats;
  ASSERT_TRUE(
      Divide(table, "v", {R(2, 0), R(2, 1)}, &stats, DivisionAlgorithm::kHash)
          .ok());
  EXPECT_EQ(stats.division_input_rows, 10u);
}

}  // namespace
}  // namespace pascalr
