// Combination-phase behaviour: n-tuple extension, union, quantifier
// evaluation right-to-left (projection / division).

#include "exec/combination.h"

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "opt/planner.h"
#include "pascalr/sample_db.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::MakeUniversityDb;
using testing_util::MustBind;

struct RunParts {
  QueryPlan plan;
  CollectionResult collection;
  RefRelation combined;
};

RunParts RunThroughCombination(const Database& db, const std::string& query,
                               OptLevel level) {
  PlannerOptions options;
  options.level = level;
  Result<PlannedQuery> planned = PlanQuery(db, MustBind(db, query), options);
  EXPECT_TRUE(planned.ok()) << planned.status().ToString();
  ExecStats stats;
  Result<CollectionResult> coll = ExecuteCollection(planned->plan, db, &stats);
  EXPECT_TRUE(coll.ok()) << coll.status().ToString();
  Result<RefRelation> combined =
      ExecuteCombination(planned->plan, *coll, &stats);
  EXPECT_TRUE(combined.ok()) << combined.status().ToString();
  RunParts parts{std::move(planned->plan), std::move(coll).value(),
                 std::move(combined).value()};
  return parts;
}

TEST(CombinationTest, ResultColumnsAreTheFreeVariables) {
  auto db = MakeUniversityDb();
  RunParts parts = RunThroughCombination(
      *db,
      "[<e.ename, c.ctitle> OF EACH e IN employees, EACH c IN courses: "
      "SOME t IN timetable ((t.tenr = e.enr) AND (t.tcnr = c.cnr))]",
      OptLevel::kOneStep);
  EXPECT_EQ(parts.combined.columns(),
            (std::vector<std::string>{"e", "c"}));
  EXPECT_EQ(parts.combined.size(), 6u);  // the six timetable pairings
}

TEST(CombinationTest, ExistentialIsProjection) {
  auto db = MakeUniversityDb();
  RunParts parts = RunThroughCombination(
      *db,
      "[<e.ename> OF EACH e IN employees: SOME t IN timetable "
      "((t.tenr = e.enr))]",
      OptLevel::kOneStep);
  // Employees teaching anything: 1, 2, 3, 4, 6 -> 5 rows.
  EXPECT_EQ(parts.combined.size(), 5u);
  EXPECT_EQ(parts.combined.arity(), 1u);
}

TEST(CombinationTest, UniversalIsDivision) {
  auto db = MakeUniversityDb();
  // Professors e such that ALL sophomore-or-lower courses c have SOME
  // timetable entry by e: only nobody qualifies for ALL over {C10, C11}
  // (Alice teaches C11 but not C10).
  RunParts parts = RunThroughCombination(
      *db,
      "[<e.ename> OF EACH e IN employees: "
      "ALL c IN [EACH c IN courses: c.clevel <= sophomore] "
      "SOME t IN timetable ((t.tcnr = c.cnr) AND (t.tenr = e.enr))]",
      OptLevel::kOneStep);
  EXPECT_TRUE(parts.combined.empty());

  // Restrict to sophomore only: {C11} — Alice and Dave teach it.
  RunParts parts2 = RunThroughCombination(
      *db,
      "[<e.ename> OF EACH e IN employees: "
      "ALL c IN [EACH c IN courses: c.clevel = sophomore] "
      "SOME t IN timetable ((t.tcnr = c.cnr) AND (t.tenr = e.enr))]",
      OptLevel::kOneStep);
  EXPECT_EQ(parts2.combined.size(), 2u);
}

TEST(CombinationTest, DisjunctsUnion) {
  auto db = MakeUniversityDb();
  RunParts parts = RunThroughCombination(
      *db,
      "[<e.ename> OF EACH e IN employees: (e.estatus = professor) OR "
      "(e.estatus = student)]",
      OptLevel::kOneStep);
  EXPECT_EQ(parts.combined.size(), 5u);  // 4 professors + Erin
}

TEST(CombinationTest, FalseMatrixYieldsEmpty) {
  auto db = MakeUniversityDb();
  RunParts parts = RunThroughCombination(
      *db, "[<e.ename> OF EACH e IN employees: FALSE]", OptLevel::kOneStep);
  EXPECT_TRUE(parts.combined.empty());
  EXPECT_EQ(parts.combined.columns(), (std::vector<std::string>{"e"}));
}

TEST(CombinationTest, TrueMatrixYieldsFullRange) {
  auto db = MakeUniversityDb();
  RunParts parts = RunThroughCombination(
      *db, "[<e.ename> OF EACH e IN employees: TRUE]", OptLevel::kOneStep);
  EXPECT_EQ(parts.combined.size(), 6u);
}

TEST(CombinationTest, VariableAbsentFromConjunctionGetsFullProduct) {
  auto db = MakeUniversityDb();
  // Disjunct 1 references only e; disjunct 2 references e and t. Both are
  // extended to (e, t) tuples before the union — §3.3's n-tuple invariant.
  ExecStats stats;
  PlannerOptions options;
  options.level = OptLevel::kParallel;
  Result<PlannedQuery> planned = PlanQuery(
      *db,
      MustBind(*db,
               "[<e.ename> OF EACH e IN employees: (e.estatus = student) OR "
               "SOME t IN timetable ((t.tenr = e.enr))]"),
      options);
  ASSERT_TRUE(planned.ok());
  Result<CollectionResult> coll =
      ExecuteCollection(planned->plan, *db, &stats);
  ASSERT_TRUE(coll.ok());
  uint64_t before = stats.combination_rows;
  Result<RefRelation> combined =
      ExecuteCombination(planned->plan, *coll, &stats);
  ASSERT_TRUE(combined.ok());
  // Erin (student) + the 5 teaching employees.
  EXPECT_EQ(combined->size(), 6u);
  // The student disjunct had to be extended across all 6 timetable rows:
  // measurable combination work beyond the final 6 rows.
  EXPECT_GT(stats.combination_rows - before, 6u);
}

TEST(CombinationTest, EliminatedVariablesSkipDivision) {
  auto db = MakeUniversityDb();
  ExecStats stats;
  PlannerOptions options;
  options.level = OptLevel::kQuantPush;
  Result<PlannedQuery> planned =
      PlanQuery(*db, MustBind(*db, Example21QuerySource()), options);
  ASSERT_TRUE(planned.ok());
  ASSERT_FALSE(planned->plan.eliminated_vars.empty());
  Result<ExecOutcome> outcome = ExecutePlan(planned->plan, *db, &stats);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(stats.division_input_rows, 0u);
}

}  // namespace
}  // namespace pascalr
