#include "exec/naive.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::FirstStrings;
using testing_util::MakeUniversityDb;
using testing_util::MustBind;

std::set<std::string> RunNaive(const Database& db, const std::string& query) {
  BoundQuery bound = MustBind(db, query);
  NaiveEvaluator naive(&db);
  Result<std::vector<Tuple>> result = naive.Evaluate(bound);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return FirstStrings(*result);
}

TEST(NaiveTest, MonadicSelection) {
  auto db = MakeUniversityDb();
  EXPECT_EQ(RunNaive(*db,
                "[<e.ename> OF EACH e IN employees: e.estatus = professor]"),
            (std::set<std::string>{"Alice", "Bob", "Carol", "Frank"}));
}

TEST(NaiveTest, TrueAndFalseWffs) {
  auto db = MakeUniversityDb();
  EXPECT_EQ(RunNaive(*db, "[<e.ename> OF EACH e IN employees: TRUE]").size(), 6u);
  EXPECT_TRUE(RunNaive(*db, "[<e.ename> OF EACH e IN employees: FALSE]").empty());
}

TEST(NaiveTest, ExistentialWitness) {
  auto db = MakeUniversityDb();
  // Employees with some paper.
  EXPECT_EQ(RunNaive(*db,
                "[<e.ename> OF EACH e IN employees: "
                "SOME p IN papers ((p.penr = e.enr))]"),
            (std::set<std::string>{"Alice", "Bob", "Carol", "Dave"}));
}

TEST(NaiveTest, UniversalVacuousOverEmptyRange) {
  auto db = MakeUniversityDb();
  db->FindRelation("papers")->Clear();
  EXPECT_EQ(RunNaive(*db,
                "[<e.ename> OF EACH e IN employees: "
                "ALL p IN papers ((p.penr = e.enr))]")
                .size(),
            6u);
  // SOME over the empty range is false.
  EXPECT_TRUE(RunNaive(*db,
                  "[<e.ename> OF EACH e IN employees: "
                  "SOME p IN papers ((p.penr = e.enr))]")
                  .empty());
}

TEST(NaiveTest, UniversalCounterexample) {
  auto db = MakeUniversityDb();
  // "ALL papers are by this employee" only holds vacuously... nobody wrote
  // all 5 papers.
  EXPECT_TRUE(RunNaive(*db,
                  "[<e.ename> OF EACH e IN employees: "
                  "ALL p IN papers ((p.penr = e.enr))]")
                  .empty());
  // But "ALL papers of 1975 are by this employee" holds for Alice (P2 is
  // the only 1975 paper, penr 1).
  EXPECT_EQ(RunNaive(*db,
                "[<e.ename> OF EACH e IN employees: "
                "ALL p IN papers ((p.pyear <> 1975) OR (p.penr = e.enr))]"),
            (std::set<std::string>{"Alice"}));
}

TEST(NaiveTest, ExtendedRangesRestrict) {
  auto db = MakeUniversityDb();
  EXPECT_EQ(RunNaive(*db,
                "[<e.ename> OF EACH e IN [EACH e IN employees: "
                "e.estatus = professor]: SOME p IN [EACH p IN papers: "
                "p.pyear = 1977] ((p.penr = e.enr))]"),
            (std::set<std::string>{"Alice", "Carol"}));
}

TEST(NaiveTest, MultipleFreeVariablesProduceCombinations) {
  auto db = MakeUniversityDb();
  BoundQuery bound = MustBind(
      *db,
      "[<e.ename, c.ctitle> OF EACH e IN employees, EACH c IN courses: "
      "SOME t IN timetable ((t.tenr = e.enr) AND (t.tcnr = c.cnr))]");
  NaiveEvaluator naive(db.get());
  Result<std::vector<Tuple>> result = naive.Evaluate(bound);
  ASSERT_TRUE(result.ok());
  // Timetable pairs: (1,11),(1,12),(2,12),(3,13),(4,11),(6,12).
  EXPECT_EQ(result->size(), 6u);
}

TEST(NaiveTest, NestedQuantifiersWithShadowing) {
  auto db = MakeUniversityDb();
  // Inner p shadows outer p; the binder alpha-renames, the evaluator must
  // keep both bindings separate.
  EXPECT_EQ(RunNaive(*db,
                "[<e.ename> OF EACH e IN employees: "
                "SOME p IN papers ((p.penr = e.enr) AND "
                "SOME p IN papers ((p.pyear = 1975)))]"),
            (std::set<std::string>{"Alice", "Bob", "Carol", "Dave"}));
}

TEST(NaiveTest, StatsCountWork) {
  auto db = MakeUniversityDb();
  BoundQuery bound = MustBind(
      *db, "[<e.ename> OF EACH e IN employees: e.estatus = professor]");
  NaiveEvaluator naive(db.get());
  ExecStats stats;
  ASSERT_TRUE(naive.Evaluate(bound, &stats).ok());
  EXPECT_EQ(stats.elements_scanned, 6u);
  EXPECT_EQ(stats.comparisons, 6u);
}

TEST(NaiveTest, DeduplicatesResults) {
  auto db = MakeUniversityDb();
  // Two professors share no name, but projecting estatus collapses rows.
  BoundQuery bound = MustBind(
      *db, "[<e.estatus> OF EACH e IN employees: e.estatus = professor]");
  NaiveEvaluator naive(db.get());
  Result<std::vector<Tuple>> result = naive.Evaluate(bound);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST(NaiveTest, EvalFormulaDirectly) {
  auto db = MakeUniversityDb();
  BoundQuery bound = MustBind(
      *db,
      "[<e.ename> OF EACH e IN employees: SOME t IN timetable "
      "((t.tenr = e.enr))]");
  NaiveEvaluator naive(db.get());
  const Relation* employees = db->FindRelation("employees");
  const Tuple* alice = *employees->SelectByKey(Tuple{Value::MakeInt(1)});
  const Tuple* erin = *employees->SelectByKey(Tuple{Value::MakeInt(5)});

  std::map<std::string, const Tuple*> bindings{{"e", alice}};
  EXPECT_TRUE(*naive.EvalFormula(*bound.selection.wff, &bindings));
  bindings["e"] = erin;
  EXPECT_FALSE(*naive.EvalFormula(*bound.selection.wff, &bindings));
}

}  // namespace
}  // namespace pascalr
