#include "normalize/nnf.h"

#include <gtest/gtest.h>

#include "calculus/printer.h"
#include "pascalr/dsl.h"

namespace pascalr {
namespace {

using dsl::C;
using dsl::Eq;
using dsl::Lit;
using dsl::NotF;

FormulaPtr Term(const char* var, const char* comp, CompareOp op, int64_t v) {
  return dsl::Cmp(C(var, comp), op, Lit(v));
}

TEST(NnfTest, NegatedComparisonFlipsOperator) {
  FormulaPtr f = ToNnf(NotF(Term("a", "x", CompareOp::kLt, 3)));
  ASSERT_EQ(f->kind(), FormulaKind::kCompare);
  EXPECT_EQ(f->term().op, CompareOp::kGe);
  EXPECT_TRUE(IsNnf(*f));
}

TEST(NnfTest, DeMorganAnd) {
  FormulaPtr f = ToNnf(NotF(Term("a", "x", CompareOp::kEq, 1) &&
                            Term("a", "y", CompareOp::kEq, 2)));
  ASSERT_EQ(f->kind(), FormulaKind::kOr);
  EXPECT_EQ(f->children()[0]->term().op, CompareOp::kNe);
  EXPECT_EQ(f->children()[1]->term().op, CompareOp::kNe);
}

TEST(NnfTest, DeMorganOr) {
  FormulaPtr f = ToNnf(NotF(Term("a", "x", CompareOp::kEq, 1) ||
                            Term("a", "y", CompareOp::kEq, 2)));
  ASSERT_EQ(f->kind(), FormulaKind::kAnd);
}

TEST(NnfTest, QuantifierDuality) {
  FormulaPtr not_some =
      ToNnf(NotF(dsl::Some("p", "papers", Term("p", "pyear", CompareOp::kEq,
                                               1977))));
  ASSERT_EQ(not_some->kind(), FormulaKind::kQuant);
  EXPECT_EQ(not_some->quantifier(), Quantifier::kAll);
  EXPECT_EQ(not_some->child().term().op, CompareOp::kNe);

  FormulaPtr not_all =
      ToNnf(NotF(dsl::All("p", "papers", Term("p", "pyear", CompareOp::kEq,
                                              1977))));
  EXPECT_EQ(not_all->quantifier(), Quantifier::kSome);
}

TEST(NnfTest, DoubleNegationCancels) {
  FormulaPtr f = ToNnf(NotF(NotF(Term("a", "x", CompareOp::kLt, 3))));
  ASSERT_EQ(f->kind(), FormulaKind::kCompare);
  EXPECT_EQ(f->term().op, CompareOp::kLt);
}

TEST(NnfTest, NegatedConstants) {
  EXPECT_FALSE(ToNnf(NotF(Formula::True()))->const_value());
  EXPECT_TRUE(ToNnf(NotF(Formula::False()))->const_value());
}

TEST(NnfTest, ExtendedRangeSurvivesDuality) {
  FormulaPtr f = ToNnf(NotF(dsl::SomeIn(
      "c", "courses", Term("c", "clevel", CompareOp::kLe, 1),
      Term("c", "cnr", CompareOp::kEq, 5))));
  ASSERT_EQ(f->kind(), FormulaKind::kQuant);
  EXPECT_EQ(f->quantifier(), Quantifier::kAll);
  ASSERT_TRUE(f->range().IsExtended());
  // Restriction itself is NOT negated: it stays on the range side.
  EXPECT_EQ(f->range().restriction->term().op, CompareOp::kLe);
  EXPECT_EQ(f->child().term().op, CompareOp::kNe);
}

TEST(NnfTest, DeeplyNestedMixedFormula) {
  FormulaPtr f = NotF(
      (Term("a", "x", CompareOp::kEq, 1) ||
       dsl::All("b", "r", NotF(Term("b", "y", CompareOp::kGt, 2)))) &&
      NotF(Term("a", "z", CompareOp::kLe, 3)));
  FormulaPtr nnf = ToNnf(std::move(f));
  EXPECT_TRUE(IsNnf(*nnf));
  EXPECT_EQ(FormatFormula(*nnf),
            "(a.x <> 1) AND SOME b IN r ((b.y > 2)) OR (a.z <= 3)");
}

TEST(NnfTest, IdempotentOnNnfInput) {
  FormulaPtr f = Term("a", "x", CompareOp::kEq, 1) &&
                 dsl::Some("b", "r", Term("b", "y", CompareOp::kLt, 2));
  FormulaPtr copy = f->Clone();
  FormulaPtr nnf = ToNnf(std::move(f));
  EXPECT_TRUE(nnf->Equals(*copy));
}

}  // namespace
}  // namespace pascalr
