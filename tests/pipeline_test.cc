// The pipelined combination subsystem (src/pipeline/): operator units,
// pipelined-vs-materialized tuple identity across the paper examples and
// planner levels, peak-intermediate-row accounting (pipelined <=
// materialized, strictly lower on >=3-input conjunctions), early-Close
// join-work skipping, and the SET PIPELINE / EXPLAIN surface.

#include "pipeline/compile.h"

#include <sstream>

#include <gtest/gtest.h>

#include "exec/cursor.h"
#include "opt/explain.h"
#include "opt/planner.h"
#include "pascalr/prepared.h"
#include "pascalr/session.h"
#include "pipeline/iterators.h"
#include "pipeline/shape.h"
#include "tests/query_gen.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::MakeUniversityDb;
using testing_util::QueryGenerator;
using testing_util::TupleStrings;

Ref R(RelationId rel, uint32_t slot) { return Ref{rel, slot, 1}; }

// ------------------------------------------------------------ operator units

TEST(PipelineIteratorTest, ScanAndProjectDedup) {
  RefRelation ij = RefRelation::IndirectJoin("a", "b");
  ij.Add({R(1, 0), R(2, 0)});
  ij.Add({R(1, 0), R(2, 1)});
  ij.Add({R(1, 1), R(2, 0)});

  ExecStats stats;
  PeakTracker tracker(&stats);
  // Project onto "a" with dedup: 3 child rows collapse to 2.
  auto project = std::make_unique<ProjectIter>(
      std::make_unique<ScanIter>(&ij), std::vector<int>{0},
      std::vector<std::string>{"a"}, /*dedup=*/true, &stats, &tracker);
  RefRow row;
  std::vector<RefRow> rows;
  while (true) {
    auto more = project->Next(&row);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    rows.push_back(row);
  }
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (RefRow{R(1, 0)}));
  EXPECT_EQ(rows[1], (RefRow{R(1, 1)}));
  EXPECT_EQ(stats.combination_rows, 2u);
  EXPECT_EQ(stats.peak_intermediate_rows, 2u);  // the dedup seen-set
}

TEST(PipelineIteratorTest, ProbeJoinKeyedSemiAndCross) {
  RefRelation left = RefRelation::IndirectJoin("e", "t");
  left.Add({R(1, 0), R(4, 0)});
  left.Add({R(1, 1), R(4, 1)});
  left.Add({R(1, 2), R(4, 9)});  // no partner
  RefRelation right = RefRelation::IndirectJoin("t", "c");
  right.Add({R(4, 0), R(3, 0)});
  right.Add({R(4, 0), R(3, 1)});
  right.Add({R(4, 1), R(3, 0)});

  auto drain = [](RefIterator* it) {
    std::vector<RefRow> rows;
    RefRow row;
    while (true) {
      auto more = it->Next(&row);
      EXPECT_TRUE(more.ok());
      if (!more.ok() || !*more) break;
      rows.push_back(row);
    }
    return rows;
  };

  // Full join on t: (e,t) x (t,c) -> (e,t,c), 3 pairs.
  ExecStats stats;
  ProbeJoinIter join(std::make_unique<ScanIter>(&left), &right,
                     /*left_key=*/{1}, /*right_key=*/{0},
                     /*right_extras=*/{1}, /*semi=*/false, &stats);
  EXPECT_EQ(drain(&join).size(), 3u);
  EXPECT_EQ(stats.combination_rows, 3u);

  // Semi join: one emission per matching left row, no extra columns.
  ExecStats semi_stats;
  ProbeJoinIter semi(std::make_unique<ScanIter>(&left), &right,
                     /*left_key=*/{1}, /*right_key=*/{0},
                     /*right_extras=*/{1}, /*semi=*/true, &semi_stats);
  std::vector<RefRow> semi_rows = drain(&semi);
  ASSERT_EQ(semi_rows.size(), 2u);
  EXPECT_EQ(semi_rows[0].size(), 2u);  // left columns only
  EXPECT_LT(semi_stats.combination_rows, stats.combination_rows);

  // Cross step (no shared key): |left| x |right| emissions.
  ExecStats cross_stats;
  ProbeJoinIter cross(std::make_unique<ScanIter>(&left), &right,
                      /*left_key=*/{}, /*right_key=*/{},
                      /*right_extras=*/{0, 1}, /*semi=*/false, &cross_stats);
  EXPECT_EQ(drain(&cross).size(), 9u);
}

TEST(PipelineIteratorTest, ExtendFilterConcatUnit) {
  std::vector<Ref> refs = {R(7, 0), R(7, 1), R(7, 2)};
  ExecStats stats;
  auto extend = std::make_unique<ExtendIter>(std::make_unique<UnitIter>(),
                                             &refs, &stats);
  RefRow row;
  size_t n = 0;
  while (true) {
    auto more = extend->Next(&row);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ASSERT_EQ(row.size(), 1u);
    ++n;
  }
  EXPECT_EQ(n, 3u);

  // Filter keeps rows whose two columns hold the same ref.
  RefRelation pairs = RefRelation::IndirectJoin("x", "y");
  pairs.Add({R(1, 0), R(1, 0)});
  pairs.Add({R(1, 0), R(1, 1)});
  FilterIter filter(std::make_unique<ScanIter>(&pairs), 0, 1, /*equal=*/true,
                    &stats);
  size_t kept = 0;
  while (true) {
    auto more = filter.Next(&row);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ++kept;
  }
  EXPECT_EQ(kept, 1u);

  std::vector<RefIteratorPtr> parts;
  parts.push_back(std::make_unique<UnitIter>());
  parts.push_back(std::make_unique<EmptyIter>());
  parts.push_back(std::make_unique<UnitIter>());
  ConcatIter concat(std::move(parts));
  size_t units = 0;
  while (true) {
    auto more = concat.Next(&row);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ++units;
  }
  EXPECT_EQ(units, 2u);
}

TEST(PipelineShapeTest, ExistentialAndNeededSplit) {
  // [free e] SOME t ALL p SOME c: c is inner to the ALL -> existential;
  // e, t, p survive to the tail (t is outer to the ALL).
  QueryPlan plan;
  auto add = [&](const char* var, Quantifier q) {
    QuantifiedVar qv;
    qv.var = var;
    qv.quantifier = q;
    qv.range = RangeExpr("employees");
    plan.sf.prefix.push_back(std::move(qv));
  };
  add("e", Quantifier::kFree);
  add("t", Quantifier::kSome);
  add("p", Quantifier::kAll);
  add("c", Quantifier::kSome);
  PipelineShape shape = AnalyzePipelineShape(plan);
  EXPECT_TRUE(shape.has_division);
  EXPECT_EQ(shape.free_names, (std::vector<std::string>{"e"}));
  EXPECT_EQ(shape.needed, (std::vector<std::string>{"e", "t", "p"}));
  EXPECT_EQ(shape.existential, (std::vector<std::string>{"c"}));
  EXPECT_EQ(shape.tail.size(), 3u);

  // Without the ALL every quantified variable is purely existential.
  plan.sf.prefix[2].quantifier = Quantifier::kSome;
  PipelineShape flat = AnalyzePipelineShape(plan);
  EXPECT_FALSE(flat.has_division);
  EXPECT_EQ(flat.needed, (std::vector<std::string>{"e"}));
  EXPECT_EQ(flat.existential, (std::vector<std::string>{"t", "p", "c"}));
}

// -------------------------------------------------- end-to-end equivalence

const char* const kPaperExamples[] = {
    "[<e.ename> OF EACH e IN employees: e.estatus = professor]",
    "[<e.ename> OF EACH e IN employees:"
    " SOME t IN timetable (e.enr = t.tenr)]",
    "[<e.ename> OF EACH e IN employees:"
    " (e.estatus = professor) AND"
    " (ALL p IN papers ((p.pyear <> 1977) OR (e.enr <> p.penr))"
    "  OR SOME c IN courses ((c.clevel <= sophomore)"
    "     AND SOME t IN timetable ((c.cnr = t.tcnr) AND"
    "                              (e.enr = t.tenr))))]",
    "[<e.ename, c.ctitle> OF EACH e IN employees, EACH c IN courses:"
    " SOME t IN timetable ((e.enr = t.tenr) AND (c.cnr = t.tcnr))]",
};

// A 3-input conjunction at levels 1/2: one conjunction joining ij(e,t),
// ij(c,t) and the monadic restriction on c.
const char* kThreeInputConjunction =
    "[<e.ename> OF EACH e IN employees:"
    " SOME c IN courses SOME t IN timetable"
    " ((c.clevel <= sophomore) AND (c.cnr = t.tcnr) AND (e.enr = t.tenr))]";

TEST(PipelineEquivalenceTest, PaperExamplesAcrossLevelsAndModes) {
  for (int level = 0; level <= 5; ++level) {
    auto db = MakeUniversityDb();
    ASSERT_TRUE(db->AnalyzeAll().ok());
    for (const char* src : kPaperExamples) {
      Session on(db.get());
      on.options().level = static_cast<OptLevel>(level);
      on.options().pipeline = true;
      Session off(db.get());
      off.options().level = static_cast<OptLevel>(level);
      off.options().pipeline = false;
      auto run_on = on.Query(src);
      auto run_off = off.Query(src);
      ASSERT_TRUE(run_on.ok()) << run_on.status().ToString();
      ASSERT_TRUE(run_off.ok()) << run_off.status().ToString();
      EXPECT_EQ(TupleStrings(run_on->tuples), TupleStrings(run_off->tuples))
          << "level " << level << "\n" << src;
    }
  }
}

TEST(PipelineEquivalenceTest, CursorActuallyStreamsAndMatches) {
  auto db = MakeUniversityDb();
  Session session(db.get());
  for (const char* src : kPaperExamples) {
    auto prepared = session.Prepare(src);
    ASSERT_TRUE(prepared.ok());
    auto cursor = prepared->OpenCursor();
    ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
    EXPECT_TRUE(cursor->pipelined()) << src;
    // Open ran only the collection phase: no combination row exists yet.
    EXPECT_EQ(cursor->stats().combination_rows, 0u) << src;
    std::vector<Tuple> streamed;
    Tuple t;
    while (true) {
      auto more = cursor->Next(&t);
      ASSERT_TRUE(more.ok()) << more.status().ToString();
      if (!*more) break;
      streamed.push_back(std::move(t));
    }
    cursor->Close();

    PlannerOptions materialized = session.options();
    materialized.pipeline = false;
    auto reference =
        RunQuery(*db, testing_util::MustBind(*db, src), materialized);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(TupleStrings(streamed), TupleStrings(reference->tuples)) << src;
  }
}

TEST(PipelineEquivalenceTest, DivisionPathIsIdenticalFromTheBufferOn) {
  // Example 2.1 has the universal quantifier: the pipelined division
  // input must be the very relation the materializing path divides, so
  // the division work counters agree exactly.
  auto db = MakeUniversityDb();
  Session session(db.get());
  auto prepared = session.Prepare(Example21QuerySource());
  ASSERT_TRUE(prepared.ok());
  auto cursor = prepared->OpenCursor();
  ASSERT_TRUE(cursor.ok());
  ASSERT_TRUE(cursor->pipelined());
  Tuple t;
  std::vector<Tuple> streamed;
  while (true) {
    auto more = cursor->Next(&t);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    streamed.push_back(std::move(t));
  }
  ExecStats pipelined = cursor->stats();
  cursor->Close();

  PlannerOptions materialized = session.options();
  materialized.pipeline = false;
  auto reference = RunQuery(
      *db, testing_util::MustBind(*db, Example21QuerySource()), materialized);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(TupleStrings(streamed), TupleStrings(reference->tuples));
  EXPECT_EQ(pipelined.division_input_rows,
            reference->stats.division_input_rows);
  EXPECT_EQ(pipelined.dereferences, reference->stats.dereferences);
}

// ---------------------------------------------------------- peak accounting

struct ModeStats {
  ExecStats stats;
  size_t tuples = 0;
};

ModeStats RunMode(Database* db, const std::string& src, OptLevel level,
                  bool pipeline) {
  Session session(db);
  session.options().level = level;
  session.options().pipeline = pipeline;
  auto run = session.Query(src);
  EXPECT_TRUE(run.ok()) << run.status().ToString() << "\n" << src;
  ModeStats out;
  if (run.ok()) {
    out.stats = run->stats;
    out.tuples = run->tuples.size();
  }
  return out;
}

TEST(PipelinePeakTest, PipelinedPeakNeverExceedsMaterializedOnPaperExamples) {
  for (const char* src : kPaperExamples) {
    for (int level = 0; level <= 4; ++level) {
      auto db = MakeUniversityDb();
      ModeStats mat = RunMode(db.get(), src, static_cast<OptLevel>(level),
                              /*pipeline=*/false);
      ModeStats pipe = RunMode(db.get(), src, static_cast<OptLevel>(level),
                               /*pipeline=*/true);
      EXPECT_EQ(pipe.tuples, mat.tuples) << src;
      EXPECT_LE(pipe.stats.peak_intermediate_rows,
                mat.stats.peak_intermediate_rows)
          << "level " << level << "\n" << src;
    }
  }
}

TEST(PipelinePeakTest, StrictlyLowerOnThreeInputConjunctions) {
  // Levels whose plans feed >=3 structures into one conjunction; the
  // materializing path must hold a join intermediate the pipeline never
  // builds.
  UniversityScale scale;
  scale.employees = 24;
  scale.papers = 40;
  scale.courses = 13;
  scale.timetable = 72;
  scale.seed = 11;
  for (OptLevel level : {OptLevel::kParallel, OptLevel::kOneStep}) {
    auto db = MakeUniversityDb(/*populate=*/false);
    ASSERT_TRUE(PopulateSynthetic(db.get(), scale).ok());
    ModeStats mat =
        RunMode(db.get(), kThreeInputConjunction, level, /*pipeline=*/false);
    ModeStats pipe =
        RunMode(db.get(), kThreeInputConjunction, level, /*pipeline=*/true);
    EXPECT_EQ(pipe.tuples, mat.tuples);
    EXPECT_GT(mat.stats.peak_intermediate_rows, 0u);
    EXPECT_LT(pipe.stats.peak_intermediate_rows,
              mat.stats.peak_intermediate_rows)
        << OptLevelToString(level);
  }
  // Generated >=3-input chain conjunctions keep the strict gap too.
  QueryGenerator gen(20260728);
  auto db = MakeUniversityDb(/*populate=*/false);
  ASSERT_TRUE(PopulateSynthetic(db.get(), scale).ok());
  size_t strict = 0, total = 0;
  for (int i = 0; i < 8; ++i) {
    SelectionExpr sel = gen.RandomChainSelection(3, 0.3);
    Binder binder(db.get());
    auto bound_on = binder.Bind(sel.Clone());
    auto bound_off = binder.Bind(sel.Clone());
    ASSERT_TRUE(bound_on.ok() && bound_off.ok());
    PlannerOptions on, off;
    on.level = off.level = OptLevel::kParallel;
    on.pipeline = true;
    off.pipeline = false;
    auto run_off = RunQuery(*db, std::move(bound_off).value(), off);
    ASSERT_TRUE(run_off.ok());
    // The pipelined side goes through the cursor (RunQuery always
    // materializes); Session::Query uses the cursor.
    Session session(db.get());
    session.options() = on;
    Binder rebinder(db.get());
    auto prepared = session.PrepareSelection(std::move(sel));
    ASSERT_TRUE(prepared.ok());
    auto exec = prepared->Execute();
    ASSERT_TRUE(exec.ok());
    EXPECT_EQ(TupleStrings(exec->tuples), TupleStrings(run_off->tuples));
    ++total;
    EXPECT_LE(exec->stats.peak_intermediate_rows,
              run_off->stats.peak_intermediate_rows);
    if (exec->stats.peak_intermediate_rows <
        run_off->stats.peak_intermediate_rows) {
      ++strict;
    }
  }
  EXPECT_GE(strict, total / 2) << "pipelining should beat materialization "
                                  "on most 3-join chains";
}

// ------------------------------------------------------------- early close

TEST(PipelineEarlyCloseTest, CloseAfterOneTupleSkipsJoinWork) {
  UniversityScale scale;
  scale.employees = 48;
  scale.papers = 80;
  scale.courses = 25;
  scale.timetable = 144;
  scale.seed = 3;
  auto db = MakeUniversityDb(/*populate=*/false);
  ASSERT_TRUE(PopulateSynthetic(db.get(), scale).ok());
  const std::string src =
      "[<e.ename, c.ctitle> OF EACH e IN employees, EACH c IN courses:"
      " SOME t IN timetable ((e.enr = t.tenr) AND (c.cnr = t.tcnr))]";

  Session session(db.get());
  // Early close skips work at chunk granularity: under the default
  // 1024-row batch the whole combination fits in the first pull at this
  // scale, so pin a small batch to keep the streaming skip observable.
  ASSERT_TRUE(session.ExecuteScript("SET BATCH 16;").ok());
  auto prepared = session.Prepare(src);
  ASSERT_TRUE(prepared.ok());

  auto full = prepared->OpenCursor();
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(full->pipelined());
  Tuple t;
  size_t results = 0;
  while (true) {
    auto more = full->Next(&t);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ++results;
  }
  ExecStats drained = full->stats();
  full->Close();
  ASSERT_GT(results, 4u) << "query too selective to observe streaming";

  auto partial = prepared->OpenCursor();
  ASSERT_TRUE(partial.ok());
  auto more = partial->Next(&t);
  ASSERT_TRUE(more.ok() && *more);
  ExecStats early = partial->stats();
  partial->Close();

  // Closing after one tuple moved strictly fewer join counters than
  // draining: the unperformed combination work never happened.
  EXPECT_LT(early.combination_rows, drained.combination_rows);
  EXPECT_LT(early.dereferences, drained.dereferences);
  EXPECT_LT(early.TotalWork(), drained.TotalWork());
}

// ------------------------------------------------------------ SQL / EXPLAIN

TEST(PipelineSurfaceTest, SetPipelineStatementAndExplainMode) {
  auto db = MakeUniversityDb();
  std::ostringstream out;
  Session session(db.get(), &out);
  EXPECT_TRUE(session.options().pipeline);

  ASSERT_TRUE(session.ExecuteScript("SET PIPELINE OFF;").ok());
  EXPECT_FALSE(session.options().pipeline);
  auto text_off = session.Explain(kPaperExamples[1]);
  ASSERT_TRUE(text_off.ok());
  EXPECT_NE(text_off->find("mode: materialized"), std::string::npos)
      << *text_off;

  ASSERT_TRUE(session.ExecuteScript("SET PIPELINE ON;").ok());
  EXPECT_TRUE(session.options().pipeline);
  auto text_on = session.Explain(kPaperExamples[1]);
  ASSERT_TRUE(text_on.ok());
  EXPECT_NE(text_on->find("mode: pipelined"), std::string::npos) << *text_on;

  EXPECT_FALSE(session.ExecuteScript("SET PIPELINE MAYBE;").ok());
}

TEST(PipelineSurfaceTest, TogglingPipelineInvalidatesCachedPlans) {
  auto db = MakeUniversityDb();
  Session session(db.get());
  auto prepared = session.Prepare(kPaperExamples[1]);
  ASSERT_TRUE(prepared.ok());
  auto first = prepared->Execute();
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->plan_cache_hit);
  auto second = prepared->Execute();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->plan_cache_hit);

  session.options().pipeline = false;  // options changed -> replan
  auto third = prepared->Execute();
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->plan_cache_hit);
  EXPECT_EQ(TupleStrings(third->tuples), TupleStrings(first->tuples));
}

TEST(PipelineSurfaceTest, ExplainRendersIteratorTreeWithCardinalities) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  std::ostringstream out;
  Session session(db.get(), &out);
  // The 3-input conjunction at level 2 with fresh stats attaches a tree;
  // pipelined EXPLAIN renders it as the iterator chain.
  ASSERT_TRUE(session.ExecuteScript("SET OPTLEVEL 2;").ok());
  auto text = session.Explain(kThreeInputConjunction);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("mode: pipelined"), std::string::npos) << *text;
  EXPECT_NE(text->find("existential-only vars"), std::string::npos) << *text;
  EXPECT_NE(text->find("pipelined sink"), std::string::npos) << *text;
}

}  // namespace
}  // namespace pascalr
