#include "opt/explain.h"

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "pascalr/sample_db.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::MakeUniversityDb;
using testing_util::MustBind;

std::string ExplainAt(const Database& db, const std::string& query,
                      OptLevel level) {
  PlannerOptions options;
  options.level = level;
  Result<PlannedQuery> planned = PlanQuery(db, MustBind(db, query), options);
  EXPECT_TRUE(planned.ok()) << planned.status().ToString();
  return ExplainPlan(*planned);
}

TEST(ExplainTest, NaiveLevelShowsRepeatedScans) {
  auto db = MakeUniversityDb();
  std::string text = ExplainAt(*db, Example21QuerySource(), OptLevel::kNaive);
  EXPECT_NE(text.find("O0 (naive Palermo)"), std::string::npos);
  // employees is scanned for several separate structures.
  size_t first = text.find("scan employees");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(text.find("scan employees", first + 1), std::string::npos);
}

TEST(ExplainTest, Strategy1OneScanPerRelation) {
  auto db = MakeUniversityDb();
  std::string text =
      ExplainAt(*db, Example21QuerySource(), OptLevel::kParallel);
  size_t first = text.find("scan employees");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("scan employees", first + 1), std::string::npos);
}

TEST(ExplainTest, Strategy2ShowsGates) {
  auto db = MakeUniversityDb();
  std::string text =
      ExplainAt(*db, Example21QuerySource(), OptLevel::kOneStep);
  EXPECT_NE(text.find(" IF "), std::string::npos);
  EXPECT_NE(text.find("professor"), std::string::npos);
}

TEST(ExplainTest, Strategy3ShowsExtendedRanges) {
  auto db = MakeUniversityDb();
  std::string text =
      ExplainAt(*db, Example21QuerySource(), OptLevel::kRangeExt);
  EXPECT_NE(text.find("range of e extended"), std::string::npos);
  EXPECT_NE(text.find("[EACH p IN papers: (p.pyear = 1977)]"),
            std::string::npos);
}

TEST(ExplainTest, Strategy4ShowsValueListsAndEliminations) {
  auto db = MakeUniversityDb();
  std::string text =
      ExplainAt(*db, Example21QuerySource(), OptLevel::kQuantPush);
  EXPECT_NE(text.find("evaluated in the collection phase"),
            std::string::npos);
  EXPECT_NE(text.find("value list"), std::string::npos);
  EXPECT_NE(text.find("already evaluated in collection phase"),
            std::string::npos);
}

TEST(ExplainTest, DivisionAndProjectionAnnounced) {
  auto db = MakeUniversityDb();
  std::string text =
      ExplainAt(*db, Example21QuerySource(), OptLevel::kOneStep);
  EXPECT_NE(text.find("ALL p: division"), std::string::npos);
  EXPECT_NE(text.find("SOME t: projection"), std::string::npos);
  EXPECT_NE(text.find("construction phase"), std::string::npos);
}

TEST(ExplainTest, CollectionExhibitListsFigure2Structures) {
  auto db = MakeUniversityDb();
  PlannerOptions options;
  options.level = OptLevel::kOneStep;
  Result<PlannedQuery> planned =
      PlanQuery(*db, MustBind(*db, Example21QuerySource()), options);
  ASSERT_TRUE(planned.ok());
  ExecStats stats;
  Result<ExecOutcome> outcome = ExecutePlan(planned->plan, *db, &stats);
  ASSERT_TRUE(outcome.ok());
  std::string text = ExplainCollection(planned->plan, outcome->collection);
  EXPECT_NE(text.find("rows"), std::string::npos);
  EXPECT_NE(text.find("range(e): 6 refs"), std::string::npos);
  EXPECT_NE(text.find("ind_"), std::string::npos);
}

TEST(ExplainTest, AdaptationNotesSurface) {
  auto db = MakeUniversityDb();
  db->FindRelation("papers")->Clear();
  std::string text =
      ExplainAt(*db, Example21QuerySource(), OptLevel::kOneStep);
  EXPECT_NE(text.find("runtime adaptation"), std::string::npos);
  EXPECT_NE(text.find("Lemma 1"), std::string::npos);
}

}  // namespace
}  // namespace pascalr
