// The plan-search driver (OptLevel::kAuto): the acceptance bar is that on
// the sample database plus a batch of generated queries, the auto-chosen
// plan's measured work never exceeds 1.25x the best fixed-level plan.

#include <gtest/gtest.h>

#include "cost/plan_search.h"
#include "opt/explain.h"
#include "opt/planner.h"
#include "pascalr/sample_db.h"
#include "pascalr/session.h"
#include "tests/query_gen.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::MakeUniversityDb;
using testing_util::MustBind;
using testing_util::QueryGenerator;

constexpr double kRegretBound = 1.25;

struct LevelRun {
  OptLevel level = OptLevel::kNaive;
  uint64_t work = 0;
};

/// Runs `sel` at every fixed level and returns the cheapest by measured
/// TotalWork (levels are tried in ascending order; ties keep the lower).
Result<LevelRun> BestFixedLevel(const Database& db, const SelectionExpr& sel) {
  Binder binder(&db);
  LevelRun best;
  bool have = false;
  for (int level = 0; level <= 4; ++level) {
    PASCALR_ASSIGN_OR_RETURN(BoundQuery bound, binder.Bind(sel.Clone()));
    PlannerOptions options;
    options.level = static_cast<OptLevel>(level);
    PASCALR_ASSIGN_OR_RETURN(QueryRun run,
                             RunQuery(db, std::move(bound), options));
    if (!have || run.stats.TotalWork() < best.work) {
      best.level = options.level;
      best.work = run.stats.TotalWork();
      have = true;
    }
  }
  return best;
}

Result<QueryRun> RunAuto(const Database& db, const SelectionExpr& sel) {
  Binder binder(&db);
  PASCALR_ASSIGN_OR_RETURN(BoundQuery bound, binder.Bind(sel.Clone()));
  PlannerOptions options;
  options.level = OptLevel::kAuto;
  // RunQuery executes the materializing path, so rank candidates in the
  // mode this regret sweep measures. The pipelined ranking has its own
  // sweep below, measured in pipelined work through the cursor.
  options.pipeline = false;
  return RunQuery(db, std::move(bound), options);
}

void ExpectAutoWithinRegret(const Database& db, const SelectionExpr& sel,
                            const std::string& what) {
  Result<LevelRun> best = BestFixedLevel(db, sel);
  ASSERT_TRUE(best.ok()) << what << ": " << best.status().ToString();
  Result<QueryRun> auto_run = RunAuto(db, sel);
  ASSERT_TRUE(auto_run.ok()) << what << ": "
                             << auto_run.status().ToString();
  EXPECT_TRUE(auto_run->planned.cost_based) << what;
  uint64_t auto_work = auto_run->stats.TotalWork();
  double bound =
      kRegretBound * static_cast<double>(best->work);
  EXPECT_LE(static_cast<double>(auto_work), bound)
      << what << ": auto chose "
      << OptLevelToString(auto_run->planned.plan.level) << " with work "
      << auto_work << " but best fixed level "
      << OptLevelToString(best->level) << " needs only " << best->work
      << "\n"
      << auto_run->planned.cost_candidates
      << ExplainEstimatedVsActual(auto_run->planned, auto_run->stats);
}

SelectionExpr ParseSelection(const std::string& source) {
  Parser parser(source);
  Result<SelectionExpr> sel = parser.ParseSelectionOnly();
  EXPECT_TRUE(sel.ok()) << sel.status().ToString();
  return std::move(sel).value();
}

TEST(AutoPlannerTest, PaperExamplesWithinRegretBound) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  ExpectAutoWithinRegret(*db, ParseSelection(Example21QuerySource()),
                         "example 2.1 (small)");
  ExpectAutoWithinRegret(*db, ParseSelection(Example45QuerySource()),
                         "example 4.5 (small)");
}

TEST(AutoPlannerTest, PaperExamplesOnSyntheticDbWithinRegretBound) {
  auto db = MakeUniversityDb(/*populate=*/false);
  // Kept small enough that the *naive* baseline stays feasible: the
  // regret comparison must run every fixed level, and O0 materialises
  // near-Cartesian intermediates.
  UniversityScale scale;
  scale.employees = 16;
  scale.papers = 32;
  scale.courses = 9;
  scale.timetable = 48;
  ASSERT_TRUE(PopulateSynthetic(db.get(), scale).ok());
  ASSERT_TRUE(db->AnalyzeAll().ok());
  ExpectAutoWithinRegret(*db, ParseSelection(Example21QuerySource()),
                         "example 2.1 (synthetic)");
  ExpectAutoWithinRegret(*db, ParseSelection(Example45QuerySource()),
                         "example 4.5 (synthetic)");
}

TEST(AutoPlannerTest, GeneratedQueriesWithinRegretBound) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  size_t checked = 0;
  for (uint64_t seed = 1; checked < 24 && seed <= 200; ++seed) {
    QueryGenerator gen(seed);
    SelectionExpr sel = gen.RandomSelection();
    // Only queries every fixed level can run qualify as a comparison.
    Result<LevelRun> best = BestFixedLevel(*db, sel);
    if (!best.ok()) continue;
    ++checked;
    ExpectAutoWithinRegret(*db, sel,
                           "generated seed " + std::to_string(seed));
  }
  EXPECT_GE(checked, 24u);
}

TEST(AutoPlannerTest, GeneratedTwoFreeQueriesWithinRegretBound) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  size_t checked = 0;
  for (uint64_t seed = 300; checked < 8 && seed <= 400; ++seed) {
    QueryGenerator gen(seed);
    SelectionExpr sel = gen.RandomSelectionTwoFree();
    Result<LevelRun> best = BestFixedLevel(*db, sel);
    if (!best.ok()) continue;
    ++checked;
    ExpectAutoWithinRegret(*db, sel,
                           "generated two-free seed " + std::to_string(seed));
  }
  EXPECT_GE(checked, 8u);
}

TEST(AutoPlannerTest, AutoChoosesConcreteLevelAndReportsCandidates) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  Result<QueryRun> run =
      RunAuto(*db, ParseSelection(Example21QuerySource()));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->planned.cost_based);
  EXPECT_LE(static_cast<int>(run->planned.plan.level), 4);
  EXPECT_NE(run->planned.cost_candidates.find("chosen: O"),
            std::string::npos);
  // Every strategy level appears in the candidate table.
  for (int level = 0; level <= 4; ++level) {
    EXPECT_NE(run->planned.cost_candidates.find("O" + std::to_string(level)),
              std::string::npos);
  }
}

TEST(AutoPlannerTest, PruningNeverDiscardsAWinningNaiveCandidate) {
  // Soundness sweep: wherever the search pruned O0 (term-heavy queries
  // whose per-term scans alone exceed the best grouped plan's cost),
  // compiling O0 by hand must cost at least the chosen candidate.
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  size_t pruned_queries = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    QueryGenerator gen(seed);
    SelectionExpr sel = gen.RandomSelection();
    Binder binder(db.get());
    Result<BoundQuery> bound = binder.Bind(sel.Clone());
    if (!bound.ok()) continue;
    PlannerOptions auto_options;
    auto_options.level = OptLevel::kAuto;
    Result<PlannedQuery> chosen =
        PlanQuery(*db, CloneBoundQuery(*bound), auto_options);
    if (!chosen.ok()) continue;
    if (chosen->cost_candidates.find("pruned") == std::string::npos) {
      continue;
    }
    ++pruned_queries;
    PlannerOptions naive_options;
    naive_options.level = OptLevel::kNaive;
    Result<PlannedQuery> naive =
        PlanQuery(*db, CloneBoundQuery(*bound), naive_options);
    ASSERT_TRUE(naive.ok()) << naive.status().ToString();
    CostEstimate naive_cost = EstimatePlanCost(naive->plan, *db);
    EXPECT_GE(naive_cost.weighted_cost, chosen->estimate.weighted_cost)
        << "seed " << seed << "\n"
        << chosen->cost_candidates;
  }
  // The sweep is only meaningful if pruning fired at least once.
  EXPECT_GE(pruned_queries, 1u);
}

// ----------------------------------------------------------------------
// Mode-aware ranking (the ROADMAP item): sessions that execute the
// streamed combination rank kAuto candidates by the pipelined work
// estimate. The regret sweep measures in *pipelined actual work* — every
// run below goes through the prepared cursor with pipeline on — against
// the best fixed level executed the same way.

struct PipelinedRun {
  OptLevel level = OptLevel::kNaive;
  uint64_t work = 0;
  std::string candidates;  ///< kAuto only
};

/// Drains `sel` through the pipelined cursor at the given level and
/// returns the measured work.
Result<PipelinedRun> RunPipelined(Database* db, const SelectionExpr& sel,
                                  OptLevel level) {
  Session session(db);
  session.options().level = level;
  session.options().pipeline = true;
  PASCALR_ASSIGN_OR_RETURN(PreparedQuery prepared,
                           session.PrepareSelection(sel.Clone()));
  PASCALR_ASSIGN_OR_RETURN(PreparedExecution exec, prepared.Execute());
  PipelinedRun out;
  out.work = exec.stats.TotalWork();
  const PlannedQuery* planned = prepared.planned();
  if (planned != nullptr) {
    out.level = planned->plan.level;
    out.candidates = planned->cost_candidates;
  }
  return out;
}

Result<PipelinedRun> BestFixedLevelPipelined(Database* db,
                                             const SelectionExpr& sel) {
  PipelinedRun best;
  bool have = false;
  for (int level = 0; level <= 4; ++level) {
    PASCALR_ASSIGN_OR_RETURN(
        PipelinedRun run,
        RunPipelined(db, sel, static_cast<OptLevel>(level)));
    if (!have || run.work < best.work) {
      best = run;
      best.level = static_cast<OptLevel>(level);
      have = true;
    }
  }
  return best;
}

/// `best` is the caller's BestFixedLevelPipelined result — callers have
/// already run the fixed-level sweep to qualify the query, so it is
/// passed in rather than recomputed (it is the dominant cost per seed).
void ExpectPipelinedAutoWithinRegret(Database* db, const SelectionExpr& sel,
                                     const PipelinedRun& best,
                                     const std::string& what) {
  Result<PipelinedRun> auto_run = RunPipelined(db, sel, OptLevel::kAuto);
  ASSERT_TRUE(auto_run.ok()) << what << ": "
                             << auto_run.status().ToString();
  EXPECT_NE(auto_run->candidates.find("ranking: pipelined work"),
            std::string::npos)
      << what << ": kAuto under a pipelined session must rank by the "
      << "pipelined estimate\n"
      << auto_run->candidates;
  double bound = kRegretBound * static_cast<double>(best.work);
  EXPECT_LE(static_cast<double>(auto_run->work), bound)
      << what << ": pipelined auto chose "
      << OptLevelToString(auto_run->level) << " with work "
      << auto_run->work << " but best fixed level "
      << OptLevelToString(best.level) << " needs only " << best.work
      << "\n"
      << auto_run->candidates;
}

TEST(AutoPlannerTest, PipelinedRankingPaperExamplesWithinRegretBound) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  for (const auto& [source, what] :
       {std::pair<std::string, std::string>{Example21QuerySource(),
                                            "example 2.1 (pipelined)"},
        {Example45QuerySource(), "example 4.5 (pipelined)"}}) {
    SelectionExpr sel = ParseSelection(source);
    Result<PipelinedRun> best = BestFixedLevelPipelined(db.get(), sel);
    ASSERT_TRUE(best.ok()) << what << ": " << best.status().ToString();
    ExpectPipelinedAutoWithinRegret(db.get(), sel, *best, what);
  }
}

TEST(AutoPlannerTest, PipelinedRankingGeneratedQueriesWithinRegretBound) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  size_t checked = 0;
  for (uint64_t seed = 1; checked < 32 && seed <= 300; ++seed) {
    QueryGenerator gen(seed);
    SelectionExpr sel =
        seed % 3 == 0 ? gen.RandomSelectionTwoFree() : gen.RandomSelection();
    // Only queries every fixed level can run qualify as a comparison.
    Result<PipelinedRun> best = BestFixedLevelPipelined(db.get(), sel);
    if (!best.ok()) continue;
    ++checked;
    ExpectPipelinedAutoWithinRegret(
        db.get(), sel, *best,
        "pipelined generated seed " + std::to_string(seed));
  }
  EXPECT_GE(checked, 32u);
}

TEST(AutoPlannerTest, MaterializingSessionKeepsMaterializingRanking) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  Binder binder(db.get());
  Result<BoundQuery> bound =
      binder.Bind(ParseSelection(Example21QuerySource()).Clone());
  ASSERT_TRUE(bound.ok());
  PlannerOptions options;
  options.level = OptLevel::kAuto;
  options.pipeline = false;
  Result<PlannedQuery> planned =
      PlanQuery(*db, std::move(bound).value(), options);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_EQ(planned->cost_candidates.find("ranking: pipelined work"),
            std::string::npos)
      << planned->cost_candidates;
}

TEST(AutoPlannerTest, CostBasedFlagEquivalentToAutoLevel) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  Binder binder(db.get());
  Result<BoundQuery> bound =
      binder.Bind(ParseSelection(Example21QuerySource()).Clone());
  ASSERT_TRUE(bound.ok());
  PlannerOptions options;
  options.level = OptLevel::kOneStep;  // concrete level, but...
  options.cost_based = true;           // ...the flag forces the search
  Result<PlannedQuery> planned =
      PlanQuery(*db, std::move(bound).value(), options);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_TRUE(planned->cost_based);
}

}  // namespace
}  // namespace pascalr
