// The self-observing engine, observed: the sys$ system relations must
// report EXACTLY what happened — the acceptance bar is that a
// sys$statements row's aggregates match, bit for bit, the totals an
// independent tally of the same multi-session workload produces — and
// their materialization must be snapshot-consistent under concurrent
// writers (run under TSan in CI), invisible to the plan cache, and
// excluded from ANALYZE and script export.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "concurrency/session_manager.h"
#include "obs/stmt_stats.h"
#include "obs/system_relations.h"
#include "pascalr/export.h"
#include "pascalr/session.h"
#include "test_util.h"

namespace pascalr {
namespace {

using testing_util::MakeUniversityDb;

const char kWorkloadQuery[] = "[<e.ename> OF EACH e IN employees: e.enr >= 1]";
// FormatSelection normalization of the above — the sys$statements key.
const char kWorkloadFingerprint[] =
    "[<e.ename> OF EACH e IN employees: (e.enr >= 1)]";

TEST(SystemRelationsTest, StatementsRowMatchesMultiSessionWorkloadExactly) {
  auto db = MakeUniversityDb();
  SessionManager manager(db.get());

  constexpr int kThreads = 4;
  constexpr int kExecsPerThread = 16;

  // Independent tally of the workload: every thread records its own
  // latencies' side of the story — rows, cache verdicts, and an ExecStats
  // merge — exactly the way the store folds them.
  struct Tally {
    uint64_t calls = 0;
    uint64_t rows = 0;
    uint64_t plan_hits = 0;
    ExecStats counters;
  };
  std::vector<Tally> tallies(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto session = manager.CreateSession();
      auto prepared = session->Prepare(kWorkloadQuery);
      ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
      for (int i = 0; i < kExecsPerThread; ++i) {
        auto exec = prepared->Execute({});
        ASSERT_TRUE(exec.ok()) << exec.status().ToString();
        Tally& tally = tallies[t];
        ++tally.calls;
        tally.rows += exec->tuples.size();
        if (exec->plan_cache_hit) ++tally.plan_hits;
        tally.counters.Merge(exec->stats);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  Tally expected;
  for (const Tally& tally : tallies) {
    expected.calls += tally.calls;
    expected.rows += tally.rows;
    expected.plan_hits += tally.plan_hits;
    expected.counters.Merge(tally.counters);
  }
  ASSERT_EQ(expected.calls,
            static_cast<uint64_t>(kThreads) * kExecsPerThread);

  // First oracle: the store itself.
  StmtStatsSnapshot direct = db->stmt_stats().SnapshotOne(kWorkloadFingerprint);
  EXPECT_EQ(direct.calls, expected.calls);
  EXPECT_EQ(direct.rows, expected.rows);
  EXPECT_EQ(direct.plan_hits, expected.plan_hits);
  EXPECT_EQ(direct.plan_misses, expected.calls - expected.plan_hits);

  // Second oracle, the acceptance bar: the same numbers read back through
  // the engine's own query language from sys$statements.
  auto session = manager.CreateSession();
  auto run = session->Query(
      std::string("[<s.calls, s.rows, s.plan_hits, s.plan_misses, "
                  "s.elements_scanned, s.comparisons, s.dereferences, "
                  "s.peak_intermediate_rows, s.total_work> "
                  "OF EACH s IN sys$statements: s.fingerprint = '") +
      kWorkloadFingerprint + "']");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->tuples.size(), 1u);
  const Tuple& row = run->tuples[0];
  EXPECT_EQ(row.at(0).AsInt(), static_cast<int64_t>(expected.calls));
  EXPECT_EQ(row.at(1).AsInt(), static_cast<int64_t>(expected.rows));
  EXPECT_EQ(row.at(2).AsInt(), static_cast<int64_t>(expected.plan_hits));
  EXPECT_EQ(row.at(3).AsInt(),
            static_cast<int64_t>(expected.calls - expected.plan_hits));
  EXPECT_EQ(row.at(4).AsInt(),
            static_cast<int64_t>(expected.counters.elements_scanned));
  EXPECT_EQ(row.at(5).AsInt(),
            static_cast<int64_t>(expected.counters.comparisons));
  EXPECT_EQ(row.at(6).AsInt(),
            static_cast<int64_t>(expected.counters.dereferences));
  EXPECT_EQ(row.at(7).AsInt(),
            static_cast<int64_t>(expected.counters.peak_intermediate_rows));
  EXPECT_EQ(row.at(8).AsInt(),
            static_cast<int64_t>(expected.counters.TotalWork()));

  // And the server-wide metrics agree with the store's grand totals.
  auto counters = db->server_metrics().CountersSnapshot();
  uint64_t store_calls = 0;
  for (const StmtStatsSnapshot& s : db->stmt_stats().SnapshotAll()) {
    store_calls += s.calls;
  }
  EXPECT_EQ(counters["server.query.count"], store_calls);
}

TEST(SystemRelationsTest, ScansAreSnapshotConsistentUnderConcurrentWriters) {
  auto db = MakeUniversityDb();
  SessionManager manager(db.get());

  constexpr int kWriters = 2;
  constexpr int kInsertsPerWriter = 40;
  std::atomic<bool> writers_done{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto session = manager.CreateSession();
      const int base = 5000 + w * 1000;
      for (int i = 0; i < kInsertsPerWriter; ++i) {
        std::string stmt = "employees :+ [<" + std::to_string(base + i) +
                           ", 'W" + std::to_string(w) + "x" +
                           std::to_string(i) + "', student>];";
        Status status = session->ExecuteScript(stmt);
        ASSERT_TRUE(status.ok()) << status.ToString();
      }
    });
  }

  // Readers poll the employees row of sys$relations while the writers
  // run. Each refresh happens before the reading snapshot is captured and
  // publishes atomically, so cardinality may only move forward (inserts
  // only) and must never show a torn in-between state or a bind failure.
  std::vector<std::thread> readers;
  constexpr int kReaders = 2;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      auto session = manager.CreateSession();
      int64_t last = 0;
      do {
        auto run = session->Query(
            "[<t.cardinality> OF EACH t IN sys$relations: "
            "t.name = 'employees']");
        ASSERT_TRUE(run.ok()) << run.status().ToString();
        ASSERT_EQ(run->tuples.size(), 1u);
        const int64_t cardinality = run->tuples[0].at(0).AsInt();
        EXPECT_GE(cardinality, last) << "cardinality went backwards";
        last = cardinality;
      } while (!writers_done.load(std::memory_order_acquire));
    });
  }

  for (std::thread& t : writers) t.join();
  writers_done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  // Settled state: the view reports the final cardinality exactly.
  auto session = manager.CreateSession();
  auto run = session->Query(
      "[<t.cardinality> OF EACH t IN sys$relations: t.name = 'employees']");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->tuples.size(), 1u);
  EXPECT_EQ(run->tuples[0].at(0).AsInt(),
            static_cast<int64_t>(db->FindRelation("employees")->cardinality()));
}

TEST(SystemRelationsTest, RefreshDoesNotInvalidateCachedPlans) {
  auto db = MakeUniversityDb();
  Session session(db.get());

  auto prepared = session.Prepare(kWorkloadQuery);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto first = prepared->Execute({});
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->plan_cache_hit);

  // A sys$ query refreshes the views and quietly seeds their statistics —
  // neither may bump the stats epoch or touch user-relation mod counts.
  const uint64_t epoch_before = db->stats_epoch();
  auto telemetry = session.Query(
      "[<s.fingerprint> OF EACH s IN sys$statements: s.calls > 0]");
  ASSERT_TRUE(telemetry.ok()) << telemetry.status().ToString();
  EXPECT_FALSE(telemetry->tuples.empty());
  EXPECT_EQ(db->stats_epoch(), epoch_before);

  auto second = prepared->Execute({});
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->plan_cache_hit)
      << "telemetry refresh invalidated an unrelated cached plan";

  // The trivial seeded statistics are in place (cost model input) …
  EXPECT_NE(db->FindFreshStats(sysrel::kStatements), nullptr);
  // … and ANALYZE leaves the system relations alone: the epoch moves only
  // for the user relations it scanned.
  size_t user_relations = 0;
  for (const std::string& name : db->RelationNames()) {
    if (!IsSystemRelationName(name)) ++user_relations;
  }
  ASSERT_TRUE(db->AnalyzeAll().ok());
  EXPECT_LE(db->stats_epoch() - epoch_before, user_relations);
}

TEST(SystemRelationsTest, AbandonedCursorFoldsEmittedRowsAtClose) {
  auto db = MakeUniversityDb();
  Session session(db.get());

  auto prepared = session.Prepare(kWorkloadQuery);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  {
    auto cursor = prepared->OpenCursor({});
    ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
    Tuple tuple;
    auto more = cursor->Next(&tuple);  // draw ONE row, then abandon
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(more.value());
  }  // destructor closes → fold fires

  StmtStatsSnapshot row = db->stmt_stats().SnapshotOne(kWorkloadFingerprint);
  EXPECT_EQ(row.calls, 1u);
  EXPECT_EQ(row.rows, 1u) << "fold must report rows actually emitted";
}

TEST(SystemRelationsTest, SlowLogRecordsOnlyArmedAboveThreshold) {
  auto db = MakeUniversityDb();
  Session session(db.get());

  // Disarmed (default): nothing records.
  ASSERT_TRUE(session.Query(kWorkloadQuery).ok());
  EXPECT_EQ(db->slow_log().recorded(), 0u);

  // Armed at 0us-adjacent threshold: every query is "slow".
  ASSERT_TRUE(session.ExecuteScript("SET SLOWLOG 1;").ok());
  ASSERT_TRUE(session.Query(kWorkloadQuery).ok());
  ASSERT_EQ(db->slow_log().recorded(), 1u);
  auto records = db->slow_log().SnapshotAll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].source, kWorkloadFingerprint);
  EXPECT_GT(records[0].latency_us, 0u);
  EXPECT_GT(records[0].total_work, 0u);

  // Unreachable threshold: armed but nothing qualifies.
  ASSERT_TRUE(session.ExecuteScript("SET SLOWLOG 999999999;").ok());
  ASSERT_TRUE(session.Query(kWorkloadQuery).ok());
  EXPECT_EQ(db->slow_log().recorded(), 1u);
  ASSERT_TRUE(session.ExecuteScript("SET SLOWLOG OFF;").ok());
  EXPECT_EQ(db->slow_log().threshold_us(), 0u);
}

TEST(SystemRelationsTest, SessionsViewTracksRegistrationAndTallies) {
  auto db = MakeUniversityDb();
  {
    Session a(db.get());
    Session b(db.get());
    ASSERT_TRUE(a.Query(kWorkloadQuery).ok());
    ASSERT_TRUE(a.Query(kWorkloadQuery).ok());
    ASSERT_TRUE(b.ExecuteScript(
        "employees :+ [<9001, 'x', student>];").ok());
    auto run = a.Query(
        "[<t.id, t.queries, t.writes> OF EACH t IN sys$sessions: TRUE]");
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->tuples.size(), 2u);
    bool saw_a = false;
    bool saw_b = false;
    for (const Tuple& t : run->tuples) {
      if (t.at(0).AsInt() == static_cast<int64_t>(a.session_id())) {
        saw_a = true;
        EXPECT_EQ(t.at(1).AsInt(), 2);  // the sys$ read itself folds later
        EXPECT_EQ(t.at(2).AsInt(), 0);
      }
      if (t.at(0).AsInt() == static_cast<int64_t>(b.session_id())) {
        saw_b = true;
        EXPECT_EQ(t.at(1).AsInt(), 0);
        EXPECT_EQ(t.at(2).AsInt(), 1);
      }
    }
    EXPECT_TRUE(saw_a);
    EXPECT_TRUE(saw_b);
  }
  // Both sessions unregistered at destruction.
  EXPECT_EQ(db->session_registry().size(), 0u);
}

TEST(SystemRelationsTest, ExportSkipsSystemRelations) {
  auto db = MakeUniversityDb();
  Session session(db.get());
  ASSERT_TRUE(session.Query(kWorkloadQuery).ok());
  ASSERT_TRUE(session.Query(
      "[<s.calls> OF EACH s IN sys$statements: TRUE]").ok());
  ASSERT_NE(db->FindRelation(sysrel::kStatements), nullptr);

  auto script = ExportScript(*db);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_EQ(script->find("sys$"), std::string::npos)
      << "derived telemetry must not be exported";

  // The export replays cleanly into a fresh database.
  Database fresh;
  Session replay(&fresh);
  Status st = replay.ExecuteScript(*script);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

}  // namespace
}  // namespace pascalr
