// Observability layer (src/obs/): metrics registry and latency
// percentiles, query-trace span trees (well-formed nesting, per-stage
// spans, lazy build spans), EXPLAIN ANALYZE (result identity between
// instrumented and uninstrumented runs across paper examples x pipeline
// on/off x eager/lazy, q-error rendering), zero counter drift when
// tracing is off, and Chrome trace-event export.

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/counters.h"
#include "exec/cursor.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "opt/explain.h"
#include "pascalr/session.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::MakeUniversityDb;
using testing_util::MustBind;
using testing_util::TupleStrings;

// ---------------------------------------------------------------- metrics

TEST(MetricsTest, CountersAndGauges) {
  MetricsRegistry metrics;
  EXPECT_EQ(metrics.FindCounter("c"), nullptr);
  metrics.counter("c").Inc();
  metrics.counter("c").Inc(4);
  ASSERT_NE(metrics.FindCounter("c"), nullptr);
  EXPECT_EQ(metrics.FindCounter("c")->value(), 5u);
  metrics.gauge("g").Set(-7);
  ASSERT_NE(metrics.FindGauge("g"), nullptr);
  EXPECT_EQ(metrics.FindGauge("g")->value(), -7);
}

TEST(MetricsTest, HistogramPercentilesBracketTheQuantiles) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.Mean(), (1000u * 1001u / 2u) / 1000u);
  // Bucket upper bounds overestimate by at most one bucket (~19%).
  EXPECT_GE(h.Percentile(0.50), 500u);
  EXPECT_LE(h.Percentile(0.50), 640u);
  EXPECT_GE(h.Percentile(0.99), 990u);
  EXPECT_LE(h.Percentile(0.99), 1000u);  // clamped to the observed max
  EXPECT_LE(h.Percentile(1.0), 1000u);
  std::string summary = h.Summary();
  EXPECT_NE(summary.find("count=1000"), std::string::npos);
  EXPECT_NE(summary.find("p99="), std::string::npos);
}

TEST(MetricsTest, DumpIsSortedAndStable) {
  MetricsRegistry metrics;
  EXPECT_NE(metrics.Dump().find("no metrics recorded"), std::string::npos);
  metrics.counter("b.second").Inc(2);
  metrics.counter("a.first").Inc();
  metrics.histogram("lat").Record(10);
  std::string dump = metrics.Dump();
  EXPECT_LT(dump.find("a.first"), dump.find("b.second"));
  EXPECT_NE(dump.find("lat"), std::string::npos);
}

// ----------------------------------------------------------------- traces

/// Asserts the structural invariants of one recorded span tree: the root
/// is span 0 with parent -1, every other span's parent precedes it, every
/// child lies within its parent's [start, end] window, and the durations
/// of any span's direct children sum to at most the span's own duration.
void CheckWellFormed(const QueryTrace& trace) {
  ASSERT_FALSE(trace.spans.empty());
  EXPECT_EQ(trace.spans[0].parent, -1);
  std::vector<uint64_t> child_time(trace.spans.size(), 0);
  for (size_t i = 1; i < trace.spans.size(); ++i) {
    const TraceSpan& span = trace.spans[i];
    ASSERT_GE(span.parent, 0) << "span " << i << " (" << span.name
                              << ") is a second root";
    ASSERT_LT(static_cast<size_t>(span.parent), i)
        << "span " << i << " opened before its parent";
    const TraceSpan& parent = trace.spans[static_cast<size_t>(span.parent)];
    EXPECT_GE(span.start_ns, parent.start_ns)
        << span.name << " starts before its parent " << parent.name;
    EXPECT_LE(span.start_ns + span.dur_ns, parent.start_ns + parent.dur_ns)
        << span.name << " ends after its parent " << parent.name;
    child_time[static_cast<size_t>(span.parent)] += span.dur_ns;
  }
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    EXPECT_LE(child_time[i], trace.spans[i].dur_ns)
        << "children of " << trace.spans[i].name
        << " account for more time than the span itself";
  }
}

bool HasSpan(const QueryTrace& trace, const std::string& name) {
  for (const TraceSpan& span : trace.spans) {
    if (span.name == name) return true;
  }
  return false;
}

TEST(TraceTest, QuerySpanTreeIsWellFormedAndCoversTheStages) {
  auto db = MakeUniversityDb();
  Session session(db.get());
  session.set_tracing(true);
  ASSERT_TRUE(session.Query(Example21QuerySource()).ok());
  ASSERT_EQ(session.traces().size(), 1u);
  const QueryTrace& trace = session.traces()[0];
  CheckWellFormed(trace);
  EXPECT_EQ(trace.spans[0].name, "query");
  for (const char* stage :
       {"prepare", "parse", "bind", "execute", "plan", "collection",
        "drain"}) {
    EXPECT_TRUE(HasSpan(trace, stage)) << "missing span: " << stage
                                       << "\n" << trace.ToString();
  }
  // The drain span carries the run's deterministic counters.
  for (const TraceSpan& span : trace.spans) {
    if (span.name != "drain") continue;
    bool has_rows = false;
    for (const auto& [name, value] : span.counters) {
      if (name == "rows_emitted") {
        has_rows = true;
        EXPECT_EQ(value, 3u);  // Alice, Bob, Frank
      }
    }
    EXPECT_TRUE(has_rows);
  }
}

TEST(TraceTest, LazyCollectionBuildsShowUpBehindTheDrain) {
  auto db = MakeUniversityDb();
  Session session(db.get());
  session.options().collection = CollectionPolicy::kLazy;
  session.set_tracing(true);
  ASSERT_TRUE(session.Query(Example21QuerySource()).ok());
  ASSERT_EQ(session.traces().size(), 1u);
  const QueryTrace& trace = session.traces()[0];
  CheckWellFormed(trace);
  // Under the lazy policy there is no up-front "collection" span; the
  // structure builds happen on demand during the drain instead.
  bool any_build = false;
  for (const TraceSpan& span : trace.spans) {
    if (span.name == "build-structure" || span.name == "build-index" ||
        span.name == "build-value-list" || span.name == "scan") {
      any_build = true;
    }
  }
  EXPECT_TRUE(any_build) << trace.ToString();
}

TEST(TraceTest, TracesAccumulateAndClear) {
  auto db = MakeUniversityDb();
  Session session(db.get());
  session.set_tracing(true);
  ASSERT_TRUE(session.Query(Example21QuerySource()).ok());
  ASSERT_TRUE(session.Query(Example21QuerySource()).ok());
  EXPECT_EQ(session.traces().size(), 2u);
  session.ClearTraces();
  EXPECT_TRUE(session.traces().empty());
  // Off again: no further traces.
  session.set_tracing(false);
  ASSERT_TRUE(session.Query(Example21QuerySource()).ok());
  EXPECT_TRUE(session.traces().empty());
}

TEST(TraceTest, SetTraceStatementTogglesTheSession) {
  auto db = MakeUniversityDb();
  Session session(db.get());
  EXPECT_FALSE(session.tracing());
  ASSERT_TRUE(session.ExecuteScript("SET TRACE ON;").ok());
  EXPECT_TRUE(session.tracing());
  ASSERT_TRUE(session.ExecuteScript("SET TRACE OFF;").ok());
  EXPECT_FALSE(session.tracing());
  EXPECT_FALSE(session.ExecuteScript("SET TRACE MAYBE;").ok());
}

TEST(TraceTest, ChromeExportIsValidTraceEventJson) {
  auto db = MakeUniversityDb();
  Session session(db.get());
  session.set_tracing(true);
  ASSERT_TRUE(session.Query(Example21QuerySource()).ok());
  std::string json = TracesToChromeJson(session.traces());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"drain\""), std::string::npos);
  // The query source rides along as args.detail on the root span, and the
  // drain's deterministic counters are numeric args.
  EXPECT_NE(json.find("\"detail\":\""), std::string::npos);
  EXPECT_NE(json.find("\"rows_emitted\":3"), std::string::npos);

  std::string path = ::testing::TempDir() + "/obs_test.trace.json";
  ASSERT_TRUE(WriteTraceFile(path, session.traces()).ok());
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  EXPECT_GT(std::ftell(f), 0);
  std::fclose(f);
  std::remove(path.c_str());
}

// ------------------------------------------------- EXPLAIN ANALYZE + drift

/// Runs `source` once uninstrumented and once under a PipelineProfile,
/// asserting identical result tuples and identical deterministic work
/// counters — the profiled decorators must observe, never perturb.
void CheckResultIdentity(const std::string& source, bool pipeline,
                         CollectionPolicy collection) {
  SCOPED_TRACE(source + (pipeline ? " [pipelined]" : " [materialized]") +
               (collection == CollectionPolicy::kLazy ? " [lazy]"
                                                      : " [eager]"));
  auto db = MakeUniversityDb();
  PlannerOptions options;
  options.pipeline = pipeline;
  options.collection = collection;
  Result<PlannedQuery> planned =
      PlanQuery(*db, MustBind(*db, source), options);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  auto shared = std::make_shared<PlannedQuery>(std::move(planned).value());
  std::shared_ptr<const QueryPlan> plan(shared, &shared->plan);

  auto drain = [&](PipelineProfile* profile, std::vector<Tuple>* tuples,
                   ExecStats* stats) {
    Result<Cursor> cursor = Cursor::Open(plan, *db, nullptr, profile);
    ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
    Tuple t;
    while (true) {
      Result<bool> more = cursor->Next(&t);
      ASSERT_TRUE(more.ok()) << more.status().ToString();
      if (!*more) break;
      tuples->push_back(t);
    }
    *stats = cursor->stats();
    cursor->Close();
  };

  std::vector<Tuple> plain_tuples, profiled_tuples;
  ExecStats plain_stats, profiled_stats;
  drain(nullptr, &plain_tuples, &plain_stats);
  PipelineProfile profile;
  drain(&profile, &profiled_tuples, &profiled_stats);

  EXPECT_EQ(TupleStrings(plain_tuples), TupleStrings(profiled_tuples));
  EXPECT_EQ(plain_stats.ToString(), profiled_stats.ToString());
  // The profiled tree exists and its root (construction) saw exactly the
  // result cardinality.
  ASSERT_GE(profile.root(), 0);
  EXPECT_EQ(profile.node(profile.root()).prof.rows_out,
            profiled_tuples.size());
}

TEST(ExplainAnalyzeTest, InstrumentedRunsMatchUninstrumentedOnes) {
  const std::string queries[] = {
      Example21QuerySource(),
      // The two-free-variable join (Example 2.1's shape, no quantifier
      // tail folded away).
      "[<e.ename, c.ctitle> OF EACH e IN employees, EACH c IN courses:"
      " SOME t IN timetable ((e.enr = t.tenr) AND (c.cnr = t.tcnr))]",
      // Universal quantifier: exercises the division sink.
      "[<e.ename> OF EACH e IN employees:"
      " ALL c IN courses (c.clevel <= senior)]",
      // Single range, restriction only.
      "[<e.ename> OF EACH e IN employees: e.enr < 5]",
  };
  for (const std::string& q : queries) {
    for (bool pipeline : {true, false}) {
      for (CollectionPolicy collection :
           {CollectionPolicy::kEager, CollectionPolicy::kLazy}) {
        CheckResultIdentity(q, pipeline, collection);
      }
    }
  }
}

TEST(ExplainAnalyzeTest, StatementPrintsOperatorTableAndSummary) {
  auto db = MakeUniversityDb();
  std::ostringstream out;
  Session session(db.get(), &out);
  ASSERT_TRUE(session
                  .ExecuteScript("EXPLAIN ANALYZE " + Example21QuerySource() +
                                 ";")
                  .ok());
  std::string text = out.str();
  EXPECT_NE(text.find("analyze:"), std::string::npos);
  EXPECT_NE(text.find("rows="), std::string::npos);
  EXPECT_NE(text.find("self="), std::string::npos);
  EXPECT_NE(text.find("result: 3 tuple(s)"), std::string::npos);
  // The instrumented run feeds the session like any other query.
  EXPECT_GT(session.total_stats().TotalWork(), 0u);
  ASSERT_NE(session.metrics().FindCounter("query.count"), nullptr);
  EXPECT_EQ(session.metrics().FindCounter("query.count")->value(), 1u);
}

TEST(ExplainAnalyzeTest, QErrorsRenderWhenEstimatesExist) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  std::ostringstream out;
  Session session(db.get(), &out);
  ASSERT_TRUE(
      session
          .ExecuteScript(
              "EXPLAIN ANALYZE [<e.ename, c.ctitle> OF EACH e IN employees,"
              " EACH c IN courses: SOME t IN timetable"
              " ((e.enr = t.tenr) AND (c.cnr = t.tcnr))];")
          .ok())
      << out.str();
  EXPECT_NE(out.str().find("q-err="), std::string::npos) << out.str();
}

TEST(ExplainAnalyzeTest, QErrorConvention) {
  EXPECT_DOUBLE_EQ(QError(10.0, 10), 1.0);
  EXPECT_DOUBLE_EQ(QError(5.0, 10), 2.0);
  EXPECT_DOUBLE_EQ(QError(20.0, 10), 2.0);
  EXPECT_DOUBLE_EQ(QError(0.0, 0), 1.0);
  // One-sided zeros stay finite.
  EXPECT_DOUBLE_EQ(QError(0.0, 10), 11.0);
  EXPECT_DOUBLE_EQ(QError(10.0, 0), 11.0);
}

TEST(ObservabilityTest, TracingOffLeavesEveryCounterUntouched) {
  // The same script under tracing on and off: the deterministic ExecStats
  // and the global compile counters must agree bit-for-bit — the
  // acceptance gate for "zero overhead when off" (and "no perturbation
  // when on").
  auto run_with = [](bool tracing, ExecStats* stats,
                     CompileCounters* compile_delta) {
    auto db = MakeUniversityDb();
    Session session(db.get());
    session.set_tracing(tracing);
    CompileCounters before = GlobalCompileCounters();
    ASSERT_TRUE(session.Query(Example21QuerySource()).ok());
    session.options().collection = CollectionPolicy::kLazy;
    ASSERT_TRUE(session.Query(Example21QuerySource()).ok());
    session.options().pipeline = false;
    ASSERT_TRUE(session.Query(Example21QuerySource()).ok());
    *stats = session.total_stats();
    CompileCounters after = GlobalCompileCounters();
    compile_delta->parses = after.parses - before.parses;
    compile_delta->binds = after.binds - before.binds;
    compile_delta->standard_forms = after.standard_forms -
                                    before.standard_forms;
    compile_delta->plans = after.plans - before.plans;
    compile_delta->plan_searches = after.plan_searches -
                                   before.plan_searches;
    compile_delta->collection_walks = after.collection_walks -
                                      before.collection_walks;
  };
  ExecStats stats_off, stats_on;
  CompileCounters delta_off, delta_on;
  run_with(false, &stats_off, &delta_off);
  run_with(true, &stats_on, &delta_on);
  EXPECT_EQ(stats_off.ToString(), stats_on.ToString());
  EXPECT_EQ(delta_off.parses, delta_on.parses);
  EXPECT_EQ(delta_off.binds, delta_on.binds);
  EXPECT_EQ(delta_off.standard_forms, delta_on.standard_forms);
  EXPECT_EQ(delta_off.plans, delta_on.plans);
  EXPECT_EQ(delta_off.plan_searches, delta_on.plan_searches);
  EXPECT_EQ(delta_off.collection_walks, delta_on.collection_walks);
}

TEST(ObservabilityTest, MetricsStatementDumpsTheRegistry) {
  auto db = MakeUniversityDb();
  std::ostringstream out;
  Session session(db.get(), &out);
  ASSERT_TRUE(session.ExecuteScript("METRICS;").ok());
  EXPECT_NE(out.str().find("no metrics recorded"), std::string::npos);
  out.str("");
  ASSERT_TRUE(session.Query(Example21QuerySource()).ok());
  ASSERT_TRUE(session.ExecuteScript("METRICS;").ok());
  EXPECT_NE(out.str().find("query.count"), std::string::npos);
  EXPECT_NE(out.str().find("query.latency_us"), std::string::npos);
}

}  // namespace
}  // namespace pascalr
