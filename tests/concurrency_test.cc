// Unit tests for the concurrent-serving subsystem (src/concurrency/):
// StableVector publication, SnapshotRegistry quiesce, snapshot isolation
// through the full session stack, versioned deletes + compaction, the
// shared plan cache, and commit versioning. The multi-threaded
// reader/writer torture test with the serial oracle lives in
// concurrency_stress_test.cc.

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "base/stable_vector.h"
#include "concurrency/session_manager.h"
#include "concurrency/snapshot.h"
#include "pascalr/session.h"
#include "test_util.h"

namespace pascalr {
namespace {

using testing_util::FirstStrings;
using testing_util::MakeUniversityDb;
using testing_util::TupleStrings;

const char kAllEmployees[] = "[<e.ename> OF EACH e IN employees: e.enr >= 1]";
const char kJoinQuery[] =
    "[<e.ename> OF EACH e IN employees:"
    " SOME t IN timetable (e.enr = t.tenr)]";

// ---- StableVector ---------------------------------------------------

TEST(StableVectorTest, AddressesStableAcrossBlockGrowth) {
  StableVector<uint64_t> v;
  size_t first = v.Append();
  v[first] = 42;
  const uint64_t* addr = &v[first];
  // Push well past the first (256) and second (512) blocks.
  for (uint64_t i = 1; i < 3000; ++i) {
    size_t idx = v.Append();
    v[idx] = i;
  }
  EXPECT_EQ(v.size(), 3000u);
  EXPECT_EQ(&v[first], addr) << "growth must never move elements";
  EXPECT_EQ(v[first], 42u);
  for (uint64_t i = 1; i < 3000; ++i) EXPECT_EQ(v[i], i);
}

TEST(StableVectorTest, ConcurrentReaderSeesOnlyPublishedElements) {
  constexpr uint64_t kUnset = 0;
  constexpr size_t kTotal = 20000;
  struct Cell {
    std::atomic<uint64_t> value{kUnset};
  };
  StableVector<Cell> v;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      size_t n = v.size();
      for (size_t i = 0; i < n; ++i) {
        uint64_t x = v[i].value.load(std::memory_order_acquire);
        // A published element is constructed: either still the default or
        // the writer's fill — never garbage.
        if (x != kUnset && x != i + 1) {
          ADD_FAILURE() << "torn element " << i << ": " << x;
          return;
        }
      }
    }
  });
  for (size_t i = 0; i < kTotal; ++i) {
    size_t idx = v.Append();
    v[idx].value.store(idx + 1, std::memory_order_release);
  }
  done.store(true, std::memory_order_release);
  reader.join();
  ASSERT_EQ(v.size(), kTotal);
  for (size_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(v[i].value.load(std::memory_order_relaxed), i + 1);
  }
}

// ---- SnapshotRegistry -----------------------------------------------

std::unique_ptr<const Snapshot> MakeEmptySnapshot() {
  return std::make_unique<Snapshot>();
}

TEST(SnapshotRegistryTest, TryQuiesceRunsOnlyWhenIdle) {
  SnapshotRegistry registry;
  bool ran = false;
  EXPECT_TRUE(registry.TryQuiesce([&] { ran = true; }));
  EXPECT_TRUE(ran);

  SnapshotRef snap = registry.Register(MakeEmptySnapshot);
  EXPECT_EQ(registry.ActiveCount(), 1u);
  EXPECT_FALSE(registry.TryQuiesce([] { FAIL() << "must not run"; }));

  snap.reset();
  EXPECT_EQ(registry.ActiveCount(), 0u);
  EXPECT_TRUE(registry.TryQuiesce([] {}));
}

TEST(SnapshotRegistryTest, QuiesceWaitsForLiveSnapshots) {
  SnapshotRegistry registry;
  SnapshotRef snap = registry.Register(MakeEmptySnapshot);
  std::atomic<bool> released{false};
  std::thread holder([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    released.store(true, std::memory_order_release);
    snap.reset();
  });
  bool ran = false;
  registry.Quiesce([&] {
    // The quiesce window must start only after the holder let go. (No
    // registry calls in here: Quiesce holds the registry mutex while
    // running the callback.)
    EXPECT_TRUE(released.load(std::memory_order_acquire));
    ran = true;
  });
  EXPECT_TRUE(ran);
  holder.join();
  EXPECT_EQ(registry.ActiveCount(), 0u);
  // The gate must reopen: new snapshots register fine afterwards.
  SnapshotRef after = registry.Register(MakeEmptySnapshot);
  EXPECT_EQ(registry.ActiveCount(), 1u);
}

// ---- snapshot isolation through the session stack -------------------

TEST(ConcurrencyTest, SnapshotReadsIgnoreLaterCommits) {
  auto db = MakeUniversityDb();
  SessionManager manager(db.get());
  ASSERT_TRUE(db->serving());
  auto writer = manager.CreateSession();
  auto reader = manager.CreateSession();

  SnapshotRef before = db->TakeSnapshot();
  ASSERT_NE(before, nullptr);
  ASSERT_TRUE(
      writer->ExecuteScript("employees :+ [<7, 'Grace', professor>];").ok());

  // A fresh read sees the committed insert...
  auto now = reader->Query(kAllEmployees);
  ASSERT_TRUE(now.ok()) << now.status().ToString();
  EXPECT_EQ(FirstStrings(now->tuples).count("Grace"), 1u);

  // ...but under the old snapshot the insert does not exist.
  {
    ScopedSnapshotInstall install(before);
    auto old = reader->Query(kAllEmployees);
    ASSERT_TRUE(old.ok()) << old.status().ToString();
    EXPECT_EQ(FirstStrings(old->tuples).count("Grace"), 0u);
  }
}

TEST(ConcurrencyTest, DroppedRelationStaysReadableUnderSnapshot) {
  auto db = MakeUniversityDb();
  SessionManager manager(db.get());
  auto session = manager.CreateSession();

  auto baseline = session->Query(kJoinQuery);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  SnapshotRef before = db->TakeSnapshot();
  ASSERT_TRUE(db->DropRelation("timetable").ok());

  // Without the snapshot the relation is gone.
  EXPECT_FALSE(session->Query(kJoinQuery).ok());

  // Under the snapshot the join still binds, plans, and returns the
  // pre-drop answer: the snapshot's strong ref keeps the relation alive.
  {
    ScopedSnapshotInstall install(before);
    auto old = session->Query(kJoinQuery);
    ASSERT_TRUE(old.ok()) << old.status().ToString();
    EXPECT_EQ(TupleStrings(old->tuples), TupleStrings(baseline->tuples));
  }
}

TEST(ConcurrencyTest, WriteStatementsCommitOneVersionEach) {
  auto db = MakeUniversityDb();
  SessionManager manager(db.get());
  auto session = manager.CreateSession();

  uint64_t v0 = db->db_version();
  ASSERT_TRUE(
      session->ExecuteScript("employees :+ [<50, 'Zoe', student>];").ok());
  EXPECT_EQ(db->db_version(), v0 + 1);
  EXPECT_EQ(session->last_commit_version(), v0 + 1);

  ASSERT_TRUE(session->ExecuteScript("employees :- [<50>];").ok());
  EXPECT_EQ(db->db_version(), v0 + 2);
  EXPECT_EQ(session->last_commit_version(), v0 + 2);

  // Reads commit nothing.
  ASSERT_TRUE(session->Query(kAllEmployees).ok());
  EXPECT_EQ(db->db_version(), v0 + 2);
}

TEST(ConcurrencyTest, ExecuteReportsItsSnapshotVersion) {
  auto db = MakeUniversityDb();
  SessionManager manager(db.get());
  auto session = manager.CreateSession();

  auto prepared = session->Prepare(kAllEmployees);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto exec = prepared->Execute({});
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec->snapshot_version, db->db_version());

  ASSERT_TRUE(
      session->ExecuteScript("employees :+ [<60, 'Yan', student>];").ok());
  auto exec2 = prepared->Execute({});
  ASSERT_TRUE(exec2.ok()) << exec2.status().ToString();
  EXPECT_EQ(exec2->snapshot_version, db->db_version());
  EXPECT_GT(exec2->snapshot_version, exec->snapshot_version);
}

// ---- versioned deletes and compaction -------------------------------

TEST(ConcurrencyTest, CompactionReclaimsDeadVersionsAndKeepsData) {
  auto db = MakeUniversityDb();
  SessionManager manager(db.get());
  auto session = manager.CreateSession();

  for (int i = 100; i < 120; ++i) {
    ASSERT_TRUE(session
                    ->ExecuteScript("employees :+ [<" + std::to_string(i) +
                                    ", 'T" + std::to_string(i) +
                                    "', student>];")
                    .ok());
  }
  for (int i = 100; i < 110; ++i) {
    ASSERT_TRUE(
        session->ExecuteScript("employees :- [<" + std::to_string(i) + ">];")
            .ok());
  }

  auto survivors = session->Query(kAllEmployees);
  ASSERT_TRUE(survivors.ok()) << survivors.status().ToString();
  auto names_before = TupleStrings(survivors->tuples);
  EXPECT_EQ(names_before.size(), 6u + 10u);  // seed data + surviving inserts

  size_t retired = manager.Compact();
  EXPECT_GT(retired, 0u) << "ten deleted versions should be reclaimable";
  auto counters = manager.counters();
  EXPECT_GE(counters.compactions, 1u);
  EXPECT_GE(counters.versions_retired, retired);

  // Compaction must be invisible to queries.
  auto after = session->Query(kAllEmployees);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(TupleStrings(after->tuples), names_before);

  // And the heap must actually be reusable: inserting after compaction
  // refills reclaimed slots without disturbing anything.
  ASSERT_TRUE(
      session->ExecuteScript("employees :+ [<100, 'Back', student>];").ok());
  auto refilled = session->Query(kAllEmployees);
  ASSERT_TRUE(refilled.ok());
  EXPECT_EQ(FirstStrings(refilled->tuples).count("Back"), 1u);
}

// ---- shared plan cache ----------------------------------------------

TEST(ConcurrencyTest, SharedPlanCacheServesSecondSession) {
  auto db = MakeUniversityDb();
  SessionManager manager(db.get());
  auto first = manager.CreateSession();
  auto second = manager.CreateSession();

  auto r1 = first->Query(kJoinQuery);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto v0 = manager.counters();

  auto r2 = second->Query(kJoinQuery);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  auto v1 = manager.counters();

  EXPECT_GT(v1.shared_plan_hits, v0.shared_plan_hits)
      << "second session must adopt the first session's plan";
  EXPECT_EQ(TupleStrings(r1->tuples), TupleStrings(r2->tuples));
}

TEST(ConcurrencyTest, SharedPlanCacheRejectsStaleEntryAfterWrite) {
  auto db = MakeUniversityDb();
  SessionManager manager(db.get());
  auto first = manager.CreateSession();
  auto second = manager.CreateSession();

  auto r1 = first->Query(kAllEmployees);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();

  // The write moves the relation's mod count; the cached entry's
  // watermark no longer matches, so adopting it would read the future or
  // plan on stale cardinalities — it must be rejected, recompiled, and
  // the fresh result must include the new row.
  ASSERT_TRUE(
      first->ExecuteScript("employees :+ [<70, 'New', student>];").ok());
  auto v0 = manager.counters();
  auto r2 = second->Query(kAllEmployees);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  auto v1 = manager.counters();

  EXPECT_EQ(v1.shared_plan_hits, v0.shared_plan_hits);
  EXPECT_GT(v1.shared_plan_misses, v0.shared_plan_misses);
  EXPECT_EQ(FirstStrings(r2->tuples).count("New"), 1u);
}

TEST(ConcurrencyTest, SharedCacheKeySeparatesPlannerOptions) {
  auto db = MakeUniversityDb();
  SessionManager manager(db.get());
  auto first = manager.CreateSession();
  auto second = manager.CreateSession();
  second->options().pipeline = false;  // different plan-relevant option

  auto r1 = first->Query(kJoinQuery);
  ASSERT_TRUE(r1.ok());
  auto v0 = manager.counters();
  auto r2 = second->Query(kJoinQuery);
  ASSERT_TRUE(r2.ok());
  auto v1 = manager.counters();

  EXPECT_EQ(v1.shared_plan_hits, v0.shared_plan_hits)
      << "different options must never share a plan";
  EXPECT_EQ(TupleStrings(r1->tuples), TupleStrings(r2->tuples));
}

// ---- legacy mode unaffected -----------------------------------------

TEST(ConcurrencyTest, NonServingDatabaseTakesNoSnapshots) {
  auto db = MakeUniversityDb();
  EXPECT_FALSE(db->serving());
  EXPECT_EQ(db->TakeSnapshot(), nullptr);
  Session session(db.get());
  auto run = session.Query(kAllEmployees);
  ASSERT_TRUE(run.ok());
  auto counters = db->ConcurrencyCountersView();
  EXPECT_EQ(counters.snapshots_taken, 0u);
  EXPECT_EQ(counters.shared_plan_hits + counters.shared_plan_misses, 0u);
  EXPECT_EQ(db->db_version(), 0u);
}

}  // namespace
}  // namespace pascalr
