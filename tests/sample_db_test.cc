#include "pascalr/sample_db.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace pascalr {
namespace {

TEST(SampleDbTest, SchemaMatchesFigure1) {
  Database db;
  ASSERT_TRUE(CreateUniversitySchema(&db).ok());
  for (const char* name : {"employees", "papers", "courses", "timetable"}) {
    ASSERT_NE(db.FindRelation(name), nullptr) << name;
  }
  const Schema& employees = db.FindRelation("employees")->schema();
  EXPECT_EQ(employees.key_positions(), (std::vector<size_t>{0}));
  const Schema& papers = db.FindRelation("papers")->schema();
  EXPECT_EQ(papers.key_positions(), (std::vector<size_t>{2, 0}));  // <ptitle,penr>
  const Schema& timetable = db.FindRelation("timetable")->schema();
  EXPECT_EQ(timetable.key_positions(), (std::vector<size_t>{0, 1, 2}));

  ASSERT_NE(db.FindEnum("statustype"), nullptr);
  EXPECT_EQ(db.FindEnum("statustype")->labels.back(), "professor");
  ASSERT_NE(db.FindEnum("leveltype"), nullptr);
  EXPECT_EQ(db.FindEnum("leveltype")->OrdinalOf("sophomore"), 1);
  ASSERT_NE(db.FindEnum("daytype"), nullptr);
}

TEST(SampleDbTest, SmallExampleCardinalities) {
  Database db;
  ASSERT_TRUE(CreateUniversitySchema(&db).ok());
  ASSERT_TRUE(PopulateSmallExample(&db).ok());
  EXPECT_EQ(db.FindRelation("employees")->cardinality(), 6u);
  EXPECT_EQ(db.FindRelation("papers")->cardinality(), 5u);
  EXPECT_EQ(db.FindRelation("courses")->cardinality(), 4u);
  EXPECT_EQ(db.FindRelation("timetable")->cardinality(), 6u);
  // Repopulating is idempotent (Clear before fill).
  ASSERT_TRUE(PopulateSmallExample(&db).ok());
  EXPECT_EQ(db.FindRelation("employees")->cardinality(), 6u);
}

TEST(SampleDbTest, SyntheticIsDeterministic) {
  UniversityScale scale;
  scale.employees = 40;
  scale.papers = 80;
  scale.courses = 20;
  scale.timetable = 100;
  scale.seed = 123;

  Database a, b;
  ASSERT_TRUE(CreateUniversitySchema(&a).ok());
  ASSERT_TRUE(CreateUniversitySchema(&b).ok());
  ASSERT_TRUE(PopulateSynthetic(&a, scale).ok());
  ASSERT_TRUE(PopulateSynthetic(&b, scale).ok());

  for (const char* name : {"employees", "papers", "courses", "timetable"}) {
    const Relation* ra = a.FindRelation(name);
    const Relation* rb = b.FindRelation(name);
    ASSERT_EQ(ra->cardinality(), rb->cardinality()) << name;
    ra->Scan([&](const Ref&, const Tuple& t) {
      EXPECT_TRUE(rb->SelectByKey(rb->schema().KeyOf(t)).ok()) << name;
      return true;
    });
  }
}

TEST(SampleDbTest, SyntheticHitsRequestedCardinalities) {
  Database db;
  ASSERT_TRUE(CreateUniversitySchema(&db).ok());
  UniversityScale scale;
  scale.employees = 55;
  scale.papers = 70;
  scale.courses = 12;
  scale.timetable = 90;
  ASSERT_TRUE(PopulateSynthetic(&db, scale).ok());
  EXPECT_EQ(db.FindRelation("employees")->cardinality(), 55u);
  EXPECT_EQ(db.FindRelation("papers")->cardinality(), 70u);
  EXPECT_EQ(db.FindRelation("courses")->cardinality(), 12u);
  // Timetable is sampled without replacement; allow slight shortfall.
  EXPECT_GE(db.FindRelation("timetable")->cardinality(), 80u);
  EXPECT_LE(db.FindRelation("timetable")->cardinality(), 90u);
}

TEST(SampleDbTest, FractionKnobsShiftDistributions) {
  Database lo, hi;
  ASSERT_TRUE(CreateUniversitySchema(&lo).ok());
  ASSERT_TRUE(CreateUniversitySchema(&hi).ok());
  UniversityScale low_frac;
  low_frac.employees = 300;
  low_frac.professor_fraction = 0.05;
  UniversityScale high_frac = low_frac;
  high_frac.professor_fraction = 0.9;
  ASSERT_TRUE(PopulateSynthetic(&lo, low_frac).ok());
  ASSERT_TRUE(PopulateSynthetic(&hi, high_frac).ok());

  auto count_profs = [](const Database& db) {
    size_t n = 0;
    db.FindRelation("employees")->Scan([&](const Ref&, const Tuple& t) {
      if (t.at(2).AsEnumOrdinal() == 3) ++n;
      return true;
    });
    return n;
  };
  EXPECT_LT(count_profs(lo), count_profs(hi));
}

TEST(SampleDbTest, QuerySourcesParseAndBind) {
  auto db = testing_util::MakeUniversityDb();
  testing_util::MustBind(*db, Example21QuerySource());
  testing_util::MustBind(*db, Example45QuerySource());
}

}  // namespace
}  // namespace pascalr
