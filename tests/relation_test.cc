#include "storage/relation.h"

#include <gtest/gtest.h>

namespace pascalr {
namespace {

Schema TwoColumnSchema() {
  return *Schema::Make({{"id", Type::Int()}, {"name", Type::String()}},
                       {"id"});
}

Tuple Row(int64_t id, const std::string& name) {
  return Tuple{Value::MakeInt(id), Value::MakeString(name)};
}

TEST(RelationTest, InsertAndSelectByKey) {
  Relation rel(1, "r", TwoColumnSchema());
  ASSERT_TRUE(rel.Insert(Row(1, "a")).ok());
  ASSERT_TRUE(rel.Insert(Row(2, "b")).ok());
  EXPECT_EQ(rel.cardinality(), 2u);

  auto found = rel.SelectByKey(Tuple{Value::MakeInt(2)});
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->at(1).AsString(), "b");

  auto missing = rel.SelectByKey(Tuple{Value::MakeInt(3)});
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(RelationTest, DuplicateKeyRejected) {
  Relation rel(1, "r", TwoColumnSchema());
  ASSERT_TRUE(rel.Insert(Row(1, "a")).ok());
  auto dup = rel.Insert(Row(1, "other"));
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(rel.cardinality(), 1u);
}

TEST(RelationTest, SchemaViolationRejected) {
  Relation rel(1, "r", TwoColumnSchema());
  auto bad = rel.Insert(Tuple{Value::MakeString("x"), Value::MakeString("y")});
  EXPECT_EQ(bad.status().code(), StatusCode::kTypeMismatch);
  EXPECT_TRUE(rel.empty());
}

TEST(RelationTest, UpsertReplacesInPlaceKeepingRefsValid) {
  Relation rel(1, "r", TwoColumnSchema());
  Ref ref = *rel.Insert(Row(1, "a"));
  Ref updated = *rel.Upsert(Row(1, "a2"));
  EXPECT_EQ(ref, updated);
  auto t = rel.Deref(ref);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->at(1).AsString(), "a2");
  // Upsert of a new key inserts.
  ASSERT_TRUE(rel.Upsert(Row(2, "b")).ok());
  EXPECT_EQ(rel.cardinality(), 2u);
}

TEST(RelationTest, RefByKeyMatchesInsertRef) {
  Relation rel(7, "r", TwoColumnSchema());
  Ref inserted = *rel.Insert(Row(5, "e"));
  Ref looked_up = *rel.RefByKey(Tuple{Value::MakeInt(5)});
  EXPECT_EQ(inserted, looked_up);
  EXPECT_EQ(looked_up.relation, 7u);
}

TEST(RelationTest, DerefDetectsDanglingAfterErase) {
  Relation rel(1, "r", TwoColumnSchema());
  Ref ref = *rel.Insert(Row(1, "a"));
  ASSERT_TRUE(rel.EraseByKey(Tuple{Value::MakeInt(1)}).ok());
  EXPECT_EQ(rel.Deref(ref).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(rel.IsLive(ref));
}

TEST(RelationTest, DerefDetectsSlotReuse) {
  // The generation tag distinguishes a reused slot from the old element.
  Relation rel(1, "r", TwoColumnSchema());
  Ref old_ref = *rel.Insert(Row(1, "a"));
  ASSERT_TRUE(rel.EraseByKey(Tuple{Value::MakeInt(1)}).ok());
  Ref new_ref = *rel.Insert(Row(2, "b"));
  // Slot is reused but generations differ.
  EXPECT_EQ(old_ref.slot, new_ref.slot);
  EXPECT_NE(old_ref.generation, new_ref.generation);
  EXPECT_EQ(rel.Deref(old_ref).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(rel.Deref(new_ref).ok());
}

TEST(RelationTest, DerefRejectsForeignRelation) {
  Relation a(1, "a", TwoColumnSchema());
  Relation b(2, "b", TwoColumnSchema());
  Ref ref = *a.Insert(Row(1, "x"));
  EXPECT_EQ(b.Deref(ref).status().code(), StatusCode::kInvalidArgument);
}

TEST(RelationTest, EraseByRef) {
  Relation rel(1, "r", TwoColumnSchema());
  Ref ref = *rel.Insert(Row(1, "a"));
  ASSERT_TRUE(rel.EraseByRef(ref).ok());
  EXPECT_TRUE(rel.empty());
  EXPECT_EQ(rel.EraseByRef(ref).code(), StatusCode::kNotFound);
}

TEST(RelationTest, ScanVisitsLiveElementsOnly) {
  Relation rel(1, "r", TwoColumnSchema());
  for (int i = 1; i <= 5; ++i) ASSERT_TRUE(rel.Insert(Row(i, "x")).ok());
  ASSERT_TRUE(rel.EraseByKey(Tuple{Value::MakeInt(3)}).ok());

  std::vector<int64_t> seen;
  rel.Scan([&](const Ref&, const Tuple& t) {
    seen.push_back(t.at(0).AsInt());
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int64_t>{1, 2, 4, 5}));
}

TEST(RelationTest, ScanEarlyStop) {
  Relation rel(1, "r", TwoColumnSchema());
  for (int i = 1; i <= 5; ++i) ASSERT_TRUE(rel.Insert(Row(i, "x")).ok());
  int count = 0;
  rel.Scan([&](const Ref&, const Tuple&) { return ++count < 2; });
  EXPECT_EQ(count, 2);
}

TEST(RelationTest, AllRefsAreLive) {
  Relation rel(1, "r", TwoColumnSchema());
  for (int i = 1; i <= 4; ++i) ASSERT_TRUE(rel.Insert(Row(i, "x")).ok());
  ASSERT_TRUE(rel.EraseByKey(Tuple{Value::MakeInt(2)}).ok());
  std::vector<Ref> refs = rel.AllRefs();
  EXPECT_EQ(refs.size(), 3u);
  for (const Ref& r : refs) EXPECT_TRUE(rel.IsLive(r));
}

TEST(RelationTest, ModCountTracksMutations) {
  Relation rel(1, "r", TwoColumnSchema());
  uint64_t m0 = rel.mod_count();
  ASSERT_TRUE(rel.Insert(Row(1, "a")).ok());
  uint64_t m1 = rel.mod_count();
  EXPECT_GT(m1, m0);
  ASSERT_TRUE(rel.EraseByKey(Tuple{Value::MakeInt(1)}).ok());
  EXPECT_GT(rel.mod_count(), m1);
  // Failed mutations do not bump the counter.
  uint64_t m2 = rel.mod_count();
  EXPECT_FALSE(rel.EraseByKey(Tuple{Value::MakeInt(9)}).ok());
  EXPECT_EQ(rel.mod_count(), m2);
}

TEST(RelationTest, ClearRemovesEverything) {
  Relation rel(1, "r", TwoColumnSchema());
  for (int i = 1; i <= 3; ++i) ASSERT_TRUE(rel.Insert(Row(i, "x")).ok());
  rel.Clear();
  EXPECT_TRUE(rel.empty());
  EXPECT_EQ(rel.AllRefs().size(), 0u);
  // Insert after clear works and produces live refs.
  Ref ref = *rel.Insert(Row(1, "y"));
  EXPECT_TRUE(rel.IsLive(ref));
}

TEST(RelationTest, CompositeKeys) {
  auto schema = Schema::Make(
      {{"a", Type::Int()}, {"b", Type::Int()}, {"c", Type::String()}},
      {"a", "b"});
  Relation rel(1, "r", *schema);
  ASSERT_TRUE(rel.Insert(Tuple{Value::MakeInt(1), Value::MakeInt(1),
                               Value::MakeString("x")})
                  .ok());
  ASSERT_TRUE(rel.Insert(Tuple{Value::MakeInt(1), Value::MakeInt(2),
                               Value::MakeString("y")})
                  .ok());
  auto dup = rel.Insert(
      Tuple{Value::MakeInt(1), Value::MakeInt(1), Value::MakeString("z")});
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  auto found =
      rel.SelectByKey(Tuple{Value::MakeInt(1), Value::MakeInt(2)});
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->at(2).AsString(), "y");
}

}  // namespace
}  // namespace pascalr
