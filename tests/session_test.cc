#include "pascalr/session.h"

#include <sstream>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace pascalr {
namespace {

TEST(SessionTest, DeclaresTypesAndRelations) {
  Database db;
  Session session(&db);
  Status st = session.ExecuteScript(R"(
    TYPE color = (red, green, blue);
    VAR paint : RELATION <pid> OF RECORD
          pid : 1..999; hue : color; label : STRING(8) END;
  )");
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_NE(db.FindEnum("color"), nullptr);
  Relation* paint = db.FindRelation("paint");
  ASSERT_NE(paint, nullptr);
  EXPECT_EQ(paint->schema().num_components(), 3u);
  EXPECT_EQ(paint->schema().component(1).type.kind(), TypeKind::kEnum);
}

TEST(SessionTest, InsertAndDelete) {
  Database db;
  Session session(&db);
  ASSERT_TRUE(session
                  .ExecuteScript(R"(
    TYPE color = (red, green, blue);
    VAR paint : RELATION <pid> OF RECORD
          pid : 1..999; hue : color END;
    paint :+ [<1, red>];
    paint :+ [<2, blue>];
  )")
                  .ok());
  EXPECT_EQ(db.FindRelation("paint")->cardinality(), 2u);

  // Duplicate key rejected.
  Status dup = session.ExecuteScript("paint :+ [<1, green>];");
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);

  ASSERT_TRUE(session.ExecuteScript("paint :- [<1>];").ok());
  EXPECT_EQ(db.FindRelation("paint")->cardinality(), 1u);
  EXPECT_EQ(session.ExecuteScript("paint :- [<1>];").code(),
            StatusCode::kNotFound);
}

TEST(SessionTest, InsertErrors) {
  Database db;
  Session session(&db);
  ASSERT_TRUE(session
                  .ExecuteScript(R"(
    VAR r : RELATION <a> OF RECORD a : 1..9; s : STRING(3) END;
  )")
                  .ok());
  // Arity mismatch.
  EXPECT_EQ(session.ExecuteScript("r :+ [<1>];").code(),
            StatusCode::kInvalidArgument);
  // Kind mismatch.
  EXPECT_EQ(session.ExecuteScript("r :+ [<'x', 'y'>];").code(),
            StatusCode::kTypeMismatch);
  // Subrange violation surfaces from the relation.
  EXPECT_EQ(session.ExecuteScript("r :+ [<99, 'y'>];").code(),
            StatusCode::kOutOfRange);
  // Unknown relation.
  EXPECT_EQ(session.ExecuteScript("zz :+ [<1>];").code(),
            StatusCode::kNotFound);
}

TEST(SessionTest, AssignmentCreatesResultRelation) {
  Database db;
  Session session(&db);
  ASSERT_TRUE(CreateUniversitySchema(&db).ok());
  ASSERT_TRUE(PopulateSmallExample(&db).ok());
  ASSERT_TRUE(session
                  .ExecuteScript(
                      "profs := [<e.ename> OF EACH e IN employees: "
                      "e.estatus = professor];")
                  .ok());
  Relation* profs = db.FindRelation("profs");
  ASSERT_NE(profs, nullptr);
  EXPECT_EQ(profs->cardinality(), 4u);
  EXPECT_EQ(profs->schema().component(0).name, "ename");

  // Re-assignment replaces the relation.
  ASSERT_TRUE(session
                  .ExecuteScript(
                      "profs := [<e.ename> OF EACH e IN employees: "
                      "e.estatus = student];")
                  .ok());
  EXPECT_EQ(db.FindRelation("profs")->cardinality(), 1u);
}

TEST(SessionTest, QueryResultsCanBeQueried) {
  Database db;
  Session session(&db);
  ASSERT_TRUE(CreateUniversitySchema(&db).ok());
  ASSERT_TRUE(PopulateSmallExample(&db).ok());
  ASSERT_TRUE(session
                  .ExecuteScript(
                      "profs := [<e.enr, e.ename> OF EACH e IN employees: "
                      "e.estatus = professor];")
                  .ok());
  // The derived relation participates in further selections.
  auto run = session.Query(
      "[<x.ename> OF EACH x IN profs: SOME t IN timetable "
      "((t.tenr = x.enr))]");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(testing_util::FirstStrings(run->tuples),
            (std::set<std::string>{"Alice", "Bob", "Carol", "Frank"}));
}

TEST(SessionTest, PrintWritesToStream) {
  Database db;
  std::ostringstream out;
  Session session(&db, &out);
  ASSERT_TRUE(session
                  .ExecuteScript(R"(
    VAR r : RELATION <a> OF RECORD a : 1..9 END;
    r :+ [<3>];
    PRINT r;
  )")
                  .ok());
  EXPECT_NE(out.str().find("r (1 elements)"), std::string::npos);
  EXPECT_NE(out.str().find("<3>"), std::string::npos);
}

TEST(SessionTest, ExplainWritesPlan) {
  Database db;
  std::ostringstream out;
  Session session(&db, &out);
  ASSERT_TRUE(CreateUniversitySchema(&db).ok());
  ASSERT_TRUE(PopulateSmallExample(&db).ok());
  ASSERT_TRUE(session
                  .ExecuteScript(
                      "EXPLAIN [<e.ename> OF EACH e IN employees: "
                      "e.estatus = professor];")
                  .ok());
  EXPECT_NE(out.str().find("optimization level"), std::string::npos);
  EXPECT_NE(out.str().find("collection phase"), std::string::npos);
}

TEST(SessionTest, ParseErrorsPropagate) {
  Database db;
  Session session(&db);
  EXPECT_EQ(session.ExecuteScript("PRINT ;").code(), StatusCode::kParseError);
  EXPECT_EQ(session.Query("[<oops]").status().code(),
            StatusCode::kParseError);
}

TEST(SessionTest, NonEnumTypeDeclarationsRejectedWithGuidance) {
  Database db;
  Session session(&db);
  Status st = session.ExecuteScript("TYPE year = 1900..1999;");
  EXPECT_EQ(st.code(), StatusCode::kUnsupported);
}

TEST(SessionTest, OptionsControlPlanning) {
  Database db;
  Session session(&db);
  ASSERT_TRUE(CreateUniversitySchema(&db).ok());
  ASSERT_TRUE(PopulateSmallExample(&db).ok());
  session.options().level = OptLevel::kNaive;
  auto naive_run = session.Query(Example21QuerySource());
  ASSERT_TRUE(naive_run.ok());
  EXPECT_EQ(naive_run->planned.plan.level, OptLevel::kNaive);

  session.options().level = OptLevel::kQuantPush;
  auto opt_run = session.Query(Example21QuerySource());
  ASSERT_TRUE(opt_run.ok());
  EXPECT_LT(opt_run->stats.TotalWork(), naive_run->stats.TotalWork());
}

TEST(SessionTest, TotalStatsAccumulate) {
  Database db;
  Session session(&db);
  ASSERT_TRUE(CreateUniversitySchema(&db).ok());
  ASSERT_TRUE(PopulateSmallExample(&db).ok());
  ASSERT_TRUE(session.Query(Example21QuerySource()).ok());
  uint64_t after_one = session.total_stats().TotalWork();
  ASSERT_TRUE(session.Query(Example21QuerySource()).ok());
  EXPECT_GT(session.total_stats().TotalWork(), after_one);
}

}  // namespace
}  // namespace pascalr
