// Paper §3.2: "The first step [building an index] can be omitted, if
// permanent indexes exist." The planner option use_permanent_indexes
// reuses fresh catalog indexes for ungated, unextended index specs.

#include <gtest/gtest.h>

#include "opt/planner.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::FirstStrings;
using testing_util::MakeUniversityDb;
using testing_util::MustBind;

const char* kQuery =
    "[<e.ename> OF EACH e IN employees: SOME t IN timetable "
    "((t.tenr = e.enr))]";

TEST(PermanentIndexTest, ReusesFreshCatalogIndex) {
  auto db = MakeUniversityDb();
  // The planner picks the build side by scan order; cover both candidates.
  ASSERT_TRUE(db->EnsureIndex("timetable", "tenr", false).ok());
  ASSERT_TRUE(db->EnsureIndex("employees", "enr", false).ok());

  PlannerOptions options;
  options.level = OptLevel::kParallel;
  options.use_permanent_indexes = true;
  Result<QueryRun> run = RunQuery(*db, MustBind(*db, kQuery), options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GE(run->stats.permanent_index_hits, 1u);
  EXPECT_EQ(FirstStrings(run->tuples),
            (std::set<std::string>{"Alice", "Bob", "Carol", "Dave", "Frank"}));
}

TEST(PermanentIndexTest, DisabledByDefault) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->EnsureIndex("timetable", "tenr", false).ok());
  PlannerOptions options;
  options.level = OptLevel::kParallel;
  Result<QueryRun> run = RunQuery(*db, MustBind(*db, kQuery), options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->stats.permanent_index_hits, 0u);
}

TEST(PermanentIndexTest, NoIndexNoHit) {
  auto db = MakeUniversityDb();
  PlannerOptions options;
  options.level = OptLevel::kParallel;
  options.use_permanent_indexes = true;
  Result<QueryRun> run = RunQuery(*db, MustBind(*db, kQuery), options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->stats.permanent_index_hits, 0u);
  EXPECT_EQ(FirstStrings(run->tuples),
            (std::set<std::string>{"Alice", "Bob", "Carol", "Dave", "Frank"}));
}

TEST(PermanentIndexTest, StaleIndexIsNotUsed) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->EnsureIndex("timetable", "tenr", false).ok());
  // Mutate timetable: the permanent index is now stale and must not be
  // consulted (results must include the new entry).
  Relation* timetable = db->FindRelation("timetable");
  ASSERT_TRUE(timetable
                  ->Insert(Tuple{Value::MakeInt(5), Value::MakeInt(10),
                                 Value::MakeEnum(2), Value::MakeInt(9001000),
                                 Value::MakeString("R7")})
                  .ok());
  PlannerOptions options;
  options.level = OptLevel::kParallel;
  options.use_permanent_indexes = true;
  Result<QueryRun> run = RunQuery(*db, MustBind(*db, kQuery), options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->stats.permanent_index_hits, 0u);
  EXPECT_EQ(FirstStrings(run->tuples).count("Erin"), 1u);
}

TEST(PermanentIndexTest, GatedSpecsNeverUsePermanent) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->EnsureIndex("timetable", "tenr", false).ok());
  // At O2 the gate on e does not touch the timetable index; at a level
  // where the timetable side carries a gate, the gated index must be
  // transient. Construct one: monadic term on t in the same conjunction.
  const char* gated_query =
      "[<e.ename> OF EACH e IN employees: SOME t IN timetable "
      "((t.tenr = e.enr) AND (t.ttime >= 9001000))]";
  PlannerOptions options;
  options.level = OptLevel::kOneStep;
  options.use_permanent_indexes = true;
  Result<QueryRun> run = RunQuery(*db, MustBind(*db, gated_query), options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->stats.permanent_index_hits, 0u);
}

TEST(PermanentIndexTest, ExtendedRangesNeverUsePermanent) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->EnsureIndex("papers", "penr", false).ok());
  // At O3 p's range becomes [papers: pyear = 1977]; the full-relation
  // permanent index on penr must not stand in for the restricted one.
  const char* query =
      "[<e.ename> OF EACH e IN employees: SOME p IN papers "
      "((p.pyear = 1977) AND (p.penr = e.enr))]";
  PlannerOptions options;
  options.level = OptLevel::kRangeExt;
  options.use_permanent_indexes = true;
  Result<QueryRun> run = RunQuery(*db, MustBind(*db, query), options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->stats.permanent_index_hits, 0u);
  EXPECT_EQ(FirstStrings(run->tuples),
            (std::set<std::string>{"Alice", "Carol", "Dave"}));
}

TEST(PermanentIndexTest, AllLevelsAgreeWithAndWithoutPermanentIndexes) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->EnsureIndex("timetable", "tenr", false).ok());
  ASSERT_TRUE(db->EnsureIndex("timetable", "tcnr", false).ok());
  ASSERT_TRUE(db->EnsureIndex("papers", "penr", false).ok());
  for (int level = 0; level <= 4; ++level) {
    PlannerOptions plain;
    plain.level = static_cast<OptLevel>(level);
    PlannerOptions with_permanent = plain;
    with_permanent.use_permanent_indexes = true;

    auto a = RunQuery(*db, MustBind(*db, Example21QuerySource()), plain);
    auto b = RunQuery(*db, MustBind(*db, Example21QuerySource()),
                      with_permanent);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(FirstStrings(a->tuples), FirstStrings(b->tuples))
        << "level " << level;
  }
}

}  // namespace
}  // namespace pascalr
