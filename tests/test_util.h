// Shared helpers for the test suites: the Figure 1 database and common
// bind/normalize shortcuts.

#ifndef PASCALR_TESTS_TEST_UTIL_H_
#define PASCALR_TESTS_TEST_UTIL_H_

#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "normalize/standard_form.h"
#include "parser/parser.h"
#include "pascalr/sample_db.h"
#include "semantics/binder.h"

namespace pascalr {
namespace testing_util {

/// A database with the Figure 1 schema and the small hand-checked data.
inline std::unique_ptr<Database> MakeUniversityDb(bool populate = true) {
  auto db = std::make_unique<Database>();
  Status st = CreateUniversitySchema(db.get());
  EXPECT_TRUE(st.ok()) << st.ToString();
  if (populate) {
    st = PopulateSmallExample(db.get());
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return db;
}

/// Parses and binds a selection against `db`; aborts the test on failure.
inline BoundQuery MustBind(const Database& db, const std::string& source) {
  Parser parser(source);
  Result<SelectionExpr> sel = parser.ParseSelectionOnly();
  EXPECT_TRUE(sel.ok()) << sel.status().ToString() << "\nsource: " << source;
  Binder binder(&db);
  Result<BoundQuery> bound = binder.Bind(std::move(sel).value());
  EXPECT_TRUE(bound.ok()) << bound.status().ToString() << "\nsource: "
                          << source;
  return std::move(bound).value();
}

/// Parses, binds, and normalises.
inline StandardForm MustStandardForm(const Database& db,
                                     const std::string& source) {
  Result<StandardForm> sf = BuildStandardForm(MustBind(db, source));
  EXPECT_TRUE(sf.ok()) << sf.status().ToString();
  return std::move(sf).value();
}

/// First-column string values of a tuple set (most tests project ename).
inline std::set<std::string> FirstStrings(const std::vector<Tuple>& tuples) {
  std::set<std::string> out;
  for (const Tuple& t : tuples) out.insert(t.at(0).AsString());
  return out;
}

/// Canonical multiset of whole tuples, for order-insensitive comparison.
inline std::multiset<std::string> TupleStrings(
    const std::vector<Tuple>& tuples) {
  std::multiset<std::string> out;
  for (const Tuple& t : tuples) out.insert(t.ToString());
  return out;
}

}  // namespace testing_util
}  // namespace pascalr

#endif  // PASCALR_TESTS_TEST_UTIL_H_
