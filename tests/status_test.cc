#include "base/status.h"

#include <gtest/gtest.h>

namespace pascalr {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    std::string_view name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists, "AlreadyExists"},
      {Status::TypeMismatch("d"), StatusCode::kTypeMismatch, "TypeMismatch"},
      {Status::ParseError("e"), StatusCode::kParseError, "ParseError"},
      {Status::Unsupported("f"), StatusCode::kUnsupported, "Unsupported"},
      {Status::OutOfRange("g"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::Internal("h"), StatusCode::kInternal, "Internal"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(StatusCodeToString(c.code), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Status Fails() { return Status::OutOfRange("boom"); }

Status Propagates() {
  PASCALR_RETURN_IF_ERROR(Fails());
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Propagates(), Status::OutOfRange("boom"));
}

Result<int> MakeValue(bool ok) {
  if (!ok) return Status::InvalidArgument("no");
  return 41;
}

Result<int> UsesAssignOrReturn(bool ok) {
  PASCALR_ASSIGN_OR_RETURN(int v, MakeValue(ok));
  return v + 1;
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> good = UsesAssignOrReturn(true);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);

  Result<int> bad = UsesAssignOrReturn(false);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

TEST(ResultTest, NonDefaultConstructibleValues) {
  struct NoDefault {
    explicit NoDefault(int x) : value(x) {}
    int value;
  };
  Result<NoDefault> r(NoDefault(3));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value, 3);
  Result<NoDefault> err(Status::Internal("nope"));
  EXPECT_FALSE(err.ok());
}

}  // namespace
}  // namespace pascalr
