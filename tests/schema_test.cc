#include "value/schema.h"

#include <gtest/gtest.h>

namespace pascalr {
namespace {

Schema MakeEmployeeSchema() {
  auto status = MakeEnum("statustype",
                         {"student", "technician", "assistant", "professor"});
  auto result = Schema::Make({{"enr", Type::IntRange(1, 99)},
                              {"ename", Type::String(10)},
                              {"estatus", Type::Enum(status)}},
                             {"enr"});
  return *result;
}

TEST(SchemaTest, MakeRejectsDuplicateComponents) {
  auto result =
      Schema::Make({{"a", Type::Int()}, {"a", Type::Int()}}, {"a"});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, MakeRejectsUnknownKeyComponent) {
  auto result = Schema::Make({{"a", Type::Int()}}, {"b"});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, MakeRejectsDuplicateKeyComponent) {
  auto result = Schema::Make({{"a", Type::Int()}}, {"a", "a"});
  EXPECT_FALSE(result.ok());
}

TEST(SchemaTest, EmptyKeyMeansAllComponents) {
  auto result =
      Schema::Make({{"a", Type::Int()}, {"b", Type::Int()}}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->key_positions(), (std::vector<size_t>{0, 1}));
}

TEST(SchemaTest, FindComponent) {
  Schema s = MakeEmployeeSchema();
  EXPECT_EQ(s.FindComponent("enr"), 0);
  EXPECT_EQ(s.FindComponent("estatus"), 2);
  EXPECT_EQ(s.FindComponent("nope"), -1);
}

TEST(SchemaTest, ValidateAcceptsWellTypedTuple) {
  Schema s = MakeEmployeeSchema();
  Tuple t{Value::MakeInt(7), Value::MakeString("Grace"), Value::MakeEnum(3)};
  EXPECT_TRUE(s.ValidateTuple(t).ok());
}

TEST(SchemaTest, ValidateRejectsArityMismatch) {
  Schema s = MakeEmployeeSchema();
  Tuple t{Value::MakeInt(7)};
  EXPECT_EQ(s.ValidateTuple(t).code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ValidateRejectsWrongKind) {
  Schema s = MakeEmployeeSchema();
  Tuple t{Value::MakeString("7"), Value::MakeString("Grace"),
          Value::MakeEnum(3)};
  EXPECT_EQ(s.ValidateTuple(t).code(), StatusCode::kTypeMismatch);
}

TEST(SchemaTest, ValidateEnforcesSubrange) {
  Schema s = MakeEmployeeSchema();
  Tuple low{Value::MakeInt(0), Value::MakeString("G"), Value::MakeEnum(0)};
  Tuple high{Value::MakeInt(100), Value::MakeString("G"), Value::MakeEnum(0)};
  EXPECT_EQ(s.ValidateTuple(low).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(s.ValidateTuple(high).code(), StatusCode::kOutOfRange);
}

TEST(SchemaTest, ValidateEnforcesStringLength) {
  Schema s = MakeEmployeeSchema();
  Tuple t{Value::MakeInt(1), Value::MakeString("longer than ten chars"),
          Value::MakeEnum(0)};
  EXPECT_EQ(s.ValidateTuple(t).code(), StatusCode::kOutOfRange);
}

TEST(SchemaTest, ValidateEnforcesEnumOrdinalBounds) {
  Schema s = MakeEmployeeSchema();
  Tuple neg{Value::MakeInt(1), Value::MakeString("G"), Value::MakeEnum(-1)};
  Tuple big{Value::MakeInt(1), Value::MakeString("G"), Value::MakeEnum(4)};
  EXPECT_EQ(s.ValidateTuple(neg).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(s.ValidateTuple(big).code(), StatusCode::kOutOfRange);
}

TEST(SchemaTest, KeyOfProjectsKeyComponents) {
  auto schema = Schema::Make({{"penr", Type::Int()},
                              {"pyear", Type::Int()},
                              {"ptitle", Type::String()}},
                             {"ptitle", "penr"});
  ASSERT_TRUE(schema.ok());
  Tuple t{Value::MakeInt(4), Value::MakeInt(1977), Value::MakeString("P")};
  Tuple key = schema->KeyOf(t);
  ASSERT_EQ(key.size(), 2u);
  EXPECT_EQ(key.at(0).AsString(), "P");
  EXPECT_EQ(key.at(1).AsInt(), 4);
}

TEST(SchemaTest, ToStringMentionsKeyAndComponents) {
  Schema s = MakeEmployeeSchema();
  std::string str = s.ToString();
  EXPECT_NE(str.find("RELATION <enr>"), std::string::npos);
  EXPECT_NE(str.find("ename : string[10]"), std::string::npos);
}

TEST(TupleTest, CompareAndProject) {
  Tuple a{Value::MakeInt(1), Value::MakeString("x")};
  Tuple b{Value::MakeInt(1), Value::MakeString("y")};
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_EQ(a.Compare(a), 0);
  Tuple shorter{Value::MakeInt(1)};
  EXPECT_LT(shorter.Compare(a), 0);

  Tuple p = a.Project({1, 0});
  EXPECT_EQ(p.at(0).AsString(), "x");
  EXPECT_EQ(p.at(1).AsInt(), 1);
}

TEST(TupleTest, HashConsistency) {
  Tuple a{Value::MakeInt(1), Value::MakeString("x")};
  Tuple b{Value::MakeInt(1), Value::MakeString("x")};
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_EQ(a.ToString(), "<1, 'x'>");
}

}  // namespace
}  // namespace pascalr
