// Strategy 3: the Example 4.5 derivation — from the Example 2.2 standard
// form to extended ranges, with one conjunction removed.

#include "opt/range_extension.h"

#include <gtest/gtest.h>

#include "pascalr/sample_db.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::MakeUniversityDb;
using testing_util::MustStandardForm;

TEST(RangeExtensionTest, Example45Derivation) {
  auto db = MakeUniversityDb(false);
  StandardForm sf = MustStandardForm(*db, Example21QuerySource());
  ASSERT_EQ(sf.matrix.disjuncts.size(), 3u);

  RangeExtensionReport report = ApplyRangeExtension(&sf);

  // e's range: [EACH e IN employees: estatus = professor].
  const QuantifiedVar* e = sf.FindVar("e");
  ASSERT_NE(e, nullptr);
  ASSERT_TRUE(e->range.IsExtended());
  EXPECT_NE(e->range.ToString("e").find("professor"), std::string::npos);

  // p's range absorbed the negated pyear disjunct: [papers: pyear = 1977].
  const QuantifiedVar* p = sf.FindVar("p");
  ASSERT_TRUE(p->range.IsExtended());
  EXPECT_NE(p->range.ToString("p").find("(p.pyear = 1977)"),
            std::string::npos);

  // c's range: [courses: clevel <= sophomore].
  const QuantifiedVar* c = sf.FindVar("c");
  ASSERT_TRUE(c->range.IsExtended());
  EXPECT_NE(c->range.ToString("c").find("sophomore"), std::string::npos);

  // t keeps its plain range.
  EXPECT_FALSE(sf.FindVar("t")->range.IsExtended());

  // Example 4.5: "There is one conjunction less to be evaluated."
  EXPECT_EQ(report.disjuncts_removed, 1u);
  ASSERT_EQ(sf.matrix.disjuncts.size(), 2u);
  // Remaining matrix: (penr <> enr) OR (tenr = enr AND tcnr = cnr).
  std::multiset<size_t> sizes;
  for (const Conjunction& conj : sf.matrix.disjuncts) {
    sizes.insert(conj.terms.size());
  }
  EXPECT_EQ(sizes, (std::multiset<size_t>{1, 2}));

  // The report names all four moved terms (prof x3 collapses to one entry
  // per extension applied: prof, pyear, sophomore).
  EXPECT_EQ(report.extensions.size(), 3u);
}

TEST(RangeExtensionTest, ExistentialFactorOnlyWhenInEveryReferencingDisjunct) {
  auto db = MakeUniversityDb(false);
  // prof appears in only one of two disjuncts referencing e: no extension.
  StandardForm sf = MustStandardForm(
      *db,
      "[<e.ename> OF EACH e IN employees: "
      "(e.estatus = professor) AND (e.enr = 1) OR (e.enr = 2)]");
  RangeExtensionReport report = ApplyRangeExtension(&sf);
  EXPECT_FALSE(sf.FindVar("e")->range.IsExtended());
  EXPECT_TRUE(report.extensions.empty());
}

TEST(RangeExtensionTest, ExistentialQuantifiedVariable) {
  auto db = MakeUniversityDb(false);
  StandardForm sf = MustStandardForm(
      *db,
      "[<e.ename> OF EACH e IN employees: SOME p IN papers "
      "((p.pyear = 1977) AND (p.penr = e.enr))]");
  ApplyRangeExtension(&sf);
  const QuantifiedVar* p = sf.FindVar("p");
  ASSERT_TRUE(p->range.IsExtended());
  // The dyadic term stays in the matrix.
  ASSERT_EQ(sf.matrix.disjuncts.size(), 1u);
  EXPECT_EQ(sf.matrix.disjuncts[0].terms.size(), 1u);
  EXPECT_TRUE(sf.matrix.disjuncts[0].terms[0].IsDyadic());
}

TEST(RangeExtensionTest, UniversalOnlySingleMonadicDisjunctsAbsorb) {
  auto db = MakeUniversityDb(false);
  // The pyear disjunct has TWO terms (pyear and penr): not absorbable.
  StandardForm sf = MustStandardForm(
      *db,
      "[<e.ename> OF EACH e IN employees: ALL p IN papers "
      "((p.pyear <> 1977) AND (p.penr <> 1) OR (p.penr = e.enr))]");
  RangeExtensionReport report = ApplyRangeExtension(&sf);
  EXPECT_FALSE(sf.FindVar("p")->range.IsExtended());
  EXPECT_EQ(report.disjuncts_removed, 0u);
}

TEST(RangeExtensionTest, UniversalNegationFlipsOperator) {
  auto db = MakeUniversityDb(false);
  StandardForm sf = MustStandardForm(
      *db,
      "[<e.ename> OF EACH e IN employees: ALL p IN papers "
      "((p.pyear < 1977) OR (p.penr = e.enr))]");
  ApplyRangeExtension(&sf);
  const QuantifiedVar* p = sf.FindVar("p");
  ASSERT_TRUE(p->range.IsExtended());
  // NOT (pyear < 1977) == pyear >= 1977.
  EXPECT_NE(p->range.ToString("p").find("(p.pyear >= 1977)"),
            std::string::npos);
}

TEST(RangeExtensionTest, EmptiedDisjunctMeansTrueMatrix) {
  auto db = MakeUniversityDb(false);
  // The whole wff is one monadic term over a free variable: extending e
  // empties the only disjunct, so the matrix becomes TRUE.
  StandardForm sf = MustStandardForm(
      *db, "[<e.ename> OF EACH e IN employees: e.estatus = professor]");
  ApplyRangeExtension(&sf);
  EXPECT_TRUE(sf.FindVar("e")->range.IsExtended());
  EXPECT_TRUE(sf.matrix.IsTrue());
}

TEST(RangeExtensionTest, AllDisjunctsAbsorbedMeansFalseMatrix) {
  auto db = MakeUniversityDb(false);
  // ALL p (pyear <> 1977): the single disjunct is absorbed; the remaining
  // matrix is FALSE — correct because the query then holds only if the
  // extended range is empty, which the planner checks at runtime.
  StandardForm sf = MustStandardForm(
      *db,
      "[<e.ename> OF EACH e IN employees: ALL p IN papers "
      "((p.pyear <> 1977))]");
  RangeExtensionReport report = ApplyRangeExtension(&sf);
  EXPECT_EQ(report.disjuncts_removed, 1u);
  EXPECT_TRUE(sf.matrix.IsFalse());
}

TEST(RangeExtensionTest, MergesWithUserWrittenExtension) {
  auto db = MakeUniversityDb(false);
  StandardForm sf = MustStandardForm(
      *db,
      "[<e.ename> OF EACH e IN [EACH e IN employees: e.enr >= 2]: "
      "(e.estatus = professor)]");
  ApplyRangeExtension(&sf);
  const QuantifiedVar* e = sf.FindVar("e");
  ASSERT_TRUE(e->range.IsExtended());
  std::string rendered = e->range.ToString("e");
  EXPECT_NE(rendered.find("e.enr >= 2"), std::string::npos);
  EXPECT_NE(rendered.find("professor"), std::string::npos);
}

TEST(RangeExtensionTest, FreeVariableBlockedByVariableFreeDisjunct) {
  auto db = MakeUniversityDb(false);
  // The second disjunct does not mention e: restricting e's range would
  // wrongly exclude employees for which that disjunct holds.
  StandardForm sf = MustStandardForm(
      *db,
      "[<e.ename> OF EACH e IN employees: (e.estatus = professor) "
      "AND (e.enr >= 1) OR SOME p IN papers ((p.pyear = 1977))]");
  RangeExtensionReport report = ApplyRangeExtension(&sf);
  EXPECT_FALSE(sf.FindVar("e")->range.IsExtended());
  for (const RangeExtensionReport::Entry& entry : report.extensions) {
    EXPECT_NE(entry.var, "e");  // p's own extension is legitimate
  }
}

TEST(RangeExtensionTest, CnfExistentialDisjunctiveRestriction) {
  auto db = MakeUniversityDb(false);
  // p's monadic terms differ per disjunct: no conjunctive factor exists,
  // but (pyear = 1977) OR (pyear = 1975) is implied — the paper's §4.3
  // closing remark (CNF extensions).
  StandardForm sf = MustStandardForm(
      *db,
      "[<e.ename> OF EACH e IN employees: SOME p IN papers "
      "((p.pyear = 1977) AND (p.penr = e.enr) OR "
      "(p.pyear = 1975) AND (p.penr = e.enr))]");
  size_t terms_before = 0;
  for (const Conjunction& c : sf.matrix.disjuncts) {
    terms_before += c.terms.size();
  }
  RangeExtensionReport report = ApplyRangeExtension(&sf, /*use_cnf=*/true);
  EXPECT_EQ(report.cnf_extended, (std::vector<std::string>{"p"}));
  const QuantifiedVar* p = sf.FindVar("p");
  ASSERT_TRUE(p->range.IsExtended());
  std::string rendered = p->range.ToString("p");
  EXPECT_NE(rendered.find("OR"), std::string::npos);
  EXPECT_NE(rendered.find("1977"), std::string::npos);
  EXPECT_NE(rendered.find("1975"), std::string::npos);
  // The matrix keeps its terms: only the range shrank.
  size_t terms_after = 0;
  for (const Conjunction& c : sf.matrix.disjuncts) {
    terms_after += c.terms.size();
  }
  EXPECT_EQ(terms_after, terms_before);
  // Without the flag, nothing happens.
  StandardForm plain = MustStandardForm(
      *db,
      "[<e.ename> OF EACH e IN employees: SOME p IN papers "
      "((p.pyear = 1977) AND (p.penr = e.enr) OR "
      "(p.pyear = 1975) AND (p.penr = e.enr))]");
  RangeExtensionReport none = ApplyRangeExtension(&plain, /*use_cnf=*/false);
  EXPECT_TRUE(none.cnf_extended.empty());
  EXPECT_FALSE(plain.FindVar("p")->range.IsExtended());
}

TEST(RangeExtensionTest, CnfUniversalAbsorbsMultiTermMonadicDisjunct) {
  auto db = MakeUniversityDb(false);
  StandardForm sf = MustStandardForm(
      *db,
      "[<e.ename> OF EACH e IN employees: ALL p IN papers "
      "((p.pyear <> 1977) AND (p.penr <> 1) OR (p.penr = e.enr))]");
  RangeExtensionReport report = ApplyRangeExtension(&sf, /*use_cnf=*/true);
  EXPECT_EQ(report.cnf_extended, (std::vector<std::string>{"p"}));
  EXPECT_EQ(report.disjuncts_removed, 1u);
  const QuantifiedVar* p = sf.FindVar("p");
  ASSERT_TRUE(p->range.IsExtended());
  // NOT (pyear <> 1977 AND penr <> 1) == (pyear = 1977) OR (penr = 1).
  std::string rendered = p->range.ToString("p");
  EXPECT_NE(rendered.find("(p.pyear = 1977) OR (p.penr = 1)"),
            std::string::npos);
  ASSERT_EQ(sf.matrix.disjuncts.size(), 1u);
}

TEST(RangeExtensionTest, CnfNoOpWhenNothingQualifies) {
  auto db = MakeUniversityDb(false);
  // Dyadic-only matrix: no monadic information to move anywhere; the
  // matrix must survive untouched (regression: moved-from disjuncts).
  StandardForm sf = MustStandardForm(
      *db,
      "[<e.ename> OF EACH e IN employees: ALL p IN papers "
      "((p.penr <> e.enr) OR SOME t IN timetable ((t.tenr = e.enr)))]");
  size_t disjuncts = sf.matrix.disjuncts.size();
  RangeExtensionReport report = ApplyRangeExtension(&sf, /*use_cnf=*/true);
  EXPECT_TRUE(report.cnf_extended.empty());
  EXPECT_EQ(sf.matrix.disjuncts.size(), disjuncts);
  for (const Conjunction& c : sf.matrix.disjuncts) {
    EXPECT_FALSE(c.terms.empty());
  }
}

TEST(RangeExtensionTest, ReportRendering) {
  auto db = MakeUniversityDb(false);
  StandardForm sf = MustStandardForm(*db, Example21QuerySource());
  RangeExtensionReport report = ApplyRangeExtension(&sf);
  std::string text = report.ToString();
  EXPECT_NE(text.find("range of e extended"), std::string::npos);
  EXPECT_NE(text.find("negated universal disjunct"), std::string::npos);
  EXPECT_NE(text.find("1 disjunct(s) removed"), std::string::npos);
}

}  // namespace
}  // namespace pascalr
