// Catalog statistics: the ANALYZE pass, histogram estimates, and the
// mod_count-based invalidation contract on Database.

#include "catalog/relation_stats.h"

#include <gtest/gtest.h>

#include "pascalr/sample_db.h"
#include "pascalr/session.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::MakeUniversityDb;

TEST(RelationStatsTest, CardinalityDistinctAndMinMax) {
  auto db = MakeUniversityDb();
  RelationStats stats = ComputeRelationStats(*db->FindRelation("employees"));
  EXPECT_EQ(stats.relation, "employees");
  EXPECT_EQ(stats.cardinality, 6u);
  ASSERT_EQ(stats.columns.size(), 3u);

  const ColumnStats& enr = stats.columns[0];
  EXPECT_EQ(enr.name, "enr");
  EXPECT_EQ(enr.distinct, 6u);
  EXPECT_TRUE(enr.numeric);
  ASSERT_TRUE(enr.has_min_max);
  EXPECT_EQ(enr.min.AsInt(), 1);
  EXPECT_EQ(enr.max.AsInt(), 6);

  const ColumnStats& ename = stats.columns[1];
  EXPECT_EQ(ename.distinct, 6u);
  EXPECT_FALSE(ename.numeric);  // strings carry no histogram
  ASSERT_TRUE(ename.has_min_max);
  EXPECT_EQ(ename.min.AsString(), "Alice");
  EXPECT_EQ(ename.max.AsString(), "Frank");

  // estatus: student=0 x1, assistant=2 x1, professor=3 x4.
  const ColumnStats& estatus = stats.columns[2];
  EXPECT_EQ(estatus.distinct, 3u);
  EXPECT_TRUE(estatus.numeric);
  EXPECT_EQ(estatus.histogram.total, 6u);
}

TEST(RelationStatsTest, HistogramEqualitySelectivityIsExactOnSmallDomains) {
  auto db = MakeUniversityDb();
  RelationStats employees =
      ComputeRelationStats(*db->FindRelation("employees"));
  // 4 of 6 employees are professors (ordinal 3); single-value buckets
  // answer equality exactly.
  double sel =
      employees.columns[2].Selectivity(CompareOp::kEq, Value::MakeEnum(3));
  EXPECT_NEAR(sel, 4.0 / 6.0, 1e-9);

  RelationStats papers = ComputeRelationStats(*db->FindRelation("papers"));
  // 3 of 5 papers are from 1977.
  double sel77 =
      papers.columns[1].Selectivity(CompareOp::kEq, Value::MakeInt(1977));
  EXPECT_NEAR(sel77, 3.0 / 5.0, 1e-9);
}

TEST(RelationStatsTest, HistogramRangeSelectivity) {
  auto db = MakeUniversityDb();
  RelationStats courses = ComputeRelationStats(*db->FindRelation("courses"));
  // clevel <= sophomore (ordinal 1): 2 of 4 courses.
  double sel =
      courses.columns[1].Selectivity(CompareOp::kLe, Value::MakeEnum(1));
  EXPECT_NEAR(sel, 0.5, 1e-9);
  // Out-of-range probes resolve exactly from min/max.
  EXPECT_NEAR(
      courses.columns[1].Selectivity(CompareOp::kLt, Value::MakeEnum(0)),
      0.0, 1e-9);
  EXPECT_NEAR(
      courses.columns[1].Selectivity(CompareOp::kLe, Value::MakeEnum(3)),
      1.0, 1e-9);
}

TEST(RelationStatsTest, StringColumnsFallBackToDistinctCounts) {
  auto db = MakeUniversityDb();
  RelationStats employees =
      ComputeRelationStats(*db->FindRelation("employees"));
  double sel = employees.columns[1].Selectivity(
      CompareOp::kEq, Value::MakeString("Alice"));
  EXPECT_NEAR(sel, 1.0 / 6.0, 1e-9);
  // Below/above the observed bounds: certain misses.
  EXPECT_NEAR(employees.columns[1].Selectivity(CompareOp::kEq,
                                               Value::MakeString("ZZZ")),
              0.0, 1e-9);
}

TEST(DatabaseStatsTest, AnalyzeCachesUntilMutation) {
  auto db = MakeUniversityDb();
  EXPECT_EQ(db->FindFreshStats("employees"), nullptr);

  Result<const RelationStats*> stats = db->Analyze("employees");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ((*stats)->cardinality, 6u);
  EXPECT_EQ(db->FindFreshStats("employees"), *stats);

  // A mutation invalidates the cached statistics...
  Relation* employees = db->FindRelation("employees");
  ASSERT_TRUE(employees
                  ->Insert(Tuple{Value::MakeInt(7), Value::MakeString("Gus"),
                                 Value::MakeEnum(0)})
                  .ok());
  EXPECT_EQ(db->FindFreshStats("employees"), nullptr);

  // ...and the next ANALYZE recomputes.
  Result<const RelationStats*> fresh = db->Analyze("employees");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ((*fresh)->cardinality, 7u);
  EXPECT_NE(db->FindFreshStats("employees"), nullptr);
}

TEST(DatabaseStatsTest, AnalyzeAllAndUnknownRelation) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->AnalyzeAll().ok());
  for (const std::string& name : db->RelationNames()) {
    EXPECT_NE(db->FindFreshStats(name), nullptr) << name;
  }
  EXPECT_FALSE(db->Analyze("nonexistent").ok());
}

TEST(DatabaseStatsTest, DropRelationDiscardsStats) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->Analyze("papers").ok());
  ASSERT_TRUE(db->DropRelation("papers").ok());
  EXPECT_EQ(db->FindFreshStats("papers"), nullptr);
}

TEST(SessionStatsTest, AnalyzeStatement) {
  auto db = MakeUniversityDb();
  std::ostringstream out;
  Session session(db.get(), &out);
  ASSERT_TRUE(session.ExecuteScript("ANALYZE employees;").ok());
  EXPECT_NE(out.str().find("employees: 6 elements"), std::string::npos);
  EXPECT_NE(db->FindFreshStats("employees"), nullptr);

  ASSERT_TRUE(session.ExecuteScript("ANALYZE;").ok());
  EXPECT_NE(out.str().find("analyzed 4 relations"), std::string::npos);
  EXPECT_NE(db->FindFreshStats("timetable"), nullptr);
}

TEST(SessionStatsTest, AnalyzeAndSetAreNotReservedWords) {
  // ANALYZE and SET are contextual keywords: relations and components
  // may keep those names.
  Database db;
  std::ostringstream out;
  Session session(&db, &out);
  Status st = session.ExecuteScript(
      "VAR set : RELATION <a> OF RECORD a : 1..99; analyze : 1..99 END;\n"
      "set :+ [<1, 2>];\n"
      "out := [<x.analyze> OF EACH x IN set: x.a < 10];\n"
      "PRINT out;\n"
      "ANALYZE set;\n");
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(out.str().find("<2>"), std::string::npos);
  EXPECT_NE(out.str().find("set: 1 elements"), std::string::npos);
}

TEST(SessionStatsTest, SetStatementDrivesPlannerOptions) {
  auto db = MakeUniversityDb();
  Session session(db.get());
  ASSERT_TRUE(session.ExecuteScript("SET OPTLEVEL AUTO;").ok());
  EXPECT_EQ(session.options().level, OptLevel::kAuto);
  ASSERT_TRUE(session.ExecuteScript("SET OPTLEVEL 2;").ok());
  EXPECT_EQ(session.options().level, OptLevel::kOneStep);
  ASSERT_TRUE(session.ExecuteScript("SET DIVISION SORT;").ok());
  EXPECT_EQ(session.options().division, DivisionAlgorithm::kSort);
  ASSERT_TRUE(session.ExecuteScript("SET PERMINDEXES ON;").ok());
  EXPECT_TRUE(session.options().use_permanent_indexes);
  EXPECT_FALSE(session.ExecuteScript("SET OPTLEVEL 9;").ok());
  EXPECT_FALSE(session.ExecuteScript("SET NOSUCH thing;").ok());
}

}  // namespace
}  // namespace pascalr
