#include "base/logging.h"

#include <gtest/gtest.h>

namespace pascalr {
namespace {

/// Restores the default threshold and capture sink on scope exit so a
/// failing assertion cannot leak filtered logging into later tests.
class ScopedLogConfig {
 public:
  explicit ScopedLogConfig(std::string* capture) {
    SetLogCaptureForTest(capture);
  }
  ~ScopedLogConfig() {
    SetMinLogSeverity(LogSeverity::kInfo);
    SetLogCaptureForTest(nullptr);
  }
};

TEST(LoggingTest, DefaultThresholdEmitsEverythingNonFatal) {
  std::string captured;
  ScopedLogConfig config(&captured);
  ASSERT_EQ(MinLogSeverity(), LogSeverity::kInfo);
  PASCALR_LOG_INFO << "info line";
  PASCALR_LOG_WARNING << "warning line";
  PASCALR_LOG_ERROR << "error line";
  EXPECT_NE(captured.find("info line"), std::string::npos);
  EXPECT_NE(captured.find("warning line"), std::string::npos);
  EXPECT_NE(captured.find("error line"), std::string::npos);
}

TEST(LoggingTest, MinSeverityFiltersLowerLines) {
  std::string captured;
  ScopedLogConfig config(&captured);
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  PASCALR_LOG_INFO << "filtered info";
  PASCALR_LOG_WARNING << "filtered warning";
  PASCALR_LOG_ERROR << "kept error";
  EXPECT_EQ(captured.find("filtered info"), std::string::npos);
  EXPECT_EQ(captured.find("filtered warning"), std::string::npos);
  EXPECT_NE(captured.find("kept error"), std::string::npos);
}

TEST(LoggingTest, WarningThresholdKeepsWarnings) {
  std::string captured;
  ScopedLogConfig config(&captured);
  SetMinLogSeverity(LogSeverity::kWarning);
  PASCALR_LOG_INFO << "filtered info";
  PASCALR_LOG_WARNING << "kept warning";
  EXPECT_EQ(captured.find("filtered info"), std::string::npos);
  EXPECT_NE(captured.find("kept warning"), std::string::npos);
}

TEST(LoggingTest, LinesCarrySeverityTagAndLocation) {
  std::string captured;
  ScopedLogConfig config(&captured);
  PASCALR_LOG_WARNING << "tagged";
  EXPECT_NE(captured.find("[W "), std::string::npos);
  EXPECT_NE(captured.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(captured.find("] tagged\n"), std::string::npos);
}

TEST(LoggingTest, ThresholdRestoredBetweenTests) {
  // Whichever order the fixtures ran in, the scoped restore above must
  // have reset the global threshold.
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kInfo);
}

}  // namespace
}  // namespace pascalr
