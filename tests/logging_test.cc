#include "base/logging.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace pascalr {
namespace {

/// Restores the default threshold and capture sink on scope exit so a
/// failing assertion cannot leak filtered logging into later tests.
class ScopedLogConfig {
 public:
  explicit ScopedLogConfig(std::string* capture) {
    SetLogCaptureForTest(capture);
  }
  ~ScopedLogConfig() {
    SetMinLogSeverity(LogSeverity::kInfo);
    SetLogCaptureForTest(nullptr);
  }
};

TEST(LoggingTest, DefaultThresholdEmitsEverythingNonFatal) {
  std::string captured;
  ScopedLogConfig config(&captured);
  ASSERT_EQ(MinLogSeverity(), LogSeverity::kInfo);
  PASCALR_LOG_INFO << "info line";
  PASCALR_LOG_WARNING << "warning line";
  PASCALR_LOG_ERROR << "error line";
  EXPECT_NE(captured.find("info line"), std::string::npos);
  EXPECT_NE(captured.find("warning line"), std::string::npos);
  EXPECT_NE(captured.find("error line"), std::string::npos);
}

TEST(LoggingTest, MinSeverityFiltersLowerLines) {
  std::string captured;
  ScopedLogConfig config(&captured);
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  PASCALR_LOG_INFO << "filtered info";
  PASCALR_LOG_WARNING << "filtered warning";
  PASCALR_LOG_ERROR << "kept error";
  EXPECT_EQ(captured.find("filtered info"), std::string::npos);
  EXPECT_EQ(captured.find("filtered warning"), std::string::npos);
  EXPECT_NE(captured.find("kept error"), std::string::npos);
}

TEST(LoggingTest, WarningThresholdKeepsWarnings) {
  std::string captured;
  ScopedLogConfig config(&captured);
  SetMinLogSeverity(LogSeverity::kWarning);
  PASCALR_LOG_INFO << "filtered info";
  PASCALR_LOG_WARNING << "kept warning";
  EXPECT_EQ(captured.find("filtered info"), std::string::npos);
  EXPECT_NE(captured.find("kept warning"), std::string::npos);
}

TEST(LoggingTest, LinesCarrySeverityTagAndLocation) {
  std::string captured;
  ScopedLogConfig config(&captured);
  PASCALR_LOG_WARNING << "tagged";
  EXPECT_NE(captured.find("[W "), std::string::npos);
  EXPECT_NE(captured.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(captured.find("] tagged\n"), std::string::npos);
}

TEST(LoggingTest, ConcurrentThreadsNeverInterleaveWithinALine) {
  std::string captured;
  ScopedLogConfig config(&captured);
  constexpr int kThreads = 2;
  constexpr int kLinesPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLinesPerThread; ++i) {
        PASCALR_LOG_INFO << "thread=" << t << " line=" << i << " end";
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Every message must arrive whole: the capture splits into exactly
  // kThreads * kLinesPerThread newline-terminated lines, each of the
  // canonical form — no torn or merged lines.
  size_t lines = 0;
  size_t pos = 0;
  int per_thread[kThreads] = {};
  while (pos < captured.size()) {
    size_t nl = captured.find('\n', pos);
    ASSERT_NE(nl, std::string::npos) << "capture must end in a newline";
    std::string line = captured.substr(pos, nl - pos);
    pos = nl + 1;
    ++lines;
    size_t tag = line.find("thread=");
    ASSERT_NE(tag, std::string::npos) << "torn line: " << line;
    EXPECT_EQ(line.find("thread=", tag + 1), std::string::npos)
        << "merged line: " << line;
    EXPECT_NE(line.find(" end"), std::string::npos) << "torn line: " << line;
    int thread_id = line[tag + 7] - '0';
    ASSERT_GE(thread_id, 0);
    ASSERT_LT(thread_id, kThreads);
    ++per_thread[thread_id];
  }
  EXPECT_EQ(lines, static_cast<size_t>(kThreads * kLinesPerThread));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_thread[t], kLinesPerThread) << "thread " << t;
  }
}

TEST(LoggingTest, ThresholdRestoredBetweenTests) {
  // Whichever order the fixtures ran in, the scoped restore above must
  // have reset the global threshold.
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kInfo);
}

}  // namespace
}  // namespace pascalr
