#include "normalize/dnf.h"

#include <gtest/gtest.h>

#include "pascalr/dsl.h"

namespace pascalr {
namespace {

using dsl::C;
using dsl::Eq;
using dsl::Lit;

FormulaPtr T(const char* var, const char* comp, int64_t v,
             CompareOp op = CompareOp::kEq) {
  return dsl::Cmp(C(var, comp), op, Lit(v));
}

TEST(DnfTest, SingleTerm) {
  DnfMatrix m = ToDnf(*T("a", "x", 1));
  ASSERT_EQ(m.disjuncts.size(), 1u);
  ASSERT_EQ(m.disjuncts[0].terms.size(), 1u);
  EXPECT_FALSE(m.IsTrue());
  EXPECT_FALSE(m.IsFalse());
}

TEST(DnfTest, DistributesAndOverOr) {
  // (a OR b) AND (c OR d) -> 4 conjunctions.
  FormulaPtr f = (T("v", "a", 1) || T("v", "b", 2)) &&
                 (T("v", "c", 3) || T("v", "d", 4));
  DnfMatrix m = ToDnf(*f);
  ASSERT_EQ(m.disjuncts.size(), 4u);
  for (const Conjunction& c : m.disjuncts) {
    EXPECT_EQ(c.terms.size(), 2u);
  }
}

TEST(DnfTest, ConstantsFold) {
  EXPECT_TRUE(ToDnf(*Formula::True()).IsTrue());
  EXPECT_TRUE(ToDnf(*Formula::False()).IsFalse());
  // x AND FALSE -> FALSE; x OR TRUE -> TRUE.
  EXPECT_TRUE(ToDnf(*(T("v", "a", 1) && Formula::False())).IsFalse());
  EXPECT_TRUE(ToDnf(*(T("v", "a", 1) || Formula::True())).IsTrue());
  // x AND TRUE -> x.
  DnfMatrix m = ToDnf(*(T("v", "a", 1) && Formula::True()));
  ASSERT_EQ(m.disjuncts.size(), 1u);
  EXPECT_EQ(m.disjuncts[0].terms.size(), 1u);
}

TEST(DnfTest, DuplicateTermsCollapseWithinConjunction) {
  DnfMatrix m = ToDnf(*(T("v", "a", 1) && T("v", "a", 1)));
  ASSERT_EQ(m.disjuncts.size(), 1u);
  EXPECT_EQ(m.disjuncts[0].terms.size(), 1u);
  // Mirrored duplicates collapse too: a.x = b.y vs b.y = a.x.
  FormulaPtr direct = Eq(C("a", "x"), C("b", "y"));
  FormulaPtr mirrored = Eq(C("b", "y"), C("a", "x"));
  DnfMatrix m2 = ToDnf(*(std::move(direct) && std::move(mirrored)));
  EXPECT_EQ(m2.disjuncts[0].terms.size(), 1u);
}

TEST(DnfTest, ContradictionsPrune) {
  // (x = 1) AND (x <> 1) on the same operands is unsatisfiable.
  FormulaPtr f = T("v", "a", 1, CompareOp::kEq) &&
                 T("v", "a", 1, CompareOp::kNe);
  EXPECT_TRUE(ToDnf(*f).IsFalse());
  // ... but a contradictory disjunct just disappears from a disjunction.
  FormulaPtr g = (T("v", "a", 1, CompareOp::kEq) &&
                  T("v", "a", 1, CompareOp::kNe)) ||
                 T("v", "b", 2);
  DnfMatrix m = ToDnf(*g);
  ASSERT_EQ(m.disjuncts.size(), 1u);
  EXPECT_EQ(m.disjuncts[0].terms[0].ToString(), "(v.b = 2)");
}

TEST(DnfTest, DuplicateDisjunctsCollapse) {
  FormulaPtr f = T("v", "a", 1) || T("v", "a", 1);
  DnfMatrix m = ToDnf(*f);
  EXPECT_EQ(m.disjuncts.size(), 1u);
}

TEST(DnfTest, NestedDistribution) {
  // a AND (b OR (c AND (d OR e)))
  FormulaPtr f =
      T("v", "a", 1) &&
      (T("v", "b", 2) || (T("v", "c", 3) && (T("v", "d", 4) || T("v", "e", 5))));
  DnfMatrix m = ToDnf(*f);
  // {a,b}, {a,c,d}, {a,c,e}
  ASSERT_EQ(m.disjuncts.size(), 3u);
  EXPECT_EQ(m.disjuncts[0].terms.size(), 2u);
  EXPECT_EQ(m.disjuncts[1].terms.size(), 3u);
  EXPECT_EQ(m.disjuncts[2].terms.size(), 3u);
}

TEST(DnfTest, ConjunctionHelpers) {
  FormulaPtr f = (Eq(C("e", "enr"), C("t", "tenr")) && T("e", "st", 3)) ||
                 T("c", "lvl", 1);
  DnfMatrix m = ToDnf(*f);
  ASSERT_EQ(m.disjuncts.size(), 2u);
  const Conjunction& c0 = m.disjuncts[0];
  EXPECT_EQ(c0.Variables(), (std::vector<std::string>{"e", "t"}));
  EXPECT_TRUE(c0.References("t"));
  EXPECT_FALSE(c0.References("c"));
  EXPECT_EQ(c0.TermsOver("e").size(), 2u);
  EXPECT_EQ(c0.TermsOver("t").size(), 1u);
}

TEST(DnfTest, ToFormulaRoundTrip) {
  FormulaPtr f = (T("v", "a", 1) && T("v", "b", 2)) || T("v", "c", 3);
  DnfMatrix m = ToDnf(*f);
  FormulaPtr back = m.ToFormula();
  DnfMatrix m2 = ToDnf(*back);
  ASSERT_EQ(m.disjuncts.size(), m2.disjuncts.size());
  for (size_t i = 0; i < m.disjuncts.size(); ++i) {
    EXPECT_TRUE(m.disjuncts[i] == m2.disjuncts[i]);
  }
  EXPECT_TRUE(ToDnf(*Formula::False()).ToFormula()->kind() ==
              FormulaKind::kConst);
}

TEST(DnfTest, ToStringRendering) {
  DnfMatrix m = ToDnf(*(T("v", "a", 1) || T("v", "b", 2)));
  EXPECT_EQ(m.ToString(), "(v.a = 1)\n  OR (v.b = 2)");
  EXPECT_EQ(DnfMatrix{}.ToString(), "FALSE");
}

}  // namespace
}  // namespace pascalr
