// Standard-form construction, including the paper's Example 2.2: the
// translation of Example 2.1 into prenex normal form with a DNF matrix.

#include "normalize/standard_form.h"

#include <gtest/gtest.h>

#include "pascalr/sample_db.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::MakeUniversityDb;
using testing_util::MustStandardForm;

TEST(StandardFormTest, Example22PrefixOrder) {
  auto db = MakeUniversityDb(false);
  StandardForm sf = MustStandardForm(*db, Example21QuerySource());

  // Example 2.2: EACH e, then ALL p SOME c SOME t.
  ASSERT_EQ(sf.prefix.size(), 4u);
  EXPECT_EQ(sf.prefix[0].quantifier, Quantifier::kFree);
  EXPECT_EQ(sf.prefix[0].var, "e");
  EXPECT_EQ(sf.prefix[1].quantifier, Quantifier::kAll);
  EXPECT_EQ(sf.prefix[1].var, "p");
  EXPECT_EQ(sf.prefix[2].quantifier, Quantifier::kSome);
  EXPECT_EQ(sf.prefix[2].var, "c");
  EXPECT_EQ(sf.prefix[3].quantifier, Quantifier::kSome);
  EXPECT_EQ(sf.prefix[3].var, "t");
  EXPECT_EQ(sf.NumFreeVars(), 1u);
}

TEST(StandardFormTest, Example22MatrixShape) {
  auto db = MakeUniversityDb(false);
  StandardForm sf = MustStandardForm(*db, Example21QuerySource());

  // Example 2.2's matrix: three conjunctions —
  //   prof AND pyear<>1977
  //   prof AND penr<>enr
  //   prof AND clevel<=sophomore AND tenr=enr AND tcnr=cnr
  ASSERT_EQ(sf.matrix.disjuncts.size(), 3u);
  std::multiset<size_t> sizes;
  for (const Conjunction& c : sf.matrix.disjuncts) {
    sizes.insert(c.terms.size());
  }
  EXPECT_EQ(sizes, (std::multiset<size_t>{2, 2, 4}));
  // Every conjunction contains the professor restriction on e.
  for (const Conjunction& c : sf.matrix.disjuncts) {
    bool has_prof = false;
    for (const JoinTerm& t : c.terms) {
      has_prof = has_prof || (t.References("e") && t.IsMonadic() &&
                              t.ToString().find("professor") !=
                                  std::string::npos);
    }
    EXPECT_TRUE(has_prof) << c.ToString();
  }
}

TEST(StandardFormTest, OriginalNnfRetainedForAdaptation) {
  auto db = MakeUniversityDb(false);
  StandardForm sf = MustStandardForm(*db, Example21QuerySource());
  ASSERT_NE(sf.original_nnf, nullptr);
  // The retained formula still has its quantifier structure (pre-prenex).
  EXPECT_EQ(sf.original_nnf->CollectQuantifiedVars(),
            (std::vector<std::string>{"p", "c", "t"}));
}

TEST(StandardFormTest, FindVar) {
  auto db = MakeUniversityDb(false);
  StandardForm sf = MustStandardForm(*db, Example21QuerySource());
  ASSERT_NE(sf.FindVar("p"), nullptr);
  EXPECT_EQ(sf.FindVar("p")->range.relation, "papers");
  EXPECT_EQ(sf.FindVar("zz"), nullptr);
}

TEST(StandardFormTest, CloneIsDeep) {
  auto db = MakeUniversityDb(false);
  StandardForm sf = MustStandardForm(*db, Example21QuerySource());
  StandardForm copy = sf.Clone();
  copy.matrix.disjuncts.clear();
  copy.prefix.clear();
  EXPECT_EQ(sf.matrix.disjuncts.size(), 3u);
  EXPECT_EQ(sf.prefix.size(), 4u);
}

TEST(StandardFormTest, RebuildFromAdaptedFormula) {
  auto db = MakeUniversityDb(false);
  StandardForm sf = MustStandardForm(*db, Example21QuerySource());
  // Simulate Example 2.2's papers = [] adaptation: ALL p (...) -> TRUE.
  // The adapted query is `e.estatus = professor` with no quantifiers.
  FormulaPtr adapted = Formula::Compare(
      sf.matrix.disjuncts[0].terms[0]);  // the professor term
  Result<StandardForm> rebuilt = RebuildStandardForm(sf, std::move(adapted));
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ(rebuilt->prefix.size(), 1u);  // only the free e
  EXPECT_EQ(rebuilt->matrix.disjuncts.size(), 1u);
  EXPECT_EQ(rebuilt->projection.size(), sf.projection.size());
}

TEST(StandardFormTest, ToStringIncludesPrefixAndMatrix) {
  auto db = MakeUniversityDb(false);
  StandardForm sf = MustStandardForm(*db, Example21QuerySource());
  std::string out = sf.ToString();
  EXPECT_NE(out.find("EACH e IN employees"), std::string::npos);
  EXPECT_NE(out.find("ALL p IN papers"), std::string::npos);
  EXPECT_NE(out.find("SOME t IN timetable"), std::string::npos);
  EXPECT_NE(out.find("OR"), std::string::npos);
}

TEST(StandardFormTest, UserExtendedRangesPreserved) {
  auto db = MakeUniversityDb(false);
  StandardForm sf = MustStandardForm(*db, Example45QuerySource());
  const QuantifiedVar* p = sf.FindVar("p");
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->range.IsExtended());
  const QuantifiedVar* t = sf.FindVar("t");
  ASSERT_NE(t, nullptr);
  EXPECT_FALSE(t->range.IsExtended());
}

TEST(StandardFormTest, ShadowedVariablesGetDistinctPrefixEntries) {
  auto db = MakeUniversityDb(false);
  StandardForm sf = MustStandardForm(
      *db,
      "[<e.ename> OF EACH e IN employees: "
      "SOME p IN papers ((p.penr = e.enr) AND "
      "SOME p IN papers ((p.pyear = 1977)))]");
  ASSERT_EQ(sf.prefix.size(), 3u);
  EXPECT_NE(sf.prefix[1].var, sf.prefix[2].var);
}

}  // namespace
}  // namespace pascalr
