#include "pascalr/export.h"

#include <sstream>

#include <gtest/gtest.h>

#include "pascalr/session.h"
#include "tests/test_util.h"

namespace pascalr {
namespace {

using testing_util::MakeUniversityDb;

TEST(ExportTest, RoundTripReproducesTheDatabase) {
  auto original = MakeUniversityDb();
  Result<std::string> script = ExportScript(*original);
  ASSERT_TRUE(script.ok()) << script.status().ToString();

  Database restored;
  Session session(&restored);
  Status st = session.ExecuteScript(*script);
  ASSERT_TRUE(st.ok()) << st.ToString() << "\nscript:\n" << *script;

  for (const std::string& name : original->RelationNames()) {
    const Relation* a = original->FindRelation(name);
    const Relation* b = restored.FindRelation(name);
    ASSERT_NE(b, nullptr) << name;
    EXPECT_EQ(a->cardinality(), b->cardinality()) << name;
    EXPECT_TRUE(a->schema() == b->schema()) << name;
    a->Scan([&](const Ref&, const Tuple& t) {
      auto found = b->SelectByKey(b->schema().KeyOf(t));
      EXPECT_TRUE(found.ok()) << name << " " << t.ToString();
      if (found.ok()) {
        EXPECT_EQ(**found, t);
      }
      return true;
    });
  }
}

TEST(ExportTest, QueriesAgreeAfterRestore) {
  auto original = MakeUniversityDb();
  Result<std::string> script = ExportScript(*original);
  ASSERT_TRUE(script.ok());

  Database restored;
  Session restore_session(&restored);
  ASSERT_TRUE(restore_session.ExecuteScript(*script).ok());

  Session s1(original.get()), s2(&restored);
  auto r1 = s1.Query(Example21QuerySource());
  auto r2 = s2.Query(Example21QuerySource());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(testing_util::FirstStrings(r1->tuples),
            testing_util::FirstStrings(r2->tuples));
}

TEST(ExportTest, FreshStatisticsRideAlongAsStatsDirectives) {
  auto original = MakeUniversityDb();
  ASSERT_TRUE(original->AnalyzeAll().ok());
  Result<std::string> script = ExportScript(*original);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_NE(script->find("STATS employees CARDINALITY"), std::string::npos)
      << *script;
  EXPECT_NE(script->find("HISTOGRAM"), std::string::npos) << *script;

  Database restored;
  Session session(&restored);
  Status st = session.ExecuteScript(*script);
  ASSERT_TRUE(st.ok()) << st.ToString() << "\nscript:\n" << *script;

  // The reloaded database has fresh statistics *without* running ANALYZE,
  // and they match the originals field for field.
  for (const std::string& name : original->RelationNames()) {
    const RelationStats* a = original->FindFreshStats(name);
    const RelationStats* b = restored.FindFreshStats(name);
    ASSERT_NE(a, nullptr) << name;
    ASSERT_NE(b, nullptr) << name << ": restored statistics are not fresh";
    EXPECT_EQ(a->cardinality, b->cardinality) << name;
    ASSERT_EQ(a->columns.size(), b->columns.size()) << name;
    for (size_t i = 0; i < a->columns.size(); ++i) {
      const ColumnStats& ca = a->columns[i];
      const ColumnStats& cb = b->columns[i];
      EXPECT_EQ(ca.name, cb.name) << name;
      EXPECT_EQ(ca.distinct, cb.distinct) << name << "." << ca.name;
      EXPECT_EQ(ca.has_min_max, cb.has_min_max) << name << "." << ca.name;
      if (ca.has_min_max && cb.has_min_max) {
        EXPECT_EQ(ca.min, cb.min) << name << "." << ca.name;
        EXPECT_EQ(ca.max, cb.max) << name << "." << ca.name;
      }
      EXPECT_EQ(ca.numeric, cb.numeric) << name << "." << ca.name;
      EXPECT_EQ(ca.histogram.lo, cb.histogram.lo) << name << "." << ca.name;
      EXPECT_EQ(ca.histogram.hi, cb.histogram.hi) << name << "." << ca.name;
      EXPECT_EQ(ca.histogram.total, cb.histogram.total)
          << name << "." << ca.name;
      EXPECT_EQ(ca.histogram.buckets, cb.histogram.buckets)
          << name << "." << ca.name;
    }
  }
}

TEST(ExportTest, SeededStatisticsGoStaleOnMutation) {
  auto original = MakeUniversityDb();
  ASSERT_TRUE(original->AnalyzeAll().ok());
  Result<std::string> script = ExportScript(*original);
  ASSERT_TRUE(script.ok());

  Database restored;
  Session session(&restored);
  ASSERT_TRUE(session.ExecuteScript(*script).ok());
  ASSERT_NE(restored.FindFreshStats("employees"), nullptr);

  Relation* employees = restored.FindRelation("employees");
  ASSERT_TRUE(employees
                  ->Insert(Tuple{Value::MakeInt(99),
                                 Value::MakeString("Zed"),
                                 Value::MakeEnum(0)})
                  .ok());
  EXPECT_EQ(restored.FindFreshStats("employees"), nullptr)
      << "seeded statistics must invalidate like computed ones";
}

TEST(ExportTest, StringEscaping) {
  Database db;
  Session session(&db);
  ASSERT_TRUE(session
                  .ExecuteScript(
                      "VAR r : RELATION <a> OF RECORD a : 1..9; "
                      "s : STRING(20) END;")
                  .ok());
  Relation* r = db.FindRelation("r");
  ASSERT_TRUE(r->Insert(Tuple{Value::MakeInt(1),
                              Value::MakeString("it's quoted")})
                  .ok());
  Result<std::string> script = ExportScript(db);
  ASSERT_TRUE(script.ok());
  EXPECT_NE(script->find("'it''s quoted'"), std::string::npos);

  Database restored;
  Session session2(&restored);
  ASSERT_TRUE(session2.ExecuteScript(*script).ok());
  auto tuple = restored.FindRelation("r")->SelectByKey(
      Tuple{Value::MakeInt(1)});
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ((*tuple)->at(1).AsString(), "it's quoted");
}

TEST(ExportTest, ExportRelationSubset) {
  auto db = MakeUniversityDb();
  Result<std::string> one = ExportRelation(*db, "courses");
  ASSERT_TRUE(one.ok());
  EXPECT_NE(one->find("VAR courses"), std::string::npos);
  EXPECT_EQ(one->find("VAR employees"), std::string::npos);
  EXPECT_EQ(ExportRelation(*db, "nope").status().code(),
            StatusCode::kNotFound);
}

TEST(ExportTest, EmptyRelationsExportDeclarationsOnly) {
  auto db = MakeUniversityDb();
  db->FindRelation("papers")->Clear();
  Result<std::string> script = ExportScript(*db);
  ASSERT_TRUE(script.ok());
  EXPECT_NE(script->find("VAR papers"), std::string::npos);
  EXPECT_EQ(script->find("papers :+"), std::string::npos);
}

TEST(ExportTest, PermanentIndexesRideAlongAsIndexDeclarations) {
  auto db = MakeUniversityDb();
  ASSERT_TRUE(db->EnsureIndex("employees", "enr", /*ordered=*/false).ok());
  ASSERT_TRUE(db->EnsureIndex("timetable", "ttime", /*ordered=*/true).ok());

  Result<std::string> script = ExportScript(*db);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_NE(script->find("INDEX employees enr;"), std::string::npos)
      << *script;
  EXPECT_NE(script->find("INDEX timetable ttime ORDERED;"),
            std::string::npos)
      << *script;

  // Replaying the dump rebuilds the permanent indexes, fresh.
  Database restored;
  Session session(&restored);
  Status st = session.ExecuteScript(*script);
  ASSERT_TRUE(st.ok()) << st.ToString() << "\nscript:\n" << *script;
  EXPECT_NE(restored.FindFreshIndex("employees", "enr"), nullptr);
  EXPECT_NE(restored.FindFreshIndex("timetable", "ttime"), nullptr);
  EXPECT_EQ(restored.FindFreshIndex("courses", "cnr"), nullptr);
  bool found_ordered = false;
  for (const Database::IndexDescription& index : restored.ListIndexes()) {
    if (index.relation == "timetable" && index.component == "ttime") {
      found_ordered = index.ordered;
    }
  }
  EXPECT_TRUE(found_ordered);
}

TEST(ExportTest, IndexStatementBuildsAndReports) {
  auto db = MakeUniversityDb();
  std::ostringstream out;
  Session session(db.get(), &out);
  ASSERT_TRUE(session.ExecuteScript("INDEX employees enr;").ok());
  EXPECT_NE(db->FindFreshIndex("employees", "enr"), nullptr);
  EXPECT_NE(out.str().find("index employees.enr (hash)"), std::string::npos);
  // Unknown relation / component surface as NotFound.
  EXPECT_EQ(session.ExecuteScript("INDEX nope enr;").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(session.ExecuteScript("INDEX employees nope;").code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace pascalr
