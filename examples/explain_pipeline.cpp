// Reproduces the paper's transformation pipeline as printed exhibits:
//
//   Example 2.1  -> the query as written
//   Example 2.2  -> its standard form (prenex + DNF matrix)
//   Example 4.5  -> strategy 3's extended ranges, one conjunction removed
//   Example 4.7  -> strategy 4's collection-phase quantifier cascade
//   Figure 2     -> the materialised single lists / indirect joins /
//                   indexes / value lists of an actual run
//
//   $ build/examples/explain_pipeline

#include <iostream>

#include "pascalr/pascalr.h"

namespace {

int Fail(const pascalr::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

}  // namespace

int main() {
  pascalr::Database db;
  if (auto st = pascalr::CreateUniversitySchema(&db); !st.ok()) return Fail(st);
  if (auto st = pascalr::PopulateSmallExample(&db); !st.ok()) return Fail(st);

  pascalr::Session session(&db, &std::cout);

  std::cout << "=== Example 2.1: the query as written ===\n"
            << pascalr::Example21QuerySource() << "\n\n";

  // Standard form (Example 2.2) is part of every explain; show the
  // pipeline at each optimization level.
  const pascalr::OptLevel levels[] = {
      pascalr::OptLevel::kNaive, pascalr::OptLevel::kParallel,
      pascalr::OptLevel::kOneStep, pascalr::OptLevel::kRangeExt,
      pascalr::OptLevel::kQuantPush};
  for (pascalr::OptLevel level : levels) {
    session.options().level = level;
    auto text = session.Explain(pascalr::Example21QuerySource());
    if (!text.ok()) return Fail(text.status());
    std::cout << "=== " << pascalr::OptLevelToString(level) << " ===\n"
              << *text << "\n";
  }

  // Figure 2: run the query at O2 (where the single lists and indirect
  // joins are all materialised) and print the collection exhibits.
  session.options().level = pascalr::OptLevel::kOneStep;
  auto run = session.Query(pascalr::Example21QuerySource());
  if (!run.ok()) return Fail(run.status());
  std::cout << "=== Figure 2: materialised auxiliary structures (O2) ===\n"
            << pascalr::ExplainCollection(run->planned.plan, run->collection)
            << "\n";

  std::cout << "result (expected Alice, Bob, Frank):";
  for (const pascalr::Tuple& t : run->tuples) std::cout << " " << t.ToString();
  std::cout << "\n\n";

  // Example 2.2's runtime adaptation: empty papers.
  db.FindRelation("papers")->Clear();
  auto adapted = session.Explain(pascalr::Example21QuerySource());
  if (!adapted.ok()) return Fail(adapted.status());
  std::cout << "=== Example 2.2: adaptation for papers = [] ===\n"
            << *adapted << "\n";
  return 0;
}
