// Domain example: a batch of department reports over a synthetic
// university database, exercising free variables, both quantifiers, every
// comparison operator, derived relations, and the C++ DSL.
//
//   $ build/examples/university_reports [scale]

#include <cstdlib>
#include <iostream>

#include "pascalr/pascalr.h"

namespace {

int Fail(const pascalr::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  size_t scale = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 200;

  pascalr::Database db;
  if (auto st = pascalr::CreateUniversitySchema(&db); !st.ok()) return Fail(st);
  pascalr::UniversityScale knobs;
  knobs.employees = scale;
  knobs.papers = 2 * scale;
  knobs.courses = scale / 4 + 2;
  knobs.timetable = 3 * scale;
  if (auto st = pascalr::PopulateSynthetic(&db, knobs); !st.ok()) {
    return Fail(st);
  }

  pascalr::Session session(&db, &std::cout);
  session.options().level = pascalr::OptLevel::kQuantPush;

  struct Report {
    const char* title;
    const char* query;
  };
  const Report reports[] = {
      {"Professors with a 1977 publication",
       "[<e.ename> OF EACH e IN employees: (e.estatus = professor) AND "
       "SOME p IN papers ((p.penr = e.enr) AND (p.pyear = 1977))]"},
      {"Employees teaching only senior courses",
       "[<e.ename> OF EACH e IN employees: "
       "SOME t IN timetable ((t.tenr = e.enr)) AND "
       "ALL t IN timetable ((t.tenr <> e.enr) OR "
       "SOME c IN courses ((c.cnr = t.tcnr) AND (c.clevel = senior)))]"},
      {"Courses taught every day before noon by somebody",
       "[<c.ctitle> OF EACH c IN courses: "
       "SOME t IN timetable ((t.tcnr = c.cnr) AND (t.ttime < 12000000))]"},
      {"The paper's Example 2.1",
       nullptr /* replaced below */},
  };

  for (const Report& report : reports) {
    std::string query = report.query != nullptr
                            ? report.query
                            : pascalr::Example21QuerySource();
    auto run = session.Query(query);
    if (!run.ok()) return Fail(run.status());
    std::cout << "== " << report.title << " ==\n";
    std::cout << "   " << run->tuples.size() << " result(s)";
    if (!run->tuples.empty() && run->tuples.size() <= 8) {
      std::cout << ":";
      for (const pascalr::Tuple& t : run->tuples) {
        std::cout << " " << t.ToString();
      }
    }
    std::cout << "\n   work: " << run->stats.ToString() << "\n\n";
  }

  // A derived relation (assignment) feeding a follow-up query, plus the
  // DSL path for programmatic construction.
  pascalr::Status st = session.ExecuteScript(
      "active := [<e.enr, e.ename> OF EACH e IN employees: "
      "SOME t IN timetable ((t.tenr = e.enr))];");
  if (!st.ok()) return Fail(st);

  using namespace pascalr::dsl;  // NOLINT
  pascalr::SelectionExpr busy =
      Select({{"a", "ename"}})
          .Each("a", "active")
          .Where(Some("t", "timetable", Eq(C("t", "tenr"), C("a", "enr"))) &&
                 Some("p", "papers", Eq(C("p", "penr"), C("a", "enr"))))
          .Build();
  pascalr::Binder binder(&db);
  auto bound = binder.Bind(std::move(busy));
  if (!bound.ok()) return Fail(bound.status());
  auto run = pascalr::RunQuery(db, std::move(bound).value(),
                               session.options());
  if (!run.ok()) return Fail(run.status());
  std::cout << "== Teaching AND publishing (via derived relation + DSL) ==\n"
            << "   " << run->tuples.size() << " result(s)\n\n";

  std::cout << "cumulative session stats: "
            << session.total_stats().ToString() << "\n";
  return 0;
}
