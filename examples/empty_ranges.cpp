// Lemma 1 live: how empty relations change quantified queries, and how the
// runtime adaptation keeps every optimization level correct.
//
//   $ build/examples/empty_ranges

#include <iostream>

#include "pascalr/pascalr.h"

namespace {

int Fail(const pascalr::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

void PrintResult(const char* label, const pascalr::QueryRun& run) {
  std::cout << label << ":";
  for (const pascalr::Tuple& t : run.tuples) std::cout << " " << t.ToString();
  if (run.tuples.empty()) std::cout << " (empty)";
  std::cout << "  [replans=" << run.stats.replans << "]\n";
}

}  // namespace

int main() {
  pascalr::Database db;
  if (auto st = pascalr::CreateUniversitySchema(&db); !st.ok()) return Fail(st);
  if (auto st = pascalr::PopulateSmallExample(&db); !st.ok()) return Fail(st);

  pascalr::Session session(&db, &std::cout);
  session.options().level = pascalr::OptLevel::kQuantPush;

  std::cout << "Query: Example 2.1 — professors with no 1977 paper or a "
               "low-level course\n\n";

  auto run = session.Query(pascalr::Example21QuerySource());
  if (!run.ok()) return Fail(run.status());
  PrintResult("all relations populated  ", *run);

  // papers = []: ALL p IN papers (...) is vacuously true; the compiled
  // standard form would answer wrongly without Lemma 1's adaptation
  // (paper, Example 2.2).
  pascalr::Relation* papers = db.FindRelation("papers");
  papers->Clear();
  run = session.Query(pascalr::Example21QuerySource());
  if (!run.ok()) return Fail(run.status());
  PrintResult("papers = []              ", *run);

  // Restore papers but clear courses: SOME c IN courses (...) is false.
  if (auto st = pascalr::PopulateSmallExample(&db); !st.ok()) return Fail(st);
  db.FindRelation("courses")->Clear();
  run = session.Query(pascalr::Example21QuerySource());
  if (!run.ok()) return Fail(run.status());
  PrintResult("courses = []             ", *run);

  // An *extended* range can be empty while its base is not: remove all
  // 1977 papers. Strategy 3's extension [papers: pyear = 1977] denotes
  // the empty set, so the planner abandons strategies 3/4 for this run.
  if (auto st = pascalr::PopulateSmallExample(&db); !st.ok()) return Fail(st);
  papers = db.FindRelation("papers");
  papers->Clear();
  auto insert = papers->Insert(pascalr::Tuple{
      pascalr::Value::MakeInt(2), pascalr::Value::MakeInt(1976),
      pascalr::Value::MakeString("Old")});
  if (!insert.ok()) return Fail(insert.status());
  run = session.Query(pascalr::Example21QuerySource());
  if (!run.ok()) return Fail(run.status());
  PrintResult("no 1977 papers           ", *run);
  std::cout << "\nadaptation notes for the last run:\n"
            << (run->planned.adaptation_notes.empty()
                    ? "  (none)\n"
                    : run->planned.adaptation_notes);

  // The four Lemma 1 rules, shown concretely (papers = [] again).
  if (auto st = pascalr::PopulateSmallExample(&db); !st.ok()) return Fail(st);
  db.FindRelation("papers")->Clear();
  struct RuleDemo {
    const char* label;
    const char* query;
  };
  const RuleDemo demos[] = {
      {"A AND SOME p (B)  -> false when papers = [] (rule 1)",
       "[<e.ename> OF EACH e IN employees: (e.estatus = professor) AND "
       "SOME p IN papers ((p.penr = e.enr))]"},
      {"A OR  SOME p (B)  -> A     when papers = [] (rule 2)",
       "[<e.ename> OF EACH e IN employees: (e.estatus = professor) OR "
       "SOME p IN papers ((p.penr = e.enr))]"},
      {"A AND ALL  p (B)  -> A     when papers = [] (rule 3)",
       "[<e.ename> OF EACH e IN employees: (e.estatus = professor) AND "
       "ALL p IN papers ((p.penr = e.enr))]"},
      {"A OR  ALL  p (B)  -> true  when papers = [] (rule 4)",
       "[<e.ename> OF EACH e IN employees: (e.estatus = professor) OR "
       "ALL p IN papers ((p.penr = e.enr))]"},
  };
  std::cout << "\nLemma 1 rules with papers = []:\n";
  for (const RuleDemo& demo : demos) {
    run = session.Query(demo.query);
    if (!run.ok()) return Fail(run.status());
    std::cout << "  " << demo.label << " -> " << run->tuples.size()
              << " row(s)\n";
  }
  return 0;
}
