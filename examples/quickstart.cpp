// Quickstart: declare the paper's Figure 1 database in the PASCAL/R query
// language, load a few elements with `:+`, and run Example 2.1.
//
//   $ build/examples/quickstart

#include <iostream>

#include "pascalr/pascalr.h"

namespace {

// Figure 1, verbatim modulo surface syntax (named scalar types inlined).
constexpr const char* kFigure1Schema = R"(
TYPE statustype = (student, technician, assistant, professor);
TYPE leveltype  = (freshman, sophomore, junior, senior);
TYPE daytype    = (monday, tuesday, wednesday, thursday, friday);

VAR employees : RELATION <enr> OF RECORD
      enr     : 1..99;
      ename   : STRING(10);
      estatus : statustype
    END;

VAR papers : RELATION <ptitle, penr> OF RECORD
      penr   : 1..99;
      pyear  : 1900..1999;
      ptitle : STRING(40)
    END;

VAR courses : RELATION <cnr> OF RECORD
      cnr    : 1..99;
      clevel : leveltype;
      ctitle : STRING(40)
    END;

VAR timetable : RELATION <tenr, tcnr, tday> OF RECORD
      tenr  : 1..99;
      tcnr  : 1..99;
      tday  : daytype;
      ttime : 8000900..18002000;
      troom : STRING(5)
    END;
)";

constexpr const char* kData = R"(
employees :+ [<1, 'Alice', professor>];
employees :+ [<2, 'Bob', professor>];
employees :+ [<3, 'Carol', professor>];
employees :+ [<4, 'Dave', assistant>];
employees :+ [<5, 'Erin', student>];
employees :+ [<6, 'Frank', professor>];

papers :+ [<1, 1977, 'Views'>];
papers :+ [<1, 1975, 'Joins'>];
papers :+ [<2, 1976, 'Sorts'>];
papers :+ [<4, 1977, 'Trees'>];
papers :+ [<3, 1977, 'Logs'>];

courses :+ [<10, freshman, 'Intro'>];
courses :+ [<11, sophomore, 'Data'>];
courses :+ [<12, junior, 'Logic'>];
courses :+ [<13, senior, 'Systems'>];

timetable :+ [<1, 11, monday, 9001000, 'R1'>];
timetable :+ [<1, 12, tuesday, 9001000, 'R2'>];
timetable :+ [<2, 12, monday, 10001100, 'R1'>];
timetable :+ [<3, 13, monday, 10001100, 'R3'>];
timetable :+ [<4, 11, tuesday, 11001200, 'R1'>];
timetable :+ [<6, 12, monday, 11001200, 'R2'>];
)";

// Example 2.1: professors who did not publish in 1977 or who currently
// offer a course at sophomore level or lower.
constexpr const char* kExample21 = R"(
enames := [<e.ename> OF EACH e IN employees:
    (e.estatus = professor)
    AND
    (ALL p IN papers ((p.pyear <> 1977) OR (e.enr <> p.penr))
     OR
     SOME c IN courses ((c.clevel <= sophomore)
       AND
       SOME t IN timetable ((c.cnr = t.tcnr) AND (e.enr = t.tenr))))];

PRINT enames;
)";

}  // namespace

int main() {
  pascalr::Database db;
  pascalr::Session session(&db, &std::cout);

  for (const char* script : {kFigure1Schema, kData}) {
    pascalr::Status status = session.ExecuteScript(script);
    if (!status.ok()) {
      std::cerr << "setup failed: " << status.ToString() << "\n";
      return 1;
    }
  }

  std::cout << "Figure 1 database loaded:\n" << db.DebugString() << "\n";
  std::cout << "Running Example 2.1 (expected: Alice, Bob, Frank)\n\n";

  pascalr::Status status = session.ExecuteScript(kExample21);
  if (!status.ok()) {
    std::cerr << "query failed: " << status.ToString() << "\n";
    return 1;
  }

  // The embedded-host-program loop the paper's §2 describes: prepare the
  // selection once ($top is a host-variable parameter), then execute it
  // with changing values — every run after the first reuses the cached
  // plan (zero parse/plan work) and streams through a cursor.
  std::cout << "\nPrepared query: professors with enr <= $top\n";
  auto prepared = session.Prepare(
      "[<e.ename> OF EACH e IN employees:"
      " (e.estatus = professor) AND (e.enr <= $top)]");
  if (!prepared.ok()) {
    std::cerr << "prepare failed: " << prepared.status().ToString() << "\n";
    return 1;
  }
  for (int64_t top : {2, 3, 6}) {
    auto cursor =
        prepared->OpenCursor({{"top", pascalr::Value::MakeInt(top)}});
    if (!cursor.ok()) {
      std::cerr << "execute failed: " << cursor.status().ToString() << "\n";
      return 1;
    }
    std::cout << "  $top = " << top << ":";
    pascalr::Tuple t;
    while (true) {
      auto more = cursor->Next(&t);
      if (!more.ok() || !*more) break;
      std::cout << " " << t.at(0).AsString();
    }
    cursor->Close();
    std::cout << (prepared->stats().plan_cache_hits > 0 ? "  (cached plan)"
                                                        : "  (planned)")
              << "\n";
  }

  std::cout << "\nsession stats: " << session.total_stats().ToString() << "\n";
  return 0;
}
