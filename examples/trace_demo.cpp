// Observability tour: runs the paper's Example 2.1 with tracing on,
// prints the recorded span trees, the EXPLAIN ANALYZE operator table,
// and the session metrics, and exports a Chrome trace-event JSON file
// (load it in chrome://tracing or https://ui.perfetto.dev).
//
//   $ build/examples/trace_demo [out.trace.json]

#include <iostream>
#include <string>

#include "obs/trace_export.h"
#include "pascalr/pascalr.h"

namespace {

int Fail(const pascalr::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  pascalr::Database db;
  if (auto st = pascalr::CreateUniversitySchema(&db); !st.ok()) return Fail(st);
  if (auto st = pascalr::PopulateSmallExample(&db); !st.ok()) return Fail(st);

  pascalr::Session session(&db, &std::cout);
  session.set_tracing(true);

  // A traced one-shot query: prepare (parse, bind), execute (plan,
  // collection, drain) each become spans of one QueryTrace.
  auto run = session.Query(pascalr::Example21QuerySource());
  if (!run.ok()) return Fail(run.status());
  std::cout << "=== result ===\n";
  for (const pascalr::Tuple& t : run->tuples) std::cout << "  " << t.ToString() << "\n";

  // The same query again under the lazy collection policy, so the trace
  // shows demand-driven build-structure spans inside the drain.
  session.options().collection = pascalr::CollectionPolicy::kLazy;
  if (auto lazy = session.Query(pascalr::Example21QuerySource()); !lazy.ok()) {
    return Fail(lazy.status());
  }
  session.options().collection = pascalr::CollectionPolicy::kEager;

  std::cout << "\n=== query traces ===\n";
  for (const pascalr::QueryTrace& trace : session.traces()) {
    std::cout << trace.ToString();
  }

  // EXPLAIN ANALYZE: the plan plus the profiled operator tree with actual
  // rows, per-operator self-time, and estimated-vs-actual q-error.
  std::cout << "\n=== EXPLAIN ANALYZE ===\n";
  auto report = session.ExplainAnalyze(pascalr::Example21QuerySource());
  if (!report.ok()) return Fail(report.status());
  std::cout << *report;

  std::cout << "\n=== METRICS ===\n" << session.metrics().Dump();

  const std::string path = argc > 1 ? argv[1] : "trace_demo.trace.json";
  if (auto st = pascalr::WriteTraceFile(path, session.traces()); !st.ok()) {
    return Fail(st);
  }
  std::cout << "\nwrote " << session.traces().size() << " trace(s) to "
            << path << "\n";
  return 0;
}
