// Interactive PASCAL/R shell: type statements, end each with ';'.
//
//   $ build/examples/pascalr_shell [--university]
//
// Meta commands (one per line):
//   .help            this text
//   .level N|auto    optimization level 0..4 or cost-based AUTO (default 4)
//   .joinorder MODE  join ordering: dp (default), bushy, or greedy
//   .pipeline on|off streamed combination (join iterators; default on)
//   .collection MODE collection phase: eager (default) or lazy
//                    (demand-driven structure builders behind Next)
//   .stats           cumulative session statistics
//   .metrics         session metrics (latency percentiles, plan cache, ...)
//   .metrics prom    server-wide metrics in Prometheus text format
//   .slow            dump the slow-query flight recorder (newest first)
//   .slow N|off      arm the recorder at N microseconds / disarm it
//                    (same as SET SLOWLOG N|OFF;)
//   .trace on|off    query tracing (same as SET TRACE ON|OFF;)
//   .trace FILE      export collected traces as Chrome trace-event JSON
//                    (load in chrome://tracing or Perfetto), then clear
//   .dump            export the database as a replayable script
//                    (includes STATS directives for analyzed relations)
//   .quit            exit
//
// Everything else is PASCAL/R: TYPE/VAR declarations, `rel :+ [<...>];`
// inserts, `name := [<...> OF EACH ... : wff];` queries, PRINT, EXPLAIN,
// PREPARE name AS [...$p...] / EXECUTE name WITH $p = lit, INDEX rel
// comp [ORDERED], ANALYZE [rel], and SET OPTLEVEL/DIVISION/PERMINDEXES.

#include <iostream>
#include <string>

#include "obs/prom_export.h"
#include "obs/trace_export.h"
#include "pascalr/export.h"
#include "pascalr/pascalr.h"

namespace {

std::string Trim(const std::string& s) {
  std::string::size_type start = s.find_first_not_of(" \t\r");
  if (start == std::string::npos) return "";
  std::string::size_type end = s.find_last_not_of(" \t\r");
  return s.substr(start, end - start + 1);
}

void PrintHelp() {
  std::cout <<
      "statements end with ';'. Examples:\n"
      "  VAR r : RELATION <a> OF RECORD a : 1..99; s : STRING(10) END;\n"
      "  r :+ [<1, 'hello'>];\n"
      "  out := [<x.s> OF EACH x IN r: x.a < 10];\n"
      "  PRINT out;\n"
      "  EXPLAIN [<x.s> OF EACH x IN r: x.a < 10];\n"
      "  PREPARE q AS [<x.s> OF EACH x IN r: x.a < $top];\n"
      "  EXECUTE q WITH $top = 10;   -- re-runs reuse the cached plan\n"
      "  INDEX r a;                  -- permanent index (add ORDERED for B+tree)\n"
      "  ANALYZE;            -- refresh catalog statistics\n"
      "  SET OPTLEVEL AUTO;  -- cost-based strategy selection\n"
      "  SET JOINORDER DP;   -- Selinger join ordering (or BUSHY, GREEDY)\n"
      "  SET PIPELINE ON;    -- streamed combination (join iterators)\n"
      "  SET COLLECTION LAZY; -- demand-driven collection builders\n"
      "  SET TRACE ON;       -- per-query span traces (.trace FILE exports)\n"
      "  EXPLAIN ANALYZE [<x.s> OF EACH x IN r: x.a < 10];\n"
      "  METRICS;            -- session metrics (same as .metrics)\n"
      "  SET SLOWLOG 1000;   -- record queries slower than 1000us (.slow)\n"
      "  out := [<s.fingerprint, s.calls> OF EACH s IN sys$statements: TRUE];\n"
      "                      -- the engine's own telemetry is queryable\n"
      "meta: .help .level N|auto .joinorder dp|bushy|greedy .pipeline on|off "
      ".collection eager|lazy .stats .metrics [prom] .slow [N|off] "
      ".trace on|off|FILE .dump .quit\n";
}

}  // namespace

int main(int argc, char** argv) {
  pascalr::Database db;
  pascalr::Session session(&db, &std::cout);

  if (argc > 1 && std::string(argv[1]) == "--university") {
    if (auto st = pascalr::CreateUniversitySchema(&db); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    if (auto st = pascalr::PopulateSmallExample(&db); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    std::cout << "(loaded the paper's Figure 1 university database)\n";
  }

  std::cout << "pascalr shell — .help for help\n";
  std::string buffer;
  std::string line;
  while (true) {
    std::cout << (buffer.empty() ? "pascalr> " : "     ..> ") << std::flush;
    if (!std::getline(std::cin, line)) break;

    if (buffer.empty() && !line.empty() && line[0] == '.') {
      if (line == ".quit" || line == ".exit") break;
      if (line == ".help") {
        PrintHelp();
      } else if (line == ".stats") {
        std::cout << session.total_stats().ToString() << "\n";
      } else if (line.rfind(".metrics", 0) == 0) {
        std::string arg = pascalr::AsciiToLower(Trim(line.substr(8)));
        if (arg == "prom") {
          std::cout << pascalr::ExportPrometheus(db.server_metrics(),
                                                 &db.stmt_stats(),
                                                 &db.slow_log());
        } else if (arg.empty()) {
          std::cout << session.metrics().Dump();
        } else {
          std::cout << ".metrics takes no argument, or 'prom'\n";
        }
      } else if (line.rfind(".slow", 0) == 0) {
        std::string arg = pascalr::AsciiToLower(Trim(line.substr(5)));
        if (arg.empty()) {
          std::cout << db.slow_log().Dump();
        } else if (arg == "off") {
          db.slow_log().set_threshold_us(0);
          std::cout << "slow-query log disarmed\n";
        } else if (arg.find_first_not_of("0123456789") == std::string::npos) {
          db.slow_log().set_threshold_us(std::stoull(arg));
          std::cout << "recording queries slower than " << arg << "us\n";
        } else {
          std::cout << ".slow takes no argument, a microsecond threshold, "
                       "or 'off'\n";
        }
      } else if (line.rfind(".trace", 0) == 0) {
        std::string arg = Trim(line.substr(6));
        std::string lower = pascalr::AsciiToLower(arg);
        if (lower == "on" || lower == "off") {
          session.set_tracing(lower == "on");
          std::cout << "tracing " << lower
                    << (lower == "on" ? " (.trace FILE exports Chrome "
                                        "trace-event JSON)\n"
                                      : "\n");
        } else if (arg.empty()) {
          // No argument: show the collected traces inline.
          if (session.traces().empty()) {
            std::cout << "no traces collected (SET TRACE ON; or .trace on "
                         "first)\n";
          } else {
            for (const pascalr::QueryTrace& t : session.traces()) {
              std::cout << t.ToString();
            }
          }
        } else {
          auto st = pascalr::WriteTraceFile(arg, session.traces());
          if (st.ok()) {
            std::cout << "wrote " << session.traces().size()
                      << " trace(s) to " << arg << "\n";
            session.ClearTraces();
          } else {
            std::cout << "error: " << st.ToString() << "\n";
          }
        }
      } else if (line == ".dump") {
        auto script = pascalr::ExportScript(db);
        if (script.ok()) {
          std::cout << *script;
        } else {
          std::cout << "error: " << script.status().ToString() << "\n";
        }
      } else if (line.rfind(".level", 0) == 0) {
        std::string arg = Trim(line.substr(6));
        if (pascalr::AsciiToLower(arg) == "auto") {
          session.options().level = pascalr::OptLevel::kAuto;
          std::cout << "optimization "
                    << pascalr::OptLevelToString(session.options().level)
                    << " (run ANALYZE; for accurate estimates)\n";
        } else if (arg.size() == 1 && arg[0] >= '0' && arg[0] <= '4') {
          session.options().level =
              static_cast<pascalr::OptLevel>(arg[0] - '0');
          std::cout << "optimization "
                    << pascalr::OptLevelToString(session.options().level)
                    << "\n";
        } else {
          std::cout << "level must be 0..4 or auto\n";
        }
      } else if (line.rfind(".joinorder", 0) == 0) {
        std::string arg = pascalr::AsciiToLower(Trim(line.substr(10)));
        if (arg == "dp" || arg == "bushy" || arg == "greedy") {
          session.options().join_order_dp = arg != "greedy";
          session.options().join_dp_bushy = arg == "bushy";
          std::cout << "join ordering: " << arg
                    << (arg == "greedy"
                            ? " (executor smallest-first heuristic)\n"
                            : " (run ANALYZE; so the DP has statistics)\n");
        } else {
          std::cout << "join order must be dp, bushy, or greedy\n";
        }
      } else if (line.rfind(".pipeline", 0) == 0) {
        std::string arg = pascalr::AsciiToLower(Trim(line.substr(9)));
        if (arg == "on" || arg == "off") {
          session.options().pipeline = arg == "on";
          std::cout << "combination: "
                    << (arg == "on" ? "pipelined (streamed join iterators)\n"
                                    : "materialized\n");
        } else {
          std::cout << "pipeline must be on or off\n";
        }
      } else if (line.rfind(".collection", 0) == 0) {
        std::string arg = pascalr::AsciiToLower(Trim(line.substr(11)));
        if (arg == "eager" || arg == "lazy") {
          session.options().collection =
              arg == "lazy" ? pascalr::CollectionPolicy::kLazy
                            : pascalr::CollectionPolicy::kEager;
          std::cout << "collection: "
                    << (arg == "lazy"
                            ? "lazy (demand-driven builders behind Next)\n"
                            : "eager (built at Open)\n");
        } else {
          std::cout << "collection must be eager or lazy\n";
        }
      } else {
        std::cout << "unknown meta command; .help for help\n";
      }
      continue;
    }

    // An empty line with statements pending forces execution — the escape
    // hatch for an accidentally unterminated statement (its parse error
    // is reported and the buffer cleared, re-enabling meta commands).
    bool force = Trim(line).empty();
    if (force && buffer.find_first_not_of(" \t\n") == std::string::npos) {
      buffer.clear();
      continue;
    }
    buffer += line;
    buffer += "\n";
    // Execute once the buffer ends in ';' (outside a string literal this
    // is a statement terminator). Multi-line statements have inner lines
    // ending in ';' too (VAR RECORD components, STATS columns); the
    // parser reports those as incomplete — ExecuteScript parses the whole
    // buffer before executing anything — so keep buffering until the
    // statement closes. This is what makes `.dump` output replayable by
    // piping it back into the shell.
    std::string::size_type last = buffer.find_last_not_of(" \t\n");
    if (!force && (last == std::string::npos || buffer[last] != ';')) {
      continue;
    }

    pascalr::Status st = session.ExecuteScript(buffer);
    if (!force && !st.ok() &&
        st.ToString().find("found end of input") != std::string::npos) {
      continue;
    }
    if (!st.ok()) std::cout << "error: " << st.ToString() << "\n";
    buffer.clear();
  }
  std::cout << "\n";
  return 0;
}
