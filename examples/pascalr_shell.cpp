// Interactive PASCAL/R shell: type statements, end each with ';'.
//
//   $ build/examples/pascalr_shell [--university]
//
// Meta commands (one per line):
//   .help            this text
//   .level N|auto    optimization level 0..4 or cost-based AUTO (default 4)
//   .stats           cumulative session statistics
//   .dump            export the database as a replayable script
//   .quit            exit
//
// Everything else is PASCAL/R: TYPE/VAR declarations, `rel :+ [<...>];`
// inserts, `name := [<...> OF EACH ... : wff];` queries, PRINT, EXPLAIN,
// ANALYZE [rel], and SET OPTLEVEL/DIVISION/PERMINDEXES.

#include <iostream>
#include <string>

#include "pascalr/export.h"
#include "pascalr/pascalr.h"

namespace {

void PrintHelp() {
  std::cout <<
      "statements end with ';'. Examples:\n"
      "  VAR r : RELATION <a> OF RECORD a : 1..99; s : STRING(10) END;\n"
      "  r :+ [<1, 'hello'>];\n"
      "  out := [<x.s> OF EACH x IN r: x.a < 10];\n"
      "  PRINT out;\n"
      "  EXPLAIN [<x.s> OF EACH x IN r: x.a < 10];\n"
      "  ANALYZE;            -- refresh catalog statistics\n"
      "  SET OPTLEVEL AUTO;  -- cost-based strategy selection\n"
      "meta: .help .level N|auto .stats .dump .quit\n";
}

}  // namespace

int main(int argc, char** argv) {
  pascalr::Database db;
  pascalr::Session session(&db, &std::cout);

  if (argc > 1 && std::string(argv[1]) == "--university") {
    if (auto st = pascalr::CreateUniversitySchema(&db); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    if (auto st = pascalr::PopulateSmallExample(&db); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    std::cout << "(loaded the paper's Figure 1 university database)\n";
  }

  std::cout << "pascalr shell — .help for help\n";
  std::string buffer;
  std::string line;
  while (true) {
    std::cout << (buffer.empty() ? "pascalr> " : "     ..> ") << std::flush;
    if (!std::getline(std::cin, line)) break;

    if (buffer.empty() && !line.empty() && line[0] == '.') {
      if (line == ".quit" || line == ".exit") break;
      if (line == ".help") {
        PrintHelp();
      } else if (line == ".stats") {
        std::cout << session.total_stats().ToString() << "\n";
      } else if (line == ".dump") {
        auto script = pascalr::ExportScript(db);
        if (script.ok()) {
          std::cout << *script;
        } else {
          std::cout << "error: " << script.status().ToString() << "\n";
        }
      } else if (line.rfind(".level", 0) == 0) {
        std::string arg = line.substr(6);
        std::string::size_type start = arg.find_first_not_of(" \t");
        std::string::size_type end = arg.find_last_not_of(" \t\r");
        arg = start == std::string::npos ? ""
                                         : arg.substr(start, end - start + 1);
        if (pascalr::AsciiToLower(arg) == "auto") {
          session.options().level = pascalr::OptLevel::kAuto;
          std::cout << "optimization "
                    << pascalr::OptLevelToString(session.options().level)
                    << " (run ANALYZE; for accurate estimates)\n";
        } else if (arg.size() == 1 && arg[0] >= '0' && arg[0] <= '4') {
          session.options().level =
              static_cast<pascalr::OptLevel>(arg[0] - '0');
          std::cout << "optimization "
                    << pascalr::OptLevelToString(session.options().level)
                    << "\n";
        } else {
          std::cout << "level must be 0..4 or auto\n";
        }
      } else {
        std::cout << "unknown meta command; .help for help\n";
      }
      continue;
    }

    buffer += line;
    buffer += "\n";
    // Execute once the buffer ends in ';' (outside a string literal this
    // is a statement terminator; good enough for interactive use).
    std::string::size_type last = buffer.find_last_not_of(" \t\n");
    if (last == std::string::npos || buffer[last] != ';') continue;

    pascalr::Status st = session.ExecuteScript(buffer);
    if (!st.ok()) std::cout << "error: " << st.ToString() << "\n";
    buffer.clear();
  }
  std::cout << "\n";
  return 0;
}
