#include "pascalr/sample_db.h"

#include <random>

#include "base/str_util.h"

namespace pascalr {

namespace {

Status InsertTuple(Relation* rel, Tuple tuple) {
  PASCALR_ASSIGN_OR_RETURN(Ref ignored, rel->Insert(std::move(tuple)));
  (void)ignored;
  return Status::OK();
}

}  // namespace

Status CreateUniversitySchema(Database* db) {
  auto statustype = MakeEnum(
      "statustype", {"student", "technician", "assistant", "professor"});
  auto leveltype =
      MakeEnum("leveltype", {"freshman", "sophomore", "junior", "senior"});
  auto daytype = MakeEnum(
      "daytype", {"monday", "tuesday", "wednesday", "thursday", "friday"});
  PASCALR_RETURN_IF_ERROR(db->RegisterEnum(statustype));
  PASCALR_RETURN_IF_ERROR(db->RegisterEnum(leveltype));
  PASCALR_RETURN_IF_ERROR(db->RegisterEnum(daytype));

  // Figure 1 declares enumbertype/cnumbertype as 1..99; the library widens
  // the subranges so synthetic workloads can scale past 99 elements (see
  // DESIGN.md, substitutions).
  Type enumbertype = Type::IntRange(1, 1000000000);
  Type cnumbertype = Type::IntRange(1, 1000000000);
  Type yeartype = Type::IntRange(1900, 1999);
  Type timetype = Type::IntRange(8000900, 18002000);

  {
    PASCALR_ASSIGN_OR_RETURN(
        Schema schema,
        Schema::Make({{"enr", enumbertype},
                      {"ename", Type::String(10)},
                      {"estatus", Type::Enum(statustype)}},
                     {"enr"}));
    PASCALR_ASSIGN_OR_RETURN(Relation * rel,
                             db->CreateRelation("employees", schema));
    (void)rel;
  }
  {
    PASCALR_ASSIGN_OR_RETURN(
        Schema schema, Schema::Make({{"penr", enumbertype},
                                     {"pyear", yeartype},
                                     {"ptitle", Type::String(40)}},
                                    {"ptitle", "penr"}));
    PASCALR_ASSIGN_OR_RETURN(Relation * rel,
                             db->CreateRelation("papers", schema));
    (void)rel;
  }
  {
    PASCALR_ASSIGN_OR_RETURN(
        Schema schema, Schema::Make({{"cnr", cnumbertype},
                                     {"clevel", Type::Enum(leveltype)},
                                     {"ctitle", Type::String(40)}},
                                    {"cnr"}));
    PASCALR_ASSIGN_OR_RETURN(Relation * rel,
                             db->CreateRelation("courses", schema));
    (void)rel;
  }
  {
    PASCALR_ASSIGN_OR_RETURN(
        Schema schema, Schema::Make({{"tenr", enumbertype},
                                     {"tcnr", cnumbertype},
                                     {"tday", Type::Enum(daytype)},
                                     {"ttime", timetype},
                                     {"troom", Type::String(5)}},
                                    {"tenr", "tcnr", "tday"}));
    PASCALR_ASSIGN_OR_RETURN(Relation * rel,
                             db->CreateRelation("timetable", schema));
    (void)rel;
  }
  return Status::OK();
}

Status PopulateSmallExample(Database* db) {
  Relation* employees = db->FindRelation("employees");
  Relation* papers = db->FindRelation("papers");
  Relation* courses = db->FindRelation("courses");
  Relation* timetable = db->FindRelation("timetable");
  if (employees == nullptr || papers == nullptr || courses == nullptr ||
      timetable == nullptr) {
    return Status::NotFound("university schema not created");
  }
  employees->Clear();
  papers->Clear();
  courses->Clear();
  timetable->Clear();

  // statustype ordinals: student=0, technician=1, assistant=2, professor=3.
  struct Emp {
    int enr;
    const char* name;
    int status;
  };
  const Emp kEmployees[] = {{1, "Alice", 3}, {2, "Bob", 3},  {3, "Carol", 3},
                            {4, "Dave", 2},  {5, "Erin", 0}, {6, "Frank", 3}};
  for (const Emp& e : kEmployees) {
    PASCALR_RETURN_IF_ERROR(InsertTuple(
        employees, Tuple{Value::MakeInt(e.enr), Value::MakeString(e.name),
                         Value::MakeEnum(e.status)}));
  }

  struct Paper {
    int penr;
    int pyear;
    const char* title;
  };
  const Paper kPapers[] = {{1, 1977, "P1"},
                           {1, 1975, "P2"},
                           {2, 1976, "P3"},
                           {4, 1977, "P4"},
                           {3, 1977, "P5"}};
  for (const Paper& p : kPapers) {
    PASCALR_RETURN_IF_ERROR(InsertTuple(
        papers, Tuple{Value::MakeInt(p.penr), Value::MakeInt(p.pyear),
                      Value::MakeString(p.title)}));
  }

  // leveltype ordinals: freshman=0, sophomore=1, junior=2, senior=3.
  struct Course {
    int cnr;
    int level;
    const char* title;
  };
  const Course kCourses[] = {
      {10, 0, "C10"}, {11, 1, "C11"}, {12, 2, "C12"}, {13, 3, "C13"}};
  for (const Course& c : kCourses) {
    PASCALR_RETURN_IF_ERROR(InsertTuple(
        courses, Tuple{Value::MakeInt(c.cnr), Value::MakeEnum(c.level),
                       Value::MakeString(c.title)}));
  }

  struct Slot {
    int tenr;
    int tcnr;
    int tday;
  };
  const Slot kSlots[] = {{1, 11, 0}, {1, 12, 1}, {2, 12, 0},
                         {3, 13, 0}, {4, 11, 1}, {6, 12, 0}};
  int room = 0;
  for (const Slot& s : kSlots) {
    PASCALR_RETURN_IF_ERROR(InsertTuple(
        timetable,
        Tuple{Value::MakeInt(s.tenr), Value::MakeInt(s.tcnr),
              Value::MakeEnum(s.tday), Value::MakeInt(9001000 + room * 1000),
              Value::MakeString(StrFormat("R%d", room % 20))}));
    ++room;
  }
  return Status::OK();
}

Status PopulateSynthetic(Database* db, const UniversityScale& scale) {
  Relation* employees = db->FindRelation("employees");
  Relation* papers = db->FindRelation("papers");
  Relation* courses = db->FindRelation("courses");
  Relation* timetable = db->FindRelation("timetable");
  if (employees == nullptr || papers == nullptr || courses == nullptr ||
      timetable == nullptr) {
    return Status::NotFound("university schema not created");
  }
  employees->Clear();
  papers->Clear();
  courses->Clear();
  timetable->Clear();

  std::mt19937_64 rng(scale.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  for (size_t i = 1; i <= scale.employees; ++i) {
    int status;
    if (coin(rng) < scale.professor_fraction) {
      status = 3;  // professor
    } else {
      status = static_cast<int>(rng() % 3);  // student..assistant
    }
    PASCALR_RETURN_IF_ERROR(InsertTuple(
        employees,
        Tuple{Value::MakeInt(static_cast<int64_t>(i)),
              Value::MakeString(StrFormat("E%zu", i).substr(0, 10)),
              Value::MakeEnum(status)}));
  }

  for (size_t i = 1; i <= scale.papers; ++i) {
    int64_t penr =
        scale.employees == 0
            ? 1
            : static_cast<int64_t>(rng() % scale.employees) + 1;
    int64_t pyear = coin(rng) < scale.papers_1977_fraction
                        ? 1977
                        : 1978 + static_cast<int64_t>(rng() % 20);
    PASCALR_RETURN_IF_ERROR(InsertTuple(
        papers, Tuple{Value::MakeInt(penr), Value::MakeInt(pyear),
                      Value::MakeString(StrFormat("P%zu", i))}));
  }

  for (size_t i = 1; i <= scale.courses; ++i) {
    int level;
    if (coin(rng) < scale.sophomore_fraction) {
      level = static_cast<int>(rng() % 2);  // freshman or sophomore
    } else {
      level = 2 + static_cast<int>(rng() % 2);  // junior or senior
    }
    PASCALR_RETURN_IF_ERROR(InsertTuple(
        courses, Tuple{Value::MakeInt(static_cast<int64_t>(i)),
                       Value::MakeEnum(level),
                       Value::MakeString(StrFormat("C%zu", i))}));
  }

  size_t inserted = 0;
  size_t attempts = 0;
  const size_t max_attempts = scale.timetable * 20 + 100;
  while (inserted < scale.timetable && attempts < max_attempts &&
         scale.employees > 0 && scale.courses > 0) {
    ++attempts;
    int64_t tenr = static_cast<int64_t>(rng() % scale.employees) + 1;
    int64_t tcnr = static_cast<int64_t>(rng() % scale.courses) + 1;
    int tday = static_cast<int>(rng() % 5);
    Tuple tuple{Value::MakeInt(tenr), Value::MakeInt(tcnr),
                Value::MakeEnum(tday),
                Value::MakeInt(9000000 + static_cast<int64_t>(rng() % 9000000)),
                Value::MakeString(StrFormat("R%d", static_cast<int>(rng() % 20)))};
    Result<Ref> ref = timetable->Insert(std::move(tuple));
    if (ref.ok()) {
      ++inserted;
    } else if (ref.status().code() != StatusCode::kAlreadyExists) {
      return ref.status();
    }
  }
  return Status::OK();
}

std::string Example21QuerySource() {
  return R"([<e.ename> OF EACH e IN employees:
    (e.estatus = professor)
    AND
    (ALL p IN papers ((p.pyear <> 1977) OR (e.enr <> p.penr))
     OR
     SOME c IN courses ((c.clevel <= sophomore)
       AND
       SOME t IN timetable ((c.cnr = t.tcnr) AND (e.enr = t.tenr))))])";
}

std::string Example45QuerySource() {
  return R"([<e.ename> OF EACH e IN [EACH e IN employees: e.estatus = professor]:
    ALL p IN [EACH p IN papers: p.pyear = 1977]
    SOME c IN [EACH c IN courses: c.clevel <= sophomore]
    SOME t IN timetable
    ((p.penr <> e.enr)
     OR
     (t.tenr = e.enr) AND (t.tcnr = c.cnr))])";
}

}  // namespace pascalr
