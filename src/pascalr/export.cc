#include "pascalr/export.h"

#include <set>

#include "base/str_util.h"
#include "obs/system_relations.h"

namespace pascalr {

namespace {

std::string TypeToSource(const Type& type) {
  switch (type.kind()) {
    case TypeKind::kInt:
      if (type.int_lo() != std::numeric_limits<int64_t>::min() ||
          type.int_hi() != std::numeric_limits<int64_t>::max()) {
        return StrFormat("%lld..%lld",
                         static_cast<long long>(type.int_lo()),
                         static_cast<long long>(type.int_hi()));
      }
      return "INTEGER";
    case TypeKind::kString:
      if (type.max_len() > 0) return StrFormat("STRING(%zu)", type.max_len());
      return "STRING";
    case TypeKind::kBool:
      return "BOOLEAN";
    case TypeKind::kEnum:
      return type.enum_info() != nullptr ? type.enum_info()->name : "?";
  }
  return "?";
}

std::string EscapeString(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    out += c;
    if (c == '\'') out += '\'';  // '' escapes a quote
  }
  out += "'";
  return out;
}

Result<std::string> ValueToSource(const Value& v, const Type& type) {
  if (v.is_int()) return std::to_string(v.AsInt());
  if (v.is_string()) return EscapeString(v.AsString());
  if (v.is_bool()) return std::string(v.AsBool() ? "TRUE" : "FALSE");
  // Enum: emit the label (labels are identifiers by construction).
  if (type.kind() != TypeKind::kEnum || type.enum_info() == nullptr) {
    return Status::Internal("enum value with no enum type");
  }
  int32_t ord = v.AsEnumOrdinal();
  const auto& labels = type.enum_info()->labels;
  if (ord < 0 || static_cast<size_t>(ord) >= labels.size()) {
    return Status::OutOfRange("enum ordinal outside its type");
  }
  return labels[static_cast<size_t>(ord)];
}

Result<std::string> RelationToSource(const Relation& rel) {
  const Schema& schema = rel.schema();
  std::vector<std::string> keys;
  for (size_t p : schema.key_positions()) {
    keys.push_back(schema.component(p).name);
  }
  std::string out =
      "VAR " + rel.name() + " : RELATION <" + Join(keys, ", ") +
      "> OF RECORD\n";
  for (size_t i = 0; i < schema.num_components(); ++i) {
    const Component& c = schema.component(i);
    out += "      " + c.name + " : " + TypeToSource(c.type);
    out += (i + 1 < schema.num_components()) ? ";\n" : "\n";
  }
  out += "    END;\n";

  Status status = Status::OK();
  rel.Scan([&](const Ref&, const Tuple& tuple) {
    std::vector<std::string> values;
    for (size_t i = 0; i < tuple.size(); ++i) {
      Result<std::string> v =
          ValueToSource(tuple.at(i), schema.component(i).type);
      if (!v.ok()) {
        status = v.status();
        return false;
      }
      values.push_back(std::move(v).value());
    }
    out += rel.name() + " :+ [<" + Join(values, ", ") + ">];\n";
    return true;
  });
  PASCALR_RETURN_IF_ERROR(status);
  return out;
}

/// Serialises fresh catalog statistics as a STATS seeding directive, so
/// replaying the script leaves the reloaded database with the same
/// statistics it had at export time — no initial ANALYZE scan needed.
Result<std::string> StatsToSource(const Relation& rel,
                                  const RelationStats& stats) {
  const Schema& schema = rel.schema();
  std::string out =
      StrFormat("STATS %s CARDINALITY %llu\n", stats.relation.c_str(),
                static_cast<unsigned long long>(stats.cardinality));
  for (size_t i = 0; i < stats.columns.size(); ++i) {
    const ColumnStats& col = stats.columns[i];
    out += StrFormat("  COLUMN %s DISTINCT %llu", col.name.c_str(),
                     static_cast<unsigned long long>(col.distinct));
    if (col.has_min_max) {
      const Type& type = schema.component(i).type;
      PASCALR_ASSIGN_OR_RETURN(std::string min_src,
                               ValueToSource(col.min, type));
      PASCALR_ASSIGN_OR_RETURN(std::string max_src,
                               ValueToSource(col.max, type));
      out += " MIN " + min_src + " MAX " + max_src;
    }
    if (col.numeric && !col.histogram.empty()) {
      std::vector<std::string> buckets;
      for (uint64_t b : col.histogram.buckets) {
        buckets.push_back(std::to_string(b));
      }
      out += StrFormat(" HISTOGRAM %lld %lld (%s)",
                       static_cast<long long>(col.histogram.lo),
                       static_cast<long long>(col.histogram.hi),
                       Join(buckets, ", ").c_str());
    }
    out += (i + 1 < stats.columns.size()) ? "\n" : ";\n";
  }
  if (stats.columns.empty()) {
    out.insert(out.size() - 1, ";");  // arity-0: terminate the header line
  }
  return out;
}

}  // namespace

Result<std::string> ExportRelation(const Database& db,
                                   const std::string& relation) {
  const Relation* rel = db.FindRelation(relation);
  if (rel == nullptr) {
    return Status::NotFound("no relation named '" + relation + "'");
  }
  return RelationToSource(*rel);
}

Result<std::string> ExportScript(const Database& db) {
  std::string out = "(* pascalr database export *)\n";
  // Enum types used by any relation, in first-use order.
  std::set<std::string> emitted;
  for (const std::string& name : db.RelationNames()) {
    if (IsSystemRelationName(name)) continue;
    const Relation* rel = db.FindRelation(name);
    for (const Component& c : rel->schema().components()) {
      if (c.type.kind() != TypeKind::kEnum || c.type.enum_info() == nullptr) {
        continue;
      }
      const EnumInfo& info = *c.type.enum_info();
      if (!emitted.insert(info.name).second) continue;
      out += "TYPE " + info.name + " = (" + Join(info.labels, ", ") + ");\n";
    }
  }
  const std::vector<Database::IndexDescription> indexes = db.ListIndexes();
  for (const std::string& name : db.RelationNames()) {
    // System relations are derived telemetry — a replayed script must
    // regenerate, not restore, them.
    if (IsSystemRelationName(name)) continue;
    PASCALR_ASSIGN_OR_RETURN(std::string rel_src, ExportRelation(db, name));
    out += "\n" + rel_src;
    // Permanent indexes are re-declared after the inserts, so replaying
    // builds each one exactly once over the final contents.
    for (const Database::IndexDescription& index : indexes) {
      if (index.relation != name) continue;
      out += "INDEX " + index.relation + " " + index.component +
             (index.ordered ? " ORDERED;\n" : ";\n");
    }
    // Fresh statistics ride along as a STATS seeding directive (placed
    // after the inserts: seeding stamps the relation's final mod count).
    if (const RelationStats* stats = db.FindFreshStats(name)) {
      PASCALR_ASSIGN_OR_RETURN(std::string stats_src,
                               StatsToSource(*db.FindRelation(name), *stats));
      out += stats_src;
    }
  }
  return out;
}

}  // namespace pascalr
