// The paper's sample database (Figure 1): employees, papers, courses,
// timetable — plus a deterministic synthetic generator used by tests and
// benches to scale the workload.

#ifndef PASCALR_PASCALR_SAMPLE_DB_H_
#define PASCALR_PASCALR_SAMPLE_DB_H_

#include <string>

#include "base/status.h"
#include "catalog/database.h"

namespace pascalr {

/// Declares the Figure 1 types and relations.
Status CreateUniversitySchema(Database* db);

/// Populates the tiny hand-checked dataset the unit tests reason about:
/// 6 employees, 5 papers, 4 courses, 6 timetable entries.
Status PopulateSmallExample(Database* db);

/// Knobs for the synthetic workload. Fractions are approximate (the
/// generator is deterministic given `seed`).
struct UniversityScale {
  size_t employees = 100;
  size_t papers = 200;
  size_t courses = 50;
  size_t timetable = 300;
  double professor_fraction = 0.3;   ///< estatus = professor
  double papers_1977_fraction = 0.2; ///< pyear = 1977
  double sophomore_fraction = 0.4;   ///< clevel <= sophomore
  uint64_t seed = 42;
};

/// Clears and refills the four relations.
Status PopulateSynthetic(Database* db, const UniversityScale& scale);

/// Example 2.1's selection, in query-language syntax (professors who
/// published nothing in 1977 or currently offer a course at sophomore
/// level or below).
std::string Example21QuerySource();

/// Example 4.5's already-transformed form (extended ranges written out).
std::string Example45QuerySource();

}  // namespace pascalr

#endif  // PASCALR_PASCALR_SAMPLE_DB_H_
