#include "pascalr/session.h"

#include <chrono>

#include "base/str_util.h"
#include "calculus/printer.h"
#include "obs/profile.h"
#include "obs/span_names.h"
#include "obs/system_relations.h"
#include "opt/explain.h"
#include "semantics/binder.h"

namespace pascalr {

void Session::Emit(const std::string& text) {
  if (out_ != nullptr) *out_ << text;
}

Status Session::ExecuteScript(std::string_view source) {
  Parser parser(source);
  PASCALR_ASSIGN_OR_RETURN(Script script, parser.ParseScript());
  for (const Statement& stmt : script.statements) {
    PASCALR_RETURN_IF_ERROR(ExecuteStatement(stmt));
  }
  return Status::OK();
}

Result<Type> Session::ResolveType(const RawType& raw,
                                  const std::string& owner) {
  switch (raw.kind) {
    case RawType::Kind::kInt:
      return Type::Int();
    case RawType::Kind::kIntRange:
      return Type::IntRange(raw.lo, raw.hi);
    case RawType::Kind::kString:
      return Type::String(raw.max_len);
    case RawType::Kind::kBool:
      return Type::Bool();
    case RawType::Kind::kInlineEnum: {
      std::string name =
          StrFormat("%s_enum_%d", owner.c_str(), anon_enum_counter_++);
      auto info = MakeEnum(name, raw.labels);
      PASCALR_RETURN_IF_ERROR(db_->RegisterEnum(info));
      return Type::Enum(std::move(info));
    }
    case RawType::Kind::kNamed: {
      auto info = db_->FindEnum(raw.name);
      if (info == nullptr) {
        return Status::NotFound("no type named '" + raw.name + "'");
      }
      return Type::Enum(std::move(info));
    }
  }
  return Status::Internal("unknown raw type kind");
}

Result<Value> Session::ResolveLiteral(const RawLiteral& raw,
                                      const Type& type) {
  switch (raw.kind) {
    case RawLiteral::Kind::kInt:
      if (type.kind() != TypeKind::kInt) {
        return Status::TypeMismatch("integer literal for " + type.ToString());
      }
      return Value::MakeInt(raw.int_value);
    case RawLiteral::Kind::kString:
      if (type.kind() != TypeKind::kString) {
        return Status::TypeMismatch("string literal for " + type.ToString());
      }
      return Value::MakeString(raw.text);
    case RawLiteral::Kind::kBool:
      if (type.kind() != TypeKind::kBool) {
        return Status::TypeMismatch("boolean literal for " + type.ToString());
      }
      return Value::MakeBool(raw.bool_value);
    case RawLiteral::Kind::kIdent: {
      if (type.kind() != TypeKind::kEnum) {
        return Status::TypeMismatch("label '" + raw.text + "' for " +
                                    type.ToString());
      }
      int ordinal = type.enum_info()->OrdinalOf(raw.text);
      if (ordinal < 0) {
        return Status::NotFound("'" + raw.text + "' is not a label of " +
                                type.enum_info()->name);
      }
      return Value::MakeEnum(ordinal);
    }
  }
  return Status::Internal("unknown raw literal kind");
}

Status Session::ApplyOption(const std::string& name,
                            const std::string& value) {
  if (name == "optlevel") {
    if (value == "auto") {
      options_.level = OptLevel::kAuto;
      return Status::OK();
    }
    if (value.size() == 1 && value[0] >= '0' && value[0] <= '4') {
      options_.level = static_cast<OptLevel>(value[0] - '0');
      return Status::OK();
    }
    return Status::InvalidArgument("SET OPTLEVEL expects 0..4 or AUTO, got '" +
                                   value + "'");
  }
  if (name == "division") {
    if (value == "hash") {
      options_.division = DivisionAlgorithm::kHash;
      return Status::OK();
    }
    if (value == "sort") {
      options_.division = DivisionAlgorithm::kSort;
      return Status::OK();
    }
    return Status::InvalidArgument("SET DIVISION expects HASH or SORT, got '" +
                                   value + "'");
  }
  if (name == "permindexes") {
    if (value == "on" || value == "off") {
      options_.use_permanent_indexes = value == "on";
      return Status::OK();
    }
    return Status::InvalidArgument("SET PERMINDEXES expects ON or OFF, got '" +
                                   value + "'");
  }
  if (name == "pipeline") {
    if (value == "on" || value == "off") {
      options_.pipeline = value == "on";
      return Status::OK();
    }
    return Status::InvalidArgument("SET PIPELINE expects ON or OFF, got '" +
                                   value + "'");
  }
  if (name == "collection") {
    if (value == "eager" || value == "lazy") {
      options_.collection = value == "lazy" ? CollectionPolicy::kLazy
                                            : CollectionPolicy::kEager;
      return Status::OK();
    }
    return Status::InvalidArgument(
        "SET COLLECTION expects EAGER or LAZY, got '" + value + "'");
  }
  if (name == "trace") {
    // Session-level, NOT a PlannerOptions member: flipping tracing must
    // not invalidate cached plans or alter any planning decision.
    if (value == "on" || value == "off") {
      tracing_ = value == "on";
      return Status::OK();
    }
    return Status::InvalidArgument("SET TRACE expects ON or OFF, got '" +
                                   value + "'");
  }
  if (name == "slowlog") {
    // Database-wide, like the log itself: any session may arm or disarm
    // the flight recorder. Not a PlannerOptions member — observability
    // must not perturb plan choice or the plan-cache key.
    if (value == "off") {
      db_->slow_log().set_threshold_us(0);
      return Status::OK();
    }
    if (!value.empty() &&
        value.find_first_not_of("0123456789") == std::string::npos) {
      db_->slow_log().set_threshold_us(
          static_cast<uint64_t>(std::stoull(value)));
      return Status::OK();
    }
    return Status::InvalidArgument(
        "SET SLOWLOG expects a threshold in microseconds or OFF, got '" +
        value + "'");
  }
  if (name == "batch") {
    // Rows per pipeline chunk on the batched cursor drain. 1 is the
    // exact row-at-a-time execution (the bit-identity oracle for the
    // vectorized path).
    if (!value.empty() &&
        value.find_first_not_of("0123456789") == std::string::npos) {
      uint64_t n = std::stoull(value);
      if (n >= 1 && n <= 65536) {
        options_.batch_size = static_cast<size_t>(n);
        return Status::OK();
      }
    }
    return Status::InvalidArgument(
        "SET BATCH expects a chunk size in rows (1..65536), got '" + value +
        "'");
  }
  if (name == "parallel") {
    // Worker threads for morsel-driven intra-query parallel drains;
    // 1 (the default) runs fully serial on the session thread.
    if (!value.empty() &&
        value.find_first_not_of("0123456789") == std::string::npos) {
      uint64_t n = std::stoull(value);
      if (n >= 1 && n <= 64) {
        options_.parallel = static_cast<size_t>(n);
        return Status::OK();
      }
    }
    return Status::InvalidArgument(
        "SET PARALLEL expects a worker count (1..64), got '" + value + "'");
  }
  if (name == "joinorder") {
    if (value == "dp") {
      options_.join_order_dp = true;
      options_.join_dp_bushy = false;
      return Status::OK();
    }
    if (value == "bushy") {
      options_.join_order_dp = true;
      options_.join_dp_bushy = true;
      return Status::OK();
    }
    if (value == "greedy") {
      options_.join_order_dp = false;
      return Status::OK();
    }
    return Status::InvalidArgument(
        "SET JOINORDER expects DP, BUSHY, or GREEDY, got '" + value + "'");
  }
  return Status::InvalidArgument("unknown option '" + name +
                                 "' (expected OPTLEVEL, DIVISION, "
                                 "PERMINDEXES, JOINORDER, PIPELINE, "
                                 "COLLECTION, BATCH, PARALLEL, TRACE, "
                                 "or SLOWLOG)");
}

Status Session::RunAssign(const AssignStmt& stmt) {
  Binder binder(db_);
  PASCALR_ASSIGN_OR_RETURN(BoundQuery bound,
                           binder.Bind(stmt.selection.Clone()));
  Schema output_schema = bound.output_schema;
  const auto t0 = std::chrono::steady_clock::now();
  PASCALR_ASSIGN_OR_RETURN(QueryRun run,
                           RunQuery(*db_, std::move(bound), options_));
  total_stats_.Merge(run.stats);
  // Assignments run the one-shot path (no prepared layer), so they fold
  // here — every query surface reports into sys$statements.
  FoldStatementStats(
      FormatSelection(stmt.selection),
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()),
      run.tuples.size(), run.stats, /*plan_cache_hit=*/false,
      /*max_qerror=*/0.0,
      StrFormat("level=%s pipeline=%s cache=off",
                std::string(OptLevelToString(run.planned.plan.level)).c_str(),
                run.planned.plan.pipeline ? "on" : "off"));

  // Create or replace the target relation.
  if (db_->FindRelation(stmt.target) != nullptr) {
    PASCALR_RETURN_IF_ERROR(db_->DropRelation(stmt.target));
  }
  PASCALR_ASSIGN_OR_RETURN(Relation * target,
                           db_->CreateRelation(stmt.target, output_schema));
  for (Tuple& t : run.tuples) {
    PASCALR_ASSIGN_OR_RETURN(Ref ignored, target->Insert(std::move(t)));
    (void)ignored;
  }
  return Status::OK();
}

Status Session::RunStatsSeed(const StatsStmt& stmt) {
  Relation* rel = db_->FindRelation(stmt.relation);
  if (rel == nullptr) {
    return Status::NotFound("no relation named '" + stmt.relation + "'");
  }
  const Schema& schema = rel->schema();
  RelationStats stats;
  stats.relation = stmt.relation;
  stats.cardinality = stmt.cardinality;
  stats.columns.resize(schema.num_components());
  for (size_t i = 0; i < schema.num_components(); ++i) {
    stats.columns[i].name = schema.component(i).name;
  }
  for (const StatsColumnClause& clause : stmt.columns) {
    int pos = -1;
    for (size_t i = 0; i < schema.num_components(); ++i) {
      if (schema.component(i).name == clause.component) {
        pos = static_cast<int>(i);
        break;
      }
    }
    if (pos < 0) {
      return Status::NotFound("no component named '" + clause.component +
                              "' in " + stmt.relation);
    }
    const Type& type = schema.component(static_cast<size_t>(pos)).type;
    ColumnStats& col = stats.columns[static_cast<size_t>(pos)];
    col.distinct = clause.distinct;
    if (clause.has_min_max) {
      PASCALR_ASSIGN_OR_RETURN(col.min, ResolveLiteral(clause.min, type));
      PASCALR_ASSIGN_OR_RETURN(col.max, ResolveLiteral(clause.max, type));
      col.has_min_max = true;
    }
    if (clause.has_histogram) {
      if (clause.buckets.empty() ||
          clause.histogram_lo > clause.histogram_hi) {
        return Status::InvalidArgument("malformed histogram for '" +
                                       clause.component + "'");
      }
      // Keep the ANALYZE invariants: histograms only exist on numeric
      // domains and always come with min/max (whose out-of-range guards
      // Selectivity relies on before indexing a bucket).
      if (type.kind() == TypeKind::kString) {
        return Status::InvalidArgument(
            "HISTOGRAM on string component '" + clause.component + "'");
      }
      if (!clause.has_min_max) {
        return Status::InvalidArgument("HISTOGRAM for '" + clause.component +
                                       "' requires MIN and MAX");
      }
      col.numeric = true;
      col.histogram.lo = clause.histogram_lo;
      col.histogram.hi = clause.histogram_hi;
      col.histogram.buckets = clause.buckets;
      col.histogram.total = 0;
      for (uint64_t b : clause.buckets) col.histogram.total += b;
    }
  }
  return db_->SeedStats(std::move(stats));
}

namespace {

/// Statements that mutate the database (relations, catalog, or
/// statistics) and therefore run under the write-statement guard.
bool IsWriteStatement(const Statement& stmt) {
  return std::holds_alternative<TypeDeclStmt>(stmt) ||
         std::holds_alternative<RelationDeclStmt>(stmt) ||
         std::holds_alternative<AssignStmt>(stmt) ||
         std::holds_alternative<InsertStmt>(stmt) ||
         std::holds_alternative<DeleteStmt>(stmt) ||
         std::holds_alternative<AnalyzeStmt>(stmt) ||
         std::holds_alternative<StatsStmt>(stmt) ||
         std::holds_alternative<IndexStmt>(stmt);
}

}  // namespace

std::string Session::StatementSourceForRefresh(const Statement& stmt) {
  if (const auto* print = std::get_if<PrintStmt>(&stmt)) {
    return print->relation;
  }
  if (const auto* assign = std::get_if<AssignStmt>(&stmt)) {
    return FormatSelection(assign->selection);
  }
  if (const auto* explain = std::get_if<ExplainStmt>(&stmt)) {
    return FormatSelection(explain->selection);
  }
  if (const auto* prepare = std::get_if<PrepareStmt>(&stmt)) {
    return FormatSelection(prepare->selection);
  }
  if (const auto* execute = std::get_if<ExecuteStmt>(&stmt)) {
    PreparedQuery* prepared = FindPrepared(execute->name);
    if (prepared != nullptr && prepared->state_ != nullptr) {
      return prepared->state_->source;
    }
    return {};
  }
  if (const auto* analyze = std::get_if<AnalyzeStmt>(&stmt)) {
    return analyze->relation;
  }
  return {};
}

Status Session::ExecuteStatement(const Statement& stmt) {
  // System views referenced by this statement materialize NOW, before the
  // write guard / read snapshot below — the refresh is its own write
  // statement, and a snapshot taken after it sees one consistent
  // materialization. The pin keeps nested entry points (RunExecute →
  // PreparedQuery::Execute, EXPLAIN ANALYZE → ExplainAnalyzeSelection)
  // from re-materializing mid-statement.
  PASCALR_RETURN_IF_ERROR(
      RefreshSystemViewsForSource(db_, StatementSourceForRefresh(stmt)));
  ScopedSystemViewPin pin;
  // While tracing is on, the session tracer is thread-current for the
  // whole statement; every deeper span guard attaches to it. While off
  // this installs nullptr and every guard below is a no-op.
  ScopedTracerInstall install_tracer(active_tracer());
  if (IsWriteStatement(stmt)) {
    Status status;
    {
      Database::WriteStatementGuard guard = db_->BeginWriteStatement();
      status = ExecuteStatementImpl(stmt);
      last_commit_version_ = guard.Commit();
    }
    // Outside the guard (the write mutex is not recursive): reclaim dead
    // versions opportunistically once enough have accumulated.
    db_->MaybeCompact();
    if (status.ok()) {
      db_->session_registry().RecordWrite(session_id_);
      db_->server_metrics().counter("server.write.count").Inc();
    }
    return status;
  }
  // Read statements share one consistent read point end to end.
  ScopedSnapshotInstall install_snapshot(db_->SnapshotForRead());
  return ExecuteStatementImpl(stmt);
}

Status Session::ExecuteStatementImpl(const Statement& stmt) {
  if (const auto* type_decl = std::get_if<TypeDeclStmt>(&stmt)) {
    switch (type_decl->type.kind) {
      case RawType::Kind::kInlineEnum: {
        auto info = MakeEnum(type_decl->name, type_decl->type.labels);
        return db_->RegisterEnum(std::move(info));
      }
      default:
        // Non-enum aliases (subranges, strings) are resolved structurally
        // at each use; declaring them is allowed but needs no catalog
        // entry beyond the enum registry in this implementation.
        return Status::Unsupported(
            "only enumeration TYPE declarations are registered; inline the "
            "subrange/string type in the RECORD");
    }
  }
  if (const auto* rel_decl = std::get_if<RelationDeclStmt>(&stmt)) {
    std::vector<Component> components;
    for (const auto& [name, raw] : rel_decl->components) {
      PASCALR_ASSIGN_OR_RETURN(Type type, ResolveType(raw, rel_decl->name));
      components.push_back({name, std::move(type)});
    }
    PASCALR_ASSIGN_OR_RETURN(
        Schema schema,
        Schema::Make(std::move(components), rel_decl->key_components));
    PASCALR_ASSIGN_OR_RETURN(Relation * rel,
                             db_->CreateRelation(rel_decl->name, schema));
    (void)rel;
    return Status::OK();
  }
  if (const auto* assign = std::get_if<AssignStmt>(&stmt)) {
    return RunAssign(*assign);
  }
  if (const auto* insert = std::get_if<InsertStmt>(&stmt)) {
    Relation* rel = db_->FindRelation(insert->target);
    if (rel == nullptr) {
      return Status::NotFound("no relation named '" + insert->target + "'");
    }
    if (insert->values.size() != rel->schema().num_components()) {
      return Status::InvalidArgument(StrFormat(
          "insert arity %zu does not match schema arity %zu",
          insert->values.size(), rel->schema().num_components()));
    }
    Tuple tuple;
    for (size_t i = 0; i < insert->values.size(); ++i) {
      PASCALR_ASSIGN_OR_RETURN(
          Value v, ResolveLiteral(insert->values[i],
                                  rel->schema().component(i).type));
      tuple.Append(std::move(v));
    }
    PASCALR_ASSIGN_OR_RETURN(Ref ignored, rel->Insert(std::move(tuple)));
    (void)ignored;
    return Status::OK();
  }
  if (const auto* del = std::get_if<DeleteStmt>(&stmt)) {
    Relation* rel = db_->FindRelation(del->target);
    if (rel == nullptr) {
      return Status::NotFound("no relation named '" + del->target + "'");
    }
    const auto& key_positions = rel->schema().key_positions();
    if (del->key.size() != key_positions.size()) {
      return Status::InvalidArgument(StrFormat(
          "delete key arity %zu does not match key arity %zu",
          del->key.size(), key_positions.size()));
    }
    Tuple key;
    for (size_t i = 0; i < del->key.size(); ++i) {
      PASCALR_ASSIGN_OR_RETURN(
          Value v,
          ResolveLiteral(del->key[i],
                         rel->schema().component(key_positions[i]).type));
      key.Append(std::move(v));
    }
    return rel->EraseByKey(key);
  }
  if (const auto* print = std::get_if<PrintStmt>(&stmt)) {
    Relation* rel = db_->FindRelation(print->relation);
    if (rel == nullptr) {
      return Status::NotFound("no relation named '" + print->relation + "'");
    }
    Emit(rel->DebugString(/*max_elements=*/64) + "\n");
    return Status::OK();
  }
  if (const auto* explain = std::get_if<ExplainStmt>(&stmt)) {
    if (explain->analyze) {
      PASCALR_ASSIGN_OR_RETURN(
          std::string report,
          ExplainAnalyzeSelection(explain->selection.Clone()));
      Emit(report);
      return Status::OK();
    }
    Binder binder(db_);
    PASCALR_ASSIGN_OR_RETURN(BoundQuery bound,
                             binder.Bind(explain->selection.Clone()));
    PASCALR_ASSIGN_OR_RETURN(PlannedQuery planned,
                             PlanQuery(*db_, std::move(bound), options_));
    Emit(ExplainPlan(planned));
    if (planned.cost_based) {
      // EXPLAIN under cost-based mode also executes the chosen plan, so
      // the estimated counters can be judged against reality.
      ExecStats stats;
      PASCALR_ASSIGN_OR_RETURN(ExecOutcome outcome,
                               ExecutePlan(planned.plan, *db_, &stats));
      (void)outcome;
      total_stats_.Merge(stats);
      Emit(ExplainEstimatedVsActual(planned, stats));
    }
    return Status::OK();
  }
  if (const auto* analyze = std::get_if<AnalyzeStmt>(&stmt)) {
    if (analyze->relation.empty()) {
      PASCALR_RETURN_IF_ERROR(db_->AnalyzeAll());
      Emit(StrFormat("analyzed %zu relations\n",
                     db_->RelationNames().size()));
      return Status::OK();
    }
    PASCALR_ASSIGN_OR_RETURN(const RelationStats* stats,
                             db_->Analyze(analyze->relation));
    Emit(stats->ToString());
    return Status::OK();
  }
  if (const auto* set = std::get_if<SetStmt>(&stmt)) {
    return ApplyOption(set->name, set->value);
  }
  if (const auto* stats = std::get_if<StatsStmt>(&stmt)) {
    return RunStatsSeed(*stats);
  }
  if (const auto* prepare = std::get_if<PrepareStmt>(&stmt)) {
    return RunPrepare(*prepare);
  }
  if (const auto* execute = std::get_if<ExecuteStmt>(&stmt)) {
    return RunExecute(*execute);
  }
  if (std::get_if<MetricsStmt>(&stmt) != nullptr) {
    Emit(metrics_.Dump());
    return Status::OK();
  }
  if (const auto* index = std::get_if<IndexStmt>(&stmt)) {
    PASCALR_ASSIGN_OR_RETURN(
        ComponentIndex * built,
        db_->EnsureIndex(index->relation, index->component, index->ordered));
    (void)built;
    Emit(StrFormat("index %s.%s (%s)\n", index->relation.c_str(),
                   index->component.c_str(),
                   index->ordered ? "ordered" : "hash"));
    return Status::OK();
  }
  return Status::Internal("unknown statement kind");
}

void Session::FoldStatementStats(const std::string& fingerprint,
                                 uint64_t latency_us, uint64_t rows,
                                 const ExecStats& stats, bool plan_cache_hit,
                                 double max_qerror,
                                 const std::string& plan_summary) {
  StmtObservation obs;
  obs.latency_us = latency_us;
  obs.rows = rows;
  obs.plan_cache_hit = plan_cache_hit;
  obs.max_qerror = max_qerror;
  obs.stats = &stats;
  db_->stmt_stats().Fold(fingerprint, obs);
  db_->session_registry().RecordQuery(session_id_);
  MetricsRegistry& server = db_->server_metrics();
  server.counter("server.query.count").Inc();
  server.histogram("server.query.latency_us").Record(latency_us);
  SlowQueryLog& slow = db_->slow_log();
  if (slow.ShouldRecord(latency_us)) {
    SlowQueryRecord record;
    record.source = fingerprint;
    record.plan_summary = plan_summary;
    record.latency_us = latency_us;
    record.rows = rows;
    record.total_work = stats.TotalWork();
    slow.Record(std::move(record));
  }
}

Result<BoundQuery> Session::Bind(std::string_view selection_source) {
  PASCALR_RETURN_IF_ERROR(RefreshSystemViewsForSource(db_, selection_source));
  ScopedSystemViewPin pin;
  Parser parser(selection_source);
  PASCALR_ASSIGN_OR_RETURN(SelectionExpr sel, parser.ParseSelectionOnly());
  Binder binder(db_);
  return binder.Bind(std::move(sel));
}

Result<PreparedQuery> Session::Prepare(std::string_view selection_source) {
  // Any referenced system views materialize before PrepareSelection
  // captures the bind snapshot (no-op when an outer entry point pinned).
  PASCALR_RETURN_IF_ERROR(RefreshSystemViewsForSource(db_, selection_source));
  ScopedSystemViewPin pin;
  // Direct C++ entry point: install the tracer ourselves (the statement
  // path installed it already; re-installing the same tracer is benign).
  // Under an open query trace the guard nests as a "prepare" span;
  // standalone it opens its own trace.
  ScopedTracerInstall install_tracer(active_tracer());
  QueryTraceGuard query_guard(spans::kPrepare, std::string(selection_source));
  Parser parser(selection_source);
  SelectionExpr sel;
  {
    TraceSpanGuard span(spans::kParse);
    PASCALR_ASSIGN_OR_RETURN(sel, parser.ParseSelectionOnly());
  }
  return PrepareSelection(std::move(sel));
}

Result<PreparedQuery> Session::PrepareSelection(SelectionExpr selection) {
  ScopedTracerInstall install_tracer(active_tracer());
  auto state = std::make_shared<PreparedQuery::State>();
  state->raw_selection = selection.Clone();
  state->source = FormatSelection(state->raw_selection);
  // The DSL path enters here directly (no source text upstream): the
  // normalized source is the reference scan. Must precede the snapshot —
  // a refresh after capture would be invisible to this bind.
  PASCALR_RETURN_IF_ERROR(RefreshSystemViewsForSource(db_, state->source));
  ScopedSystemViewPin pin;
  ScopedSnapshotInstall install_snapshot(db_->SnapshotForRead());
  Binder binder(db_);
  {
    TraceSpanGuard span(spans::kBind);
    PASCALR_ASSIGN_OR_RETURN(state->template_query,
                             binder.Bind(std::move(selection)));
  }
  state->param_types = state->template_query.params;
  state->RecordBoundRelations();
  PreparedQuery prepared;
  prepared.session_ = this;
  prepared.state_ = std::move(state);
  return prepared;
}

Result<QueryRun> Session::Query(std::string_view selection_source) {
  // Thin compatibility wrapper: Prepare + Execute (no parameters) + drain.
  // Execute accumulates the stats into total_stats_ itself.
  PASCALR_RETURN_IF_ERROR(RefreshSystemViewsForSource(db_, selection_source));
  ScopedSystemViewPin pin;
  ScopedTracerInstall install_tracer(active_tracer());
  // One snapshot covers parse, bind, plan, and execution (Prepare and
  // Execute below reuse it instead of capturing their own).
  ScopedSnapshotInstall install_snapshot(db_->SnapshotForRead());
  QueryTraceGuard query_guard(spans::kQuery, std::string(selection_source),
                              &total_stats_);
  PASCALR_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(selection_source));
  PASCALR_ASSIGN_OR_RETURN(PreparedExecution exec, prepared.Execute());
  QueryRun run;
  run.tuples = std::move(exec.tuples);
  run.stats = exec.stats;
  run.collection = std::move(exec.collection);
  run.planned = prepared.TakePlanned();
  return run;
}

PreparedQuery* Session::FindPrepared(const std::string& name) {
  auto it = named_prepared_.find(name);
  return it == named_prepared_.end() ? nullptr : &it->second;
}

Status Session::RunPrepare(const PrepareStmt& stmt) {
  // ExecuteStatement installed the tracer; this opens the statement's
  // query trace so the bind span below it has a home.
  QueryTraceGuard query_guard(spans::kPrepare, stmt.name);
  PASCALR_ASSIGN_OR_RETURN(PreparedQuery prepared,
                           PrepareSelection(stmt.selection.Clone()));
  std::vector<std::string> params = prepared.param_names();
  named_prepared_[stmt.name] = std::move(prepared);
  std::string note = "prepared " + stmt.name;
  if (!params.empty()) {
    note += " (";
    for (size_t i = 0; i < params.size(); ++i) {
      note += (i > 0 ? ", $" : "$") + params[i];
    }
    note += ")";
  }
  Emit(note + "\n");
  return Status::OK();
}

Status Session::RunExecute(const ExecuteStmt& stmt) {
  PreparedQuery* prepared = FindPrepared(stmt.name);
  if (prepared == nullptr) {
    return Status::NotFound("no prepared query named '" + stmt.name +
                            "' (PREPARE it first)");
  }
  const std::map<std::string, Type>& types = prepared->param_types();
  ParamBindings bindings;
  for (const auto& [name, raw] : stmt.params) {
    auto it = types.find(name);
    if (it == types.end()) {
      return Status::InvalidArgument("prepared query '" + stmt.name +
                                     "' declares no parameter $" + name);
    }
    PASCALR_ASSIGN_OR_RETURN(Value value, ResolveLiteral(raw, it->second));
    if (!bindings.emplace(name, std::move(value)).second) {
      return Status::InvalidArgument("parameter $" + name +
                                     " is bound twice in WITH");
    }
  }
  PASCALR_ASSIGN_OR_RETURN(PreparedExecution exec,
                           prepared->Execute(bindings));
  Emit(StrFormat("%s: %zu tuple(s)%s\n", stmt.name.c_str(),
                 exec.tuples.size(),
                 exec.plan_cache_hit ? " (cached plan)" : ""));
  const Schema& schema = prepared->output_schema();
  for (const Tuple& tuple : exec.tuples) {
    std::string row = "  <";
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) row += ", ";
      row += i < schema.num_components()
                 ? tuple.at(i).ToStringTyped(schema.component(i).type)
                 : tuple.at(i).ToString();
    }
    Emit(row + ">\n");
  }
  return Status::OK();
}

Result<std::string> Session::Explain(std::string_view selection_source) {
  PASCALR_RETURN_IF_ERROR(RefreshSystemViewsForSource(db_, selection_source));
  ScopedSystemViewPin pin;
  ScopedSnapshotInstall install_snapshot(db_->SnapshotForRead());
  PASCALR_ASSIGN_OR_RETURN(BoundQuery bound, Bind(selection_source));
  PASCALR_ASSIGN_OR_RETURN(PlannedQuery planned,
                           PlanQuery(*db_, std::move(bound), options_));
  return ExplainPlan(planned);
}

Result<std::string> Session::ExplainAnalyze(std::string_view selection_source) {
  PASCALR_RETURN_IF_ERROR(RefreshSystemViewsForSource(db_, selection_source));
  ScopedSystemViewPin pin;
  ScopedTracerInstall install_tracer(active_tracer());
  QueryTraceGuard query_guard(spans::kExplainAnalyze,
                              std::string(selection_source));
  Parser parser(selection_source);
  SelectionExpr sel;
  {
    TraceSpanGuard span(spans::kParse);
    PASCALR_ASSIGN_OR_RETURN(sel, parser.ParseSelectionOnly());
  }
  return ExplainAnalyzeSelection(std::move(sel));
}

Result<std::string> Session::ExplainAnalyzeSelection(SelectionExpr selection) {
  ScopedTracerInstall install_tracer(active_tracer());
  // The normalized source doubles as the stmt-stats fingerprint: an
  // EXPLAIN ANALYZE run folds into the same sys$statements row as the
  // statement it analyzes, contributing the row's q-error column.
  const std::string fingerprint = FormatSelection(selection);
  PASCALR_RETURN_IF_ERROR(RefreshSystemViewsForSource(db_, fingerprint));
  ScopedSystemViewPin pin;
  ScopedSnapshotInstall install_snapshot(db_->SnapshotForRead());
  QueryTraceGuard query_guard(spans::kExplainAnalyze, "");
  Binder binder(db_);
  BoundQuery bound;
  {
    TraceSpanGuard span(spans::kBind);
    PASCALR_ASSIGN_OR_RETURN(bound, binder.Bind(std::move(selection)));
  }
  PASCALR_ASSIGN_OR_RETURN(PlannedQuery planned,
                           PlanQuery(*db_, std::move(bound), options_));
  // Shared ownership mirrors the prepared-query path: the cursor keeps the
  // plan alive through an aliasing pointer into the PlannedQuery.
  auto shared = std::make_shared<PlannedQuery>(std::move(planned));
  std::shared_ptr<const QueryPlan> plan(shared, &shared->plan);

  // Execute with profiling on. The result tuples are drained and
  // discarded — EXPLAIN ANALYZE reports about the run, it does not return
  // rows — but the run is a real one: it feeds total_stats() and the
  // latency histogram exactly like Execute.
  PipelineProfile profile;
  const auto t0 = std::chrono::steady_clock::now();
  PASCALR_ASSIGN_OR_RETURN(
      Cursor cursor,
      Cursor::Open(plan, *db_, /*sink=*/nullptr, &profile));
  size_t result_tuples = 0;
  Tuple tuple;
  while (true) {
    PASCALR_ASSIGN_OR_RETURN(bool more, cursor.Next(&tuple));
    if (!more) break;
    ++result_tuples;
  }
  ExecStats stats = cursor.stats();
  cursor.Close();
  stats.replans = shared->replans;
  total_stats_.Merge(stats);
  const uint64_t wall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  metrics_.counter("query.count").Inc();
  metrics_.histogram("query.latency_us").Record(wall_ns / 1000);
  if (stats.replans > 0) {
    metrics_.counter("query.replans").Inc(stats.replans);
  }
  FoldStatementStats(
      fingerprint, wall_ns / 1000, result_tuples, stats,
      /*plan_cache_hit=*/false, MaxQError(profile),
      StrFormat("level=%s pipeline=%s cache=miss",
                std::string(OptLevelToString(shared->plan.level)).c_str(),
                shared->plan.pipeline ? "on" : "off"));

  std::string report = ExplainPlan(*shared);
  report +=
      ExplainAnalyzeReport(*shared, profile, stats, result_tuples, wall_ns);
  return report;
}

}  // namespace pascalr
