// Prepared queries: the Prepare / Bind / Execute lifecycle PASCAL/R's
// embedding implies (Jarke & Schmidt §2 — the same selection runs
// repeatedly inside host-program loops with changing host-variable
// values, so compilation is split from execution and the strategy choice
// is reused, not redone, per iteration).
//
//   auto pq = session.Prepare(
//       "[<e.ename> OF EACH e IN employees: e.enr <= $top]");
//   for (int64_t top : {5, 10, 50}) {
//     auto run = pq->Execute({{"top", Value::MakeInt(top)}});
//     ...
//   }
//
// Prepare parses and binds once ($params are typed by the binder against
// the components they are compared with). The first Execute substitutes
// the bound values and runs cost-based planning — parameterized
// selectivity is estimated from the actual values, so OptLevel::kAuto can
// pick a different strategy level for a selective vs. a non-selective
// binding. The compiled plan is cached keyed on the catalog stats epoch,
// the referenced relations' mod_counts, and the session's planner
// options; while the key matches, further Executes only re-patch the
// parameter slots in place — zero parse / normalize / plan-search work
// (asserted by tests against base/counters.h). A mutation or ANALYZE
// changes the key and the next Execute transparently replans. Safety
// wrinkle: when a parameter appears inside an extended range, its
// emptiness (which drives the planner's runtime-adaptation rules) is
// re-probed per execution, and a flip forces a replan — a stale cache
// never returns wrong tuples.
//
// Results stream through a pull-based Cursor (exec/cursor.h); Execute is
// simply OpenCursor + drain. A PreparedQuery must not outlive its Session
// (or the Database).

#ifndef PASCALR_PASCALR_PREPARED_H_
#define PASCALR_PASCALR_PREPARED_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "exec/cursor.h"
#include "opt/params.h"
#include "opt/planner.h"

namespace pascalr {

class Session;

/// Lifecycle counters of one prepared query.
struct PreparedStats {
  uint64_t executes = 0;         ///< Execute + OpenCursor calls
  uint64_t plan_cache_hits = 0;  ///< executions that reused the cached plan
  uint64_t plan_compiles = 0;    ///< plan (re)builds, including the first
  uint64_t rebinds = 0;          ///< template rebinds (relation re-created)
};

/// One Execute's materialised result (the cursor drained).
struct PreparedExecution {
  std::vector<Tuple> tuples;
  ExecStats stats;
  CollectionResult collection;
  bool plan_cache_hit = false;
  /// The db_version this execution read at (0 while concurrent serving is
  /// off). The concurrency stress test keys its serial-oracle replay on
  /// this: the result must be bit-identical to replaying the committed
  /// write log up to exactly this version.
  uint64_t snapshot_version = 0;
};

class PreparedQuery {
 public:
  PreparedQuery() = default;  ///< empty shell; Session::Prepare makes real ones

  /// Runs the query with the given parameter values, materialising the
  /// whole result (OpenCursor + drain). Statistics are added to the
  /// session totals.
  Result<PreparedExecution> Execute(const ParamBindings& params = {});

  /// Runs collection + combination and returns a streaming cursor over
  /// the result; construction work (dereference + projection + dedup)
  /// happens per Next() call, so a partially drained cursor never pays
  /// for tuples nobody asked for. The cursor flushes its stats to the
  /// session when closed and keeps the executed plan alive even if a
  /// later Execute replans.
  Result<Cursor> OpenCursor(const ParamBindings& params = {});

  /// EXPLAIN text of the currently cached plan (plans with the given
  /// params first when no plan is cached yet).
  Result<std::string> Explain(const ParamBindings& params = {});

  /// Drops the cached plan; the next Execute replans from the template.
  void InvalidatePlan();

  const Schema& output_schema() const;
  /// Declared parameters in name order.
  std::vector<std::string> param_names() const;
  const std::map<std::string, Type>& param_types() const;
  const PreparedStats& stats() const;
  /// The cached plan's trail (estimate, adaptation notes, chosen level);
  /// nullptr before the first Execute.
  const PlannedQuery* planned() const;

 private:
  friend class Session;

  struct State {
    /// Pre-bind selection — the rebind source when a referenced relation
    /// is dropped and re-created (no re-parse needed, Prepare parsed it).
    SelectionExpr raw_selection;
    /// Normalized source text (FormatSelection of raw_selection), cached
    /// at Prepare: the shared-plan-cache key base.
    std::string source;
    /// Parsed + bound once, parameters marked and typed.
    BoundQuery template_query;
    std::map<std::string, Type> param_types;
    /// Referenced relations at bind time: (name, id). An id mismatch means
    /// drop + re-create — the template's schema resolutions are void.
    std::vector<std::pair<std::string, RelationId>> bound_relations;

    // ---- plan cache (null until the first Execute) -------------------
    std::shared_ptr<PlannedQuery> planned;
    uint64_t stamp_epoch = 0;  ///< Database::stats_epoch at plan time
    std::vector<std::pair<std::string, uint64_t>> stamp_mods;
    PlannerOptions stamp_options;
    ParamBindings last_bindings;  ///< values currently patched into the plan
    /// Emptiness, at plan time, of every range whose restriction holds a
    /// parameter: template-level user-written ranges (they may have been
    /// folded out of the plan entirely — adaptation rule 1) and plan-
    /// prefix ranges (strategy-3 extensions — rule 2). A flip under new
    /// values invalidates the plan.
    std::vector<std::pair<RangeExpr, bool>> template_probes;
    std::vector<std::pair<size_t, bool>> plan_probes;

    PreparedStats stats;

    Status Rebind(const Database* db);
    void RecordBoundRelations();
  };

  /// Validates bindings, revalidates template + plan cache, replans if
  /// needed, and leaves state_->planned holding an executable plan whose
  /// parameter slots carry `params`. Sets *cache_hit.
  Status EnsurePlan(const ParamBindings& params, bool* cache_hit);

  /// Moves the planning trail out (Session::Query assembling a QueryRun
  /// from a throwaway prepared query).
  PlannedQuery TakePlanned();

  Session* session_ = nullptr;
  std::shared_ptr<State> state_;
};

}  // namespace pascalr

#endif  // PASCALR_PASCALR_PREPARED_H_
