#include "pascalr/dsl.h"

namespace pascalr {

FormulaPtr operator&&(FormulaPtr&& a, FormulaPtr&& b) {
  return Formula::And(std::move(a), std::move(b));
}

FormulaPtr operator||(FormulaPtr&& a, FormulaPtr&& b) {
  return Formula::Or(std::move(a), std::move(b));
}

namespace dsl {

FormulaPtr NotF(FormulaPtr a) { return Formula::Not(std::move(a)); }

Operand C(std::string var, std::string component) {
  return Operand::Component(std::move(var), std::move(component));
}

Operand Lit(int64_t v) {
  Operand o = Operand::Literal(Value::MakeInt(v));
  o.type = Type::Int();
  return o;
}

Operand Lit(std::string v) {
  Operand o = Operand::Literal(Value::MakeString(std::move(v)));
  o.type = Type::String();
  return o;
}

Operand Lit(bool v) {
  Operand o = Operand::Literal(Value::MakeBool(v));
  o.type = Type::Bool();
  return o;
}

Operand Label(std::string label) {
  Operand o;
  o.kind = Operand::Kind::kLiteral;
  o.enum_label = std::move(label);
  o.literal = Value::MakeEnum(-1);
  return o;
}

FormulaPtr Cmp(Operand lhs, CompareOp op, Operand rhs) {
  return Formula::Compare(std::move(lhs), op, std::move(rhs));
}

FormulaPtr Eq(Operand lhs, Operand rhs) {
  return Cmp(std::move(lhs), CompareOp::kEq, std::move(rhs));
}
FormulaPtr Ne(Operand lhs, Operand rhs) {
  return Cmp(std::move(lhs), CompareOp::kNe, std::move(rhs));
}
FormulaPtr Lt(Operand lhs, Operand rhs) {
  return Cmp(std::move(lhs), CompareOp::kLt, std::move(rhs));
}
FormulaPtr Le(Operand lhs, Operand rhs) {
  return Cmp(std::move(lhs), CompareOp::kLe, std::move(rhs));
}
FormulaPtr Gt(Operand lhs, Operand rhs) {
  return Cmp(std::move(lhs), CompareOp::kGt, std::move(rhs));
}
FormulaPtr Ge(Operand lhs, Operand rhs) {
  return Cmp(std::move(lhs), CompareOp::kGe, std::move(rhs));
}

FormulaPtr Some(std::string var, std::string relation, FormulaPtr body) {
  return Formula::Quant(Quantifier::kSome, std::move(var),
                        RangeExpr(std::move(relation)), std::move(body));
}

FormulaPtr All(std::string var, std::string relation, FormulaPtr body) {
  return Formula::Quant(Quantifier::kAll, std::move(var),
                        RangeExpr(std::move(relation)), std::move(body));
}

FormulaPtr SomeIn(std::string var, std::string relation,
                  FormulaPtr restriction, FormulaPtr body) {
  return Formula::Quant(Quantifier::kSome, std::move(var),
                        RangeExpr(std::move(relation), std::move(restriction)),
                        std::move(body));
}

FormulaPtr AllIn(std::string var, std::string relation,
                 FormulaPtr restriction, FormulaPtr body) {
  return Formula::Quant(Quantifier::kAll, std::move(var),
                        RangeExpr(std::move(relation), std::move(restriction)),
                        std::move(body));
}

SelectionBuilder::SelectionBuilder(
    std::vector<std::pair<std::string, std::string>> projection) {
  for (auto& [var, comp] : projection) {
    OutputComponent oc;
    oc.var = std::move(var);
    oc.component = std::move(comp);
    sel_.projection.push_back(std::move(oc));
  }
}

SelectionBuilder& SelectionBuilder::Each(std::string var,
                                         std::string relation) {
  sel_.free_vars.emplace_back(std::move(var), RangeExpr(std::move(relation)));
  return *this;
}

SelectionBuilder& SelectionBuilder::EachIn(std::string var,
                                           std::string relation,
                                           FormulaPtr restriction) {
  sel_.free_vars.emplace_back(
      std::move(var), RangeExpr(std::move(relation), std::move(restriction)));
  return *this;
}

SelectionBuilder& SelectionBuilder::Where(FormulaPtr wff) {
  sel_.wff = std::move(wff);
  return *this;
}

SelectionExpr SelectionBuilder::Build() {
  if (sel_.wff == nullptr) sel_.wff = Formula::True();
  return std::move(sel_);
}

SelectionBuilder Select(
    std::vector<std::pair<std::string, std::string>> projection) {
  return SelectionBuilder(std::move(projection));
}

}  // namespace dsl
}  // namespace pascalr
