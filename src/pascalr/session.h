// Session: executes scripts of the PASCAL/R query language against a
// Database — type and relation declarations, `:+` inserts, `:-` deletes,
// `:=` selection assignments, PRINT, EXPLAIN, ANALYZE, SET, STATS,
// INDEX, and the prepared-query statements PREPARE / EXECUTE.
//
// The C++ query surface is the prepared-statement lifecycle
// (pascalr/prepared.h): Prepare once, Execute (or OpenCursor) many times
// with changing $parameter values; the compiled plan is cached and
// invalidated by catalog changes. Query() remains as a one-shot
// convenience wrapper over Prepare + Execute + drain.

#ifndef PASCALR_PASCALR_SESSION_H_
#define PASCALR_PASCALR_SESSION_H_

#include <map>
#include <ostream>
#include <string>

#include "base/status.h"
#include "catalog/database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/planner.h"
#include "parser/parser.h"
#include "pascalr/prepared.h"

namespace pascalr {

class Session {
 public:
  /// `out` receives PRINT/EXPLAIN output; pass nullptr to discard.
  explicit Session(Database* db, std::ostream* out = nullptr)
      : db_(db),
        out_(out),
        session_id_(db == nullptr ? 0 : db->session_registry().Register()) {}
  ~Session() {
    if (db_ != nullptr && session_id_ != 0) {
      db_->session_registry().Unregister(session_id_);
    }
  }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  PlannerOptions& options() { return options_; }
  Database* db() const { return db_; }

  /// This session's id in the database's SessionRegistry (the sys$sessions
  /// row key); ids start at 1 and are never reused.
  uint64_t session_id() const { return session_id_; }

  /// Parses and executes a whole script.
  Status ExecuteScript(std::string_view source);

  /// Executes one statement. Mutating statements (declarations, :+ / :-,
  /// :=, ANALYZE, STATS, INDEX) run under the database's write-statement
  /// guard — serialised against other writers, published atomically at
  /// commit; everything else runs under a read snapshot (no-ops while
  /// concurrent serving is off).
  Status ExecuteStatement(const Statement& stmt);

  /// The db_version the most recent write statement committed as (0 before
  /// any, and always 0 while concurrent serving is off). The concurrency
  /// stress test logs each writer's statements keyed on this.
  uint64_t last_commit_version() const { return last_commit_version_; }

  /// Parses and binds `selection_source` once, returning a reusable
  /// prepared query. `$name` parameter markers are typed by the binder;
  /// values are supplied per Execute. The handle must not outlive this
  /// session.
  Result<PreparedQuery> Prepare(std::string_view selection_source);

  /// Prepare for an already-built AST (the DSL / generator path).
  Result<PreparedQuery> PrepareSelection(SelectionExpr selection);

  /// One-shot convenience: Prepare + Execute (no parameters) + drain.
  Result<QueryRun> Query(std::string_view selection_source);

  /// Parses and binds a selection without running it.
  Result<BoundQuery> Bind(std::string_view selection_source);

  /// Returns the EXPLAIN text for a selection.
  Result<std::string> Explain(std::string_view selection_source);

  /// EXPLAIN ANALYZE: plans AND executes the selection, returning the
  /// plan rendering plus the operator tree annotated with actual rows,
  /// per-operator self-time, and estimated-vs-actual q-error. The
  /// instrumented run feeds total_stats() and the metrics registry like
  /// any other query; its result tuples are discarded (tests prove they
  /// are identical to an uninstrumented run's).
  Result<std::string> ExplainAnalyze(std::string_view selection_source);
  /// EXPLAIN ANALYZE for an already-parsed selection (the statement path).
  Result<std::string> ExplainAnalyzeSelection(SelectionExpr selection);

  /// The prepared query a `PREPARE name AS ...;` statement registered, or
  /// nullptr. (EXECUTE statements look names up here.)
  PreparedQuery* FindPrepared(const std::string& name);

  /// Cumulative statistics across all queries run by this session.
  const ExecStats& total_stats() const { return total_stats_; }

  /// Session metrics (query latency, plan-cache hits/misses, lazy-build
  /// events); dumped by the `METRICS;` statement and the shell's
  /// `.metrics`.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Query tracing (`SET TRACE ON;`). While on, every statement / query
  /// entry point installs the session tracer for its scope and the engine
  /// records a QueryTrace span tree per query; while off (the default)
  /// no tracer is installed anywhere and execution is bit-identical to an
  /// untraced build. Traces accumulate until ClearTraces (the shell's
  /// `.trace <file>` exports and clears).
  void set_tracing(bool on) { tracing_ = on; }
  bool tracing() const { return tracing_; }
  const std::vector<QueryTrace>& traces() const { return tracer_.traces(); }
  void ClearTraces() { tracer_.Clear(); }

 private:
  friend class PreparedQuery;

  /// The tracer to install for the current statement: the session tracer
  /// while tracing is on, nullptr (a no-op install) while off.
  Tracer* active_tracer() { return tracing_ ? &tracer_ : nullptr; }

  /// Statement dispatch body; ExecuteStatement wraps it in the write
  /// guard / read snapshot.
  Status ExecuteStatementImpl(const Statement& stmt);

  Result<Type> ResolveType(const RawType& raw, const std::string& owner);
  Result<Value> ResolveLiteral(const RawLiteral& raw, const Type& type);
  Status RunAssign(const AssignStmt& stmt);
  Status RunPrepare(const PrepareStmt& stmt);
  Status RunExecute(const ExecuteStmt& stmt);
  /// `STATS rel ...;` — installs serialised catalog statistics
  /// (Database::SeedStats) without a relation scan.
  Status RunStatsSeed(const StatsStmt& stmt);
  /// `SET name value;` — planner option assignment: OPTLEVEL 0-4 | AUTO,
  /// DIVISION HASH | SORT, PERMINDEXES ON | OFF,
  /// JOINORDER DP | BUSHY | GREEDY, PIPELINE ON | OFF,
  /// COLLECTION EAGER | LAZY — plus the session-level TRACE ON | OFF
  /// (deliberately NOT a PlannerOptions member: tracing must not perturb
  /// the plan-cache key or any planning decision).
  Status ApplyOption(const std::string& name, const std::string& value);
  void Emit(const std::string& text);

  /// The statement text to scan for sys$ references before the statement
  /// captures its snapshot (empty when the statement kind cannot read a
  /// relation by name).
  std::string StatementSourceForRefresh(const Statement& stmt);

  /// Folds one completed query run into the database-wide observability
  /// surfaces: the statement-statistics store, the session registry, the
  /// server metrics, and — when armed and over threshold — the slow-query
  /// log. Called once per statement, after the run's cursor has closed.
  void FoldStatementStats(const std::string& fingerprint, uint64_t latency_us,
                          uint64_t rows, const ExecStats& stats,
                          bool plan_cache_hit, double max_qerror,
                          const std::string& plan_summary);

  Database* db_;
  std::ostream* out_;
  PlannerOptions options_;
  ExecStats total_stats_;
  std::map<std::string, PreparedQuery> named_prepared_;
  int anon_enum_counter_ = 0;
  uint64_t last_commit_version_ = 0;
  uint64_t session_id_ = 0;

  bool tracing_ = false;
  Tracer tracer_;
  MetricsRegistry metrics_;
};

}  // namespace pascalr

#endif  // PASCALR_PASCALR_SESSION_H_
