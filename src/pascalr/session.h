// Session: executes scripts of the PASCAL/R query language against a
// Database — type and relation declarations, `:+` inserts, `:-` deletes,
// `:=` selection assignments, PRINT and EXPLAIN.

#ifndef PASCALR_PASCALR_SESSION_H_
#define PASCALR_PASCALR_SESSION_H_

#include <ostream>
#include <string>

#include "base/status.h"
#include "catalog/database.h"
#include "opt/planner.h"
#include "parser/parser.h"

namespace pascalr {

class Session {
 public:
  /// `out` receives PRINT/EXPLAIN output; pass nullptr to discard.
  explicit Session(Database* db, std::ostream* out = nullptr)
      : db_(db), out_(out) {}

  PlannerOptions& options() { return options_; }

  /// Parses and executes a whole script.
  Status ExecuteScript(std::string_view source);

  Status ExecuteStatement(const Statement& stmt);

  /// Parses, binds, and runs a single selection expression.
  Result<QueryRun> Query(std::string_view selection_source);

  /// Parses and binds a selection without running it.
  Result<BoundQuery> Bind(std::string_view selection_source);

  /// Returns the EXPLAIN text for a selection.
  Result<std::string> Explain(std::string_view selection_source);

  /// Cumulative statistics across all queries run by this session.
  const ExecStats& total_stats() const { return total_stats_; }

 private:
  Result<Type> ResolveType(const RawType& raw, const std::string& owner);
  Result<Value> ResolveLiteral(const RawLiteral& raw, const Type& type);
  Status RunAssign(const AssignStmt& stmt);
  /// `STATS rel ...;` — installs serialised catalog statistics
  /// (Database::SeedStats) without a relation scan.
  Status RunStatsSeed(const StatsStmt& stmt);
  /// `SET name value;` — planner option assignment: OPTLEVEL 0-4 | AUTO,
  /// DIVISION HASH | SORT, PERMINDEXES ON | OFF,
  /// JOINORDER DP | BUSHY | GREEDY.
  Status ApplyOption(const std::string& name, const std::string& value);
  void Emit(const std::string& text);

  Database* db_;
  std::ostream* out_;
  PlannerOptions options_;
  ExecStats total_stats_;
  int anon_enum_counter_ = 0;
};

}  // namespace pascalr

#endif  // PASCALR_PASCALR_SESSION_H_
