#include "pascalr/prepared.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "base/str_util.h"
#include "concurrency/plan_cache.h"
#include "concurrency/snapshot.h"
#include "obs/span_names.h"
#include "obs/system_relations.h"
#include "obs/trace.h"
#include "opt/explain.h"
#include "pascalr/session.h"
#include "semantics/binder.h"

namespace pascalr {

namespace {

const Schema kEmptySchema;

/// One line for the slow-query log: what kind of plan ran this.
std::string PlanSummary(const QueryPlan& plan, bool cache_hit) {
  return StrFormat("level=%s pipeline=%s cache=%s",
                   std::string(OptLevelToString(plan.level)).c_str(),
                   plan.pipeline ? "on" : "off", cache_hit ? "hit" : "miss");
}

}  // namespace

void PreparedQuery::State::RecordBoundRelations() {
  bound_relations.clear();
  for (const auto& [var, binding] : template_query.vars) {
    (void)var;
    bool seen = false;
    for (const auto& [name, id] : bound_relations) {
      (void)id;
      if (name == binding.relation_name) {
        seen = true;
        break;
      }
    }
    if (!seen && binding.relation != nullptr) {
      bound_relations.emplace_back(binding.relation_name,
                                   binding.relation->id());
    }
  }
}

Status PreparedQuery::State::Rebind(const Database* db) {
  Binder binder(db);
  PASCALR_ASSIGN_OR_RETURN(BoundQuery rebound,
                           binder.Bind(raw_selection.Clone()));
  template_query = std::move(rebound);
  param_types = template_query.params;
  RecordBoundRelations();
  planned.reset();
  last_bindings.clear();
  template_probes.clear();
  plan_probes.clear();
  ++stats.rebinds;
  return Status::OK();
}

Status PreparedQuery::EnsurePlan(const ParamBindings& params,
                                 bool* cache_hit) {
  *cache_hit = false;
  if (session_ == nullptr || state_ == nullptr) {
    return Status::InvalidArgument("prepared query is empty");
  }
  State& st = *state_;
  Database& db = *session_->db_;
  PASCALR_ASSIGN_OR_RETURN(ParamBindings bound,
                           CheckParamBindings(st.param_types, params));

  // 1. Template validity: every referenced relation must still be the
  // object the binder resolved. A re-created relation gets a fresh id;
  // rebind against it (one bind, no re-parse). A missing one is an error.
  bool template_ok = true;
  for (const auto& [name, id] : st.bound_relations) {
    Relation* rel = db.FindRelation(name);
    if (rel == nullptr) {
      return Status::NotFound("prepared query references dropped relation '" +
                              name + "'");
    }
    if (rel->id() != id) {
      template_ok = false;
      break;
    }
  }
  if (!template_ok) PASCALR_RETURN_IF_ERROR(st.Rebind(&db));

  // 2. Plan-cache validity: same catalog-stats epoch, same relation
  // mod_counts, same planner options.
  bool valid = st.planned != nullptr &&
               db.stats_epoch() == st.stamp_epoch &&
               session_->options_ == st.stamp_options;
  if (valid) {
    for (const auto& [name, mod] : st.stamp_mods) {
      Relation* rel = db.FindRelation(name);
      if (rel == nullptr || rel->mod_count() != mod) {
        valid = false;
        break;
      }
    }
  }
  if (valid) {
    // Re-patch the parameter slots of the cached plan in place — this is
    // the whole fast path: no parse, no normalization, no plan search.
    if (bound != st.last_bindings) {
      PatchPlanParams(&st.planned->plan, bound);
      st.last_bindings = bound;
    }
    // Safety: adaptation decisions (Lemma 1 folding, rule-2 extension
    // abandonment) were taken under the plan-time values. If a parameter
    // inside an extended range now flips that range's emptiness, the
    // cached plan could return wrong tuples — replan instead.
    for (const auto& [range, was_empty] : st.template_probes) {
      RangeExpr probe = range.Clone();
      if (probe.IsExtended()) {
        PASCALR_RETURN_IF_ERROR(
            BindFormulaParams(probe.restriction.get(), bound));
      }
      if (RangeIsEmpty(db, probe) != was_empty) {
        valid = false;
        break;
      }
    }
    if (valid) {
      for (const auto& [idx, was_empty] : st.plan_probes) {
        if (idx >= st.planned->plan.sf.prefix.size() ||
            RangeIsEmpty(db, st.planned->plan.sf.prefix[idx].range) !=
                was_empty) {
          valid = false;
          break;
        }
      }
    }
  }
  if (valid) {
    *cache_hit = true;
    ++st.stats.plan_cache_hits;
    session_->metrics_.counter("plan_cache.hits").Inc();
    return Status::OK();
  }

  // 2b. Shared plan cache (concurrent serving only): another session may
  // already have compiled this exact selection under these options. The
  // cache stores, the adopter judges: every stamp and probe verdict is
  // re-validated here under OUR snapshot and OUR bindings, and the plan
  // is cloned before parameter patching (sessions never share a mutable
  // plan object).
  const bool shared_cache_on = db.serving();
  std::string shared_key;
  if (shared_cache_on) {
    shared_key = st.source + "|" + EncodePlannerOptions(session_->options_);
    SharedPlanEntry entry;
    bool adoptable = db.shared_plans().Lookup(shared_key, &entry) &&
                     entry.planned != nullptr &&
                     entry.stats_epoch == db.stats_epoch();
    if (adoptable) {
      for (const auto& [name, mod] : entry.rel_mods) {
        Relation* rel = db.FindRelation(name);
        if (rel == nullptr || rel->mod_count() != mod) {
          adoptable = false;
          break;
        }
      }
    }
    std::vector<std::pair<RangeExpr, bool>> fresh_probes;
    if (adoptable) {
      // Lemma-1 safety under our values: every parameter-carrying template
      // range must be empty-vs-nonempty exactly as it was at plan time.
      std::vector<RangeExpr> param_ranges;
      CollectParamRanges(st.template_query.selection, &param_ranges);
      adoptable = param_ranges.size() == entry.template_range_empty.size();
      for (size_t i = 0; adoptable && i < param_ranges.size(); ++i) {
        RangeExpr probe = param_ranges[i].Clone();
        PASCALR_RETURN_IF_ERROR(
            BindFormulaParams(probe.restriction.get(), bound));
        const bool is_empty = RangeIsEmpty(db, probe);
        if (is_empty != entry.template_range_empty[i]) {
          adoptable = false;
        } else {
          fresh_probes.emplace_back(std::move(param_ranges[i]), is_empty);
        }
      }
    }
    if (adoptable) {
      auto adopted =
          std::make_shared<PlannedQuery>(ClonePlannedQuery(*entry.planned));
      PatchPlanParams(&adopted->plan, bound);
      // Rule-2 safety: strategy-3 extended prefix ranges must keep their
      // plan-time emptiness verdict under our bindings.
      for (const auto& [idx, was_empty] : entry.plan_probes) {
        if (idx >= adopted->plan.sf.prefix.size() ||
            RangeIsEmpty(db, adopted->plan.sf.prefix[idx].range) !=
                was_empty) {
          adoptable = false;
          break;
        }
      }
      if (adoptable) {
        st.planned = std::move(adopted);
        st.last_bindings = std::move(bound);
        st.stamp_epoch = entry.stats_epoch;
        st.stamp_options = session_->options_;
        st.stamp_mods = std::move(entry.rel_mods);
        st.template_probes = std::move(fresh_probes);
        st.plan_probes = std::move(entry.plan_probes);
        db.shared_plans().RecordHit();
        *cache_hit = true;
        ++st.stats.plan_cache_hits;
        session_->metrics_.counter("plan_cache.shared_hits").Inc();
        return Status::OK();
      }
    }
    db.shared_plans().RecordMiss();
  }
  session_->metrics_.counter("plan_cache.misses").Inc();

  // 3. (Re)plan under the current values: substitute them into a clone of
  // the template and run the full pipeline — under OptLevel::kAuto the
  // plan search estimates selectivity from these very values.
  BoundQuery query = CloneBoundQuery(st.template_query);
  PASCALR_RETURN_IF_ERROR(BindSelectionParams(&query.selection, bound));
  PASCALR_ASSIGN_OR_RETURN(
      PlannedQuery planned,
      PlanQuery(db, std::move(query), session_->options_));
  st.planned = std::make_shared<PlannedQuery>(std::move(planned));
  ++st.stats.plan_compiles;
  st.last_bindings = std::move(bound);

  st.stamp_epoch = db.stats_epoch();
  st.stamp_options = session_->options_;
  st.stamp_mods.clear();
  for (const auto& [name, id] : st.bound_relations) {
    (void)id;
    Relation* rel = db.FindRelation(name);
    st.stamp_mods.emplace_back(name, rel == nullptr ? 0 : rel->mod_count());
  }

  st.template_probes.clear();
  std::vector<RangeExpr> param_ranges;
  CollectParamRanges(st.template_query.selection, &param_ranges);
  for (RangeExpr& range : param_ranges) {
    RangeExpr probe = range.Clone();
    PASCALR_RETURN_IF_ERROR(
        BindFormulaParams(probe.restriction.get(), st.last_bindings));
    st.template_probes.emplace_back(std::move(range), RangeIsEmpty(db, probe));
  }
  st.plan_probes.clear();
  const std::vector<QuantifiedVar>& prefix = st.planned->plan.sf.prefix;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (RangeHasParams(prefix[i].range)) {
      st.plan_probes.emplace_back(i, RangeIsEmpty(db, prefix[i].range));
    }
  }

  // Publish the fresh plan to the shared cache as an independent clone —
  // our own copy keeps being parameter-patched in place, the shared one
  // must stay frozen for other sessions to clone from.
  if (shared_cache_on) {
    SharedPlanEntry entry;
    entry.planned =
        std::make_shared<const PlannedQuery>(ClonePlannedQuery(*st.planned));
    entry.stats_epoch = st.stamp_epoch;
    entry.rel_mods = st.stamp_mods;
    entry.template_range_empty.reserve(st.template_probes.size());
    for (const auto& [range, was_empty] : st.template_probes) {
      (void)range;
      entry.template_range_empty.push_back(was_empty);
    }
    entry.plan_probes = st.plan_probes;
    db.shared_plans().Insert(shared_key, std::move(entry));
  }
  return Status::OK();
}

Result<PreparedExecution> PreparedQuery::Execute(const ParamBindings& params) {
  if (session_ == nullptr || state_ == nullptr) {
    return Status::InvalidArgument("prepared query is empty");
  }
  // Direct C++ entry point: install the session tracer (a no-op re-install
  // under the statement path) and open an "execute" trace — nested as a
  // span when Session::Query already opened the query's trace.
  PASCALR_RETURN_IF_ERROR(
      RefreshSystemViewsForSource(session_->db_, state_->source));
  ScopedSystemViewPin pin;
  ScopedTracerInstall install_tracer(session_->active_tracer());
  // One consistent read point for plan validation AND execution (reuses
  // the caller's when one is already installed; null while serving is
  // off). Captured before any catalog or relation read below.
  ScopedSnapshotInstall install_snapshot(session_->db_->SnapshotForRead());
  QueryTraceGuard query_guard(spans::kExecute, "");
  const auto t0 = std::chrono::steady_clock::now();
  bool cache_hit = false;
  PASCALR_RETURN_IF_ERROR(EnsurePlan(params, &cache_hit));
  ++state_->stats.executes;
  std::shared_ptr<const QueryPlan> plan(state_->planned,
                                        &state_->planned->plan);
  PASCALR_ASSIGN_OR_RETURN(
      Cursor cursor, Cursor::Open(std::move(plan), *session_->db_, nullptr));
  PreparedExecution out;
  out.plan_cache_hit = cache_hit;
  const Snapshot* snap = CurrentSnapshot();
  out.snapshot_version = snap == nullptr ? 0 : snap->db_version;
  Tuple tuple;
  while (true) {
    PASCALR_ASSIGN_OR_RETURN(bool more, cursor.Next(&tuple));
    if (!more) break;
    out.tuples.push_back(std::move(tuple));
  }
  out.stats = cursor.stats();
  if (!cache_hit) out.stats.replans = state_->planned->replans;
  out.collection = cursor.ReleaseCollection();
  cursor.Close();
  session_->total_stats_.Merge(out.stats);
  // Metrics feed: every executed query records its latency; the work
  // counters that vary with the collection policy ride along so METRICS
  // shows lazy-build savings without a trace.
  MetricsRegistry& metrics = session_->metrics_;
  metrics.counter("query.count").Inc();
  const uint64_t latency_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  metrics.histogram("query.latency_us").Record(latency_us);
  // Server-wide fold: this run's whole story — latency, rows, counters,
  // cache verdict — becomes one observation on the statement's
  // sys$statements row (and the slow log, when armed).
  session_->FoldStatementStats(state_->source, latency_us,
                               out.tuples.size(), out.stats, cache_hit,
                               /*max_qerror=*/0.0,
                               PlanSummary(state_->planned->plan, cache_hit));
  if (out.stats.replans > 0) {
    metrics.counter("query.replans").Inc(out.stats.replans);
  }
  if (out.stats.structures_built > 0) {
    metrics.counter("collection.structures_built")
        .Inc(out.stats.structures_built);
  }
  if (out.stats.structure_elements_built > 0) {
    metrics.counter("collection.elements_built")
        .Inc(out.stats.structure_elements_built);
  }
  return out;
}

Result<Cursor> PreparedQuery::OpenCursor(const ParamBindings& params) {
  if (session_ == nullptr || state_ == nullptr) {
    return Status::InvalidArgument("prepared query is empty");
  }
  PASCALR_RETURN_IF_ERROR(
      RefreshSystemViewsForSource(session_->db_, state_->source));
  ScopedSystemViewPin pin;
  ScopedTracerInstall install_tracer(session_->active_tracer());
  const auto t0 = std::chrono::steady_clock::now();
  // The cursor captures the ambient snapshot at Open and re-installs it
  // for every Next/Close, so a half-drained cursor keeps its read point
  // after this guard unwinds.
  ScopedSnapshotInstall install_snapshot(session_->db_->SnapshotForRead());
  // No QueryTraceGuard here: the cursor outlives this call, so its drain
  // is recorded as one complete span at Cursor::Close instead.
  bool cache_hit = false;
  PASCALR_RETURN_IF_ERROR(EnsurePlan(params, &cache_hit));
  ++state_->stats.executes;
  session_->metrics_.counter("query.count").Inc();
  std::shared_ptr<const QueryPlan> plan(state_->planned,
                                        &state_->planned->plan);
  PASCALR_ASSIGN_OR_RETURN(
      Cursor cursor,
      Cursor::Open(std::move(plan), *session_->db_,
                   &session_->total_stats_));
  // The fold happens when the cursor closes — also for a half-drained
  // cursor the client abandons — so open-cursor latency covers plan +
  // drain, and rows are whatever was actually emitted. The hook must not
  // outlive the session (the cursor already must not, see class docs).
  Session* session = session_;
  std::shared_ptr<State> state = state_;
  std::string summary = PlanSummary(state_->planned->plan, cache_hit);
  cursor.set_close_hook(
      [session, state = std::move(state), t0, cache_hit,
       summary = std::move(summary)](const ExecStats& stats, uint64_t rows) {
        const uint64_t latency_us = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        session->FoldStatementStats(state->source, latency_us, rows, stats,
                                    cache_hit, /*max_qerror=*/0.0, summary);
      });
  return cursor;
}

Result<std::string> PreparedQuery::Explain(const ParamBindings& params) {
  if (session_ == nullptr || state_ == nullptr) {
    return Status::InvalidArgument("prepared query is empty");
  }
  ScopedSnapshotInstall install_snapshot(session_->db_->SnapshotForRead());
  // With a plan already cached, explain it as-is — no bindings needed
  // (and none validated); otherwise plan with the given params first.
  if (state_->planned == nullptr) {
    bool cache_hit = false;
    PASCALR_RETURN_IF_ERROR(EnsurePlan(params, &cache_hit));
  }
  return ExplainPlan(*state_->planned);
}

void PreparedQuery::InvalidatePlan() {
  if (state_ == nullptr) return;
  state_->planned.reset();
  state_->last_bindings.clear();
  state_->template_probes.clear();
  state_->plan_probes.clear();
}

const Schema& PreparedQuery::output_schema() const {
  return state_ == nullptr ? kEmptySchema : state_->template_query.output_schema;
}

std::vector<std::string> PreparedQuery::param_names() const {
  std::vector<std::string> out;
  if (state_ != nullptr) {
    for (const auto& [name, type] : state_->param_types) {
      (void)type;
      out.push_back(name);
    }
  }
  return out;
}

const std::map<std::string, Type>& PreparedQuery::param_types() const {
  static const std::map<std::string, Type> kEmpty;
  return state_ == nullptr ? kEmpty : state_->param_types;
}

const PreparedStats& PreparedQuery::stats() const {
  static const PreparedStats kEmpty;
  return state_ == nullptr ? kEmpty : state_->stats;
}

const PlannedQuery* PreparedQuery::planned() const {
  return state_ == nullptr ? nullptr : state_->planned.get();
}

PlannedQuery PreparedQuery::TakePlanned() {
  if (state_ == nullptr || state_->planned == nullptr) return PlannedQuery();
  PlannedQuery out = std::move(*state_->planned);
  state_->planned.reset();
  return out;
}

}  // namespace pascalr
