// A fluent C++ interface mirroring the paper's selection syntax, for
// programs that embed pascalr directly instead of going through the query
// language:
//
//   using namespace pascalr::dsl;
//   SelectionExpr sel =
//       Select({{"e", "ename"}})
//           .Each("e", "employees")
//           .Where(Cmp(C("e", "estatus"), CompareOp::kEq, Label("professor")));
//
// Formula composition supports operator sugar on FormulaPtr:
//   f && g, f || g, !f.

#ifndef PASCALR_PASCALR_DSL_H_
#define PASCALR_PASCALR_DSL_H_

#include <string>
#include <vector>

#include "calculus/ast.h"

namespace pascalr {
namespace dsl {

/// Component operand `var.component`.
Operand C(std::string var, std::string component);
/// Integer / string / boolean literals.
Operand Lit(int64_t v);
Operand Lit(std::string v);
Operand Lit(bool v);
/// Enumeration label, typed by the binder against the opposite operand.
Operand Label(std::string label);

FormulaPtr Cmp(Operand lhs, CompareOp op, Operand rhs);
FormulaPtr Eq(Operand lhs, Operand rhs);
FormulaPtr Ne(Operand lhs, Operand rhs);
FormulaPtr Lt(Operand lhs, Operand rhs);
FormulaPtr Le(Operand lhs, Operand rhs);
FormulaPtr Gt(Operand lhs, Operand rhs);
FormulaPtr Ge(Operand lhs, Operand rhs);

FormulaPtr Some(std::string var, std::string relation, FormulaPtr body);
FormulaPtr All(std::string var, std::string relation, FormulaPtr body);
/// Quantifier over an extended range `[EACH var IN relation: restriction]`.
FormulaPtr SomeIn(std::string var, std::string relation,
                  FormulaPtr restriction, FormulaPtr body);
FormulaPtr AllIn(std::string var, std::string relation,
                 FormulaPtr restriction, FormulaPtr body);

/// Builder for a full selection.
class SelectionBuilder {
 public:
  explicit SelectionBuilder(
      std::vector<std::pair<std::string, std::string>> projection);

  SelectionBuilder& Each(std::string var, std::string relation);
  SelectionBuilder& EachIn(std::string var, std::string relation,
                           FormulaPtr restriction);
  SelectionBuilder& Where(FormulaPtr wff);

  /// Consumes the builder's state; callable on a chained temporary.
  SelectionExpr Build();

 private:
  SelectionExpr sel_;
};

SelectionBuilder Select(
    std::vector<std::pair<std::string, std::string>> projection);

}  // namespace dsl

/// Operator sugar at namespace scope so argument-dependent lookup finds it
/// for FormulaPtr (std::unique_ptr<Formula>). Rvalue-reference parameters
/// keep these overloads away from ordinary unique_ptr boolean tests; an
/// `operator!` overload is deliberately NOT provided because the standard
/// library's `ptr == nullptr` rewrites would pick it up via ADL — use
/// dsl::NotF instead.
FormulaPtr operator&&(FormulaPtr&& a, FormulaPtr&& b);
FormulaPtr operator||(FormulaPtr&& a, FormulaPtr&& b);

namespace dsl {
/// Negation (no operator! — see above).
FormulaPtr NotF(FormulaPtr a);
}  // namespace dsl

}  // namespace pascalr

#endif  // PASCALR_PASCALR_DSL_H_
