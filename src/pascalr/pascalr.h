// Umbrella header: the public API of the pascalr library.
//
//   #include "pascalr/pascalr.h"
//
//   pascalr::Database db;
//   pascalr::Session session(&db, &std::cout);
//   session.ExecuteScript(ddl_and_inserts);
//   auto run = session.Query("[<e.ename> OF EACH e IN employees: ...]");

#ifndef PASCALR_PASCALR_PASCALR_H_
#define PASCALR_PASCALR_PASCALR_H_

#include "base/counters.h"          // IWYU pragma: export
#include "base/status.h"            // IWYU pragma: export
#include "calculus/ast.h"           // IWYU pragma: export
#include "calculus/printer.h"       // IWYU pragma: export
#include "catalog/database.h"       // IWYU pragma: export
#include "catalog/relation_stats.h" // IWYU pragma: export
#include "cost/cost_model.h"        // IWYU pragma: export
#include "cost/plan_search.h"       // IWYU pragma: export
#include "cost/selectivity.h"       // IWYU pragma: export
#include "exec/cursor.h"            // IWYU pragma: export
#include "exec/naive.h"             // IWYU pragma: export
#include "exec/stats.h"             // IWYU pragma: export
#include "opt/params.h"             // IWYU pragma: export
#include "normalize/standard_form.h"  // IWYU pragma: export
#include "opt/explain.h"            // IWYU pragma: export
#include "opt/planner.h"            // IWYU pragma: export
#include "parser/parser.h"          // IWYU pragma: export
#include "pascalr/dsl.h"            // IWYU pragma: export
#include "pascalr/prepared.h"       // IWYU pragma: export
#include "pascalr/sample_db.h"      // IWYU pragma: export
#include "pascalr/session.h"        // IWYU pragma: export
#include "semantics/binder.h"       // IWYU pragma: export
#include "storage/relation.h"       // IWYU pragma: export
#include "value/schema.h"           // IWYU pragma: export

#endif  // PASCALR_PASCALR_PASCALR_H_
