// Database export: renders a Database back into a PASCAL/R script (TYPE
// and VAR declarations plus `:+` inserts) that a Session can replay —
// a plain-text dump/restore facility.

#ifndef PASCALR_PASCALR_EXPORT_H_
#define PASCALR_PASCALR_EXPORT_H_

#include <string>

#include "base/status.h"
#include "catalog/database.h"

namespace pascalr {

/// Renders the whole database. Enum component types must be registered in
/// the catalog (anonymous enum types are emitted under their generated
/// names). The script replays into an empty Database via
/// Session::ExecuteScript.
Result<std::string> ExportScript(const Database& db);

/// Renders a single relation's declaration and contents (no TYPE
/// declarations; useful when appending to an existing script).
Result<std::string> ExportRelation(const Database& db,
                                   const std::string& relation);

}  // namespace pascalr

#endif  // PASCALR_PASCALR_EXPORT_H_
