#include "calculus/ast.h"

#include <algorithm>

#include "base/logging.h"
#include "base/str_util.h"

namespace pascalr {

std::string_view QuantifierToString(Quantifier q) {
  switch (q) {
    case Quantifier::kFree:
      return "EACH";
    case Quantifier::kSome:
      return "SOME";
    case Quantifier::kAll:
      return "ALL";
  }
  return "?";
}

bool Operand::operator==(const Operand& other) const {
  if (kind != other.kind) return false;
  if (kind == Kind::kComponent) {
    return var == other.var && component == other.component;
  }
  // A parameter slot is never equal to a plain literal (or to a different
  // parameter), even when the currently bound values coincide: later
  // executions may re-patch it, so term dedup must keep them apart.
  if (param_name != other.param_name) return false;
  if (kind == Kind::kParam) return true;
  if (enum_label != other.enum_label) return false;
  return literal.SameKind(other.literal) && literal == other.literal;
}

std::string Operand::ToString() const {
  if (kind == Kind::kComponent) return var + "." + component;
  // Parameter slots keep their marker spelling, before and after value
  // substitution — structure-interning keys and EXPLAIN output both want
  // the slot identity, not the currently patched value.
  if (!param_name.empty()) return "$" + param_name;
  if (type.kind() == TypeKind::kEnum) return literal.ToStringTyped(type);
  if (!enum_label.empty()) return enum_label;  // unresolved label
  return literal.ToString();
}

std::vector<std::string> JoinTerm::Variables() const {
  std::vector<std::string> out;
  if (lhs.is_component()) out.push_back(lhs.var);
  if (rhs.is_component() && (out.empty() || out[0] != rhs.var)) {
    out.push_back(rhs.var);
  }
  return out;
}

bool JoinTerm::References(const std::string& var) const {
  return (lhs.is_component() && lhs.var == var) ||
         (rhs.is_component() && rhs.var == var);
}

JoinTerm JoinTerm::Negated() const {
  JoinTerm t = *this;
  t.op = NegateOp(op);
  return t;
}

JoinTerm JoinTerm::Mirrored() const {
  JoinTerm t;
  t.lhs = rhs;
  t.rhs = lhs;
  t.op = MirrorOp(op);
  return t;
}

bool JoinTerm::operator==(const JoinTerm& other) const {
  return lhs == other.lhs && op == other.op && rhs == other.rhs;
}

std::string JoinTerm::ToString() const {
  return "(" + lhs.ToString() + " " + std::string(CompareOpToString(op)) +
         " " + rhs.ToString() + ")";
}

RangeExpr RangeExpr::Clone() const {
  RangeExpr out(relation);
  if (restriction != nullptr) out.restriction = restriction->Clone();
  return out;
}

std::string RangeExpr::ToString(const std::string& var) const {
  if (!IsExtended()) return relation;
  return "[EACH " + var + " IN " + relation + ": " + restriction->ToString() +
         "]";
}

FormulaPtr Formula::True() { return Constant(true); }
FormulaPtr Formula::False() { return Constant(false); }

FormulaPtr Formula::Constant(bool value) {
  auto f = FormulaPtr(new Formula());
  f->kind_ = FormulaKind::kConst;
  f->const_value_ = value;
  return f;
}

FormulaPtr Formula::Compare(JoinTerm term) {
  auto f = FormulaPtr(new Formula());
  f->kind_ = FormulaKind::kCompare;
  f->term_ = std::move(term);
  return f;
}

FormulaPtr Formula::Compare(Operand lhs, CompareOp op, Operand rhs) {
  JoinTerm t;
  t.lhs = std::move(lhs);
  t.op = op;
  t.rhs = std::move(rhs);
  return Compare(std::move(t));
}

FormulaPtr Formula::Not(FormulaPtr f) {
  auto out = FormulaPtr(new Formula());
  out->kind_ = FormulaKind::kNot;
  out->children_.push_back(std::move(f));
  return out;
}

FormulaPtr Formula::And(std::vector<FormulaPtr> children) {
  std::vector<FormulaPtr> flat;
  for (FormulaPtr& c : children) {
    PASCALR_DCHECK(c != nullptr);
    if (c->kind_ == FormulaKind::kAnd) {
      for (FormulaPtr& g : c->children_) flat.push_back(std::move(g));
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return True();
  if (flat.size() == 1) return std::move(flat[0]);
  auto f = FormulaPtr(new Formula());
  f->kind_ = FormulaKind::kAnd;
  f->children_ = std::move(flat);
  return f;
}

FormulaPtr Formula::Or(std::vector<FormulaPtr> children) {
  std::vector<FormulaPtr> flat;
  for (FormulaPtr& c : children) {
    PASCALR_DCHECK(c != nullptr);
    if (c->kind_ == FormulaKind::kOr) {
      for (FormulaPtr& g : c->children_) flat.push_back(std::move(g));
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return False();
  if (flat.size() == 1) return std::move(flat[0]);
  auto f = FormulaPtr(new Formula());
  f->kind_ = FormulaKind::kOr;
  f->children_ = std::move(flat);
  return f;
}

FormulaPtr Formula::And(FormulaPtr a, FormulaPtr b) {
  std::vector<FormulaPtr> v;
  v.push_back(std::move(a));
  v.push_back(std::move(b));
  return And(std::move(v));
}

FormulaPtr Formula::Or(FormulaPtr a, FormulaPtr b) {
  std::vector<FormulaPtr> v;
  v.push_back(std::move(a));
  v.push_back(std::move(b));
  return Or(std::move(v));
}

FormulaPtr Formula::Quant(Quantifier q, std::string var, RangeExpr range,
                          FormulaPtr body) {
  PASCALR_DCHECK(q != Quantifier::kFree)
      << "free variables are declared in the selection header";
  auto f = FormulaPtr(new Formula());
  f->kind_ = FormulaKind::kQuant;
  f->quantifier_ = q;
  f->var_ = std::move(var);
  f->range_ = std::move(range);
  f->children_.push_back(std::move(body));
  return f;
}

FormulaPtr Formula::Clone() const {
  switch (kind_) {
    case FormulaKind::kConst:
      return Constant(const_value_);
    case FormulaKind::kCompare:
      return Compare(term_);
    case FormulaKind::kNot:
      return Not(children_[0]->Clone());
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<FormulaPtr> kids;
      kids.reserve(children_.size());
      for (const FormulaPtr& c : children_) kids.push_back(c->Clone());
      return kind_ == FormulaKind::kAnd ? And(std::move(kids))
                                        : Or(std::move(kids));
    }
    case FormulaKind::kQuant:
      return Quant(quantifier_, var_, range_.Clone(), children_[0]->Clone());
  }
  return nullptr;
}

bool Formula::Equals(const Formula& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case FormulaKind::kConst:
      return const_value_ == other.const_value_;
    case FormulaKind::kCompare:
      return term_ == other.term_;
    case FormulaKind::kNot:
      return children_[0]->Equals(*other.children_[0]);
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      if (children_.size() != other.children_.size()) return false;
      for (size_t i = 0; i < children_.size(); ++i) {
        if (!children_[i]->Equals(*other.children_[i])) return false;
      }
      return true;
    }
    case FormulaKind::kQuant: {
      if (quantifier_ != other.quantifier_ || var_ != other.var_ ||
          range_.relation != other.range_.relation) {
        return false;
      }
      bool lhs_ext = range_.IsExtended(), rhs_ext = other.range_.IsExtended();
      if (lhs_ext != rhs_ext) return false;
      if (lhs_ext && !range_.restriction->Equals(*other.range_.restriction)) {
        return false;
      }
      return children_[0]->Equals(*other.children_[0]);
    }
  }
  return false;
}

namespace {
void CollectVarsImpl(const Formula& f, std::vector<std::string>* out) {
  auto add = [out](const std::string& v) {
    if (std::find(out->begin(), out->end(), v) == out->end()) {
      out->push_back(v);
    }
  };
  switch (f.kind()) {
    case FormulaKind::kConst:
      return;
    case FormulaKind::kCompare:
      for (const std::string& v : f.term().Variables()) add(v);
      return;
    case FormulaKind::kNot:
      CollectVarsImpl(f.child(), out);
      return;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f.children()) CollectVarsImpl(*c, out);
      return;
    case FormulaKind::kQuant:
      if (f.range().IsExtended()) {
        CollectVarsImpl(*f.range().restriction, out);
      }
      CollectVarsImpl(f.child(), out);
      return;
  }
}

void CollectQuantsImpl(const Formula& f, std::vector<std::string>* out) {
  switch (f.kind()) {
    case FormulaKind::kConst:
    case FormulaKind::kCompare:
      return;
    case FormulaKind::kNot:
      CollectQuantsImpl(f.child(), out);
      return;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f.children()) CollectQuantsImpl(*c, out);
      return;
    case FormulaKind::kQuant:
      out->push_back(f.var());
      CollectQuantsImpl(f.child(), out);
      return;
  }
}
}  // namespace

std::vector<std::string> Formula::CollectTermVariables() const {
  std::vector<std::string> out;
  CollectVarsImpl(*this, &out);
  return out;
}

bool Formula::ReferencesVar(const std::string& var) const {
  switch (kind_) {
    case FormulaKind::kConst:
      return false;
    case FormulaKind::kCompare:
      return term_.References(var);
    case FormulaKind::kNot:
      return children_[0]->ReferencesVar(var);
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : children_) {
        if (c->ReferencesVar(var)) return true;
      }
      return false;
    case FormulaKind::kQuant:
      if (range_.IsExtended() && range_.restriction->ReferencesVar(var)) {
        return true;
      }
      return children_[0]->ReferencesVar(var);
  }
  return false;
}

std::vector<std::string> Formula::CollectQuantifiedVars() const {
  std::vector<std::string> out;
  CollectQuantsImpl(*this, &out);
  return out;
}

void RenameVariable(Formula* f, const std::string& from,
                    const std::string& to) {
  switch (f->kind()) {
    case FormulaKind::kConst:
      return;
    case FormulaKind::kCompare: {
      JoinTerm& t = f->term();
      if (t.lhs.is_component() && t.lhs.var == from) t.lhs.var = to;
      if (t.rhs.is_component() && t.rhs.var == from) t.rhs.var = to;
      return;
    }
    case FormulaKind::kNot:
      RenameVariable(f->mutable_child(), from, to);
      return;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f->children()) {
        RenameVariable(c.get(), from, to);
      }
      return;
    case FormulaKind::kQuant: {
      if (f->range().IsExtended()) {
        // The restriction's variable is the quantified variable itself; it
        // shadows `from` only if they collide.
        if (f->var() != from) {
          RenameVariable(f->range().restriction.get(), from, to);
        }
      }
      if (f->var() == from) return;  // shadowed in the body
      RenameVariable(f->mutable_child(), from, to);
      return;
    }
  }
}

SelectionExpr SelectionExpr::Clone() const {
  SelectionExpr out;
  out.projection = projection;
  for (const RangeDecl& d : free_vars) out.free_vars.push_back(d.Clone());
  out.wff = wff == nullptr ? nullptr : wff->Clone();
  return out;
}

}  // namespace pascalr
