#include "calculus/printer.h"

#include "base/str_util.h"

namespace pascalr {

namespace {

// Precedence: OR < AND < NOT/quant/atom. Parenthesise a child whose
// precedence is lower than the context requires.
int Precedence(const Formula& f) {
  switch (f.kind()) {
    case FormulaKind::kOr:
      return 1;
    case FormulaKind::kAnd:
      return 2;
    case FormulaKind::kQuant:
      return 3;
    case FormulaKind::kNot:
      return 4;
    case FormulaKind::kConst:
    case FormulaKind::kCompare:
      return 5;
  }
  return 5;
}

std::string Render(const Formula& f, int parent_prec) {
  std::string out;
  int prec = Precedence(f);
  switch (f.kind()) {
    case FormulaKind::kConst:
      out = f.const_value() ? "TRUE" : "FALSE";
      break;
    case FormulaKind::kCompare:
      out = f.term().ToString();
      break;
    case FormulaKind::kNot:
      out = "NOT " + Render(f.child(), prec);
      break;
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<std::string> parts;
      for (const FormulaPtr& c : f.children()) {
        parts.push_back(Render(*c, prec));
      }
      out = Join(parts, f.kind() == FormulaKind::kAnd ? " AND " : " OR ");
      break;
    }
    case FormulaKind::kQuant:
      out = std::string(QuantifierToString(f.quantifier())) + " " + f.var() +
            " IN " + f.range().ToString(f.var()) + " (" +
            Render(f.child(), 0) + ")";
      break;
  }
  if (prec < parent_prec) return "(" + out + ")";
  return out;
}

void RenderIndented(const Formula& f, int indent, std::string* out) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (f.kind()) {
    case FormulaKind::kConst:
    case FormulaKind::kCompare:
      *out += pad + Render(f, 0) + "\n";
      return;
    case FormulaKind::kNot:
      *out += pad + "NOT\n";
      RenderIndented(f.child(), indent + 1, out);
      return;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      *out += pad + (f.kind() == FormulaKind::kAnd ? "AND" : "OR") + "\n";
      for (const FormulaPtr& c : f.children()) {
        RenderIndented(*c, indent + 1, out);
      }
      return;
    case FormulaKind::kQuant:
      *out += pad + std::string(QuantifierToString(f.quantifier())) + " " +
              f.var() + " IN " + f.range().ToString(f.var()) + "\n";
      RenderIndented(f.child(), indent + 1, out);
      return;
  }
}

}  // namespace

std::string FormatFormula(const Formula& f) { return Render(f, 0); }

std::string FormatFormulaIndented(const Formula& f, int indent) {
  std::string out;
  RenderIndented(f, indent, &out);
  return out;
}

std::string FormatSelection(const SelectionExpr& sel) {
  std::vector<std::string> proj;
  for (const OutputComponent& c : sel.projection) proj.push_back(c.ToString());
  std::vector<std::string> ranges;
  for (const RangeDecl& d : sel.free_vars) {
    ranges.push_back("EACH " + d.var + " IN " + d.range.ToString(d.var));
  }
  std::string out = "[<" + Join(proj, ", ") + "> OF " + Join(ranges, ", ");
  if (sel.wff != nullptr) out += ": " + FormatFormula(*sel.wff);
  out += "]";
  return out;
}

std::string Formula::ToString() const { return FormatFormula(*this); }

std::string SelectionExpr::ToString() const { return FormatSelection(*this); }

}  // namespace pascalr
