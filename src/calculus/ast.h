// AST of PASCAL/R selection expressions (paper §2).
//
// A *selection* is
//     [ <v1.c1, ...> OF EACH v1 IN range1, ... : wff ]
// where the wff is a formula of an applied many-sorted first-order
// predicate calculus: atoms are *join terms* (comparisons between element
// components and literals), variables are range-coupled — free (`EACH`),
// existential (`SOME v IN range`), or universal (`ALL v IN range`) — and a
// *range* is either a database relation or an extended range expression
// `[EACH r IN rel: S(r)]` restricting it by a conjunction of monadic terms
// (paper §4.3).

#ifndef PASCALR_CALCULUS_AST_H_
#define PASCALR_CALCULUS_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "value/value.h"

namespace pascalr {

class Formula;
using FormulaPtr = std::unique_ptr<Formula>;

/// Quantification of a range-coupled variable. Free variables behave like
/// existential ones for range extension (paper §4.3) but deliver bindings
/// to the construction phase instead of being projected away.
enum class Quantifier : uint8_t { kFree, kSome, kAll };

std::string_view QuantifierToString(Quantifier q);

/// One side of a join term: a component access `v.comp`, a literal, or a
/// host-variable parameter marker `$name` (Prepare/Execute). Binding fills
/// component_pos / type; var identity stays by name through normalization
/// (alpha renaming keeps names unique) and is resolved to an index only in
/// the standard form.
///
/// Parameters exist only between Prepare and the first Execute: binding a
/// value turns a kParam operand into an ordinary kLiteral whose
/// `param_name` stays set, so a cached compiled plan can be re-patched in
/// place when the same prepared query runs with new parameter values.
struct Operand {
  enum class Kind : uint8_t { kComponent, kLiteral, kParam } kind =
      Kind::kLiteral;

  // kComponent:
  std::string var;
  std::string component;
  int component_pos = -1;  ///< set by the binder

  // kLiteral:
  Value literal;
  /// Unresolved enumeration label (e.g. `professor`) until the binder
  /// types it against the opposite operand's enum type.
  std::string enum_label;

  /// kParam — and, after parameter substitution, the tag that marks a
  /// kLiteral operand as a re-patchable parameter slot.
  std::string param_name;

  /// Bound type of this operand (component type or literal type).
  Type type = Type::Int();

  static Operand Component(std::string var, std::string component) {
    Operand o;
    o.kind = Kind::kComponent;
    o.var = std::move(var);
    o.component = std::move(component);
    return o;
  }
  static Operand Literal(Value v) {
    Operand o;
    o.kind = Kind::kLiteral;
    o.literal = std::move(v);
    return o;
  }
  static Operand Param(std::string name) {
    Operand o;
    o.kind = Kind::kParam;
    o.param_name = std::move(name);
    return o;
  }

  bool is_component() const { return kind == Kind::kComponent; }
  bool is_literal() const { return kind == Kind::kLiteral; }
  bool is_param() const { return kind == Kind::kParam; }

  bool operator==(const Operand& other) const;
  std::string ToString() const;
};

/// An atomic formula: `lhs op rhs`. Monadic if it references exactly one
/// variable (paper: `e.estatus = professor`, also `t.tenr = t.tcnr`);
/// dyadic if it references two (paper: `e.enr = t.tenr`).
struct JoinTerm {
  Operand lhs;
  CompareOp op = CompareOp::kEq;
  Operand rhs;

  /// Distinct variable names referenced (0, 1 or 2 entries).
  std::vector<std::string> Variables() const;
  bool IsMonadic() const { return Variables().size() == 1; }
  bool IsDyadic() const { return Variables().size() == 2; }
  bool References(const std::string& var) const;

  /// The negated term (operator complement).
  JoinTerm Negated() const;
  /// The mirrored term (sides swapped, operator mirrored); semantically
  /// identical, used to normalise component-vs-literal orientation.
  JoinTerm Mirrored() const;

  bool operator==(const JoinTerm& other) const;
  std::string ToString() const;
};

/// A range expression: base relation plus optional extension restricting
/// it (`[EACH r IN rel: S(r)]`). The restriction, when present, references
/// only the range's own variable.
struct RangeExpr {
  std::string relation;
  FormulaPtr restriction;  ///< nullable; owned

  RangeExpr() = default;
  explicit RangeExpr(std::string rel) : relation(std::move(rel)) {}
  RangeExpr(std::string rel, FormulaPtr restr)
      : relation(std::move(rel)), restriction(std::move(restr)) {}

  RangeExpr Clone() const;
  bool IsExtended() const { return restriction != nullptr; }
  std::string ToString(const std::string& var) const;
};

enum class FormulaKind : uint8_t {
  kConst,    ///< TRUE or FALSE
  kCompare,  ///< a join term
  kNot,
  kAnd,  ///< n-ary
  kOr,   ///< n-ary
  kQuant,
};

/// A wff node. Connectives are n-ary to keep normal forms flat.
class Formula {
 public:
  static FormulaPtr True();
  static FormulaPtr False();
  static FormulaPtr Constant(bool value);
  static FormulaPtr Compare(JoinTerm term);
  static FormulaPtr Compare(Operand lhs, CompareOp op, Operand rhs);
  static FormulaPtr Not(FormulaPtr f);
  /// And/Or flatten nested same-kind children and simplify the 0/1-child
  /// cases (And() == TRUE, Or() == FALSE, single child passes through).
  static FormulaPtr And(std::vector<FormulaPtr> children);
  static FormulaPtr Or(std::vector<FormulaPtr> children);
  static FormulaPtr And(FormulaPtr a, FormulaPtr b);
  static FormulaPtr Or(FormulaPtr a, FormulaPtr b);
  static FormulaPtr Quant(Quantifier q, std::string var, RangeExpr range,
                          FormulaPtr body);

  FormulaKind kind() const { return kind_; }

  bool const_value() const { return const_value_; }
  const JoinTerm& term() const { return term_; }
  JoinTerm& term() { return term_; }

  /// kNot: the single child. kQuant: the body.
  const Formula& child() const { return *children_[0]; }
  Formula* mutable_child() { return children_[0].get(); }
  FormulaPtr TakeChild() { return std::move(children_[0]); }

  /// kQuant: replaces the body.
  void ReplaceChild(FormulaPtr f) { children_[0] = std::move(f); }
  /// kQuant: rebinds the variable name (alpha renaming).
  void set_var(std::string v) { var_ = std::move(v); }

  /// kAnd / kOr.
  const std::vector<FormulaPtr>& children() const { return children_; }
  std::vector<FormulaPtr>& mutable_children() { return children_; }
  std::vector<FormulaPtr> TakeChildren() { return std::move(children_); }

  Quantifier quantifier() const { return quantifier_; }
  const std::string& var() const { return var_; }
  const RangeExpr& range() const { return range_; }
  RangeExpr& range() { return range_; }

  FormulaPtr Clone() const;

  /// Structural equality (used by tests and golden checks).
  bool Equals(const Formula& other) const;

  /// All variable names occurring in join terms of this subtree (bound or
  /// free), in first-occurrence order.
  std::vector<std::string> CollectTermVariables() const;

  /// True if any join term in this subtree references `var`.
  bool ReferencesVar(const std::string& var) const;

  /// Names of variables quantified anywhere in this subtree.
  std::vector<std::string> CollectQuantifiedVars() const;

  std::string ToString() const;  // paper-style rendering (printer.cc)

 private:
  Formula() = default;

  FormulaKind kind_ = FormulaKind::kConst;
  bool const_value_ = false;
  JoinTerm term_;
  std::vector<FormulaPtr> children_;
  Quantifier quantifier_ = Quantifier::kSome;
  std::string var_;
  RangeExpr range_;
};

/// `EACH var IN range` — declaration of a free variable.
struct RangeDecl {
  std::string var;
  RangeExpr range;

  RangeDecl() = default;
  RangeDecl(std::string v, RangeExpr r) : var(std::move(v)), range(std::move(r)) {}
  RangeDecl Clone() const { return RangeDecl(var, range.Clone()); }
};

/// `v.comp` in the component selection (projection list).
struct OutputComponent {
  std::string var;
  std::string component;
  int component_pos = -1;  ///< set by the binder

  std::string ToString() const { return var + "." + component; }
};

/// Renames every occurrence of variable `from` to `to` in join terms,
/// extended-range restrictions, and quantifier bindings of `f` (in place).
/// Quantifiers that *shadow* `from` stop the renaming in their scope.
void RenameVariable(Formula* f, const std::string& from, const std::string& to);

/// A full selection: projection, free variable declarations, and wff.
struct SelectionExpr {
  std::vector<OutputComponent> projection;
  std::vector<RangeDecl> free_vars;
  FormulaPtr wff;

  SelectionExpr Clone() const;
  std::string ToString() const;  // printer.cc
};

}  // namespace pascalr

#endif  // PASCALR_CALCULUS_AST_H_
