// Paper-style rendering of formulas and selections, used by EXPLAIN output,
// golden tests, and error messages.

#ifndef PASCALR_CALCULUS_PRINTER_H_
#define PASCALR_CALCULUS_PRINTER_H_

#include <string>

#include "calculus/ast.h"

namespace pascalr {

/// Single-line rendering: `(e.estatus = professor) AND SOME t IN timetable
/// ((t.tenr = e.enr))`.
std::string FormatFormula(const Formula& f);

/// Multi-line, indented rendering for EXPLAIN output.
std::string FormatFormulaIndented(const Formula& f, int indent = 0);

/// `[<e.ename> OF EACH e IN employees: wff]`.
std::string FormatSelection(const SelectionExpr& sel);

}  // namespace pascalr

#endif  // PASCALR_CALCULUS_PRINTER_H_
