#include "value/tuple.h"

#include "base/logging.h"
#include "base/str_util.h"

namespace pascalr {

int Tuple::Compare(const Tuple& other) const {
  size_t n = values_.size() < other.values_.size() ? values_.size()
                                                   : other.values_.size();
  for (size_t i = 0; i < n; ++i) {
    int c = values_[i].Compare(other.values_[i]);
    if (c != 0) return c;
  }
  if (values_.size() < other.values_.size()) return -1;
  if (values_.size() > other.values_.size()) return 1;
  return 0;
}

uint64_t Tuple::Hash() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const Value& v : values_) h = HashCombine(h, v.Hash());
  return h;
}

Tuple Tuple::Project(const std::vector<size_t>& positions) const {
  std::vector<Value> out;
  out.reserve(positions.size());
  for (size_t p : positions) {
    PASCALR_DCHECK(p < values_.size());
    out.push_back(values_[p]);
  }
  return Tuple(std::move(out));
}

std::string Tuple::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const Value& v : values_) parts.push_back(v.ToString());
  return "<" + Join(parts, ", ") + ">";
}

}  // namespace pascalr
