// Dynamic component values. A Value is untyped storage (int64 / string /
// bool / enum-ordinal); the Schema supplies the Type when validation or
// printing needs it. Comparison order matches PASCAL semantics: integer
// order, lexicographic string order, declaration order for enums.

#ifndef PASCALR_VALUE_VALUE_H_
#define PASCALR_VALUE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "base/status.h"
#include "base/str_util.h"
#include "value/type.h"

namespace pascalr {

/// Comparison operators of the calculus (paper §2: =, <>, <, <=, >, >=).
enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// The operator with operand sides swapped: a op b  <=>  b Mirror(op) a.
CompareOp MirrorOp(CompareOp op);
/// The complement: NOT (a op b)  <=>  a Negate(op) b.
CompareOp NegateOp(CompareOp op);
/// "=", "<>", "<", "<=", ">", ">=".
std::string_view CompareOpToString(CompareOp op);

class Value {
 public:
  Value() : rep_(int64_t{0}) {}

  static Value MakeInt(int64_t v) { return Value(v); }
  static Value MakeString(std::string v) { return Value(std::move(v)); }
  static Value MakeBool(bool v) { return Value(v); }
  /// Enum values store the ordinal; Type/EnumInfo supplies labels.
  static Value MakeEnum(int32_t ordinal) { return Value(EnumRep{ordinal}); }

  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }
  bool is_bool() const { return std::holds_alternative<bool>(rep_); }
  bool is_enum() const { return std::holds_alternative<EnumRep>(rep_); }

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  bool AsBool() const { return std::get<bool>(rep_); }
  int32_t AsEnumOrdinal() const { return std::get<EnumRep>(rep_).ordinal; }

  /// True if both values hold the same representation kind.
  bool SameKind(const Value& other) const {
    return rep_.index() == other.rep_.index();
  }

  /// Three-way comparison; requires both values to hold the same
  /// representation kind (the binder guarantees this for bound queries).
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  /// Applies a comparison operator.
  bool Satisfies(CompareOp op, const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  uint64_t Hash() const;

  /// Raw rendering: ints as digits, strings quoted, enums as #ordinal.
  /// Use ToStringTyped for label-aware rendering.
  std::string ToString() const;
  /// Label-aware rendering given the component type.
  std::string ToStringTyped(const Type& type) const;

 private:
  struct EnumRep {
    int32_t ordinal;
    bool operator==(const EnumRep& o) const { return ordinal == o.ordinal; }
  };
  using Rep = std::variant<int64_t, std::string, bool, EnumRep>;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

}  // namespace pascalr

#endif  // PASCALR_VALUE_VALUE_H_
