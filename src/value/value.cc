#include "value/value.h"

#include "base/logging.h"

namespace pascalr {

CompareOp MirrorOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kEq;
    case CompareOp::kNe:
      return CompareOp::kNe;
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
  }
  return op;
}

CompareOp NegateOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
  }
  return op;
}

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  PASCALR_DCHECK(rep_.index() == other.rep_.index())
      << "comparing values of different kinds";
  if (is_int()) {
    int64_t a = AsInt(), b = other.AsInt();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (is_string()) {
    return AsString().compare(other.AsString());
  }
  if (is_bool()) {
    int a = AsBool() ? 1 : 0, b = other.AsBool() ? 1 : 0;
    return a - b;
  }
  int32_t a = AsEnumOrdinal(), b = other.AsEnumOrdinal();
  return a < b ? -1 : (a > b ? 1 : 0);
}

bool Value::Satisfies(CompareOp op, const Value& other) const {
  int c = Compare(other);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

uint64_t Value::Hash() const {
  uint64_t tag = static_cast<uint64_t>(rep_.index());
  if (is_string()) {
    const std::string& s = AsString();
    return HashCombine(tag, Fnv1a64(s.data(), s.size()));
  }
  uint64_t raw = 0;
  if (is_int()) {
    raw = static_cast<uint64_t>(AsInt());
  } else if (is_bool()) {
    raw = AsBool() ? 1 : 0;
  } else {
    raw = static_cast<uint64_t>(static_cast<uint32_t>(AsEnumOrdinal()));
  }
  return HashCombine(tag, Fnv1a64(&raw, sizeof(raw)));
}

std::string Value::ToString() const {
  if (is_int()) return std::to_string(AsInt());
  if (is_string()) return "'" + AsString() + "'";
  if (is_bool()) return AsBool() ? "true" : "false";
  return "#" + std::to_string(AsEnumOrdinal());
}

std::string Value::ToStringTyped(const Type& type) const {
  if (is_enum() && type.kind() == TypeKind::kEnum && type.enum_info()) {
    int32_t ord = AsEnumOrdinal();
    const auto& labels = type.enum_info()->labels;
    if (ord >= 0 && static_cast<size_t>(ord) < labels.size()) {
      return labels[static_cast<size_t>(ord)];
    }
  }
  return ToString();
}

}  // namespace pascalr
