// Schema: the RECORD structure of a RELATION plus its declared key
// (paper Figure 1: the component list in angular brackets).

#ifndef PASCALR_VALUE_SCHEMA_H_
#define PASCALR_VALUE_SCHEMA_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "value/tuple.h"
#include "value/type.h"

namespace pascalr {

/// One RECORD component: identifier plus type.
struct Component {
  std::string name;
  Type type;
};

class Schema {
 public:
  Schema() = default;
  /// `key_components` are component *names*; they must exist in
  /// `components`. An empty key means "all components" (set semantics over
  /// whole elements), matching result relations keyed on their projection.
  static Result<Schema> Make(std::vector<Component> components,
                             std::vector<std::string> key_components);

  size_t num_components() const { return components_.size(); }
  const Component& component(size_t i) const { return components_[i]; }
  const std::vector<Component>& components() const { return components_; }

  /// Positions of the key components, in declaration order of the key.
  const std::vector<size_t>& key_positions() const { return key_positions_; }

  /// Returns the position of the named component or -1.
  int FindComponent(const std::string& name) const;

  /// Validates arity, value kinds, subranges, string lengths, and enum
  /// ordinal bounds of `tuple` against this schema.
  Status ValidateTuple(const Tuple& tuple) const;

  /// Extracts the key of `tuple` (whole tuple if the key list was empty).
  Tuple KeyOf(const Tuple& tuple) const;

  /// "RELATION <k1,k2> OF RECORD a : t1; b : t2 END".
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Component> components_;
  std::vector<size_t> key_positions_;
};

}  // namespace pascalr

#endif  // PASCALR_VALUE_SCHEMA_H_
