#include "value/schema.h"

#include "base/str_util.h"

namespace pascalr {

Result<Schema> Schema::Make(std::vector<Component> components,
                            std::vector<std::string> key_components) {
  Schema s;
  for (size_t i = 0; i < components.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (components[j].name == components[i].name) {
        return Status::InvalidArgument("duplicate component name '" +
                                       components[i].name + "'");
      }
    }
  }
  s.components_ = std::move(components);
  if (key_components.empty()) {
    for (size_t i = 0; i < s.components_.size(); ++i) {
      s.key_positions_.push_back(i);
    }
  } else {
    for (const std::string& k : key_components) {
      int pos = s.FindComponent(k);
      if (pos < 0) {
        return Status::NotFound("key component '" + k +
                                "' is not a component of the record");
      }
      for (size_t existing : s.key_positions_) {
        if (existing == static_cast<size_t>(pos)) {
          return Status::InvalidArgument("key component '" + k +
                                         "' listed twice");
        }
      }
      s.key_positions_.push_back(static_cast<size_t>(pos));
    }
  }
  return s;
}

int Schema::FindComponent(const std::string& name) const {
  for (size_t i = 0; i < components_.size(); ++i) {
    if (components_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::ValidateTuple(const Tuple& tuple) const {
  if (tuple.size() != components_.size()) {
    return Status::InvalidArgument(
        StrFormat("tuple arity %zu does not match schema arity %zu",
                  tuple.size(), components_.size()));
  }
  for (size_t i = 0; i < components_.size(); ++i) {
    const Component& c = components_[i];
    const Value& v = tuple.at(i);
    switch (c.type.kind()) {
      case TypeKind::kInt: {
        if (!v.is_int()) {
          return Status::TypeMismatch("component '" + c.name +
                                      "' expects an integer");
        }
        if (v.AsInt() < c.type.int_lo() || v.AsInt() > c.type.int_hi()) {
          return Status::OutOfRange(
              StrFormat("component '%s': %lld outside %s", c.name.c_str(),
                        static_cast<long long>(v.AsInt()),
                        c.type.ToString().c_str()));
        }
        break;
      }
      case TypeKind::kString: {
        if (!v.is_string()) {
          return Status::TypeMismatch("component '" + c.name +
                                      "' expects a string");
        }
        if (c.type.max_len() > 0 && v.AsString().size() > c.type.max_len()) {
          return Status::OutOfRange(
              StrFormat("component '%s': string longer than %zu",
                        c.name.c_str(), c.type.max_len()));
        }
        break;
      }
      case TypeKind::kEnum: {
        if (!v.is_enum()) {
          return Status::TypeMismatch("component '" + c.name +
                                      "' expects an enumeration value");
        }
        const auto& info = c.type.enum_info();
        if (info == nullptr || v.AsEnumOrdinal() < 0 ||
            static_cast<size_t>(v.AsEnumOrdinal()) >= info->labels.size()) {
          return Status::OutOfRange("component '" + c.name +
                                    "': enum ordinal out of range");
        }
        break;
      }
      case TypeKind::kBool: {
        if (!v.is_bool()) {
          return Status::TypeMismatch("component '" + c.name +
                                      "' expects a boolean");
        }
        break;
      }
    }
  }
  return Status::OK();
}

Tuple Schema::KeyOf(const Tuple& tuple) const {
  return tuple.Project(key_positions_);
}

std::string Schema::ToString() const {
  std::vector<std::string> keys;
  for (size_t p : key_positions_) keys.push_back(components_[p].name);
  std::vector<std::string> comps;
  for (const Component& c : components_) {
    comps.push_back(c.name + " : " + c.type.ToString());
  }
  return "RELATION <" + Join(keys, ",") + "> OF RECORD " + Join(comps, "; ") +
         " END";
}

bool Schema::operator==(const Schema& other) const {
  if (key_positions_ != other.key_positions_) return false;
  if (components_.size() != other.components_.size()) return false;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (components_[i].name != other.components_[i].name ||
        components_[i].type != other.components_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace pascalr
