#include "value/type.h"

#include "base/str_util.h"

namespace pascalr {

int EnumInfo::OrdinalOf(const std::string& label) const {
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) return static_cast<int>(i);
  }
  return -1;
}

Type Type::Int() {
  Type t;
  t.kind_ = TypeKind::kInt;
  return t;
}

Type Type::IntRange(int64_t lo, int64_t hi) {
  Type t;
  t.kind_ = TypeKind::kInt;
  t.int_lo_ = lo;
  t.int_hi_ = hi;
  return t;
}

Type Type::String(size_t max_len) {
  Type t;
  t.kind_ = TypeKind::kString;
  t.max_len_ = max_len;
  return t;
}

Type Type::Bool() {
  Type t;
  t.kind_ = TypeKind::kBool;
  return t;
}

Type Type::Enum(std::shared_ptr<const EnumInfo> info) {
  Type t;
  t.kind_ = TypeKind::kEnum;
  t.enum_info_ = std::move(info);
  return t;
}

bool Type::CompatibleWith(const Type& other) const {
  if (kind_ != other.kind_) return false;
  if (kind_ == TypeKind::kEnum) {
    if (enum_info_ == other.enum_info_) return true;
    // Structurally identical enum definitions are also compatible.
    return enum_info_ != nullptr && other.enum_info_ != nullptr &&
           enum_info_->labels == other.enum_info_->labels;
  }
  return true;  // subrange/length constraints do not affect comparability
}

bool Type::operator==(const Type& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case TypeKind::kInt:
      return int_lo_ == other.int_lo_ && int_hi_ == other.int_hi_;
    case TypeKind::kString:
      return max_len_ == other.max_len_;
    case TypeKind::kEnum:
      return enum_info_ == other.enum_info_ ||
             (enum_info_ != nullptr && other.enum_info_ != nullptr &&
              enum_info_->name == other.enum_info_->name &&
              enum_info_->labels == other.enum_info_->labels);
    case TypeKind::kBool:
      return true;
  }
  return false;
}

std::string Type::ToString() const {
  switch (kind_) {
    case TypeKind::kInt:
      if (int_lo_ != std::numeric_limits<int64_t>::min() ||
          int_hi_ != std::numeric_limits<int64_t>::max()) {
        return StrFormat("%lld..%lld", static_cast<long long>(int_lo_),
                         static_cast<long long>(int_hi_));
      }
      return "integer";
    case TypeKind::kString:
      if (max_len_ > 0) return StrFormat("string[%zu]", max_len_);
      return "string";
    case TypeKind::kEnum:
      return enum_info_ ? enum_info_->name : "enum";
    case TypeKind::kBool:
      return "boolean";
  }
  return "unknown";
}

std::shared_ptr<const EnumInfo> MakeEnum(std::string name,
                                         std::vector<std::string> labels) {
  auto info = std::make_shared<EnumInfo>();
  info->name = std::move(name);
  info->labels = std::move(labels);
  return info;
}

}  // namespace pascalr
