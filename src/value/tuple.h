// A Tuple is one relation element: a fixed-arity sequence of Values laid
// out in schema component order.

#ifndef PASCALR_VALUE_TUPLE_H_
#define PASCALR_VALUE_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "value/value.h"

namespace pascalr {

class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Lexicographic three-way comparison (same arity and value kinds).
  int Compare(const Tuple& other) const;
  bool operator==(const Tuple& other) const { return Compare(other) == 0; }
  bool operator!=(const Tuple& other) const { return Compare(other) != 0; }
  bool operator<(const Tuple& other) const { return Compare(other) < 0; }

  uint64_t Hash() const;

  /// Projects the tuple onto the given component positions.
  Tuple Project(const std::vector<size_t>& positions) const;

  /// "<v1, v2, ...>" with raw value rendering.
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

/// Hash functor for unordered containers keyed by Tuple.
struct TupleHash {
  uint64_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace pascalr

#endif  // PASCALR_VALUE_TUPLE_H_
