// The PASCAL/R component type system (paper Figure 1):
//   - enumerations:      statustype = (student, technician, assistant, professor)
//   - integer subranges: yeartype   = 1900..1999
//   - packed strings:    nametype   = PACKED ARRAY [1..10] OF char
//   - booleans (PASCAL's built-in)
//
// Enumerations are *ordered*: the paper compares `c.clevel <= sophomore`.

#ifndef PASCALR_VALUE_TYPE_H_
#define PASCALR_VALUE_TYPE_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"

namespace pascalr {

enum class TypeKind : uint8_t { kInt, kString, kEnum, kBool };

/// Shared definition of a named enumeration type; label order defines the
/// ordering used by <, <=, >, >=.
struct EnumInfo {
  std::string name;                 ///< e.g. "statustype"
  std::vector<std::string> labels;  ///< ordinal -> label

  /// Returns the ordinal of `label` or -1.
  int OrdinalOf(const std::string& label) const;
};

/// A component type: kind plus kind-specific constraints.
///
/// Type is a small value class; enum types share their EnumInfo so that two
/// components declared with the same named enumeration compare equal.
class Type {
 public:
  /// Unconstrained integer.
  static Type Int();
  /// Integer subrange lo..hi (inclusive), e.g. 1900..1999.
  static Type IntRange(int64_t lo, int64_t hi);
  /// PACKED ARRAY [1..max_len] OF char; 0 means unbounded.
  static Type String(size_t max_len = 0);
  static Type Bool();
  static Type Enum(std::shared_ptr<const EnumInfo> info);

  TypeKind kind() const { return kind_; }
  int64_t int_lo() const { return int_lo_; }
  int64_t int_hi() const { return int_hi_; }
  size_t max_len() const { return max_len_; }
  const std::shared_ptr<const EnumInfo>& enum_info() const { return enum_info_; }

  /// Two types are compatible if values of one may be compared with values
  /// of the other (same kind; enums must share the same definition).
  bool CompatibleWith(const Type& other) const;

  bool operator==(const Type& other) const;
  bool operator!=(const Type& other) const { return !(*this == other); }

  /// "integer", "1900..1999", "string[10]", "statustype", "boolean".
  std::string ToString() const;

 private:
  Type() = default;

  TypeKind kind_ = TypeKind::kInt;
  int64_t int_lo_ = std::numeric_limits<int64_t>::min();
  int64_t int_hi_ = std::numeric_limits<int64_t>::max();
  size_t max_len_ = 0;
  std::shared_ptr<const EnumInfo> enum_info_;
};

/// Convenience: builds a shared enum definition.
std::shared_ptr<const EnumInfo> MakeEnum(std::string name,
                                         std::vector<std::string> labels);

}  // namespace pascalr

#endif  // PASCALR_VALUE_TYPE_H_
