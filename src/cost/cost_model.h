// The cost model: walks a compiled QueryPlan and predicts the ExecStats
// work counters the evaluator would produce, in the same units, so
// estimates and measurements are directly comparable (and the plan-search
// driver can rank candidates by predicted TotalWork).
//
// The walk mirrors the three execution phases:
//   collection   - per scan: elements visited, gate comparisons, index
//                  builds/probes, value-list probes, structure sizes;
//   combination  - walks the plan's join tree (src/joinorder/) when one
//                  is attached, otherwise the executor's greedy
//                  smallest-first order, on estimated structure sizes;
//                  then product extension, union, projection, division;
//   construction - dereferences per result row and output component.

#ifndef PASCALR_COST_COST_MODEL_H_
#define PASCALR_COST_COST_MODEL_H_

#include <string>
#include <vector>

#include "catalog/database.h"
#include "exec/plan.h"
#include "exec/stats.h"
#include "joinorder/join_graph.h"

namespace pascalr {

struct CostEstimate {
  /// Predicted work counters (rounded from the model's real-valued walk).
  ExecStats predicted;
  /// Ranking score: predicted TotalWork plus structural nudges the
  /// counters cannot see (ordered-index build/probe log factors, sort
  /// division). Lower is better.
  double weighted_cost = 0.0;

  std::string ToString() const;
};

/// Costs `plan` against the catalog statistics of `db` (run ANALYZE for
/// accurate estimates; unanalyzed relations fall back to live cardinality
/// and textbook selectivities).
CostEstimate EstimatePlanCost(const QueryPlan& plan, const Database& db);

/// Estimated row counts and per-column distinct counts of every
/// collection-phase structure of `plan`, by walking the collection phase
/// only — the leaf cardinalities the join-order optimizer
/// (src/joinorder/) plans over. Index [i] matches plan.structures[i].
std::vector<EstRel> EstimateStructureSizes(const QueryPlan& plan,
                                           const Database& db);

/// True when the evaluator would reuse a fresh permanent catalog index
/// for `spec` instead of building a transient one (the same rule
/// collection.cc applies: try_permanent, ungated, fresh index exists).
bool IndexBorrowsPermanent(const QueryPlan& plan, const Database& db,
                           const IndexBuildSpec& spec);

}  // namespace pascalr

#endif  // PASCALR_COST_COST_MODEL_H_
