// The cost model: walks a compiled QueryPlan and predicts the ExecStats
// work counters the evaluator would produce, in the same units, so
// estimates and measurements are directly comparable (and the plan-search
// driver can rank candidates by predicted TotalWork).
//
// The walk mirrors the three execution phases:
//   collection   - per scan: elements visited, gate comparisons, index
//                  builds/probes, value-list probes, structure sizes;
//   combination  - walks the plan's join tree (src/joinorder/) when one
//                  is attached, otherwise the executor's greedy
//                  smallest-first order, on estimated structure sizes;
//                  then product extension, union, projection, division;
//   construction - dereferences per result row and output component.

#ifndef PASCALR_COST_COST_MODEL_H_
#define PASCALR_COST_COST_MODEL_H_

#include <string>
#include <vector>

#include "catalog/database.h"
#include "exec/plan.h"
#include "exec/stats.h"
#include "joinorder/join_graph.h"

namespace pascalr {

struct CostEstimate {
  /// Predicted work counters (rounded from the model's real-valued walk).
  ExecStats predicted;
  /// Ranking score: predicted TotalWork plus structural nudges the
  /// counters cannot see (ordered-index build/probe log factors, sort
  /// division). Lower is better.
  double weighted_cost = 0.0;

  /// Pipelined-combination pricing (src/pipeline/): what the streaming
  /// cursor does instead of the materializing path — no join
  /// intermediates, semi-joins that stop at the first match for purely
  /// existential probes (EXISTS-style early termination), skipped
  /// Cartesian extensions. `predicted` / `weighted_cost` above always
  /// price the materializing reference path (candidates are ranked and
  /// validated against it); these fields price the pipelined mode.
  double pipelined_combination_rows = 0.0;
  double pipelined_total_work = 0.0;
  /// Ranking score for sessions that execute pipelined: the pipelined
  /// work plus the same structural nudges weighted_cost carries. The
  /// kAuto search ranks on this when PlannerOptions::pipeline is on
  /// (mode-aware ranking), and on weighted_cost otherwise.
  double pipelined_weighted_cost = 0.0;
  /// Predicted ExecStats::peak_intermediate_rows per combination mode.
  double est_peak_materialized = 0.0;
  double est_peak_pipelined = 0.0;
  /// Predicted root chunk refills of a vectorized drain —
  /// ceil(final rows / QueryPlan::batch_size), the batches_emitted
  /// counterpart. One work unit per refill is folded into the pipelined
  /// prices: the per-pull overhead batching amortises (~0.1% of work at
  /// the default 1024-row chunks, the whole row cost at SET BATCH 1).
  double est_batches = 0.0;

  /// Predicted work before the first result tuple reaches the caller, in
  /// TotalWork units, for the mode the plan executes (pipeline flag +
  /// collection policy). Materializing: everything except the remaining
  /// rows' construction. Pipelined eager: the whole collection phase
  /// plus one row's join/construction work. Pipelined lazy: only the
  /// first conjunction's demanded builds — full builds for structures
  /// that cannot populate per key, index builds, one element evaluation
  /// per keyed probe. A blocking division tail forces the full pipelined
  /// run regardless of policy.
  double est_time_to_first_tuple = 0.0;

  std::string ToString() const;
};

/// The saved output of one collection-phase cost walk over a plan: the
/// per-structure estimates the join-order optimizer plans over plus the
/// accumulator state the combination walk resumes from. Computed by
/// EstimateStructureSizes (via AttachJoinOrders) and replayed by
/// EstimatePlanCost, so each kAuto candidate walks its collection phase
/// once instead of twice. Valid only for the exact (plan, db) pair it was
/// computed from — join trees attached *after* the walk are fine (they
/// only change the combination phase), any other plan or catalog change
/// is not.
struct CollectionCost {
  bool valid = false;
  std::vector<EstRel> structures;  ///< index [i] matches plan.structures[i]

  // Resumable walk state (collection-phase accumulators).
  std::vector<double> structure_rows;
  std::vector<double> index_rows;
  std::vector<double> index_distinct;
  std::vector<double> vl_count;
  std::vector<double> vl_distinct;
  std::vector<char> borrowed;
  double relations_read = 0.0;
  double elements_scanned = 0.0;
  double index_probes = 0.0;
  double single_list_refs = 0.0;
  double indirect_join_refs = 0.0;
  double quantifier_probes = 0.0;
  double comparisons = 0.0;
  double permanent_index_hits = 0.0;
  double extra_cost = 0.0;
};

/// Costs `plan` against the catalog statistics of `db` (run ANALYZE for
/// accurate estimates; unanalyzed relations fall back to live cardinality
/// and textbook selectivities). When `reuse` holds a valid CollectionCost
/// for this plan, the collection phase is replayed from it instead of
/// walked again.
CostEstimate EstimatePlanCost(const QueryPlan& plan, const Database& db,
                              const CollectionCost* reuse = nullptr);

/// Estimated row counts and per-column distinct counts of every
/// collection-phase structure of `plan`, by walking the collection phase
/// only — the leaf cardinalities the join-order optimizer
/// (src/joinorder/) plans over. Index [i] matches plan.structures[i].
/// When `save` is non-null the full walk state is stored there for a
/// later EstimatePlanCost to resume from.
std::vector<EstRel> EstimateStructureSizes(const QueryPlan& plan,
                                           const Database& db,
                                           CollectionCost* save = nullptr);

/// True when the evaluator would reuse a fresh permanent catalog index
/// for `spec` instead of building a transient one (the same rule
/// collection.cc applies: try_permanent, ungated, fresh index exists).
bool IndexBorrowsPermanent(const QueryPlan& plan, const Database& db,
                           const IndexBuildSpec& spec);

}  // namespace pascalr

#endif  // PASCALR_COST_COST_MODEL_H_
