#include "cost/plan_search.h"

#include <optional>
#include <set>
#include <vector>

#include "base/counters.h"
#include "base/str_util.h"
#include "cost/cost_model.h"
#include "normalize/standard_form.h"
#include "obs/span_names.h"
#include "obs/trace.h"

namespace pascalr {

namespace {

std::string LabelFor(const PlannerOptions& o) {
  std::string label = StrFormat("O%d", static_cast<int>(o.level));
  label += o.division == DivisionAlgorithm::kHash ? "/hash-div" : "/sort-div";
  if (o.use_permanent_indexes) label += "/perm";
  if (o.prefer_ordered_indexes) label += "/btree";
  return label;
}

/// True when the catalog holds a fresh permanent index over any component
/// of a relation the query ranges over — otherwise the permanent-index
/// knob cannot change any plan.
bool AnyFreshPermanentIndex(const Database& db, const BoundQuery& query) {
  for (const auto& [var, binding] : query.vars) {
    const Relation* rel = db.FindRelation(binding.relation_name);
    if (rel == nullptr) continue;
    for (size_t i = 0; i < rel->schema().num_components(); ++i) {
      if (db.FindFreshIndex(binding.relation_name,
                            rel->schema().component(i).name) != nullptr) {
        return true;
      }
    }
  }
  return false;
}

/// Cardinality as the cost model sees it: fresh statistics, else the live
/// relation.
double CardinalityFor(const Database& db, const std::string& relation) {
  if (const RelationStats* stats = db.FindFreshStats(relation)) {
    return static_cast<double>(stats->cardinality);
  }
  const Relation* rel = db.FindRelation(relation);
  return rel == nullptr ? 0.0 : static_cast<double>(rel->cardinality());
}

/// A lower bound on any *naive* (O0) candidate's estimated cost: the
/// elements the per-term scans must visit. Naive compilation gives every
/// unique single-list term one scan of its variable's relation and every
/// unique indirect-join term an index-build scan plus a probe pass, so
/// summing those cardinalities never exceeds the cost model's
/// elements_scanned for the compiled plan — and elements_scanned is one
/// addend of the weighted cost. Returns 0 (no pruning) whenever the bound
/// cannot be guaranteed: extended ranges (restricted post-scan passes),
/// empty or missing relations (runtime adaptation refolds the formula),
/// or a standard form that fails to build.
double NaiveScanLowerBound(const Database& db, const BoundQuery& query) {
  for (const auto& [var, binding] : query.vars) {
    const Relation* rel = db.FindRelation(binding.relation_name);
    if (rel == nullptr || rel->empty()) return 0.0;
  }
  Result<StandardForm> sf = BuildStandardForm(CloneBoundQuery(query));
  if (!sf.ok()) return 0.0;
  for (const QuantifiedVar& qv : sf->prefix) {
    if (qv.range.IsExtended()) return 0.0;
  }
  double bound = 0.0;
  std::set<std::string> seen;  // the keys AssembleNaive interns by
  for (const Conjunction& conj : sf->matrix.disjuncts) {
    for (const JoinTerm& t : conj.terms) {
      std::vector<std::string> vars = t.Variables();
      if (vars.empty()) continue;
      if (vars.size() == 1) {
        if (!seen.insert("sl#" + vars[0] + "#" + t.ToString()).second) {
          continue;
        }
        bound += CardinalityFor(db, sf->vars.at(vars[0]).relation_name);
        continue;
      }
      if (!seen.insert("ij#" + t.ToString()).second) continue;
      bound += CardinalityFor(db, sf->vars.at(t.lhs.var).relation_name);
      bound += CardinalityFor(db, sf->vars.at(t.rhs.var).relation_name);
    }
  }
  return bound;
}

bool HasQuantifier(const Formula& f) {
  switch (f.kind()) {
    case FormulaKind::kQuant:
      return true;
    case FormulaKind::kNot:
      return HasQuantifier(f.child());
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f.children()) {
        if (HasQuantifier(*c)) return true;
      }
      return false;
    default:
      return false;
  }
}

}  // namespace

Result<PlannedQuery> SearchBestPlan(const Database& db,
                                    const BoundQuery& query,
                                    const PlannerOptions& base) {
  ++GlobalCompileCounters().plan_searches;
  TraceSpanGuard trace_span(spans::kPlanSearch);
  // The physical knobs that can matter for this query and catalog:
  // divisions only differ when a quantifier can survive to the
  // combination phase, permanent indexes only when the catalog has one.
  std::vector<DivisionAlgorithm> divisions = {DivisionAlgorithm::kHash};
  if (query.selection.wff != nullptr && HasQuantifier(*query.selection.wff)) {
    divisions.push_back(DivisionAlgorithm::kSort);
  }
  std::vector<bool> perm_choices = {false};
  if (AnyFreshPermanentIndex(db, query)) perm_choices.push_back(true);

  std::optional<PlannedQuery> best;
  PlannerOptions best_options;
  Status last_error = Status::OK();
  std::string table;

  // Mode-aware ranking: a session that executes the streamed combination
  // should pay the streamed price, so candidates are ranked by the
  // pipelined work estimate whenever the session will run pipelined; the
  // materializing estimate stays the ranking for materializing sessions
  // (and the reference both prices are validated against).
  const bool rank_pipelined = base.pipeline;
  auto rank = [rank_pipelined](const CostEstimate& est) {
    return rank_pipelined ? est.pipelined_weighted_cost : est.weighted_cost;
  };
  // The label the materializing metric would have chosen, kept to log
  // ranking flips in the candidate table. Same tie-break as the real
  // ranking: equal costs go to the lowest level.
  std::string best_mat_label;
  double best_mat_cost = 0.0;
  OptLevel best_mat_level = OptLevel::kAuto;
  bool have_mat = false;

  // Search-space pruning: levels are visited from the strongest strategy
  // down, carrying the best weighted cost so far; a candidate whose scan
  // lower bound already exceeds it cannot win, so its compilation is
  // skipped. Only the naive level has a per-candidate bound worth having
  // (its per-term scans dwarf everything once a grouped plan is costed).
  const double naive_bound = NaiveScanLowerBound(db, query);
  size_t pruned = 0;

  for (int level = 4; level >= 0; --level) {
    for (bool perm : perm_choices) {
      // Set by the ordered=false pass; with no transient index builds the
      // btree variant would be an exact duplicate, so it is skipped. Note
      // the btree dimension is currently dominated: the compiler already
      // picks ordered indexes wherever a range probe needs one, so
      // forcing the rest ordered only adds log factors — the knob stays
      // in the search space for when the cost model learns a case where
      // ordered transient indexes win (e.g. sharing one index across
      // eq and range probes).
      bool any_transient_indexes = false;
      for (bool ordered : {false, true}) {
        if (ordered && !any_transient_indexes) continue;
        for (DivisionAlgorithm division : divisions) {
          PlannerOptions options = base;
          options.level = static_cast<OptLevel>(level);
          options.cost_based = false;
          options.division = division;
          options.use_permanent_indexes = perm;
          options.prefer_ordered_indexes = ordered;

          // Sound under both rankings: the bound is a lower bound on
          // elements_scanned, which is an addend of the materializing
          // AND the pipelined work estimates.
          if (level == 0 && naive_bound > 0.0 && best.has_value() &&
              naive_bound >= rank(best->estimate)) {
            ++pruned;
            continue;
          }

          Result<PlannedQuery> planned =
              PlanQuery(db, CloneBoundQuery(query), options);
          if (!planned.ok()) {
            last_error = planned.status();
            table += "  " + LabelFor(options) +
                     ": failed: " + planned.status().ToString() + "\n";
            continue;
          }
          if (!ordered) {
            for (const IndexBuildSpec& spec : planned->plan.indexes) {
              if (!IndexBorrowsPermanent(planned->plan, db, spec)) {
                any_transient_indexes = true;
              }
            }
          }
          // Reuse the collection-phase walk the join-order optimizer
          // already did for this candidate (one walk per candidate, not
          // two — see CollectionCost).
          planned->estimate = EstimatePlanCost(
              planned->plan, db,
              planned->collection_cost.valid ? &planned->collection_cost
                                             : nullptr);
          // Levels run 4 -> 0 but exact ties still choose the lowest
          // level, as the ascending enumeration used to.
          bool better = !best.has_value() ||
                        rank(planned->estimate) < rank(best->estimate) ||
                        (rank(planned->estimate) == rank(best->estimate) &&
                         options.level < best_options.level);
          if (!have_mat || planned->estimate.weighted_cost < best_mat_cost ||
              (planned->estimate.weighted_cost == best_mat_cost &&
               options.level < best_mat_level)) {
            have_mat = true;
            best_mat_cost = planned->estimate.weighted_cost;
            best_mat_level = options.level;
            best_mat_label = LabelFor(options);
          }
          table += StrFormat(
              "  %-22s estimated work %llu (weighted %.0f, pipelined "
              "%.0f)\n",
              LabelFor(options).c_str(),
              static_cast<unsigned long long>(
                  planned->estimate.predicted.TotalWork()),
              planned->estimate.weighted_cost,
              planned->estimate.pipelined_weighted_cost);
          if (better) {
            best = std::move(planned).value();
            best_options = options;
          }
        }
      }
    }
  }

  if (!best.has_value()) {
    if (last_error.ok()) {
      return Status::Internal("plan search produced no candidate");
    }
    return last_error;
  }
  best->cost_based = true;
  if (pruned > 0) {
    table += StrFormat(
        "  pruned %zu candidate(s): O0 scan lower bound %.0f exceeds the "
        "best cost\n",
        pruned, naive_bound);
  }
  if (rank_pipelined) {
    table += "  ranking: pipelined work (session executes the streamed "
             "combination)\n";
    // "Among costed candidates": a pruned O0 candidate was never costed,
    // so its materializing price is unknown by design.
    if (have_mat && best_mat_label != LabelFor(best_options)) {
      table += StrFormat(
          "  ranking flip: materializing ranking (among costed candidates) "
          "would choose %s\n",
          best_mat_label.c_str());
    }
  }
  best->cost_candidates =
      table + "  chosen: " + LabelFor(best_options) + "\n";
  return std::move(best).value();
}

}  // namespace pascalr
