#include "cost/plan_search.h"

#include <optional>
#include <vector>

#include "base/str_util.h"
#include "cost/cost_model.h"

namespace pascalr {

namespace {

std::string LabelFor(const PlannerOptions& o) {
  std::string label = StrFormat("O%d", static_cast<int>(o.level));
  label += o.division == DivisionAlgorithm::kHash ? "/hash-div" : "/sort-div";
  if (o.use_permanent_indexes) label += "/perm";
  if (o.prefer_ordered_indexes) label += "/btree";
  return label;
}

/// True when the catalog holds a fresh permanent index over any component
/// of a relation the query ranges over — otherwise the permanent-index
/// knob cannot change any plan.
bool AnyFreshPermanentIndex(const Database& db, const BoundQuery& query) {
  for (const auto& [var, binding] : query.vars) {
    const Relation* rel = db.FindRelation(binding.relation_name);
    if (rel == nullptr) continue;
    for (size_t i = 0; i < rel->schema().num_components(); ++i) {
      if (db.FindFreshIndex(binding.relation_name,
                            rel->schema().component(i).name) != nullptr) {
        return true;
      }
    }
  }
  return false;
}

bool HasQuantifier(const Formula& f) {
  switch (f.kind()) {
    case FormulaKind::kQuant:
      return true;
    case FormulaKind::kNot:
      return HasQuantifier(f.child());
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f.children()) {
        if (HasQuantifier(*c)) return true;
      }
      return false;
    default:
      return false;
  }
}

}  // namespace

Result<PlannedQuery> SearchBestPlan(const Database& db,
                                    const BoundQuery& query,
                                    const PlannerOptions& base) {
  // The physical knobs that can matter for this query and catalog:
  // divisions only differ when a quantifier can survive to the
  // combination phase, permanent indexes only when the catalog has one.
  std::vector<DivisionAlgorithm> divisions = {DivisionAlgorithm::kHash};
  if (query.selection.wff != nullptr && HasQuantifier(*query.selection.wff)) {
    divisions.push_back(DivisionAlgorithm::kSort);
  }
  std::vector<bool> perm_choices = {false};
  if (AnyFreshPermanentIndex(db, query)) perm_choices.push_back(true);

  std::optional<PlannedQuery> best;
  PlannerOptions best_options;
  Status last_error = Status::OK();
  std::string table;

  for (int level = 0; level <= 4; ++level) {
    for (bool perm : perm_choices) {
      // Set by the ordered=false pass; with no transient index builds the
      // btree variant would be an exact duplicate, so it is skipped. Note
      // the btree dimension is currently dominated: the compiler already
      // picks ordered indexes wherever a range probe needs one, so
      // forcing the rest ordered only adds log factors — the knob stays
      // in the search space for when the cost model learns a case where
      // ordered transient indexes win (e.g. sharing one index across
      // eq and range probes).
      bool any_transient_indexes = false;
      for (bool ordered : {false, true}) {
        if (ordered && !any_transient_indexes) continue;
        for (DivisionAlgorithm division : divisions) {
          PlannerOptions options = base;
          options.level = static_cast<OptLevel>(level);
          options.cost_based = false;
          options.division = division;
          options.use_permanent_indexes = perm;
          options.prefer_ordered_indexes = ordered;

          Result<PlannedQuery> planned =
              PlanQuery(db, CloneBoundQuery(query), options);
          if (!planned.ok()) {
            last_error = planned.status();
            table += "  " + LabelFor(options) +
                     ": failed: " + planned.status().ToString() + "\n";
            continue;
          }
          if (!ordered) {
            for (const IndexBuildSpec& spec : planned->plan.indexes) {
              if (!IndexBorrowsPermanent(planned->plan, db, spec)) {
                any_transient_indexes = true;
              }
            }
          }
          planned->estimate = EstimatePlanCost(planned->plan, db);
          bool better =
              !best.has_value() ||
              planned->estimate.weighted_cost < best->estimate.weighted_cost;
          table += StrFormat(
              "  %-22s estimated work %llu (weighted %.0f)\n",
              LabelFor(options).c_str(),
              static_cast<unsigned long long>(
                  planned->estimate.predicted.TotalWork()),
              planned->estimate.weighted_cost);
          if (better) {
            best = std::move(planned).value();
            best_options = options;
          }
        }
      }
    }
  }

  if (!best.has_value()) {
    if (last_error.ok()) {
      return Status::Internal("plan search produced no candidate");
    }
    return last_error;
  }
  best->cost_based = true;
  best->cost_candidates =
      table + "  chosen: " + LabelFor(best_options) + "\n";
  return std::move(best).value();
}

}  // namespace pascalr
