// The plan-search driver behind OptLevel::kAuto: enumerates candidate
// plans across strategy levels 0-4 and the physical knobs (hash-vs-btree
// transient indexes, permanent-index use, division algorithm), costs each
// with the cost model, and returns the cheapest — the automatic version of
// the paper's strategy arguments.
//
// Join order is folded into the search: every candidate is planned with
// the join-order optimizer (src/joinorder/) enabled per the base options,
// so a candidate's cost reflects the DP-chosen tree for its conjunctions.
// Levels are visited strongest-first carrying the best cost so far, and
// candidates whose scan lower bound already exceeds it are pruned before
// compilation (the pruned count is logged in the EXPLAIN candidate table).
//
// The ranking is mode-aware: sessions that execute the streamed
// combination (PlannerOptions::pipeline) rank candidates by
// CostEstimate::pipelined_weighted_cost — the price of what the cursor
// will actually run — while materializing sessions keep the materializing
// ranking. Flips between the two rankings are logged in the candidate
// table, and the regret sweep in auto_planner_test validates the
// pipelined ranking against every fixed level in pipelined measured work.

#ifndef PASCALR_COST_PLAN_SEARCH_H_
#define PASCALR_COST_PLAN_SEARCH_H_

#include "base/status.h"
#include "catalog/database.h"
#include "opt/planner.h"

namespace pascalr {

/// Plans `query` under every candidate configuration derived from `base`
/// (level and knobs overridden; use_cnf_extensions is inherited), costs
/// each candidate, and returns the cheapest with its estimate and the
/// candidate table filled in. `base.level`/`base.cost_based` are ignored —
/// the caller (PlanQuery) has already decided to search.
Result<PlannedQuery> SearchBestPlan(const Database& db,
                                    const BoundQuery& query,
                                    const PlannerOptions& base);

}  // namespace pascalr

#endif  // PASCALR_COST_PLAN_SEARCH_H_
