// Selectivity estimation over catalog statistics (src/catalog/
// relation_stats.h): monadic gates, dyadic join terms, extended-range
// restrictions, and strategy-4 SOME/ALL value-list probes.
//
// Estimates are fractions of elements (or of independent element pairs)
// satisfying a predicate. They follow the classical playbook — histogram
// lookups for component-vs-literal terms, containment for equality joins,
// histogram integration for range joins, distinct-count reasoning for
// quantifier probes — and degrade to textbook constants when a relation
// has no fresh statistics.

#ifndef PASCALR_COST_SELECTIVITY_H_
#define PASCALR_COST_SELECTIVITY_H_

#include <string>
#include <vector>

#include "catalog/database.h"
#include "catalog/relation_stats.h"
#include "normalize/standard_form.h"

namespace pascalr {

/// Selectivity plus the expected number of short-circuit comparisons the
/// evaluator performs per element (EvalGates / EvalRestriction stop at the
/// first deciding term, so cost is selectivity-dependent).
struct SelEstimate {
  double selectivity = 1.0;
  double comparisons = 0.0;
};

/// Estimated number of distinct values that survive when `kept` of `rows`
/// elements are retained from a column with `distinct` values (Yao's
/// formula, uniform assumption).
double DistinctAfterSelection(double distinct, double rows, double kept);

/// Can `x op y` be decided for EVERY pair (x in [a_min, a_max], y in
/// [b_min, b_max]) from the bounds alone? Disjoint or fully ordered
/// domains resolve comparisons outright (e.g. employee names vs room
/// labels never collide).
enum class BoundsDecision { kAlwaysTrue, kAlwaysFalse, kUndecided };
BoundsDecision DecideByBounds(const Value& a_min, const Value& a_max,
                              const Value& b_min, const Value& b_max,
                              CompareOp op);

class SelectivityEstimator {
 public:
  /// Statistics come from `db` (FindFreshStats — run ANALYZE for good
  /// estimates); variable bindings and ranges from `sf`.
  SelectivityEstimator(const Database& db, const StandardForm& sf)
      : db_(db), sf_(sf) {}

  /// Element count of `relation`: fresh statistics when available, the
  /// live relation's cardinality otherwise.
  double Cardinality(const std::string& relation) const;

  /// Elements denoted by `var`'s (possibly extended) range.
  double RangeSize(const std::string& var) const;

  /// Statistics of `var`'s component at schema position `pos`; nullptr
  /// when the relation has no fresh statistics.
  const ColumnStats* Stats(const std::string& var, int pos) const;

  /// Distinct count of `var`'s component at `pos`, falling back to the
  /// relation cardinality when unanalyzed.
  double ColumnDistinct(const std::string& var, int pos) const;

  /// Fraction of `var`'s elements satisfying a monadic term (component vs
  /// literal, or two components of the same element).
  double Monadic(const JoinTerm& term) const;

  /// Fraction of independent (lhs element, rhs element) pairs satisfying a
  /// dyadic term.
  double DyadicPair(const JoinTerm& term) const;

  /// P(x op v) for x from `lhs_var`'s component at `lhs_pos` and v from a
  /// (possibly gated) collection of `rhs_var`'s component values holding
  /// `rhs_distinct` distinct values — the per-entry match probability of
  /// an index probe.
  double PairSelectivity(const std::string& lhs_var, int lhs_pos,
                         CompareOp op, const std::string& rhs_var,
                         int rhs_pos, double rhs_distinct) const;

  /// Conjunction of monadic gates, evaluated left to right with
  /// short-circuiting (EvalGates).
  SelEstimate Gates(const std::vector<JoinTerm>& gates) const;

  /// Quantifier-free single-variable formula (extended-range restriction),
  /// mirroring EvalRestriction's short-circuit order.
  SelEstimate Restriction(const Formula& f) const;

  /// P(`x op w` holds for SOME/ALL w in a value list), where x is the
  /// component of `probe_var` at `probe_pos` and the list holds
  /// `list_count` values (with `list_distinct` distinct) drawn from
  /// `list_var`'s component at `list_pos`. An empty list answers SOME with
  /// false and ALL with true, like ValueList.
  double QuantProbe(CompareOp op, Quantifier q, const std::string& probe_var,
                    int probe_pos, const std::string& list_var, int list_pos,
                    double list_count, double list_distinct) const;

 private:
  const std::string& RelationOf(const std::string& var) const;
  /// P(x op y) for x from `a`, y from `b`, independent, with `db_distinct`
  /// overriding b's distinct count (e.g. a gated index's contents).
  double CrossColumn(const ColumnStats* a, double da, const ColumnStats* b,
                     double db_distinct, CompareOp op) const;

  const Database& db_;
  const StandardForm& sf_;
};

}  // namespace pascalr

#endif  // PASCALR_COST_SELECTIVITY_H_
