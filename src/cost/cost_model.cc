#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "base/counters.h"
#include "base/math_util.h"
#include "base/str_util.h"
#include "cost/selectivity.h"
#include "exec/collection.h"
#include "pipeline/compile.h"
#include "joinorder/heuristics.h"
#include "pipeline/shape.h"

namespace pascalr {

namespace {

double Log2Of(double x) { return std::log2(std::max(2.0, x)); }

class CostWalker {
 public:
  CostWalker(const QueryPlan& plan, const Database& db)
      : plan_(plan), db_(db), sel_(db, plan.sf) {}

  CostEstimate Run(const CollectionCost* reuse = nullptr) {
    if (reuse != nullptr && reuse->valid &&
        reuse->structure_rows.size() == plan_.structures.size() &&
        reuse->index_rows.size() == plan_.indexes.size() &&
        reuse->vl_count.size() == plan_.value_lists.size()) {
      LoadCollection(*reuse);
    } else {
      Prepare();
    }
    WalkCombination();
    WalkPipelined();
    return Finish();
  }

  /// Collection-phase walk only: the per-structure estimates the
  /// join-order optimizer plans over. When `save` is non-null the walk
  /// state is stored for a later Run(reuse) to resume from.
  std::vector<EstRel> StructureEstimates(CollectionCost* save = nullptr) {
    Prepare();
    std::vector<EstRel> out(plan_.structures.size());
    for (size_t i = 0; i < plan_.structures.size(); ++i) {
      out[i].rows = structure_rows_[i];
      for (const std::string& col : plan_.structures[i].columns) {
        out[i].distinct[col] =
            std::min(out[i].rows, std::max(0.0, sel_.RangeSize(col)));
      }
    }
    if (save != nullptr) {
      SaveCollection(save);
      save->structures = out;
    }
    return out;
  }

 private:
  void LoadCollection(const CollectionCost& saved) {
    structure_rows_ = saved.structure_rows;
    index_rows_ = saved.index_rows;
    index_distinct_ = saved.index_distinct;
    vl_count_ = saved.vl_count;
    vl_distinct_ = saved.vl_distinct;
    borrowed_.assign(saved.borrowed.begin(), saved.borrowed.end());
    relations_read_ = saved.relations_read;
    elements_scanned_ = saved.elements_scanned;
    index_probes_ = saved.index_probes;
    single_list_refs_ = saved.single_list_refs;
    indirect_join_refs_ = saved.indirect_join_refs;
    quantifier_probes_ = saved.quantifier_probes;
    comparisons_ = saved.comparisons;
    permanent_index_hits_ = saved.permanent_index_hits;
    extra_cost_ = saved.extra_cost;
  }

  void SaveCollection(CollectionCost* out) const {
    out->valid = true;
    out->structure_rows = structure_rows_;
    out->index_rows = index_rows_;
    out->index_distinct = index_distinct_;
    out->vl_count = vl_count_;
    out->vl_distinct = vl_distinct_;
    out->borrowed.assign(borrowed_.begin(), borrowed_.end());
    out->relations_read = relations_read_;
    out->elements_scanned = elements_scanned_;
    out->index_probes = index_probes_;
    out->single_list_refs = single_list_refs_;
    out->indirect_join_refs = indirect_join_refs_;
    out->quantifier_probes = quantifier_probes_;
    out->comparisons = comparisons_;
    out->permanent_index_hits = permanent_index_hits_;
    out->extra_cost = extra_cost_;
  }

  void Prepare() {
    ++GlobalCompileCounters().collection_walks;
    structure_rows_.assign(plan_.structures.size(), 0.0);
    index_rows_.assign(plan_.indexes.size(), 0.0);
    index_distinct_.assign(plan_.indexes.size(), 1.0);
    vl_count_.assign(plan_.value_lists.size(), 0.0);
    vl_distinct_.assign(plan_.value_lists.size(), 0.0);
    borrowed_.assign(plan_.indexes.size(), false);
    for (const IndexBuildSpec& spec : plan_.indexes) {
      borrowed_[spec.id] = IndexBorrowsPermanent(plan_, db_, spec);
    }
    WalkCollection();
  }
  // ----------------------------------------------------------- collection

  void WalkCollection() {
    for (const RelationScan& scan : plan_.scans) {
      relations_read_ += 1.0;
      double n = sel_.Cardinality(scan.relation);
      elements_scanned_ += n;
      for (const ScanAction& action : scan.actions) {
        WalkAction(action, n);
      }
    }
    for (const PostScanProbe& probe : plan_.post_probes) {
      // The post-scan pass iterates the variable's already-restricted
      // materialised range.
      double pass = sel_.RangeSize(probe.var);
      elements_scanned_ += pass;
      WalkIjEmit(probe.emit, probe.var, pass);
    }
  }

  void WalkAction(const ScanAction& action, double n) {
    double pass = n;
    const QuantifiedVar* qv = plan_.sf.FindVar(action.var);
    if (qv != nullptr && qv->range.IsExtended()) {
      SelEstimate rest = sel_.Restriction(*qv->range.restriction);
      comparisons_ += n * rest.comparisons;
      pass = n * rest.selectivity;
    }

    for (const SingleListEmit& emit : action.single_lists) {
      SelEstimate g = sel_.Gates(emit.gates);
      comparisons_ += pass * g.comparisons;
      double emitted = pass * g.selectivity;
      single_list_refs_ += emitted;
      structure_rows_[emit.structure_id] += emitted;
    }

    for (size_t index_id : action.index_builds) {
      const IndexBuildSpec& spec = plan_.indexes[index_id];
      if (borrowed_[index_id]) {
        permanent_index_hits_ += 1.0;
        double full = sel_.Cardinality(RelationOf(spec.var));
        index_rows_[index_id] = full;
        index_distinct_[index_id] =
            std::max(1.0, sel_.ColumnDistinct(spec.var, spec.component_pos));
        continue;
      }
      SelEstimate g = sel_.Gates(spec.gates);
      comparisons_ += pass * g.comparisons;
      double rows = pass * g.selectivity;
      index_rows_[index_id] = rows;
      index_distinct_[index_id] = std::max(
          1.0,
          DistinctAfterSelection(
              sel_.ColumnDistinct(spec.var, spec.component_pos),
              sel_.Cardinality(RelationOf(spec.var)), rows));
      // Build effort is not an ExecStats counter; nudge the ranking so a
      // pointless ordered index never beats a hash index.
      extra_cost_ += rows * (spec.ordered ? 0.25 * Log2Of(rows) : 0.1);
    }

    for (size_t vl_id : action.value_list_builds) {
      const ValueListSpec& spec = plan_.value_lists[vl_id];
      SelEstimate g = sel_.Gates(spec.gates);
      comparisons_ += pass * g.comparisons;
      double passing = pass * g.selectivity;
      for (const QuantProbeGate& gate : spec.probe_gates) {
        quantifier_probes_ += passing;
        passing *= ProbeSelectivity(gate, spec.var);
      }
      vl_count_[vl_id] = passing;
      vl_distinct_[vl_id] = std::max(
          passing > 0.0 ? 1.0 : 0.0,
          DistinctAfterSelection(
              sel_.ColumnDistinct(spec.var, spec.component_pos),
              sel_.Cardinality(RelationOf(spec.var)), passing));
    }

    for (const IndirectJoinEmit& emit : action.ij_emits) {
      WalkIjEmit(emit, action.var, pass);
    }

    for (const QuantProbeEmit& emit : action.quant_probes) {
      SelEstimate g = sel_.Gates(emit.gates);
      comparisons_ += pass * g.comparisons;
      double passing = pass * g.selectivity;
      quantifier_probes_ += passing;
      double holds = passing * ProbeSelectivity(emit.probe, action.var);
      single_list_refs_ += holds;
      structure_rows_[emit.structure_id] += holds;
    }
  }

  void WalkIjEmit(const IndirectJoinEmit& emit, const std::string& var,
                  double pass) {
    SelEstimate g = sel_.Gates(emit.gates);
    comparisons_ += pass * g.comparisons;
    double candidates = pass * g.selectivity;
    // Mutual restriction checks short-circuit at the first empty co-probe.
    for (const ProbeCheck& check : emit.corestrictions) {
      index_probes_ += candidates;
      NudgeProbe(check.index_id, candidates);
      const IndexBuildSpec& far = plan_.indexes[check.index_id];
      candidates *= sel_.QuantProbe(
          check.op, Quantifier::kSome, var, check.probe_component_pos,
          far.var, far.component_pos, index_rows_[check.index_id],
          index_distinct_[check.index_id]);
    }
    index_probes_ += candidates;
    NudgeProbe(emit.index_id, candidates);

    const IndexBuildSpec& spec = plan_.indexes[emit.index_id];
    double pair_sel = sel_.PairSelectivity(
        var, emit.probe_component_pos, emit.op, spec.var, spec.component_pos,
        std::max(1.0, index_distinct_[emit.index_id]));
    double pairs = candidates * index_rows_[emit.index_id] * pair_sel;
    indirect_join_refs_ += 2.0 * pairs;
    structure_rows_[emit.structure_id] += pairs;
  }

  double ProbeSelectivity(const QuantProbeGate& probe,
                          const std::string& probe_var) {
    const ValueListSpec& vl = plan_.value_lists[probe.value_list_id];
    return sel_.QuantProbe(probe.op, probe.quantifier, probe_var,
                           probe.probe_component_pos, vl.var,
                           vl.component_pos, vl_count_[probe.value_list_id],
                           vl_distinct_[probe.value_list_id]);
  }

  void NudgeProbe(size_t index_id, double probes) {
    // Borrowed permanent indexes ignore the spec's ordered flag, so only
    // genuinely transient B+trees pay the log probe factor.
    if (plan_.indexes[index_id].ordered && !borrowed_[index_id]) {
      extra_cost_ += probes * 0.25 * Log2Of(index_rows_[index_id]);
    }
  }

  const std::string& RelationOf(const std::string& var) const {
    return plan_.sf.vars.at(var).relation_name;
  }

  // ---------------------------------------------------------- combination

  static double CappedProduct(const EstRel& rel,
                              const std::string& skip = "") {
    double d = 1.0;
    for (const auto& [col, dc] : rel.distinct) {
      if (col == skip) continue;
      d = std::min(1e18, d * std::max(1.0, dc));
    }
    return d;
  }

  /// Distinct rows after projecting `rows` draws onto a key space of size
  /// `domain` (the occupancy estimate used for Project / grouping).
  static double ProjectedRows(double rows, double domain) {
    if (rows <= 0.0 || domain <= 0.0) return 0.0;
    double out = domain * (1.0 - std::exp(-rows / domain));
    return std::min(out, rows);
  }

  /// Costs an explicit join tree: every internal node contributes its
  /// JoinEstimate rows to combination_rows, exactly what the executor's
  /// NaturalJoin would materialise running the same tree. `base_live` is
  /// the modeled row count already held live outside the tree (the union
  /// accumulator) — intermediate peaks note it.
  EstRel WalkJoinTree(const JoinTree& tree, const std::vector<EstRel>& inputs,
                      double base_live) {
    std::vector<EstRel> node_est(tree.nodes.size());
    for (size_t i = 0; i < tree.nodes.size(); ++i) {
      const JoinTreeNode& node = tree.nodes[i];
      if (node.leaf) {
        node_est[i] = inputs[node.input];
        continue;
      }
      const EstRel& l = node_est[static_cast<size_t>(node.left)];
      node_est[i] = JoinEstimate(l, node_est[static_cast<size_t>(node.right)]);
      combination_rows_ += node_est[i].rows;
      // Mirror the executor's PeakTracker: collection structures (leaf
      // children) are never tracked, joined intermediates are live until
      // their parent consumes them.
      double children_live = 0.0;
      if (!tree.nodes[static_cast<size_t>(node.left)].leaf) {
        children_live += l.rows;
      }
      if (!tree.nodes[static_cast<size_t>(node.right)].leaf) {
        children_live += node_est[static_cast<size_t>(node.right)].rows;
      }
      NoteMatPeak(base_live + children_live + node_est[i].rows);
    }
    return node_est.back();
  }

  void NoteMatPeak(double live) {
    mat_peak_ = std::max(mat_peak_, std::min(live, 1e18));
  }

  void WalkCombination() {
    std::vector<QuantifiedVar> active;
    for (const QuantifiedVar& qv : plan_.sf.prefix) {
      if (!plan_.IsEliminated(qv.var)) active.push_back(qv.Clone());
    }
    std::vector<std::string> free_names;
    for (const QuantifiedVar& qv : active) {
      if (qv.quantifier == Quantifier::kFree) free_names.push_back(qv.var);
    }

    if (plan_.sf.matrix.IsFalse()) {
      final_rows_ = 0.0;
      return;
    }

    std::map<std::string, double> range_size;
    double capacity = 1.0;
    for (const QuantifiedVar& qv : active) {
      range_size[qv.var] = sel_.RangeSize(qv.var);
      capacity = std::min(1e18, capacity * std::max(1.0, range_size[qv.var]));
    }

    EstRel combined;  // starts empty with 0 rows
    for (size_t c = 0; c < plan_.sf.matrix.disjuncts.size(); ++c) {
      std::vector<EstRel> inputs;
      for (size_t id : plan_.conj_inputs[c]) {
        EstRel e;
        e.rows = structure_rows_[id];
        for (const std::string& col : plan_.structures[id].columns) {
          e.distinct[col] = std::min(e.rows, range_size[col]);
        }
        inputs.push_back(std::move(e));
      }
      EstRel acc;
      if (inputs.empty()) {
        acc.rows = 1.0;  // arity-0 unit relation: TRUE
      } else {
        // The plan's join tree when the optimizer attached one, otherwise
        // the executor's greedy smallest-first order.
        const JoinTree* tree = nullptr;
        if (c < plan_.join_trees.size() &&
            plan_.join_trees[c].Matches(inputs.size())) {
          tree = &plan_.join_trees[c];
        }
        JoinTree greedy;
        if (tree == nullptr) {
          greedy = GreedyJoinOrder(inputs);
          tree = &greedy;
        }
        acc = WalkJoinTree(*tree, inputs, combined.rows);
      }
      // Extend to all active variables by Cartesian product.
      for (const QuantifiedVar& qv : active) {
        if (acc.HasCol(qv.var)) continue;
        double before = acc.rows;
        acc.rows *= std::max(0.0, range_size[qv.var]);
        acc.distinct[qv.var] = std::min(range_size[qv.var], acc.rows);
        for (auto& [col, dc] : acc.distinct) dc = std::min(dc, acc.rows);
        combination_rows_ += acc.rows;
        NoteMatPeak(combined.rows + before + acc.rows);
      }
      // Align-project onto the active columns (a permutation).
      combination_rows_ += acc.rows;
      NoteMatPeak(combined.rows + 2.0 * acc.rows);
      // Union with the running result.
      double union_rows = std::min(combined.rows + acc.rows, capacity);
      combination_rows_ += union_rows;
      NoteMatPeak(combined.rows + acc.rows + union_rows);
      EstRel next;
      next.rows = union_rows;
      for (const QuantifiedVar& qv : active) {
        double a = combined.HasCol(qv.var) ? combined.distinct[qv.var] : 0.0;
        double b = acc.HasCol(qv.var) ? acc.distinct[qv.var] : 0.0;
        next.distinct[qv.var] = std::min(union_rows, std::max(a, b));
      }
      combined = std::move(next);
    }

    // Quantifiers right to left.
    for (size_t i = active.size(); i-- > 0;) {
      const QuantifiedVar& qv = active[i];
      if (qv.quantifier == Quantifier::kFree) break;
      if (qv.quantifier == Quantifier::kSome) {
        double domain = CappedProduct(combined, qv.var);
        double rows_out = ProjectedRows(combined.rows, domain);
        combination_rows_ += rows_out;
        NoteMatPeak(combined.rows + rows_out);
        combined.rows = rows_out;
        combined.distinct.erase(qv.var);
        for (auto& [col, dc] : combined.distinct) {
          dc = std::min(dc, rows_out);
        }
      } else {
        division_input_rows_ += combined.rows;
        if (plan_.division == DivisionAlgorithm::kSort) {
          extra_cost_ += combined.rows * 0.25 * Log2Of(combined.rows);
        }
        double divisor = std::max(1.0, range_size[qv.var]);
        double groups =
            ProjectedRows(combined.rows, CappedProduct(combined, qv.var));
        double per_group = groups > 0.0 ? combined.rows / groups : 0.0;
        double coverage = Clamp01(per_group / divisor);
        double qualifying =
            groups * std::pow(coverage, std::min(divisor, 32.0));
        combination_rows_ += qualifying;
        NoteMatPeak(combined.rows + qualifying);
        combined.rows = qualifying;
        combined.distinct.erase(qv.var);
        for (auto& [col, dc] : combined.distinct) {
          dc = std::min(dc, qualifying);
        }
      }
    }

    // Final projection onto the free variables (a permutation here).
    combination_rows_ += combined.rows;
    NoteMatPeak(2.0 * combined.rows);
    final_rows_ = combined.rows;
  }

  /// Prices the streamed combination (src/pipeline/): joins emit without
  /// materialising, purely existential probes run as semi-joins (at most
  /// one emission per outer row) or skip their extension entirely, and
  /// only blocking buffers — the division input, the dedup sink, bushy
  /// builds — hold rows. Mirrors the executor's compile.cc decisions via
  /// the shared shape analysis.
  void WalkPipelined() {
    // Saved for the TTFT estimate: LazyConjunctionLeafModes reuses this
    // analysis instead of recomputing it per candidate.
    pipeline_shape_ = AnalyzePipelineShape(plan_);
    const PipelineShape& shape = pipeline_shape_;
    has_division_ = shape.has_division;
    if (plan_.sf.matrix.IsFalse()) return;

    std::map<std::string, double> range_size;
    for (const QuantifiedVar& qv : shape.active) {
      range_size[qv.var] = sel_.RangeSize(qv.var);
    }

    double comb = 0.0;           // streamed combination_rows
    double division_in = 0.0;    // pipelined division input rows
    double buffers = 0.0;        // bushy-build rows held live
    double rows_to_sink = 0.0;   // pre-dedup rows reaching the sink/buffer
    EstRel sink;                 // distinct-count view of the sink columns
    for (const std::string& col : shape.needed) sink.distinct[col] = 0.0;

    for (size_t c = 0; c < plan_.sf.matrix.disjuncts.size(); ++c) {
      std::vector<EstRel> inputs;
      std::vector<std::vector<std::string>> input_cols;
      for (size_t id : plan_.conj_inputs[c]) {
        EstRel e;
        e.rows = structure_rows_[id];
        for (const std::string& col : plan_.structures[id].columns) {
          e.distinct[col] = std::min(e.rows, range_size.count(col) > 0
                                                 ? range_size[col]
                                                 : e.rows);
        }
        inputs.push_back(std::move(e));
        input_cols.push_back(plan_.structures[id].columns);
      }
      EstRel acc;
      if (inputs.empty()) {
        acc.rows = 1.0;
      } else {
        const JoinTree* tree = nullptr;
        if (c < plan_.join_trees.size() &&
            plan_.join_trees[c].Matches(inputs.size())) {
          tree = &plan_.join_trees[c];
        }
        JoinTree greedy;
        if (tree == nullptr) {
          greedy = GreedyJoinOrder(inputs);
          tree = &greedy;
        }
        std::vector<bool> semi = SemiJoinEligible(*tree, input_cols, shape);
        std::vector<EstRel> node_est(tree->nodes.size());
        for (size_t i = 0; i < tree->nodes.size(); ++i) {
          const JoinTreeNode& node = tree->nodes[i];
          if (node.leaf) {
            node_est[i] = inputs[node.input];
            continue;
          }
          const EstRel& l = node_est[static_cast<size_t>(node.left)];
          const EstRel& r = node_est[static_cast<size_t>(node.right)];
          if (!tree->nodes[static_cast<size_t>(node.right)].leaf) {
            buffers += r.rows;  // bushy build: blocking, buffered
          }
          EstRel est = JoinEstimate(l, r);
          if (semi[i]) {
            // EXISTS-style probe: at most one emission per outer row, and
            // the right side's existential columns are dropped.
            est.rows = std::min(est.rows, l.rows);
            for (const auto& [col, dc] : r.distinct) {
              (void)dc;
              if (!l.HasCol(col)) est.distinct.erase(col);
            }
            for (auto& [col, dc] : est.distinct) dc = std::min(dc, est.rows);
          }
          comb += est.rows;
          node_est[i] = std::move(est);
        }
        acc = node_est.back();
      }
      // Extension: needed variables only; purely existential ones are
      // witnessed by semi-joins or a non-empty range instead.
      for (const QuantifiedVar& qv : shape.active) {
        if (acc.HasCol(qv.var)) continue;
        if (shape.IsExistential(qv.var)) {
          if (range_size[qv.var] <= 0.0) acc.rows = 0.0;  // annihilated
          continue;
        }
        acc.rows *= std::max(0.0, range_size[qv.var]);
        acc.distinct[qv.var] = std::min(range_size[qv.var], acc.rows);
        for (auto& [col, dc] : acc.distinct) dc = std::min(dc, acc.rows);
        comb += acc.rows;
      }
      // Projection onto the needed layout (streamed, no dedup). Chains
      // already emitting exactly the needed columns skip the copy in
      // compile.cc; mirror that (column order is invisible here, so this
      // is the optimistic estimate).
      bool aligned = acc.distinct.size() == shape.needed.size();
      for (const std::string& col : shape.needed) {
        aligned = aligned && acc.HasCol(col);
      }
      if (!aligned) comb += acc.rows;
      rows_to_sink += acc.rows;
      for (const std::string& col : shape.needed) {
        if (acc.HasCol(col)) {
          sink.distinct[col] = std::max(sink.distinct[col],
                                        acc.distinct[col]);
        }
      }
    }

    sink.rows = ProjectedRows(rows_to_sink, CappedProduct(sink));
    double pipe_peak = buffers;
    double final_rows = sink.rows;
    if (shape.has_division) {
      comb += sink.rows;  // buffer Adds (set semantics)
      EstRel cur = sink;
      double live = cur.rows;
      for (size_t i = shape.tail.size(); i-- > 0;) {
        const QuantifiedVar& qv = shape.tail[i];
        if (qv.quantifier == Quantifier::kFree) break;
        double rows_out;
        if (qv.quantifier == Quantifier::kSome) {
          rows_out = ProjectedRows(cur.rows, CappedProduct(cur, qv.var));
        } else {
          division_in += cur.rows;
          double divisor = std::max(1.0, range_size[qv.var]);
          double groups =
              ProjectedRows(cur.rows, CappedProduct(cur, qv.var));
          double per_group = groups > 0.0 ? cur.rows / groups : 0.0;
          double coverage = Clamp01(per_group / divisor);
          rows_out = groups * std::pow(coverage, std::min(divisor, 32.0));
        }
        comb += rows_out;
        pipe_peak = std::max(pipe_peak, buffers + cur.rows + rows_out);
        cur.rows = rows_out;
        cur.distinct.erase(qv.var);
        for (auto& [col, dc] : cur.distinct) dc = std::min(dc, rows_out);
        live = rows_out;
      }
      comb += live;  // final projection onto the free variables
      pipe_peak = std::max(pipe_peak, buffers + 2.0 * live);
      final_rows = live;
    } else {
      comb += sink.rows;  // dedup-sink emissions
      pipe_peak = std::max(pipe_peak, buffers + sink.rows);
    }

    pipelined_combination_rows_ = comb;
    pipelined_division_rows_ = division_in;
    pipe_peak_ = pipe_peak;
    pipelined_final_rows_ = final_rows;
  }

  // --------------------------------------------------------------- finish

  CostEstimate Finish() {
    dereferences_ =
        final_rows_ * static_cast<double>(plan_.sf.projection.size());

    CostEstimate est;
    // Blow-up candidates (uncapped Cartesian estimates) can exceed the
    // int64 domain where llround is undefined; saturate instead.
    auto round = [](double x) {
      constexpr double kMaxCounter = 9.0e18;
      return static_cast<uint64_t>(
          std::llround(std::min(std::max(0.0, x), kMaxCounter)));
    };
    est.predicted.relations_read = round(relations_read_);
    est.predicted.elements_scanned = round(elements_scanned_);
    est.predicted.index_probes = round(index_probes_);
    est.predicted.single_list_refs = round(single_list_refs_);
    est.predicted.indirect_join_refs = round(indirect_join_refs_);
    est.predicted.combination_rows = round(combination_rows_);
    est.predicted.division_input_rows = round(division_input_rows_);
    est.predicted.quantifier_probes = round(quantifier_probes_);
    est.predicted.comparisons = round(comparisons_);
    est.predicted.dereferences = round(dereferences_);
    est.predicted.permanent_index_hits = round(permanent_index_hits_);
    double work = elements_scanned_ + index_probes_ + single_list_refs_ +
                  indirect_join_refs_ + combination_rows_ +
                  division_input_rows_ + quantifier_probes_ + comparisons_ +
                  dereferences_;
    est.weighted_cost = work + extra_cost_;
    est.pipelined_combination_rows = pipelined_combination_rows_;
    // Per-batch drain term: one unit per root chunk refill. At the
    // default 1024-row chunks this is noise; at SET BATCH 1 it restores
    // the full per-row pull overhead the vectorized drain amortises.
    const double batch =
        static_cast<double>(plan_.batch_size > 0 ? plan_.batch_size : 1);
    est.est_batches = std::ceil(pipelined_final_rows_ / batch);
    est.pipelined_total_work =
        work - combination_rows_ - division_input_rows_ - dereferences_ +
        pipelined_combination_rows_ + pipelined_division_rows_ +
        pipelined_final_rows_ *
            static_cast<double>(plan_.sf.projection.size()) +
        est.est_batches;
    est.pipelined_weighted_cost = est.pipelined_total_work + extra_cost_;
    est.est_peak_materialized = mat_peak_;
    est.est_peak_pipelined = pipe_peak_;
    est.est_time_to_first_tuple = EstimateTimeToFirstTuple(work, est);
    return est;
  }

  /// Work before the first tuple, for the mode this plan executes. Coarse
  /// by design — it ranks policies and feeds bench/EXPLAIN, it is not a
  /// counter prediction.
  double EstimateTimeToFirstTuple(double mat_work,
                                  const CostEstimate& est) const {
    const double proj = static_cast<double>(plan_.sf.projection.size());
    if (!plan_.pipeline) {
      // Collection + combination complete before the first construction.
      return std::max(0.0, mat_work - dereferences_) + proj;
    }
    // A surviving ALL buffers the whole stream before the first row can
    // leave the tail: no policy streams past it.
    if (has_division_) {
      return std::max(0.0, est.pipelined_total_work - dereferences_) + proj;
    }
    const double collection_work = elements_scanned_ + index_probes_ +
                                   single_list_refs_ + indirect_join_refs_ +
                                   quantifier_probes_ + comparisons_;
    const double inputs0 = plan_.conj_inputs.empty()
                               ? 0.0
                               : static_cast<double>(plan_.conj_inputs[0].size());
    if (plan_.collection == CollectionPolicy::kEager) {
      return collection_work + inputs0 + 1.0 + proj;
    }
    // Lazy: the first conjunction demands its builds only — keyed /
    // streamed leaves pay one element evaluation per probe, deferred
    // ones their full build; supporting indexes always build in full.
    // LazyConjunctionLeafModes mirrors the lowering, so a keyed-capable
    // structure the join cannot actually probe on its keyed column is
    // priced at its full build, not the per-key shortcut.
    double lazy_work = 0.0;
    if (!plan_.conj_inputs.empty()) {
      std::vector<LazyLeafMode> leaf_modes =
          LazyConjunctionLeafModes(plan_, 0, pipeline_shape_);
      for (size_t k = 0; k < plan_.conj_inputs[0].size(); ++k) {
        if (leaf_modes[k] == LazyLeafMode::kDeferred) {
          lazy_work += structure_rows_[plan_.conj_inputs[0][k]];
        } else {
          lazy_work += 2.0;  // deref + gates for the first element/key
        }
      }
    }
    for (size_t i = 0; i < index_rows_.size(); ++i) {
      if (!borrowed_[i]) lazy_work += index_rows_[i];
    }
    for (double rows : vl_count_) lazy_work += rows;
    return lazy_work + inputs0 + 1.0 + proj;
  }

  const QueryPlan& plan_;
  const Database& db_;
  SelectivityEstimator sel_;

  double relations_read_ = 0.0;
  double elements_scanned_ = 0.0;
  double index_probes_ = 0.0;
  double single_list_refs_ = 0.0;
  double indirect_join_refs_ = 0.0;
  double combination_rows_ = 0.0;
  double division_input_rows_ = 0.0;
  double quantifier_probes_ = 0.0;
  double comparisons_ = 0.0;
  double dereferences_ = 0.0;
  double permanent_index_hits_ = 0.0;
  double extra_cost_ = 0.0;
  double final_rows_ = 0.0;
  double mat_peak_ = 0.0;
  double pipe_peak_ = 0.0;
  bool has_division_ = false;
  PipelineShape pipeline_shape_;
  double pipelined_combination_rows_ = 0.0;
  double pipelined_division_rows_ = 0.0;
  double pipelined_final_rows_ = 0.0;

  std::vector<double> structure_rows_;
  std::vector<double> index_rows_;
  std::vector<double> index_distinct_;
  std::vector<double> vl_count_;
  std::vector<double> vl_distinct_;
  std::vector<bool> borrowed_;
};

}  // namespace

bool IndexBorrowsPermanent(const QueryPlan& plan, const Database& db,
                           const IndexBuildSpec& spec) {
  if (!spec.try_permanent || !spec.gates.empty()) return false;
  auto it = plan.sf.vars.find(spec.var);
  if (it == plan.sf.vars.end() || it->second.relation == nullptr) {
    return false;
  }
  const Schema& schema = it->second.relation->schema();
  if (spec.component_pos < 0 ||
      static_cast<size_t>(spec.component_pos) >= schema.num_components()) {
    return false;
  }
  return db.FindFreshIndex(
             it->second.relation_name,
             schema.component(static_cast<size_t>(spec.component_pos))
                 .name) != nullptr;
}

std::string CostEstimate::ToString() const {
  return StrFormat("estimated work %llu (weighted %.0f): %s",
                   static_cast<unsigned long long>(predicted.TotalWork()),
                   weighted_cost, predicted.ToString().c_str());
}

CostEstimate EstimatePlanCost(const QueryPlan& plan, const Database& db,
                              const CollectionCost* reuse) {
  CostWalker walker(plan, db);
  return walker.Run(reuse);
}

std::vector<EstRel> EstimateStructureSizes(const QueryPlan& plan,
                                           const Database& db,
                                           CollectionCost* save) {
  CostWalker walker(plan, db);
  return walker.StructureEstimates(save);
}

}  // namespace pascalr
