#include "cost/selectivity.h"

#include <algorithm>
#include <cmath>

#include "base/math_util.h"

namespace pascalr {

namespace {

// Textbook fallbacks when a relation has no fresh statistics.
constexpr double kDefaultEq = 0.1;
constexpr double kDefaultRange = 1.0 / 3.0;

/// Midpoint (numeric rep) of histogram bucket `b`.
double BucketMid(const Histogram& h, size_t b) {
  double span = static_cast<double>(h.hi) - static_cast<double>(h.lo) + 1.0;
  double width = span / static_cast<double>(h.buckets.size());
  return static_cast<double>(h.lo) + (static_cast<double>(b) + 0.5) * width;
}

}  // namespace

BoundsDecision DecideByBounds(const Value& a_min, const Value& a_max,
                              const Value& b_min, const Value& b_max,
                              CompareOp op) {
  if (!a_min.SameKind(b_min)) return BoundsDecision::kUndecided;
  bool a_all_below = a_max.Compare(b_min) < 0;   // every x < every y
  bool b_all_below = b_max.Compare(a_min) < 0;   // every y < every x
  bool a_at_most = a_max.Compare(b_min) <= 0;    // every x <= every y
  bool b_at_most = b_max.Compare(a_min) <= 0;    // every y <= every x
  switch (op) {
    case CompareOp::kEq:
      if (a_all_below || b_all_below) return BoundsDecision::kAlwaysFalse;
      break;
    case CompareOp::kNe:
      if (a_all_below || b_all_below) return BoundsDecision::kAlwaysTrue;
      break;
    case CompareOp::kLt:
      if (a_all_below) return BoundsDecision::kAlwaysTrue;
      if (b_at_most) return BoundsDecision::kAlwaysFalse;
      break;
    case CompareOp::kLe:
      if (a_at_most) return BoundsDecision::kAlwaysTrue;
      if (b_all_below) return BoundsDecision::kAlwaysFalse;
      break;
    case CompareOp::kGt:
      if (b_all_below) return BoundsDecision::kAlwaysTrue;
      if (a_at_most) return BoundsDecision::kAlwaysFalse;
      break;
    case CompareOp::kGe:
      if (b_at_most) return BoundsDecision::kAlwaysTrue;
      if (a_all_below) return BoundsDecision::kAlwaysFalse;
      break;
  }
  return BoundsDecision::kUndecided;
}

double DistinctAfterSelection(double distinct, double rows, double kept) {
  if (distinct <= 0.0 || rows <= 0.0 || kept <= 0.0) return 0.0;
  if (kept >= rows) return distinct;
  // Yao: each distinct value (rows/distinct copies) survives with
  // probability 1 - (1 - kept/rows)^(rows/distinct).
  double per_value = rows / distinct;
  return distinct * (1.0 - std::pow(1.0 - kept / rows, per_value));
}

const std::string& SelectivityEstimator::RelationOf(
    const std::string& var) const {
  return sf_.vars.at(var).relation_name;
}

double SelectivityEstimator::Cardinality(const std::string& relation) const {
  if (const RelationStats* stats = db_.FindFreshStats(relation)) {
    return static_cast<double>(stats->cardinality);
  }
  const Relation* rel = db_.FindRelation(relation);
  return rel == nullptr ? 0.0 : static_cast<double>(rel->cardinality());
}

const ColumnStats* SelectivityEstimator::Stats(const std::string& var,
                                               int pos) const {
  if (pos < 0) return nullptr;
  auto it = sf_.vars.find(var);
  if (it == sf_.vars.end()) return nullptr;
  const RelationStats* stats = db_.FindFreshStats(it->second.relation_name);
  if (stats == nullptr ||
      static_cast<size_t>(pos) >= stats->columns.size()) {
    return nullptr;
  }
  return &stats->columns[static_cast<size_t>(pos)];
}

double SelectivityEstimator::ColumnDistinct(const std::string& var,
                                            int pos) const {
  const ColumnStats* col = Stats(var, pos);
  if (col != nullptr) return static_cast<double>(col->distinct);
  return std::max(1.0, Cardinality(RelationOf(var)));
}

double SelectivityEstimator::RangeSize(const std::string& var) const {
  const QuantifiedVar* qv = sf_.FindVar(var);
  double n = Cardinality(RelationOf(var));
  if (qv == nullptr || !qv->range.IsExtended()) return n;
  return n * Restriction(*qv->range.restriction).selectivity;
}

double SelectivityEstimator::Monadic(const JoinTerm& term) const {
  JoinTerm t = term.lhs.is_literal() ? term.Mirrored() : term;
  if (t.lhs.is_literal()) {
    // Literal vs literal: decided outright.
    return t.lhs.literal.SameKind(t.rhs.literal) &&
                   t.lhs.literal.Satisfies(t.op, t.rhs.literal)
               ? 1.0
               : 0.0;
  }
  const ColumnStats* lhs = Stats(t.lhs.var, t.lhs.component_pos);
  if (t.rhs.is_literal()) {
    if (lhs != nullptr) return lhs->Selectivity(t.op, t.rhs.literal);
    return t.op == CompareOp::kEq
               ? kDefaultEq
               : (t.op == CompareOp::kNe ? 1.0 - kDefaultEq : kDefaultRange);
  }
  // Two components of the same element, e.g. t.tenr = t.tcnr: treat the
  // components as independent draws.
  const ColumnStats* rhs = Stats(t.rhs.var, t.rhs.component_pos);
  return CrossColumn(lhs, ColumnDistinct(t.lhs.var, t.lhs.component_pos), rhs,
                     ColumnDistinct(t.rhs.var, t.rhs.component_pos), t.op);
}

double SelectivityEstimator::DyadicPair(const JoinTerm& term) const {
  return PairSelectivity(term.lhs.var, term.lhs.component_pos, term.op,
                         term.rhs.var, term.rhs.component_pos,
                         ColumnDistinct(term.rhs.var,
                                        term.rhs.component_pos));
}

double SelectivityEstimator::PairSelectivity(const std::string& lhs_var,
                                             int lhs_pos, CompareOp op,
                                             const std::string& rhs_var,
                                             int rhs_pos,
                                             double rhs_distinct) const {
  return CrossColumn(Stats(lhs_var, lhs_pos),
                     ColumnDistinct(lhs_var, lhs_pos), Stats(rhs_var, rhs_pos),
                     rhs_distinct, op);
}

double SelectivityEstimator::CrossColumn(const ColumnStats* a, double da,
                                         const ColumnStats* b,
                                         double db_distinct,
                                         CompareOp op) const {
  if (a != nullptr && b != nullptr && a->has_min_max && b->has_min_max) {
    switch (DecideByBounds(a->min, a->max, b->min, b->max, op)) {
      case BoundsDecision::kAlwaysTrue:
        return 1.0;
      case BoundsDecision::kAlwaysFalse:
        return 0.0;
      case BoundsDecision::kUndecided:
        break;
    }
  }
  switch (op) {
    case CompareOp::kEq:
      return 1.0 / std::max(1.0, std::max(da, db_distinct));
    case CompareOp::kNe:
      return 1.0 - 1.0 / std::max(1.0, std::max(da, db_distinct));
    default:
      break;
  }
  // Range comparison: integrate a's histogram against b's cumulative
  // fractions (independence assumption).
  if (a != nullptr && b != nullptr && a->numeric && b->numeric &&
      !a->histogram.empty() && !b->histogram.empty()) {
    const Histogram& ha = a->histogram;
    double acc = 0.0;
    for (size_t i = 0; i < ha.buckets.size(); ++i) {
      if (ha.buckets[i] == 0) continue;
      double share = static_cast<double>(ha.buckets[i]) /
                     static_cast<double>(ha.total);
      int64_t mid = static_cast<int64_t>(std::llround(BucketMid(ha, i)));
      double p = 0.0;
      switch (op) {
        case CompareOp::kLt:  // P(y > mid)
          p = 1.0 - b->histogram.FractionLe(mid);
          break;
        case CompareOp::kLe:  // P(y >= mid)
          p = 1.0 - b->histogram.FractionLt(mid);
          break;
        case CompareOp::kGt:  // P(y < mid)
          p = b->histogram.FractionLt(mid);
          break;
        case CompareOp::kGe:  // P(y <= mid)
          p = b->histogram.FractionLe(mid);
          break;
        default:
          break;
      }
      acc += share * p;
    }
    return Clamp01(acc);
  }
  return kDefaultRange;
}

SelEstimate SelectivityEstimator::Gates(
    const std::vector<JoinTerm>& gates) const {
  SelEstimate out;
  double reach = 1.0;  // probability evaluation reaches this gate
  for (const JoinTerm& g : gates) {
    out.comparisons += reach;
    reach *= Monadic(g);
  }
  out.selectivity = reach;
  return out;
}

SelEstimate SelectivityEstimator::Restriction(const Formula& f) const {
  SelEstimate out;
  switch (f.kind()) {
    case FormulaKind::kConst:
      out.selectivity = f.const_value() ? 1.0 : 0.0;
      return out;
    case FormulaKind::kCompare:
      out.selectivity = Monadic(f.term());
      out.comparisons = 1.0;
      return out;
    case FormulaKind::kNot: {
      out = Restriction(f.child());
      out.selectivity = 1.0 - out.selectivity;
      return out;
    }
    case FormulaKind::kAnd: {
      double reach = 1.0;
      for (const FormulaPtr& c : f.children()) {
        SelEstimate child = Restriction(*c);
        out.comparisons += reach * child.comparisons;
        reach *= child.selectivity;
      }
      out.selectivity = reach;
      return out;
    }
    case FormulaKind::kOr: {
      double reach = 1.0;  // probability every previous disjunct failed
      for (const FormulaPtr& c : f.children()) {
        SelEstimate child = Restriction(*c);
        out.comparisons += reach * child.comparisons;
        reach *= 1.0 - child.selectivity;
      }
      out.selectivity = 1.0 - reach;
      return out;
    }
    case FormulaKind::kQuant:
      // Restrictions are quantifier-free by construction; EvalRestriction
      // answers false.
      out.selectivity = 0.0;
      return out;
  }
  return out;
}

double SelectivityEstimator::QuantProbe(CompareOp op, Quantifier q,
                                        const std::string& probe_var,
                                        int probe_pos,
                                        const std::string& list_var,
                                        int list_pos, double list_count,
                                        double list_distinct) const {
  if (list_count < 0.5) {
    // ValueList semantics on empty lists: SOME -> false, ALL -> true.
    return q == Quantifier::kSome ? 0.0 : 1.0;
  }
  const ColumnStats* probe = Stats(probe_var, probe_pos);
  const ColumnStats* list = Stats(list_var, list_pos);
  double d_probe = std::max(1.0, ColumnDistinct(probe_var, probe_pos));
  double d_list = std::max(1.0, std::min(list_distinct, list_count));

  // Column bounds can decide `x op w` for every possible pair — then the
  // quantifier is immaterial (the list is non-empty here). Bounds cover
  // the full source column, so conclusions stay valid for any gated
  // subset.
  if (probe != nullptr && list != nullptr && probe->has_min_max &&
      list->has_min_max) {
    switch (DecideByBounds(probe->min, probe->max, list->min, list->max, op)) {
      case BoundsDecision::kAlwaysTrue:
        return 1.0;
      case BoundsDecision::kAlwaysFalse:
        return 0.0;
      case BoundsDecision::kUndecided:
        break;
    }
  }

  // min/max of the list approximated by the source column's extremes.
  int64_t list_min = 0, list_max = 0;
  bool have_bounds = false;
  if (list != nullptr && list->numeric && list->has_min_max) {
    have_bounds = NumericValueRep(list->min, &list_min) &&
                  NumericValueRep(list->max, &list_max);
  }
  const Histogram* ph =
      (probe != nullptr && probe->numeric && !probe->histogram.empty())
          ? &probe->histogram
          : nullptr;

  auto some_eq = [&]() {
    // Containment: the list's distinct values sit inside the probe
    // column's domain.
    return Clamp01(d_list / d_probe);
  };

  switch (op) {
    case CompareOp::kEq:
      if (q == Quantifier::kSome) return some_eq();
      // ALL x = w: the list must be single-valued and x must hit it.
      return d_list <= 1.5 ? Clamp01(1.0 / d_probe) : 0.0;
    case CompareOp::kNe:
      if (q == Quantifier::kSome) {
        // Some list value differs from x — certain once the list has two
        // distinct values.
        return d_list >= 1.5 ? 1.0 : Clamp01(1.0 - 1.0 / d_probe);
      }
      // ALL x <> w: x avoids every list value.
      return Clamp01(1.0 - some_eq());
    case CompareOp::kLt:
      if (ph != nullptr && have_bounds) {
        return q == Quantifier::kSome ? ph->FractionLt(list_max)
                                      : ph->FractionLt(list_min);
      }
      break;
    case CompareOp::kLe:
      if (ph != nullptr && have_bounds) {
        return q == Quantifier::kSome ? ph->FractionLe(list_max)
                                      : ph->FractionLe(list_min);
      }
      break;
    case CompareOp::kGt:
      if (ph != nullptr && have_bounds) {
        return q == Quantifier::kSome
                   ? Clamp01(1.0 - ph->FractionLe(list_min))
                   : Clamp01(1.0 - ph->FractionLe(list_max));
      }
      break;
    case CompareOp::kGe:
      if (ph != nullptr && have_bounds) {
        return q == Quantifier::kSome
                   ? Clamp01(1.0 - ph->FractionLt(list_min))
                   : Clamp01(1.0 - ph->FractionLt(list_max));
      }
      break;
  }
  // No histogram: a SOME range probe usually succeeds against a sizeable
  // list; an ALL range probe usually does not.
  return q == Quantifier::kSome ? 2.0 / 3.0 : 1.0 / 3.0;
}

}  // namespace pascalr
