#include "refstruct/division.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "base/str_util.h"
#include "refstruct/ops.h"

namespace pascalr {

namespace {

struct GroupKeyHash {
  uint64_t operator()(const RefRow& row) const {
    uint64_t h = 0x84222325ULL;
    for (const Ref& r : row) h = HashCombine(h, r.Hash());
    return h;
  }
};

Result<RefRelation> DivideHash(const RefRelation& table, int var_pos,
                               const std::vector<Ref>& divisor,
                               ExecStats* stats) {
  std::vector<std::string> keep;
  for (size_t i = 0; i < table.columns().size(); ++i) {
    if (static_cast<int>(i) != var_pos) keep.push_back(table.columns()[i]);
  }
  RefRelation out(keep);

  std::unordered_set<Ref, RefHash> divisor_set(divisor.begin(), divisor.end());
  if (divisor_set.empty()) {
    // Vacuous truth: every projected row qualifies.
    for (const RefRow& row : table.rows()) {
      RefRow projected;
      for (size_t i = 0; i < row.size(); ++i) {
        if (static_cast<int>(i) != var_pos) projected.push_back(row[i]);
      }
      out.Add(std::move(projected));
    }
    return out;
  }

  // Group rows by the remaining columns; a group qualifies when it has
  // matched |divisor| distinct divisor refs.
  std::unordered_map<RefRow, std::unordered_set<Ref, RefHash>, GroupKeyHash>
      groups;
  for (const RefRow& row : table.rows()) {
    if (stats != nullptr) ++stats->division_input_rows;
    const Ref& v = row[static_cast<size_t>(var_pos)];
    if (divisor_set.find(v) == divisor_set.end()) continue;
    RefRow key;
    key.reserve(row.size() - 1);
    for (size_t i = 0; i < row.size(); ++i) {
      if (static_cast<int>(i) != var_pos) key.push_back(row[i]);
    }
    groups[std::move(key)].insert(v);
  }
  for (auto& [key, matched] : groups) {
    if (matched.size() == divisor_set.size()) {
      if (out.Add(key) && stats != nullptr) ++stats->combination_rows;
    }
  }
  return out;
}

Result<RefRelation> DivideSort(const RefRelation& table, int var_pos,
                               const std::vector<Ref>& divisor,
                               ExecStats* stats) {
  std::vector<std::string> keep;
  for (size_t i = 0; i < table.columns().size(); ++i) {
    if (static_cast<int>(i) != var_pos) keep.push_back(table.columns()[i]);
  }
  RefRelation out(keep);

  std::vector<Ref> sorted_divisor = divisor;
  std::sort(sorted_divisor.begin(), sorted_divisor.end());
  sorted_divisor.erase(
      std::unique(sorted_divisor.begin(), sorted_divisor.end()),
      sorted_divisor.end());
  if (sorted_divisor.empty()) {
    for (const RefRow& row : table.rows()) {
      RefRow projected;
      for (size_t i = 0; i < row.size(); ++i) {
        if (static_cast<int>(i) != var_pos) projected.push_back(row[i]);
      }
      out.Add(std::move(projected));
    }
    return out;
  }

  // Sort rows by (remaining columns, var column) and verify each group by
  // merging against the sorted divisor.
  std::vector<RefRow> rows = table.rows();
  auto cmp = [var_pos](const RefRow& a, const RefRow& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      if (static_cast<int>(i) == var_pos) continue;
      if (a[i] != b[i]) return a[i] < b[i];
    }
    return a[static_cast<size_t>(var_pos)] < b[static_cast<size_t>(var_pos)];
  };
  std::sort(rows.begin(), rows.end(), cmp);

  auto same_group = [var_pos](const RefRow& a, const RefRow& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      if (static_cast<int>(i) == var_pos) continue;
      if (a[i] != b[i]) return false;
    }
    return true;
  };

  size_t i = 0;
  while (i < rows.size()) {
    size_t j = i;
    size_t matched = 0;
    size_t d = 0;
    while (j < rows.size() && same_group(rows[i], rows[j])) {
      if (stats != nullptr) ++stats->division_input_rows;
      const Ref& v = rows[j][static_cast<size_t>(var_pos)];
      while (d < sorted_divisor.size() && sorted_divisor[d] < v) ++d;
      if (d < sorted_divisor.size() && sorted_divisor[d] == v) {
        ++matched;
        ++d;
      }
      ++j;
    }
    if (matched == sorted_divisor.size()) {
      RefRow projected;
      for (size_t k = 0; k < rows[i].size(); ++k) {
        if (static_cast<int>(k) != var_pos) projected.push_back(rows[i][k]);
      }
      if (out.Add(std::move(projected)) && stats != nullptr) {
        ++stats->combination_rows;
      }
    }
    i = j;
  }
  return out;
}

}  // namespace

Result<RefRelation> Divide(const RefRelation& table, const std::string& var,
                           const std::vector<Ref>& divisor, ExecStats* stats,
                           DivisionAlgorithm algorithm) {
  int var_pos = table.ColumnIndex(var);
  if (var_pos < 0) {
    return Status::InvalidArgument("division variable '" + var +
                                   "' is not a column of the table");
  }
  switch (algorithm) {
    case DivisionAlgorithm::kHash:
      return DivideHash(table, var_pos, divisor, stats);
    case DivisionAlgorithm::kSort:
      return DivideSort(table, var_pos, divisor, stats);
  }
  return Status::Internal("unknown division algorithm");
}

}  // namespace pascalr
