#include "refstruct/ops.h"

#include <unordered_map>

#include "base/logging.h"
#include "base/str_util.h"

namespace pascalr {

namespace {

uint64_t HashKey(const RefRow& row, const std::vector<int>& positions) {
  uint64_t h = 0x100001b3ULL;
  for (int p : positions) h = HashCombine(h, row[static_cast<size_t>(p)].Hash());
  return h;
}

bool KeyEquals(const RefRow& a, const std::vector<int>& pa, const RefRow& b,
               const std::vector<int>& pb) {
  for (size_t i = 0; i < pa.size(); ++i) {
    if (a[static_cast<size_t>(pa[i])] != b[static_cast<size_t>(pb[i])]) {
      return false;
    }
  }
  return true;
}

}  // namespace

RefRelation NaturalJoin(const RefRelation& a, const RefRelation& b,
                        ExecStats* stats) {
  // Shared columns and the positions of b's non-shared columns.
  std::vector<int> a_shared, b_shared;
  std::vector<int> b_extra;
  for (size_t i = 0; i < b.columns().size(); ++i) {
    int pos = a.ColumnIndex(b.columns()[i]);
    if (pos >= 0) {
      a_shared.push_back(pos);
      b_shared.push_back(static_cast<int>(i));
    } else {
      b_extra.push_back(static_cast<int>(i));
    }
  }

  std::vector<std::string> out_columns = a.columns();
  for (int i : b_extra) out_columns.push_back(b.columns()[static_cast<size_t>(i)]);
  RefRelation out(std::move(out_columns));

  // Build on the smaller side. For symmetry of output column order we
  // always emit a-row followed by b-extras; only the probe direction flips.
  const bool build_a = a.size() <= b.size();
  const RefRelation& build = build_a ? a : b;
  const RefRelation& probe = build_a ? b : a;
  const std::vector<int>& build_key = build_a ? a_shared : b_shared;
  const std::vector<int>& probe_key = build_a ? b_shared : a_shared;

  std::unordered_map<uint64_t, std::vector<size_t>> table;
  for (size_t i = 0; i < build.size(); ++i) {
    table[HashKey(build.row(i), build_key)].push_back(i);
  }
  for (size_t j = 0; j < probe.size(); ++j) {
    const RefRow& pr = probe.row(j);
    auto it = table.find(HashKey(pr, probe_key));
    if (it == table.end()) continue;
    for (size_t i : it->second) {
      const RefRow& br = build.row(i);
      if (!KeyEquals(br, build_key, pr, probe_key)) continue;
      const RefRow& a_row = build_a ? br : pr;
      const RefRow& b_row = build_a ? pr : br;
      RefRow row = a_row;
      row.reserve(row.size() + b_extra.size());
      for (int e : b_extra) row.push_back(b_row[static_cast<size_t>(e)]);
      if (out.Add(std::move(row)) && stats != nullptr) {
        ++stats->combination_rows;
      }
    }
  }
  return out;
}

RefRelation ProductWithRefs(const RefRelation& a, const std::string& var,
                            const std::vector<Ref>& refs, ExecStats* stats) {
  PASCALR_DCHECK(a.ColumnIndex(var) < 0) << "variable already bound";
  std::vector<std::string> out_columns = a.columns();
  out_columns.push_back(var);
  RefRelation out(std::move(out_columns));
  for (const RefRow& base : a.rows()) {
    for (const Ref& r : refs) {
      RefRow row = base;
      row.push_back(r);
      if (out.Add(std::move(row)) && stats != nullptr) {
        ++stats->combination_rows;
      }
    }
  }
  return out;
}

Result<RefRelation> UnionRows(const RefRelation& a, const RefRelation& b,
                              ExecStats* stats) {
  if (a.arity() != b.arity()) {
    return Status::InvalidArgument(
        StrFormat("union of ref relations with arity %zu and %zu", a.arity(),
                  b.arity()));
  }
  std::vector<int> realign;  // out column i comes from b column realign[i]
  for (const std::string& col : a.columns()) {
    int pos = b.ColumnIndex(col);
    if (pos < 0) {
      return Status::InvalidArgument("union operand lacks column '" + col +
                                     "'");
    }
    realign.push_back(pos);
  }
  RefRelation out(a.columns());
  for (const RefRow& row : a.rows()) {
    if (out.Add(row) && stats != nullptr) ++stats->combination_rows;
  }
  for (const RefRow& row : b.rows()) {
    RefRow aligned;
    aligned.reserve(row.size());
    for (int p : realign) aligned.push_back(row[static_cast<size_t>(p)]);
    if (out.Add(std::move(aligned)) && stats != nullptr) {
      ++stats->combination_rows;
    }
  }
  return out;
}

Result<RefRelation> Project(const RefRelation& a,
                            const std::vector<std::string>& keep,
                            ExecStats* stats) {
  std::vector<int> positions;
  for (const std::string& col : keep) {
    int pos = a.ColumnIndex(col);
    if (pos < 0) {
      return Status::InvalidArgument("projection on unknown column '" + col +
                                     "'");
    }
    positions.push_back(pos);
  }
  RefRelation out(keep);
  for (const RefRow& row : a.rows()) {
    RefRow projected;
    projected.reserve(positions.size());
    for (int p : positions) projected.push_back(row[static_cast<size_t>(p)]);
    if (out.Add(std::move(projected)) && stats != nullptr) {
      ++stats->combination_rows;
    }
  }
  return out;
}

}  // namespace pascalr
