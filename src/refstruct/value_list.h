// ValueList: the collection-phase quantifier structure of paper §4.4.
//
// When strategy 4 evaluates `Q vn IN rel (... vm.c op vn.c ...)` during the
// scan of vm's relation, it first materialises the *value list* of vn's
// joined component — or, per the paper's special cases, only a summary:
//
//   op in {<, <=}   SOME -> only the maximum matters;  ALL -> the minimum
//   op in {>, >=}   SOME -> only the minimum matters;  ALL -> the maximum
//   op = with ALL, op <> with SOME -> at most one distinct value matters
//   op = with SOME, op <> with ALL -> the full (hashed) value set
//
// Probes are phrased from the scanning side: x is vm's component value,
// and the question is "does x op w hold for SOME / ALL w in the list?".

#ifndef PASCALR_REFSTRUCT_VALUE_LIST_H_
#define PASCALR_REFSTRUCT_VALUE_LIST_H_

#include <string>
#include <unordered_set>

#include "base/status.h"
#include "calculus/ast.h"
#include "index/index.h"
#include "value/value.h"

namespace pascalr {

class ValueList {
 public:
  enum class Mode : uint8_t {
    kFull,      ///< hash set + min/max
    kMinOnly,   ///< O(1): minimum and count
    kMaxOnly,   ///< O(1): maximum and count
    kAtMostOne, ///< O(1): first distinct value + "saw a second" flag
  };

  explicit ValueList(Mode mode = Mode::kFull) : mode_(mode) {}

  /// The cheapest mode that can answer `x op w` probes under quantifier
  /// `q` (kSome or kAll).
  static Mode ModeFor(CompareOp op, Quantifier q);

  void Add(const Value& v);

  bool empty() const { return count_ == 0; }
  /// Number of Add() calls (not distinct values).
  size_t count() const { return count_; }
  /// Values actually retained — the storage the paper's special cases
  /// save; kFull returns the distinct count, summaries return <= 2.
  size_t stored_values() const;

  Mode mode() const { return mode_; }

  /// Does `x op w` hold for some w in the list? (false when empty).
  Result<bool> SatisfiesSome(CompareOp op, const Value& x) const;
  /// Does `x op w` hold for all w in the list? (true when empty).
  Result<bool> SatisfiesAll(CompareOp op, const Value& x) const;

  std::string DebugString() const;

 private:
  Status NeedFull(CompareOp op) const;

  Mode mode_;
  size_t count_ = 0;
  bool has_any_ = false;
  Value min_, max_;
  bool many_distinct_ = false;  ///< kAtMostOne: saw >= 2 distinct values
  Value the_one_;               ///< kAtMostOne: the single distinct value
  std::unordered_set<Value, ValueHash> values_;  ///< kFull
};

}  // namespace pascalr

#endif  // PASCALR_REFSTRUCT_VALUE_LIST_H_
