#include "refstruct/ref_relation.h"

#include "base/logging.h"
#include "base/str_util.h"

namespace pascalr {

int RefRelation::ColumnIndex(const std::string& var) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == var) return static_cast<int>(i);
  }
  return -1;
}

uint64_t RefRelation::HashRow(const RefRow& row) {
  uint64_t h = kRowHashSeed;
  for (const Ref& r : row) h = HashCombine(h, r.Hash());
  return h;
}

bool RefRelation::Add(RefRow row) {
  PASCALR_DCHECK(row.size() == columns_.size());
  uint64_t h = HashRow(row);
  auto it = index_.find(h);
  if (it != index_.end()) {
    for (size_t idx : it->second) {
      if (rows_[idx] == row) return false;
    }
  }
  index_[h].push_back(rows_.size());
  rows_.push_back(std::move(row));
  return true;
}

bool RefRelation::Contains(const RefRow& row) const {
  return ContainsPrehashed(HashRow(row), row);
}

bool RefRelation::ContainsPrehashed(uint64_t hash, const RefRow& row) const {
  auto it = index_.find(hash);
  if (it == index_.end()) return false;
  for (size_t idx : it->second) {
    if (rows_[idx] == row) return true;
  }
  return false;
}

void RefRelation::Clear() {
  rows_.clear();
  index_.clear();
}

std::string RefRelation::DebugString(size_t max_rows) const {
  std::string out = "(" + Join(columns_, ",") + ") {";
  for (size_t i = 0; i < rows_.size() && i < max_rows; ++i) {
    if (i > 0) out += ", ";
    std::vector<std::string> parts;
    for (const Ref& r : rows_[i]) parts.push_back(r.ToString());
    out += "<" + Join(parts, ",") + ">";
  }
  if (rows_.size() > max_rows) out += ", ...";
  out += StrFormat("} %zu rows", rows_.size());
  return out;
}

}  // namespace pascalr
