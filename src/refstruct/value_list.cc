#include "refstruct/value_list.h"

#include "base/str_util.h"

namespace pascalr {

ValueList::Mode ValueList::ModeFor(CompareOp op, Quantifier q) {
  switch (op) {
    case CompareOp::kLt:
    case CompareOp::kLe:
      return q == Quantifier::kAll ? Mode::kMinOnly : Mode::kMaxOnly;
    case CompareOp::kGt:
    case CompareOp::kGe:
      return q == Quantifier::kAll ? Mode::kMaxOnly : Mode::kMinOnly;
    case CompareOp::kEq:
      return q == Quantifier::kAll ? Mode::kAtMostOne : Mode::kFull;
    case CompareOp::kNe:
      return q == Quantifier::kAll ? Mode::kFull : Mode::kAtMostOne;
  }
  return Mode::kFull;
}

void ValueList::Add(const Value& v) {
  ++count_;
  if (!has_any_) {
    has_any_ = true;
    min_ = v;
    max_ = v;
    the_one_ = v;
  } else {
    if (v < min_) min_ = v;
    if (max_ < v) max_ = v;
    if (!many_distinct_ && v != the_one_) many_distinct_ = true;
  }
  if (mode_ == Mode::kFull) values_.insert(v);
}

size_t ValueList::stored_values() const {
  if (!has_any_) return 0;
  switch (mode_) {
    case Mode::kFull:
      return values_.size();
    case Mode::kMinOnly:
    case Mode::kMaxOnly:
      return 1;
    case Mode::kAtMostOne:
      return many_distinct_ ? 2 : 1;  // value + overflow marker
  }
  return 0;
}

Status ValueList::NeedFull(CompareOp op) const {
  if (mode_ == Mode::kFull) return Status::OK();
  return Status::Internal(
      StrFormat("value list in summary mode cannot answer '%s' probe",
                std::string(CompareOpToString(op)).c_str()));
}

Result<bool> ValueList::SatisfiesSome(CompareOp op, const Value& x) const {
  if (!has_any_) return false;  // SOME over the empty list
  switch (op) {
    case CompareOp::kEq:
      // exists w: x = w  <=>  x in list
      PASCALR_RETURN_IF_ERROR(NeedFull(op));
      return values_.count(x) > 0;
    case CompareOp::kNe:
      // exists w: x <> w  <=>  >=2 distinct values, or the single one != x
      if (mode_ != Mode::kAtMostOne && mode_ != Mode::kFull) {
        return NeedFull(op);
      }
      if (mode_ == Mode::kFull) {
        return values_.size() >= 2 || values_.count(x) == 0;
      }
      return many_distinct_ || the_one_ != x;
    case CompareOp::kLt:
      // exists w: x < w  <=>  x < max
      if (mode_ == Mode::kMinOnly) return NeedFull(op);
      return x < max_;
    case CompareOp::kLe:
      if (mode_ == Mode::kMinOnly) return NeedFull(op);
      return x.Compare(max_) <= 0;
    case CompareOp::kGt:
      // exists w: x > w  <=>  x > min
      if (mode_ == Mode::kMaxOnly) return NeedFull(op);
      return min_ < x;
    case CompareOp::kGe:
      if (mode_ == Mode::kMaxOnly) return NeedFull(op);
      return x.Compare(min_) >= 0;
  }
  return Status::Internal("unknown comparison operator");
}

Result<bool> ValueList::SatisfiesAll(CompareOp op, const Value& x) const {
  if (!has_any_) return true;  // ALL over the empty list (vacuous)
  switch (op) {
    case CompareOp::kEq:
      // all w: x = w  <=>  exactly one distinct value and it is x
      if (mode_ != Mode::kAtMostOne && mode_ != Mode::kFull) {
        return NeedFull(op);
      }
      if (mode_ == Mode::kFull) {
        return values_.size() == 1 && values_.count(x) > 0;
      }
      return !many_distinct_ && the_one_ == x;
    case CompareOp::kNe:
      // all w: x <> w  <=>  x not in list
      PASCALR_RETURN_IF_ERROR(NeedFull(op));
      return values_.count(x) == 0;
    case CompareOp::kLt:
      // all w: x < w  <=>  x < min
      if (mode_ == Mode::kMaxOnly) return NeedFull(op);
      return x < min_;
    case CompareOp::kLe:
      if (mode_ == Mode::kMaxOnly) return NeedFull(op);
      return x.Compare(min_) <= 0;
    case CompareOp::kGt:
      // all w: x > w  <=>  x > max
      if (mode_ == Mode::kMinOnly) return NeedFull(op);
      return max_ < x;
    case CompareOp::kGe:
      if (mode_ == Mode::kMinOnly) return NeedFull(op);
      return x.Compare(max_) >= 0;
  }
  return Status::Internal("unknown comparison operator");
}

std::string ValueList::DebugString() const {
  const char* mode_name = "";
  switch (mode_) {
    case Mode::kFull: mode_name = "full"; break;
    case Mode::kMinOnly: mode_name = "min"; break;
    case Mode::kMaxOnly: mode_name = "max"; break;
    case Mode::kAtMostOne: mode_name = "one"; break;
  }
  return StrFormat("value_list(mode=%s, added=%zu, stored=%zu)", mode_name,
                   count_, stored_values());
}

}  // namespace pascalr
