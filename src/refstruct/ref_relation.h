// RefRelation: a relation whose components are references (paper §3.2).
// Column names are query variable names; a row binds each variable to one
// element of its range relation.
//
//   SINGLE LIST    = RefRelation with one column   (monadic join term)
//   INDIRECT JOIN  = RefRelation with two columns  (dyadic join term)
//
// RefRelations have set semantics: duplicate rows collapse.

#ifndef PASCALR_REFSTRUCT_REF_RELATION_H_
#define PASCALR_REFSTRUCT_REF_RELATION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "storage/ref.h"

namespace pascalr {

using RefRow = std::vector<Ref>;

class RefRelation {
 public:
  RefRelation() = default;
  explicit RefRelation(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  /// Convenience constructors mirroring the paper's vocabulary.
  static RefRelation SingleList(std::string var) {
    return RefRelation({std::move(var)});
  }
  static RefRelation IndirectJoin(std::string var_a, std::string var_b) {
    return RefRelation({std::move(var_a), std::move(var_b)});
  }

  size_t arity() const { return columns_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  /// Position of the column bound to `var`, or -1.
  int ColumnIndex(const std::string& var) const;

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const std::vector<RefRow>& rows() const { return rows_; }
  const RefRow& row(size_t i) const { return rows_[i]; }

  /// Inserts a row (arity must match); duplicate rows are ignored.
  /// Returns true if the row was new.
  bool Add(RefRow row);

  bool Contains(const RefRow& row) const;

  /// Seed of the row hash, public so vectorized probers (the pipeline's
  /// membership filter) can bulk-compute compatible hashes column-wise.
  static constexpr uint64_t kRowHashSeed = 0x9ae16a3b2f90404fULL;

  /// Contains with a caller-computed hash: `hash` must be the fold of
  /// kRowHashSeed with each ref's Hash() in column order (what HashRow
  /// computes). Skips re-hashing on the per-row probe path.
  bool ContainsPrehashed(uint64_t hash, const RefRow& row) const;

  void Clear();

  /// Total refs stored (rows * arity) — the "size of intermediate
  /// structures" measure the paper's strategies minimise.
  size_t RefCount() const { return rows_.size() * columns_.size(); }

  std::string DebugString(size_t max_rows = 8) const;

 private:
  static uint64_t HashRow(const RefRow& row);

  std::vector<std::string> columns_;
  std::vector<RefRow> rows_;
  // Row hash -> indices of rows with that hash (collision chain).
  std::unordered_map<uint64_t, std::vector<size_t>> index_;
};

}  // namespace pascalr

#endif  // PASCALR_REFSTRUCT_REF_RELATION_H_
