// Relational algebra over reference relations — the combination-phase
// machinery of paper §3.3: natural join / Cartesian product to combine
// single lists and indirect joins into n-tuples of references, union for
// the disjunction, projection for SOME.
// Relational division (for ALL) lives in division.h.

#ifndef PASCALR_REFSTRUCT_OPS_H_
#define PASCALR_REFSTRUCT_OPS_H_

#include <vector>

#include "base/status.h"
#include "exec/stats.h"
#include "refstruct/ref_relation.h"

namespace pascalr {

/// Natural join on the columns the inputs share (hash join, the smaller
/// input builds). With no shared columns this degenerates to the Cartesian
/// product — the combinatorial step the paper's strategies fight.
/// Output columns: a's columns, then b's columns not in a.
RefRelation NaturalJoin(const RefRelation& a, const RefRelation& b,
                        ExecStats* stats);

/// Cartesian product of `a` with a plain set of refs bound to `var`
/// (used to extend a conjunction's tuple set to a variable it does not
/// reference; the full range ref list supplies the refs).
RefRelation ProductWithRefs(const RefRelation& a, const std::string& var,
                            const std::vector<Ref>& refs, ExecStats* stats);

/// Set union. `b`'s columns must be a permutation of `a`'s; rows are
/// realigned by name.
Result<RefRelation> UnionRows(const RefRelation& a, const RefRelation& b,
                              ExecStats* stats);

/// Projection onto `keep` (subset of a's columns, in the given order),
/// deduplicating rows. Existential quantification of var v == projection
/// removing v's column.
Result<RefRelation> Project(const RefRelation& a,
                            const std::vector<std::string>& keep,
                            ExecStats* stats);

}  // namespace pascalr

#endif  // PASCALR_REFSTRUCT_OPS_H_
