// Relational division — the combination-phase operation for universal
// quantification (paper §3.3, citing Codd):
//
//   Divide(T, var, D) = { t | T projected away var;
//                             forall r in D : (t, r) in T }
//
// i.e. a remaining-columns tuple survives iff it co-occurs with *every*
// element of the divisor D (the full — possibly extended — range of the
// universally quantified variable).
//
// Two algorithms are provided; bench_division compares them:
//  - hash division: group rows by the remaining columns, count distinct
//    divisor refs per group;
//  - sort division: sort rows, then verify each group by merge against the
//    sorted divisor.

#ifndef PASCALR_REFSTRUCT_DIVISION_H_
#define PASCALR_REFSTRUCT_DIVISION_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "exec/stats.h"
#include "refstruct/ref_relation.h"

namespace pascalr {

enum class DivisionAlgorithm { kHash, kSort };

/// Divides `table` by the divisor refs bound to column `var`.
/// The result drops the `var` column. An empty divisor yields all
/// projected rows (vacuous truth: ALL over the empty set holds) — callers
/// normally never reach this case because empty ranges trigger runtime
/// adaptation first, but division itself is total.
Result<RefRelation> Divide(const RefRelation& table, const std::string& var,
                           const std::vector<Ref>& divisor, ExecStats* stats,
                           DivisionAlgorithm algorithm = DivisionAlgorithm::kHash);

}  // namespace pascalr

#endif  // PASCALR_REFSTRUCT_DIVISION_H_
