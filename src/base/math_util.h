// Small numeric helpers shared by the statistics and cost layers.

#ifndef PASCALR_BASE_MATH_UTIL_H_
#define PASCALR_BASE_MATH_UTIL_H_

namespace pascalr {

/// Clamps a probability/fraction into [0, 1].
inline double Clamp01(double x) {
  return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x);
}

}  // namespace pascalr

#endif  // PASCALR_BASE_MATH_UTIL_H_
