// Lightweight logging and invariant-check macros.
//
// PASCALR_CHECK* abort the process with a diagnostic; they guard *internal*
// invariants only. API misuse is reported through Status, never through
// CHECK failures.
//
// Severity is filterable at runtime: SetMinLogSeverity(LogSeverity::kError)
// silences INFO and WARNING lines (kFatal always emits and aborts). The
// default threshold is kInfo — everything emits.

#ifndef PASCALR_BASE_LOGGING_H_
#define PASCALR_BASE_LOGGING_H_

#include <sstream>
#include <string>

namespace pascalr {

enum class LogSeverity { kInfo, kWarning, kError, kFatal };

/// Sets the minimum severity that actually emits; messages below it are
/// discarded. kFatal cannot be filtered — it always emits and aborts.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

/// Test hook: while `capture` is non-null, emitted messages are appended
/// to *capture instead of stderr. Pass nullptr to restore stderr.
void SetLogCaptureForTest(std::string* capture);

namespace internal {

/// Accumulates a message and emits it (to stderr) on destruction —
/// unless filtered by the runtime severity threshold.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pascalr

#define PASCALR_LOG_INFO                                  \
  ::pascalr::internal::LogMessage(                        \
      ::pascalr::LogSeverity::kInfo, __FILE__, __LINE__)  \
      .stream()
#define PASCALR_LOG_WARNING                                  \
  ::pascalr::internal::LogMessage(                           \
      ::pascalr::LogSeverity::kWarning, __FILE__, __LINE__)  \
      .stream()
#define PASCALR_LOG_ERROR                                  \
  ::pascalr::internal::LogMessage(                         \
      ::pascalr::LogSeverity::kError, __FILE__, __LINE__)  \
      .stream()
#define PASCALR_LOG_FATAL                                  \
  ::pascalr::internal::LogMessage(                         \
      ::pascalr::LogSeverity::kFatal, __FILE__, __LINE__)  \
      .stream()

#define PASCALR_CHECK(cond)                                      \
  if (!(cond)) PASCALR_LOG_FATAL << "Check failed: " #cond " "

#define PASCALR_CHECK_EQ(a, b) PASCALR_CHECK((a) == (b))
#define PASCALR_CHECK_NE(a, b) PASCALR_CHECK((a) != (b))
#define PASCALR_CHECK_LT(a, b) PASCALR_CHECK((a) < (b))
#define PASCALR_CHECK_LE(a, b) PASCALR_CHECK((a) <= (b))
#define PASCALR_CHECK_GT(a, b) PASCALR_CHECK((a) > (b))
#define PASCALR_CHECK_GE(a, b) PASCALR_CHECK((a) >= (b))

#ifndef NDEBUG
#define PASCALR_DCHECK(cond) PASCALR_CHECK(cond)
#else
#define PASCALR_DCHECK(cond) \
  if (false) PASCALR_LOG_FATAL << ""
#endif

#endif  // PASCALR_BASE_LOGGING_H_
