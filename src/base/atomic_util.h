// Named relaxed-atomic helpers. Raw `std::memory_order_relaxed` is easy
// to cargo-cult onto an operation that actually needs ordering, so the
// repo's convention — enforced by tools/lint_invariants.py — is:
//
//  - outside src/base/ and src/obs/, the bare token
//    `memory_order_relaxed` is banned; relaxed operations go through
//    these helpers, whose names state the intent at every call site;
//  - operations that DO carry ordering semantics keep their explicit
//    std::memory_order_acquire / _release arguments, which remain
//    allowed everywhere — needing ordering is the interesting case and
//    should stay loud.
//
// Relaxed is correct in exactly two situations in this engine, and the
// helpers exist for both:
//
//  1. Pure tallies (ConcurrencyCounters, compile counters, metrics):
//     monotonically merged totals where no reader infers the state of
//     any other memory from the value.
//  2. Values already ordered by an enclosing protocol: e.g. db_version
//     is mutated and snapshotted only under commit_mu, so the mutex —
//     not the atomic — provides the happens-before edge and the atomic
//     only serves unsynchronised monitoring reads.

#ifndef PASCALR_BASE_ATOMIC_UTIL_H_
#define PASCALR_BASE_ATOMIC_UTIL_H_

#include <atomic>

namespace pascalr {

/// Relaxed read: a tally or a protocol-ordered value; the load itself
/// synchronises nothing.
template <typename T>
inline T RelaxedLoad(const std::atomic<T>& a) {
  return a.load(std::memory_order_relaxed);
}

/// Relaxed write: publication (if any) is provided by an enclosing lock
/// or a later release store, never by this store.
template <typename T, typename U>
inline void RelaxedStore(std::atomic<T>& a, U value) {
  a.store(static_cast<T>(value), std::memory_order_relaxed);
}

/// Relaxed increment of a pure tally. Returns the PREVIOUS value (the
/// fetch_add convention).
template <typename T, typename U>
inline T RelaxedFetchAdd(std::atomic<T>& a, U delta) {
  return a.fetch_add(static_cast<T>(delta), std::memory_order_relaxed);
}

}  // namespace pascalr

#endif  // PASCALR_BASE_ATOMIC_UTIL_H_
