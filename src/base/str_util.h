// Small string helpers shared across modules.

#ifndef PASCALR_BASE_STR_UTIL_H_
#define PASCALR_BASE_STR_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pascalr {

/// Joins the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// ASCII lower-casing (the query language is case-insensitive on keywords).
std::string AsciiToLower(std::string_view s);

/// True if `s` equals `t` ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view s, std::string_view t);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// 64-bit FNV-1a, used for hash-combining tuple values.
inline uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed = 1469598103934665603ULL) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// Mixes a 64-bit value into a running hash (boost::hash_combine style).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace pascalr

#endif  // PASCALR_BASE_STR_UTIL_H_
