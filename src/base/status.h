// Status: exception-free error propagation in the style of LevelDB/RocksDB
// and Google's style guide (exceptions are not used in this codebase).

#ifndef PASCALR_BASE_STATUS_H_
#define PASCALR_BASE_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace pascalr {

/// Error categories used across the library. Keep this list short and
/// semantic: call sites branch on the code, humans read the message.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< caller passed something malformed
  kNotFound = 2,          ///< named entity (relation, component, key) absent
  kAlreadyExists = 3,     ///< duplicate key / duplicate declaration
  kTypeMismatch = 4,      ///< operands of a join term do not agree
  kParseError = 5,        ///< lexer/parser rejection, with position info
  kUnsupported = 6,       ///< recognised but deliberately not implemented
  kOutOfRange = 7,        ///< subrange or cardinality violation
  kInternal = 8,          ///< invariant breach: a bug in pascalr itself
};

/// Returns a stable human-readable name ("NotFound") for a code.
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation: either OK or a code plus message.
///
/// The common idiom:
///
///   Status s = relation->Insert(tuple);
///   if (!s.ok()) return s;
///
/// or via the PASCALR_RETURN_IF_ERROR macro below.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Minimal StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error keeps call sites terse:
  ///   Result<int> F() { if (bad) return Status::InvalidArgument("…");
  ///                     return 42; }
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value access requires ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pascalr

/// Propagates a non-OK Status from the enclosing function.
#define PASCALR_RETURN_IF_ERROR(expr)             \
  do {                                            \
    ::pascalr::Status _st = (expr);               \
    if (!_st.ok()) return _st;                    \
  } while (0)

/// Evaluates a Result<T> expression, propagating errors, binding the value.
#define PASCALR_ASSIGN_OR_RETURN(lhs, rexpr)      \
  PASCALR_ASSIGN_OR_RETURN_IMPL(                  \
      PASCALR_STATUS_CONCAT(_result_, __LINE__), lhs, rexpr)

#define PASCALR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define PASCALR_STATUS_CONCAT(a, b) PASCALR_STATUS_CONCAT_IMPL(a, b)
#define PASCALR_STATUS_CONCAT_IMPL(a, b) a##b

#endif  // PASCALR_BASE_STATUS_H_
