// Annotated synchronisation primitives: thin wrappers over std::mutex /
// std::shared_mutex / std::condition_variable that carry the clang
// thread-safety attributes from base/thread_annotations.h. libstdc++'s
// own lock types are unannotated, so the analysis cannot see a
// std::lock_guard acquire anything; these wrappers are what make
// `-Werror=thread-safety` able to prove the engine's lock discipline.
//
// Conventions:
//  - members protected by a lock are declared `GUARDED_BY(mu_)` next to
//    the `Mutex mu_` / `SharedMutex mu_` that protects them;
//  - raw std::mutex / std::shared_mutex members are banned outside this
//    file (enforced by tools/lint_invariants.py);
//  - protocol locks that guard a discipline rather than data members
//    (e.g. Database::write_mu_) carry a `lint: mutex-protocol(...)`
//    comment instead of GUARDED_BY uses.
//
// Zero-cost: every method is a single forwarded call; under non-clang
// compilers the attributes expand to nothing and the wrappers are
// byte-equivalent to using the std types directly.

#ifndef PASCALR_BASE_MUTEX_H_
#define PASCALR_BASE_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "base/thread_annotations.h"

namespace pascalr {

/// An annotated exclusive mutex.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// An annotated reader/writer mutex.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void ReaderLock() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over Mutex (std::lock_guard with annotations).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.ReaderLock();
  }
  ~ReaderMutexLock() RELEASE() { mu_.ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock over SharedMutex, with an optional early
/// Release() for hand-over-hand paths (Relation::Upsert releases its
/// latch before delegating to Insert, which re-acquires it).
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() {
    if (!released_) mu_.Unlock();
  }

  /// Releases the lock before end of scope. Call at most once.
  void Release() RELEASE() {
    released_ = true;
    mu_.Unlock();
  }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
  bool released_ = false;
};

/// A lock whose ownership can move across scopes — the capability-
/// transfer pattern (Database::BeginWriteStatement returns a guard that
/// holds write_mu_ for the statement's duration). Acquisition through a
/// return value is outside clang's scope-based analysis, so Lock/Unlock
/// here are deliberately unanalyzed; use it only for protocol locks with
/// no GUARDED_BY members, where opting out forfeits no member checking.
class MovableMutexLock {
 public:
  MovableMutexLock() = default;
  // Unanalyzed: the acquired capability intentionally outlives this
  // constructor's scope (it travels with the object).
  explicit MovableMutexLock(Mutex& mu) NO_THREAD_SAFETY_ANALYSIS : mu_(&mu) {
    mu.Lock();
  }
  MovableMutexLock(MovableMutexLock&& other) noexcept : mu_(other.mu_) {
    other.mu_ = nullptr;
  }
  MovableMutexLock& operator=(MovableMutexLock&& other) noexcept {
    if (this != &other) {
      Unlock();
      mu_ = other.mu_;
      other.mu_ = nullptr;
    }
    return *this;
  }
  ~MovableMutexLock() { Unlock(); }

  MovableMutexLock(const MovableMutexLock&) = delete;
  MovableMutexLock& operator=(const MovableMutexLock&) = delete;

  // Unanalyzed: releases a capability the analysis never saw acquired.
  void Unlock() NO_THREAD_SAFETY_ANALYSIS {
    if (mu_ != nullptr) {
      mu_->Unlock();
      mu_ = nullptr;
    }
  }
  bool owns_lock() const { return mu_ != nullptr; }

 private:
  Mutex* mu_ = nullptr;
};

/// Condition variable paired with Mutex. Wait() atomically releases and
/// re-acquires the caller's lock, so annotation-wise the capability is
/// held across the call (REQUIRES, not RELEASE+ACQUIRE) — exactly how
/// callers reason about it:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the caller's hold for the duration of the wait, then release
    // the unique_lock's ownership so the caller's guard keeps it.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pascalr

#endif  // PASCALR_BASE_MUTEX_H_
