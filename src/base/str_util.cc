#include "base/str_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace pascalr {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view s, std::string_view t) {
  if (s.size() != t.size()) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(t[i]))) {
      return false;
    }
  }
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace pascalr
