// Process-wide counters of query-compilation work: how many times the
// expensive pre-execution stages ran. The prepared-query layer
// (pascalr/prepared.h) exists to make re-executions skip all of them, and
// its tests assert exactly that — a cached Execute must move none of these
// counters. Single-threaded by design, like the rest of the engine.

#ifndef PASCALR_BASE_COUNTERS_H_
#define PASCALR_BASE_COUNTERS_H_

#include <cstdint>

namespace pascalr {

struct CompileCounters {
  uint64_t parses = 0;           ///< Parser tokenize+parse passes
  uint64_t binds = 0;            ///< Binder::Bind resolutions
  uint64_t standard_forms = 0;   ///< standard-form (re)normalisations
  uint64_t plans = 0;            ///< PlanQuery compilations (concrete level)
  uint64_t plan_searches = 0;    ///< kAuto plan-search invocations
  uint64_t collection_walks = 0; ///< cost-model collection-phase walks
};

inline CompileCounters& GlobalCompileCounters() {
  static CompileCounters counters;
  return counters;
}

}  // namespace pascalr

#endif  // PASCALR_BASE_COUNTERS_H_
