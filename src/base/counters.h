// Process-wide counters of query-compilation work: how many times the
// expensive pre-execution stages ran. The prepared-query layer
// (pascalr/prepared.h) exists to make re-executions skip all of them, and
// its tests assert exactly that — a cached Execute must move none of these
// counters.
//
// The live counters are relaxed atomics so concurrent sessions can bump
// them without racing (they are pure work tallies — no ordering is implied
// or needed). CompileCounters stays a plain snapshot struct: assigning or
// passing AtomicCompileCounters where a CompileCounters is expected takes
// an implicit point-in-time copy, so every existing
// `CompileCounters before = GlobalCompileCounters();` call site keeps its
// meaning.

#ifndef PASCALR_BASE_COUNTERS_H_
#define PASCALR_BASE_COUNTERS_H_

#include <atomic>
#include <cstdint>

namespace pascalr {

/// A point-in-time snapshot of the compilation-work tallies.
struct CompileCounters {
  uint64_t parses = 0;           ///< Parser tokenize+parse passes
  uint64_t binds = 0;            ///< Binder::Bind resolutions
  uint64_t standard_forms = 0;   ///< standard-form (re)normalisations
  uint64_t plans = 0;            ///< PlanQuery compilations (concrete level)
  uint64_t plan_searches = 0;    ///< kAuto plan-search invocations
  uint64_t collection_walks = 0; ///< cost-model collection-phase walks
};

/// The live, thread-safe tallies. Field-for-field mirror of
/// CompileCounters; converts to one implicitly (a relaxed snapshot —
/// fields racing concurrent increments may be from adjacent instants,
/// which is fine for work deltas).
struct AtomicCompileCounters {
  std::atomic<uint64_t> parses{0};
  std::atomic<uint64_t> binds{0};
  std::atomic<uint64_t> standard_forms{0};
  std::atomic<uint64_t> plans{0};
  std::atomic<uint64_t> plan_searches{0};
  std::atomic<uint64_t> collection_walks{0};

  operator CompileCounters() const {
    // Relaxed: pure work tallies, read in isolation — a snapshot racing
    // concurrent increments may pair fields from adjacent instants, and
    // no caller infers other memory state from the values. (Bumps use
    // seq-cst operator++ at the half-dozen compile-stage call sites,
    // where a stronger-than-needed order costs nothing measurable.)
    CompileCounters snap;
    snap.parses = parses.load(std::memory_order_relaxed);
    snap.binds = binds.load(std::memory_order_relaxed);
    snap.standard_forms = standard_forms.load(std::memory_order_relaxed);
    snap.plans = plans.load(std::memory_order_relaxed);
    snap.plan_searches = plan_searches.load(std::memory_order_relaxed);
    snap.collection_walks = collection_walks.load(std::memory_order_relaxed);
    return snap;
  }
};

inline AtomicCompileCounters& GlobalCompileCounters() {
  static AtomicCompileCounters counters;
  return counters;
}

}  // namespace pascalr

#endif  // PASCALR_BASE_COUNTERS_H_
