#include "base/logging.h"

#include <cstdio>
#include <cstdlib>

namespace pascalr {

namespace {
// Single-threaded by design (see base/counters.h) — plain globals.
LogSeverity g_min_severity = LogSeverity::kInfo;
std::string* g_capture = nullptr;
}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }

LogSeverity MinLogSeverity() { return g_min_severity; }

void SetLogCaptureForTest(std::string* capture) { g_capture = capture; }

namespace internal {

namespace {
const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  // kFatal always emits: the filter must never swallow the diagnostic of
  // an abort.
  if (severity_ < g_min_severity && severity_ != LogSeverity::kFatal) {
    return;
  }
  stream_ << "\n";
  if (g_capture != nullptr) {
    *g_capture += stream_.str();
  } else {
    std::fputs(stream_.str().c_str(), stderr);
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) std::abort();
}

}  // namespace internal
}  // namespace pascalr
