#include "base/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace pascalr {

namespace {
// Concurrent sessions log from many threads: the severity threshold is an
// atomic (readable without a lock on the fast filtered-out path) and the
// emission itself is serialised by a mutex so lines never interleave
// mid-message — whether appended to a capture string or written to
// stderr. Mutex is constexpr-constructible, so a namespace-scope instance
// needs no dynamic initialisation dance.
// Relaxed: the threshold is a standalone filter value; no reader infers
// other state from it (src/base/ may spell the ordering directly).
std::atomic<LogSeverity> g_min_severity{LogSeverity::kInfo};
Mutex g_emit_mu;
std::string* g_capture GUARDED_BY(g_emit_mu) = nullptr;
}  // namespace

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(severity, std::memory_order_relaxed);
}

LogSeverity MinLogSeverity() {
  return g_min_severity.load(std::memory_order_relaxed);
}

void SetLogCaptureForTest(std::string* capture) {
  // The emit lock makes swapping the sink safe against in-flight messages.
  MutexLock lock(g_emit_mu);
  g_capture = capture;
}

namespace internal {

namespace {
const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  // kFatal always emits: the filter must never swallow the diagnostic of
  // an abort.
  if (severity_ < MinLogSeverity() && severity_ != LogSeverity::kFatal) {
    return;
  }
  stream_ << "\n";
  {
    MutexLock lock(g_emit_mu);
    if (g_capture != nullptr) {
      *g_capture += stream_.str();
    } else {
      std::fputs(stream_.str().c_str(), stderr);
      std::fflush(stderr);
    }
  }
  if (severity_ == LogSeverity::kFatal) std::abort();
}

}  // namespace internal
}  // namespace pascalr
