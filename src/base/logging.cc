#include "base/logging.h"

#include <cstdio>
#include <cstdlib>

namespace pascalr {
namespace internal {

namespace {
const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::fflush(stderr);
  if (severity_ == LogSeverity::kFatal) std::abort();
}

}  // namespace internal
}  // namespace pascalr
