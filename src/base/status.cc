#include "base/status.h"

namespace pascalr {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kTypeMismatch:
      return "TypeMismatch";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace pascalr
