// StableVector: an append-only sequence with stable element addresses and
// lock-free readers, the storage primitive under the versioned relation
// heap (storage/relation.h).
//
// Elements live in exponentially sized blocks (first block 256 elements,
// each next block twice as large) reached through a small fixed directory
// of atomic pointers, so
//  - existing elements NEVER move (Refs and concurrent readers stay
//    valid across appends, unlike std::vector growth), and
//  - readers need no lock: they bound iteration by the published size
//    (acquire) and the writer publishes a new element only after it is
//    fully constructed (release).
//
// Writers must be externally serialised (the owning Relation's latch); the
// reader side is wait-free. Reset() is single-threaded only.

#ifndef PASCALR_BASE_STABLE_VECTOR_H_
#define PASCALR_BASE_STABLE_VECTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "base/logging.h"

namespace pascalr {

template <typename T>
class StableVector {
 public:
  static constexpr size_t kFirstBits = 8;  ///< first block: 256 elements
  static constexpr size_t kNumBlocks = 32;

  StableVector() = default;
  ~StableVector() { Reset(); }

  StableVector(const StableVector&) = delete;
  StableVector& operator=(const StableVector&) = delete;

  /// Published element count. Readers must not touch indexes >= size().
  size_t size() const { return size_.load(std::memory_order_acquire); }

  T& operator[](size_t i) { return *Locate(i); }
  const T& operator[](size_t i) const { return *Locate(i); }

  /// Writer-only: default-constructs one element (allocating its block if
  /// needed), publishes the new size with release ordering, and returns
  /// the element's index. The caller typically fills the element *before*
  /// flipping whatever visibility stamp readers check — the size
  /// publication alone only guarantees the element is constructed.
  size_t Append() {
    // Relaxed self-reads: writers are externally serialised, so this
    // thread is reading its own prior writes; the release stores below
    // are what publish to readers.
    size_t i = size_.load(std::memory_order_relaxed);
    size_t block, offset;
    Split(i, &block, &offset);
    PASCALR_CHECK_LT(block, kNumBlocks);
    T* base = blocks_[block].load(std::memory_order_relaxed);
    if (base == nullptr) {
      base = new T[BlockCapacity(block)];
      blocks_[block].store(base, std::memory_order_release);
    }
    size_.store(i + 1, std::memory_order_release);
    return i;
  }

  /// Destroys everything. Single-threaded only (legacy Relation::Clear);
  /// never call while any reader may be active.
  void Reset() {
    // Relaxed: single-threaded by contract (see above) — no publication
    // to race with.
    for (size_t b = 0; b < kNumBlocks; ++b) {
      T* base = blocks_[b].load(std::memory_order_relaxed);
      if (base != nullptr) delete[] base;
      blocks_[b].store(nullptr, std::memory_order_relaxed);
    }
    size_.store(0, std::memory_order_release);
  }

 private:
  static constexpr size_t BlockCapacity(size_t block) {
    return static_cast<size_t>(1) << (kFirstBits + block);
  }

  /// Index i lives in block b = floor(log2(i/256 + 1)) at offset
  /// i - 256*(2^b - 1); block b holds 256*2^b elements.
  static void Split(size_t i, size_t* block, size_t* offset) {
    uint64_t x = (static_cast<uint64_t>(i) >> kFirstBits) + 1;
    size_t b = static_cast<size_t>(63 - __builtin_clzll(x));
    *block = b;
    *offset = i - ((((static_cast<uint64_t>(1) << b) - 1)) << kFirstBits);
  }

  T* Locate(size_t i) const {
    size_t block, offset;
    Split(i, &block, &offset);
    T* base = blocks_[block].load(std::memory_order_acquire);
    PASCALR_DCHECK(base != nullptr);
    return base + offset;
  }

  mutable std::atomic<T*> blocks_[kNumBlocks] = {};
  std::atomic<size_t> size_{0};
};

}  // namespace pascalr

#endif  // PASCALR_BASE_STABLE_VECTOR_H_
