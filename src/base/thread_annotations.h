// Clang thread-safety analysis attributes, macro-gated so every other
// compiler sees plain C++. With clang, building with
//
//   -Wthread-safety -Werror=thread-safety
//
// turns the lock discipline declared here into compile errors: a
// GUARDED_BY member touched without its mutex, a REQUIRES function called
// without the capability, a lock leaked out of a scope — all rejected at
// compile time instead of hoping a ThreadSanitizer interleaving catches
// them. CMake adds the flags automatically for clang builds (option
// PASCALR_THREAD_SAFETY) and the CI `static-analysis` job builds the
// whole library that way.
//
// The annotated primitives living on top of these macros are in
// base/mutex.h; annotate members with GUARDED_BY(mu_) and internal
// helpers with REQUIRES(mu_). Deliberately unanalyzed code (lock-free
// publication protocols, capability transfer through return values) opts
// out with NO_THREAD_SAFETY_ANALYSIS plus a justification comment — the
// invariant linter (tools/lint_invariants.py) keeps those honest.
//
// Naming follows the modern clang/abseil convention (ACQUIRE/RELEASE/
// REQUIRES rather than the legacy LOCK/UNLOCK spellings).

#ifndef PASCALR_BASE_THREAD_ANNOTATIONS_H_
#define PASCALR_BASE_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define PASCALR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PASCALR_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Declares a class to be a capability ("mutex" in diagnostics).
#define CAPABILITY(x) PASCALR_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class whose lifetime holds a capability.
#define SCOPED_CAPABILITY PASCALR_THREAD_ANNOTATION(scoped_lockable)

/// Member readable with the capability held shared, writable with it
/// held exclusively.
#define GUARDED_BY(x) PASCALR_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the capability.
#define PT_GUARDED_BY(x) PASCALR_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock prevention).
#define ACQUIRED_BEFORE(...) \
  PASCALR_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  PASCALR_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function requires the capability held (exclusively / shared) on entry
/// and does not release it.
#define REQUIRES(...) \
  PASCALR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  PASCALR_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusively / shared) and holds it
/// past return.
#define ACQUIRE(...) \
  PASCALR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  PASCALR_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (a generic RELEASE() also releases a
/// shared hold — used on scoped-lock destructors).
#define RELEASE(...) \
  PASCALR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  PASCALR_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire the capability; first argument is the return
/// value meaning success.
#define TRY_ACQUIRE(...) \
  PASCALR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  PASCALR_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held.
#define EXCLUDES(...) PASCALR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function asserts (at runtime) that the capability is held.
#define ASSERT_CAPABILITY(x) \
  PASCALR_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) PASCALR_THREAD_ANNOTATION(lock_returned(x))

/// Opts a function out of the analysis. Every use MUST carry a comment
/// justifying why the protocol is safe but inexpressible (lock-free
/// publication, single-serialised-writer reads, capability transfer
/// through a return value) — the invariant linter's conventions expect
/// one.
#define NO_THREAD_SAFETY_ANALYSIS \
  PASCALR_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // PASCALR_BASE_THREAD_ANNOTATIONS_H_
