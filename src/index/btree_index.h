// BTreeIndex: an in-memory B+tree ComponentIndex supporting ordered probes.
//
// Leaves hold (value, ref-list) entries and are chained for in-order
// traversal; internal nodes route by separator keys. Ordering probes
// (<, <=, >, >=) visit exactly the qualifying leaf range; `=` descends to a
// single leaf; `<>` walks all leaves skipping the equal key.
//
// Removal takes refs out of the ref-list but performs no structural
// rebalancing: a value whose ref-list becomes empty remains as a tombstone
// key and is skipped by probes. Query-transient indexes are insert-only, so
// tombstones only matter for long-lived permanent indexes, where the
// catalog can rebuild via Compact().

#ifndef PASCALR_INDEX_BTREE_INDEX_H_
#define PASCALR_INDEX_BTREE_INDEX_H_

#include <memory>
#include <vector>

#include "index/index.h"

namespace pascalr {

class BTreeIndex : public ComponentIndex {
 public:
  /// `fanout` is the maximum number of keys per node (>= 4).
  explicit BTreeIndex(std::string name = "btree", size_t fanout = 32);
  ~BTreeIndex() override;

  void Add(const Value& v, const Ref& ref) override;
  bool Remove(const Value& v, const Ref& ref) override;
  size_t size() const override { return entry_count_; }

  void Probe(CompareOp op, const Value& probe,
             const std::function<bool(const Ref&)>& visit) const override;

  void ForEachEntry(const std::function<bool(const Value&, const Ref&)>& visit)
      const override;

  std::string name() const override { return name_; }

  /// Smallest / largest indexed value (ignoring tombstones). Returns false
  /// if the index holds no live entries. Used by strategy 4's min/max
  /// value-list shortcut (paper §4.4).
  bool MinValue(Value* out) const;
  bool MaxValue(Value* out) const;

  size_t num_distinct_values() const { return distinct_count_; }

  /// Rebuilds the tree dropping tombstoned keys.
  void Compact();

  /// Tree height (leaf = 1); exposed for tests.
  size_t height() const;

  /// Verifies B+tree structural invariants (key ordering, child counts,
  /// leaf chaining). Exposed for tests.
  Status CheckInvariants() const;

 private:
  struct Node;
  struct LeafEntry {
    Value value;
    std::vector<Ref> refs;
  };

  Node* FindLeaf(const Value& v) const;
  /// Splits `node` (which has overflowed) and propagates upward.
  void SplitAndPropagate(Node* node);
  bool VisitRange(const Node* start_leaf, size_t start_pos, CompareOp op,
                  const Value& probe,
                  const std::function<bool(const Ref&)>& visit) const;
  void FreeTree(Node* n);

  std::string name_;
  size_t fanout_;
  Node* root_ = nullptr;
  Node* first_leaf_ = nullptr;
  size_t entry_count_ = 0;
  size_t distinct_count_ = 0;  // live distinct values
};

}  // namespace pascalr

#endif  // PASCALR_INDEX_BTREE_INDEX_H_
