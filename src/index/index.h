// ComponentIndex: an index from one component's value to the references of
// the elements holding that value (paper §3.2, Figure 2: ind_t_cnr etc.).
//
// Indexes are built either permanently (Example 3.1's enrindex) or
// transiently during the collection phase, and are probed with any of the
// six comparison operators: Probe(op, x) yields every ref whose *stored*
// value v satisfies `v op x`.

#ifndef PASCALR_INDEX_INDEX_H_
#define PASCALR_INDEX_INDEX_H_

#include <functional>
#include <memory>
#include <string>

#include "storage/ref.h"
#include "value/value.h"

namespace pascalr {

class ComponentIndex {
 public:
  virtual ~ComponentIndex() = default;

  /// Registers `ref` under value `v`. Duplicate (v, ref) pairs collapse.
  virtual void Add(const Value& v, const Ref& ref) = 0;

  /// Unregisters (v, ref); returns false if absent.
  virtual bool Remove(const Value& v, const Ref& ref) = 0;

  /// Number of (value, ref) entries.
  virtual size_t size() const = 0;
  bool empty() const { return size() == 0; }

  /// Visits every ref whose stored value v satisfies `v op probe`.
  /// Returning false from the visitor stops early.
  virtual void Probe(CompareOp op, const Value& probe,
                     const std::function<bool(const Ref&)>& visit) const = 0;

  /// True if some stored value v satisfies `v op probe` (semi-join test).
  bool ProbeAny(CompareOp op, const Value& probe) const {
    bool found = false;
    Probe(op, probe, [&](const Ref&) {
      found = true;
      return false;
    });
    return found;
  }

  /// Visits every (value, ref) entry. Ordered indexes visit in value order.
  virtual void ForEachEntry(
      const std::function<bool(const Value&, const Ref&)>& visit) const = 0;

  virtual std::string name() const = 0;
};

struct ValueHash {
  uint64_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace pascalr

#endif  // PASCALR_INDEX_INDEX_H_
