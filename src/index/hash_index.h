// HashIndex: equality-optimised ComponentIndex. Non-equality probes fall
// back to a full entry scan (correct, linear); the planner prefers a
// BTreeIndex when a term uses an ordering operator.

#ifndef PASCALR_INDEX_HASH_INDEX_H_
#define PASCALR_INDEX_HASH_INDEX_H_

#include <unordered_map>
#include <vector>

#include "index/index.h"

namespace pascalr {

class HashIndex : public ComponentIndex {
 public:
  HashIndex() = default;
  explicit HashIndex(std::string name) : name_(std::move(name)) {}

  void Add(const Value& v, const Ref& ref) override;
  bool Remove(const Value& v, const Ref& ref) override;
  size_t size() const override { return entry_count_; }

  void Probe(CompareOp op, const Value& probe,
             const std::function<bool(const Ref&)>& visit) const override;

  void ForEachEntry(const std::function<bool(const Value&, const Ref&)>& visit)
      const override;

  std::string name() const override { return name_; }

  /// Number of distinct indexed values.
  size_t num_distinct_values() const { return map_.size(); }

 private:
  std::string name_ = "hash";
  std::unordered_map<Value, std::vector<Ref>, ValueHash> map_;
  size_t entry_count_ = 0;
};

}  // namespace pascalr

#endif  // PASCALR_INDEX_HASH_INDEX_H_
