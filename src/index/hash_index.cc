#include "index/hash_index.h"

#include <algorithm>

namespace pascalr {

void HashIndex::Add(const Value& v, const Ref& ref) {
  std::vector<Ref>& refs = map_[v];
  if (std::find(refs.begin(), refs.end(), ref) != refs.end()) return;
  refs.push_back(ref);
  ++entry_count_;
}

bool HashIndex::Remove(const Value& v, const Ref& ref) {
  auto it = map_.find(v);
  if (it == map_.end()) return false;
  auto& refs = it->second;
  auto pos = std::find(refs.begin(), refs.end(), ref);
  if (pos == refs.end()) return false;
  refs.erase(pos);
  --entry_count_;
  if (refs.empty()) map_.erase(it);
  return true;
}

void HashIndex::Probe(CompareOp op, const Value& probe,
                      const std::function<bool(const Ref&)>& visit) const {
  if (op == CompareOp::kEq) {
    auto it = map_.find(probe);
    if (it == map_.end()) return;
    for (const Ref& r : it->second) {
      if (!visit(r)) return;
    }
    return;
  }
  // Fallback scan for ordering operators and <>.
  for (const auto& [value, refs] : map_) {
    if (!value.Satisfies(op, probe)) continue;
    for (const Ref& r : refs) {
      if (!visit(r)) return;
    }
  }
}

void HashIndex::ForEachEntry(
    const std::function<bool(const Value&, const Ref&)>& visit) const {
  for (const auto& [value, refs] : map_) {
    for (const Ref& r : refs) {
      if (!visit(value, r)) return;
    }
  }
}

}  // namespace pascalr
