#include "index/btree_index.h"

#include <algorithm>

#include "base/logging.h"

namespace pascalr {

// A node is either a leaf (entries populated) or internal (keys/children
// populated; children.size() == keys.size() + 1). keys[i] is the smallest
// value reachable in children[i + 1].
struct BTreeIndex::Node {
  bool is_leaf = true;
  Node* parent = nullptr;

  // Leaf state.
  std::vector<LeafEntry> entries;
  Node* next_leaf = nullptr;
  Node* prev_leaf = nullptr;

  // Internal state.
  std::vector<Value> keys;
  std::vector<Node*> children;
};

BTreeIndex::BTreeIndex(std::string name, size_t fanout)
    : name_(std::move(name)), fanout_(fanout < 4 ? 4 : fanout) {
  root_ = new Node();
  first_leaf_ = root_;
}

BTreeIndex::~BTreeIndex() { FreeTree(root_); }

void BTreeIndex::FreeTree(Node* n) {
  if (n == nullptr) return;
  if (!n->is_leaf) {
    for (Node* c : n->children) FreeTree(c);
  }
  delete n;
}

BTreeIndex::Node* BTreeIndex::FindLeaf(const Value& v) const {
  Node* n = root_;
  while (!n->is_leaf) {
    // Find first key > v; descend into that child.
    size_t i = 0;
    while (i < n->keys.size() && !(v < n->keys[i])) ++i;
    n = n->children[i];
  }
  return n;
}

void BTreeIndex::Add(const Value& v, const Ref& ref) {
  Node* leaf = FindLeaf(v);
  auto it = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), v,
      [](const LeafEntry& e, const Value& key) { return e.value < key; });
  if (it != leaf->entries.end() && it->value == v) {
    if (std::find(it->refs.begin(), it->refs.end(), ref) != it->refs.end()) {
      return;
    }
    if (it->refs.empty()) ++distinct_count_;  // resurrecting a tombstone
    it->refs.push_back(ref);
    ++entry_count_;
    return;
  }
  LeafEntry entry;
  entry.value = v;
  entry.refs.push_back(ref);
  leaf->entries.insert(it, std::move(entry));
  ++entry_count_;
  ++distinct_count_;
  if (leaf->entries.size() > fanout_) SplitAndPropagate(leaf);
}

void BTreeIndex::SplitAndPropagate(Node* node) {
  while (node != nullptr) {
    size_t load = node->is_leaf ? node->entries.size() : node->keys.size();
    if (load <= fanout_) return;

    Node* right = new Node();
    right->is_leaf = node->is_leaf;
    Value separator;

    if (node->is_leaf) {
      size_t mid = node->entries.size() / 2;
      separator = node->entries[mid].value;
      right->entries.assign(
          std::make_move_iterator(node->entries.begin() + mid),
          std::make_move_iterator(node->entries.end()));
      node->entries.resize(mid);
      right->next_leaf = node->next_leaf;
      if (right->next_leaf) right->next_leaf->prev_leaf = right;
      right->prev_leaf = node;
      node->next_leaf = right;
    } else {
      size_t mid = node->keys.size() / 2;
      separator = node->keys[mid];
      right->keys.assign(std::make_move_iterator(node->keys.begin() + mid + 1),
                         std::make_move_iterator(node->keys.end()));
      right->children.assign(node->children.begin() + mid + 1,
                             node->children.end());
      for (Node* c : right->children) c->parent = right;
      node->keys.resize(mid);
      node->children.resize(mid + 1);
    }

    Node* parent = node->parent;
    if (parent == nullptr) {
      parent = new Node();
      parent->is_leaf = false;
      parent->children.push_back(node);
      node->parent = parent;
      root_ = parent;
    }
    right->parent = parent;
    // Insert separator and right child after node's position.
    size_t pos = 0;
    while (parent->children[pos] != node) ++pos;
    parent->keys.insert(parent->keys.begin() + pos, separator);
    parent->children.insert(parent->children.begin() + pos + 1, right);

    node = parent;
  }
}

bool BTreeIndex::Remove(const Value& v, const Ref& ref) {
  Node* leaf = FindLeaf(v);
  auto it = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), v,
      [](const LeafEntry& e, const Value& key) { return e.value < key; });
  if (it == leaf->entries.end() || it->value != v) return false;
  auto pos = std::find(it->refs.begin(), it->refs.end(), ref);
  if (pos == it->refs.end()) return false;
  it->refs.erase(pos);
  --entry_count_;
  if (it->refs.empty()) --distinct_count_;  // becomes a tombstone
  return true;
}

bool BTreeIndex::VisitRange(
    const Node* start_leaf, size_t start_pos, CompareOp op, const Value& probe,
    const std::function<bool(const Ref&)>& visit) const {
  const Node* leaf = start_leaf;
  size_t pos = start_pos;
  while (leaf != nullptr) {
    for (; pos < leaf->entries.size(); ++pos) {
      const LeafEntry& e = leaf->entries[pos];
      if (e.refs.empty()) continue;  // tombstone
      if (!e.value.Satisfies(op, probe)) {
        // Values are visited in ascending order, so < / <= / = ranges end
        // at the first non-qualifying value. <> and >= / > never end early.
        if (op == CompareOp::kLt || op == CompareOp::kLe ||
            op == CompareOp::kEq) {
          return true;
        }
        continue;
      }
      for (const Ref& r : e.refs) {
        if (!visit(r)) return false;
      }
    }
    leaf = leaf->next_leaf;
    pos = 0;
  }
  return true;
}

void BTreeIndex::Probe(CompareOp op, const Value& probe,
                       const std::function<bool(const Ref&)>& visit) const {
  switch (op) {
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kNe:
      // Must start from the smallest value.
      VisitRange(first_leaf_, 0, op, probe, visit);
      return;
    case CompareOp::kEq:
    case CompareOp::kGe:
    case CompareOp::kGt: {
      // Start at the leaf that could contain `probe`.
      Node* leaf = FindLeaf(probe);
      size_t pos = static_cast<size_t>(
          std::lower_bound(
              leaf->entries.begin(), leaf->entries.end(), probe,
              [](const LeafEntry& e, const Value& key) { return e.value < key; }) -
          leaf->entries.begin());
      VisitRange(leaf, pos, op, probe, visit);
      return;
    }
  }
}

void BTreeIndex::ForEachEntry(
    const std::function<bool(const Value&, const Ref&)>& visit) const {
  for (const Node* leaf = first_leaf_; leaf != nullptr;
       leaf = leaf->next_leaf) {
    for (const LeafEntry& e : leaf->entries) {
      for (const Ref& r : e.refs) {
        if (!visit(e.value, r)) return;
      }
    }
  }
}

bool BTreeIndex::MinValue(Value* out) const {
  for (const Node* leaf = first_leaf_; leaf != nullptr;
       leaf = leaf->next_leaf) {
    for (const LeafEntry& e : leaf->entries) {
      if (!e.refs.empty()) {
        *out = e.value;
        return true;
      }
    }
  }
  return false;
}

bool BTreeIndex::MaxValue(Value* out) const {
  bool found = false;
  // Walk forward; trees here are small enough that a reverse leaf walk with
  // tombstone skipping is not worth the extra code.
  for (const Node* leaf = first_leaf_; leaf != nullptr;
       leaf = leaf->next_leaf) {
    for (const LeafEntry& e : leaf->entries) {
      if (!e.refs.empty()) {
        *out = e.value;
        found = true;
      }
    }
  }
  return found;
}

void BTreeIndex::Compact() {
  std::vector<LeafEntry> live;
  for (Node* leaf = first_leaf_; leaf != nullptr; leaf = leaf->next_leaf) {
    for (LeafEntry& e : leaf->entries) {
      if (!e.refs.empty()) live.push_back(std::move(e));
    }
  }
  FreeTree(root_);
  root_ = new Node();
  first_leaf_ = root_;
  entry_count_ = 0;
  distinct_count_ = 0;
  for (LeafEntry& e : live) {
    for (const Ref& r : e.refs) Add(e.value, r);
  }
}

size_t BTreeIndex::height() const {
  size_t h = 1;
  const Node* n = root_;
  while (!n->is_leaf) {
    ++h;
    n = n->children[0];
  }
  return h;
}

Status BTreeIndex::CheckInvariants() const {
  // Every leaf reachable from the root must appear in the leaf chain, keys
  // must be sorted, and internal fan-out must be consistent.
  std::vector<const Node*> stack = {root_};
  size_t counted_entries = 0;
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n->is_leaf) {
      for (size_t i = 1; i < n->entries.size(); ++i) {
        if (!(n->entries[i - 1].value < n->entries[i].value)) {
          return Status::Internal("leaf keys out of order");
        }
      }
      for (const LeafEntry& e : n->entries) counted_entries += e.refs.size();
    } else {
      if (n->children.size() != n->keys.size() + 1) {
        return Status::Internal("internal node child count mismatch");
      }
      for (size_t i = 1; i < n->keys.size(); ++i) {
        if (!(n->keys[i - 1] < n->keys[i])) {
          return Status::Internal("internal keys out of order");
        }
      }
      for (const Node* c : n->children) {
        if (c->parent != n) return Status::Internal("broken parent link");
        stack.push_back(c);
      }
    }
  }
  if (counted_entries != entry_count_) {
    return Status::Internal("entry count drift");
  }
  // Leaf chain must be sorted end to end.
  const Node* leaf = first_leaf_;
  const Value* prev = nullptr;
  while (leaf != nullptr) {
    for (const LeafEntry& e : leaf->entries) {
      if (prev != nullptr && !(*prev < e.value)) {
        return Status::Internal("leaf chain out of order");
      }
      prev = &e.value;
    }
    leaf = leaf->next_leaf;
  }
  return Status::OK();
}

}  // namespace pascalr
