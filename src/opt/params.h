// Host-variable parameters (`$name`) for prepared queries.
//
// Lifecycle: the parser produces kParam operands, the binder types them
// against the component operands they are compared with (BoundQuery::
// params), and *value substitution* turns every kParam operand into an
// ordinary kLiteral whose `param_name` tag stays set. Planning and
// execution only ever see substituted selections — every normalization
// pass copies Operand wholesale, so the tags ride through standard-form
// construction into the compiled QueryPlan, where PatchPlanParams can
// rewrite the bound values in place for the next Execute without any
// parse / normalize / plan-search work.

#ifndef PASCALR_OPT_PARAMS_H_
#define PASCALR_OPT_PARAMS_H_

#include <map>
#include <string>

#include "base/status.h"
#include "calculus/ast.h"
#include "exec/plan.h"
#include "value/type.h"
#include "value/value.h"

namespace pascalr {

/// Parameter name (without the '$') to bound value.
using ParamBindings = std::map<std::string, Value>;

/// Validates `bindings` against the binder-derived parameter types:
/// every declared parameter must be bound, every binding must name a
/// declared parameter, and value kinds must agree. Enumeration parameters
/// may be given as string labels; they are converted to ordinals of the
/// parameter's enum type. Returns the canonicalised bindings.
Result<ParamBindings> CheckParamBindings(
    const std::map<std::string, Type>& param_types,
    const ParamBindings& bindings);

/// Substitutes `bindings` into every kParam operand of `sel` (wff, free
/// variable extended ranges), turning them into kLiteral operands that
/// keep their `param_name` tag. Callers are expected to have run
/// CheckParamBindings; missing bindings fail with InvalidArgument.
Status BindSelectionParams(SelectionExpr* sel, const ParamBindings& bindings);

/// Rewrites, in place, the literal value of every parameter-tagged operand
/// reachable from the compiled plan: matrix terms, prefix range
/// restrictions, the original NNF, and every collection-phase gate
/// (indexes, value lists, single-list / indirect-join / quantifier-probe
/// emissions, post-scan probes). Returns the number of operand slots
/// patched. Bindings must cover every tag present (CheckParamBindings).
size_t PatchPlanParams(QueryPlan* plan, const ParamBindings& bindings);

/// True when any operand under `f` carries a parameter tag (kParam, or a
/// substituted literal slot).
bool FormulaHasParams(const Formula& f);

/// Substitutes `bindings` into every parameter slot under `f` (kParam
/// operands and previously substituted literal slots alike).
Status BindFormulaParams(Formula* f, const ParamBindings& bindings);

/// Appends a clone of every quantifier range under `f` — and, separately,
/// of the free-variable ranges a caller passes through the SelectionExpr
/// overload — whose restriction carries parameter tags. These are the
/// ranges whose emptiness (and with it the planner's Lemma-1 / rule-2
/// adaptation decisions) can change between executions of the same cached
/// plan when the parameter values change.
void CollectParamRanges(const Formula& f, std::vector<RangeExpr>* out);
void CollectParamRanges(const SelectionExpr& sel, std::vector<RangeExpr>* out);

/// True when `range`'s restriction (if any) carries a parameter tag.
bool RangeHasParams(const RangeExpr& range);

/// True when the selection still contains *unsubstituted* kParam operands
/// — such a query cannot be normalised or planned.
bool SelectionHasUnboundParams(const SelectionExpr& sel);

}  // namespace pascalr

#endif  // PASCALR_OPT_PARAMS_H_
