#include "opt/scan_plan.h"

#include <algorithm>
#include <map>
#include <set>

#include "base/str_util.h"

namespace pascalr {

namespace {

bool MonadicOver(const JoinTerm& t, const std::string& var) {
  std::vector<std::string> vars = t.Variables();
  return vars.size() == 1 && vars[0] == var;
}

std::string TermsKey(const std::vector<JoinTerm>& terms) {
  std::vector<std::string> parts;
  for (const JoinTerm& t : terms) parts.push_back(t.ToString());
  std::sort(parts.begin(), parts.end());
  return Join(parts, "&");
}

/// Builder state shared by the per-level assembly paths.
class PlanBuilder {
 public:
  PlanBuilder(StandardForm sf, OptLevel level, QuantPushdownResult pushdown,
              const Database& db)
      : db_(db), level_(level), pushdown_(std::move(pushdown)) {
    plan_.sf = std::move(sf);
    plan_.level = level;
    plan_.eliminated_vars = pushdown_.eliminated;
    plan_.value_lists = pushdown_.value_lists;
    for (ValueListSpec& spec : plan_.value_lists) {
      if (spec.debug_name.empty()) spec.debug_name = "vl_" + spec.var;
    }
    plan_.conj_inputs.resize(plan_.sf.matrix.disjuncts.size());
  }

  Result<QueryPlan> Build();

 private:
  const std::string& RelationOf(const std::string& var) const {
    return plan_.sf.vars.at(var).relation_name;
  }
  size_t CardinalityOf(const std::string& relation) const {
    const Relation* rel = db_.FindRelation(relation);
    return rel == nullptr ? 0 : rel->cardinality();
  }

  size_t InternStructure(const std::string& key,
                         std::vector<std::string> columns,
                         const std::string& debug);
  size_t InternIndex(const std::string& var, int component_pos, bool ordered,
                     std::vector<JoinTerm> gates);

  /// Monadic terms over `var` in conjunction c when S2 gating applies.
  std::vector<JoinTerm> GatesFor(size_t c, const std::string& var) const;

  Result<std::vector<std::string>> OrderRelations();
  Status AssembleNaive();
  Status AssembleGrouped();
  void AddDerivedStructures();
  ScanAction* ActionFor(RelationScan* scan, const std::string& var);

  const Database& db_;
  OptLevel level_;
  QuantPushdownResult pushdown_;
  QueryPlan plan_;
  std::map<std::string, size_t> structure_keys_;
  std::map<std::string, size_t> index_keys_;
};

size_t PlanBuilder::InternStructure(const std::string& key,
                                    std::vector<std::string> columns,
                                    const std::string& debug) {
  auto it = structure_keys_.find(key);
  if (it != structure_keys_.end()) return it->second;
  StructureDef def;
  def.id = plan_.structures.size();
  def.columns = std::move(columns);
  def.debug_name = debug;
  structure_keys_[key] = def.id;
  plan_.structures.push_back(std::move(def));
  return plan_.structures.back().id;
}

size_t PlanBuilder::InternIndex(const std::string& var, int component_pos,
                                bool ordered, std::vector<JoinTerm> gates) {
  std::string key = StrFormat("%s#%d#%d#", var.c_str(), component_pos,
                              ordered ? 1 : 0) +
                    TermsKey(gates);
  auto it = index_keys_.find(key);
  if (it != index_keys_.end()) return it->second;
  IndexBuildSpec spec;
  spec.id = plan_.indexes.size();
  spec.var = var;
  spec.component_pos = component_pos;
  spec.ordered = ordered;
  spec.gates = std::move(gates);
  spec.debug_name = StrFormat("ind_%s_%d", var.c_str(), component_pos);
  index_keys_[key] = spec.id;
  plan_.indexes.push_back(std::move(spec));
  return plan_.indexes.back().id;
}

std::vector<JoinTerm> PlanBuilder::GatesFor(size_t c,
                                            const std::string& var) const {
  std::vector<JoinTerm> gates;
  if (level_ < OptLevel::kOneStep) return gates;
  for (const JoinTerm& t : plan_.sf.matrix.disjuncts[c].terms) {
    if (MonadicOver(t, var)) gates.push_back(t);
  }
  return gates;
}

void PlanBuilder::AddDerivedStructures() {
  for (const DerivedPredicate& d : pushdown_.derived) {
    std::string key = StrFormat("derived#%zu#%s#%s#%zu", d.conj,
                                d.vm.c_str(), d.vn.c_str(),
                                d.probe.value_list_id);
    size_t id = InternStructure(key, {d.vm}, "sl_" + d.vm + "_via_" + d.vn);
    plan_.conj_inputs[d.conj].push_back(id);
  }
}

ScanAction* PlanBuilder::ActionFor(RelationScan* scan, const std::string& var) {
  for (ScanAction& a : scan->actions) {
    if (a.var == var) return &a;
  }
  ScanAction a;
  a.var = var;
  scan->actions.push_back(std::move(a));
  return &scan->actions.back();
}

Result<std::vector<std::string>> PlanBuilder::OrderRelations() {
  // Nodes: every relation hosting a prefix variable. Edges: value-list
  // source scans before quantifier-probe scans.
  std::set<std::string> nodes;
  for (const QuantifiedVar& qv : plan_.sf.prefix) {
    nodes.insert(RelationOf(qv.var));
  }
  std::map<std::string, std::set<std::string>> preds;  // node -> prerequisites
  for (const std::string& n : nodes) preds[n];
  auto add_edge = [&](const std::string& before, const std::string& after) {
    if (before != after) preds[after].insert(before);
  };
  for (const DerivedPredicate& d : pushdown_.derived) {
    add_edge(RelationOf(pushdown_.value_lists[d.probe.value_list_id].var),
             RelationOf(d.vm));
  }
  for (const ValueListSpec& vl : pushdown_.value_lists) {
    for (const QuantProbeGate& g : vl.probe_gates) {
      add_edge(RelationOf(pushdown_.value_lists[g.value_list_id].var),
               RelationOf(vl.var));
    }
  }

  // Kahn's algorithm, smallest-cardinality-first tie break: small relations
  // build small indexes early.
  std::vector<std::string> order;
  std::set<std::string> done;
  while (done.size() < nodes.size()) {
    std::string best;
    size_t best_card = 0;
    for (const std::string& n : nodes) {
      if (done.count(n) > 0) continue;
      bool ready = true;
      for (const std::string& p : preds[n]) {
        if (done.count(p) == 0) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      size_t card = CardinalityOf(n);
      if (best.empty() || card < best_card) {
        best = n;
        best_card = card;
      }
    }
    if (best.empty()) {
      return Status::Unsupported(
          "cyclic scan-order constraints between value lists");
    }
    order.push_back(best);
    done.insert(best);
  }
  return order;
}

Status PlanBuilder::AssembleNaive() {
  // One scan (or scan pair) per structure; the range of every variable is
  // collected by its first scan.
  const DnfMatrix& matrix = plan_.sf.matrix;
  for (size_t c = 0; c < matrix.disjuncts.size(); ++c) {
    for (const JoinTerm& t : matrix.disjuncts[c].terms) {
      std::vector<std::string> vars = t.Variables();
      if (vars.size() == 1) {
        const std::string& v = vars[0];
        std::string key = "sl#" + v + "#" + t.ToString();
        bool fresh = structure_keys_.count(key) == 0;
        size_t id = InternStructure(key, {v}, "sl_" + v);
        plan_.conj_inputs[c].push_back(id);
        if (!fresh) continue;
        RelationScan scan;
        scan.relation = RelationOf(v);
        scan.debug_label = "single list " + t.ToString();
        SingleListEmit emit;
        emit.structure_id = id;
        emit.gates.push_back(t);
        ScanAction action;
        action.var = v;
        action.single_lists.push_back(std::move(emit));
        scan.actions.push_back(std::move(action));
        plan_.scans.push_back(std::move(scan));
        continue;
      }
      // Dyadic: probe from the lhs variable, index the rhs variable.
      const std::string probe_var = t.lhs.var;
      const std::string build_var = t.rhs.var;
      std::string key = "ij#" + t.ToString();
      bool fresh = structure_keys_.count(key) == 0;
      size_t id = InternStructure(key, {probe_var, build_var},
                                  "ij_" + probe_var + "_" + build_var);
      plan_.conj_inputs[c].push_back(id);
      if (!fresh) continue;
      size_t index_id =
          InternIndex(build_var, t.rhs.component_pos,
                      /*ordered=*/t.op != CompareOp::kEq &&
                          t.op != CompareOp::kNe,
                      /*gates=*/{});
      {
        RelationScan scan;
        scan.relation = RelationOf(build_var);
        scan.debug_label = "index build for " + t.ToString();
        ScanAction action;
        action.var = build_var;
        action.index_builds.push_back(index_id);
        scan.actions.push_back(std::move(action));
        plan_.scans.push_back(std::move(scan));
      }
      IndirectJoinEmit emit;
      emit.structure_id = id;
      emit.index_id = index_id;
      emit.op = t.op;
      emit.probe_component_pos = t.lhs.component_pos;
      emit.probe_column_first = true;
      if (RelationOf(probe_var) == RelationOf(build_var)) {
        PostScanProbe post;
        post.var = probe_var;
        post.emit = std::move(emit);
        plan_.post_probes.push_back(std::move(post));
        // The probe variable's range must still be collected by a scan.
        RelationScan scan;
        scan.relation = RelationOf(probe_var);
        scan.debug_label = "range of " + probe_var;
        ScanAction action;
        action.var = probe_var;
        scan.actions.push_back(std::move(action));
        plan_.scans.push_back(std::move(scan));
      } else {
        RelationScan scan;
        scan.relation = RelationOf(probe_var);
        scan.debug_label = "probe for " + t.ToString();
        ScanAction action;
        action.var = probe_var;
        action.ij_emits.push_back(std::move(emit));
        scan.actions.push_back(std::move(action));
        plan_.scans.push_back(std::move(scan));
      }
    }
  }
  return Status::OK();
}

Status PlanBuilder::AssembleGrouped() {
  PASCALR_ASSIGN_OR_RETURN(std::vector<std::string> order, OrderRelations());
  std::map<std::string, size_t> scan_pos;  // relation -> index into scans
  for (const std::string& rel : order) {
    scan_pos[rel] = plan_.scans.size();
    RelationScan scan;
    scan.relation = rel;
    scan.debug_label = "scan " + rel;
    plan_.scans.push_back(std::move(scan));
  }
  auto scan_rank = [&](const std::string& var) {
    return scan_pos.at(RelationOf(var));
  };

  const DnfMatrix& matrix = plan_.sf.matrix;

  // Single lists: per (conjunction, var) with only monadic terms under S2;
  // per term below S2.
  for (size_t c = 0; c < matrix.disjuncts.size(); ++c) {
    const Conjunction& conj = matrix.disjuncts[c];
    std::set<std::string> vars_done;
    for (const JoinTerm& t : conj.terms) {
      std::vector<std::string> tvars = t.Variables();
      if (tvars.size() != 1) continue;
      const std::string& v = tvars[0];
      bool has_dyadic = false;
      for (const JoinTerm& u : conj.terms) {
        if (u.Variables().size() == 2 && u.References(v)) {
          has_dyadic = true;
          break;
        }
      }
      if (level_ >= OptLevel::kOneStep) {
        if (has_dyadic) continue;  // absorbed into the indirect joins
        if (vars_done.count(v) > 0) continue;
        vars_done.insert(v);
        std::vector<JoinTerm> gates = GatesFor(c, v);
        std::string key = "sl#" + v + "#" + TermsKey(gates);
        size_t id = InternStructure(key, {v}, "sl_" + v);
        plan_.conj_inputs[c].push_back(id);
        SingleListEmit emit;
        emit.structure_id = id;
        emit.gates = std::move(gates);
        ScanAction* action =
            ActionFor(&plan_.scans[scan_rank(v)], v);
        bool already = false;
        for (const SingleListEmit& e : action->single_lists) {
          already = already || e.structure_id == id;
        }
        if (!already) action->single_lists.push_back(std::move(emit));
      } else {
        // S1 only: one single list per distinct monadic term.
        std::string key = "sl#" + v + "#" + t.ToString();
        bool fresh = structure_keys_.count(key) == 0;
        size_t id = InternStructure(key, {v}, "sl_" + v);
        plan_.conj_inputs[c].push_back(id);
        if (!fresh) continue;
        SingleListEmit emit;
        emit.structure_id = id;
        emit.gates.push_back(t);
        ActionFor(&plan_.scans[scan_rank(v)], v)
            ->single_lists.push_back(std::move(emit));
      }
    }
  }

  // Indirect joins.
  for (size_t c = 0; c < matrix.disjuncts.size(); ++c) {
    const Conjunction& conj = matrix.disjuncts[c];
    for (const JoinTerm& raw : conj.terms) {
      if (raw.Variables().size() != 2) continue;
      // Probe from the variable whose relation scans later.
      JoinTerm t = raw;
      if (scan_rank(t.lhs.var) < scan_rank(t.rhs.var)) t = raw.Mirrored();
      const std::string& probe_var = t.lhs.var;
      const std::string& build_var = t.rhs.var;
      bool self = RelationOf(probe_var) == RelationOf(build_var);

      std::vector<JoinTerm> probe_gates = GatesFor(c, probe_var);
      std::vector<JoinTerm> build_gates = GatesFor(c, build_var);
      size_t index_id =
          InternIndex(build_var, t.rhs.component_pos,
                      /*ordered=*/t.op != CompareOp::kEq &&
                          t.op != CompareOp::kNe,
                      build_gates);

      // Mutual restriction (S2): other dyadic terms over probe_var in this
      // conjunction whose far side is already indexed at probe time.
      std::vector<ProbeCheck> checks;
      if (level_ >= OptLevel::kOneStep) {
        for (const JoinTerm& other_raw : conj.terms) {
          if (other_raw == raw || other_raw.Variables().size() != 2 ||
              !other_raw.References(probe_var)) {
            continue;
          }
          JoinTerm o = other_raw;
          if (o.lhs.var != probe_var) o = other_raw.Mirrored();
          const std::string& far = o.rhs.var;
          if (scan_rank(far) >= scan_rank(probe_var) ||
              RelationOf(far) == RelationOf(probe_var)) {
            continue;  // far index not available during this scan
          }
          ProbeCheck check;
          check.index_id = InternIndex(far, o.rhs.component_pos,
                                       /*ordered=*/o.op != CompareOp::kEq &&
                                           o.op != CompareOp::kNe,
                                       GatesFor(c, far));
          check.op = o.op;
          check.probe_component_pos = o.lhs.component_pos;
          checks.push_back(check);
        }
      }

      std::string key = "ij#" + t.ToString() + "#" + TermsKey(probe_gates) +
                        "#" + TermsKey(build_gates);
      for (const ProbeCheck& ck : checks) {
        key += StrFormat("#ck%zu_%d_%d", ck.index_id, static_cast<int>(ck.op),
                         ck.probe_component_pos);
      }
      bool fresh = structure_keys_.count(key) == 0;
      size_t id = InternStructure(key, {probe_var, build_var},
                                  "ij_" + probe_var + "_" + build_var);
      plan_.conj_inputs[c].push_back(id);
      if (!fresh) continue;

      // Schedule the index build in the build variable's scan.
      ScanAction* build_action =
          ActionFor(&plan_.scans[scan_rank(build_var)], build_var);
      bool have_index = false;
      for (size_t existing : build_action->index_builds) {
        have_index = have_index || existing == index_id;
      }
      if (!have_index) build_action->index_builds.push_back(index_id);
      for (const ProbeCheck& ck : checks) {
        // Co-probe indexes were interned for other terms; ensure they are
        // scheduled too (they normally already are).
        const IndexBuildSpec& spec = plan_.indexes[ck.index_id];
        ScanAction* far_action =
            ActionFor(&plan_.scans[scan_rank(spec.var)], spec.var);
        bool have = false;
        for (size_t existing : far_action->index_builds) {
          have = have || existing == ck.index_id;
        }
        if (!have) far_action->index_builds.push_back(ck.index_id);
      }

      IndirectJoinEmit emit;
      emit.structure_id = id;
      emit.index_id = index_id;
      emit.op = t.op;
      emit.probe_component_pos = t.lhs.component_pos;
      emit.probe_column_first = true;
      emit.gates = probe_gates;
      emit.corestrictions = std::move(checks);
      if (self) {
        PostScanProbe post;
        post.var = probe_var;
        post.emit = std::move(emit);
        plan_.post_probes.push_back(std::move(post));
        ActionFor(&plan_.scans[scan_rank(probe_var)], probe_var);
      } else {
        ActionFor(&plan_.scans[scan_rank(probe_var)], probe_var)
            ->ij_emits.push_back(std::move(emit));
      }
    }
  }

  // Value lists and quantifier probes (strategy 4).
  for (const ValueListSpec& vl : plan_.value_lists) {
    ActionFor(&plan_.scans[scan_rank(vl.var)], vl.var)
        ->value_list_builds.push_back(vl.id);
  }
  for (const DerivedPredicate& d : pushdown_.derived) {
    std::string key = StrFormat("derived#%zu#%s#%s#%zu", d.conj, d.vm.c_str(),
                                d.vn.c_str(), d.probe.value_list_id);
    size_t id = structure_keys_.at(key);  // interned by AddDerivedStructures
    QuantProbeEmit emit;
    emit.structure_id = id;
    emit.probe = d.probe;
    ActionFor(&plan_.scans[scan_rank(d.vm)], d.vm)
        ->quant_probes.push_back(std::move(emit));
  }

  // Every prefix variable needs a range-collecting action.
  for (const QuantifiedVar& qv : plan_.sf.prefix) {
    ActionFor(&plan_.scans[scan_pos.at(RelationOf(qv.var))], qv.var);
  }
  return Status::OK();
}

Result<QueryPlan> PlanBuilder::Build() {
  AddDerivedStructures();
  if (level_ == OptLevel::kNaive) {
    PASCALR_RETURN_IF_ERROR(AssembleNaive());
    // Naive mode still needs every variable's range: append range scans
    // for variables no structure scan covered.
    std::set<std::string> covered;
    for (const RelationScan& scan : plan_.scans) {
      for (const ScanAction& a : scan.actions) covered.insert(a.var);
    }
    for (const QuantifiedVar& qv : plan_.sf.prefix) {
      if (plan_.IsEliminated(qv.var) || covered.count(qv.var) > 0) continue;
      RelationScan scan;
      scan.relation = RelationOf(qv.var);
      scan.debug_label = "range of " + qv.var;
      ScanAction action;
      action.var = qv.var;
      scan.actions.push_back(std::move(action));
      plan_.scans.push_back(std::move(scan));
    }
  } else {
    PASCALR_RETURN_IF_ERROR(AssembleGrouped());
  }
  return std::move(plan_);
}

}  // namespace

Result<QueryPlan> BuildScanPlan(StandardForm sf, OptLevel level,
                                QuantPushdownResult pushdown,
                                const Database& db) {
  PlanBuilder builder(std::move(sf), level, std::move(pushdown), db);
  return builder.Build();
}

}  // namespace pascalr
