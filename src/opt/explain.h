// EXPLAIN output: renders a planned query — standard form, transformation
// trail, collection-phase scan schedule, combination inputs — in a layout
// that mirrors the paper's worked examples.

#ifndef PASCALR_OPT_EXPLAIN_H_
#define PASCALR_OPT_EXPLAIN_H_

#include <cstdint>
#include <string>

#include "opt/planner.h"

namespace pascalr {

class PipelineProfile;  // obs/profile.h

/// Full plan rendering. Cost-based plans additionally print the candidate
/// table and the chosen plan's estimated counters.
std::string ExplainPlan(const PlannedQuery& planned);

/// One line per collection structure with its cardinality — the Figure 2
/// exhibit for a finished run.
std::string ExplainCollection(const QueryPlan& plan,
                              const CollectionResult& collection);

/// Side-by-side estimated vs. actual work counters for an executed plan —
/// the accountability exhibit of the cost model (only meaningful when the
/// plan was chosen cost-based, but renders for any estimate).
std::string ExplainEstimatedVsActual(const PlannedQuery& planned,
                                     const ExecStats& actual);

/// The EXPLAIN ANALYZE appendix: the profiled operator tree (actual rows,
/// per-operator self-time, estimated-vs-actual q-error), a run summary
/// line, and — for cost-based plans — the estimated-vs-actual counter
/// table. `wall_ns` is the whole run (open + drain); `result_tuples` the
/// post-dedup result cardinality.
std::string ExplainAnalyzeReport(const PlannedQuery& planned,
                                 const PipelineProfile& profile,
                                 const ExecStats& actual,
                                 size_t result_tuples, uint64_t wall_ns);

}  // namespace pascalr

#endif  // PASCALR_OPT_EXPLAIN_H_
