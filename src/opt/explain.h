// EXPLAIN output: renders a planned query — standard form, transformation
// trail, collection-phase scan schedule, combination inputs — in a layout
// that mirrors the paper's worked examples.

#ifndef PASCALR_OPT_EXPLAIN_H_
#define PASCALR_OPT_EXPLAIN_H_

#include <string>

#include "opt/planner.h"

namespace pascalr {

/// Full plan rendering.
std::string ExplainPlan(const PlannedQuery& planned);

/// One line per collection structure with its cardinality — the Figure 2
/// exhibit for a finished run.
std::string ExplainCollection(const QueryPlan& plan,
                              const CollectionResult& collection);

}  // namespace pascalr

#endif  // PASCALR_OPT_EXPLAIN_H_
