#include "opt/params.h"

#include <functional>

namespace pascalr {

namespace {

/// Applies `visit` to every operand of every join term under `f`,
/// including extended-range restrictions of nested quantifiers.
void VisitFormulaOperands(Formula* f,
                          const std::function<void(Operand*)>& visit) {
  switch (f->kind()) {
    case FormulaKind::kConst:
      return;
    case FormulaKind::kCompare:
      visit(&f->term().lhs);
      visit(&f->term().rhs);
      return;
    case FormulaKind::kNot:
      VisitFormulaOperands(f->mutable_child(), visit);
      return;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f->children()) {
        VisitFormulaOperands(c.get(), visit);
      }
      return;
    case FormulaKind::kQuant:
      if (f->range().IsExtended()) {
        VisitFormulaOperands(f->range().restriction.get(), visit);
      }
      VisitFormulaOperands(f->mutable_child(), visit);
      return;
  }
}

/// Substitute-or-patch for one operand: `substitute` converts kParam
/// operands into literals; patching only updates already substituted slots.
Status ApplyBinding(Operand* op, const ParamBindings& bindings,
                    bool substitute, size_t* patched) {
  if (op->param_name.empty()) return Status::OK();
  if (op->is_param() && !substitute) return Status::OK();
  if (!op->is_param() && substitute) {
    // Already a literal slot; substitution still refreshes the value.
  }
  auto it = bindings.find(op->param_name);
  if (it == bindings.end()) {
    if (op->is_param()) {
      return Status::InvalidArgument("no value bound for parameter $" +
                                     op->param_name);
    }
    return Status::OK();  // patch: tags without a new binding keep values
  }
  op->kind = Operand::Kind::kLiteral;
  op->literal = it->second;
  op->enum_label.clear();
  if (patched != nullptr) ++*patched;
  return Status::OK();
}

void PatchTerms(std::vector<JoinTerm>* terms, const ParamBindings& bindings,
                size_t* patched) {
  for (JoinTerm& t : *terms) {
    (void)ApplyBinding(&t.lhs, bindings, /*substitute=*/false, patched);
    (void)ApplyBinding(&t.rhs, bindings, /*substitute=*/false, patched);
  }
}

bool OperandsHaveParams(const Formula& f) {
  bool found = false;
  VisitFormulaOperands(const_cast<Formula*>(&f), [&](Operand* op) {
    if (!op->param_name.empty()) found = true;
  });
  return found;
}

}  // namespace

Result<ParamBindings> CheckParamBindings(
    const std::map<std::string, Type>& param_types,
    const ParamBindings& bindings) {
  for (const auto& [name, value] : bindings) {
    if (param_types.find(name) == param_types.end()) {
      return Status::InvalidArgument("query declares no parameter $" + name);
    }
    (void)value;
  }
  ParamBindings out;
  for (const auto& [name, type] : param_types) {
    auto it = bindings.find(name);
    if (it == bindings.end()) {
      return Status::InvalidArgument("no value bound for parameter $" + name);
    }
    Value value = it->second;
    // Enumeration parameters accept their label spelling.
    if (type.kind() == TypeKind::kEnum && value.is_string() &&
        type.enum_info() != nullptr) {
      int ordinal = type.enum_info()->OrdinalOf(value.AsString());
      if (ordinal < 0) {
        return Status::NotFound("'" + value.AsString() +
                                "' is not a label of " +
                                type.enum_info()->name);
      }
      value = Value::MakeEnum(ordinal);
    }
    Value probe = value;  // kind agreement against the declared type
    bool kind_ok = false;
    switch (type.kind()) {
      case TypeKind::kInt:
        kind_ok = probe.is_int();
        break;
      case TypeKind::kString:
        kind_ok = probe.is_string();
        break;
      case TypeKind::kBool:
        kind_ok = probe.is_bool();
        break;
      case TypeKind::kEnum:
        kind_ok = probe.is_enum();
        break;
    }
    if (!kind_ok) {
      return Status::TypeMismatch("parameter $" + name + " expects " +
                                  type.ToString());
    }
    out.emplace(name, std::move(value));
  }
  return out;
}

Status BindSelectionParams(SelectionExpr* sel,
                           const ParamBindings& bindings) {
  Status status = Status::OK();
  auto bind = [&](Operand* op) {
    Status st = ApplyBinding(op, bindings, /*substitute=*/true, nullptr);
    if (!st.ok() && status.ok()) status = st;
  };
  for (RangeDecl& decl : sel->free_vars) {
    if (decl.range.IsExtended()) {
      VisitFormulaOperands(decl.range.restriction.get(), bind);
    }
  }
  if (sel->wff != nullptr) VisitFormulaOperands(sel->wff.get(), bind);
  return status;
}

size_t PatchPlanParams(QueryPlan* plan, const ParamBindings& bindings) {
  size_t patched = 0;
  auto patch_op = [&](Operand* op) {
    (void)ApplyBinding(op, bindings, /*substitute=*/false, &patched);
  };

  // Standard form: prefix range restrictions, matrix terms, original NNF
  // (consulted by runtime adaptation when a range is empty).
  for (QuantifiedVar& qv : plan->sf.prefix) {
    if (qv.range.IsExtended()) {
      VisitFormulaOperands(qv.range.restriction.get(), patch_op);
    }
  }
  for (Conjunction& conj : plan->sf.matrix.disjuncts) {
    PatchTerms(&conj.terms, bindings, &patched);
  }
  if (plan->sf.original_nnf != nullptr) {
    VisitFormulaOperands(plan->sf.original_nnf.get(), patch_op);
  }

  // Collection phase: every gate list the scans evaluate.
  for (IndexBuildSpec& spec : plan->indexes) {
    PatchTerms(&spec.gates, bindings, &patched);
  }
  for (ValueListSpec& spec : plan->value_lists) {
    PatchTerms(&spec.gates, bindings, &patched);
  }
  for (RelationScan& scan : plan->scans) {
    for (ScanAction& action : scan.actions) {
      for (SingleListEmit& emit : action.single_lists) {
        PatchTerms(&emit.gates, bindings, &patched);
      }
      for (IndirectJoinEmit& emit : action.ij_emits) {
        PatchTerms(&emit.gates, bindings, &patched);
      }
      for (QuantProbeEmit& emit : action.quant_probes) {
        PatchTerms(&emit.gates, bindings, &patched);
      }
    }
  }
  for (PostScanProbe& probe : plan->post_probes) {
    PatchTerms(&probe.emit.gates, bindings, &patched);
  }
  return patched;
}

bool FormulaHasParams(const Formula& f) { return OperandsHaveParams(f); }

Status BindFormulaParams(Formula* f, const ParamBindings& bindings) {
  Status status = Status::OK();
  VisitFormulaOperands(f, [&](Operand* op) {
    Status st = ApplyBinding(op, bindings, /*substitute=*/true, nullptr);
    if (!st.ok() && status.ok()) status = st;
  });
  return status;
}

void CollectParamRanges(const Formula& f, std::vector<RangeExpr>* out) {
  switch (f.kind()) {
    case FormulaKind::kConst:
    case FormulaKind::kCompare:
      return;
    case FormulaKind::kNot:
      CollectParamRanges(f.child(), out);
      return;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f.children()) CollectParamRanges(*c, out);
      return;
    case FormulaKind::kQuant:
      if (RangeHasParams(f.range())) out->push_back(f.range().Clone());
      CollectParamRanges(f.child(), out);
      return;
  }
}

void CollectParamRanges(const SelectionExpr& sel,
                        std::vector<RangeExpr>* out) {
  for (const RangeDecl& decl : sel.free_vars) {
    if (RangeHasParams(decl.range)) out->push_back(decl.range.Clone());
  }
  if (sel.wff != nullptr) CollectParamRanges(*sel.wff, out);
}

bool RangeHasParams(const RangeExpr& range) {
  return range.IsExtended() && OperandsHaveParams(*range.restriction);
}

bool SelectionHasUnboundParams(const SelectionExpr& sel) {
  bool found = false;
  auto check = [&](Operand* op) {
    if (op->is_param()) found = true;
  };
  for (const RangeDecl& decl : sel.free_vars) {
    if (decl.range.IsExtended()) {
      VisitFormulaOperands(decl.range.restriction.get(), check);
    }
  }
  if (sel.wff != nullptr) VisitFormulaOperands(sel.wff.get(), check);
  return found;
}

}  // namespace pascalr
