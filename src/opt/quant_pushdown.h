// Strategy 4 (paper §4.4): evaluating quantifiers in the collection phase.
//
// The innermost quantified variable vn is *eliminated* from the
// combination phase when the quantified sub-formula contains only monadic
// terms over vn plus dyadic terms against a single other variable vm:
//
//  - existential vn: each matrix disjunct referencing vn is handled
//    independently (SOME distributes over OR);
//  - universal vn: vn must occur in no more than one disjunct (Lemma 1),
//    and its — possibly extended — range must be non-empty (the planner
//    checks this at runtime);
//  - when vn is not innermost, adjacent *equal* quantifiers are swapped to
//    bubble it inward (Example 4.7 swaps SOME c and SOME t).
//
// Execution: while vn's relation is scanned, a *value list* of the joined
// component is built (only a min/max/at-most-one summary where the paper's
// special cases apply); while vm's relation is scanned, the quantifier is
// decided per element and survivors enter a derived single list.
// Eliminations cascade: a derived predicate targeting vn becomes a probe
// gate of vn's own value list (Example 4.7 eliminates c, then t, then p).

#ifndef PASCALR_OPT_QUANT_PUSHDOWN_H_
#define PASCALR_OPT_QUANT_PUSHDOWN_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "exec/plan.h"
#include "normalize/standard_form.h"

namespace pascalr {

/// A quantified predicate now decided during vm's scan; realised as a
/// derived single list over vm joined into conjunction `conj`.
struct DerivedPredicate {
  size_t conj = 0;
  std::string vm;
  std::string vn;  ///< the eliminated variable (for explain output)
  QuantProbeGate probe;
};

struct QuantPushdownResult {
  std::vector<std::string> eliminated;
  std::vector<ValueListSpec> value_lists;  ///< ids are vector positions
  std::vector<DerivedPredicate> derived;   ///< per-conjunction survivors

  std::string ToString() const;
};

/// Rewrites `sf`'s matrix in place (terms over eliminated variables are
/// removed); eliminated variables stay in the prefix — the planner marks
/// them eliminated so the combination phase skips them while the
/// collection phase still scans their ranges to build value lists.
QuantPushdownResult ApplyQuantPushdown(StandardForm* sf);

}  // namespace pascalr

#endif  // PASCALR_OPT_QUANT_PUSHDOWN_H_
