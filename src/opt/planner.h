// The query planner: normalises a bound query to the standard form,
// applies the requested strategy level, performs the paper's *runtime
// adaptation* for empty ranges (Lemma 1 / Example 2.2), compiles a
// QueryPlan and runs it.
//
// Adaptation rules (the compile-time standard form assumes non-empty
// ranges):
//  1. if the base relation of any quantified range — or a user-written
//     extended range — is empty, the original NNF formula is folded with
//     SOME v IN [] (B) = FALSE / ALL v IN [] (B) = TRUE and re-normalised;
//  2. if a strategy-3 extension turns out to denote an empty range, the
//     extension is abandoned: the query is re-planned at strategy level 2
//     (the unextended standard form is exact once rule 1 holds).

#ifndef PASCALR_OPT_PLANNER_H_
#define PASCALR_OPT_PLANNER_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "catalog/database.h"
#include "cost/cost_model.h"
#include "exec/evaluator.h"
#include "exec/plan.h"
#include "opt/quant_pushdown.h"
#include "opt/range_extension.h"
#include "semantics/binder.h"

namespace pascalr {

struct PlannerOptions {
  OptLevel level = OptLevel::kQuantPush;
  DivisionAlgorithm division = DivisionAlgorithm::kHash;
  /// Consult the catalog for fresh permanent indexes before building
  /// transient ones (paper §3.2). Ungated index specs only.
  bool use_permanent_indexes = false;
  /// Enable the paper's §4.3 closing suggestion: conjunctive-normal-form
  /// range extensions (disjunctive restrictions). Applies at level >= 3.
  bool use_cnf_extensions = true;
  /// Cost-based plan selection (same as level = OptLevel::kAuto): the
  /// plan-search driver enumerates strategy levels 0-4, hash-vs-btree
  /// index choices, permanent-index use, and the division algorithm,
  /// costs each candidate against catalog statistics, and plans the
  /// cheapest. Run ANALYZE (Database::Analyze) for accurate estimates.
  bool cost_based = false;
  /// Build every transient index as a B+tree even where a hash index
  /// suffices — a physical knob the plan-search driver enumerates.
  bool prefer_ordered_indexes = false;
  /// Selinger-style join ordering (src/joinorder/) over each
  /// conjunction's combination inputs: when every relation a conjunction
  /// ranges over has fresh statistics and its input count is within
  /// join_dp_max_inputs, a dynamic program picks the join tree; the
  /// executor keeps its greedy smallest-first heuristic otherwise (and
  /// whenever the DP predicts no strict improvement over greedy).
  bool join_order_dp = true;
  /// Conjunctions with more inputs than this skip the DP (2^n table).
  size_t join_dp_max_inputs = 12;
  /// Let the DP consider bushy join trees, not just left-deep ones.
  bool join_dp_bushy = false;
  /// Stream the combination phase through the join-iterator pipeline
  /// (src/pipeline/) when executing via Cursor: Open runs only the
  /// collection phase, Next pulls one combination row at a time, and an
  /// early Close skips unperformed join work. Off forces the
  /// materializing combination path everywhere. Both modes yield the same
  /// tuple multiset after dedup (asserted by the pipeline property
  /// tests); default on.
  bool pipeline = true;
  /// Collection-phase population policy (`SET COLLECTION EAGER|LAZY;`).
  /// kEager builds every structure at Cursor::Open (the paper's phase
  /// split and the oracle); kLazy defers all collection work behind Next
  /// on pipelined cursors — structures materialise fully on first use,
  /// per requested join key, or stream without materialising. Same tuple
  /// multiset either way (lazy property sweep); lazy wins when cursors
  /// stop early and can lose on full drains of small relations (repeat
  /// scans). Only the pipelined path can exploit it.
  CollectionPolicy collection = CollectionPolicy::kEager;
  /// Rows per pipeline chunk on the batched cursor drain
  /// (`SET BATCH <n>;`); 1 recovers exact row-at-a-time execution.
  size_t batch_size = 1024;
  /// Worker threads for morsel-driven parallel drains
  /// (`SET PARALLEL <n>;`); 1 = fully serial.
  size_t parallel = 1;
};

/// Field-wise equality — the prepared-query plan cache uses it to detect
/// that the session's options changed between executions.
inline bool operator==(const PlannerOptions& a, const PlannerOptions& b) {
  return a.level == b.level && a.division == b.division &&
         a.use_permanent_indexes == b.use_permanent_indexes &&
         a.use_cnf_extensions == b.use_cnf_extensions &&
         a.cost_based == b.cost_based &&
         a.prefer_ordered_indexes == b.prefer_ordered_indexes &&
         a.join_order_dp == b.join_order_dp &&
         a.join_dp_max_inputs == b.join_dp_max_inputs &&
         a.join_dp_bushy == b.join_dp_bushy && a.pipeline == b.pipeline &&
         a.collection == b.collection && a.batch_size == b.batch_size &&
         a.parallel == b.parallel;
}
inline bool operator!=(const PlannerOptions& a, const PlannerOptions& b) {
  return !(a == b);
}

/// A fully planned (not yet executed) query with its transformation trail.
struct PlannedQuery {
  QueryPlan plan;
  RangeExtensionReport range_extension;
  QuantPushdownResult quant_pushdown_summary;  ///< value_lists empty; text only
  std::string adaptation_notes;  ///< runtime adaptations that fired
  uint64_t replans = 0;

  /// Cost-based selection trail (OptLevel::kAuto / cost_based): the
  /// chosen plan's estimate and one line per candidate considered.
  bool cost_based = false;
  CostEstimate estimate;
  std::string cost_candidates;

  /// Saved collection-phase cost walk (filled when the join-order
  /// optimizer needed structure estimates), so the plan-search driver can
  /// cost this candidate without a second collection walk.
  CollectionCost collection_cost;
};

/// The result of running a query end to end.
struct QueryRun {
  std::vector<Tuple> tuples;
  ExecStats stats;
  PlannedQuery planned;
  /// Materialised collection-phase structures (Figure 2 exhibits).
  CollectionResult collection;
};

BoundQuery CloneBoundQuery(const BoundQuery& query);

/// Deep copies (StandardForm is move-only; everything else is copyable).
/// The shared plan cache hands one compiled PlannedQuery to many sessions,
/// and plans are parameter-patched in place per execution — so every
/// adopter clones before patching.
QueryPlan CloneQueryPlan(const QueryPlan& plan);
PlannedQuery ClonePlannedQuery(const PlannedQuery& planned);

/// Normalise + optimise + compile. Performs adaptation rules 1 and 2.
Result<PlannedQuery> PlanQuery(const Database& db, BoundQuery query,
                               const PlannerOptions& options);

/// PlanQuery + ExecutePlan.
Result<QueryRun> RunQuery(const Database& db, BoundQuery query,
                          const PlannerOptions& options);

/// True if the (possibly extended) range currently denotes no element.
bool RangeIsEmpty(const Database& db, const RangeExpr& range);

}  // namespace pascalr

#endif  // PASCALR_OPT_PLANNER_H_
