// Compiles a (possibly strategy-3/4 rewritten) standard form into a
// QueryPlan.
//
//  - OptLevel::kNaive reproduces the Palermo baseline: every join term is
//    evaluated by its own relation scan(s) — one scan per single list, an
//    index-build scan plus a probe scan per indirect join.
//  - OptLevel::kParallel (strategy 1) groups all work on a relation into
//    one scan; scan order is chosen by cardinality under the topological
//    constraints "index before probe" and "value list before quantifier
//    probe".
//  - OptLevel::kOneStep (strategy 2) additionally attaches monadic gates
//    to indirect-join emissions and index builds (absorbed terms leave the
//    combination inputs) and lets co-occurring indirect joins restrict
//    each other via semi-join probe checks.
//
// Strategy 3 and 4 rewrites happen before this pass (see planner.h).

#ifndef PASCALR_OPT_SCAN_PLAN_H_
#define PASCALR_OPT_SCAN_PLAN_H_

#include "base/status.h"
#include "catalog/database.h"
#include "exec/plan.h"
#include "opt/quant_pushdown.h"

namespace pascalr {

Result<QueryPlan> BuildScanPlan(StandardForm sf, OptLevel level,
                                QuantPushdownResult pushdown,
                                const Database& db);

}  // namespace pascalr

#endif  // PASCALR_OPT_SCAN_PLAN_H_
