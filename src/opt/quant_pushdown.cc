#include "opt/quant_pushdown.h"

#include <algorithm>
#include <set>

#include "base/str_util.h"

namespace pascalr {

namespace {

bool MonadicOver(const JoinTerm& t, const std::string& var) {
  std::vector<std::string> vars = t.Variables();
  return vars.size() == 1 && vars[0] == var;
}

/// The elimination recipe for one conjunction.
struct ConjElimination {
  size_t conj = 0;
  JoinTerm dyadic;              ///< oriented vm-side first
  std::string vm;
  std::vector<JoinTerm> vn_gates;
  std::vector<size_t> consumed_derived;  ///< indices into `pending`
};

/// Plans the elimination of `vn` (entry `qv`) across the matrix; returns
/// false if the paper's preconditions do not hold.
bool PlanElimination(const StandardForm& sf, const QuantifiedVar& qv,
                     const std::vector<DerivedPredicate>& pending,
                     const std::set<std::string>& eliminated,
                     std::vector<ConjElimination>* out) {
  const std::string& vn = qv.var;
  const VarBinding& vn_binding = sf.vars.at(vn);

  std::vector<size_t> referencing;
  for (size_t c = 0; c < sf.matrix.disjuncts.size(); ++c) {
    bool refs = sf.matrix.disjuncts[c].References(vn);
    for (size_t p = 0; p < pending.size() && !refs; ++p) {
      refs = pending[p].conj == c && pending[p].vm == vn;
    }
    if (refs) referencing.push_back(c);
  }
  if (referencing.empty()) return true;  // trivial elimination
  if (qv.quantifier == Quantifier::kAll && referencing.size() > 1) {
    return false;  // Lemma 1: universal splitting needs a single disjunct
  }

  for (size_t c : referencing) {
    const Conjunction& conj = sf.matrix.disjuncts[c];
    ConjElimination elim;
    elim.conj = c;
    int dyadic_count = 0;
    for (const JoinTerm& t : conj.terms) {
      if (!t.References(vn)) continue;
      if (MonadicOver(t, vn)) {
        elim.vn_gates.push_back(t);
        continue;
      }
      ++dyadic_count;
      // Orient vm-side first.
      elim.dyadic = (t.lhs.is_component() && t.lhs.var == vn) ? t.Mirrored() : t;
      elim.vm = elim.dyadic.lhs.var;
    }
    if (dyadic_count != 1) return false;  // need exactly one link to one vm
    if (eliminated.count(elim.vm) > 0) return false;
    const VarBinding& vm_binding = sf.vars.at(elim.vm);
    if (vm_binding.relation_name == vn_binding.relation_name) {
      return false;  // value list and probe would share one scan
    }
    // The dyadic term must compare vm's component with vn's component (no
    // literals can appear in a dyadic term by definition).
    for (size_t p = 0; p < pending.size(); ++p) {
      if (pending[p].conj == c && pending[p].vm == vn) {
        elim.consumed_derived.push_back(p);
      }
    }
    out->push_back(std::move(elim));
  }
  return true;
}

}  // namespace

QuantPushdownResult ApplyQuantPushdown(StandardForm* sf) {
  QuantPushdownResult result;
  std::vector<DerivedPredicate> pending;
  std::set<std::string> eliminated;

  bool progress = true;
  while (progress) {
    progress = false;
    // Active quantified entries, rightmost first.
    std::vector<size_t> active;
    for (size_t i = 0; i < sf->prefix.size(); ++i) {
      const QuantifiedVar& qv = sf->prefix[i];
      if (qv.quantifier != Quantifier::kFree && eliminated.count(qv.var) == 0) {
        active.push_back(i);
      }
    }
    for (size_t a = active.size(); a-- > 0 && !progress;) {
      const QuantifiedVar& qv = sf->prefix[active[a]];
      // Swap legality: bubbling to the innermost position passes only
      // quantifiers equal to qv's (equal quantifiers commute).
      bool can_bubble = true;
      for (size_t b = a + 1; b < active.size(); ++b) {
        if (sf->prefix[active[b]].quantifier != qv.quantifier) {
          can_bubble = false;
          break;
        }
      }
      if (!can_bubble) continue;

      std::vector<ConjElimination> plan;
      if (!PlanElimination(*sf, qv, pending, eliminated, &plan)) continue;

      // Commit: value lists, derived predicates, matrix surgery.
      const std::string vn = qv.var;
      for (ConjElimination& elim : plan) {
        ValueListSpec spec;
        spec.id = result.value_lists.size();
        spec.var = vn;
        // vn's side is the rhs of the oriented dyadic term.
        spec.component_pos = elim.dyadic.rhs.component_pos;
        spec.mode = ValueList::ModeFor(elim.dyadic.op, qv.quantifier);
        spec.gates = elim.vn_gates;
        spec.debug_name = "vl_" + vn + "_" + elim.dyadic.rhs.component;
        // Cascaded gates: derived predicates that targeted vn.
        for (size_t p : elim.consumed_derived) {
          spec.probe_gates.push_back(pending[p].probe);
        }
        result.value_lists.push_back(spec);

        DerivedPredicate derived;
        derived.conj = elim.conj;
        derived.vm = elim.vm;
        derived.vn = vn;
        derived.probe.value_list_id = spec.id;
        derived.probe.quantifier = qv.quantifier;
        derived.probe.op = elim.dyadic.op;
        derived.probe.probe_component_pos = elim.dyadic.lhs.component_pos;
        pending.push_back(derived);

        // Remove vn's terms from the conjunction.
        Conjunction& conj = sf->matrix.disjuncts[elim.conj];
        conj.terms.erase(
            std::remove_if(conj.terms.begin(), conj.terms.end(),
                           [&](const JoinTerm& t) { return t.References(vn); }),
            conj.terms.end());
      }
      // Drop consumed derived predicates (descending index order).
      std::vector<size_t> consumed;
      for (const ConjElimination& elim : plan) {
        consumed.insert(consumed.end(), elim.consumed_derived.begin(),
                        elim.consumed_derived.end());
      }
      std::sort(consumed.rbegin(), consumed.rend());
      consumed.erase(std::unique(consumed.begin(), consumed.end()),
                     consumed.end());
      for (size_t p : consumed) {
        pending.erase(pending.begin() + static_cast<long>(p));
      }

      eliminated.insert(vn);
      result.eliminated.push_back(vn);
      progress = true;
    }
  }

  result.derived = std::move(pending);
  return result;
}

std::string QuantPushdownResult::ToString() const {
  std::string out;
  for (const std::string& v : eliminated) {
    out += "  quantifier of " + v + " evaluated in the collection phase\n";
  }
  for (const DerivedPredicate& d : derived) {
    out += StrFormat(
        "  conjunction %zu: derived single list on %s (probe of %s's value "
        "list)\n",
        d.conj, d.vm.c_str(), d.vn.c_str());
  }
  if (out.empty()) out = "  (no quantifier push-down)\n";
  return out;
}

}  // namespace pascalr
