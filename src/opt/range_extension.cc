#include "opt/range_extension.h"

#include <algorithm>

#include "base/str_util.h"

namespace pascalr {

namespace {

bool SameTermEither(const JoinTerm& a, const JoinTerm& b) {
  return a == b || a.Mirrored() == b;
}

/// True if `t` is monadic and references exactly `var`.
bool MonadicOver(const JoinTerm& t, const std::string& var) {
  std::vector<std::string> vars = t.Variables();
  return vars.size() == 1 && vars[0] == var;
}

void AddToRestriction(RangeExpr* range, const JoinTerm& term) {
  FormulaPtr cmp = Formula::Compare(term);
  if (range->restriction == nullptr) {
    range->restriction = std::move(cmp);
  } else {
    range->restriction =
        Formula::And(std::move(range->restriction), std::move(cmp));
  }
}

/// Existential/free extension for one variable. Returns moved terms.
///
/// For an *existential* variable it suffices that the factored term occurs
/// in every disjunct that references the variable: a disjunct without the
/// variable keeps its truth value as long as the extended range is
/// non-empty (which the planner guards at run time). A *free* variable is
/// different — its bindings are delivered to the result, so a disjunct
/// that does not mention it would admit every range element; the term must
/// then occur in EVERY disjunct.
std::vector<JoinTerm> ExtendExistential(StandardForm* sf,
                                        QuantifiedVar* qv) {
  const bool is_free = qv->quantifier == Quantifier::kFree;
  std::vector<size_t> referencing;
  for (size_t i = 0; i < sf->matrix.disjuncts.size(); ++i) {
    if (sf->matrix.disjuncts[i].References(qv->var)) {
      referencing.push_back(i);
    } else if (is_free) {
      return {};  // a v-free disjunct blocks factoring for a free variable
    }
  }
  if (referencing.empty()) return {};

  // Candidates: monadic terms over the variable in the first referencing
  // disjunct that recur in all the others.
  std::vector<JoinTerm> candidates;
  for (const JoinTerm& t : sf->matrix.disjuncts[referencing[0]].terms) {
    if (!MonadicOver(t, qv->var)) continue;
    bool everywhere = true;
    for (size_t k = 1; k < referencing.size() && everywhere; ++k) {
      const Conjunction& c = sf->matrix.disjuncts[referencing[k]];
      everywhere = std::any_of(c.terms.begin(), c.terms.end(),
                               [&](const JoinTerm& u) {
                                 return SameTermEither(t, u);
                               });
    }
    if (everywhere) candidates.push_back(t);
  }
  if (candidates.empty()) return {};

  for (size_t idx : referencing) {
    Conjunction& c = sf->matrix.disjuncts[idx];
    c.terms.erase(std::remove_if(c.terms.begin(), c.terms.end(),
                                 [&](const JoinTerm& u) {
                                   return std::any_of(
                                       candidates.begin(), candidates.end(),
                                       [&](const JoinTerm& t) {
                                         return SameTermEither(t, u);
                                       });
                                 }),
                  c.terms.end());
  }
  for (const JoinTerm& t : candidates) AddToRestriction(&qv->range, t);
  return candidates;
}

/// Universal extension: negate single-monadic-term disjuncts into the
/// range. Returns the (negated) terms; counts removed disjuncts.
std::vector<JoinTerm> ExtendUniversal(StandardForm* sf, QuantifiedVar* qv,
                                      size_t* disjuncts_removed) {
  std::vector<JoinTerm> moved;
  std::vector<Conjunction> kept;
  for (Conjunction& c : sf->matrix.disjuncts) {
    if (c.terms.size() == 1 && MonadicOver(c.terms[0], qv->var)) {
      JoinTerm negated = c.terms[0].Negated();
      AddToRestriction(&qv->range, negated);
      moved.push_back(negated);
      ++(*disjuncts_removed);
    } else {
      kept.push_back(std::move(c));
    }
  }
  sf->matrix.disjuncts = std::move(kept);
  return moved;
}

void AddFormulaToRestriction(RangeExpr* range, FormulaPtr f) {
  if (range->restriction == nullptr) {
    range->restriction = std::move(f);
  } else {
    range->restriction =
        Formula::And(std::move(range->restriction), std::move(f));
  }
}

/// CNF extension, existential/free case: if every disjunct referencing the
/// variable still carries monadic terms over it, their per-disjunct
/// conjunctions form an implied disjunctive restriction on the range. The
/// matrix is left untouched — only the range shrinks.
bool CnfExtendExistential(StandardForm* sf, QuantifiedVar* qv) {
  const bool is_free = qv->quantifier == Quantifier::kFree;
  std::vector<FormulaPtr> groups;
  bool any_referencing = false;
  for (const Conjunction& c : sf->matrix.disjuncts) {
    if (!c.References(qv->var)) {
      if (is_free) return false;  // see ExtendExistential
      continue;
    }
    any_referencing = true;
    std::vector<FormulaPtr> monadics;
    for (const JoinTerm& t : c.terms) {
      if (MonadicOver(t, qv->var)) monadics.push_back(Formula::Compare(t));
    }
    if (monadics.empty()) return false;  // this disjunct admits any element
    groups.push_back(Formula::And(std::move(monadics)));
  }
  if (!any_referencing || groups.empty()) return false;
  // Deduplicate structurally identical groups.
  std::vector<FormulaPtr> unique;
  for (FormulaPtr& g : groups) {
    bool seen = false;
    for (const FormulaPtr& u : unique) seen = seen || u->Equals(*g);
    if (!seen) unique.push_back(std::move(g));
  }
  // A single group would duplicate what conjunctive extension already
  // handles (and with >1 referencing disjunct it would be wrong to
  // conjoin); only a genuine disjunction is new information.
  if (unique.size() < 2) return false;
  AddFormulaToRestriction(&qv->range, Formula::Or(std::move(unique)));
  return true;
}

/// CNF extension, universal case: a *multi-term* disjunct consisting only
/// of monadic terms over the variable is absorbed as the negated
/// conjunction (the single-term case is the classic §4.3 rule).
bool CnfExtendUniversal(StandardForm* sf, QuantifiedVar* qv,
                        size_t* disjuncts_removed) {
  bool extended = false;
  std::vector<Conjunction> kept;
  for (Conjunction& c : sf->matrix.disjuncts) {
    bool pure_monadic =
        c.terms.size() >= 2 &&
        std::all_of(c.terms.begin(), c.terms.end(), [&](const JoinTerm& t) {
          return MonadicOver(t, qv->var);
        });
    if (pure_monadic) {
      // NOT (m1 AND ... AND mk) == (NOT m1) OR ... OR (NOT mk).
      std::vector<FormulaPtr> negs;
      for (const JoinTerm& t : c.terms) {
        negs.push_back(Formula::Compare(t.Negated()));
      }
      AddFormulaToRestriction(&qv->range, Formula::Or(std::move(negs)));
      ++(*disjuncts_removed);
      extended = true;
    } else {
      kept.push_back(std::move(c));
    }
  }
  sf->matrix.disjuncts = std::move(kept);
  return extended;
}

}  // namespace

RangeExtensionReport ApplyRangeExtension(StandardForm* sf, bool use_cnf) {
  RangeExtensionReport report;
  // Free and existential variables first (their extensions can leave a
  // universal variable alone in a disjunct, enabling the universal rule —
  // Example 4.5's `prof` factoring precedes the `pyear` absorption).
  for (QuantifiedVar& qv : sf->prefix) {
    if (qv.quantifier == Quantifier::kAll) continue;
    for (JoinTerm& t : ExtendExistential(sf, &qv)) {
      report.extensions.push_back({qv.var, t, false});
    }
  }
  for (QuantifiedVar& qv : sf->prefix) {
    if (qv.quantifier != Quantifier::kAll) continue;
    for (JoinTerm& t :
         ExtendUniversal(sf, &qv, &report.disjuncts_removed)) {
      report.extensions.push_back({qv.var, t, true});
    }
  }
  if (use_cnf) {
    for (QuantifiedVar& qv : sf->prefix) {
      bool extended =
          qv.quantifier == Quantifier::kAll
              ? CnfExtendUniversal(sf, &qv, &report.disjuncts_removed)
              : CnfExtendExistential(sf, &qv);
      if (extended) report.cnf_extended.push_back(qv.var);
    }
  }
  // A disjunct emptied by existential extension means TRUE.
  for (const Conjunction& c : sf->matrix.disjuncts) {
    if (c.terms.empty()) {
      sf->matrix.disjuncts.clear();
      sf->matrix.disjuncts.push_back(Conjunction{});
      break;
    }
  }
  return report;
}

std::string RangeExtensionReport::ToString() const {
  std::string out;
  for (const Entry& e : extensions) {
    out += StrFormat("  range of %s extended with %s%s\n", e.var.c_str(),
                     e.term.ToString().c_str(),
                     e.from_universal_disjunct
                         ? " (negated universal disjunct)"
                         : "");
  }
  if (disjuncts_removed > 0) {
    out += StrFormat("  %zu disjunct(s) removed\n", disjuncts_removed);
  }
  for (const std::string& v : cnf_extended) {
    out += "  range of " + v + " gained a disjunctive (CNF) restriction\n";
  }
  if (out.empty()) out = "  (no extensions)\n";
  return out;
}

}  // namespace pascalr
