#include "opt/explain.h"

#include <algorithm>

#include "base/str_util.h"
#include "obs/profile.h"
#include "pipeline/compile.h"
#include "pipeline/shape.h"

namespace pascalr {

std::string_view OptLevelToString(OptLevel level) {
  switch (level) {
    case OptLevel::kNaive:
      return "O0 (naive Palermo)";
    case OptLevel::kParallel:
      return "O1 (+ parallel subexpressions)";
    case OptLevel::kOneStep:
      return "O2 (+ one-step nested evaluation)";
    case OptLevel::kRangeExt:
      return "O3 (+ extended range expressions)";
    case OptLevel::kQuantPush:
      return "O4 (+ collection-phase quantifiers)";
    case OptLevel::kAuto:
      return "auto (cost-based strategy selection)";
  }
  return "?";
}

namespace {

std::string DescribeGates(const std::vector<JoinTerm>& gates) {
  if (gates.empty()) return "";
  std::vector<std::string> parts;
  for (const JoinTerm& g : gates) parts.push_back(g.ToString());
  return " IF " + Join(parts, " AND ");
}

const char* ModeName(ValueList::Mode mode) {
  switch (mode) {
    case ValueList::Mode::kFull:
      return "full";
    case ValueList::Mode::kMinOnly:
      return "min-only";
    case ValueList::Mode::kMaxOnly:
      return "max-only";
    case ValueList::Mode::kAtMostOne:
      return "at-most-one";
  }
  return "?";
}

int IndexOfCol(const std::vector<std::string>& cols,
               const std::string& name) {
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i] == name) return static_cast<int>(i);
  }
  return -1;
}

/// Which internal nodes the eager pipelined lowering runs as membership
/// filters (compile.cc NodePlan::filter): right child a leaf whose
/// columns are ALL already bound upstream. Replays the lowering's
/// column accumulation so the printed operator is the executed one.
std::vector<bool> CoveredFilterNodes(const QueryPlan& plan, size_t conj,
                                     const JoinTree& tree,
                                     const std::vector<bool>& semi) {
  std::vector<bool> filter(tree.nodes.size(), false);
  if (plan.collection == CollectionPolicy::kLazy) return filter;
  std::vector<std::vector<std::string>> cols(tree.nodes.size());
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    const JoinTreeNode& node = tree.nodes[i];
    if (node.leaf) {
      cols[i] = plan.structures[plan.conj_inputs[conj][node.input]].columns;
      continue;
    }
    const std::vector<std::string>& left =
        cols[static_cast<size_t>(node.left)];
    const std::vector<std::string>& right =
        cols[static_cast<size_t>(node.right)];
    bool any_key = false;
    bool all_covered = true;
    std::vector<std::string> extras;
    for (const std::string& col : right) {
      if (IndexOfCol(left, col) >= 0) {
        any_key = true;
      } else {
        all_covered = false;
        extras.push_back(col);
      }
    }
    filter[i] = tree.nodes[static_cast<size_t>(node.right)].leaf &&
                any_key && all_covered;
    cols[i] = left;
    if (!semi[i]) {
      cols[i].insert(cols[i].end(), extras.begin(), extras.end());
    }
  }
  return filter;
}

/// Renders one join-tree node (and its children) at `depth`, leaves named
/// after their structure, internal nodes showing the join columns and the
/// optimizer's estimated output cardinality. Under the pipelined mode the
/// nodes are the iterator tree itself: internal nodes print as streamed
/// probe-joins, with EXISTS-style first-match probes marked `semi` and
/// covered leaves (residual predicates) printed as membership filters.
void RenderJoinTree(const QueryPlan& plan, size_t conj, const JoinTree& tree,
                    const std::vector<bool>* semi,
                    const std::vector<bool>* filter, size_t node_id,
                    int depth, std::string* out, bool membership_leaf) {
  const JoinTreeNode& node = tree.nodes[node_id];
  *out += std::string(6 + 2 * static_cast<size_t>(depth), ' ');
  if (node.leaf) {
    size_t structure_id = plan.conj_inputs[conj][node.input];
    const char* kind =
        semi != nullptr ? (membership_leaf ? "membership-probe " : "scan ")
                        : "";
    *out += StrFormat("%s%s ~%.0f rows\n", kind,
                      plan.structures[structure_id].debug_name.c_str(),
                      node.est_rows);
    return;
  }
  const bool as_filter = filter != nullptr && (*filter)[node_id];
  const char* op =
      as_filter ? "filter" : (semi != nullptr ? "probe-join" : "join");
  const char* mark =
      as_filter ? " (membership)"
                : (semi != nullptr && (*semi)[node_id] ? " (semi: first match)"
                                                       : "");
  if (node.join_columns.empty()) {
    *out += StrFormat("cross %s%s ~%.0f rows\n", op, mark, node.est_rows);
  } else {
    *out += StrFormat("%s on [%s]%s ~%.0f rows\n", op,
                      Join(node.join_columns, ", ").c_str(), mark,
                      node.est_rows);
  }
  RenderJoinTree(plan, conj, tree, semi, filter,
                 static_cast<size_t>(node.left), depth + 1, out, false);
  RenderJoinTree(plan, conj, tree, semi, filter,
                 static_cast<size_t>(node.right), depth + 1, out, as_filter);
}

}  // namespace

std::string ExplainPlan(const PlannedQuery& planned) {
  const QueryPlan& plan = planned.plan;
  std::string out;
  out += "== optimization level: " + std::string(OptLevelToString(plan.level)) +
         " ==\n";
  if (planned.cost_based) {
    out += "cost-based selection:\n" + planned.cost_candidates;
    out += "  " + planned.estimate.ToString() + "\n";
  }
  if (!planned.adaptation_notes.empty()) {
    out += "runtime adaptation:\n" + planned.adaptation_notes;
  }
  out += "standard form:\n" + plan.sf.ToString() + "\n";
  out += "strategy 3:\n" + planned.range_extension.ToString();
  out += "strategy 4:\n" + planned.quant_pushdown_summary.ToString();

  const bool lazy_collection = plan.pipeline &&
                               plan.collection == CollectionPolicy::kLazy;
  // One shape analysis serves the lazy build-mode table here and the
  // combination-phase rendering below.
  PipelineShape shape = AnalyzePipelineShape(plan);
  out += StrFormat("collection phase (policy: %s%s):\n",
                   std::string(CollectionPolicyToString(plan.collection))
                       .c_str(),
                   lazy_collection
                       ? ", demand-driven builders behind Cursor::Next"
                       : "");
  if (lazy_collection) {
    // Per-conjunction build modes: how the lazy lowering will populate
    // each input structure when (and if) the pipeline demands it.
    // LazyConjunctionLeafModes replays the lowering's tree choice and
    // join-key computation, so the printed mode is the executed mode.
    for (size_t c = 0; c < plan.conj_inputs.size(); ++c) {
      if (plan.conj_inputs[c].empty()) continue;
      std::vector<LazyLeafMode> modes =
          LazyConjunctionLeafModes(plan, c, shape);
      std::vector<std::string> parts;
      for (size_t k = 0; k < plan.conj_inputs[c].size(); ++k) {
        size_t id = plan.conj_inputs[c][k];
        const StructureDef& def = plan.structures[id];
        switch (modes[k]) {
          case LazyLeafMode::kStreamed:
            parts.push_back(def.debug_name + ": streamed (never built)");
            break;
          case LazyLeafMode::kKeyed: {
            int keyed = StructureKeyedColumn(plan, id);
            parts.push_back(
                def.debug_name + ": keyed on " +
                def.columns[static_cast<size_t>(keyed < 0 ? 0 : keyed)]);
            break;
          }
          case LazyLeafMode::kDeferred:
            parts.push_back(def.debug_name + ": full build at first use");
            break;
        }
      }
      out += StrFormat("  conjunction %zu on demand: %s\n", c,
                       Join(parts, "; ").c_str());
    }
  }
  for (const RelationScan& scan : plan.scans) {
    out += "  scan " + scan.relation;
    if (!scan.debug_label.empty() && scan.debug_label != "scan " + scan.relation) {
      out += " [" + scan.debug_label + "]";
    }
    out += "\n";
    for (const ScanAction& action : scan.actions) {
      const QuantifiedVar* qv = plan.sf.FindVar(action.var);
      out += "    " + action.var;
      if (qv != nullptr && qv->range.IsExtended()) {
        out += " IN " + qv->range.ToString(action.var);
      }
      if (plan.IsEliminated(action.var)) out += " (collection-phase only)";
      out += ":\n";
      for (const SingleListEmit& e : action.single_lists) {
        out += "      emit " + plan.structures[e.structure_id].debug_name +
               DescribeGates(e.gates) + "\n";
      }
      for (size_t id : action.index_builds) {
        const IndexBuildSpec& spec = plan.indexes[id];
        out += "      build " + spec.debug_name +
               (spec.ordered ? " (ordered)" : " (hash)") +
               DescribeGates(spec.gates) + "\n";
      }
      for (size_t id : action.value_list_builds) {
        const ValueListSpec& spec = plan.value_lists[id];
        out += StrFormat("      value list %s [%s]%s\n",
                         spec.debug_name.c_str(), ModeName(spec.mode),
                         DescribeGates(spec.gates).c_str());
        for (const QuantProbeGate& g : spec.probe_gates) {
          out += StrFormat("        gated by value list %zu (%s)\n",
                           g.value_list_id,
                           std::string(QuantifierToString(g.quantifier)).c_str());
        }
      }
      for (const IndirectJoinEmit& e : action.ij_emits) {
        out += "      probe " + plan.indexes[e.index_id].debug_name +
               " emit " + plan.structures[e.structure_id].debug_name +
               DescribeGates(e.gates);
        if (!e.corestrictions.empty()) {
          out += StrFormat(" (+%zu mutual restriction(s))",
                           e.corestrictions.size());
        }
        out += "\n";
      }
      for (const QuantProbeEmit& e : action.quant_probes) {
        out += StrFormat(
            "      %s-probe value list %zu emit %s\n",
            std::string(QuantifierToString(e.probe.quantifier)).c_str(),
            e.probe.value_list_id,
            plan.structures[e.structure_id].debug_name.c_str());
      }
    }
  }
  for (const PostScanProbe& p : plan.post_probes) {
    out += "  post-scan probe over " + p.var + " emit " +
           plan.structures[p.emit.structure_id].debug_name + "\n";
  }

  out += "combination phase:\n";
  if (plan.pipeline) {
    out += "  mode: pipelined (streamed join iterators; Cursor::Next pulls "
           "one combination row)\n";
    out += StrFormat("  vectorized: %zu-row chunks", plan.batch_size);
    if (plan.parallel > 1) {
      out += StrFormat(
          "; parallel drain: up to %zu workers (eligible conjunctions only)",
          plan.parallel);
    }
    out += "\n";
    if (!shape.existential.empty()) {
      out += "  existential-only vars (semi-join probes, no extension): " +
             Join(shape.existential, ", ") + "\n";
    }
  } else {
    out += "  mode: materialized (reference relations built per "
           "operation)\n";
  }
  for (size_t c = 0; c < plan.conj_inputs.size(); ++c) {
    std::vector<std::string> names;
    for (size_t id : plan.conj_inputs[c]) {
      names.push_back(plan.structures[id].debug_name);
    }
    out += StrFormat("  conjunction %zu: join {%s}\n", c,
                     Join(names, ", ").c_str());
    if (c < plan.join_trees.size() &&
        plan.join_trees[c].Matches(plan.conj_inputs[c].size())) {
      const JoinTree& tree = plan.join_trees[c];
      std::vector<bool> semi;
      std::vector<bool> filter;
      if (plan.pipeline) {
        std::vector<std::vector<std::string>> input_cols;
        for (size_t id : plan.conj_inputs[c]) {
          input_cols.push_back(plan.structures[id].columns);
        }
        semi = SemiJoinEligible(tree, input_cols, shape);
        filter = CoveredFilterNodes(plan, c, tree, semi);
      }
      out += StrFormat(
          "    %s (%s):\n",
          plan.pipeline ? "iterator tree" : "join order",
          std::string(JoinOrderSourceToString(tree.source)).c_str());
      RenderJoinTree(plan, c, tree, plan.pipeline ? &semi : nullptr,
                     plan.pipeline ? &filter : nullptr, tree.nodes.size() - 1,
                     0, &out, false);
    } else if (plan.conj_inputs[c].size() > 1) {
      out += "    join order: greedy smallest-first at execution\n";
    }
  }
  if (plan.pipeline) {
    out += shape.has_division
               ? "  pipelined sink: disjunct streams buffered for division "
                 "(blocking), then streamed\n"
               : "  pipelined sink: streaming dedup, straight into "
                 "construction\n";
  }
  out += "  union of all conjunctions, then quantifiers right-to-left:\n";
  for (size_t i = plan.sf.prefix.size(); i-- > 0;) {
    const QuantifiedVar& qv = plan.sf.prefix[i];
    if (qv.quantifier == Quantifier::kFree) continue;
    if (plan.IsEliminated(qv.var)) {
      out += "    " + qv.var + ": already evaluated in collection phase\n";
    } else if (qv.quantifier == Quantifier::kSome) {
      out += "    SOME " + qv.var + ": projection\n";
    } else {
      out += "    ALL " + qv.var + ": division\n";
    }
  }
  out += "construction phase: dereference and project\n";
  return out;
}

std::string ExplainEstimatedVsActual(const PlannedQuery& planned,
                                     const ExecStats& actual) {
  const ExecStats& est = planned.estimate.predicted;
  std::string out = "estimated vs actual:\n";
  out += StrFormat("  %-20s %12s %12s\n", "counter", "estimated", "actual");
  auto row = [&](const char* name, uint64_t e, uint64_t a) {
    out += StrFormat("  %-20s %12llu %12llu\n", name,
                     static_cast<unsigned long long>(e),
                     static_cast<unsigned long long>(a));
  };
  row("relations_read", est.relations_read, actual.relations_read);
  row("elements_scanned", est.elements_scanned, actual.elements_scanned);
  row("index_probes", est.index_probes, actual.index_probes);
  row("single_list_refs", est.single_list_refs, actual.single_list_refs);
  row("indirect_join_refs", est.indirect_join_refs,
      actual.indirect_join_refs);
  row("combination_rows", est.combination_rows, actual.combination_rows);
  row("division_input_rows", est.division_input_rows,
      actual.division_input_rows);
  row("quantifier_probes", est.quantifier_probes, actual.quantifier_probes);
  row("comparisons", est.comparisons, actual.comparisons);
  row("dereferences", est.dereferences, actual.dereferences);
  row("total_work", est.TotalWork(), actual.TotalWork());
  // The estimated-vs-actual run executes the materializing reference
  // path, so the peak row prices that mode; the pipelined price follows
  // for comparison.
  row("peak_intermediate_rows",
      static_cast<uint64_t>(
          std::min(std::max(0.0, planned.estimate.est_peak_materialized),
                   9.0e18)),
      actual.peak_intermediate_rows);
  out += StrFormat(
      "  pipelined pricing: combination_rows %.0f, total_work %.0f, "
      "peak %.0f\n",
      planned.estimate.pipelined_combination_rows,
      planned.estimate.pipelined_total_work,
      planned.estimate.est_peak_pipelined);
  std::string ttft_mode =
      planned.plan.pipeline
          ? "pipelined, " +
                std::string(CollectionPolicyToString(planned.plan.collection)) +
                " collection"
          : std::string("materializing");
  out += StrFormat("  est time-to-first-tuple (%s): %.0f\n",
                   ttft_mode.c_str(),
                   planned.estimate.est_time_to_first_tuple);
  return out;
}

std::string ExplainAnalyzeReport(const PlannedQuery& planned,
                                 const PipelineProfile& profile,
                                 const ExecStats& actual,
                                 size_t result_tuples, uint64_t wall_ns) {
  std::string out = "analyze:\n";
  if (profile.root() >= 0) {
    out += profile.Render();
  } else {
    out += "  (no operators profiled)\n";
  }
  out += StrFormat(
      "  result: %zu tuple(s) in %.3f ms, total work %llu\n", result_tuples,
      static_cast<double>(wall_ns) / 1e6,
      static_cast<unsigned long long>(actual.TotalWork()));
  if (planned.cost_based) {
    out += ExplainEstimatedVsActual(planned, actual);
  }
  return out;
}

std::string ExplainCollection(const QueryPlan& plan,
                              const CollectionResult& collection) {
  std::string out;
  for (size_t i = 0; i < plan.structures.size(); ++i) {
    out += StrFormat("  %-24s %zu rows\n",
                     plan.structures[i].debug_name.c_str(),
                     collection.structures[i].size());
  }
  for (size_t i = 0; i < plan.indexes.size(); ++i) {
    out += StrFormat("  %-24s %zu entries\n",
                     plan.indexes[i].debug_name.c_str(),
                     collection.indexes[i]->size());
  }
  for (size_t i = 0; i < plan.value_lists.size(); ++i) {
    out += StrFormat("  %-24s %s\n", plan.value_lists[i].debug_name.c_str(),
                     collection.value_lists[i].DebugString().c_str());
  }
  for (const auto& [var, refs] : collection.range_refs) {
    out += StrFormat("  range(%s): %zu refs\n", var.c_str(), refs.size());
  }
  return out;
}

}  // namespace pascalr
