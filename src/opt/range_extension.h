// Strategy 3 (paper §4.3): extended range expressions.
//
// For an existentially quantified (or free) variable:
//   SOME rec IN rel (S(rec) AND WFF) = SOME rec IN [EACH r IN rel: S(r)] (WFF)
// — a monadic term over `rec` occurring in *every* matrix disjunct that
// references `rec` is moved from the matrix into the range.
//
// For a universally quantified variable:
//   ALL rec IN rel (NOT S(rec) OR WFF) = ALL rec IN [EACH r IN rel: S(r)] (WFF)
// — a matrix disjunct consisting of a *single* monadic term over `rec` is
// negated into the range and the whole disjunct disappears (Example 4.5:
// `p.pyear <> 1977` becomes range `[EACH p IN papers: p.pyear = 1977]` and
// one conjunction less remains).
//
// Like the paper's system, only conjunctions of (monadic) join terms are
// used as extensions. The rewritten standard form is equivalent to the
// original provided every (extended) range is non-empty — the planner
// verifies this at runtime and falls back otherwise.

#ifndef PASCALR_OPT_RANGE_EXTENSION_H_
#define PASCALR_OPT_RANGE_EXTENSION_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "normalize/standard_form.h"

namespace pascalr {

struct RangeExtensionReport {
  struct Entry {
    std::string var;
    JoinTerm term;           ///< the term as it now reads in the range
    bool from_universal_disjunct = false;
  };
  std::vector<Entry> extensions;
  size_t disjuncts_removed = 0;
  /// Variables whose range gained a *disjunctive* (CNF) restriction.
  std::vector<std::string> cnf_extended;

  std::string ToString() const;
};

/// Rewrites `sf` in place; returns what was moved.
///
/// With `use_cnf` (the paper's §4.3 closing remark: "the use of the more
/// general conjunctive normal form is expected to improve further the
/// efficiency"), two additional rewrites fire after the conjunctive ones:
///  - an existential/free variable whose every referencing disjunct still
///    carries at least one monadic term gets the *disjunction* of those
///    per-disjunct monadic conjunctions as an extra range restriction (the
///    terms stay in the matrix; the range shrinks);
///  - a universal variable absorbs *multi-term* pure-monadic disjuncts as
///    the negated conjunction (the single-term case is the classic rule).
RangeExtensionReport ApplyRangeExtension(StandardForm* sf,
                                         bool use_cnf = false);

}  // namespace pascalr

#endif  // PASCALR_OPT_RANGE_EXTENSION_H_
