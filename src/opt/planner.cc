#include "opt/planner.h"

#include "base/counters.h"
#include "cost/plan_search.h"
#include "exec/eval_util.h"
#include "joinorder/attach.h"
#include "normalize/fold_empty.h"
#include "normalize/standard_form.h"
#include "obs/span_names.h"
#include "obs/trace.h"
#include "opt/params.h"
#include "opt/scan_plan.h"

namespace pascalr {

bool RangeIsEmpty(const Database& db, const RangeExpr& range) {
  const Relation* rel = db.FindRelation(range.relation);
  if (rel == nullptr || rel->empty()) return true;
  if (!range.IsExtended()) return false;
  bool found = false;
  rel->Scan([&](const Ref&, const Tuple& tuple) {
    if (EvalRestriction(*range.restriction, tuple, nullptr)) {
      found = true;
      return false;
    }
    return true;
  });
  return !found;
}

BoundQuery CloneBoundQuery(const BoundQuery& query) {
  BoundQuery out;
  out.selection = query.selection.Clone();
  out.vars = query.vars;
  out.output_schema = query.output_schema;
  out.params = query.params;
  return out;
}

QueryPlan CloneQueryPlan(const QueryPlan& plan) {
  QueryPlan out;
  out.sf = plan.sf.Clone();
  out.level = plan.level;
  out.scans = plan.scans;
  out.indexes = plan.indexes;
  out.value_lists = plan.value_lists;
  out.structures = plan.structures;
  out.post_probes = plan.post_probes;
  out.conj_inputs = plan.conj_inputs;
  out.join_trees = plan.join_trees;
  out.eliminated_vars = plan.eliminated_vars;
  out.division = plan.division;
  out.pipeline = plan.pipeline;
  out.collection = plan.collection;
  out.batch_size = plan.batch_size;
  out.parallel = plan.parallel;
  return out;
}

PlannedQuery ClonePlannedQuery(const PlannedQuery& planned) {
  PlannedQuery out;
  out.plan = CloneQueryPlan(planned.plan);
  out.range_extension = planned.range_extension;
  out.quant_pushdown_summary = planned.quant_pushdown_summary;
  out.adaptation_notes = planned.adaptation_notes;
  out.replans = planned.replans;
  out.cost_based = planned.cost_based;
  out.estimate = planned.estimate;
  out.cost_candidates = planned.cost_candidates;
  out.collection_cost = planned.collection_cost;
  return out;
}

namespace {

/// Builds the standard form and applies adaptation rule 1: folds
/// quantifiers whose (base or user-extended) range is empty.
Result<StandardForm> StandardFormWithFolding(const Database& db,
                                             BoundQuery query,
                                             std::string* notes,
                                             uint64_t* replans) {
  TraceSpanGuard trace_span(spans::kNormalize);
  PASCALR_ASSIGN_OR_RETURN(StandardForm sf,
                           BuildStandardForm(std::move(query)));
  bool any_empty = false;
  for (const QuantifiedVar& qv : sf.prefix) {
    if (qv.quantifier == Quantifier::kFree) continue;
    if (RangeIsEmpty(db, qv.range)) {
      any_empty = true;
      *notes += "  adapted: range of " + qv.var + " is empty (Lemma 1)\n";
    }
  }
  if (!any_empty) return sf;
  ++*replans;
  FormulaPtr folded = FoldEmptyRanges(
      sf.original_nnf->Clone(),
      [&](const RangeExpr& range) { return RangeIsEmpty(db, range); });
  return RebuildStandardForm(sf, std::move(folded));
}

}  // namespace

Result<PlannedQuery> PlanQuery(const Database& db, BoundQuery query,
                               const PlannerOptions& options) {
  if (SelectionHasUnboundParams(query.selection)) {
    return Status::InvalidArgument(
        "selection has unbound $parameters; prepare it with "
        "Session::Prepare and Execute it with parameter values");
  }
  if (options.level == OptLevel::kAuto || options.cost_based) {
    // Cost-based selection: enumerate concrete candidates and keep the
    // cheapest (src/cost/plan_search.cc re-enters PlanQuery with concrete
    // levels and cost_based off).
    return SearchBestPlan(db, query, options);
  }
  ++GlobalCompileCounters().plans;
  TraceSpanGuard trace_span(spans::kPlan, nullptr,
                            std::string(OptLevelToString(options.level)));
  PlannedQuery out;
  BoundQuery backup = CloneBoundQuery(query);

  PASCALR_ASSIGN_OR_RETURN(
      StandardForm sf,
      StandardFormWithFolding(db, std::move(query), &out.adaptation_notes,
                              &out.replans));

  OptLevel level = options.level;
  if (level >= OptLevel::kRangeExt) {
    out.range_extension =
        ApplyRangeExtension(&sf, options.use_cnf_extensions);
    // Adaptation rule 2: a strategy-3 extension denoting an empty range
    // invalidates the factoring; abandon the extensions.
    bool extension_empty = false;
    for (const QuantifiedVar& qv : sf.prefix) {
      if (qv.range.IsExtended() && RangeIsEmpty(db, qv.range)) {
        extension_empty = true;
        out.adaptation_notes += "  adapted: extended range of " + qv.var +
                                " is empty; strategies 3/4 abandoned\n";
      }
    }
    if (extension_empty) {
      ++out.replans;
      level = OptLevel::kOneStep;
      out.range_extension = RangeExtensionReport();
      PASCALR_ASSIGN_OR_RETURN(
          sf, StandardFormWithFolding(db, std::move(backup),
                                      &out.adaptation_notes, &out.replans));
    }
  }

  QuantPushdownResult pushdown;
  if (level >= OptLevel::kQuantPush) {
    pushdown = ApplyQuantPushdown(&sf);
  }
  out.quant_pushdown_summary.eliminated = pushdown.eliminated;
  out.quant_pushdown_summary.derived = pushdown.derived;

  Result<QueryPlan> plan =
      BuildScanPlan(std::move(sf), level, std::move(pushdown), db);
  if (!plan.ok()) return plan.status();
  out.plan = std::move(plan).value();
  out.plan.division = options.division;
  out.plan.pipeline = options.pipeline;
  out.plan.collection = options.collection;
  out.plan.batch_size = options.batch_size;
  out.plan.parallel = options.parallel;
  if (options.prefer_ordered_indexes) {
    for (IndexBuildSpec& spec : out.plan.indexes) spec.ordered = true;
  }
  if (options.use_permanent_indexes) {
    for (IndexBuildSpec& spec : out.plan.indexes) {
      // A permanent index covers the whole relation; it can only stand in
      // for an ungated index over an *unextended* range.
      const QuantifiedVar* qv = out.plan.sf.FindVar(spec.var);
      spec.try_permanent = spec.gates.empty() && qv != nullptr &&
                           !qv->range.IsExtended();
    }
  }
  if (options.join_order_dp) {
    // After the physical knobs: permanent-index borrowing changes the
    // structure-size estimates the join-order DP plans over. The
    // collection-phase walk (when the DP needed one) rides along on the
    // PlannedQuery so the plan-search driver can reuse it.
    JoinOrderOptions join_options;
    join_options.dp_max_inputs = options.join_dp_max_inputs;
    join_options.bushy = options.join_dp_bushy;
    AttachJoinOrders(&out.plan, db, join_options, &out.collection_cost);
  }
  return out;
}

Result<QueryRun> RunQuery(const Database& db, BoundQuery query,
                          const PlannerOptions& options) {
  QueryRun run;
  PASCALR_ASSIGN_OR_RETURN(run.planned,
                           PlanQuery(db, std::move(query), options));
  run.stats.replans = run.planned.replans;
  PASCALR_ASSIGN_OR_RETURN(ExecOutcome outcome,
                           ExecutePlan(run.planned.plan, db, &run.stats));
  run.tuples = std::move(outcome.tuples);
  run.collection = std::move(outcome.collection);
  return run;
}

}  // namespace pascalr
