// The Schmidt (1938) many-sorted -> one-sorted conversion the paper cites
// to justify its transformation rules (§2):
//
//   SOME rec IN rel (W)  becomes  SOME rec ((rec IN rel) AND W)
//   ALL  rec IN rel (W)  becomes  ALL  rec (NOT (rec IN rel) OR W)
//
// with `rec IN rel` a new kind of atomic formula and quantifiers ranging
// over the *whole universe* (every element of every relation). Extended
// ranges contribute their restriction to the membership guard.
//
// This module exists to *prove Lemma 1 executable*: the test suite checks
// that many-sorted evaluation and one-sorted evaluation of the converted
// formula agree on randomized databases, including empty relations.

#ifndef PASCALR_NORMALIZE_ONE_SORTED_H_
#define PASCALR_NORMALIZE_ONE_SORTED_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "calculus/ast.h"
#include "catalog/database.h"

namespace pascalr {

struct OneSortedFormula;
using OneSortedPtr = std::unique_ptr<OneSortedFormula>;

struct OneSortedFormula {
  enum class Kind : uint8_t {
    kConst,
    kCompare,  ///< a join term
    kIn,       ///< var IN relation (the new atomic formula)
    kNot,
    kAnd,
    kOr,
    kSome,  ///< unsorted: ranges over the whole universe
    kAll,
  };

  Kind kind = Kind::kConst;
  bool const_value = false;
  JoinTerm term;
  std::string var;       ///< kIn / kSome / kAll
  std::string relation;  ///< kIn
  std::vector<OneSortedPtr> children;

  std::string ToString() const;
};

/// Converts a bound many-sorted formula (NNF not required).
OneSortedPtr ToOneSorted(const Formula& f);

/// Evaluates a one-sorted formula over the universe of all elements of all
/// relations in `db`, with free variables pre-bound by `bindings`.
/// Connectives evaluate left to right with short-circuiting, so membership
/// guards protect ill-sorted component accesses; accessing a component on
/// an element of the wrong sort yields TypeMismatch.
Result<bool> EvaluateOneSorted(const OneSortedFormula& f, const Database& db,
                               std::map<std::string, Ref>* bindings);

}  // namespace pascalr

#endif  // PASCALR_NORMALIZE_ONE_SORTED_H_
