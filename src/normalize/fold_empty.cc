#include "normalize/fold_empty.h"

namespace pascalr {

namespace {

FormulaPtr SimplifyConnective(Formula* node, bool is_and) {
  std::vector<FormulaPtr> kids = node->TakeChildren();
  std::vector<FormulaPtr> kept;
  for (FormulaPtr& c : kids) {
    c = SimplifyConstants(std::move(c));
    if (c->kind() == FormulaKind::kConst) {
      if (c->const_value() == is_and) continue;  // neutral element
      return Formula::Constant(!is_and);         // absorbing element
    }
    kept.push_back(std::move(c));
  }
  if (kept.empty()) return Formula::Constant(is_and);
  return is_and ? Formula::And(std::move(kept)) : Formula::Or(std::move(kept));
}

}  // namespace

FormulaPtr SimplifyConstants(FormulaPtr f) {
  switch (f->kind()) {
    case FormulaKind::kConst:
    case FormulaKind::kCompare:
      return f;
    case FormulaKind::kNot: {
      FormulaPtr inner = SimplifyConstants(f->TakeChild());
      if (inner->kind() == FormulaKind::kConst) {
        return Formula::Constant(!inner->const_value());
      }
      return Formula::Not(std::move(inner));
    }
    case FormulaKind::kAnd:
      return SimplifyConnective(f.get(), /*is_and=*/true);
    case FormulaKind::kOr:
      return SimplifyConnective(f.get(), /*is_and=*/false);
    case FormulaKind::kQuant: {
      FormulaPtr body = SimplifyConstants(f->TakeChild());
      if (body->kind() == FormulaKind::kConst) {
        // SOME v (FALSE) is false over any range; ALL v (TRUE) is true over
        // any range. The dual cases (SOME/TRUE, ALL/FALSE) equal the
        // non-emptiness of the range and are left to FoldEmptyRanges.
        if (f->quantifier() == Quantifier::kSome && !body->const_value()) {
          return Formula::False();
        }
        if (f->quantifier() == Quantifier::kAll && body->const_value()) {
          return Formula::True();
        }
      }
      return Formula::Quant(f->quantifier(), f->var(), std::move(f->range()),
                            std::move(body));
    }
  }
  return f;
}

namespace {

FormulaPtr FoldImpl(FormulaPtr f, const RangeEmptyFn& is_empty) {
  switch (f->kind()) {
    case FormulaKind::kConst:
    case FormulaKind::kCompare:
      return f;
    case FormulaKind::kNot:
      return Formula::Not(FoldImpl(f->TakeChild(), is_empty));
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      FormulaKind kind = f->kind();
      std::vector<FormulaPtr> kids = f->TakeChildren();
      for (FormulaPtr& c : kids) c = FoldImpl(std::move(c), is_empty);
      return kind == FormulaKind::kAnd ? Formula::And(std::move(kids))
                                       : Formula::Or(std::move(kids));
    }
    case FormulaKind::kQuant: {
      if (is_empty(f->range())) {
        return Formula::Constant(f->quantifier() == Quantifier::kAll);
      }
      FormulaPtr body = FoldImpl(f->TakeChild(), is_empty);
      return Formula::Quant(f->quantifier(), f->var(), std::move(f->range()),
                            std::move(body));
    }
  }
  return f;
}

}  // namespace

FormulaPtr FoldEmptyRanges(FormulaPtr f, const RangeEmptyFn& is_empty) {
  return SimplifyConstants(FoldImpl(std::move(f), is_empty));
}

}  // namespace pascalr
