#include "normalize/prenex.h"

#include "base/logging.h"

namespace pascalr {

namespace {

FormulaPtr Extract(FormulaPtr f, std::vector<QuantifiedVar>* prefix) {
  switch (f->kind()) {
    case FormulaKind::kConst:
    case FormulaKind::kCompare:
      return f;
    case FormulaKind::kNot:
      PASCALR_LOG_FATAL << "ToPrenex requires NNF input";
      return f;
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      FormulaKind kind = f->kind();
      std::vector<FormulaPtr> kids = f->TakeChildren();
      for (FormulaPtr& c : kids) c = Extract(std::move(c), prefix);
      return kind == FormulaKind::kAnd ? Formula::And(std::move(kids))
                                       : Formula::Or(std::move(kids));
    }
    case FormulaKind::kQuant: {
      prefix->emplace_back(f->quantifier(), f->var(), std::move(f->range()));
      return Extract(f->TakeChild(), prefix);
    }
  }
  return f;
}

}  // namespace

PrenexForm ToPrenex(FormulaPtr f) {
  PrenexForm out;
  out.matrix = Extract(std::move(f), &out.prefix);
  return out;
}

}  // namespace pascalr
