// Negation normal form: pushes NOT inward until it disappears.
//
//   NOT (A AND B)            ->  NOT A OR NOT B
//   NOT (A OR B)             ->  NOT A AND NOT B
//   NOT SOME v IN range (B)  ->  ALL v IN range (NOT B)
//   NOT ALL v IN range (B)   ->  SOME v IN range (NOT B)
//   NOT (a op b)             ->  a complement(op) b
//   NOT TRUE / NOT FALSE     ->  FALSE / TRUE
//
// The quantifier dualities hold verbatim for *extended* ranges because the
// restriction stays on the range side of the quantifier.

#ifndef PASCALR_NORMALIZE_NNF_H_
#define PASCALR_NORMALIZE_NNF_H_

#include "calculus/ast.h"

namespace pascalr {

/// Consumes `f` and returns its negation normal form.
FormulaPtr ToNnf(FormulaPtr f);

/// True if no kNot node occurs in the tree.
bool IsNnf(const Formula& f);

}  // namespace pascalr

#endif  // PASCALR_NORMALIZE_NNF_H_
