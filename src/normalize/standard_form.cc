#include "normalize/standard_form.h"

#include "base/counters.h"
#include "base/str_util.h"
#include "calculus/printer.h"
#include "normalize/nnf.h"

namespace pascalr {

StandardForm StandardForm::Clone() const {
  StandardForm out;
  for (const QuantifiedVar& qv : prefix) out.prefix.push_back(qv.Clone());
  out.matrix = matrix;
  out.projection = projection;
  out.output_schema = output_schema;
  out.vars = vars;
  out.original_nnf = original_nnf == nullptr ? nullptr : original_nnf->Clone();
  return out;
}

std::string StandardForm::ToString() const {
  std::vector<std::string> proj;
  for (const OutputComponent& oc : projection) proj.push_back(oc.ToString());
  std::string out = "[<" + Join(proj, ", ") + "> OF\n";
  for (const QuantifiedVar& qv : prefix) {
    out += "  " + qv.ToString() + "\n";
  }
  out += ": " + matrix.ToString() + "\n]";
  return out;
}

namespace {

Status ValidateMatrixVariables(const StandardForm& sf) {
  for (const Conjunction& c : sf.matrix.disjuncts) {
    for (const std::string& v : c.Variables()) {
      if (sf.FindVar(v) == nullptr) {
        return Status::Internal("matrix references unbound variable '" + v +
                                "'");
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<StandardForm> BuildStandardForm(BoundQuery query) {
  ++GlobalCompileCounters().standard_forms;
  StandardForm sf;
  sf.projection = std::move(query.selection.projection);
  sf.output_schema = std::move(query.output_schema);
  sf.vars = std::move(query.vars);

  for (RangeDecl& decl : query.selection.free_vars) {
    sf.prefix.emplace_back(Quantifier::kFree, decl.var, std::move(decl.range));
  }

  FormulaPtr nnf = ToNnf(std::move(query.selection.wff));
  sf.original_nnf = nnf->Clone();

  PrenexForm prenex = ToPrenex(std::move(nnf));
  for (QuantifiedVar& qv : prenex.prefix) sf.prefix.push_back(std::move(qv));
  sf.matrix = ToDnf(*prenex.matrix);

  PASCALR_RETURN_IF_ERROR(ValidateMatrixVariables(sf));
  return sf;
}

Result<StandardForm> RebuildStandardForm(const StandardForm& base,
                                         FormulaPtr adapted_nnf) {
  ++GlobalCompileCounters().standard_forms;
  StandardForm sf;
  sf.projection = base.projection;
  sf.output_schema = base.output_schema;
  sf.vars = base.vars;
  size_t num_free = base.NumFreeVars();
  for (size_t i = 0; i < num_free; ++i) {
    sf.prefix.push_back(base.prefix[i].Clone());
  }
  sf.original_nnf = adapted_nnf->Clone();

  PrenexForm prenex = ToPrenex(std::move(adapted_nnf));
  for (QuantifiedVar& qv : prenex.prefix) sf.prefix.push_back(std::move(qv));
  sf.matrix = ToDnf(*prenex.matrix);

  PASCALR_RETURN_IF_ERROR(ValidateMatrixVariables(sf));
  return sf;
}

}  // namespace pascalr
