#include "normalize/rename.h"

#include "base/str_util.h"

namespace pascalr {

std::string FreshName(const std::string& base, std::set<std::string>* used) {
  if (used->insert(base).second) return base;
  for (int i = 1;; ++i) {
    std::string candidate = StrFormat("%s_%d", base.c_str(), i);
    if (used->insert(candidate).second) return candidate;
  }
}

namespace {

void Walk(Formula* f, std::set<std::string>* used) {
  switch (f->kind()) {
    case FormulaKind::kConst:
    case FormulaKind::kCompare:
      return;
    case FormulaKind::kNot:
      Walk(f->mutable_child(), used);
      return;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f->children()) Walk(c.get(), used);
      return;
    case FormulaKind::kQuant: {
      std::string old_name = f->var();
      if (used->count(old_name) > 0) {
        std::string fresh = FreshName(old_name, used);
        if (f->range().IsExtended()) {
          RenameVariable(f->range().restriction.get(), old_name, fresh);
        }
        RenameVariable(f->mutable_child(), old_name, fresh);
        f->set_var(fresh);
      } else {
        used->insert(old_name);
      }
      if (f->range().IsExtended()) {
        Walk(f->range().restriction.get(), used);
      }
      Walk(f->mutable_child(), used);
      return;
    }
  }
}

}  // namespace

std::set<std::string> MakeVariableNamesUnique(Formula* f,
                                              std::set<std::string> reserved) {
  Walk(f, &reserved);
  return reserved;
}

}  // namespace pascalr
