// Prenex normal form: pulls every quantifier in front of a quantifier-free
// matrix. Requires NNF input with globally unique variable names.
//
// The prefix preserves the left-to-right order in which quantifiers appear
// in the formula (depth-first), which is the order the paper's examples
// exhibit (Example 2.2: ALL p SOME c SOME t).
//
// Many-sorted caveat (paper Lemma 1): pulling SOME out of an OR, or ALL out
// of an AND, assumes the quantifier's range relation is non-empty. The
// compiled standard form is built under that assumption — exactly as the
// PASCAL/R compiler does — and the executor adapts at runtime via
// FoldEmptyRanges when a range turns out to be empty.

#ifndef PASCALR_NORMALIZE_PRENEX_H_
#define PASCALR_NORMALIZE_PRENEX_H_

#include <string>
#include <vector>

#include "calculus/ast.h"

namespace pascalr {

/// One entry of a quantifier prefix. kFree entries are produced by
/// StandardForm (free variables precede all quantifiers); ToPrenex itself
/// only emits kSome / kAll.
struct QuantifiedVar {
  Quantifier quantifier = Quantifier::kSome;
  std::string var;
  RangeExpr range;

  QuantifiedVar() = default;
  QuantifiedVar(Quantifier q, std::string v, RangeExpr r)
      : quantifier(q), var(std::move(v)), range(std::move(r)) {}
  QuantifiedVar Clone() const {
    return QuantifiedVar(quantifier, var, range.Clone());
  }
  std::string ToString() const {
    return std::string(QuantifierToString(quantifier)) + " " + var + " IN " +
           range.ToString(var);
  }
};

struct PrenexForm {
  std::vector<QuantifiedVar> prefix;
  FormulaPtr matrix;  ///< quantifier-free
};

/// Consumes an NNF formula (unique variable names) and returns its prenex
/// form.
PrenexForm ToPrenex(FormulaPtr f);

}  // namespace pascalr

#endif  // PASCALR_NORMALIZE_PRENEX_H_
