// Alpha renaming: guarantees that every quantified variable in a formula
// has a globally unique name. The binder already produces unique names for
// bound queries; this pass exists for formulas constructed programmatically
// (tests, the DSL) and as a safety net before prenexing, which is only
// sound when no two quantifiers bind the same name.

#ifndef PASCALR_NORMALIZE_RENAME_H_
#define PASCALR_NORMALIZE_RENAME_H_

#include <set>
#include <string>

#include "calculus/ast.h"

namespace pascalr {

/// Renames quantified variables so that no name is bound twice and no
/// quantified name collides with `reserved` (the free variables).
/// Returns the set of all variable names in use afterwards.
std::set<std::string> MakeVariableNamesUnique(Formula* f,
                                              std::set<std::string> reserved);

/// Produces a name not contained in `used` by suffixing `base`, and inserts
/// it into `used`.
std::string FreshName(const std::string& base, std::set<std::string>* used);

}  // namespace pascalr

#endif  // PASCALR_NORMALIZE_RENAME_H_
