#include "normalize/dnf.h"

#include <algorithm>

#include "base/logging.h"
#include "base/str_util.h"

namespace pascalr {

std::vector<std::string> Conjunction::Variables() const {
  std::vector<std::string> out;
  for (const JoinTerm& t : terms) {
    for (const std::string& v : t.Variables()) {
      if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
    }
  }
  return out;
}

bool Conjunction::References(const std::string& var) const {
  for (const JoinTerm& t : terms) {
    if (t.References(var)) return true;
  }
  return false;
}

std::vector<const JoinTerm*> Conjunction::TermsOver(
    const std::string& var) const {
  std::vector<const JoinTerm*> out;
  for (const JoinTerm& t : terms) {
    if (t.References(var)) out.push_back(&t);
  }
  return out;
}

bool Conjunction::operator==(const Conjunction& other) const {
  if (terms.size() != other.terms.size()) return false;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (!(terms[i] == other.terms[i])) return false;
  }
  return true;
}

std::string Conjunction::ToString() const {
  if (terms.empty()) return "TRUE";
  std::vector<std::string> parts;
  for (const JoinTerm& t : terms) parts.push_back(t.ToString());
  return Join(parts, " AND ");
}

std::string DnfMatrix::ToString() const {
  if (IsFalse()) return "FALSE";
  std::vector<std::string> parts;
  for (const Conjunction& c : disjuncts) parts.push_back(c.ToString());
  return Join(parts, "\n  OR ");
}

FormulaPtr DnfMatrix::ToFormula() const {
  if (IsFalse()) return Formula::False();
  std::vector<FormulaPtr> ors;
  for (const Conjunction& c : disjuncts) {
    std::vector<FormulaPtr> ands;
    for (const JoinTerm& t : c.terms) ands.push_back(Formula::Compare(t));
    ors.push_back(Formula::And(std::move(ands)));
  }
  return Formula::Or(std::move(ors));
}

namespace {

/// A term and its complement cannot both hold. Two terms are complementary
/// if they compare the same operands with complementary operators (in
/// either orientation).
bool Complementary(const JoinTerm& a, const JoinTerm& b) {
  JoinTerm neg = a.Negated();
  return neg == b || neg.Mirrored() == b;
}

bool SameTerm(const JoinTerm& a, const JoinTerm& b) {
  return a == b || a.Mirrored() == b;
}

/// Adds `term` to `conj`; returns false if the conjunction became
/// contradictory.
bool AddTerm(Conjunction* conj, const JoinTerm& term) {
  for (const JoinTerm& existing : conj->terms) {
    if (SameTerm(existing, term)) return true;  // duplicate
    if (Complementary(existing, term)) return false;
  }
  conj->terms.push_back(term);
  return true;
}

void DnfImpl(const Formula& f, std::vector<Conjunction>* out) {
  switch (f.kind()) {
    case FormulaKind::kConst:
      if (f.const_value()) out->push_back(Conjunction{});  // TRUE
      // FALSE contributes no disjunct.
      return;
    case FormulaKind::kCompare: {
      Conjunction c;
      c.terms.push_back(f.term());
      out->push_back(std::move(c));
      return;
    }
    case FormulaKind::kOr:
      for (const FormulaPtr& child : f.children()) DnfImpl(*child, out);
      return;
    case FormulaKind::kAnd: {
      // Cartesian product of the children's DNFs.
      std::vector<Conjunction> acc;
      acc.push_back(Conjunction{});
      for (const FormulaPtr& child : f.children()) {
        std::vector<Conjunction> child_dnf;
        DnfImpl(*child, &child_dnf);
        std::vector<Conjunction> next;
        for (const Conjunction& left : acc) {
          for (const Conjunction& right : child_dnf) {
            Conjunction merged = left;
            bool consistent = true;
            for (const JoinTerm& t : right.terms) {
              if (!AddTerm(&merged, t)) {
                consistent = false;
                break;
              }
            }
            if (consistent) next.push_back(std::move(merged));
          }
        }
        acc = std::move(next);
        if (acc.empty()) return;  // the AND is unsatisfiable
      }
      for (Conjunction& c : acc) out->push_back(std::move(c));
      return;
    }
    case FormulaKind::kNot:
    case FormulaKind::kQuant:
      PASCALR_LOG_FATAL << "ToDnf requires a quantifier-free NNF matrix";
      return;
  }
}

}  // namespace

DnfMatrix ToDnf(const Formula& matrix) {
  DnfMatrix out;
  DnfImpl(matrix, &out.disjuncts);
  // An empty conjunction (TRUE) absorbs everything else.
  for (const Conjunction& c : out.disjuncts) {
    if (c.terms.empty()) {
      out.disjuncts.clear();
      out.disjuncts.push_back(Conjunction{});
      return out;
    }
  }
  // Deduplicate disjuncts.
  std::vector<Conjunction> unique;
  for (Conjunction& c : out.disjuncts) {
    bool seen = false;
    for (const Conjunction& u : unique) {
      if (u == c) {
        seen = true;
        break;
      }
    }
    if (!seen) unique.push_back(std::move(c));
  }
  out.disjuncts = std::move(unique);
  return out;
}

}  // namespace pascalr
