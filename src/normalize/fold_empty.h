// Runtime adaptation for empty range relations (paper Lemma 1 and
// Example 2.2).
//
// The standard form is compiled assuming every range relation is
// non-empty. When that assumption fails at runtime, the *original* (NNF,
// pre-prenex) formula is constant-folded with
//
//     SOME v IN r (B)  =  FALSE   if r is empty
//     ALL  v IN r (B)  =  TRUE    if r is empty
//
// and the query is re-normalised. This is semantically exact: the two
// identities above are the base facts from which Lemma 1's empty-relation
// cases follow.

#ifndef PASCALR_NORMALIZE_FOLD_EMPTY_H_
#define PASCALR_NORMALIZE_FOLD_EMPTY_H_

#include <functional>

#include "calculus/ast.h"

namespace pascalr {

/// Predicate deciding whether a range expression currently denotes an
/// empty set (for extended ranges this may require evaluating the
/// restriction; callers that cannot afford it may answer false — folding
/// is an optimisation of correctness only when the answer is exact).
using RangeEmptyFn = std::function<bool(const RangeExpr& range)>;

/// Folds quantifiers over empty ranges to constants, then simplifies
/// constants through connectives. Consumes `f`.
FormulaPtr FoldEmptyRanges(FormulaPtr f, const RangeEmptyFn& is_empty);

/// Constant propagation only: TRUE/FALSE absorption in AND/OR/NOT and
/// quantifier bodies that reduce to constants (SOME v (FALSE) = FALSE,
/// ALL v (TRUE) = TRUE; the dual cases still depend on range emptiness and
/// are *not* folded here).
FormulaPtr SimplifyConstants(FormulaPtr f);

}  // namespace pascalr

#endif  // PASCALR_NORMALIZE_FOLD_EMPTY_H_
